// Capacity model (ISSUE 8 tentpole): open-loop load sweep per consistency
// config, with and without admission control.
//
// A closed-loop driver cannot show overload: its clients wait, so offered
// load self-throttles to whatever the service point sustains. Here the
// OpenLoopDriver schedules arrivals from a Poisson process — the aggregate
// behaviour of a large independent client population (we model 1M logical
// clients; the per-client rate times the population gives the offered λ) —
// and latency is charged from the *scheduled* arrival, so queueing delay is
// visible and there is no coordinated omission to correct.
//
// For each of three consistency configs (ms_sc chain replication, ms_ec
// async master-slave, aa_ec active-active) the sweep raises λ through the
// saturation knee twice: shedding OFF (admission.max_inflight = 0) and
// shedding ON (bounded per-shard admission queue + deadline-aware drop).
// Past the knee, shedding-off lets the backlog and p99 diverge (queue
// collapse); shedding-on sheds the excess as kOverloaded and keeps the p99
// of *completed* requests bounded. The headline gate checks exactly that.
//
// The knee we publish is the highest swept λ the config still serves with
// goodput >= 90% of offered and p99 under the collapse bound.
//
// Usage: bench_capacity [--json] [--csv FILE] [--quick] [--config NAME]
//   --json writes BENCH_capacity.json (the committed baseline);
//   --csv appends per-config knee rows for the nightly capacity-sweep CI job;
//   --config restricts the sweep to one of ms_sc / ms_ec / aa_ec.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/json.h"
#include "src/net/sim_fabric.h"
#include "src/workload/open_loop.h"

namespace bespokv::bench {
namespace {

// p99 above this marks the queue-collapsed regime (well past any sane SLO
// for a fabric whose unloaded RTT is ~hundreds of µs).
constexpr uint64_t kCollapseP99Us = 200'000;
constexpr uint64_t kModeledClients = 1'000'000;

struct ConfigDef {
  const char* name;
  Topology topology;
  Consistency consistency;
};

struct SweepPoint {
  double rate = 0;  // offered λ (arrivals/sec)
  double offered_qps = 0;
  double goodput_qps = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  uint64_t client_dropped = 0;
  uint64_t outstanding_end = 0;  // backlog still queued when the window closed
};

struct SweepResult {
  std::string config;
  bool shedding = false;
  std::vector<SweepPoint> points;
  double knee_qps = 0;  // highest λ served at >=90% goodput, bounded p99
};

SweepPoint run_point(const ConfigDef& cfg, bool shedding, double rate,
                     uint64_t measure_us, char mix) {
  SimFabricOpts fopts;
  fopts.link_latency_us = 20;
  fopts.seed = 42;
  SimFabric sim(fopts);

  ClusterOptions copts;
  copts.topology = cfg.topology;
  copts.consistency = cfg.consistency;
  copts.num_shards = 2;
  copts.num_replicas = 3;
  copts.sim_node.base_service_us = 100;  // ~10k serialized ops/s per node
  copts.sim_node.per_kb_service_us = 4.0;
  if (shedding) {
    copts.controlet.admission.max_inflight = 64;
    copts.controlet.admission.deadline_us = 20'000;
  }
  Cluster cluster(sim, copts);
  cluster.start();
  sim.run_for(300'000);

  OpenLoopOptions oopts;
  oopts.num_client_nodes = 16;
  oopts.workload = WorkloadSpec::ycsb(mix).value();
  oopts.workload.num_keys = 10'000;  // preload cost; popularity still zipfian
  oopts.arrival.kind = ArrivalSpec::Kind::kPoisson;
  oopts.arrival.rate_per_sec = rate;
  oopts.arrival.seed = 7;
  oopts.rpc_timeout_us = 2'000'000;
  oopts.max_outstanding = 20'000;  // generator safety valve past collapse
  OpenLoopDriver driver(sim, cluster, oopts);
  driver.preload();
  driver.start();
  sim.run_for(measure_us / 2);  // warmup
  driver.reset_window();
  sim.run_for(measure_us);
  OpenLoopResult r = driver.collect();
  driver.stop();
  sim.run_for(200'000);  // drain stragglers (not measured)

  SweepPoint p;
  p.rate = rate;
  p.offered_qps = r.offered_qps;
  p.goodput_qps = r.goodput_qps;
  p.p50_us = r.latency_us.percentile(0.50);
  p.p99_us = r.latency_us.percentile(0.99);
  p.shed = r.shed;
  p.errors = r.errors;
  p.client_dropped = r.client_dropped;
  p.outstanding_end = r.outstanding;
  return p;
}

SweepResult run_sweep(const ConfigDef& cfg, bool shedding,
                      const std::vector<double>& rates, uint64_t measure_us,
                      char mix) {
  SweepResult s;
  s.config = cfg.name;
  s.shedding = shedding;
  for (double rate : rates) {
    SweepPoint p = run_point(cfg, shedding, rate, measure_us, mix);
    std::fprintf(stderr,
                 "%-6s shed=%-3s λ=%7.0f/s  goodput=%7.0f/s  p50=%6lluus  "
                 "p99=%8lluus  shed=%-6llu backlog=%llu\n",
                 cfg.name, shedding ? "on" : "off", p.rate, p.goodput_qps,
                 (unsigned long long)p.p50_us, (unsigned long long)p.p99_us,
                 (unsigned long long)p.shed,
                 (unsigned long long)p.outstanding_end);
    if (p.goodput_qps >= 0.90 * p.offered_qps && p.p99_us < kCollapseP99Us) {
      s.knee_qps = std::max(s.knee_qps, p.rate);
    }
    s.points.push_back(p);
  }
  return s;
}

Json point_json(const SweepPoint& p) {
  Json j = Json::object();
  j.set("rate_per_sec", Json::number(p.rate));
  j.set("offered_qps", Json::number(p.offered_qps));
  j.set("goodput_qps", Json::number(p.goodput_qps));
  j.set("p50_us", Json::number(double(p.p50_us)));
  j.set("p99_us", Json::number(double(p.p99_us)));
  j.set("shed", Json::number(double(p.shed)));
  j.set("errors", Json::number(double(p.errors)));
  j.set("client_dropped", Json::number(double(p.client_dropped)));
  j.set("backlog_end", Json::number(double(p.outstanding_end)));
  return j;
}

}  // namespace
}  // namespace bespokv::bench

int main(int argc, char** argv) {
  using namespace bespokv;
  using namespace bespokv::bench;
  bool json = false;
  bool quick = false;
  char mix = 'B';
  std::string csv_path;
  std::string only_config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--mix") == 0 && i + 1 < argc) {
      mix = static_cast<char>(std::toupper(argv[++i][0]));
    } else if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      only_config = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_capacity [--json] [--csv FILE] [--mix A..F] "
                   "[--quick] [--config ms_sc|ms_ec|aa_ec]\n");
      return 2;
    }
  }

  const ConfigDef configs[] = {
      {"ms_sc", Topology::kMasterSlave, Consistency::kStrong},
      {"ms_ec", Topology::kMasterSlave, Consistency::kEventual},
      {"aa_ec", Topology::kActiveActive, Consistency::kEventual},
  };
  // Sweep through the knee of a 2-shard/3-replica cluster whose nodes
  // serialize at ~10k ops/s: strong MS reads concentrate on the two masters
  // (knee around 20k), eventual configs spread reads over all six replicas
  // (knee around 50-60k). λ is the aggregate of the modeled million-client
  // population (e.g. 64k/s = 1M clients at 0.064 ops/s each).
  const std::vector<double> rates =
      quick ? std::vector<double>{8'000, 32'000, 96'000}
            : std::vector<double>{8'000, 16'000, 32'000, 48'000, 64'000,
                                  96'000};
  const uint64_t measure_us = quick ? 1'000'000 : 2'000'000;

  std::vector<SweepResult> sweeps;
  for (const ConfigDef& cfg : configs) {
    if (!only_config.empty() && only_config != cfg.name) continue;
    for (bool shedding : {false, true}) {
      sweeps.push_back(run_sweep(cfg, shedding, rates, measure_us, mix));
    }
  }

  // Gate: at the top swept rate, shedding must bound p99 where the unshed
  // run has collapsed (diverging p99 or a standing backlog).
  bool gate = true;
  std::fprintf(stderr, "\n# config  knee(off)   knee(on)   p99@max(off)  p99@max(on)\n");
  for (size_t i = 0; i + 1 < sweeps.size(); i += 2) {
    const SweepResult& off = sweeps[i];
    const SweepResult& on = sweeps[i + 1];
    const SweepPoint& off_max = off.points.back();
    const SweepPoint& on_max = on.points.back();
    const bool off_collapsed = off_max.p99_us >= kCollapseP99Us ||
                               off_max.outstanding_end > 1'000;
    const bool on_bounded = on_max.p99_us < kCollapseP99Us;
    if (!(off_collapsed && on_bounded)) gate = false;
    std::fprintf(stderr, "%-8s %9.0f %10.0f %12llu %12llu  %s\n",
                 off.config.c_str(), off.knee_qps, on.knee_qps,
                 (unsigned long long)off_max.p99_us,
                 (unsigned long long)on_max.p99_us,
                 off_collapsed && on_bounded ? "PASS" : "FAIL");
  }
  std::fprintf(stderr, "# gate_shedding_bounds_p99: %s\n",
               gate ? "PASS" : "FAIL");

  if (json) {
    Json j = Json::object();
    j.set("bench", Json::string("capacity"));
    j.set("mix", Json::string(std::string("ycsb_") + char(std::tolower(mix))));
    j.set("modeled_clients", Json::number(double(kModeledClients)));
    j.set("collapse_p99_us", Json::number(double(kCollapseP99Us)));
    j.set("gate_shedding_bounds_p99", Json::boolean(gate));
    Json arr = Json::array();
    for (const SweepResult& s : sweeps) {
      Json sj = Json::object();
      sj.set("config", Json::string(s.config));
      sj.set("shedding", Json::boolean(s.shedding));
      sj.set("knee_qps", Json::number(s.knee_qps));
      Json pts = Json::array();
      for (const SweepPoint& p : s.points) pts.push(point_json(p));
      sj.set("points", std::move(pts));
      arr.push(std::move(sj));
    }
    j.set("sweeps", std::move(arr));
    std::ofstream out("BENCH_capacity.json");
    out << j.dump(2) << "\n";
    std::fprintf(stderr, "bench_capacity: wrote BENCH_capacity.json\n");
  }
  if (!csv_path.empty()) {
    std::ofstream out(csv_path, std::ios::app);
    out << "mix,config,shedding,knee_qps,p99_at_max_us,shed_at_max\n";
    for (const SweepResult& s : sweeps) {
      const SweepPoint& last = s.points.back();
      out << "ycsb_" << char(std::tolower(mix)) << ',' << s.config << ','
          << (s.shedding ? "on" : "off") << ',' << s.knee_qps << ','
          << last.p99_us << ',' << last.shed << "\n";
    }
    std::fprintf(stderr, "bench_capacity: appended knee rows to %s\n",
                 csv_path.c_str());
  }
  return gate ? 0 : 1;
}
