// Multi-core controlet runtime sweep: aggregate throughput and latency of a
// single sharded datalet node as its core count grows, on both fabrics.
//
//   Part A — SimFabric per-core service model (SimNodeOpts::cores): a
//   closed-loop virtual-time client fleet saturates one node running an
//   8-shard ShardedDataletService at cores = {1, 2, 4, 8}. Deterministic:
//   the DES shows the pure queueing-model scaling (throughput ~ cores until
//   shards bound it), independent of host hardware.
//
//   Part B — TcpFabric reactors (thread-per-core epoll loops): raw-socket
//   pipelined clients drive the same 8-shard service at reactors =
//   {1, 2, 4, 8}. Real threads and sockets, so the visible scaling is capped
//   by the host's core count — the JSON records host_cores so baselines are
//   interpreted against the machine that produced them.
//
// Usage: bench_multicore [--json] [--measure-us=N] [--skip-tcp]
//   --json emits a machine-readable summary (BENCH_multicore.json baseline)
//   on stdout instead of the human table.
#include <poll.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/datalet/sharded_service.h"
#include "src/net/envelope.h"
#include "src/net/sim_fabric.h"
#include "src/net/tcp_fabric.h"

namespace bespokv {
namespace {

constexpr int kShards = 8;
constexpr int kNumKeys = 1024;
constexpr int kValueBytes = 64;

struct Point {
  std::string fabric;  // "sim" | "tcp"
  int cores = 1;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

uint64_t pct(std::vector<uint64_t>& v, double p) {
  if (v.empty()) return 0;
  size_t idx = size_t(p * double(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + long(idx), v.end());
  return v[idx];
}

uint64_t wall_us() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now().time_since_epoch()).count());
}

// --------------------------- Part A: sim cores ------------------------------

Point run_sim_point(int cores, uint64_t measure_us) {
  SimFabricOpts fopts;
  fopts.seed = 42;
  SimFabric sim(fopts);

  SimNodeOpts nopts;
  nopts.cores = cores;
  sim.add_node("srv", std::make_shared<ShardedDataletService>("tHT", kShards),
               nopts);
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* cli = sim.add_node("cli", std::make_shared<LambdaService>(
      [](Runtime&, const Addr&, Message, Replier r) { r({}); }), copts);

  const uint64_t warmup_us = 200'000;
  const uint64_t end_us = warmup_us + measure_us;
  struct Stats {
    uint64_t ops = 0;
    std::vector<uint64_t> lat;
  };
  auto stats = std::make_shared<Stats>();
  auto rng = std::make_shared<Rng>(7);

  // Closed loop: 64 outstanding ops, enough to keep 8 cores busy through the
  // round-trip latency.
  std::function<void()> issue = [cli, stats, rng, warmup_us, end_us, &issue] {
    if (cli->now_us() >= end_us) return;
    const std::string key = "k" + std::to_string(rng->next_u64(kNumKeys));
    Message req = rng->next_bool(0.5)
                      ? Message::put(key, std::string(kValueBytes, 'v'))
                      : Message::get(key);
    const uint64_t t0 = cli->now_us();
    cli->call("srv", std::move(req),
              [cli, stats, warmup_us, end_us, t0, &issue](Status st, Message) {
                const uint64_t t1 = cli->now_us();
                if (st.ok() && t0 >= warmup_us && t1 <= end_us) {
                  ++stats->ops;
                  stats->lat.push_back(t1 - t0);
                }
                issue();
              });
  };
  sim.post_to("cli", [&issue] {
    for (int i = 0; i < 64; ++i) issue();
  });
  sim.run_until(end_us + 100'000);

  Point p;
  p.fabric = "sim";
  p.cores = cores;
  p.ops = stats->ops;
  p.ops_per_sec = double(stats->ops) * 1e6 / double(measure_us);
  p.p50_us = pct(stats->lat, 0.50);
  p.p99_us = pct(stats->lat, 0.99);
  return p;
}

// -------------------------- Part B: tcp reactors ----------------------------

int dial(int port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(uint16_t(port));
  inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += size_t(n);
  }
  return true;
}

// One client thread: `conns` pipelined connections, each keeping `depth`
// requests outstanding; counts completions and per-op latency inside the
// measure window.
struct TcpWorker {
  uint64_t ops = 0;
  std::vector<uint64_t> lat;
};

void tcp_worker(int tid, int port, int conns, int depth, uint64_t warmup_end,
                uint64_t measure_end, TcpWorker* out) {
  struct WConn {
    int fd = -1;
    std::string rbuf;
    std::unordered_map<uint64_t, uint64_t> inflight;  // rpc_id -> send us
    uint64_t next_id = 1;
  };
  std::vector<WConn> cs(static_cast<size_t>(conns));
  for (auto& c : cs) {
    c.fd = dial(port);
    if (c.fd < 0) return;  // counted as a zero-op worker
  }
  Rng rng(uint64_t(tid) * 7919 + 11);
  const std::string blob(kValueBytes, 'v');
  const std::string from = "bench/t" + std::to_string(tid);

  auto fill = [&](WConn& c) {
    while (c.inflight.size() < size_t(depth)) {
      Envelope env;
      env.rpc_id = c.next_id++;
      env.kind = EnvelopeKind::kRequest;
      env.from = from;
      const std::string key = "k" + std::to_string(rng.next_u64(kNumKeys));
      env.msg = rng.next_bool(0.5) ? Message::put(key, blob)
                                   : Message::get(key);
      std::string frame;
      encode_envelope(env, &frame);
      c.inflight.emplace(env.rpc_id, wall_us());
      if (!send_all(c.fd, frame.data(), frame.size())) return;
    }
  };
  for (auto& c : cs) fill(c);

  std::vector<pollfd> pfds(cs.size());
  char buf[16 * 1024];
  while (wall_us() < measure_end) {
    for (size_t i = 0; i < cs.size(); ++i) {
      pfds[i] = {cs[i].fd, POLLIN, 0};
    }
    if (poll(pfds.data(), nfds_t(pfds.size()), 100) <= 0) continue;
    for (size_t i = 0; i < cs.size(); ++i) {
      if (!(pfds[i].revents & (POLLIN | POLLHUP))) continue;
      WConn& c = cs[i];
      ssize_t n;
      while ((n = recv(c.fd, buf, sizeof(buf), MSG_DONTWAIT)) > 0) {
        c.rbuf.append(buf, size_t(n));
      }
      if (n == 0) return;  // server gone
      Envelope env;
      size_t consumed = 0;
      while (decode_envelope(c.rbuf, &env, &consumed).ok() && consumed > 0) {
        c.rbuf.erase(0, consumed);
        consumed = 0;
        auto it = c.inflight.find(env.rpc_id);
        if (it == c.inflight.end()) continue;
        const uint64_t t1 = wall_us();
        if (it->second >= warmup_end && t1 <= measure_end) {
          ++out->ops;
          out->lat.push_back(t1 - it->second);
        }
        c.inflight.erase(it);
      }
      fill(c);
    }
  }
  for (auto& c : cs) close(c.fd);
}

Point run_tcp_point(int reactors, uint64_t measure_us) {
  TcpFabricOpts opts;
  opts.reactors = reactors;
  TcpFabric fab(opts);
  const int port = TcpFabric::pick_port();
  fab.add_node("127.0.0.1:" + std::to_string(port),
               std::make_shared<ShardedDataletService>("tHT", kShards));

  // Enough parallel load to saturate every reactor: 4 threads x 4 conns x
  // 32-deep pipelines = 512 outstanding ops.
  constexpr int kThreads = 4, kConns = 4, kDepth = 32;
  const uint64_t warmup_end = wall_us() + 300'000;
  const uint64_t measure_end = warmup_end + measure_us;
  std::vector<TcpWorker> workers(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(tcp_worker, t, port, kConns, kDepth, warmup_end,
                         measure_end, &workers[size_t(t)]);
  }
  for (auto& t : threads) t.join();

  Point p;
  p.fabric = "tcp";
  p.cores = reactors;
  std::vector<uint64_t> lat;
  for (auto& w : workers) {
    p.ops += w.ops;
    lat.insert(lat.end(), w.lat.begin(), w.lat.end());
  }
  p.ops_per_sec = double(p.ops) * 1e6 / double(measure_us);
  p.p50_us = pct(lat, 0.50);
  p.p99_us = pct(lat, 0.99);
  return p;
}

// --------------------------------- main -------------------------------------

void print_table(const char* title, const std::vector<Point>& pts) {
  std::printf("%s\n", title);
  std::printf("  %-8s %10s %12s %8s %8s %8s\n", "cores", "ops", "ops/sec",
              "p50us", "p99us", "speedup");
  const double base = pts.empty() ? 1.0 : std::max(1.0, pts[0].ops_per_sec);
  for (const Point& p : pts) {
    std::printf("  %-8d %10llu %12.0f %8llu %8llu %7.2fx\n", p.cores,
                static_cast<unsigned long long>(p.ops), p.ops_per_sec,
                static_cast<unsigned long long>(p.p50_us),
                static_cast<unsigned long long>(p.p99_us),
                p.ops_per_sec / base);
  }
}

}  // namespace
}  // namespace bespokv

int main(int argc, char** argv) {
  using namespace bespokv;
  bool json = false;
  bool skip_tcp = false;
  uint64_t measure_us = 1'000'000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--skip-tcp") {
      skip_tcp = true;
    } else if (arg.rfind("--measure-us=", 0) == 0) {
      measure_us = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_multicore [--json] [--measure-us=N] "
                   "[--skip-tcp]\n");
      return 2;
    }
  }

  const std::vector<int> sweep = {1, 2, 4, 8};
  std::vector<Point> sim_pts, tcp_pts;
  for (int c : sweep) {
    sim_pts.push_back(run_sim_point(c, measure_us));
    std::fprintf(stderr, "bench_multicore: sim cores=%d done\n", c);
  }
  if (!skip_tcp) {
    for (int r : sweep) {
      tcp_pts.push_back(run_tcp_point(r, measure_us));
      std::fprintf(stderr, "bench_multicore: tcp reactors=%d done\n", r);
    }
  }

  if (json) {
    Json j = Json::object();
    j.set("bench", Json::string("multicore"));
    j.set("host_cores",
          Json::number(double(std::thread::hardware_concurrency())));
    j.set("shards", Json::number(kShards));
    j.set("measure_us", Json::number(double(measure_us)));
    Json arr = Json::array();
    auto add = [&arr](const std::vector<Point>& pts) {
      for (const Point& p : pts) {
        Json pj = Json::object();
        pj.set("fabric", Json::string(p.fabric));
        pj.set("cores", Json::number(p.cores));
        pj.set("ops", Json::number(double(p.ops)));
        pj.set("ops_per_sec", Json::number(p.ops_per_sec));
        pj.set("p50_us", Json::number(double(p.p50_us)));
        pj.set("p99_us", Json::number(double(p.p99_us)));
        arr.push(std::move(pj));
      }
    };
    add(sim_pts);
    add(tcp_pts);
    j.set("points", std::move(arr));
    std::printf("%s\n", j.dump(2).c_str());
    return 0;
  }

  std::printf("Multi-core controlet runtime sweep (%d-shard datalet)\n\n",
              kShards);
  print_table("SimFabric per-core service model:", sim_pts);
  if (!tcp_pts.empty()) {
    std::printf("\n");
    print_table("TcpFabric reactors (host-limited; see host_cores):", tcp_pts);
    std::printf("\nhost cores: %u\n", std::thread::hardware_concurrency());
  }
  return 0;
}
