#include "bench/net_fastpath.h"

#include <chrono>
#include <future>
#include <memory>

#include "bench/bench_util.h"
#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/common/histogram.h"
#include "src/net/tcp_fabric.h"
#include "src/obs/metrics.h"

namespace bespokv::bench {

namespace {

uint64_t wall_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string key_name(int i) { return "fp-key-" + std::to_string(i); }

// Scrapes a node's metrics registry over the wire (kStats), exactly as an
// external monitoring client would; the "net.*" counters replaced the old
// in-process FabricStats accessor.
obs::MetricsSnapshot scrape_stats(TcpFabric& fab, const Addr& addr) {
  Message req;
  req.op = Op::kStats;
  auto rep = fab.call_sync(addr, std::move(req));
  if (!rep.ok()) return {};
  return obs::MetricsSnapshot::from_json(rep.value().value)
      .value_or(obs::MetricsSnapshot{});
}

// Runs `fn` on the client node's runtime and blocks until `fn` has arranged
// for the returned future's promise to fire.
void run_on(Runtime* rt, std::function<void(std::promise<void>&)> fn) {
  std::promise<void> done;
  auto fut = done.get_future();
  rt->post([&] { fn(done); });
  fut.wait();
}

}  // namespace

std::vector<FastpathPoint> run_tcp_fastpath_sweep(const FastpathOptions& opts) {
  TcpFabric fab;
  ClusterOptions copts;
  copts.topology = Topology::kMasterSlave;
  copts.consistency = Consistency::kEventual;
  copts.num_shards = 1;
  copts.num_replicas = 3;
  Cluster cluster(fab, copts);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // The client lives on its own fabric node so batched RPCs share that
  // node's outgoing connections (and therefore its coalesced flushes).
  const Addr caddr = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  Runtime* crt = fab.add_node(
      caddr, std::make_shared<LambdaService>(
                 [](Runtime&, const Addr&, Message, Replier reply) {
                   reply(Message::reply(Code::kInvalid));
                 }));
  ClientConfig ccfg;
  ccfg.coordinator = cluster.coordinator_addr();
  auto kv = std::make_shared<KvClient>(crt, ccfg);
  run_on(crt, [&](std::promise<void>& p) {
    kv->connect([&p](Status) { p.set_value(); });
  });

  // Preload the keyspace (pipelined too — warms the write path).
  const std::string value(static_cast<size_t>(opts.value_bytes), 'v');
  for (int base = 0; base < opts.num_keys; base += 128) {
    std::vector<KV> kvs;
    for (int i = base; i < std::min(base + 128, opts.num_keys); ++i) {
      kvs.push_back(KV{key_name(i), value, 0});
    }
    run_on(crt, [&](std::promise<void>& p) {
      kv->batch_put(std::move(kvs), [&p](Status) { p.set_value(); });
    });
  }

  std::vector<FastpathPoint> points;
  int next_key = 0;
  for (int batch : opts.batch_sizes) {
    FastpathPoint pt;
    pt.batch = batch;
    Histogram rtt;
    uint64_t errors = 0;
    const obs::MetricsSnapshot before = scrape_stats(fab, caddr);
    const uint64_t t_start = wall_us();
    const uint64_t deadline = t_start + opts.measure_us;
    uint64_t now = t_start;
    while (now < deadline) {
      const uint64_t t0 = now;
      if (opts.do_puts) {
        std::vector<KV> kvs;
        kvs.reserve(static_cast<size_t>(batch));
        for (int i = 0; i < batch; ++i) {
          kvs.push_back(KV{key_name(next_key++ % opts.num_keys), value, 0});
        }
        run_on(crt, [&](std::promise<void>& p) {
          kv->batch_put(std::move(kvs), [&errors, &p](Status s) {
            if (!s.ok()) ++errors;
            p.set_value();
          });
        });
      } else {
        std::vector<std::string> keys;
        keys.reserve(static_cast<size_t>(batch));
        for (int i = 0; i < batch; ++i) {
          keys.push_back(key_name(next_key++ % opts.num_keys));
        }
        run_on(crt, [&](std::promise<void>& p) {
          // Strong level pins reads to the shard master: stable routing and
          // no replication-lag misses under the eventual topology.
          kv->batch_get(std::move(keys),
                        [&errors, &p](std::vector<Result<std::string>> rs) {
                          for (const auto& r : rs) {
                            if (!r.ok()) ++errors;
                          }
                          p.set_value();
                        },
                        "", ConsistencyLevel::kStrong);
        });
      }
      now = wall_us();
      rtt.record(now - t0);
      pt.ops += static_cast<uint64_t>(batch);
    }
    const obs::MetricsSnapshot after = scrape_stats(fab, caddr);
    const double elapsed_s = static_cast<double>(now - t_start) / 1e6;
    pt.errors = errors;
    pt.ops_per_sec = elapsed_s > 0 ? static_cast<double>(pt.ops) / elapsed_s : 0;
    pt.p50_us = rtt.percentile(0.50);
    pt.p99_us = rtt.percentile(0.99);
    const uint64_t dmsgs =
        after.counter("net.msgs_sent") - before.counter("net.msgs_sent");
    const uint64_t dflush =
        after.counter("net.flushes") - before.counter("net.flushes");
    pt.coalesce = dflush > 0 ? static_cast<double>(dmsgs) /
                                   static_cast<double>(dflush)
                             : 1.0;
    points.push_back(pt);
  }
  fab.shutdown();
  return points;
}

void print_fastpath_table(const std::string& op_name,
                          const std::vector<FastpathPoint>& points) {
  print_row("%-6s %8s %10s %12s %12s %10s %8s", "batch", "ops",
            ("k" + op_name + "/s").c_str(), "batch-p50-us", "batch-p99-us",
            "coalesce", "errors");
  for (const auto& p : points) {
    print_row("%-6d %8llu %10.1f %12llu %12llu %10.1f %8llu", p.batch,
              static_cast<unsigned long long>(p.ops), p.ops_per_sec / 1000.0,
              static_cast<unsigned long long>(p.p50_us),
              static_cast<unsigned long long>(p.p99_us), p.coalesce,
              static_cast<unsigned long long>(p.errors));
  }
}

}  // namespace bespokv::bench
