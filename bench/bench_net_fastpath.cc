// Network fast-path bench: real TcpFabric on loopback, pipelined client
// batches of {1, 8, 32, 128}. Measures how far the coalesced writev flush +
// in-place envelope encoding amortize per-message syscall cost — the
// kernel-TCP rendition of the paper's Appendix E batching argument.
//
// Usage: bench_net_fastpath [measure_us_per_point]   (default 2s per point)
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "bench/net_fastpath.h"

using namespace bespokv::bench;

int main(int argc, char** argv) {
  FastpathOptions opts;
  if (argc > 1) {
    opts.measure_us = std::strtoull(argv[1], nullptr, 10);
    if (opts.measure_us == 0) {
      std::fprintf(stderr, "usage: %s [measure_us_per_point > 0]\n", argv[0]);
      return 2;
    }
  }

  print_header("Net fastpath", "pipelined batches over loopback TcpFabric");

  print_row("GET sweep (strong reads, 1 shard, value=64B):");
  opts.do_puts = false;
  auto gets = run_tcp_fastpath_sweep(opts);
  print_fastpath_table("get", gets);

  print_row("PUT sweep (eventual MS, 3 replicas):");
  opts.do_puts = true;
  auto puts = run_tcp_fastpath_sweep(opts);
  print_fastpath_table("put", puts);

  // Headline ratio the run log tracks: batched vs unbatched throughput.
  const auto speedup_line = [](const char* op,
                               const std::vector<FastpathPoint>& pts) {
    const FastpathPoint* b1 = nullptr;
    const FastpathPoint* b32 = nullptr;
    for (const auto& p : pts) {
      if (p.batch == 1) b1 = &p;
      if (p.batch == 32) b32 = &p;
    }
    if (b1 && b32 && b1->ops_per_sec > 0) {
      print_row("batch32/batch1 speedup: %.2fx (%s)",
                b32->ops_per_sec / b1->ops_per_sec, op);
    }
  };
  speedup_line("get", gets);
  speedup_line("put", puts);
  return 0;
}
