// Engine/codec microbenchmarks (google-benchmark). These measure the real
// CPU cost of the building blocks and back the per-op service-time
// calibration used by the simulated cluster benches (bench_util.h): e.g. the
// tLSM-vs-tHT per-op ratio feeds the Cassandra-like node cost in Fig. 12.
#include <benchmark/benchmark.h>

#include "src/common/hash.h"
#include "src/common/hash_ring.h"
#include "src/common/rng.h"
#include "src/datalet/datalet.h"
#include "src/net/envelope.h"
#include "src/proto/codec.h"
#include "src/proto/text_protocol.h"

namespace bespokv {
namespace {

void BM_EnginePut(benchmark::State& state, const char* kind) {
  auto d = make_datalet(kind, {});
  Rng rng(7);
  uint64_t seq = 0;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(rng.next_u64(100'000));
    d->put(key, "value-payload-32-bytes-of-data!!", ++seq);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_EngineGet(benchmark::State& state, const char* kind) {
  auto d = make_datalet(kind, {});
  Rng rng(7);
  for (uint64_t i = 0; i < 100'000; ++i) {
    d->put("key" + std::to_string(i), "value-payload-32-bytes-of-data!!", i);
  }
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(rng.next_u64(100'000));
    benchmark::DoNotOptimize(d->get(key));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK_CAPTURE(BM_EnginePut, tHT, "tHT");
BENCHMARK_CAPTURE(BM_EnginePut, tMT, "tMT");
BENCHMARK_CAPTURE(BM_EnginePut, tLSM, "tLSM");
BENCHMARK_CAPTURE(BM_EnginePut, tLog, "tLog");
BENCHMARK_CAPTURE(BM_EngineGet, tHT, "tHT");
BENCHMARK_CAPTURE(BM_EngineGet, tMT, "tMT");
BENCHMARK_CAPTURE(BM_EngineGet, tLSM, "tLSM");
BENCHMARK_CAPTURE(BM_EngineGet, tLog, "tLog");

void BM_EngineScan(benchmark::State& state, const char* kind) {
  auto d = make_datalet(kind, {});
  for (uint64_t i = 0; i < 100'000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%08llu", static_cast<unsigned long long>(i));
    d->put(buf, "v", i);
  }
  Rng rng(3);
  for (auto _ : state) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%08llu",
                  static_cast<unsigned long long>(rng.next_u64(99'000)));
    benchmark::DoNotOptimize(d->scan(buf, "", 100));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_EngineScan, tMT, "tMT");
BENCHMARK_CAPTURE(BM_EngineScan, tLSM, "tLSM");

void BM_CodecEncode(benchmark::State& state) {
  Message m = Message::put(std::string(16, 'k'), std::string(32, 'v'));
  for (auto _ : state) {
    std::string buf;
    encode_message(m, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  Message m = Message::put(std::string(16, 'k'), std::string(32, 'v'));
  std::string buf;
  encode_message(m, &buf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_message(buf));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CodecDecode);

// ---- tracing overhead gate --------------------------------------------------
//
// The pre-observability envelope codec, frozen verbatim as the in-binary A/B
// baseline: no trace-tail branch on encode, whole-payload (strict) message
// decode. CI compares BM_EnvelopeRoundtrip against this and fails the build
// if the tracing-disabled path regresses by more than 5%.

void encode_envelope_noobs(const Envelope& env, std::string* out) {
  out->reserve(out->size() + 4 + 16 + env.from.size() +
               encoded_message_size_hint(env.msg));
  Encoder e(out);
  const size_t len_at = e.mark();
  e.put_u32_le(0);
  e.put_varint(env.rpc_id);
  e.put_u8(static_cast<uint8_t>(env.kind));
  e.put_bytes(env.from);
  encode_message(env.msg, out);
  e.patch_u32_le(len_at, static_cast<uint32_t>(out->size() - len_at - 4));
}

Status decode_envelope_noobs(std::string_view buf, Envelope* env,
                             size_t* consumed) {
  *consumed = 0;
  if (buf.size() < 4) return Status::Ok();
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buf[static_cast<size_t>(i)]))
           << (8 * i);
  }
  if (len > 64u * 1024 * 1024) return Status::Corruption("oversized frame");
  if (buf.size() < 4 + static_cast<size_t>(len)) return Status::Ok();
  std::string_view payload = buf.substr(4, len);
  Decoder d(payload);
  auto rpc = d.varint();
  if (!rpc.ok()) return rpc.status();
  auto kind = d.u8();
  if (!kind.ok()) return kind.status();
  auto from = d.bytes();
  if (!from.ok()) return from.status();
  auto msg = decode_message(payload.substr(payload.size() - d.remaining()));
  if (!msg.ok()) return msg.status();
  env->rpc_id = rpc.value();
  env->kind = static_cast<EnvelopeKind>(kind.value());
  env->from = std::move(from).value();
  env->msg = std::move(msg).value();
  *consumed = 4 + static_cast<size_t>(len);
  return Status::Ok();
}

Envelope overhead_envelope(bool traced) {
  Envelope env;
  env.rpc_id = 12345;
  env.kind = EnvelopeKind::kRequest;
  env.from = "10.0.0.1:7000";
  env.msg = Message::put(std::string(16, 'k'), std::string(32, 'v'));
  if (traced) {
    env.msg.trace.trace_id = 0x1234567890abcdefULL;
    env.msg.trace.span_id = 0xfedcba0987654321ULL;
    env.msg.trace.hop = 2;
  }
  return env;
}

void BM_EnvelopeRoundtrip(benchmark::State& state) {
  const Envelope env = overhead_envelope(/*traced=*/false);
  for (auto _ : state) {
    std::string buf;
    encode_envelope(env, &buf);
    Envelope out;
    size_t consumed = 0;
    benchmark::DoNotOptimize(decode_envelope(buf, &out, &consumed));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EnvelopeRoundtrip);

void BM_EnvelopeRoundtripNoObsBaseline(benchmark::State& state) {
  const Envelope env = overhead_envelope(/*traced=*/false);
  for (auto _ : state) {
    std::string buf;
    encode_envelope_noobs(env, &buf);
    Envelope out;
    size_t consumed = 0;
    benchmark::DoNotOptimize(decode_envelope_noobs(buf, &out, &consumed));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EnvelopeRoundtripNoObsBaseline);

void BM_EnvelopeRoundtripTraced(benchmark::State& state) {
  const Envelope env = overhead_envelope(/*traced=*/true);
  for (auto _ : state) {
    std::string buf;
    encode_envelope(env, &buf);
    Envelope out;
    size_t consumed = 0;
    benchmark::DoNotOptimize(decode_envelope(buf, &out, &consumed));
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EnvelopeRoundtripTraced);

void BM_RespParse(benchmark::State& state) {
  RespParser p;
  const std::string wire = p.format_request(Message::put("key-16-bytes!!!!",
                                                         std::string(32, 'v')));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.parse_request(wire));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RespParse);

void BM_Zipfian(benchmark::State& state) {
  ZipfianGenerator z(1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.next());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Zipfian);

void BM_HashRingLookup(benchmark::State& state) {
  HashRing ring;
  for (int i = 0; i < 48; ++i) ring.add_node("node" + std::to_string(i));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.lookup("key" + std::to_string(rng.next_u64(1'000'000))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashRingLookup);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace bespokv

BENCHMARK_MAIN();
