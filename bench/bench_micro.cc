// Engine/codec microbenchmarks (google-benchmark). These measure the real
// CPU cost of the building blocks and back the per-op service-time
// calibration used by the simulated cluster benches (bench_util.h): e.g. the
// tLSM-vs-tHT per-op ratio feeds the Cassandra-like node cost in Fig. 12.
#include <benchmark/benchmark.h>

#include "src/common/hash.h"
#include "src/common/hash_ring.h"
#include "src/common/rng.h"
#include "src/datalet/datalet.h"
#include "src/proto/codec.h"
#include "src/proto/text_protocol.h"

namespace bespokv {
namespace {

void BM_EnginePut(benchmark::State& state, const char* kind) {
  auto d = make_datalet(kind, {});
  Rng rng(7);
  uint64_t seq = 0;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(rng.next_u64(100'000));
    d->put(key, "value-payload-32-bytes-of-data!!", ++seq);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_EngineGet(benchmark::State& state, const char* kind) {
  auto d = make_datalet(kind, {});
  Rng rng(7);
  for (uint64_t i = 0; i < 100'000; ++i) {
    d->put("key" + std::to_string(i), "value-payload-32-bytes-of-data!!", i);
  }
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(rng.next_u64(100'000));
    benchmark::DoNotOptimize(d->get(key));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

BENCHMARK_CAPTURE(BM_EnginePut, tHT, "tHT");
BENCHMARK_CAPTURE(BM_EnginePut, tMT, "tMT");
BENCHMARK_CAPTURE(BM_EnginePut, tLSM, "tLSM");
BENCHMARK_CAPTURE(BM_EnginePut, tLog, "tLog");
BENCHMARK_CAPTURE(BM_EngineGet, tHT, "tHT");
BENCHMARK_CAPTURE(BM_EngineGet, tMT, "tMT");
BENCHMARK_CAPTURE(BM_EngineGet, tLSM, "tLSM");
BENCHMARK_CAPTURE(BM_EngineGet, tLog, "tLog");

void BM_EngineScan(benchmark::State& state, const char* kind) {
  auto d = make_datalet(kind, {});
  for (uint64_t i = 0; i < 100'000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%08llu", static_cast<unsigned long long>(i));
    d->put(buf, "v", i);
  }
  Rng rng(3);
  for (auto _ : state) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%08llu",
                  static_cast<unsigned long long>(rng.next_u64(99'000)));
    benchmark::DoNotOptimize(d->scan(buf, "", 100));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_EngineScan, tMT, "tMT");
BENCHMARK_CAPTURE(BM_EngineScan, tLSM, "tLSM");

void BM_CodecEncode(benchmark::State& state) {
  Message m = Message::put(std::string(16, 'k'), std::string(32, 'v'));
  for (auto _ : state) {
    std::string buf;
    encode_message(m, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  Message m = Message::put(std::string(16, 'k'), std::string(32, 'v'));
  std::string buf;
  encode_message(m, &buf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_message(buf));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CodecDecode);

void BM_RespParse(benchmark::State& state) {
  RespParser p;
  const std::string wire = p.format_request(Message::put("key-16-bytes!!!!",
                                                         std::string(32, 'v')));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.parse_request(wire));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_RespParse);

void BM_Zipfian(benchmark::State& state) {
  ZipfianGenerator z(1'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.next());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Zipfian);

void BM_HashRingLookup(benchmark::State& state) {
  HashRing ring;
  for (int i = 0; i < 48; ++i) ring.add_node("node" + std::to_string(i));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.lookup("key" + std::to_string(rng.next_u64(1'000'000))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HashRingLookup);

void BM_Crc32c(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace bespokv

BENCHMARK_MAIN();
