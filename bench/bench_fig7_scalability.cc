// Fig. 7 reproduction: horizontal scalability of bespoKV-enabled tHT from 3
// to 48 nodes, for all four topology/consistency combinations, under
// read-intensive (95% GET) and write-intensive (50% GET) YCSB workloads with
// uniform and Zipfian(0.99) key popularity. 3 replicas per shard.
//
// Paper's shape: all configurations scale ~linearly with node count; MS
// beats AA under SC (chain replication vs DLM locking); AA matches/exceeds
// MS under EC (writes are spread over all actives).
#include "bench/bench_util.h"

using namespace bespokv;
using namespace bespokv::bench;

int main() {
  const int node_counts[] = {3, 6, 12, 24, 36, 48};
  struct Mix {
    const char* name;
    double get_ratio;
  } mixes[] = {{"95% GET", 0.95}, {"50% GET", 0.50}};
  struct Dist {
    const char* name;
    bool zipf;
  } dists[] = {{"Unif", false}, {"Zipf", true}};
  struct Cfg {
    const char* name;
    Topology t;
    Consistency c;
  } combos[] = {
      {"MS+SC", Topology::kMasterSlave, Consistency::kStrong},
      {"MS+EC", Topology::kMasterSlave, Consistency::kEventual},
      {"AA+SC", Topology::kActiveActive, Consistency::kStrong},
      {"AA+EC", Topology::kActiveActive, Consistency::kEventual},
  };

  print_header("Fig. 7", "BESPOKV scales tHT horizontally (kQPS)");
  print_row("%-6s %-8s %-5s %6s %8s", "combo", "mix", "dist", "nodes", "kQPS");
  for (const auto& combo : combos) {
    for (const auto& mix : mixes) {
      for (const auto& dist : dists) {
        for (int nodes : node_counts) {
          BenchConfig cfg;
          cfg.topology = combo.t;
          cfg.consistency = combo.c;
          cfg.nodes = nodes;
          cfg.workload.num_keys = 100'000;
          cfg.workload.get_ratio = mix.get_ratio;
          cfg.workload.zipfian = dist.zipf;
          cfg.warmup_us = 100'000;
          cfg.measure_us = 250'000;
          // Closed-loop saturation: SC paths have longer per-op latencies
          // (chain hops / lock round trips), so they need more concurrent
          // clients per server to reach capacity. AA+SC is bounded by the
          // DLM anyway ("performs worse as expected in locking based
          // implementation"), so extra clients would only queue there.
          if (combo.c == Consistency::kStrong) {
            cfg.clients_per_node = combo.t == Topology::kActiveActive ? 4 : 8;
          } else {
            cfg.clients_per_node = 5;
          }
          DriverResult r = run_bench(cfg);
          print_row("%-6s %-8s %-5s %6d %8.1f   (err=%llu p50=%lluus p99=%lluus)",
                    combo.name, mix.name, dist.name, nodes, kqps(r),
                    static_cast<unsigned long long>(r.errors),
                    static_cast<unsigned long long>(r.latency_us.percentile(0.5)),
                    static_cast<unsigned long long>(r.latency_us.percentile(0.99)));
        }
      }
    }
  }
  return 0;
}
