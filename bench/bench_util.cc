#include "bench/bench_util.h"

#include <cstdarg>

namespace bespokv::bench {

BenchRig make_rig(const BenchConfig& cfg) {
  BenchRig rig;
  SimFabricOpts fopts;
  fopts.link_latency_us = cfg.link_latency_us;
  fopts.transport = cfg.transport;
  fopts.seed = cfg.seed;
  rig.sim = std::make_unique<SimFabric>(fopts);

  ClusterOptions copts;
  copts.topology = cfg.topology;
  copts.consistency = cfg.consistency;
  copts.num_replicas = cfg.replicas;
  copts.num_shards = std::max(1, cfg.nodes / cfg.replicas);
  copts.datalet_kind = cfg.datalet;
  copts.replica_datalet_kinds = cfg.replica_datalets;
  copts.num_standby = cfg.num_standby;
  copts.partitioner = cfg.partitioner;
  copts.range_splits = cfg.range_splits;
  copts.sim_node.base_service_us = cfg.node_service_us;
  copts.sim_node.per_kb_service_us = 4.0;
  // Benchmarks run failure detection fast enough to watch recovery inside a
  // 40-virtual-second window (Fig. 16), matching the paper's 5s heartbeats
  // scaled to the shorter runs.
  copts.coordinator.hb_period_us = 500'000;
  copts.coordinator.hb_miss_limit = 3;
  copts.controlet.hb_period_us = 250'000;
  rig.cluster = std::make_unique<Cluster>(*rig.sim, copts);
  rig.cluster->start();
  rig.sim->run_for(300'000);  // let controlets pull their shard maps

  DriverOptions dopts;
  dopts.num_clients = cfg.clients_per_node * cfg.nodes;
  dopts.rpc_timeout_us = cfg.client_rpc_timeout_us;
  dopts.workload = cfg.workload;
  dopts.strong_get_fraction = cfg.strong_get_fraction;
  dopts.timeline_bucket_us = cfg.timeline_bucket_us;
  dopts.co_interval_us = cfg.co_interval_us;
  rig.driver = std::make_unique<SimWorkloadDriver>(*rig.sim, *rig.cluster, dopts);
  rig.driver->preload();
  return rig;
}

void BenchRig::warm(const BenchConfig& cfg) {
  driver->start();
  sim->run_for(cfg.warmup_us);
  driver->reset_window();
}

DriverResult run_bench(const BenchConfig& cfg) {
  BenchRig rig = make_rig(cfg);
  rig.warm(cfg);
  rig.sim->run_for(cfg.measure_us);
  DriverResult r = rig.driver->collect();
  rig.driver->stop();
  return r;
}

DriverResult run_baseline_load(
    SimFabric& sim, const BaselineRunOpts& opts,
    std::function<Addr(const WorkloadOp&, uint64_t salt)> route) {
  struct Stats {
    uint64_t ops = 0, errors = 0;
    Histogram lat;
    std::vector<uint64_t> timeline;
    uint64_t window_start = 0;
    bool running = true;
    bool measuring = false;
  };
  auto stats = std::make_shared<Stats>();

  struct ClientState {
    Runtime* rt;
    WorkloadGenerator gen;
    uint64_t salt = 0;
  };
  std::vector<std::shared_ptr<ClientState>> clients;
  for (int i = 0; i < opts.num_clients; ++i) {
    SimNodeOpts copts;
    copts.is_client = true;
    const Addr addr = opts.client_prefix + std::to_string(i);
    Runtime* rt = sim.add_node(addr,
                               std::make_shared<LambdaService>(
                                   [](Runtime&, const Addr&, Message, Replier r) {
                                     r(Message::reply(Code::kInvalid));
                                   }),
                               copts);
    auto c = std::make_shared<ClientState>(
        ClientState{rt, WorkloadGenerator(opts.workload, static_cast<uint64_t>(i)), 0});
    clients.push_back(c);
    sim.post_to(addr, [c, stats, route] {
      auto step = std::make_shared<std::function<void()>>();
      *step = [c, stats, route, step] {
        if (!stats->running) return;
        WorkloadOp op = c->gen.next();
        Message req;
        switch (op.type) {
          case OpType::kPut: req = Message::put(op.key, op.value); break;
          case OpType::kGet: req = Message::get(op.key); break;
          case OpType::kDel: req = Message::del(op.key); break;
          case OpType::kScan:
            req = Message::scan(op.key, op.scan_end, op.scan_limit);
            break;
        }
        const Addr target = route(op, ++c->salt);
        if (target.empty()) {
          c->rt->post(*step);
          return;
        }
        const uint64_t inv = c->rt->now_us();
        c->rt->call(target, std::move(req),
                    [c, stats, step, inv](Status s, Message rep) {
                      if (stats->measuring) {
                        const uint64_t now = c->rt->now_us();
                        const bool ok =
                            s.ok() && (rep.code == Code::kOk ||
                                       rep.code == Code::kNotFound);
                        if (ok) {
                          ++stats->ops;
                          stats->lat.record(now - inv);
                        } else {
                          ++stats->errors;
                        }
                      }
                      (*step)();
                    },
                    500'000);
      };
      (*step)();
    });
  }

  sim.run_for(opts.warmup_us);
  stats->measuring = true;
  stats->window_start = sim.now_us();
  // Timeline bucketing: sample ops counter once per bucket.
  std::vector<uint64_t> marks;
  if (opts.timeline_bucket_us > 0) {
    uint64_t elapsed = 0;
    uint64_t last_ops = stats->ops;
    while (elapsed < opts.measure_us) {
      sim.run_for(opts.timeline_bucket_us);
      elapsed += opts.timeline_bucket_us;
      marks.push_back(stats->ops - last_ops);
      last_ops = stats->ops;
    }
  } else {
    sim.run_for(opts.measure_us);
  }
  stats->running = false;

  DriverResult r;
  r.ops = stats->ops;
  r.errors = stats->errors;
  r.window_us = opts.measure_us;
  r.qps = static_cast<double>(stats->ops) * 1e6 /
          static_cast<double>(opts.measure_us);
  r.latency_us = stats->lat;
  r.timeline = marks;
  return r;
}

void print_header(const std::string& fig, const std::string& title) {
  std::printf("\n=== %s: %s ===\n", fig.c_str(), title.c_str());
}

void print_row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace bespokv::bench
