// Shared harness for the figure-reproduction benchmarks: builds a simulated
// bespoKV deployment of N controlet+datalet nodes (the paper's GCE/testbed
// substitute, DESIGN.md §2), drives it with closed-loop clients through the
// real client library, and reports kQPS/latency rows shaped like the paper's
// plots.
//
// Calibration: node service time and link latency are set so a single
// controlet+datalet pair saturates at roughly the paper's per-VM rate
// (~13-15k QPS on n1-standard-4) and an EC GET costs a few hundred us —
// absolute values are indicative only; the *shape* across configurations is
// the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "src/cluster/cluster.h"
#include "src/net/sim_fabric.h"
#include "src/workload/sim_driver.h"
#include "src/workload/workload.h"

namespace bespokv::bench {

struct BenchConfig {
  Topology topology = Topology::kMasterSlave;
  Consistency consistency = Consistency::kEventual;
  int nodes = 3;              // controlet+datalet pairs; shards = nodes/replicas
  int replicas = 3;
  std::string datalet = "tHT";
  std::vector<std::string> replica_datalets;  // polyglot override
  WorkloadSpec workload;
  int clients_per_node = 3;
  double strong_get_fraction = -1.0;
  uint64_t warmup_us = 200'000;
  uint64_t measure_us = 400'000;
  uint64_t timeline_bucket_us = 0;
  TransportModel transport = TransportModel::socket_model();
  uint64_t link_latency_us = 120;
  // Client-side RPC deadline: failover benches shorten it so closed-loop
  // clients stuck on a dead shard release quickly (the paper's client pool
  // is large enough that stuck threads barely dent aggregate throughput;
  // with a few dozen closed-loop clients the timeout is the lever).
  uint64_t client_rpc_timeout_us = 1'000'000;
  uint64_t node_service_us = 45;   // calibrated per-op CPU cost
  int num_standby = 0;
  uint64_t seed = 42;
  // Keyspace layout: "hash" (default) or "range" with num_shards-1 sorted
  // split points — the rebalance bench needs range placement so a hot key
  // prefix lands on one shard and a live split can shed it.
  std::string partitioner = "hash";
  std::vector<std::string> range_splits;
  // Coordinated-omission correction interval for the driver (see
  // DriverOptions::co_interval_us); 0 disables.
  uint64_t co_interval_us = 0;
};

// A fully-assembled deployment the benches can keep manipulating (failure
// injection, transitions) while the driver runs.
struct BenchRig {
  std::unique_ptr<SimFabric> sim;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<SimWorkloadDriver> driver;

  // Starts clients, runs the warmup, and resets the measurement window.
  void warm(const BenchConfig& cfg);
};

BenchRig make_rig(const BenchConfig& cfg);

// One-shot: build, warm, measure, tear down.
DriverResult run_bench(const BenchConfig& cfg);

// ---------------------------------------------------------------------------
// Output helpers: every bench prints self-describing rows so the run log can
// regenerate the paper's tables/figures directly.

void print_header(const std::string& fig, const std::string& title);
void print_row(const char* fmt, ...);

inline double kqps(const DriverResult& r) { return r.qps / 1000.0; }

// ---------------------------------------------------------------------------
// Closed-loop driver for the baseline systems (Twemproxy/Dynomite/native
// stores), which have no coordinator/shard map: `route` picks the entry node
// for each op ("" skips the op), and the same workload/measurement machinery
// as SimWorkloadDriver applies.

struct BaselineRunOpts {
  int num_clients = 32;
  WorkloadSpec workload;
  uint64_t warmup_us = 100'000;
  uint64_t measure_us = 250'000;
  uint64_t timeline_bucket_us = 0;
  std::string client_prefix = "blc";
};

DriverResult run_baseline_load(
    SimFabric& sim, const BaselineRunOpts& opts,
    std::function<Addr(const WorkloadOp&, uint64_t salt)> route);

}  // namespace bespokv::bench
