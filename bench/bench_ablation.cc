// Ablation benches for the design choices DESIGN.md calls out:
//   (a) tLSM per-run bloom filters: point-read throughput with and without
//       (read amplification is the LSM's Fig. 6 weakness; blooms are what
//       keep it bounded).
//   (b) MS+EC propagation batch size: the batching knob trades master
//       throughput against slave staleness (§C.A's asynchronous batches).
//   (c) Chain length (replica count) under MS+SC: chain replication's write
//       latency grows with the chain, read capacity stays at the tail.
#include <chrono>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/datalet/lsm.h"

using namespace bespokv;
using namespace bespokv::bench;

namespace {

double lsm_read_qps(bool disable_bloom) {
  DataletConfig cfg;
  cfg.memtable_limit = 4096;  // many runs => pronounced read amplification
  cfg.max_runs_per_level = 6;
  cfg.lsm_disable_bloom = disable_bloom;
  LsmDatalet d(cfg);
  Rng rng(11);
  for (int i = 0; i < 300'000; ++i) {
    d.put("key" + std::to_string(rng.next_u64(150'000)), "value32bytes....................", 1);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const int kReads = 400'000;
  int hits = 0;
  for (int i = 0; i < kReads; ++i) {
    // Half the probes miss: bloom filters earn their keep on misses.
    if (d.get("key" + std::to_string(rng.next_u64(300'000))).ok()) ++hits;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  (void)hits;
  return static_cast<double>(kReads) / secs / 1000.0;
}

}  // namespace

int main() {
  print_header("Ablation (a)", "tLSM bloom filters (400k point reads, ~50% misses)");
  const double with_bloom = lsm_read_qps(false);
  const double without_bloom = lsm_read_qps(true);
  print_row("bloom on : %8.1f kQPS", with_bloom);
  print_row("bloom off: %8.1f kQPS  (%.2fx slower)", without_bloom,
            with_bloom / without_bloom);

  print_header("Ablation (b)", "MS+EC propagation batch size (50% GET, 6 nodes)");
  print_row("%-8s %10s %14s", "batch", "kQPS", "put-p99-us");
  for (uint32_t batch : {1u, 8u, 64u, 256u}) {
    BenchConfig cfg;
    cfg.topology = Topology::kMasterSlave;
    cfg.consistency = Consistency::kEventual;
    cfg.nodes = 6;
    cfg.workload.num_keys = 50'000;
    cfg.workload.get_ratio = 0.50;
    cfg.warmup_us = 100'000;
    cfg.measure_us = 250'000;
    // Assembled by hand so the batching knob reaches the controlets.
    SimFabricOpts fopts;
    SimFabric sim(fopts);
    ClusterOptions copts;
    copts.topology = cfg.topology;
    copts.consistency = cfg.consistency;
    copts.num_shards = 2;
    copts.num_replicas = 3;
    copts.controlet.flush_batch = batch;
    copts.controlet.flush_period_us = batch == 1 ? 100 : 2'000;
    copts.sim_node.base_service_us = cfg.node_service_us;
    copts.sim_node.per_kb_service_us = 4.0;
    Cluster cluster(sim, copts);
    cluster.start();
    sim.run_for(300'000);
    DriverOptions dopts;
    dopts.num_clients = 5 * cfg.nodes;
    dopts.workload = cfg.workload;
    SimWorkloadDriver driver(sim, cluster, dopts);
    driver.preload();
    driver.start();
    sim.run_for(cfg.warmup_us);
    driver.reset_window();
    sim.run_for(cfg.measure_us);
    DriverResult r = driver.collect();
    driver.stop();
    print_row("%-8u %10.1f %14llu", batch, kqps(r),
              static_cast<unsigned long long>(r.put_latency_us.percentile(0.99)));
  }

  print_header("Ablation (c)", "MS+SC chain length (replicas per shard)");
  print_row("%-9s %10s %12s %12s", "replicas", "kQPS", "put-p50-us", "get-p50-us");
  for (int replicas : {2, 3, 4, 5}) {
    BenchConfig cfg;
    cfg.topology = Topology::kMasterSlave;
    cfg.consistency = Consistency::kStrong;
    cfg.nodes = replicas * 2;  // two shards
    cfg.replicas = replicas;
    cfg.workload.num_keys = 50'000;
    cfg.workload.get_ratio = 0.50;
    cfg.clients_per_node = 8;
    cfg.warmup_us = 100'000;
    cfg.measure_us = 250'000;
    DriverResult r = run_bench(cfg);
    print_row("%-9d %10.1f %12llu %12llu", replicas, kqps(r),
              static_cast<unsigned long long>(r.put_latency_us.percentile(0.5)),
              static_cast<unsigned long long>(r.get_latency_us.percentile(0.5)));
  }
  return 0;
}
