// §VIII-D reproduction: the two extensibility showcases.
//
// (1) Per-request consistency (§IV-C): an MS+SC deployment serving a Zipfian
//     workload where GETs carry a 25%:75% Strong:Eventual mix. Paper: sits
//     between MS+SC and MS+EC (~300k QPS at 24 nodes for 95% GET); EC GETs
//     average 0.67 ms vs 1.02 ms for strong GETs.
//
// (2) Polyglot persistence (§IV-D): each replica of a shard stored in a
//     different engine (tHT + tLog + tMT), MS+EC. Paper: performance close
//     to the homogeneous numbers (~375k/200k QPS at 24 nodes).
#include "bench/bench_util.h"

using namespace bespokv;
using namespace bespokv::bench;

int main() {
  const int kNodes = 24;

  print_header("§VIII-D (1)", "Per-request consistency on MS+SC, 24 nodes");
  for (double get_ratio : {0.95, 0.50}) {
    // Baselines: pure MS+SC and pure MS+EC bracket the mixed service.
    BenchConfig base;
    base.nodes = kNodes;
    base.workload.num_keys = 100'000;
    base.workload.zipfian = true;
    base.workload.get_ratio = get_ratio;
    base.warmup_us = 100'000;
    base.measure_us = 250'000;

    BenchConfig sc = base;
    sc.topology = Topology::kMasterSlave;
    sc.consistency = Consistency::kStrong;
    sc.clients_per_node = 8;
    DriverResult r_sc = run_bench(sc);

    BenchConfig ec = base;
    ec.topology = Topology::kMasterSlave;
    ec.consistency = Consistency::kEventual;
    ec.clients_per_node = 5;
    DriverResult r_ec = run_bench(ec);

    BenchConfig mixed = sc;
    mixed.strong_get_fraction = 0.25;  // 25:75 SC:EC per-request mix
    DriverResult r_mix = run_bench(mixed);

    print_row("%.0f%% GET: MS+SC %.1f kQPS | mixed 25:75 %.1f kQPS | MS+EC %.1f kQPS",
              get_ratio * 100, kqps(r_sc), kqps(r_mix), kqps(r_ec));
    print_row("  mixed-mode GET latency: EC-level reads avg %.2f ms, "
              "all-reads avg %.2f ms; pure-SC reads avg %.2f ms",
              r_ec.get_latency_us.mean() / 1000.0,
              r_mix.get_latency_us.mean() / 1000.0,
              r_sc.get_latency_us.mean() / 1000.0);
  }

  print_header("§VIII-D (2)", "Polyglot persistence (tHT+tLog+tMT replicas), MS+EC, 24 nodes");
  for (double get_ratio : {0.95, 0.50}) {
    BenchConfig cfg;
    cfg.topology = Topology::kMasterSlave;
    cfg.consistency = Consistency::kEventual;
    cfg.nodes = kNodes;
    cfg.replica_datalets = {"tHT", "tLog", "tMT"};
    cfg.workload.num_keys = 100'000;
    cfg.workload.get_ratio = get_ratio;
    cfg.workload.zipfian = false;  // paper: Uniform for this experiment
    cfg.clients_per_node = 5;
    cfg.warmup_us = 100'000;
    cfg.measure_us = 250'000;
    DriverResult r = run_bench(cfg);
    print_row("Uniform %.0f%% GET: %.1f kQPS (err=%llu)", get_ratio * 100,
              kqps(r), static_cast<unsigned long long>(r.errors));
  }
  return 0;
}
