// Elastic rebalance bench (ISSUE 10): a hot key prefix concentrates ~90% of
// the offered load on one range shard; a live split migrates half the hot set
// to the right-adjacent shard and tail latency must come back down.
//
// Three measured windows, all on the same hotset workload:
//
//   baseline   separate rig whose initial layout already splits the hot set
//              in half (the layout migration will produce) — the "pre-hot-
//              spot" reference the acceptance gate compares against;
//   hot        main rig with the whole hot set on shard 0 — degraded p99;
//   during     main rig while the dual-write copy window is open;
//   recovered  main rig after cutover + drain — must land within 2x of
//              baseline p99.
//
// Latency is coordinated-omission-corrected (each closed-loop client intends
// one op per co_interval_us), so queueing stalls at the hot master are not
// hidden by the closed loop.
//
// Usage: bench_rebalance [--json] [--quick]
//   --json writes BENCH_rebalance.json (the committed baseline);
//   --quick shrinks the windows for smoke runs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/common/json.h"

namespace bespokv::bench {
namespace {

// 2000 zero-padded keys k0000000..k0001999; the hotset distribution sends
// hot_op_fraction of ops to the lowest hot_key_fraction indices, so the hot
// set is the contiguous prefix [k0000000, k0000200).
constexpr uint64_t kNumKeys = 2000;
constexpr char kHotMid[] = "k0000100";    // splits the hot set in half
constexpr char kColdSplit[] = "k0001000"; // initial shard boundary

WorkloadSpec hot_workload() {
  WorkloadSpec w;
  w.num_keys = kNumKeys;
  w.key_size = 8;
  w.value_size = 64;
  w.get_ratio = 0.5;
  w.key_dist = KeyDist::kHotset;
  w.hot_op_fraction = 0.9;
  w.hot_key_fraction = 0.1;
  return w;
}

BenchConfig base_config(bool quick) {
  BenchConfig cfg;
  cfg.topology = Topology::kMasterSlave;
  cfg.consistency = Consistency::kEventual;
  cfg.nodes = 6;
  cfg.replicas = 3;  // 2 shards x 3 replicas
  cfg.partitioner = "range";
  cfg.workload = hot_workload();
  cfg.clients_per_node = 4;
  cfg.co_interval_us = 2'000;  // each client intends 500 ops/s
  cfg.warmup_us = quick ? 150'000 : 400'000;
  cfg.measure_us = quick ? 300'000 : 1'500'000;
  return cfg;
}

struct Window {
  double qps = 0;
  uint64_t p50 = 0, p99 = 0;
};

Window window_of(const DriverResult& r) {
  Window w;
  w.qps = r.qps;
  w.p50 = r.corrected_latency_us.percentile(0.50);
  w.p99 = r.corrected_latency_us.percentile(0.99);
  return w;
}

Json window_json(const Window& w) {
  Json j = Json::object();
  j.set("qps", Json::number(w.qps));
  j.set("p50_us", Json::number(double(w.p50)));
  j.set("p99_us", Json::number(double(w.p99)));
  return j;
}

}  // namespace
}  // namespace bespokv::bench

int main(int argc, char** argv) {
  using namespace bespokv;
  using namespace bespokv::bench;

  bool json = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  print_header("rebalance", "live shard split sheds a hot-spot (ISSUE 10)");

  // Baseline: the balanced layout the migration will produce — shard 0 owns
  // half the hot set, shard 1 the other half plus the cold tail.
  BenchConfig bcfg = base_config(quick);
  bcfg.range_splits = {kHotMid};
  const Window baseline = window_of(run_bench(bcfg));
  print_row("baseline (balanced layout):  %7.1f qps  p50=%5llu us  p99=%6llu us",
            baseline.qps, (unsigned long long)baseline.p50,
            (unsigned long long)baseline.p99);

  // Main rig: the whole hot set on shard 0.
  BenchConfig cfg = base_config(quick);
  cfg.range_splits = {kColdSplit};
  BenchRig rig = make_rig(cfg);
  rig.warm(cfg);

  rig.sim->run_for(cfg.measure_us);
  const Window hot = window_of(rig.driver->collect());
  print_row("hot shard (pre-migration):   %7.1f qps  p50=%5llu us  p99=%6llu us",
            hot.qps, (unsigned long long)hot.p50, (unsigned long long)hot.p99);

  // Live split: move [kHotMid, kColdSplit) from shard 0 into shard 1.
  rig.driver->reset_window();
  Status accept = Status::Ok();
  rig.cluster->start_migration(0, kHotMid, 1,
                               [&accept](Status s) { accept = s; });
  uint64_t mig_us = 0;
  while (rig.cluster->coordinator_service()->migration_active() ||
         rig.cluster->coordinator_service()->migrations() == 0) {
    rig.sim->run_for(5'000);
    mig_us += 5'000;
    if (mig_us > 20'000'000) break;  // stuck; fall through and report
  }
  const bool migrated =
      accept.ok() && rig.cluster->coordinator_service()->migrations() == 1 &&
      rig.cluster->coordinator_service()->migrations_aborted() == 0;
  const Window during = window_of(rig.driver->collect());
  print_row("during migration (%6.1f ms): %7.1f qps  p50=%5llu us  p99=%6llu us",
            mig_us / 1000.0, during.qps, (unsigned long long)during.p50,
            (unsigned long long)during.p99);

  // Let clients refresh their maps off the cutover, then measure recovery.
  // The settle must cover a full client map-refresh period plus the retry
  // backlog draining, so the recovered window measures the steady state and
  // not the rerouting transient; quick mode shrinks the windows but not this.
  rig.sim->run_for(400'000);
  rig.driver->reset_window();
  rig.sim->run_for(cfg.measure_us);
  const Window recovered = window_of(rig.driver->collect());
  rig.driver->stop();
  print_row("recovered (post-cutover):    %7.1f qps  p50=%5llu us  p99=%6llu us",
            recovered.qps, (unsigned long long)recovered.p50,
            (unsigned long long)recovered.p99);

  const double ratio =
      baseline.p99 > 0 ? double(recovered.p99) / double(baseline.p99) : 0.0;
  const bool pass = migrated && baseline.p99 > 0 && ratio <= 2.0;
  print_row("migration %s in %.1f ms; recovered p99 = %.2fx baseline (gate <= 2x): %s",
            migrated ? "completed" : "DID NOT COMPLETE", mig_us / 1000.0, ratio,
            pass ? "PASS" : "FAIL");

  if (json) {
    Json j = Json::object();
    j.set("bench", Json::string("rebalance"));
    j.set("workload", Json::string("hotset 90/10 over 2000 keys, 50% get"));
    j.set("baseline", window_json(baseline));
    j.set("hot", window_json(hot));
    j.set("during", window_json(during));
    j.set("recovered", window_json(recovered));
    j.set("migration_ms", Json::number(mig_us / 1000.0));
    j.set("migration_completed", Json::boolean(migrated));
    j.set("p99_ratio_vs_baseline", Json::number(ratio));
    j.set("pass", Json::boolean(pass));
    std::ofstream out("BENCH_rebalance.json");
    out << j.dump(2) << "\n";
    std::fprintf(stderr, "bench_rebalance: wrote BENCH_rebalance.json\n");
  }
  return pass ? 0 : 1;
}
