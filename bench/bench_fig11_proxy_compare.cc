// Fig. 11 reproduction: bespoKV adds *new* topology/consistency options to an
// existing single-server store (Redis -> tRedis) and holds its own against
// the special-purpose proxies. Eight 3-replica shards (24 server nodes),
// uniform & Zipfian, 95% and 50% GET:
//   * bespoKV+tRedis in MS+SC (new!), MS+EC and AA+EC
//   * Twemproxy+Redis — MS+EC only (sharding proxy; Redis replicates itself)
//   * Dynomite+Redis — AA+EC only
//
// Paper's shape: Twemproxy+Redis edges out bespoKV MS+EC (it is a pure
// router); Dynomite+Redis lands at bespoKV AA+EC levels; MS+SC costs more
// than MS+EC but is newly *possible* for Redis under bespoKV.
#include "bench/bench_util.h"

#include "src/baselines/proxies.h"
#include "src/baselines/redis_like.h"
#include "src/common/hash.h"

using namespace bespokv;
using namespace bespokv::bench;
using namespace bespokv::baselines;

namespace {

constexpr int kShards = 8;
constexpr int kReplicas = 3;
constexpr int kNodes = kShards * kReplicas;

WorkloadSpec mix(double get_ratio, bool zipf) {
  WorkloadSpec s;
  s.num_keys = 100'000;
  s.get_ratio = get_ratio;
  s.zipfian = zipf;
  return s;
}

double bespokv_case(Topology t, Consistency c, const WorkloadSpec& wl) {
  BenchConfig cfg;
  cfg.topology = t;
  cfg.consistency = c;
  cfg.nodes = kNodes;
  cfg.replicas = kReplicas;
  cfg.datalet = "tRedis";
  cfg.workload = wl;
  cfg.warmup_us = 100'000;
  cfg.measure_us = 200'000;
  cfg.clients_per_node = c == Consistency::kStrong ? 10 : 8;
  return kqps(run_bench(cfg));
}

// Twemproxy + Redis (MS+EC): backends do Redis master->slave replication.
// Twemproxy deploys on the application hosts (client-side), so routing adds
// no server hop: clients hit the chosen backend directly.
double twemproxy_case(const WorkloadSpec& wl) {
  SimFabricOpts fopts;
  SimFabric sim(fopts);
  SimNodeOpts server;
  server.base_service_us = 40;  // plain Redis: no controlet logic at all
  server.per_kb_service_us = 4.0;

  TwemproxyConfig pcfg;
  std::vector<std::shared_ptr<RedisLikeBackend>> backends;
  for (int s = 0; s < kShards; ++s) {
    ProxyShard shard;
    for (int r = 0; r < kReplicas; ++r) {
      shard.backends.push_back("redis" + std::to_string(s) + "_" + std::to_string(r));
    }
    for (int r = 0; r < kReplicas; ++r) {
      RedisLikeConfig bcfg;
      if (r == 0) {
        bcfg.slaves = {shard.backends[1], shard.backends[2]};
      }
      auto b = std::make_shared<RedisLikeBackend>(bcfg);
      backends.push_back(b);
      sim.add_node(shard.backends[static_cast<size_t>(r)], b, server);
    }
    pcfg.shards.push_back(shard);
  }
  // Preload backends directly.
  WorkloadGenerator gen(wl);
  for (uint64_t i = 0; i < wl.num_keys; ++i) {
    const std::string key = gen.key_at(i);
    const std::string value = gen.value_for(i);
    const size_t shard = mix64(fnv1a64(key)) % kShards;
    for (int r = 0; r < kReplicas; ++r) {
      backends[shard * kReplicas + static_cast<size_t>(r)]->engine()->put(key, value, 1);
    }
  }
  BaselineRunOpts opts;
  opts.num_clients = 8 * kNodes;
  opts.workload = wl;
  opts.measure_us = 200'000;
  DriverResult res = run_baseline_load(
      sim, opts, [&pcfg](const WorkloadOp& op, uint64_t salt) {
        const size_t shard = mix64(fnv1a64(op.key)) % pcfg.shards.size();
        const auto& pool = pcfg.shards[shard].backends;
        const bool is_read = op.type == OpType::kGet || op.type == OpType::kScan;
        return is_read ? pool[salt % pool.size()] : pool.front();
      });
  return res.qps / 1000.0;
}

// Dynomite + Redis (AA+EC): a proxy co-located with each Redis, forming an
// active-active ring per shard; clients write to any replica's proxy.
double dynomite_case(const WorkloadSpec& wl) {
  SimFabricOpts fopts;
  SimFabric sim(fopts);
  // Proxy and backend share a VM: split the calibrated per-VM budget.
  SimNodeOpts half;
  half.base_service_us = 22;
  half.per_kb_service_us = 2.0;

  std::vector<std::vector<Addr>> proxy_ring(kShards);
  std::vector<std::shared_ptr<RedisLikeBackend>> backends;
  for (int s = 0; s < kShards; ++s) {
    for (int r = 0; r < kReplicas; ++r) {
      proxy_ring[static_cast<size_t>(s)].push_back(
          "dynpx" + std::to_string(s) + "_" + std::to_string(r));
    }
  }
  for (int s = 0; s < kShards; ++s) {
    for (int r = 0; r < kReplicas; ++r) {
      const Addr be = "dynbe" + std::to_string(s) + "_" + std::to_string(r);
      auto backend = std::make_shared<RedisLikeBackend>();
      backends.push_back(backend);
      sim.add_node(be, backend, half);
      DynomiteConfig cfg;
      cfg.local_backend = be;
      for (int p = 0; p < kReplicas; ++p) {
        if (p != r) {
          cfg.peer_proxies.push_back(proxy_ring[static_cast<size_t>(s)][static_cast<size_t>(p)]);
        }
      }
      sim.add_node(proxy_ring[static_cast<size_t>(s)][static_cast<size_t>(r)],
                   std::make_shared<DynomiteLike>(cfg), half);
    }
  }
  WorkloadGenerator gen(wl);
  for (uint64_t i = 0; i < wl.num_keys; ++i) {
    const std::string key = gen.key_at(i);
    const std::string value = gen.value_for(i);
    const size_t shard = mix64(fnv1a64(key)) % kShards;
    for (int r = 0; r < kReplicas; ++r) {
      backends[shard * kReplicas + static_cast<size_t>(r)]->engine()->put(key, value, 1);
    }
  }
  BaselineRunOpts opts;
  opts.num_clients = 8 * kNodes;
  opts.workload = wl;
  opts.measure_us = 200'000;
  DriverResult res = run_baseline_load(
      sim, opts, [&proxy_ring](const WorkloadOp& op, uint64_t salt) {
        const size_t shard = mix64(fnv1a64(op.key)) % kShards;
        return proxy_ring[shard][salt % kReplicas];
      });
  return res.qps / 1000.0;
}

}  // namespace

int main() {
  print_header("Fig. 11",
               "bespoKV adds MS+SC / AA+EC to Redis; vs Twemproxy & Dynomite "
               "(kQPS, 8 shards x 3 replicas)");
  struct Row {
    const char* wl;
    WorkloadSpec spec;
  } rows[] = {
      {"Unif 95% GET", mix(0.95, false)},
      {"Zipf 95% GET", mix(0.95, true)},
      {"Unif 50% GET", mix(0.50, false)},
      {"Zipf 50% GET", mix(0.50, true)},
  };
  print_row("%-14s %12s %12s %12s %14s %14s", "workload", "tRedis MS+SC",
            "tRedis MS+EC", "tRedis AA+EC", "Twem+Redis EC", "Dyno+Redis EC");
  for (const auto& row : rows) {
    const double mssc =
        bespokv_case(Topology::kMasterSlave, Consistency::kStrong, row.spec);
    const double msec =
        bespokv_case(Topology::kMasterSlave, Consistency::kEventual, row.spec);
    const double aaec =
        bespokv_case(Topology::kActiveActive, Consistency::kEventual, row.spec);
    const double twem = twemproxy_case(row.spec);
    const double dyno = dynomite_case(row.spec);
    print_row("%-14s %12.1f %12.1f %12.1f %14.1f %14.1f", row.wl, mssc, msec,
              aaec, twem, dyno);
  }
  return 0;
}
