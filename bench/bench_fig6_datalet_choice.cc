// Fig. 6 reproduction (§VI-A): effect of mapping workloads to the right data
// abstraction. The Lustre-monitoring workload (put-dominated time series)
// and the analytics workload (read-intensive, uniform) run against three
// engines: LSM (tLSM), B+ tree (tMT) and a persistent log (tLog, the HDD
// datalet of the use case — file-backed with periodic fdatasync).
//
// Unlike the cluster benches these are *real* wall-clock engine executions,
// not simulations: the trade-offs (LSM write wins, B+ read wins, both beat
// the durable log) emerge from the data structures themselves.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench/bench_util.h"
#include "src/datalet/datalet.h"
#include "src/workload/workload.h"

using namespace bespokv;
using namespace bespokv::bench;

namespace {

double run_engine(Datalet& engine, const WorkloadSpec& spec, uint64_t ops,
                  uint64_t preload) {
  WorkloadGenerator gen(spec);
  for (uint64_t i = 0; i < preload; ++i) {
    engine.put(gen.key_at(i % spec.num_keys), gen.value_for(i), i);
  }
  WorkloadGenerator mix(spec, /*stream=*/1);
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t seq = preload;
  for (uint64_t i = 0; i < ops; ++i) {
    WorkloadOp op = mix.next();
    switch (op.type) {
      case OpType::kPut:
        engine.put(op.key, op.value, ++seq);
        break;
      case OpType::kGet:
        (void)engine.get(op.key);
        break;
      default:
        break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  return static_cast<double>(ops) / secs;
}

}  // namespace

int main() {
  const std::string dir = "/tmp/bkv_fig6_log";
  std::filesystem::remove_all(dir);

  struct EngineCase {
    const char* label;   // the paper's axis labels
    const char* kind;
    bool file_backed;
  } engines[] = {
      {"LSM", "tLSM", false},
      {"B+", "tMT", false},
      {"Log", "tLog", true},  // persistent, fdatasync'd — the HDD datalet
  };

  const uint64_t kOps = 400'000;
  const uint64_t kPreload = 200'000;

  // Monitoring is a time series: almost every put creates a *fresh* key
  // (§VI-A: "collected time series data is propagated as KV pairs"), so the
  // key space is much larger than the op count. Analytics re-reads a
  // resident working set.
  WorkloadSpec monitoring = WorkloadSpec::hpc_monitoring();
  monitoring.num_keys = 4'000'000;
  WorkloadSpec analytics = WorkloadSpec::hpc_analytics();
  analytics.num_keys = 200'000;

  print_header("Fig. 6", "Effect of using different data abstractions (kQPS)");
  print_row("%-6s %14s %14s", "engine", "Monitoring", "Analytics");
  for (const auto& e : engines) {
    DataletConfig cfg;
    if (e.file_backed) {
      cfg.dir = dir;
      cfg.sync_every = 32;
    }
    cfg.memtable_limit = 16 * 1024;
    double mon = 0, ana = 0;
    {
      auto engine = make_datalet(e.kind, cfg);
      mon = run_engine(*engine, monitoring, kOps, /*preload=*/0);
    }
    std::filesystem::remove_all(dir);
    {
      auto engine = make_datalet(e.kind, cfg);
      ana = run_engine(*engine, analytics, kOps, kPreload);
    }
    std::filesystem::remove_all(dir);
    print_row("%-6s %14.1f %14.1f", e.label, mon / 1000.0, ana / 1000.0);
  }
  print_row("paper shape: LSM > B+ for monitoring (writes); B+ > LSM for "
            "analytics (reads); the durable log trails both");
  return 0;
}
