// Fig. 9 reproduction: scale-out of three further datalets under MS+EC —
// tSSDB (ported text-protocol store), tLog (persistent log-structured) and
// tMT (Masstree-class ordered store) — including the 95%-SCAN workload on
// tMT with range partitioning.
//
// Paper's shape: all three scale linearly; tMT (in-memory) outperforms the
// persisting tLog/tSSDB; scan throughput is far below point queries (a 48
// node tMT cluster gives ~18-21k scan QPS vs hundreds of k point QPS).
#include "bench/bench_util.h"

using namespace bespokv;
using namespace bespokv::bench;

namespace {

// Range splits for the range-partitioned tMT scan deployment: the key space
// is "k" + zero-padded decimal, so equal-width decimal splits balance it.
std::vector<std::string> make_splits(int shards, uint64_t num_keys,
                                     const WorkloadSpec& spec) {
  WorkloadGenerator gen(spec);
  std::vector<std::string> splits;
  for (int s = 1; s < shards; ++s) {
    splits.push_back(gen.key_at(num_keys * static_cast<uint64_t>(s) /
                                static_cast<uint64_t>(shards)));
  }
  return splits;
}

}  // namespace

int main() {
  const int node_counts[] = {3, 6, 12, 24, 48};
  struct Wl {
    const char* name;
    double get, scan;
    bool zipf;
  } mixes[] = {
      {"Unif 95% GET", 0.95, 0.0, false},
      {"Zipf 95% GET", 0.95, 0.0, true},
      {"Unif 50% GET", 0.50, 0.0, false},
      {"Zipf 50% GET", 0.50, 0.0, true},
      {"Unif 95% SCAN", 0.0, 0.95, false},
      {"Zipf 95% SCAN", 0.0, 0.95, true},
  };

  print_header("Fig. 9", "BESPOKV scales tSSDB, tLog and tMT with MS+EC (kQPS)");
  print_row("%-6s %-14s %6s %8s", "store", "workload", "nodes", "kQPS");
  for (const char* store : {"tSSDB", "tLog", "tMT"}) {
    for (const auto& mix : mixes) {
      const bool is_scan = mix.scan > 0;
      if (is_scan && std::string(store) != "tMT") continue;  // paper: tMT only
      for (int nodes : node_counts) {
        BenchConfig cfg;
        cfg.topology = Topology::kMasterSlave;
        cfg.consistency = Consistency::kEventual;
        cfg.nodes = nodes;
        cfg.datalet = store;
        cfg.workload.num_keys = 100'000;
        cfg.workload.get_ratio = mix.get;
        cfg.workload.scan_ratio = mix.scan;
        cfg.workload.zipfian = mix.zipf;
        cfg.workload.scan_span = 100;
        cfg.warmup_us = 100'000;
        cfg.measure_us = 250'000;
        cfg.clients_per_node = is_scan ? 3 : 5;
        // Persistent engines pay more CPU/IO per op than in-memory tMT; the
        // calibrated deltas come from the engine microbenchmarks
        // (bench_micro): tLog ~ +45%, tSSDB ~ +25% over tHT/tMT-class cost.
        if (std::string(store) == "tLog") cfg.node_service_us = 65;
        if (std::string(store) == "tSSDB") cfg.node_service_us = 56;
        if (is_scan) {
          // Range queries need range partitioning (§IV-B).
          BenchRig rig = [&] {
            SimFabricOpts fopts;
            fopts.link_latency_us = cfg.link_latency_us;
            fopts.transport = cfg.transport;
            BenchRig r;
            r.sim = std::make_unique<SimFabric>(fopts);
            ClusterOptions copts;
            copts.topology = cfg.topology;
            copts.consistency = cfg.consistency;
            copts.num_shards = std::max(1, nodes / cfg.replicas);
            copts.num_replicas = cfg.replicas;
            copts.datalet_kind = store;
            copts.partitioner = "range";
            copts.range_splits =
                make_splits(copts.num_shards, cfg.workload.num_keys, cfg.workload);
            copts.sim_node.base_service_us = cfg.node_service_us;
            copts.sim_node.per_kb_service_us = 4.0;
            r.cluster = std::make_unique<Cluster>(*r.sim, copts);
            r.cluster->start();
            r.sim->run_for(300'000);
            DriverOptions dopts;
            dopts.num_clients = cfg.clients_per_node * nodes;
            dopts.workload = cfg.workload;
            r.driver = std::make_unique<SimWorkloadDriver>(*r.sim, *r.cluster, dopts);
            r.driver->preload();
            return r;
          }();
          rig.warm(cfg);
          rig.sim->run_for(cfg.measure_us);
          DriverResult r = rig.driver->collect();
          rig.driver->stop();
          print_row("%-6s %-14s %6d %8.1f", store, mix.name, nodes, kqps(r));
        } else {
          DriverResult r = run_bench(cfg);
          print_row("%-6s %-14s %6d %8.1f", store, mix.name, nodes, kqps(r));
        }
      }
    }
  }
  return 0;
}
