// Fig. 16 reproduction (Appendix D): throughput timelines across a node
// failure at t=20s, for MS (SC and EC; head/tail/master/slave kills chosen
// per the paper to maximize disruption) and AA (SC and EC), 3 shards x 3
// replicas, Zipfian keys. A standby pair is registered so the coordinator
// can run recovery, as in §IV-A.
//
// Paper's shape: MS+SC loses ~1/3 of Put throughput (one of three shards'
// chains) until the chain is repaired (~15s incl. data recovery), then
// recovers; tail kill costs ~1/3 of Gets until reads re-route (~5s); MS+EC
// slave kill barely dents reads (~1/9); AA serves everything from the
// surviving replicas with only a slight dip.
#include "bench/bench_util.h"

using namespace bespokv;
using namespace bespokv::bench;

namespace {

void run_case(const char* label, Topology t, Consistency c, double get_ratio,
              int kill_replica) {
  BenchConfig cfg;
  cfg.topology = t;
  cfg.consistency = c;
  cfg.nodes = 9;  // 3 shards x 3 replicas
  cfg.workload = WorkloadSpec{};
  cfg.workload.num_keys = 100'000;
  cfg.workload.get_ratio = get_ratio;
  cfg.workload.zipfian = true;
  cfg.clients_per_node = c == Consistency::kStrong ? 4 : 2;
  cfg.timeline_bucket_us = 1'000'000;
  cfg.num_standby = 1;
  cfg.client_rpc_timeout_us = 250'000;

  BenchRig rig = make_rig(cfg);
  rig.driver->start();
  rig.sim->run_for(1'000'000);
  rig.driver->reset_window();
  rig.sim->run_for(8'000'000);
  rig.cluster->kill_controlet(/*shard=*/0, kill_replica);
  rig.sim->run_for(12'000'000);
  rig.driver->stop();

  DriverResult r = rig.driver->collect();
  print_row("%s (replica %d of shard 0 killed at t=8s):", label, kill_replica);
  for (size_t s = 0; s < r.timeline.size(); ++s) {
    print_row("  t=%2zus  %8.1f kQPS%s", s,
              static_cast<double>(r.timeline[s]) / 1000.0,
              s == 8 ? "   <- failure injected" : "");
  }
}

}  // namespace

int main() {
  print_header("Fig. 16", "Throughput timeline on failover (3 shards, Zipf)");
  // (a) Master-slave.
  run_case("MS+SC 50% GET, head kill", Topology::kMasterSlave,
           Consistency::kStrong, 0.50, 0);
  run_case("MS+SC 95% GET, tail kill", Topology::kMasterSlave,
           Consistency::kStrong, 0.95, 2);
  run_case("MS+EC 50% GET, master kill", Topology::kMasterSlave,
           Consistency::kEventual, 0.50, 0);
  run_case("MS+EC 95% GET, slave kill", Topology::kMasterSlave,
           Consistency::kEventual, 0.95, 2);
  // (b) Active-active.
  run_case("AA+SC 95% GET, random kill", Topology::kActiveActive,
           Consistency::kStrong, 0.95, 1);
  run_case("AA+EC 95% GET, random kill", Topology::kActiveActive,
           Consistency::kEventual, 0.95, 1);
  run_case("AA+EC 50% GET, random kill", Topology::kActiveActive,
           Consistency::kEventual, 0.50, 1);
  return 0;
}
