// Durability microbench (ISSUE 7): the two costs a deployer trades when
// picking a WAL config.
//
//  1. fsync policy vs write throughput, on real disk (posix Env): kAlways
//     pays one fdatasync per mutation, group commit amortizes one sync over
//     group_batch mutations, kOs never syncs (the upper bound). The headline
//     gate: group commit at batch >= 8 must clear 5x fsync-always — the
//     whole point of the policy knob (Redis' appendfsync trichotomy).
//
//  2. recovery time vs WAL size: with checkpoints off, restart cost grows
//     linearly with the log; a checkpoint threshold caps it. Measured by
//     timing crash_restart() (engine wipe + checkpoint load + WAL replay)
//     over logs of increasing length.
//
// Usage: bench_recovery [--json] [--quick]
//   --json writes machine-readable rows (the committed BENCH_recovery.json
//   baseline); --quick shrinks op counts for smoke runs.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/datalet/datalet.h"
#include "src/storage/durable.h"
#include "src/storage/env.h"

namespace bespokv::bench {
namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = "/tmp/bkv_bench_recovery/" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::unique_ptr<storage::DurableDatalet> make_engine(
    const std::string& dir, storage::FsyncPolicy policy, uint32_t batch,
    uint64_t checkpoint_bytes) {
  storage::DurabilityOpts opts;
  opts.env = storage::posix_env();
  opts.dir = dir;
  opts.policy = policy;
  opts.group_batch = batch;
  opts.checkpoint_bytes = checkpoint_bytes;
  return std::make_unique<storage::DurableDatalet>(make_datalet("tHT"), opts);
}

// ------------------------- fsync policy throughput ---------------------------

struct PolicyPoint {
  std::string policy;
  uint32_t batch = 0;
  uint64_t ops = 0;
  double ops_per_sec = 0;
  uint64_t syncs = 0;
};

PolicyPoint run_policy(const char* name, storage::FsyncPolicy policy,
                       uint32_t batch, uint64_t ops) {
  auto d = make_engine(fresh_dir(std::string("policy-") + name), policy, batch,
                       /*checkpoint_bytes=*/0);
  const std::string value(64, 'v');
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    d->put("key" + std::to_string(i % 512), value, i + 1);
  }
  const double el = secs_since(t0);
  PolicyPoint p;
  p.policy = name;
  p.batch = batch;
  p.ops = ops;
  p.ops_per_sec = double(ops) / el;
  p.syncs = d->wal() ? d->wal()->stats().syncs : 0;
  return p;
}

// ------------------------ recovery time vs WAL size --------------------------

struct RecoveryPoint {
  uint64_t records = 0;
  uint64_t wal_bytes = 0;
  uint64_t checkpoint_bytes = 0;  // threshold (0 = checkpoints off)
  double recovery_ms = 0;
  uint64_t replayed = 0;
  bool had_checkpoint = false;
};

RecoveryPoint run_recovery(uint64_t records, uint64_t checkpoint_bytes) {
  const std::string tag = "recov-" + std::to_string(records) + "-" +
                          std::to_string(checkpoint_bytes);
  // kOs for the fill: we are measuring replay cost, not fill fsyncs (the
  // replay path does not care how the bytes got durable).
  auto d = make_engine(fresh_dir(tag), storage::FsyncPolicy::kOs, 8,
                       checkpoint_bytes);
  const std::string value(64, 'v');
  for (uint64_t i = 0; i < records; ++i) {
    d->put("key" + std::to_string(i % 4096), value, i + 1);
  }
  RecoveryPoint p;
  p.records = records;
  p.checkpoint_bytes = checkpoint_bytes;
  p.wal_bytes = d->wal_bytes();
  const auto t0 = Clock::now();
  d->crash_restart();
  p.recovery_ms = secs_since(t0) * 1e3;
  p.replayed = d->last_recovery().wal_records;
  p.had_checkpoint = d->last_recovery().had_checkpoint;
  return p;
}

}  // namespace
}  // namespace bespokv::bench

int main(int argc, char** argv) {
  using namespace bespokv;
  using namespace bespokv::bench;
  bool json = false;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: bench_recovery [--json] [--quick]\n");
      return 2;
    }
  }

  const uint64_t policy_ops = quick ? 500 : 5'000;
  std::vector<PolicyPoint> policies;
  policies.push_back(
      run_policy("always", storage::FsyncPolicy::kAlways, 1, policy_ops));
  policies.push_back(run_policy("groupcommit", storage::FsyncPolicy::kGroupCommit,
                                8, policy_ops));
  policies.push_back(run_policy("groupcommit", storage::FsyncPolicy::kGroupCommit,
                                32, policy_ops));
  policies.push_back(
      run_policy("os", storage::FsyncPolicy::kOs, 0, policy_ops));
  const double speedup = policies[1].ops_per_sec / policies[0].ops_per_sec;

  std::vector<RecoveryPoint> recov;
  for (uint64_t n : quick ? std::vector<uint64_t>{1'000, 5'000}
                          : std::vector<uint64_t>{1'000, 10'000, 50'000,
                                                  100'000}) {
    recov.push_back(run_recovery(n, /*checkpoint_bytes=*/0));
  }
  // Same largest fill with auto-checkpointing: replay stays bounded by the
  // threshold, not the history length.
  recov.push_back(
      run_recovery(quick ? 5'000 : 100'000, /*checkpoint_bytes=*/256 * 1024));

  std::fprintf(stderr, "# fsync policy        batch     ops/s     syncs\n");
  for (const PolicyPoint& p : policies) {
    std::fprintf(stderr, "%-20s %6u %9.0f %9llu\n", p.policy.c_str(), p.batch,
                 p.ops_per_sec, (unsigned long long)p.syncs);
  }
  std::fprintf(stderr,
               "# groupcommit(8) vs always: %.1fx  (gate: >= 5x)  %s\n",
               speedup, speedup >= 5.0 ? "PASS" : "FAIL");
  std::fprintf(stderr, "# records   wal_bytes  ckpt_thresh  recovery_ms  replayed\n");
  for (const RecoveryPoint& p : recov) {
    std::fprintf(stderr, "%8llu %11llu %12llu %12.2f %9llu%s\n",
                 (unsigned long long)p.records,
                 (unsigned long long)p.wal_bytes,
                 (unsigned long long)p.checkpoint_bytes, p.recovery_ms,
                 (unsigned long long)p.replayed,
                 p.had_checkpoint ? "  (from checkpoint)" : "");
  }

  if (json) {
    Json j = Json::object();
    j.set("bench", Json::string("recovery"));
    j.set("policy_ops", Json::number(double(policy_ops)));
    j.set("group8_vs_always_speedup", Json::number(speedup));
    j.set("gate_group8_ge_5x", Json::boolean(speedup >= 5.0));
    Json parr = Json::array();
    for (const PolicyPoint& p : policies) {
      Json pj = Json::object();
      pj.set("policy", Json::string(p.policy));
      pj.set("batch", Json::number(double(p.batch)));
      pj.set("ops_per_sec", Json::number(p.ops_per_sec));
      pj.set("syncs", Json::number(double(p.syncs)));
      parr.push(std::move(pj));
    }
    j.set("fsync_policies", std::move(parr));
    Json rarr = Json::array();
    for (const RecoveryPoint& p : recov) {
      Json rj = Json::object();
      rj.set("records", Json::number(double(p.records)));
      rj.set("wal_bytes", Json::number(double(p.wal_bytes)));
      rj.set("checkpoint_bytes", Json::number(double(p.checkpoint_bytes)));
      rj.set("recovery_ms", Json::number(p.recovery_ms));
      rj.set("replayed_records", Json::number(double(p.replayed)));
      rj.set("had_checkpoint", Json::boolean(p.had_checkpoint));
      rarr.push(std::move(rj));
    }
    j.set("recovery_vs_wal_size", std::move(rarr));
    std::ofstream out("BENCH_recovery.json");
    out << j.dump(2) << "\n";
    std::fprintf(stderr, "bench_recovery: wrote BENCH_recovery.json\n");
  }
  std::filesystem::remove_all("/tmp/bkv_bench_recovery");
  return 0;
}
