// Fig. 17 reproduction (Appendix E): DPDK-style kernel bypass vs kernel TCP
// sockets on a single shard. The two transport cost models (net/sim_fabric)
// differ exactly where DPDK differs from the socket path: per-message
// syscall/softirq cost, per-KB copy cost, and in-stack latency.
//
// Paper's shape: ~65% latency reduction, ~3x throughput, and a visibly more
// stable timeline under the bypass transport.
// A second section sweeps the *real* TCP fast path (net_fastpath.h): the
// same batching/coalescing evolution measured on live loopback sockets
// rather than the DES cost models. Pass --no-tcp to skip it.
#include <cmath>
#include <cstring>

#include "bench/bench_util.h"
#include "bench/net_fastpath.h"

using namespace bespokv;
using namespace bespokv::bench;

namespace {

struct Series {
  DriverResult result;
  std::vector<uint64_t> timeline;
};

Series run_transport(const TransportModel& transport) {
  BenchConfig cfg;
  cfg.topology = Topology::kMasterSlave;
  cfg.consistency = Consistency::kEventual;
  cfg.nodes = 3;  // single shard, as in §E
  cfg.workload = WorkloadSpec::ycsb_read_mostly(false);
  cfg.workload.num_keys = 50'000;
  cfg.clients_per_node = 6;
  cfg.transport = transport;
  // §E measures the network stack, not the KV engine: a lean per-op service
  // cost makes transport overhead the dominant term, as on their testbed.
  cfg.node_service_us = 15;
  cfg.link_latency_us = 15;
  cfg.timeline_bucket_us = 1'000'000;
  cfg.warmup_us = 500'000;
  cfg.measure_us = 6'000'000;

  BenchRig rig = make_rig(cfg);
  rig.warm(cfg);
  rig.sim->run_for(cfg.measure_us);
  Series s;
  s.result = rig.driver->collect();
  s.timeline = s.result.timeline;
  rig.driver->stop();
  return s;
}

double stddev(const std::vector<uint64_t>& v) {
  if (v.empty()) return 0;
  double mean = 0;
  for (uint64_t x : v) mean += static_cast<double>(x);
  mean /= static_cast<double>(v.size());
  double var = 0;
  for (uint64_t x : v) {
    var += (static_cast<double>(x) - mean) * (static_cast<double>(x) - mean);
  }
  return std::sqrt(var / static_cast<double>(v.size()));
}

}  // namespace

int main(int argc, char** argv) {
  bool run_tcp = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-tcp") == 0) run_tcp = false;
  }
  print_header("Fig. 17", "Socket vs DPDK-style kernel bypass (single shard)");
  Series sock = run_transport(TransportModel::socket_model());
  Series dpdk = run_transport(TransportModel::fastpath_model());

  print_row("%-8s %10s %12s %12s %12s", "stack", "kQPS", "mean-lat-us",
            "p99-lat-us", "qps-stddev");
  print_row("%-8s %10.1f %12.1f %12llu %12.1f", "Socket", kqps(sock.result),
            sock.result.latency_us.mean(),
            static_cast<unsigned long long>(sock.result.latency_us.percentile(0.99)),
            stddev(sock.timeline) / 1000.0);
  print_row("%-8s %10.1f %12.1f %12llu %12.1f", "DPDK", kqps(dpdk.result),
            dpdk.result.latency_us.mean(),
            static_cast<unsigned long long>(dpdk.result.latency_us.percentile(0.99)),
            stddev(dpdk.timeline) / 1000.0);

  const double lat_cut =
      100.0 * (1.0 - dpdk.result.latency_us.mean() / sock.result.latency_us.mean());
  const double speedup = dpdk.result.qps / sock.result.qps;
  print_row("latency reduction: %.0f%%   throughput gain: %.1fx   "
            "(paper: ~65%% and ~3x)", lat_cut, speedup);

  print_row("timeline (kQPS per second):");
  print_row("  %-4s %10s %10s", "t", "Socket", "DPDK");
  const size_t n = std::max(sock.timeline.size(), dpdk.timeline.size());
  for (size_t i = 0; i < n; ++i) {
    const double s = i < sock.timeline.size()
                         ? static_cast<double>(sock.timeline[i]) / 1000.0 : 0;
    const double d = i < dpdk.timeline.size()
                         ? static_cast<double>(dpdk.timeline[i]) / 1000.0 : 0;
    print_row("  %-4zu %10.1f %10.1f", i, s, d);
  }

  if (run_tcp) {
    print_row("");
    print_row("real TCP loopback fast path (batched zero-copy writev):");
    FastpathOptions opts;
    opts.measure_us = 1'500'000;
    auto pts = run_tcp_fastpath_sweep(opts);
    print_fastpath_table("get", pts);
  }
  return 0;
}
