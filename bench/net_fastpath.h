// Real-socket network fast-path sweep shared by bench_net_fastpath and
// bench_fig17_dpdk: a bespoKV cluster on a loopback TcpFabric, driven through
// the pipelined client API (KvClient::batch_get/batch_put) at increasing
// batch sizes. Batch size 1 pays one round trip (and at least one write
// syscall) per op; larger batches keep K RPCs outstanding on one connection
// so the fabric's deferred writev flush coalesces them — the kernel-TCP
// analogue of the paper's Appendix E fast path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bespokv::bench {

struct FastpathPoint {
  int batch = 1;
  uint64_t ops = 0;        // completed ops in the measure window
  uint64_t errors = 0;     // ops that returned a non-OK status
  double ops_per_sec = 0;
  uint64_t p50_us = 0;     // per-batch round-trip latency percentiles
  uint64_t p99_us = 0;
  double coalesce = 1.0;   // client-node msgs_sent / writev flushes
};

struct FastpathOptions {
  std::vector<int> batch_sizes = {1, 8, 32, 128};
  uint64_t measure_us = 2'000'000;  // per batch-size point
  int num_keys = 1024;
  int value_bytes = 64;
  bool do_puts = false;  // sweep batch_put instead of batch_get
};

// Builds the cluster once and runs one point per batch size.
std::vector<FastpathPoint> run_tcp_fastpath_sweep(const FastpathOptions& opts);

// Prints the standard "batch / kops / p50 / p99 / coalesce" table.
void print_fastpath_table(const std::string& op_name,
                          const std::vector<FastpathPoint>& points);

}  // namespace bespokv::bench
