// Fig. 10 reproduction: seamless on-line adaptation. A 3-shard MS+EC
// deployment serves a Zipfian 95%-GET workload; at t=20s (virtual) the
// coordinator switches it to MS+SC, AA+EC or AA+SC while clients keep
// running. The bench prints a QPS-vs-time series.
//
// Paper's shape: throughput dips briefly when clients switch connections to
// the new controlets, stabilizes within ~5s, with no downtime and no data
// migration; post-transition throughput reflects the new configuration's
// steady state.
#include "bench/bench_util.h"

using namespace bespokv;
using namespace bespokv::bench;

int main() {
  struct Target {
    const char* name;
    Topology t;
    Consistency c;
  } targets[] = {
      {"MS-EC->MS-SC", Topology::kMasterSlave, Consistency::kStrong},
      {"MS-EC->AA-EC", Topology::kActiveActive, Consistency::kEventual},
      {"MS-EC->AA-SC", Topology::kActiveActive, Consistency::kStrong},
  };

  print_header("Fig. 10", "Seamless transition from MS-EC at t=8s (kQPS/s)");
  for (const auto& target : targets) {
    BenchConfig cfg;
    cfg.topology = Topology::kMasterSlave;
    cfg.consistency = Consistency::kEventual;
    cfg.nodes = 9;  // 3 shards x 3 replicas, as in §VIII-C
    cfg.workload = WorkloadSpec::ycsb_read_mostly(true);
    cfg.workload.num_keys = 100'000;
    cfg.clients_per_node = 2;
    cfg.timeline_bucket_us = 1'000'000;

    BenchRig rig = make_rig(cfg);
    rig.driver->start();
    rig.sim->run_for(1'000'000);  // warmup outside the plotted window
    rig.driver->reset_window();
    rig.sim->run_for(8'000'000);

    rig.cluster->start_transition(target.t, target.c, [](Status) {});
    rig.sim->run_for(12'000'000);
    rig.driver->stop();

    DriverResult r = rig.driver->collect();
    print_row("%s (transition scheduled at t=8s):", target.name);
    for (size_t s = 0; s < r.timeline.size(); ++s) {
      print_row("  t=%2zus  %8.1f kQPS%s", s,
                static_cast<double>(r.timeline[s]) / 1000.0,
                s == 8 ? "   <- transition starts" : "");
    }
  }
  return 0;
}
