// §VI-B reproduction: distributed cache for deep-learning training ingest.
//
// The paper trains an image-segmentation model over a 100 GB dataset and
// finds the extant approach (ingesting millions of small files straight from
// the parallel file system) delivers ~10 images/s, while a bespoKV-based
// distributed cache with the DPDK fast path delivers ~40 images/s (4x).
//
// Substitution (DESIGN.md §2): the parallel file system is modeled as a
// metadata-bound small-file read service (~100 ms per object under
// contention — typical for Lustre many-small-file workloads); the cache is a
// real 3-node bespoKV MS+EC deployment holding the same objects, run once
// over kernel sockets and once with the kernel-bypass transport.
#include "bench/bench_util.h"

using namespace bespokv;
using namespace bespokv::bench;

namespace {

constexpr size_t kImageBytes = 256 * 1024;  // scaled-down image objects
constexpr uint64_t kImages = 2'000;
constexpr uint64_t kDuration = 20'000'000;  // twenty virtual seconds
// Per-image preprocessing/accelerator time in the training pipeline: with
// the I/O bottleneck removed, this is what caps ingest (~40-50 images/s, as
// the paper's GPUs did).
constexpr uint64_t kComputeUs = 20'000;

Runtime* add_loader(SimFabric& sim, const Addr& addr) {
  SimNodeOpts copts;
  copts.is_client = true;
  return sim.add_node(addr,
                      std::make_shared<LambdaService>(
                          [](Runtime&, const Addr&, Message, Replier r) {
                            r(Message::reply(Code::kInvalid));
                          }),
                      copts);
}

// Extant approach: the data loader reads each image from the parallel FS.
double pfs_rate() {
  SimFabric sim;
  // Lustre small-file read path: MDS lookup + OST fetch, ~100 ms per object
  // for many-small-files workloads under shared contention.
  SimNodeOpts pfs;
  pfs.service_cost_fn = [](const Message&) -> uint64_t { return 98'000; };
  sim.add_node("pfs",
               std::make_shared<LambdaService>(
                   [](Runtime&, const Addr&, Message, Replier reply) {
                     Message rep = Message::reply(Code::kOk);
                     rep.value.assign(kImageBytes, 'i');
                     reply(std::move(rep));
                   }),
               pfs);
  Runtime* rt = add_loader(sim, "loader");
  uint64_t completed = 0;
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&, rt, loop] {
    rt->call("pfs", Message::get("img"), [&, rt, loop](Status s, Message) {
      if (s.ok()) ++completed;
      rt->set_timer(kComputeUs, *loop);  // preprocess + accelerator step
    });
  };
  sim.post_to("loader", [loop] { (*loop)(); });
  sim.run_for(kDuration);
  return static_cast<double>(completed) * 1e6 / static_cast<double>(kDuration);
}

// bespoKV cache: a 3-node MS+EC deployment preloaded with the dataset.
double cache_rate(const TransportModel& transport) {
  BenchConfig cfg;
  cfg.topology = Topology::kMasterSlave;
  cfg.consistency = Consistency::kEventual;
  cfg.nodes = 3;
  cfg.transport = transport;
  cfg.workload = WorkloadSpec::dl_ingest(kImageBytes);
  cfg.workload.num_keys = kImages;
  cfg.clients_per_node = 0;  // the trainer below is the only client
  BenchRig rig = make_rig(cfg);  // preloads the images into the cache

  Runtime* rt = add_loader(*rig.sim, "loader");
  auto kv = std::make_shared<KvClient>(
      rt, ClientConfig{rig.cluster->coordinator_addr()});
  uint64_t completed = 0;
  uint64_t next = 0;
  WorkloadGenerator gen(cfg.workload);
  auto loop = std::make_shared<std::function<void()>>();
  *loop = [&, rt, kv, loop] {
    const std::string key = gen.key_at(next++ % kImages);
    kv->get(key, [&, rt, loop](Result<std::string> r) {
      if (r.ok()) ++completed;
      rt->set_timer(kComputeUs, *loop);  // preprocess + accelerator step
    });
  };
  rig.sim->post_to("loader", [kv, loop] {
    kv->connect([loop](Status) { (*loop)(); });
  });
  rig.sim->run_for(kDuration);
  return static_cast<double>(completed) * 1e6 / static_cast<double>(kDuration);
}

}  // namespace

int main() {
  print_header("§VI-B", "DL training ingest: PFS vs bespoKV distributed cache");
  const double pfs = pfs_rate();
  const double cache_socket = cache_rate(TransportModel::socket_model());
  const double cache_dpdk = cache_rate(TransportModel::fastpath_model());

  print_row("%-34s %10.1f images/s", "PFS direct ingest (extant)", pfs);
  print_row("%-34s %10.1f images/s", "bespoKV cache (kernel sockets)", cache_socket);
  print_row("%-34s %10.1f images/s (%.1fx over extant; paper: 4x, 40 vs 10)",
            "bespoKV cache + DPDK fast path", cache_dpdk, cache_dpdk / pfs);
  return 0;
}
