// Table I reproduction: capability matrix of bespoKV vs the baseline systems
// implemented in this repository. Capabilities are *probed*, not asserted:
// each check exercises the corresponding code path (sharding across shards,
// replication fanout, multiple backends, consistency/topology combinations,
// automatic failover, programmability via the event bus).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/native.h"
#include "src/baselines/proxies.h"
#include "src/controlet/events.h"
#include "tests/sim_test_util.h"

using namespace bespokv;
using namespace bespokv::bench;

namespace {

struct FeatureRow {
  const char* system;
  bool sharding, replication, multi_backend, multi_consistency,
      multi_topology, auto_failover, programmable;
};

const char* yn(bool b) { return b ? "yes" : " - "; }

// Probe bespoKV's failover end to end: kill the MS+EC master and verify the
// cluster keeps serving under a promoted leader.
bool probe_bespokv_failover() {
  testing::SimEnv env([] {
    ClusterOptions o = testing::small_cluster(Topology::kMasterSlave,
                                              Consistency::kEventual, 1, 3);
    o.coordinator.hb_period_us = 100'000;
    o.controlet.hb_period_us = 50'000;
    return o;
  }());
  SyncKv kv = env.client();
  if (!kv.put("k", "v").ok()) return false;
  env.cluster.kill_controlet(0, 0);
  env.settle(1'500'000);
  return kv.put("k2", "v2").ok() && kv.get("k2").ok();
}

// Probe all four topology/consistency combinations with a put/get each.
bool probe_bespokv_combos() {
  for (Topology t : {Topology::kMasterSlave, Topology::kActiveActive}) {
    for (Consistency c : {Consistency::kStrong, Consistency::kEventual}) {
      testing::SimEnv env(testing::small_cluster(t, c, 2, 3));
      SyncKv kv = env.client();
      if (!kv.put("k", "v").ok()) return false;
      env.settle(200'000);
      auto r = kv.get("k");
      if (!r.ok() || r.value() != "v") return false;
    }
  }
  return true;
}

// Probe the multiple-backend claim: one put/get per engine kind.
bool probe_bespokv_backends() {
  for (const char* kind : {"tHT", "tMT", "tLSM", "tLog", "tRedis", "tSSDB"}) {
    ClusterOptions o = testing::small_cluster(Topology::kMasterSlave,
                                              Consistency::kEventual, 1, 3);
    o.datalet_kind = kind;
    testing::SimEnv env(std::move(o));
    SyncKv kv = env.client();
    if (!kv.put("k", "v").ok()) return false;
    if (!kv.get("k").ok()) return false;
  }
  return true;
}

// Programmability: extend a controlet's behaviour purely by registering an
// extended event handler (Fig. 13/14 pattern).
bool probe_programmability() {
  EventBus bus;
  int custom_calls = 0;
  bus.on("PUT", [&](EventContext& ctx) {
    ++custom_calls;
    ctx.reply(Message::reply(Code::kOk, "custom"));
  });
  EventContext ctx;
  ctx.reply = [](Message) {};
  bus.emit("PUT", ctx);
  return custom_calls == 1;
}

}  // namespace

int main() {
  print_header("Table I", "BESPOKV vs state-of-the-art proxy-based systems");
  std::printf("probing capabilities (each cell is exercised, not assumed)...\n");

  const bool combos = probe_bespokv_combos();
  const bool failover = probe_bespokv_failover();
  const bool backends = probe_bespokv_backends();
  const bool programmable = probe_programmability();

  // The baselines' rows reflect what the implementations in src/baselines
  // actually provide (which matches the real systems' capabilities).
  FeatureRow rows[] = {
      {"Single-server", false, false, false, false, false, false, false},
      {"Twemproxy", true, false, true, false, false, false, false},
      {"Mcrouter", true, true, false, false, false, false, false},
      {"Dynomite", true, true, true, false, false, false, false},
      {"BESPOKV (this repo)", combos, combos, backends, combos, combos,
       failover, programmable},
  };

  std::printf("%-22s %3s %3s %3s %3s %3s %3s %3s\n", "System", "S", "R", "MB",
              "MC", "MT", "AR", "P");
  for (const auto& r : rows) {
    std::printf("%-22s %3s %3s %3s %3s %3s %3s %3s\n", r.system,
                yn(r.sharding), yn(r.replication), yn(r.multi_backend),
                yn(r.multi_consistency), yn(r.multi_topology),
                yn(r.auto_failover), yn(r.programmable));
  }
  std::printf(
      "S=sharding R=replication MB=multiple backends MC=multiple consistency\n"
      "MT=multiple topologies AR=automatic failover recovery P=programmable\n");
  const bool all = combos && failover && backends && programmable;
  std::printf("bespoKV capability probes: %s\n", all ? "ALL PASS" : "FAILURE");
  return all ? 0 : 1;
}
