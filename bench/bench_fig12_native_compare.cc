// Fig. 12 reproduction: latency vs throughput against natively-distributed
// stores. Six server nodes (the paper's local testbed), Zipfian 95% and 50%
// GET, increasing client counts trace out each system's latency/throughput
// curve:
//   * bespoKV+tHT in MS+SC / MS+EC / AA+SC / AA+EC
//   * Cassandra-like (AA+EC, coordinator hop, LSM engine w/ compaction cost)
//   * Voldemort-like (AA+EC, coordinator hop, in-memory engine)
//
// Paper's shape: bespoKV AA+EC beats Cassandra ~4.5x/4.4x and Voldemort
// ~1.6x/2.75x (read/write-intensive); MS+EC ~ AA+EC at 95% GET while AA+EC
// leads at 50% GET (~1.5x); AA+SC is lock-capped; MS+SC well above AA+SC.
#include "bench/bench_util.h"

#include "src/baselines/native.h"
#include "src/common/hash.h"

using namespace bespokv;
using namespace bespokv::bench;
using namespace bespokv::baselines;

namespace {

constexpr int kServerNodes = 6;

struct Point {
  int clients;
  double kqps;
  double mean_lat_ms;
};

std::vector<Point> bespokv_curve(Topology t, Consistency c,
                                 const WorkloadSpec& wl,
                                 const std::vector<int>& client_counts) {
  std::vector<Point> pts;
  for (int clients : client_counts) {
    BenchConfig cfg;
    cfg.topology = t;
    cfg.consistency = c;
    cfg.nodes = kServerNodes;
    cfg.workload = wl;
    cfg.clients_per_node = std::max(1, clients / kServerNodes);
    cfg.warmup_us = 100'000;
    cfg.measure_us = 250'000;
    DriverResult r = run_bench(cfg);
    pts.push_back(Point{clients, kqps(r), r.latency_us.mean() / 1000.0});
  }
  return pts;
}

// The native stores' per-op engine cost: bespoKV nodes are calibrated at
// 45us/op for the controlet+tHT pair. The Dynamo descendants pay (a) a
// coordinator forwarding hop on most requests and (b) heavier storage
// engines: the Cassandra-like node runs a JVM LSM with compaction and
// read amplification (~3x per-op cost — the §VIII-F explanation for its
// gap), Voldemort's in-memory BDB-style engine ~1.6x.
std::vector<Point> native_curve(const char* engine, uint64_t service_us,
                                const WorkloadSpec& wl,
                                const std::vector<int>& client_counts) {
  std::vector<Point> pts;
  for (int clients : client_counts) {
    SimFabric sim;
    SimNodeOpts server;
    server.base_service_us = service_us;
    server.per_kb_service_us = 4.0;
    std::vector<Addr> ring;
    for (int i = 0; i < kServerNodes; ++i) {
      ring.push_back("native" + std::to_string(i));
    }
    std::vector<std::shared_ptr<NativeStoreNode>> nodes;
    for (int i = 0; i < kServerNodes; ++i) {
      NativeStoreConfig cfg;
      cfg.ring = ring;
      cfg.my_index = static_cast<size_t>(i);
      cfg.engine = engine;
      auto n = std::make_shared<NativeStoreNode>(cfg);
      nodes.push_back(n);
      sim.add_node(ring[static_cast<size_t>(i)], n, server);
    }
    // Preload replica sets directly.
    WorkloadGenerator gen(wl);
    for (uint64_t k = 0; k < wl.num_keys; ++k) {
      const std::string key = gen.key_at(k);
      const std::string value = gen.value_for(k);
      const size_t start = mix64(fnv1a64(key)) % ring.size();
      for (size_t r = 0; r < 3; ++r) {
        nodes[(start + r) % ring.size()]->engine()->put(key, value, 1);
      }
    }
    BaselineRunOpts opts;
    opts.num_clients = clients;
    opts.workload = wl;
    DriverResult r = run_baseline_load(
        sim, opts, [&ring](const WorkloadOp&, uint64_t salt) {
          return ring[salt % ring.size()];  // clients spray over all nodes
        });
    pts.push_back(Point{clients, r.qps / 1000.0, r.latency_us.mean() / 1000.0});
  }
  return pts;
}

void print_curve(const char* name, const std::vector<Point>& pts) {
  for (const auto& p : pts) {
    print_row("%-12s clients=%4d %9.1f kQPS %8.2f ms", name, p.clients,
              p.kqps, p.mean_lat_ms);
  }
}

}  // namespace

int main() {
  const std::vector<int> client_counts = {6, 12, 24, 48, 96, 192};
  for (double get_ratio : {0.95, 0.50}) {
    WorkloadSpec wl;
    wl.num_keys = 100'000;
    wl.get_ratio = get_ratio;
    wl.zipfian = true;

    print_header("Fig. 12",
                 std::string("latency vs throughput, Zipf ") +
                     (get_ratio > 0.9 ? "95% GET" : "50% GET") +
                     " (6 server nodes)");
    print_curve("MS+SC", bespokv_curve(Topology::kMasterSlave,
                                       Consistency::kStrong, wl, client_counts));
    print_curve("MS+EC", bespokv_curve(Topology::kMasterSlave,
                                       Consistency::kEventual, wl, client_counts));
    print_curve("AA+SC", bespokv_curve(Topology::kActiveActive,
                                       Consistency::kStrong, wl, client_counts));
    print_curve("AA+EC", bespokv_curve(Topology::kActiveActive,
                                       Consistency::kEventual, wl, client_counts));
    print_curve("Cassandra", native_curve("tLSM", 135, wl, client_counts));
    print_curve("Voldemort", native_curve("tHT", 72, wl, client_counts));
  }
  return 0;
}
