// Fig. 8 reproduction: scalability under the two HPC-derived workloads —
// MPI job launch (Get:Put 50:50, reused control keys) and I/O forwarding
// (SeaweedFS metadata, Get:Put 62:38) — for MS and AA under SC and EC.
//
// Paper's shape: same linear scale-out as Fig. 7; MS beats AA under SC, AA
// beats MS under EC; I/O forwarding slightly outperforms job launch because
// it carries 12% more reads.
#include "bench/bench_util.h"

using namespace bespokv;
using namespace bespokv::bench;

int main() {
  const int node_counts[] = {3, 6, 12, 24, 36, 48};
  struct Wl {
    const char* name;
    WorkloadSpec spec;
  } workloads[] = {
      {"Job-L", WorkloadSpec::hpc_job_launch()},
      {"I/O-F", WorkloadSpec::hpc_io_forwarding()},
  };
  struct Cfg {
    const char* name;
    Topology t;
    Consistency c;
  } combos[] = {
      {"MS+SC", Topology::kMasterSlave, Consistency::kStrong},
      {"AA+SC", Topology::kActiveActive, Consistency::kStrong},
      {"MS+EC", Topology::kMasterSlave, Consistency::kEventual},
      {"AA+EC", Topology::kActiveActive, Consistency::kEventual},
  };

  print_header("Fig. 8", "BESPOKV scales HPC workloads (kQPS)");
  print_row("%-6s %-6s %6s %8s", "combo", "wl", "nodes", "kQPS");
  for (const auto& combo : combos) {
    for (const auto& wl : workloads) {
      for (int nodes : node_counts) {
        BenchConfig cfg;
        cfg.topology = combo.t;
        cfg.consistency = combo.c;
        cfg.nodes = nodes;
        cfg.workload = wl.spec;
        cfg.workload.num_keys = 100'000;
        cfg.warmup_us = 100'000;
        cfg.measure_us = 250'000;
        if (combo.c == Consistency::kStrong) {
          cfg.clients_per_node = combo.t == Topology::kActiveActive ? 4 : 8;
        } else {
          cfg.clients_per_node = 5;
        }
        DriverResult r = run_bench(cfg);
        print_row("%-6s %-6s %6d %8.1f", combo.name, wl.name, nodes, kqps(r));
      }
    }
  }
  return 0;
}
