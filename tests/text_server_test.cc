// End-to-end wire-protocol tests: a raw TCP client speaks RESP / SSDB to a
// TextProtocolServer fronting real engines — the "port an existing
// single-server store" path (§III-A option 2) over genuine sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/datalet/text_server.h"

namespace bespokv {
namespace {

class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = htons(static_cast<uint16_t>(port));
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return connected_; }

  void send(std::string_view data) {
    ASSERT_EQ(::write(fd_, data.data(), data.size()),
              static_cast<ssize_t>(data.size()));
  }

  // Reads until `stop` returns true on the accumulated buffer.
  std::string read_until(const std::function<bool(const std::string&)>& stop) {
    std::string buf;
    char chunk[4096];
    while (!stop(buf)) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) break;
      buf.append(chunk, static_cast<size_t>(n));
    }
    return buf;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(TextServerTest, RespSetGetDelOverRealSocket) {
  TextProtocolServer server(make_datalet("tRedis", {}), "resp");
  auto port = server.start();
  ASSERT_TRUE(port.ok()) << port.status().to_string();

  RawClient c(port.value());
  ASSERT_TRUE(c.ok());

  c.send("*3\r\n$3\r\nSET\r\n$5\r\nhello\r\n$5\r\nworld\r\n");
  EXPECT_EQ(c.read_until([](const std::string& b) { return b.size() >= 5; }),
            "+OK\r\n");

  c.send("*2\r\n$3\r\nGET\r\n$5\r\nhello\r\n");
  EXPECT_EQ(c.read_until([](const std::string& b) {
              return b.find("world\r\n") != std::string::npos;
            }),
            "$5\r\nworld\r\n");

  c.send("*2\r\n$3\r\nDEL\r\n$5\r\nhello\r\n");
  EXPECT_EQ(c.read_until([](const std::string& b) { return b.size() >= 5; }),
            "+OK\r\n");

  c.send("*2\r\n$3\r\nGET\r\n$5\r\nhello\r\n");
  EXPECT_EQ(c.read_until([](const std::string& b) { return b.size() >= 5; }),
            "$-1\r\n");

  EXPECT_EQ(server.requests_served(), 4u);
}

TEST(TextServerTest, RespPipelinedAndFragmentedRequests) {
  TextProtocolServer server(make_datalet("tRedis", {}), "resp");
  auto port = server.start();
  ASSERT_TRUE(port.ok());
  RawClient c(port.value());
  ASSERT_TRUE(c.ok());

  // Two pipelined SETs in a single write, then a GET split across writes.
  c.send("*3\r\n$3\r\nSET\r\n$1\r\na\r\n$1\r\n1\r\n"
         "*3\r\n$3\r\nSET\r\n$1\r\nb\r\n$1\r\n2\r\n");
  EXPECT_EQ(c.read_until([](const std::string& b) { return b.size() >= 10; }),
            "+OK\r\n+OK\r\n");

  c.send("*2\r\n$3\r\nGE");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  c.send("T\r\n$1\r\nb\r\n");
  EXPECT_EQ(c.read_until([](const std::string& b) {
              return b.find("\r\n2\r\n") != std::string::npos;
            }),
            "$1\r\n2\r\n");
}

TEST(TextServerTest, SsdbProtocolAgainstOrderedEngine) {
  // The SSDB port runs against tMT so SCAN works over the wire.
  TextProtocolServer server(make_datalet("tMT", {}), "ssdb");
  auto port = server.start();
  ASSERT_TRUE(port.ok());
  RawClient c(port.value());
  ASSERT_TRUE(c.ok());

  SsdbParser p;
  for (int i = 0; i < 5; ++i) {
    Message put = Message::put("key" + std::to_string(i), "v" + std::to_string(i));
    c.send(p.format_request(put));
    auto rep = c.read_until([&p](const std::string& b) {
      return p.parse_reply(b).has_message;
    });
    auto parsed = p.parse_reply(rep);
    ASSERT_TRUE(parsed.has_message);
    EXPECT_EQ(parsed.message.code, Code::kOk) << i;
  }

  c.send(p.format_request(Message::scan("key1", "key4", 0)));
  auto rep = c.read_until([&p](const std::string& b) {
    auto r = p.parse_reply(b);
    return r.has_message && r.message.kvs.size() >= 3;
  });
  auto parsed = p.parse_reply(rep);
  ASSERT_TRUE(parsed.has_message);
  ASSERT_EQ(parsed.message.kvs.size(), 3u);
  EXPECT_EQ(parsed.message.kvs[0].key, "key1");
  EXPECT_EQ(parsed.message.kvs[2].value, "v3");
}

TEST(TextServerTest, StatsCommandReturnsRegistryCountersAsJson) {
  TextProtocolServer server(make_datalet("tRedis", {}), "resp");
  auto port = server.start();
  ASSERT_TRUE(port.ok());
  RawClient c(port.value());
  ASSERT_TRUE(c.ok());

  c.send("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
  EXPECT_EQ(c.read_until([](const std::string& b) { return b.size() >= 5; }),
            "+OK\r\n");
  c.send("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n");
  EXPECT_EQ(c.read_until([](const std::string& b) {
              return b.find("v\r\n") != std::string::npos;
            }),
            "$1\r\nv\r\n");

  // STATS arrives over the same wire and answers with the registry snapshot
  // as a JSON bulk string — no side channel, any redis client can fetch it.
  c.send("*1\r\n$5\r\nSTATS\r\n");
  const std::string raw = c.read_until([](const std::string& b) {
    return b.find("\r\n") != std::string::npos &&
           b.find("}\r\n") != std::string::npos;
  });
  ASSERT_EQ(raw[0], '$');
  const size_t body = raw.find("\r\n") + 2;
  const std::string json = raw.substr(body, raw.rfind("\r\n") - body);

  auto snap = obs::MetricsSnapshot::from_json(json);
  ASSERT_TRUE(snap.ok()) << snap.status().to_string() << "\n" << json;
  // SET + GET + the STATS request itself were counted by the time we parse.
  // Per-op counters are keyed by the internal op name (SET parses to kPut).
  EXPECT_GE(snap.value().counter("server.requests"), 3u);
  EXPECT_EQ(snap.value().counter("server.op.PUT"), 1u);
  EXPECT_EQ(snap.value().counter("server.op.GET"), 1u);
  EXPECT_EQ(snap.value().counter("server.op.STATS"), 1u);
}

TEST(TextServerTest, ManyConcurrentConnections) {
  TextProtocolServer server(make_datalet("tRedis", {}), "resp");
  auto port = server.start();
  ASSERT_TRUE(port.ok());

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      RawClient c(port.value());
      if (!c.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 50; ++i) {
        const std::string key = "w" + std::to_string(w) + "k" + std::to_string(i);
        std::string cmd = "*3\r\n$3\r\nSET\r\n$" + std::to_string(key.size()) +
                          "\r\n" + key + "\r\n$1\r\nv\r\n";
        c.send(cmd);
        const std::string rep =
            c.read_until([](const std::string& b) { return b.size() >= 5; });
        if (rep != "+OK\r\n") ++failures;
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), 200u);
}

}  // namespace
}  // namespace bespokv
