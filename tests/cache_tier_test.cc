// Cache-tier mode unit tests (DESIGN.md "Cache-tier mode"): the TTL value
// envelope, the CacheTierDatalet eviction wrapper (LRU and LFU policies,
// memory budget, evict.* counters), lazy engine-level expiry against an
// injected clock, and index rebuild across crash_restart().
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/datalet/btree.h"
#include "src/datalet/cache_tier.h"
#include "src/datalet/datalet.h"
#include "src/datalet/ht.h"
#include "src/datalet/ttl.h"
#include "src/obs/metrics.h"

namespace bespokv {
namespace {

TEST(TtlEnvelope, RoundTrip) {
  const std::string wrapped = ttl::encode("hello", 12'345'678);
  EXPECT_TRUE(ttl::is_enveloped(wrapped));
  EXPECT_EQ(ttl::expire_at(wrapped), 12'345'678u);
  EXPECT_EQ(ttl::payload(wrapped), "hello");
  EXPECT_FALSE(ttl::expired(wrapped, 12'345'677));
  EXPECT_TRUE(ttl::expired(wrapped, 12'345'678));  // expiry instant inclusive
  EXPECT_TRUE(ttl::expired(wrapped, 99'999'999));
}

TEST(TtlEnvelope, PlainValuesNeverExpire) {
  EXPECT_FALSE(ttl::is_enveloped("plain value"));
  EXPECT_EQ(ttl::expire_at("plain value"), 0u);
  EXPECT_FALSE(ttl::expired("plain value", UINT64_MAX));
  EXPECT_EQ(ttl::payload("plain value"), "plain value");
  // Short strings can't hold a header; empty values are fine too.
  EXPECT_FALSE(ttl::is_enveloped(""));
  EXPECT_FALSE(ttl::is_enveloped(std::string(ttl::kMagic, 4)));
}

TEST(TtlEnvelope, EmptyPayload) {
  const std::string wrapped = ttl::encode("", 77);
  EXPECT_EQ(wrapped.size(), ttl::kHeaderBytes);
  EXPECT_TRUE(ttl::is_enveloped(wrapped));
  EXPECT_EQ(ttl::payload(wrapped), "");
}

std::unique_ptr<CacheTierDatalet> make_cache(uint64_t budget,
                                             CacheTierDatalet::Policy policy) {
  return std::make_unique<CacheTierDatalet>(
      std::make_unique<HashTableDatalet>(DataletConfig{}), budget, policy);
}

TEST(CacheTier, LruEvictsLeastRecentlyUsed) {
  // Each entry is key(2) + value(8) = 10 bytes; budget fits three.
  auto c = make_cache(30, CacheTierDatalet::Policy::kLru);
  ASSERT_TRUE(c->put("k1", "aaaaaaaa").ok());
  ASSERT_TRUE(c->put("k2", "bbbbbbbb").ok());
  ASSERT_TRUE(c->put("k3", "cccccccc").ok());
  EXPECT_EQ(c->resident_bytes(), 30u);
  // Touch k1 so k2 becomes the least recently used.
  ASSERT_TRUE(c->get("k1").ok());
  ASSERT_TRUE(c->put("k4", "dddddddd").ok());
  EXPECT_EQ(c->evictions(), 1u);
  EXPECT_EQ(c->get("k2").status().code(), Code::kNotFound);
  EXPECT_TRUE(c->get("k1").ok());
  EXPECT_TRUE(c->get("k3").ok());
  EXPECT_TRUE(c->get("k4").ok());
  EXPECT_LE(c->resident_bytes(), 30u);
}

TEST(CacheTier, LfuEvictsColdestFrequencyClass) {
  auto c = make_cache(30, CacheTierDatalet::Policy::kLfu);
  ASSERT_TRUE(c->put("k1", "aaaaaaaa").ok());
  ASSERT_TRUE(c->put("k2", "bbbbbbbb").ok());
  ASSERT_TRUE(c->put("k3", "cccccccc").ok());
  // k1 and k3 get extra hits; k2 stays in the lowest frequency class.
  ASSERT_TRUE(c->get("k1").ok());
  ASSERT_TRUE(c->get("k1").ok());
  ASSERT_TRUE(c->get("k3").ok());
  ASSERT_TRUE(c->put("k4", "dddddddd").ok());
  EXPECT_EQ(c->get("k2").status().code(), Code::kNotFound);
  EXPECT_TRUE(c->get("k1").ok());
  EXPECT_TRUE(c->get("k3").ok());
}

TEST(CacheTier, OversizedWriteStillWithinBudgetAfterEviction) {
  auto c = make_cache(25, CacheTierDatalet::Policy::kLru);
  ASSERT_TRUE(c->put("a", std::string(9, 'x')).ok());   // 10 bytes
  ASSERT_TRUE(c->put("b", std::string(9, 'y')).ok());   // 10 bytes
  ASSERT_TRUE(c->put("c", std::string(14, 'z')).ok());  // 15 bytes -> evicts a
  EXPECT_LE(c->resident_bytes(), 25u);
  EXPECT_EQ(c->get("a").status().code(), Code::kNotFound);
  EXPECT_TRUE(c->get("b").ok());
}

TEST(CacheTier, DeleteReleasesBudget) {
  auto c = make_cache(30, CacheTierDatalet::Policy::kLru);
  ASSERT_TRUE(c->put("k1", "aaaaaaaa").ok());
  ASSERT_TRUE(c->put("k2", "bbbbbbbb").ok());
  ASSERT_TRUE(c->del("k1").ok());
  EXPECT_EQ(c->resident_bytes(), 10u);
  ASSERT_TRUE(c->put("k3", "cccccccc").ok());
  ASSERT_TRUE(c->put("k4", "dddddddd").ok());
  EXPECT_EQ(c->evictions(), 0u);  // freed space absorbed both writes
}

TEST(CacheTier, MetricsCountEvictions) {
  obs::MetricsRegistry m;
  auto c = make_cache(20, CacheTierDatalet::Policy::kLru);
  c->attach_metrics(m);
  ASSERT_TRUE(c->put("k1", "aaaaaaaa").ok());
  ASSERT_TRUE(c->put("k2", "bbbbbbbb").ok());
  ASSERT_TRUE(c->put("k3", "cccccccc").ok());
  const obs::MetricsSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.counter("evict.evicted"), 1u);
  EXPECT_EQ(snap.counter("evict.bytes"), 10u);
  EXPECT_EQ(snap.gauge("evict.resident_bytes"), 20);
}

TEST(CacheTier, LazyTtlExpiryWithInjectedClock) {
  obs::MetricsRegistry m;
  auto c = make_cache(1 << 20, CacheTierDatalet::Policy::kLru);
  c->attach_metrics(m);
  uint64_t now = 1'000;
  c->set_clock([&now] { return now; });
  ASSERT_TRUE(c->put("live", ttl::encode("v1", 5'000)).ok());
  ASSERT_TRUE(c->put("forever", "v2").ok());
  // Before expiry: the envelope is intact at engine level (the serving layer
  // strips it for clients).
  auto r = c->get("live");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ttl::payload(r.value().value), "v1");
  // At/after the expiry instant the entry is gone and reclaimed.
  now = 5'000;
  EXPECT_EQ(c->get("live").status().code(), Code::kNotFound);
  EXPECT_EQ(c->get("live").status().code(), Code::kNotFound);  // stays dead
  EXPECT_TRUE(c->get("forever").ok());
  EXPECT_EQ(m.snapshot().counter("evict.expired"), 1u);
  // The reclaim released the entry's bytes from the resident set.
  EXPECT_EQ(c->resident_bytes(),
            uint64_t(std::string("forever").size() + 2));
}

TEST(CacheTier, ScanFiltersExpiredEntries) {
  auto inner = std::make_unique<BTreeDatalet>();
  auto c = std::make_unique<CacheTierDatalet>(std::move(inner), 1 << 20,
                                              CacheTierDatalet::Policy::kLru);
  uint64_t now = 0;
  c->set_clock([&now] { return now; });
  ASSERT_TRUE(c->put("a", ttl::encode("va", 100)).ok());
  ASSERT_TRUE(c->put("b", "vb").ok());
  ASSERT_TRUE(c->put("c", ttl::encode("vc", 900)).ok());
  now = 500;
  auto r = c->scan("a", "", 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].key, "b");
  EXPECT_EQ(r.value()[1].key, "c");
  // The expired entry was deleted through the inner engine, not just hidden.
  EXPECT_EQ(c->inner()->get("a").status().code(), Code::kNotFound);
}

TEST(CacheTier, CrashRestartRebuildsIndexWithinBudget) {
  auto c = make_cache(30, CacheTierDatalet::Policy::kLru);
  ASSERT_TRUE(c->put("k1", "aaaaaaaa").ok());
  ASSERT_TRUE(c->put("k2", "bbbbbbbb").ok());
  ASSERT_TRUE(c->put("k3", "cccccccc").ok());
  // Volatile inner engine: crash_restart keeps memory state; the wrapper
  // must rebuild its recency index from the survivors and stay accurate.
  ASSERT_TRUE(c->crash_restart().ok());
  EXPECT_EQ(c->resident_bytes(), 30u);
  ASSERT_TRUE(c->put("k4", "dddddddd").ok());
  EXPECT_LE(c->resident_bytes(), 30u);
  EXPECT_EQ(c->size(), 3u);
}

}  // namespace
}  // namespace bespokv
