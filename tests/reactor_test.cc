// Thread-per-core runtime building blocks (buffer pool, MPSC inbox,
// intrusive conn list, sharded datalet) plus the multi-reactor TcpFabric
// end to end: accept sharding, cross-reactor response steering, per-reactor
// metrics, kill/restart, and large-payload backpressure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/intrusive_list.h"
#include "src/common/mpsc_queue.h"
#include "src/datalet/sharded_service.h"
#include "src/net/buffer_pool.h"
#include "src/net/tcp_fabric.h"

namespace bespokv {
namespace {

// ------------------------------ BufferPool ----------------------------------

TEST(BufferPoolTest, RecyclesDrainedBuffers) {
  BufferPool pool(/*max_buffers=*/2, /*slab_capacity=*/1024);
  ByteBuffer a = pool.acquire();
  EXPECT_EQ(pool.stats().misses, 1u);
  a.append("hello", 5);
  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().returned, 1u);
  EXPECT_EQ(pool.available(), 1u);

  ByteBuffer b = pool.acquire();
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(b.size(), 0u);  // came back cleared
  pool.release(std::move(b));
}

TEST(BufferPoolTest, BoundsFootprint) {
  BufferPool pool(/*max_buffers=*/1, /*slab_capacity=*/64);
  ByteBuffer a = pool.acquire();
  ByteBuffer b = pool.acquire();
  pool.release(std::move(a));
  pool.release(std::move(b));  // pool already full
  EXPECT_EQ(pool.stats().returned, 1u);
  EXPECT_EQ(pool.stats().dropped, 1u);
  EXPECT_EQ(pool.available(), 1u);
}

TEST(BufferPoolTest, DropsOversizedSlabs) {
  BufferPool pool(/*max_buffers=*/8, /*slab_capacity=*/64);
  ByteBuffer big = pool.acquire();
  const std::string blob(64 * 16, 'x');  // grows capacity past 4 * slab
  big.append(blob.data(), blob.size());
  pool.release(std::move(big));
  EXPECT_EQ(pool.stats().dropped, 1u);
  EXPECT_EQ(pool.available(), 0u);
}

// ------------------------------ MpscQueue -----------------------------------

TEST(MpscQueueTest, MultiProducerKeepsPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  MpscQueue<std::pair<int, int>> q;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push({p, i});
    });
  }
  std::vector<int> next_expected(kProducers, 0);
  int popped = 0;
  while (popped < kProducers * kPerProducer) {
    auto item = q.pop();
    if (!item.has_value()) continue;  // mid-push window; re-poll
    auto [p, i] = item.value();
    ASSERT_EQ(i, next_expected[size_t(p)]) << "producer " << p;
    ++next_expected[size_t(p)];
    ++popped;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.approx_depth(), 0u);
}

// ---------------------------- IntrusiveList ---------------------------------

struct FakeConn {
  int id = 0;
  ListHook<FakeConn> hook;
};
using ConnList = IntrusiveList<FakeConn, &FakeConn::hook>;

TEST(IntrusiveListTest, LinkUnlinkMiddle) {
  FakeConn a{1}, b{2}, c{3};
  ConnList l;
  l.push_back(&a);
  l.push_back(&b);
  l.push_back(&c);
  EXPECT_EQ(l.size(), 3u);
  l.erase(&b);
  EXPECT_FALSE(b.hook.linked);
  std::vector<int> ids;
  l.for_each([&ids](FakeConn* e) { ids.push_back(e->id); });
  EXPECT_EQ(ids, (std::vector<int>{1, 3}));
  l.erase(&b);  // double-erase is a no-op
  EXPECT_EQ(l.size(), 2u);
}

TEST(IntrusiveListTest, ForEachSurvivesDeletingVisited) {
  ConnList l;
  for (int i = 0; i < 8; ++i) l.push_back(new FakeConn{i});
  l.for_each([&l](FakeConn* e) {
    l.erase(e);
    delete e;
  });
  EXPECT_TRUE(l.empty());
}

// ------------------------- ShardedDataletService ----------------------------

// Just enough Runtime for Service::start to resolve its metric handles.
class StubRuntime : public Runtime {
 public:
  const Addr& self() const override { return self_; }
  uint64_t now_us() override { return 0; }
  void post(std::function<void()> fn) override { fn(); }
  uint64_t set_timer(uint64_t, std::function<void()>) override { return 1; }
  uint64_t set_periodic(uint64_t, std::function<void()>) override { return 1; }
  void cancel_timer(uint64_t) override {}
  void call(const Addr&, Message, RpcCallback cb, uint64_t) override {
    cb(Status::Unavailable("stub"), {});
  }
  void send(const Addr&, Message) override {}
  Rng& rng() override { return rng_; }

 private:
  Addr self_ = "stub";
  Rng rng_{1};
};

Message call_direct(Service& svc, Message req) {
  Message out;
  svc.handle("test", std::move(req), [&out](Message rep) { out = std::move(rep); });
  return out;
}

TEST(ShardedDataletTest, RoutesByKeyHashAndServes) {
  ShardedDataletService svc("tHT", 4);
  EXPECT_EQ(svc.shards(), 4);
  // Placement is a pure function of the key.
  for (const char* k : {"alpha", "beta", "gamma"}) {
    Message m = Message::get(k);
    EXPECT_EQ(svc.shard_of(m), svc.shard_of(m));
    EXPECT_LT(svc.shard_of(m), 4);
  }
  for (int i = 0; i < 64; ++i) {
    const std::string k = "k" + std::to_string(i);
    ASSERT_EQ(call_direct(svc, Message::put(k, "v" + std::to_string(i))).code,
              Code::kOk);
  }
  for (int i = 0; i < 64; ++i) {
    const std::string k = "k" + std::to_string(i);
    Message r = call_direct(svc, Message::get(k));
    ASSERT_EQ(r.code, Code::kOk) << k;
    EXPECT_EQ(r.value, "v" + std::to_string(i));
  }
}

TEST(ShardedDataletTest, DedupReplaysOriginalReply) {
  ShardedDataletService svc("tHT", 2);
  StubRuntime rt;
  svc.start(rt);
  Message put = Message::put("k", "first");
  put.token = 77;
  ASSERT_EQ(call_direct(svc, put).code, Code::kOk);

  Message retry = Message::put("k", "second");  // same token, new payload:
  retry.token = 77;                             // a retransmit, not a new op
  ASSERT_EQ(call_direct(svc, retry).code, Code::kOk);
  EXPECT_EQ(svc.dedup_hits(), 1u);
  EXPECT_EQ(call_direct(svc, Message::get("k")).value, "first");
}

TEST(ShardedDataletTest, FencesStaleEpochWrites) {
  ShardedDataletService svc("tHT", 2);
  StubRuntime rt;
  svc.start(rt);
  Message fresh = Message::put("k", "v9");
  fresh.epoch = 9;
  ASSERT_EQ(call_direct(svc, fresh).code, Code::kOk);

  Message stale = Message::put("k", "v3");
  stale.epoch = 3;
  EXPECT_EQ(call_direct(svc, stale).code, Code::kConflict);
  EXPECT_EQ(svc.fence_rejects(), 1u);
  EXPECT_EQ(call_direct(svc, Message::get("k")).value, "v9");
}

TEST(ShardedDataletTest, RejectsCrossShardOps) {
  ShardedDataletService svc("tHT", 2);
  EXPECT_EQ(call_direct(svc, Message::scan("a", "z", 10)).code, Code::kInvalid);
}

// --------------------------- Multi-reactor TCP ------------------------------

class EchoService : public Service {
 public:
  void handle(const Addr&, Message req, Replier reply) override {
    ++handled;
    Message rep = Message::reply(Code::kOk, req.value.empty() ? req.key
                                                              : req.value);
    reply(std::move(rep));
  }
  std::atomic<uint64_t> handled{0};
};

std::string tcp_addr() {
  return "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
}

TEST(TcpReactorTest, ClampsReactorCount) {
  // Non-positive counts fall back to $BKV_TCP_REACTORS; pin it so the test
  // means the same thing under the TSan CI job (which exports it as 4).
  const char* saved = std::getenv("BKV_TCP_REACTORS");
  const std::string saved_val = saved != nullptr ? saved : "";
  unsetenv("BKV_TCP_REACTORS");

  TcpFabricOpts lo;
  lo.reactors = -3;
  EXPECT_EQ(TcpFabric(lo).reactors_per_node(), 1);
  TcpFabricOpts hi;
  hi.reactors = 99;
  EXPECT_EQ(TcpFabric(hi).reactors_per_node(), 16);

  setenv("BKV_TCP_REACTORS", "7", 1);
  EXPECT_EQ(TcpFabric(TcpFabricOpts{}).reactors_per_node(), 7);

  if (saved != nullptr) {
    setenv("BKV_TCP_REACTORS", saved_val.c_str(), 1);
  } else {
    unsetenv("BKV_TCP_REACTORS");
  }
}

TEST(TcpReactorTest, ConcurrentCallsAcrossReactors) {
  TcpFabricOpts opts;
  opts.reactors = 4;
  TcpFabric fab(opts);
  auto svc = std::make_shared<EchoService>();
  const Addr addr = tcp_addr();
  fab.add_node(addr, svc);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fab, &failures, &addr, t] {
      for (int i = 0; i < 50; ++i) {
        const std::string k = "t" + std::to_string(t) + "i" + std::to_string(i);
        auto r = fab.call_sync(addr, Message::get(k));
        if (!r.ok() || r.value().value != k) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc->handled.load(), 200u);
}

TEST(TcpReactorTest, ShardedServicePutGet) {
  TcpFabricOpts opts;
  opts.reactors = 4;
  TcpFabric fab(opts);
  const Addr addr = tcp_addr();
  fab.add_node(addr, std::make_shared<ShardedDataletService>("tHT", 4));

  for (int i = 0; i < 100; ++i) {
    auto r = fab.call_sync(addr, Message::put("k" + std::to_string(i),
                                              "v" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    ASSERT_EQ(r.value().code, Code::kOk);
  }
  for (int i = 0; i < 100; ++i) {
    auto r = fab.call_sync(addr, Message::get("k" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r.value().value, "v" + std::to_string(i));
  }
}

TEST(TcpReactorTest, StatsExposePerReactorDimension) {
  TcpFabricOpts opts;
  opts.reactors = 4;
  TcpFabric fab(opts);
  const Addr addr = tcp_addr();
  fab.add_node(addr, std::make_shared<EchoService>());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fab.call_sync(addr, Message::get("warm")).ok());
  }
  Message stats;
  stats.op = Op::kStats;
  auto r = fab.call_sync(addr, std::move(stats));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  const std::string& snap = r.value().value;
  for (int k = 0; k < 4; ++k) {
    const std::string prefix = "net.r" + std::to_string(k) + ".";
    EXPECT_NE(snap.find(prefix + "accepts"), std::string::npos) << prefix;
    EXPECT_NE(snap.find(prefix + "wakeups"), std::string::npos) << prefix;
    EXPECT_NE(snap.find(prefix + "queue_depth"), std::string::npos) << prefix;
  }
}

TEST(TcpReactorTest, KillRestartKeepsServing) {
  TcpFabricOpts opts;
  opts.reactors = 2;
  TcpFabric fab(opts);
  const Addr addr = tcp_addr();
  fab.add_node(addr, std::make_shared<EchoService>());
  ASSERT_TRUE(fab.call_sync(addr, Message::get("a")).ok());

  fab.kill(addr);
  EXPECT_FALSE(fab.call_sync(addr, Message::get("b"), 150'000).ok());

  ASSERT_TRUE(fab.restart(addr));
  // A fresh listener may need a beat; the client redials on failure.
  Result<Message> r = Status::Unavailable("");
  for (int attempt = 0; attempt < 20 && !r.ok(); ++attempt) {
    r = fab.call_sync(addr, Message::get("c"), 250'000);
  }
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().value, "c");
}

TEST(TcpReactorTest, LargePayloadCrossesWatermarks) {
  TcpFabricOpts opts;
  opts.reactors = 2;
  opts.send_hi_watermark = 64 << 10;  // force the cork/uncork path
  opts.send_lo_watermark = 16 << 10;
  TcpFabric fab(opts);
  const Addr addr = tcp_addr();
  fab.add_node(addr, std::make_shared<EchoService>());

  const std::string blob(1 << 20, 'z');  // 1 MiB >> hi watermark
  auto r = fab.call_sync(addr, Message::put("big", blob), 5'000'000);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().value.size(), blob.size());
  EXPECT_EQ(r.value().value, blob);
}

}  // namespace
}  // namespace bespokv
