// Crash-recovery tests for durable engines built via make_datalet with a
// durable_dir on a MemEnv: acked state survives power cuts (torn tails
// included), checkpoints + WAL replay compose, idempotency pins come back,
// and the wal_disable negative knob provably loses data. tLSM's native disk
// mode gets the same treatment plus manifest/orphan-sweep coverage.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/datalet/datalet.h"
#include "src/storage/durable.h"
#include "src/storage/env.h"

namespace bespokv {
namespace {

using storage::MemEnv;

DataletConfig durable_cfg(std::shared_ptr<MemEnv> env, const std::string& dir) {
  DataletConfig cfg;
  cfg.durable_dir = dir;
  cfg.dir = dir;  // tLSM disk mode roots its runs here too
  cfg.env = std::move(env);
  cfg.fsync = "always";
  cfg.torn_writes = true;
  cfg.crash_seed = 42;
  // Small enough that multi-batch tests exercise flush/checkpoint paths.
  cfg.memtable_limit = 32;
  cfg.max_runs_per_level = 2;
  return cfg;
}

// Engines whose durable mode must survive a power cut. tLog has its own
// replay test (logstore); tRedis/tSSDB share tHT's hash engine.
const char* kKinds[] = {"tHT", "tMT", "tLSM"};

class DurableRecoveryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DurableRecoveryTest, AckedWritesSurviveCrashRestart) {
  auto env = std::make_shared<MemEnv>();
  auto d = make_datalet(GetParam(), durable_cfg(env, "/node"));
  ASSERT_TRUE(d);
  EXPECT_TRUE(d->durable());

  for (int i = 0; i < 100; ++i) {
    const std::string key = "k" + std::to_string(i % 25);
    ASSERT_TRUE(d->put(key, "v" + std::to_string(i), uint64_t(i + 1)).ok());
  }
  ASSERT_TRUE(d->del("k3", 101).ok());
  ASSERT_TRUE(d->crash_restart().ok());

  EXPECT_EQ(d->size(), 24u);
  auto hit = d->get("k24");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().value, "v99");
  EXPECT_EQ(hit.value().seq, 100u);
  EXPECT_FALSE(d->get("k3").ok());
  EXPECT_GE(d->durable_seq(), 101u);
}

TEST_P(DurableRecoveryTest, RepeatedCrashCyclesStayConsistent) {
  auto env = std::make_shared<MemEnv>();
  auto d = make_datalet(GetParam(), durable_cfg(env, "/node"));
  uint64_t seq = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 40; ++i) {
      const std::string key = "c" + std::to_string(i % 10);
      ASSERT_TRUE(d->put(key, "cyc" + std::to_string(cycle), ++seq).ok());
    }
    ASSERT_TRUE(d->crash_restart().ok()) << "cycle " << cycle;
    auto hit = d->get("c9");
    ASSERT_TRUE(hit.ok()) << "cycle " << cycle;
    EXPECT_EQ(hit.value().value, "cyc" + std::to_string(cycle));
  }
  EXPECT_EQ(d->size(), 10u);
}

TEST_P(DurableRecoveryTest, CheckpointPlusWalSuffixCompose) {
  auto env = std::make_shared<MemEnv>();
  DataletConfig cfg = durable_cfg(env, "/node");
  // Tiny threshold: auto-checkpoint after every few appends, so recovery
  // must merge a checkpoint image with a WAL suffix, not just replay a log.
  cfg.checkpoint_bytes = 256;
  auto d = make_datalet(GetParam(), cfg);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        d->put("k" + std::to_string(i), std::string(20, 'x'), i + 1).ok());
  }
  ASSERT_TRUE(d->crash_restart().ok());
  EXPECT_EQ(d->size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(d->get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST_P(DurableRecoveryTest, TokenPinsComeBackAfterCrash) {
  auto env = std::make_shared<MemEnv>();
  auto d = make_datalet(GetParam(), durable_cfg(env, "/node"));
  d->set_op_token(501);
  ASSERT_TRUE(d->put("a", "1", 10).ok());
  d->set_op_token(502);
  ASSERT_TRUE(d->del("a", 11).ok());
  ASSERT_TRUE(d->put("b", "2", 12).ok());  // no token: not pinned
  ASSERT_TRUE(d->crash_restart().ok());

  auto pins = d->token_pins();
  ASSERT_EQ(pins.size(), 2u);
  EXPECT_EQ(pins[0].token, 501u);
  EXPECT_EQ(pins[0].seq, 10u);
  EXPECT_EQ(pins[1].token, 502u);
  EXPECT_EQ(pins[1].seq, 11u);
}

TEST_P(DurableRecoveryTest, WalDisableLosesEverythingOnCrash) {
  auto env = std::make_shared<MemEnv>();
  DataletConfig cfg = durable_cfg(env, "/node");
  cfg.wal_disable = true;
  auto d = make_datalet(GetParam(), cfg);
  EXPECT_FALSE(d->durable());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(d->put("k" + std::to_string(i), "v", i + 1).ok());
  }
  ASSERT_TRUE(d->crash_restart().ok());
  EXPECT_EQ(d->size(), 0u);  // the provable loss the negative gate relies on
  EXPECT_FALSE(d->get("k0").ok());
}

TEST_P(DurableRecoveryTest, TornTailsAreDeterministicPerSeed) {
  auto run = [&](uint64_t seed) {
    auto env = std::make_shared<MemEnv>();
    DataletConfig cfg = durable_cfg(env, "/node");
    cfg.crash_seed = seed;
    auto d = make_datalet(GetParam(), cfg);
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(d->put("k" + std::to_string(i), "v", i + 1).ok());
    }
    EXPECT_TRUE(d->crash_restart().ok());
    std::vector<std::string> keys;
    d->for_each([&](std::string_view k, const Entry&) {
      keys.emplace_back(k);
    });
    return keys;
  };
  EXPECT_EQ(run(7), run(7));
  // fsync=always means every acked write survives regardless of seed.
  EXPECT_EQ(run(8).size(), 30u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, DurableRecoveryTest,
                         ::testing::ValuesIn(kKinds));

// ---------------------------- tLSM disk mode --------------------------------

TEST(LsmDiskRecovery, SurvivesCrashAcrossFlushedRunsAndWalTail) {
  auto env = std::make_shared<MemEnv>();
  DataletConfig cfg;
  cfg.dir = "/lsm";
  cfg.durable_dir = "/lsm";
  cfg.env = env;
  cfg.memtable_limit = 16;  // force several flushes + compactions
  cfg.max_runs_per_level = 2;
  auto d = make_datalet("tLSM", cfg);
  for (int i = 0; i < 200; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i % 50);
    ASSERT_TRUE(d->put(key, "v" + std::to_string(i), i + 1).ok());
  }
  ASSERT_TRUE(d->del("k0007", 201).ok());
  ASSERT_TRUE(d->crash_restart().ok());

  EXPECT_EQ(d->size(), 49u);
  auto hit = d->get("k0049");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().value, "v199");
  EXPECT_FALSE(d->get("k0007").ok());

  // Ordered iteration across recovered runs + replayed memtable.
  auto scanned = d->scan("k0000", "", 1000);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned.value().size(), 49u);
  for (size_t i = 1; i < scanned.value().size(); ++i) {
    EXPECT_LT(scanned.value()[i - 1].key, scanned.value()[i].key);
  }
}

TEST(LsmDiskRecovery, OrphanRunsFromUnpublishedFlushesAreSwept) {
  auto env = std::make_shared<MemEnv>();
  DataletConfig cfg;
  cfg.dir = "/lsm";
  cfg.durable_dir = "/lsm";
  cfg.env = env;
  cfg.memtable_limit = 8;
  auto d = make_datalet("tLSM", cfg);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(d->put("k" + std::to_string(i), "v", i + 1).ok());
  }
  // Drop an orphan: a run file no manifest names (as if power died between
  // writing the table and publishing the manifest that references it).
  ASSERT_TRUE(
      env->write_file_durable("/lsm/sst-99999-orphan.tbl", "not a table").ok());
  ASSERT_TRUE(env->write_file_durable("/lsm/sst-5.tbl.tmp", "half").ok());
  ASSERT_TRUE(d->crash_restart().ok());
  EXPECT_EQ(d->size(), 40u);
  EXPECT_FALSE(env->exists("/lsm/sst-99999-orphan.tbl"));
  EXPECT_FALSE(env->exists("/lsm/sst-5.tbl.tmp"));
}

TEST(LsmDiskRecovery, MemoryModeCrashRestartIsAProcessRestart) {
  // Without a durable_dir the engine is volatile: crash_restart is the
  // documented no-op (process restart, not power cut) and keeps state.
  DataletConfig cfg;
  cfg.memtable_limit = 16;
  auto d = make_datalet("tLSM", cfg);
  ASSERT_TRUE(d->put("a", "1", 1).ok());
  EXPECT_FALSE(d->durable());
  ASSERT_TRUE(d->crash_restart().ok());
  EXPECT_TRUE(d->get("a").ok());
}

// ------------------------- DurableDatalet specifics -------------------------

TEST(DurableDatalet, ManualCheckpointTruncatesWal) {
  auto env = std::make_shared<MemEnv>();
  storage::DurabilityOpts opts;
  opts.env = env;
  opts.dir = "/n";
  opts.checkpoint_bytes = 0;  // manual only
  auto dd = std::make_unique<storage::DurableDatalet>(make_datalet("tHT"),
                                                      opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(dd->put("k" + std::to_string(i), "v", i + 1).ok());
  }
  EXPECT_GT(dd->wal_bytes(), 0u);
  ASSERT_TRUE(dd->checkpoint().ok());
  EXPECT_EQ(dd->wal_bytes(), 0u);
  ASSERT_TRUE(dd->crash_restart().ok());
  EXPECT_EQ(dd->size(), 10u);
  EXPECT_GE(dd->last_recovery().checkpoint_entries, 10u);
  EXPECT_TRUE(dd->last_recovery().had_checkpoint);
}

TEST(DurableDatalet, PutIfNewerRespectsLwwThroughRecovery) {
  auto env = std::make_shared<MemEnv>();
  storage::DurabilityOpts opts;
  opts.env = env;
  opts.dir = "/n";
  auto dd = std::make_unique<storage::DurableDatalet>(make_datalet("tHT"),
                                                      opts);
  ASSERT_TRUE(dd->put_if_newer("k", "new", 9).ok());
  ASSERT_TRUE(dd->put_if_newer("k", "old", 4).ok());  // LWW: no effect
  ASSERT_TRUE(dd->crash_restart().ok());
  auto hit = dd->get("k");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.value().value, "new");
  EXPECT_EQ(hit.value().seq, 9u);
}

TEST(DurableDatalet, FreshDirRecoversToEmpty) {
  auto env = std::make_shared<MemEnv>();
  storage::DurabilityOpts opts;
  opts.env = env;
  opts.dir = "/fresh";
  storage::DurableDatalet dd(make_datalet("tHT"), opts);
  EXPECT_EQ(dd.size(), 0u);
  EXPECT_EQ(dd.durable_seq(), 0u);
  EXPECT_FALSE(dd.last_recovery().had_checkpoint);
}

}  // namespace
}  // namespace bespokv
