// Unit tests for the durable-storage subsystem (src/storage): WAL framing and
// torn-tail recovery, the group-commit fsync policies, the MemEnv power-loss
// model (synced-prefix survival, torn tails, garbage confined to log files),
// SSTable write/read/corruption behavior, and the checkpoint codec.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/storage/checkpoint.h"
#include "src/storage/durable.h"
#include "src/storage/env.h"
#include "src/storage/sstable.h"
#include "src/storage/wal.h"

namespace bespokv::storage {
namespace {

// ------------------------------- WAL framing --------------------------------

TEST(WalFraming, FramesRoundTripThroughScan) {
  std::string buf;
  append_frame(buf, 1, 10, "alpha");
  append_frame(buf, 2, 11, "");
  append_frame(buf, 1, 12, std::string(300, 'x'));

  std::vector<FrameView> seen;
  const size_t valid = scan_frames(buf, [&](const FrameView& f) {
    seen.push_back(f);
  });
  EXPECT_EQ(valid, buf.size());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].type, 1);
  EXPECT_EQ(seen[0].seq, 10u);
  EXPECT_EQ(seen[0].payload, "alpha");
  EXPECT_EQ(seen[1].payload, "");
  EXPECT_EQ(seen[2].payload.size(), 300u);
}

TEST(WalFraming, TornTailIsCutAtLastValidFrame) {
  std::string buf;
  append_frame(buf, 1, 1, "first");
  append_frame(buf, 1, 2, "second");
  const size_t intact = buf.size();
  append_frame(buf, 1, 3, "third");
  buf.resize(buf.size() - 3);  // the crash ate the frame's tail

  int count = 0;
  const size_t valid = scan_frames(buf, [&](const FrameView&) { ++count; });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(valid, intact);
}

TEST(WalFraming, CorruptedCrcStopsTheScanAtThePriorFrame) {
  std::string buf;
  append_frame(buf, 1, 1, "keep");
  const size_t intact = buf.size();
  append_frame(buf, 1, 2, "flip-a-bit");
  buf[intact + kFrameHeaderBytes + 3] ^= 0x40;  // corrupt the body

  int count = 0;
  const size_t valid = scan_frames(buf, [&](const FrameView&) { ++count; });
  EXPECT_EQ(count, 1);
  EXPECT_EQ(valid, intact);
}

TEST(WalFraming, GarbageAppendedPastTheTailIsIgnored) {
  std::string buf;
  append_frame(buf, 1, 1, "real");
  const size_t intact = buf.size();
  buf += "\xde\xad\xbe\xef garbage bytes from the torn sector";
  int count = 0;
  EXPECT_EQ(scan_frames(buf, [&](const FrameView&) { ++count; }), intact);
  EXPECT_EQ(count, 1);
}

// ------------------------------- Wal object ---------------------------------

TEST(Wal, AppendReplayRoundTrip) {
  auto env = std::make_shared<MemEnv>();
  WalOpts w;
  w.policy = FsyncPolicy::kAlways;
  {
    Wal wal(env, "/d/wal.log", w);
    ASSERT_TRUE(wal.replay_and_open([](const FrameView&) {}).ok());
    ASSERT_TRUE(wal.append(1, 5, "one").ok());
    ASSERT_TRUE(wal.append(2, 6, "two").ok());
  }
  Wal again(env, "/d/wal.log", w);
  std::vector<uint64_t> seqs;
  ASSERT_TRUE(again
                  .replay_and_open([&](const FrameView& f) {
                    seqs.push_back(f.seq);
                  })
                  .ok());
  EXPECT_EQ(seqs, (std::vector<uint64_t>{5, 6}));
}

TEST(Wal, ResetTruncatesAndAbsorbsOldLsns) {
  auto env = std::make_shared<MemEnv>();
  WalOpts w;
  w.policy = FsyncPolicy::kAlways;
  Wal wal(env, "/d/wal.log", w);
  ASSERT_TRUE(wal.replay_and_open([](const FrameView&) {}).ok());
  auto lsn = wal.append(1, 1, "pre-checkpoint");
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(wal.reset().ok());
  EXPECT_EQ(wal.size_bytes(), 0u);
  // The record's effects now live in a checkpoint; waiting on its LSN must
  // report durable rather than blocking forever.
  EXPECT_TRUE(wal.wait_durable(lsn.value()).ok());
}

TEST(Wal, GroupCommitBatchesSyncs) {
  auto env = std::make_shared<MemEnv>();
  WalOpts w;
  w.policy = FsyncPolicy::kGroupCommit;
  w.group_batch = 4;
  w.blocking = false;  // sim-style: sync every group_batch appends
  Wal wal(env, "/d/wal.log", w);
  ASSERT_TRUE(wal.replay_and_open([](const FrameView&) {}).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(wal.append(1, uint64_t(i), "payload").ok());
  }
  const WalStats st = wal.stats();
  EXPECT_EQ(st.appends, 16u);
  EXPECT_LE(st.syncs, 4u);  // one fdatasync per batch, not per append
  EXPECT_GE(st.syncs, 1u);
}

TEST(Wal, OsPolicyNeverSyncs) {
  auto env = std::make_shared<MemEnv>();
  WalOpts w;
  w.policy = FsyncPolicy::kOs;
  Wal wal(env, "/d/wal.log", w);
  ASSERT_TRUE(wal.replay_and_open([](const FrameView&) {}).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wal.append(1, uint64_t(i), "p").ok());
  }
  EXPECT_EQ(wal.stats().syncs, 0u);
}

TEST(FsyncPolicyNames, ParseAndPrintRoundTrip) {
  for (const char* name : {"always", "groupcommit", "os"}) {
    auto p = parse_fsync_policy(name);
    ASSERT_TRUE(p.ok()) << name;
    EXPECT_STREQ(fsync_policy_name(p.value()), name);
  }
  EXPECT_FALSE(parse_fsync_policy("lazy").ok());
}

// --------------------------- MemEnv power loss ------------------------------

TEST(MemEnvCrash, SyncedPrefixSurvivesUnsyncedTailMayNot) {
  MemEnv env;
  ASSERT_TRUE(env.mkdirs("/n").ok());
  auto f = env.open_append("/n/wal.log");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(f.value()->append("synced-part").ok());
  ASSERT_TRUE(f.value()->sync().ok());
  ASSERT_TRUE(f.value()->append("unsynced-tail").ok());

  CrashOpts c;
  c.torn_writes = true;
  env.crash("/n", /*seed=*/7, c);

  auto data = env.read_file("/n/wal.log");
  ASSERT_TRUE(data.ok());
  // The synced prefix is intact; at most a prefix of the unsynced tail (plus
  // possibly garbage, which only ever lands on *.log files) follows it.
  ASSERT_GE(data.value().size(), std::string("synced-part").size());
  EXPECT_EQ(data.value().substr(0, 11), "synced-part");
}

TEST(MemEnvCrash, NonLogFilesNeverGetGarbage) {
  // Footer-at-end formats (SSTables, checkpoints) are written with
  // write_file_durable and must come back byte-identical or not at all.
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    MemEnv env;
    ASSERT_TRUE(env.mkdirs("/n").ok());
    ASSERT_TRUE(env.write_file_durable("/n/sst-1.tbl", "immutable-bytes").ok());
    env.crash("/n", seed, CrashOpts{});
    auto data = env.read_file("/n/sst-1.tbl");
    ASSERT_TRUE(data.ok()) << seed;
    EXPECT_EQ(data.value(), "immutable-bytes") << seed;
  }
}

TEST(MemEnvCrash, DeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    MemEnv env;
    env.mkdirs("/n");
    auto f = env.open_append("/n/wal.log");
    f.value()->append("AAAA");
    f.value()->sync();
    f.value()->append("BBBBBBBBBBBB");
    env.crash("/n", seed, CrashOpts{});
    return env.read_file("/n/wal.log").value();
  };
  EXPECT_EQ(run(11), run(11));
  // Different seeds usually differ (torn length / garbage draw); allow
  // equality but require the synced prefix everywhere.
  EXPECT_EQ(run(12).substr(0, 4), "AAAA");
}

TEST(MemEnvFiles, RenameIsAtomicAndDurable) {
  MemEnv env;
  ASSERT_TRUE(env.mkdirs("/n").ok());
  ASSERT_TRUE(env.write_file_durable("/n/CHECKPOINT.tmp", "v2").ok());
  ASSERT_TRUE(env.rename_file("/n/CHECKPOINT.tmp", "/n/CHECKPOINT").ok());
  env.crash("/n", 3, CrashOpts{});
  auto data = env.read_file("/n/CHECKPOINT");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "v2");
  EXPECT_FALSE(env.exists("/n/CHECKPOINT.tmp"));
}

// -------------------------------- SSTable -----------------------------------

TEST(SSTable, WriteReadRoundTripWithTombstones) {
  auto env = std::make_shared<MemEnv>();
  ASSERT_TRUE(env->mkdirs("/t").ok());
  SSTableWriter w(env, "/t/sst-1.tbl");
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%05d", i);
    ASSERT_TRUE(
        w.add(key, "v" + std::to_string(i), uint64_t(i + 1), i % 7 == 0).ok());
  }
  ASSERT_TRUE(w.finish().ok());

  auto t = SSTableReader::open(env, "/t/sst-1.tbl");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->count(), 500u);
  EXPECT_EQ(t.value()->min_key(), "k00000");
  EXPECT_EQ(t.value()->max_key(), "k00499");

  auto hit = t.value()->find("k00123");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, "v123");
  EXPECT_EQ(hit->seq, 124u);
  EXPECT_FALSE(hit->tombstone);
  auto tomb = t.value()->find("k00007");
  ASSERT_TRUE(tomb.has_value());
  EXPECT_TRUE(tomb->tombstone);
  EXPECT_FALSE(t.value()->find("k99999").has_value());
}

TEST(SSTable, BloomFilterHasNoFalseNegatives) {
  auto env = std::make_shared<MemEnv>();
  ASSERT_TRUE(env->mkdirs("/t").ok());
  SSTableWriter w(env, "/t/sst-2.tbl");
  for (int i = 0; i < 300; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "m%05d", i);
    ASSERT_TRUE(w.add(key, "v", 1, false).ok());
  }
  ASSERT_TRUE(w.finish().ok());
  auto t = SSTableReader::open(env, "/t/sst-2.tbl");
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 300; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "m%05d", i);
    EXPECT_TRUE(t.value()->may_contain(key)) << key;
  }
}

TEST(SSTable, RejectsOutOfOrderKeysAndCorruptFiles) {
  auto env = std::make_shared<MemEnv>();
  ASSERT_TRUE(env->mkdirs("/t").ok());
  SSTableWriter w(env, "/t/sst-3.tbl");
  ASSERT_TRUE(w.add("bbb", "v", 1, false).ok());
  EXPECT_FALSE(w.add("aaa", "v", 2, false).ok());  // not ascending
  EXPECT_FALSE(w.add("bbb", "v", 3, false).ok());  // not strictly ascending
  ASSERT_TRUE(w.finish().ok());

  // Truncation (lost footer) and bit flips must both fail open(), not crash.
  auto bytes = env->read_file("/t/sst-3.tbl").value();
  env->write_file_durable("/t/short.tbl", bytes.substr(0, bytes.size() - 9));
  EXPECT_FALSE(SSTableReader::open(env, "/t/short.tbl").ok());
  bytes[bytes.size() / 2] ^= 0x01;
  env->write_file_durable("/t/flipped.tbl", bytes);
  EXPECT_FALSE(SSTableReader::open(env, "/t/flipped.tbl").ok());
  EXPECT_FALSE(SSTableReader::open(env, "/t/missing.tbl").ok());
}

// ------------------------------- checkpoint ---------------------------------

TEST(Checkpoint, RoundTripsEntriesAndPins) {
  MemEnv env;
  ASSERT_TRUE(env.mkdirs("/c").ok());
  CheckpointData data;
  data.durable_seq = 42;
  data.entries.push_back(CheckpointEntry{"alpha", "1", 40});
  data.entries.push_back(CheckpointEntry{"beta", std::string(1000, 'b'), 42});
  data.pins.push_back(TokenPin{777, 42, uint8_t(Code::kOk)});
  ASSERT_TRUE(write_checkpoint(env, "/c/CHECKPOINT", data).ok());

  auto back = read_checkpoint(env, "/c/CHECKPOINT");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().durable_seq, 42u);
  ASSERT_EQ(back.value().entries.size(), 2u);
  EXPECT_EQ(back.value().entries[1].value.size(), 1000u);
  ASSERT_EQ(back.value().pins.size(), 1u);
  EXPECT_EQ(back.value().pins[0].token, 777u);
}

TEST(Checkpoint, DetectsTruncationAndCorruption) {
  MemEnv env;
  ASSERT_TRUE(env.mkdirs("/c").ok());
  CheckpointData data;
  data.durable_seq = 7;
  data.entries.push_back(CheckpointEntry{"k", "v", 7});
  ASSERT_TRUE(write_checkpoint(env, "/c/CHECKPOINT", data).ok());
  auto bytes = env.read_file("/c/CHECKPOINT").value();

  env.write_file_durable("/c/short", bytes.substr(0, bytes.size() - 2));
  EXPECT_EQ(read_checkpoint(env, "/c/short").status().code(),
            Code::kCorruption);
  std::string flipped = bytes;
  flipped[8] ^= 0x10;
  env.write_file_durable("/c/flipped", flipped);
  EXPECT_EQ(read_checkpoint(env, "/c/flipped").status().code(),
            Code::kCorruption);
  // Trailing garbage past the CRC'd image is ignored (crash semantics never
  // append to non-log files, but be liberal in what we accept).
  env.write_file_durable("/c/padded", bytes + "JUNK");
  EXPECT_TRUE(read_checkpoint(env, "/c/padded").ok());
}

// ------------------------------ kv records ----------------------------------

TEST(KvRecords, EncodeDecodeRoundTrip) {
  std::string payload;
  const std::string key("key\0with\0nuls", 13);  // binary-safe
  encode_kv_record(payload, 9001, key, "value");
  auto rec = decode_kv_record(payload);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().token, 9001u);
  EXPECT_EQ(rec.value().key, key);
  EXPECT_EQ(rec.value().value, "value");
  EXPECT_FALSE(decode_kv_record(payload.substr(0, 5)).ok());
}

}  // namespace
}  // namespace bespokv::storage
