// Unit tests for the observability subsystem (src/obs): metrics registry,
// snapshot merge/serialization, the span tracer, and the periodic exporter
// running on a simulated node.
#include <gtest/gtest.h>

#include <set>

#include "src/net/sim_fabric.h"
#include "src/obs/admin.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace bespokv {
namespace {

TEST(MetricsRegistryTest, HandlesAreStableAndAccumulate) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("ops");
  c.inc();
  c.inc(41);
  EXPECT_EQ(&reg.counter("ops"), &c);  // same handle on re-lookup
  EXPECT_EQ(reg.counter("ops").value(), 42u);

  obs::Gauge& g = reg.gauge("depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(reg.gauge("depth").value(), 7);

  Histogram& t = reg.timer("lat_us");
  t.record(100);
  t.record(200);
  EXPECT_EQ(reg.timer("lat_us").count(), 2u);
}

TEST(MetricsRegistryTest, SnapshotIsPointInTime) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc(5);
  obs::MetricsSnapshot snap = reg.snapshot();
  reg.counter("a").inc(5);
  EXPECT_EQ(snap.counter("a"), 5u);
  EXPECT_EQ(reg.snapshot().counter("a"), 10u);
  EXPECT_EQ(snap.counter("missing", 99), 99u);
}

TEST(MetricsSnapshotTest, MergeAddsScalarsAndBuckets) {
  obs::MetricsRegistry r1, r2;
  r1.counter("x").inc(3);
  r2.counter("x").inc(4);
  r2.counter("only2").inc(1);
  r1.gauge("g").set(-5);
  r2.gauge("g").set(2);
  r1.timer("t").record(10);
  r2.timer("t").record(1000);

  obs::MetricsSnapshot merged = r1.snapshot();
  merged.merge(r2.snapshot());
  EXPECT_EQ(merged.counter("x"), 7u);
  EXPECT_EQ(merged.counter("only2"), 1u);
  EXPECT_EQ(merged.gauge("g"), -3);
  EXPECT_EQ(merged.timers.at("t").count(), 2u);
  EXPECT_EQ(merged.timers.at("t").min(), 10u);
  EXPECT_EQ(merged.timers.at("t").max(), 1000u);
}

TEST(MetricsSnapshotTest, JsonRoundTripIsBucketExact) {
  obs::MetricsRegistry reg;
  reg.counter("net.msgs_sent").inc(123456789);
  reg.gauge("queue.depth").set(-17);
  for (uint64_t v = 1; v <= 500; ++v) reg.timer("lat").record(v * 3);
  const obs::MetricsSnapshot snap = reg.snapshot();

  auto back = obs::MetricsSnapshot::from_json(snap.to_json());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value().counters, snap.counters);
  EXPECT_EQ(back.value().gauges, snap.gauges);
  ASSERT_EQ(back.value().timers.size(), 1u);
  // Bucket-exact: the decoded histogram is indistinguishable from the
  // original, percentiles included.
  EXPECT_TRUE(back.value().timers.at("lat") == snap.timers.at("lat"));
}

TEST(MetricsSnapshotTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(obs::MetricsSnapshot::from_json("not json").ok());
  EXPECT_FALSE(obs::MetricsSnapshot::from_json("[1,2,3]").ok());
  EXPECT_FALSE(obs::MetricsSnapshot::from_json(
                   R"({"timers":{"t":{"buckets":"bogus"}}})")
                   .ok());
}

TEST(MetricsSnapshotTest, CsvHasOneRowPerScalar) {
  obs::MetricsRegistry reg;
  reg.counter("c1").inc();
  reg.gauge("g1").set(2);
  reg.timer("t1").record(50);
  const std::string csv = reg.snapshot().to_csv();
  EXPECT_NE(csv.find("kind,name,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,c1,1"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g1,2"), std::string::npos);
  EXPECT_NE(csv.find("timer,t1.count,1"), std::string::npos);
  EXPECT_NE(csv.find("timer,t1.p99,"), std::string::npos);
}

TEST(SpanTest, EncodeDecodeRoundTrips) {
  obs::Span s;
  s.trace_id = 0xdeadbeef12345678ULL;
  s.span_id = 42;
  s.parent_span_id = 7;
  s.name = "chain.forward";
  s.node = "10.1.2.3:9999";
  s.start_us = 1'000'000;
  s.end_us = 1'000'250;
  s.hop = 3;
  obs::Span back;
  ASSERT_TRUE(obs::Span::decode(s.encode(), &back));
  EXPECT_EQ(back.trace_id, s.trace_id);
  EXPECT_EQ(back.span_id, s.span_id);
  EXPECT_EQ(back.parent_span_id, s.parent_span_id);
  EXPECT_EQ(back.name, s.name);
  EXPECT_EQ(back.node, s.node);
  EXPECT_EQ(back.start_us, s.start_us);
  EXPECT_EQ(back.end_us, s.end_us);
  EXPECT_EQ(back.hop, s.hop);

  obs::Span junk;
  EXPECT_FALSE(obs::Span::decode("", &junk));
  EXPECT_FALSE(obs::Span::decode("1 2 3", &junk));
}

TEST(TracerTest, IdsAreNonZeroUniqueAndNodeSalted) {
  obs::Tracer a("node-a"), b("node-b");
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t ta = a.new_trace_id();
    const uint64_t tb = b.new_trace_id();
    ASSERT_NE(ta, 0u);
    ASSERT_NE(tb, 0u);
    ids.insert(ta);
    ids.insert(tb);
  }
  // Two nodes generating in lockstep must never collide.
  EXPECT_EQ(ids.size(), 2000u);
}

TEST(TracerTest, RingCapsAndCountsDrops) {
  obs::Tracer t("n");
  t.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    obs::Span s;
    s.trace_id = 1;
    s.span_id = static_cast<uint64_t>(i + 1);
    t.record(s);
  }
  EXPECT_EQ(t.spans().size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  // The ring keeps the newest spans.
  EXPECT_EQ(t.spans().back().span_id, 10u);

  t.clear();
  EXPECT_TRUE(t.spans().empty());
}

TEST(TracerTest, SpansFilterByTraceId) {
  obs::Tracer t("n");
  for (uint64_t trace = 1; trace <= 3; ++trace) {
    for (uint64_t i = 0; i < trace; ++i) {
      obs::Span s;
      s.trace_id = trace;
      s.span_id = t.new_span_id();
      t.record(s);
    }
  }
  EXPECT_EQ(t.spans().size(), 6u);
  EXPECT_EQ(t.spans(2).size(), 2u);
  EXPECT_EQ(t.spans(99).size(), 0u);
}

TEST(TracingSwitchTest, DefaultsOffAndToggles) {
  EXPECT_FALSE(obs::tracing_enabled());
  obs::set_tracing(true);
  EXPECT_TRUE(obs::tracing_enabled());
  obs::set_tracing(false);
  EXPECT_FALSE(obs::tracing_enabled());
}

TEST(StatsExporterTest, PeriodicallySnapshotsUnderVirtualTime) {
  SimFabric sim;
  Runtime* rt = sim.add_node(
      "n1", std::make_shared<LambdaService>(
                [](Runtime&, const Addr&, Message, Replier reply) {
                  reply(Message::reply(Code::kOk));
                }));
  rt->obs().metrics().counter("work").inc(7);

  std::vector<obs::MetricsSnapshot> seen;
  obs::StatsExporter exporter;
  rt->post([&] {
    exporter.start(*rt, 10'000, [&seen](const obs::MetricsSnapshot& s) {
      seen.push_back(s);
    });
  });
  sim.run_for(55'000);
  ASSERT_GE(seen.size(), 4u);
  EXPECT_EQ(seen.front().counter("work"), 7u);

  exporter.stop();
  const size_t after_stop = seen.size();
  sim.run_for(50'000);
  EXPECT_EQ(seen.size(), after_stop);
}

}  // namespace
}  // namespace bespokv
