// Single-register linearizability checking for the property tests, now a
// thin adapter over the scalable verification checker (src/verify): per-key
// Wing & Gong / WGL search with memoization and an explicit stack. The old
// inline DFS capped histories at 24 ops (and returned *false* beyond the
// cap); the real checker has no such limit — histories with hundreds of ops
// per key stay tractable because branching only happens inside genuine
// concurrency windows.
//
// Each operation carries real (virtual) invocation/response timestamps. The
// checker searches for a total order that (a) respects real-time precedence
// and (b) is legal for a read/write register.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/verify/checker.h"

namespace bespokv::testing {

struct HistOp {
  bool is_write = false;
  std::string value;   // written value, or value observed by the read
  uint64_t inv = 0;    // invocation timestamp
  uint64_t res = 0;    // response timestamp
};

inline bool linearizable(const std::vector<HistOp>& ops,
                         const std::string& initial = "") {
  std::vector<verify::KeyEvent> events;
  events.reserve(ops.size());
  for (const HistOp& op : ops) {
    verify::KeyEvent e;
    e.is_write = op.is_write;
    e.found = true;  // this legacy model has no "absent": initial is a value
    e.value = op.value;
    e.inv = op.inv;
    e.res = op.res;
    events.push_back(std::move(e));
  }
  const std::vector<verify::InitialState> initials = {
      verify::InitialState{true, initial}};
  return verify::check_key_linearizable("the-key", events, initials).ok();
}

}  // namespace bespokv::testing
