// A Wing & Gong style linearizability checker for single-register histories,
// used by the property tests to validate the SC configurations (MS+SC chain
// replication, AA+SC locking) and to demonstrate that EC configurations
// admit non-linearizable histories.
//
// Each operation carries real (virtual) invocation/response timestamps. The
// checker searches for a total order that (a) respects real-time precedence
// and (b) is legal for a read/write register. DFS with memoization on
// (taken-set, last-write) keeps small histories (<= ~20 ops) fast.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace bespokv::testing {

struct HistOp {
  bool is_write = false;
  std::string value;   // written value, or value observed by the read
  uint64_t inv = 0;    // invocation timestamp
  uint64_t res = 0;    // response timestamp
};

inline bool linearizable(const std::vector<HistOp>& ops,
                         const std::string& initial = "") {
  const size_t n = ops.size();
  if (n == 0) return true;
  if (n > 24) return false;  // guard: histories this large need a better tool

  std::set<std::pair<uint32_t, int>> visited;  // (taken mask, last write idx)

  // Recursive lambda via explicit stack-free DFS.
  std::function<bool(uint32_t, int)> dfs = [&](uint32_t taken,
                                               int last_write) -> bool {
    if (taken == (1u << n) - 1) return true;
    if (!visited.insert({taken, last_write}).second) return false;

    // Real-time constraint: the next linearized op must be invoked before
    // every untaken op has responded (i.e. it cannot jump over an op that
    // strictly precedes it in real time).
    uint64_t min_res = UINT64_MAX;
    for (size_t i = 0; i < n; ++i) {
      if (!(taken & (1u << i))) min_res = std::min(min_res, ops[i].res);
    }
    const std::string& state =
        last_write < 0 ? initial : ops[static_cast<size_t>(last_write)].value;
    for (size_t i = 0; i < n; ++i) {
      if (taken & (1u << i)) continue;
      if (ops[i].inv > min_res) continue;  // would violate real-time order
      if (ops[i].is_write) {
        if (dfs(taken | (1u << i), static_cast<int>(i))) return true;
      } else {
        if (ops[i].value != state) continue;  // illegal read in this order
        if (dfs(taken | (1u << i), last_write)) return true;
      }
    }
    return false;
  };
  return dfs(0, -1);
}

}  // namespace bespokv::testing
