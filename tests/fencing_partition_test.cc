// Epoch fencing at the state-mutating sinks (ISSUE 5): after a failover the
// coordinator ratchets a per-shard epoch floor into the DLM and the shared
// log, and chain replicas reject chain writes minted under an older map —
// so a deposed master's writes die at the sink on every fabric, not just in
// the simulator. Also covers the global fencing kill-switch used by the
// negative split-brain acceptance test.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/cluster/cluster.h"
#include "src/common/fencing.h"
#include "src/dlm/dlm.h"
#include "src/net/sim_fabric.h"
#include "src/net/tcp_fabric.h"
#include "src/net/thread_fabric.h"
#include "src/sharedlog/sharedlog.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using CallFn = std::function<Result<Message>(const Addr&, Message)>;

Message fence_push(uint32_t shard, uint64_t epoch) {
  Message m;
  m.op = Op::kReconfigure;
  m.shard = shard;
  m.epoch = epoch;
  return m;
}

Message lock_req(const std::string& key, uint64_t epoch, uint32_t shard) {
  Message m;
  m.op = Op::kLock;
  m.key = key;
  m.flags = kFlagWriteLock;
  m.epoch = epoch;
  m.shard = shard;
  return m;
}

Message append_req(const std::string& key, uint64_t epoch, uint32_t shard) {
  Message m;
  m.op = Op::kLogAppend;
  m.key = key;
  m.value = "v";
  m.epoch = epoch;
  m.shard = shard;
  return m;
}

// The shared probe sequence: ratchet the shard-0 floor to 5, then check that
// a stale-epoch acquire/append is rejected with kConflict while current,
// future and legacy (epoch 0, pre-fencing sender) requests pass.
void probe_sink(const CallFn& call, const Addr& sink, bool dlm) {
  auto mk = [&](uint64_t epoch, const std::string& key) {
    return dlm ? lock_req(key, epoch, 0) : append_req(key, epoch, 0);
  };
  auto rep = call(sink, fence_push(0, 5));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  ASSERT_EQ(rep.value().code, Code::kOk);

  rep = call(sink, mk(4, "stale"));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kConflict) << "stale epoch admitted";

  rep = call(sink, mk(5, "current"));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kOk);

  rep = call(sink, mk(6, "future"));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kOk);

  rep = call(sink, mk(0, "legacy"));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kOk);

  // The floor only ratchets upward: a late, reordered push of an older epoch
  // must not reopen the fence.
  rep = call(sink, fence_push(0, 3));
  ASSERT_TRUE(rep.ok());
  rep = call(sink, mk(4, "still-stale"));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kConflict);

  // Other shards are unaffected.
  rep = call(sink, dlm ? lock_req("other", 1, 1) : append_req("other", 1, 1));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kOk);
}

// Pumps the simulator until a call issued from a client node completes.
struct SimCaller {
  SimFabric sim;
  Runtime* cli = nullptr;

  SimCaller() {
    SimNodeOpts copts;
    copts.is_client = true;
    cli = sim.add_node("cli",
                       std::make_shared<LambdaService>(
                           [](Runtime&, const Addr&, Message, Replier r) {
                             r(Message::reply(Code::kInvalid));
                           }),
                       copts);
  }

  Result<Message> call(const Addr& dst, Message req) {
    auto done = std::make_shared<bool>(false);
    auto res = std::make_shared<Result<Message>>(Status::Internal("pending"));
    sim.post_to("cli", [&, dst, req = std::move(req)]() mutable {
      cli->call(dst, std::move(req),
                [done, res](Status s, Message rep) {
                  *res = s.ok() ? Result<Message>(std::move(rep))
                                : Result<Message>(s);
                  *done = true;
                },
                2'000'000);
    });
    while (!*done && !sim.idle()) sim.run_for(1'000);
    return *res;
  }
};

TEST(EpochFence, DlmRejectsStaleAcquiresOnSim) {
  SimCaller f;
  auto dlm = std::make_shared<DlmService>();
  f.sim.add_node("dlm", dlm);
  probe_sink([&](const Addr& a, Message m) { return f.call(a, std::move(m)); },
             "dlm", /*dlm=*/true);
  EXPECT_EQ(dlm->fence_rejects(), 2u);
}

TEST(EpochFence, SharedLogRejectsStaleAppendsOnSim) {
  SimCaller f;
  auto log = std::make_shared<SharedLogService>();
  f.sim.add_node("log", log);
  probe_sink([&](const Addr& a, Message m) { return f.call(a, std::move(m)); },
             "log", /*dlm=*/false);
  EXPECT_EQ(log->fence_rejects(), 2u);
}

TEST(EpochFence, DlmAndLogRejectStaleEpochsOnThreadFabric) {
  ThreadFabric fab;
  auto dlm = std::make_shared<DlmService>();
  auto log = std::make_shared<SharedLogService>();
  fab.add_node("dlm", dlm);
  fab.add_node("log", log);
  CallFn call = [&](const Addr& a, Message m) {
    return fab.call_sync(a, std::move(m), 2'000'000);
  };
  probe_sink(call, "dlm", /*dlm=*/true);
  probe_sink(call, "log", /*dlm=*/false);
  EXPECT_EQ(dlm->fence_rejects(), 2u);
  EXPECT_EQ(log->fence_rejects(), 2u);
}

TEST(EpochFence, DlmAndLogRejectStaleEpochsOnTcpFabric) {
  TcpFabric fab;
  auto dlm = std::make_shared<DlmService>();
  auto log = std::make_shared<SharedLogService>();
  const Addr dlm_addr = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  const Addr log_addr = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  fab.add_node(dlm_addr, dlm);
  fab.add_node(log_addr, log);
  CallFn call = [&](const Addr& a, Message m) {
    return fab.call_sync(a, std::move(m), 2'000'000);
  };
  probe_sink(call, dlm_addr, /*dlm=*/true);
  probe_sink(call, log_addr, /*dlm=*/false);
  EXPECT_EQ(dlm->fence_rejects(), 2u);
  EXPECT_EQ(log->fence_rejects(), 2u);
}

// ----------------------- chain-write sink fencing ---------------------------

Message chain_put(const std::string& key, uint64_t seq, uint64_t epoch) {
  Message m;
  m.op = Op::kChainPut;
  m.key = key;
  m.value = "v" + std::to_string(seq);
  m.seq = seq;
  m.epoch = epoch;
  m.shard = 0;
  return m;
}

bool datalet_has(const std::shared_ptr<Datalet>& d, const std::string& key) {
  bool found = false;
  d->for_each([&](std::string_view k, const Entry&) { found |= k == key; });
  return found;
}

// Bumps replica 1's map epoch (as a failover push would), then replays a
// chain write minted under the old epoch: it must be rejected with kConflict
// and must never reach the datalet. A write under the new epoch still lands.
void probe_chain_sink(Cluster& cluster, const CallFn& call) {
  ShardMap map = cluster.coordinator_service()->shard_map();
  const uint64_t old_epoch = map.epoch;
  map.epoch = old_epoch + 1;
  Message reconf;
  reconf.op = Op::kReconfigure;
  reconf.shard = 0;
  reconf.value = map.encode();
  const Addr mid = cluster.controlet_addr(0, 1);
  auto rep = call(mid, std::move(reconf));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  ASSERT_EQ(rep.value().code, Code::kOk);

  rep = call(mid, chain_put("fence-stale", 100, old_epoch));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  EXPECT_EQ(rep.value().code, Code::kConflict)
      << "deposed head's chain write was admitted";
  EXPECT_FALSE(datalet_has(cluster.datalet(0, 1), "fence-stale"));

  rep = call(mid, chain_put("fence-current", 101, old_epoch + 1));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  EXPECT_EQ(rep.value().code, Code::kOk);
  EXPECT_TRUE(datalet_has(cluster.datalet(0, 1), "fence-current"));
}

ClusterOptions chain_cluster() {
  ClusterOptions o;
  o.topology = Topology::kMasterSlave;
  o.consistency = Consistency::kStrong;
  o.num_shards = 1;
  o.num_replicas = 3;
  return o;
}

TEST(EpochFence, ChainWriteFromDeposedHeadDiesAtReplicaOnSim) {
  testing::SimEnv env(chain_cluster());
  probe_chain_sink(env.cluster, [&](const Addr& a, Message m) {
    return env.call(a, std::move(m));
  });
}

TEST(EpochFence, ChainWriteFromDeposedHeadDiesAtReplicaOnThreadFabric) {
  ThreadFabric fab;
  Cluster cluster(fab, chain_cluster());
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  probe_chain_sink(cluster, [&](const Addr& a, Message m) {
    return fab.call_sync(a, std::move(m), 2'000'000);
  });
}

TEST(EpochFence, ChainWriteFromDeposedHeadDiesAtReplicaOnTcpFabric) {
  TcpFabric fab;
  Cluster cluster(fab, chain_cluster());
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  probe_chain_sink(cluster, [&](const Addr& a, Message m) {
    return fab.call_sync(a, std::move(m), 2'000'000);
  });
}

// --------------------------- fencing kill-switch ----------------------------

TEST(EpochFence, ScopedDisableAdmitsStaleEpochsThenRestores) {
  SimCaller f;
  auto dlm = std::make_shared<DlmService>();
  f.sim.add_node("dlm", dlm);
  auto rep = f.call("dlm", fence_push(0, 5));
  ASSERT_TRUE(rep.ok());
  {
    ScopedFencingDisable off;
    rep = f.call("dlm", lock_req("k", 4, 0));
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().code, Code::kOk) << "kill-switch did not disable";
  }
  rep = f.call("dlm", lock_req("k2", 4, 0));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kConflict) << "fencing did not restore";
}

}  // namespace
}  // namespace bespokv
