// Framing torture tests for the envelope wire format (src/net/envelope.h).
//
// The TCP fabric feeds decode_envelope from a streaming ByteBuffer, so the
// decoder must behave identically no matter where the kernel happens to split
// a read: mid-length-prefix, mid-payload, or exactly on a frame boundary.
// These tests replay a multi-envelope stream through every split position and
// through 1-byte feeds, and pin down the single-copy property of the in-place
// encoder that the fast path relies on.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "src/common/byte_buffer.h"
#include "src/net/envelope.h"
#include "src/proto/codec.h"
#include "src/proto/message.h"

namespace bespokv {
namespace {

std::vector<Envelope> sample_stream() {
  std::vector<Envelope> envs;
  Envelope a;
  a.rpc_id = 1;
  a.kind = EnvelopeKind::kRequest;
  a.from = "127.0.0.1:1111";
  a.msg = Message::get("alpha");
  envs.push_back(a);

  Envelope b;
  b.rpc_id = 0xdeadbeefcafeULL;  // multi-byte varint
  b.kind = EnvelopeKind::kResponse;
  b.from = "10.9.8.7:65535";
  b.msg = Message::reply(Code::kOk, std::string("\x00\xff\x7f nul+high bytes", 18));
  envs.push_back(b);

  Envelope c;
  c.rpc_id = 3;
  c.kind = EnvelopeKind::kOneWay;
  c.from = "";  // empty sender is legal on one-way traffic
  c.msg = Message::put("key-with-long-value", std::string(300, 'z'), "tbl");
  envs.push_back(c);

  Envelope d;  // traced: exercises the optional trace-context tail field
  d.rpc_id = 4;
  d.kind = EnvelopeKind::kRequest;
  d.from = "192.168.0.1:4242";
  d.msg = Message::get("traced-key");
  d.msg.trace.trace_id = 0x0123456789abcdefULL;
  d.msg.trace.span_id = 0x00ff00ff00ff00ffULL;
  d.msg.trace.hop = 7;
  envs.push_back(d);
  return envs;
}

std::string encode_stream(const std::vector<Envelope>& envs) {
  std::string wire;
  for (const auto& e : envs) encode_envelope(e, &wire);
  return wire;
}

void expect_equal(const Envelope& got, const Envelope& want) {
  EXPECT_EQ(got.rpc_id, want.rpc_id);
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.from, want.from);
  EXPECT_EQ(got.msg, want.msg);
  // Message::operator== deliberately ignores delivery metadata, so the tail
  // round-trip needs its own check.
  EXPECT_EQ(got.msg.trace, want.msg.trace);
}

// Drains every currently-complete frame from `buf`, exactly like the fabric's
// handle_readable decode loop.
std::vector<Envelope> drain(ByteBuffer& buf) {
  std::vector<Envelope> out;
  while (true) {
    Envelope env;
    size_t consumed = 0;
    Status s = decode_envelope(buf.readable(), &env, &consumed);
    EXPECT_TRUE(s.ok()) << s.to_string();
    if (!s.ok() || consumed == 0) return out;
    buf.consume(consumed);
    out.push_back(std::move(env));
  }
}

TEST(EnvelopeTortureTest, EverySplitPositionOfMultiFrameStream) {
  const auto envs = sample_stream();
  const std::string wire = encode_stream(envs);
  for (size_t split = 0; split <= wire.size(); ++split) {
    ByteBuffer buf;
    std::vector<Envelope> got;
    buf.append(std::string_view(wire).substr(0, split));
    for (auto& e : drain(buf)) got.push_back(std::move(e));
    buf.append(std::string_view(wire).substr(split));
    for (auto& e : drain(buf)) got.push_back(std::move(e));
    ASSERT_EQ(got.size(), envs.size()) << "split " << split;
    for (size_t i = 0; i < envs.size(); ++i) expect_equal(got[i], envs[i]);
    EXPECT_TRUE(buf.empty()) << "split " << split;
  }
}

TEST(EnvelopeTortureTest, OneByteFeeds) {
  const auto envs = sample_stream();
  const std::string wire = encode_stream(envs);
  ByteBuffer buf;
  std::vector<Envelope> got;
  for (char ch : wire) {
    buf.append(std::string_view(&ch, 1));
    for (auto& e : drain(buf)) got.push_back(std::move(e));
  }
  ASSERT_EQ(got.size(), envs.size());
  for (size_t i = 0; i < envs.size(); ++i) expect_equal(got[i], envs[i]);
  EXPECT_TRUE(buf.empty());
}

TEST(EnvelopeTortureTest, RejectsOversizedLengthPrefix) {
  // Length prefix far beyond the 64MB cap: must be corruption, not "wait for
  // 2GB of bytes".
  const std::string bad = std::string("\xff\xff\xff\x7f", 4) + "payload";
  Envelope env;
  size_t consumed = 7;
  Status s = decode_envelope(bad, &env, &consumed);
  EXPECT_FALSE(s.ok());
}

TEST(EnvelopeTortureTest, RejectsCorruptPayload) {
  const auto envs = sample_stream();
  std::string wire;
  encode_envelope(envs[0], &wire);
  // Flip a payload byte: either the kind check or the message CRC must
  // reject the frame — it must never decode to a different envelope.
  for (size_t i = 4; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    Envelope env;
    size_t consumed = 0;
    Status s = decode_envelope(bad, &env, &consumed);
    if (s.ok() && consumed > 0) {
      // Rare but legal: the flip landed in a spot where the frame still
      // carries a valid checksum (e.g. rpc_id varint is not CRC-protected).
      // It must still frame correctly and consume exactly one frame.
      EXPECT_EQ(consumed, bad.size()) << "flip at " << i;
    }
  }
}

TEST(EnvelopeTortureTest, TruncatedLengthPrefixWaits) {
  Envelope env;
  size_t consumed = 99;
  for (size_t n = 0; n < 4; ++n) {
    Status s = decode_envelope(std::string(n, '\x01'), &env, &consumed);
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(EnvelopeTraceTailTest, TracedEnvelopeRoundTrips) {
  Envelope env;
  env.rpc_id = 77;
  env.kind = EnvelopeKind::kRequest;
  env.from = "1.2.3.4:5";
  env.msg = Message::put("k", "v");
  env.msg.trace.trace_id = 0xfeedfacedeadbeefULL;
  env.msg.trace.span_id = 1;  // minimal varint
  env.msg.trace.hop = 255;

  std::string wire;
  encode_envelope(env, &wire);
  Envelope out;
  size_t consumed = 0;
  ASSERT_TRUE(decode_envelope(wire, &out, &consumed).ok());
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(out.msg.trace.trace_id, 0xfeedfacedeadbeefULL);
  EXPECT_EQ(out.msg.trace.span_id, 1u);
  EXPECT_EQ(out.msg.trace.hop, 255);
}

TEST(EnvelopeTraceTailTest, UntracedWireIsByteIdenticalToPreTailFormat) {
  // An envelope without a trace context must serialize to exactly the
  // historical format: length | varint rpc_id | u8 kind | bytes from | msg.
  Envelope env;
  env.rpc_id = 0xabcdef;
  env.kind = EnvelopeKind::kResponse;
  env.from = "127.0.0.1:9";
  env.msg = Message::reply(Code::kOk, "payload");

  std::string wire;
  encode_envelope(env, &wire);

  std::string expected;
  Encoder e(&expected);
  const size_t at = e.mark();
  e.put_u32_le(0);
  e.put_varint(env.rpc_id);
  e.put_u8(static_cast<uint8_t>(env.kind));
  e.put_bytes(env.from);
  encode_message(env.msg, &expected);
  e.patch_u32_le(at, static_cast<uint32_t>(expected.size() - 4));
  EXPECT_EQ(wire, expected);
}

// Appends `tail` to an encoded frame and fixes up the length prefix — what a
// future protocol revision (or a fuzzer) would put after the message.
std::string with_tail(std::string wire, std::string_view tail) {
  wire.append(tail.data(), tail.size());
  const uint32_t len = static_cast<uint32_t>(wire.size() - 4);
  for (int i = 0; i < 4; ++i) {
    wire[static_cast<size_t>(i)] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  return wire;
}

TEST(EnvelopeTraceTailTest, UnknownTrailingBytesAreTolerated) {
  Envelope env = sample_stream()[0];
  std::string base;
  encode_envelope(env, &base);

  const std::string_view tails[] = {
      std::string_view("\x7f junk from the future", 23),  // unknown tag
      std::string_view("\x01", 1),            // known tag, truncated payload
      std::string_view("\x01\x80", 2),        // truncated varint trace id
      std::string_view("\x00", 1),            // reserved tag zero
      std::string_view("\xff\xff\xff", 3),
  };
  for (const auto& t : tails) {
    const std::string wire = with_tail(base, t);
    Envelope out;
    size_t consumed = 0;
    Status s = decode_envelope(wire, &out, &consumed);
    ASSERT_TRUE(s.ok()) << s.to_string();
    ASSERT_EQ(consumed, wire.size());
    expect_equal(out, env);  // message intact, trace stays invalid
    EXPECT_FALSE(out.msg.trace.valid());
  }
}

TEST(EnvelopeTraceTailTest, UnknownTailSurvivesEverySplitPosition) {
  // The tolerance must hold under streaming delivery too, not just on a
  // complete frame.
  Envelope env = sample_stream()[1];
  std::string one;
  encode_envelope(env, &one);
  const std::string wire = with_tail(one, "\x42 future-field");
  for (size_t split = 0; split <= wire.size(); ++split) {
    ByteBuffer buf;
    std::vector<Envelope> got;
    buf.append(std::string_view(wire).substr(0, split));
    for (auto& e : drain(buf)) got.push_back(std::move(e));
    buf.append(std::string_view(wire).substr(split));
    for (auto& e : drain(buf)) got.push_back(std::move(e));
    ASSERT_EQ(got.size(), 1u) << "split " << split;
    expect_equal(got[0], env);
    EXPECT_TRUE(buf.empty()) << "split " << split;
  }
}

TEST(EnvelopeEncoderTest, EncodesIntoBufferWithoutIntermediateCopy) {
  const auto envs = sample_stream();
  // Reference bytes from the string encoder.
  std::string want;
  for (const auto& e : envs) encode_envelope(e, &want);

  // Pre-size the buffer, pin its allocation, and verify the in-place encoder
  // produced identical bytes without ever reallocating the backing store —
  // i.e. the envelope was serialized directly into the connection buffer
  // (one heap write), not bounced through a temporary string.
  ByteBuffer buf;
  buf.reserve(want.size() + 64);
  const char* base = buf.backing().data();
  for (const auto& e : envs) encode_envelope(e, &buf);
  EXPECT_EQ(buf.backing().data(), base);
  EXPECT_EQ(buf.readable(), want);
}

TEST(EnvelopeEncoderTest, AppendsAfterConsumedPrefix) {
  // Encoding into a partially-consumed buffer must extend the readable
  // window, never clobber unconsumed bytes.
  const auto envs = sample_stream();
  ByteBuffer buf;
  encode_envelope(envs[0], &buf);
  encode_envelope(envs[1], &buf);

  Envelope env;
  size_t consumed = 0;
  ASSERT_TRUE(decode_envelope(buf.readable(), &env, &consumed).ok());
  ASSERT_GT(consumed, 0u);
  buf.consume(consumed);
  expect_equal(env, envs[0]);

  encode_envelope(envs[2], &buf);  // enqueue while a frame is still pending
  auto got = drain(buf);
  ASSERT_EQ(got.size(), 2u);
  expect_equal(got[0], envs[1]);
  expect_equal(got[1], envs[2]);
  EXPECT_TRUE(buf.empty());
}

}  // namespace
}  // namespace bespokv
