// Cross-node tracing integration tests on the deterministic DES fabric: a
// traced chain-replicated PUT must reconstruct into the full causal span
// tree (client root → head dispatch → chain.forward → mid → tail), with
// timestamps coherent under virtual time; AA+EC must surface the shared-log
// append hop; and kStats must expose controlet counters over the wire.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/obs/admin.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

struct TracingOn {
  TracingOn() { obs::set_tracing(true); }
  ~TracingOn() { obs::set_tracing(false); }
};

// Runs a full KvClient PUT from the cluster's admin node under virtual time
// and returns once the ack surfaced.
void traced_put(SimEnv& env, const std::string& key, const std::string& val) {
  ClientConfig ccfg;
  ccfg.coordinator = env.cluster.coordinator_addr();
  Runtime* crt = env.cluster.admin();
  auto kv = std::make_shared<KvClient>(crt, ccfg);
  bool connected = false;
  crt->post([&] { kv->connect([&connected](Status) { connected = true; }); });
  env.sim.run_for(300'000);
  ASSERT_TRUE(connected);

  bool done = false;
  Status result = Status::Internal("pending");
  crt->post([&] {
    kv->put(key, val, [&](Status s) {
      result = s;
      done = true;
    });
  });
  env.sim.run_for(500'000);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.ok()) << result.to_string();
}

// Pulls the span buffer of `node` over the wire (exercising kTraceDump) and
// appends the decoded spans to `out`.
void dump_spans(SimEnv& env, const Addr& node, uint64_t trace_id,
                std::vector<obs::Span>* out) {
  Message req;
  req.op = Op::kTraceDump;
  req.seq = trace_id;
  auto rep = env.call(node, std::move(req));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();
  ASSERT_EQ(rep.value().code, Code::kOk);
  for (const auto& text : rep.value().strs) {
    obs::Span s;
    ASSERT_TRUE(obs::Span::decode(text, &s)) << text;
    out->push_back(std::move(s));
  }
}

const obs::Span* find_span(const std::vector<obs::Span>& spans,
                           const std::string& name, uint64_t parent) {
  for (const auto& s : spans) {
    if (s.name == name && s.parent_span_id == parent) return &s;
  }
  return nullptr;
}

TEST(ObsTraceSimTest, ChainPutReconstructsFullCausalSpanTree) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong,
                           /*shards=*/1));
  TracingOn tracing;
  traced_put(env, "traced-key", "traced-val");
  obs::set_tracing(false);  // keep the dump RPCs themselves untraced

  // The root span lives on the client's node (the admin runtime).
  const auto roots = env.cluster.admin()->obs().tracer().spans();
  ASSERT_EQ(roots.size(), 1u);
  const obs::Span root = roots[0];
  EXPECT_EQ(root.name, "client.PUT");
  EXPECT_EQ(root.parent_span_id, 0u);
  EXPECT_EQ(root.hop, 0);
  ASSERT_NE(root.trace_id, 0u);

  // Controlet-side spans, fetched over the wire like a real trace collector.
  std::vector<obs::Span> spans;
  for (int r = 0; r < 3; ++r) {
    dump_spans(env, env.cluster.controlet_addr(0, r), root.trace_id, &spans);
  }

  // Head dispatch: server span of the client's PUT.
  const obs::Span* head = find_span(spans, "PUT", root.span_id);
  ASSERT_NE(head, nullptr);
  EXPECT_EQ(head->hop, 1);

  // The chain: head forwards to mid, mid forwards to tail, each hop a
  // CHAIN_PUT dispatch parented on the upstream dispatch, plus a
  // chain.forward stage span on the forwarding node.
  const obs::Span* mid = find_span(spans, "CHAIN_PUT", head->span_id);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->hop, 2);
  const obs::Span* tail = find_span(spans, "CHAIN_PUT", mid->span_id);
  ASSERT_NE(tail, nullptr);
  EXPECT_EQ(tail->hop, 3);
  EXPECT_NE(head->node, mid->node);
  EXPECT_NE(mid->node, tail->node);
  // The tail is the end of the chain: nothing is parented on it.
  EXPECT_EQ(find_span(spans, "CHAIN_PUT", tail->span_id), nullptr);
  EXPECT_NE(find_span(spans, "chain.forward", head->span_id), nullptr);
  EXPECT_NE(find_span(spans, "chain.forward", mid->span_id), nullptr);

  // Virtual-time coherence: starts are non-decreasing down the chain, and
  // acks nest (the tail replies before mid completes, mid before head, head
  // before the client's root closes).
  EXPECT_LE(root.start_us, head->start_us);
  EXPECT_LE(head->start_us, mid->start_us);
  EXPECT_LE(mid->start_us, tail->start_us);
  EXPECT_LE(tail->end_us, mid->end_us);
  EXPECT_LE(mid->end_us, head->end_us);
  EXPECT_LE(head->end_us, root.end_us);
  EXPECT_LE(tail->start_us, tail->end_us);
}

TEST(ObsTraceSimTest, AaEcPutShowsSharedLogAppendSpan) {
  SimEnv env(small_cluster(Topology::kActiveActive, Consistency::kEventual,
                           /*shards=*/1));
  TracingOn tracing;
  traced_put(env, "log-key", "log-val");
  obs::set_tracing(false);

  const auto roots = env.cluster.admin()->obs().tracer().spans();
  ASSERT_EQ(roots.size(), 1u);
  const obs::Span root = roots[0];

  std::vector<obs::Span> spans;
  for (int r = 0; r < 3; ++r) {
    dump_spans(env, env.cluster.controlet_addr(0, r), root.trace_id, &spans);
  }
  dump_spans(env, env.cluster.sharedlog_addr(), root.trace_id, &spans);

  // The active that served the PUT...
  const obs::Span* put = find_span(spans, "PUT", root.span_id);
  ASSERT_NE(put, nullptr);
  // ...recorded the append stage (RPC round-trip to the log, Fig. 15c step
  // 2), and the log node recorded the server-side dispatch of that append.
  const obs::Span* append = find_span(spans, "sharedlog.append", put->span_id);
  ASSERT_NE(append, nullptr);
  EXPECT_EQ(append->node, put->node);
  const obs::Span* log_srv = find_span(spans, "LOG_APPEND", put->span_id);
  ASSERT_NE(log_srv, nullptr);
  EXPECT_EQ(log_srv->node, env.cluster.sharedlog_addr());
  // The server-side handling is contained in the client-observed stage span.
  EXPECT_LE(append->start_us, log_srv->start_us);
  EXPECT_LE(log_srv->end_us, append->end_us);
  EXPECT_LE(put->end_us, root.end_us);
}

TEST(ObsTraceSimTest, KStatsExposesControletCountersOverTheWire) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong,
                           /*shards=*/1));
  SyncKv kv = env.client();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv.put("sk" + std::to_string(i), "sv").ok()) << i;
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv.get("sk" + std::to_string(i)).ok()) << i;
  }

  // The head took the writes; the tail serves SC reads. Sum over replicas so
  // the assertion is role-agnostic.
  obs::MetricsSnapshot total;
  for (int r = 0; r < 3; ++r) {
    Message req;
    req.op = Op::kStats;
    auto rep = env.call(env.cluster.controlet_addr(0, r), std::move(req));
    ASSERT_TRUE(rep.ok()) << rep.status().to_string();
    auto snap = obs::MetricsSnapshot::from_json(rep.value().value);
    ASSERT_TRUE(snap.ok()) << snap.status().to_string();
    total.merge(snap.value());
  }
  EXPECT_GE(total.counter("controlet.writes"), 8u);
  EXPECT_GE(total.counter("controlet.reads"), 8u);
}

TEST(ObsTraceSimTest, UntracedTrafficRecordsNoSpans) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong,
                           /*shards=*/1));
  ASSERT_FALSE(obs::tracing_enabled());
  traced_put(env, "plain-key", "plain-val");  // tracing switch is off

  EXPECT_TRUE(env.cluster.admin()->obs().tracer().spans().empty());
  for (int r = 0; r < 3; ++r) {
    Message req;
    req.op = Op::kTraceDump;
    auto rep = env.call(env.cluster.controlet_addr(0, r), std::move(req));
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(rep.value().strs.empty()) << "replica " << r;
  }
}

TEST(ObsTraceSimTest, TraceDumpClearFlagDrainsTheBuffer) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong,
                           /*shards=*/1));
  {
    TracingOn tracing;
    traced_put(env, "k", "v");
  }
  size_t first_total = 0, second_total = 0;
  for (int r = 0; r < 3; ++r) {
    Message req;
    req.op = Op::kTraceDump;
    req.flags = 1;  // dump-and-clear
    auto first = env.call(env.cluster.controlet_addr(0, r), std::move(req));
    ASSERT_TRUE(first.ok());
    first_total += first.value().strs.size();
  }
  for (int r = 0; r < 3; ++r) {
    Message again;
    again.op = Op::kTraceDump;
    auto second = env.call(env.cluster.controlet_addr(0, r), std::move(again));
    ASSERT_TRUE(second.ok());
    second_total += second.value().strs.size();
  }
  EXPECT_GT(first_total, 0u);
  EXPECT_EQ(second_total, 0u);
}

}  // namespace
}  // namespace bespokv
