// Workload-suite tests (ISSUE 8): the YCSB A–F presets, the new key/value
// distributions (latest, hotset, variable payload sizes), TTL stamping,
// open-loop arrival processes (Poisson / two-state MMPP), the spec JSON
// round-trips, and the ttl_ms field in the wire codec.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/proto/codec.h"
#include "src/proto/message.h"
#include "src/workload/workload.h"

namespace bespokv {
namespace {

std::map<OpType, int> op_counts(WorkloadGenerator& gen, int n) {
  std::map<OpType, int> counts;
  for (int i = 0; i < n; ++i) counts[gen.next().type]++;
  return counts;
}

TEST(YcsbPresets, MixRatios) {
  // Canonical core-workload mixes; generators must realize them closely.
  struct Case {
    char mix;
    OpType dominant;
    double expect;
  };
  for (const Case& c : {Case{'A', OpType::kGet, 0.50},
                        Case{'B', OpType::kGet, 0.95},
                        Case{'C', OpType::kGet, 1.00},
                        Case{'E', OpType::kScan, 0.95},
                        Case{'F', OpType::kRmw, 0.50}}) {
    auto spec = WorkloadSpec::ycsb(c.mix);
    ASSERT_TRUE(spec.ok());
    WorkloadGenerator gen(spec.value(), 0);
    auto counts = op_counts(gen, 20'000);
    EXPECT_NEAR(counts[c.dominant] / 20'000.0, c.expect, 0.02)
        << "mix " << c.mix;
  }
  EXPECT_FALSE(WorkloadSpec::ycsb('Z').ok());
}

TEST(YcsbPresets, DGrowsKeyspaceAndReadsLatest) {
  auto spec = WorkloadSpec::ycsb('D');
  ASSERT_TRUE(spec.ok());
  WorkloadSpec s = spec.value();
  s.num_keys = 1'000;
  WorkloadGenerator gen(s, 0);
  const uint64_t before = gen.population();
  int reads_in_newest_decile = 0, reads = 0;
  for (int i = 0; i < 20'000; ++i) {
    WorkloadOp op = gen.next();
    if (op.type != OpType::kGet) continue;
    ++reads;
    // key_at zero-pads indices, so lexical order is numeric order: a read
    // of the newest 10% of keys sorts above key_at(90% of population).
    if (op.key >= gen.key_at(gen.population() * 9 / 10)) {
      ++reads_in_newest_decile;
    }
  }
  EXPECT_GT(gen.population(), before);  // 5% inserts grew the keyspace
  // Read-latest skew: far more than the uniform 10% of reads land on the
  // newest decile.
  EXPECT_GT(reads_in_newest_decile, reads / 4);
}

TEST(KeyDistributions, HotsetConcentratesOnHotKeys) {
  WorkloadSpec s;
  s.num_keys = 10'000;
  s.get_ratio = 1.0;
  s.key_dist = KeyDist::kHotset;
  s.hot_op_fraction = 0.9;
  s.hot_key_fraction = 0.1;
  WorkloadGenerator gen(s, 0);
  const std::string hot_end = gen.key_at(1'000);
  int hot = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (gen.next().key < hot_end) ++hot;
  }
  EXPECT_NEAR(hot / double(n), 0.9, 0.03);
}

TEST(ValueSizes, DrawnFromConfiguredRange) {
  WorkloadSpec s;
  s.get_ratio = 0.0;  // all updates
  s.value_size = 32;
  s.value_size_max = 256;
  WorkloadGenerator gen(s, 0);
  size_t lo = SIZE_MAX, hi = 0;
  for (int i = 0; i < 2'000; ++i) {
    WorkloadOp op = gen.next();
    ASSERT_EQ(op.type, OpType::kPut);
    lo = std::min(lo, op.value.size());
    hi = std::max(hi, op.value.size());
  }
  EXPECT_GE(lo, 32u);
  EXPECT_LE(hi, 256u);
  EXPECT_GT(hi - lo, 100u);  // actually spread, not pinned to one size
}

TEST(CacheTierPreset, StampsTtlOnEveryPut) {
  WorkloadGenerator gen(WorkloadSpec::cache_tier(250), 0);
  int puts = 0;
  for (int i = 0; i < 2'000; ++i) {
    WorkloadOp op = gen.next();
    if (op.type != OpType::kPut) continue;
    ++puts;
    EXPECT_EQ(op.ttl_ms, 250u);
  }
  EXPECT_GT(puts, 0);
}

TEST(Arrivals, PoissonMeanGapMatchesRate) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kPoisson;
  spec.rate_per_sec = 5'000;
  ArrivalProcess p(spec);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += double(p.next_gap_us());
  const double mean_us = sum / n;
  EXPECT_NEAR(mean_us, 200.0, 10.0);  // 1e6 / 5000
  EXPECT_NEAR(spec.mean_rate_per_sec(), 5'000.0, 1e-9);
}

TEST(Arrivals, MmppAlternatesAndRaisesMeanRate) {
  ArrivalSpec spec;
  spec.kind = ArrivalSpec::Kind::kMmpp;
  spec.rate_per_sec = 1'000;
  spec.burst_multiplier = 10.0;
  spec.calm_dwell_ms = 10.0;
  spec.burst_dwell_ms = 10.0;
  // Equal dwells: mean rate is the average of calm and burst rates.
  EXPECT_NEAR(spec.mean_rate_per_sec(), 5'500.0, 1.0);
  ArrivalProcess p(spec);
  bool saw_burst = false, saw_calm = false;
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += double(p.next_gap_us());
    (p.in_burst() ? saw_burst : saw_calm) = true;
  }
  EXPECT_TRUE(saw_burst);
  EXPECT_TRUE(saw_calm);
  // Realized mean rate within 10% of the dwell-weighted analytic value.
  const double realized = n / (sum / 1e6);
  EXPECT_NEAR(realized, 5'500.0, 550.0);
}

TEST(SpecJson, WorkloadRoundTripKeepsNewFields) {
  WorkloadSpec s = WorkloadSpec::cache_tier(500);
  s.rmw_ratio = 0.25;
  s.insert_ratio = 0.05;
  s.key_dist = KeyDist::kLatest;
  auto back = WorkloadSpec::from_json(s.to_json());
  ASSERT_TRUE(back.ok());
  const WorkloadSpec& b = back.value();
  EXPECT_EQ(b.ttl_ms, 500u);
  EXPECT_EQ(b.value_size_max, s.value_size_max);
  EXPECT_DOUBLE_EQ(b.rmw_ratio, 0.25);
  EXPECT_DOUBLE_EQ(b.insert_ratio, 0.05);
  EXPECT_EQ(b.key_dist, KeyDist::kLatest);
  EXPECT_DOUBLE_EQ(b.hot_op_fraction, s.hot_op_fraction);
}

TEST(SpecJson, ArrivalRoundTrip) {
  ArrivalSpec s;
  s.kind = ArrivalSpec::Kind::kMmpp;
  s.rate_per_sec = 12'000;
  s.burst_multiplier = 4.0;
  s.calm_dwell_ms = 300;
  s.burst_dwell_ms = 25;
  s.seed = 99;
  auto back = ArrivalSpec::from_json(s.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().kind, ArrivalSpec::Kind::kMmpp);
  EXPECT_DOUBLE_EQ(back.value().rate_per_sec, 12'000.0);
  EXPECT_DOUBLE_EQ(back.value().burst_multiplier, 4.0);
  EXPECT_EQ(back.value().seed, 99u);
}

TEST(Codec, TtlMsRoundTrips) {
  Message m = Message::put_ttl("k", "v", 1'500, "sessions");
  EXPECT_EQ(m.ttl_ms, 1'500u);
  std::string wire;
  encode_message(m, &wire);
  size_t consumed = 0;
  auto back = decode_message(wire, &consumed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(back.value().ttl_ms, 1'500u);
  EXPECT_EQ(back.value().key, "k");
  EXPECT_EQ(back.value().table, "sessions");
}

}  // namespace
}  // namespace bespokv
