// Cluster-level TTL semantics (ISSUE 8 satellite: "cache-tier mode is only
// trustworthy if expiry survives the machinery"): a PUT with ttl_ms expires
// at the stamped fabric-clock instant on every engine, the envelope rides
// replication and WAL/checkpoint durability unchanged, a promoted master
// agrees on expiry, the background sweep reclaims cold entries, and retry
// dedup cannot resurrect an expired key.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/storage/env.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

ClusterOptions ttl_cluster(const std::string& kind,
                           Topology t = Topology::kMasterSlave,
                           Consistency c = Consistency::kStrong) {
  ClusterOptions o = small_cluster(t, c, /*shards=*/1, /*replicas=*/3);
  o.datalet_kind = kind;
  return o;
}

class TtlEngineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TtlEngineTest, ExpiresAtStampedInstant) {
  SimEnv env(ttl_cluster(GetParam()));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put_ttl("session", "alive", 300).ok());
  ASSERT_TRUE(kv.put("pinned", "forever").ok());

  // Before expiry the client sees the raw payload — no envelope bytes leak.
  auto r = kv.get("session");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), "alive");

  env.settle(400'000);  // cross the 300ms expiry on the fabric clock
  EXPECT_EQ(kv.get("session").status().code(), Code::kNotFound);
  // Expiry is per-key: untouched and un-TTL'd data is unaffected.
  EXPECT_EQ(kv.get("pinned").value(), "forever");
  // A dead key can be rewritten (fresh TTL restarts the clock).
  ASSERT_TRUE(kv.put_ttl("session", "again", 300).ok());
  EXPECT_EQ(kv.get("session").value(), "again");
}

INSTANTIATE_TEST_SUITE_P(Engines, TtlEngineTest,
                         ::testing::Values("tHT", "tMT", "tLSM"));

TEST(Ttl, ZeroTtlNeverExpires) {
  SimEnv env(ttl_cluster("tHT"));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put_ttl("k", "v", 0).ok());  // 0 = plain PUT
  env.settle(2'000'000);
  EXPECT_EQ(kv.get("k").value(), "v");
}

TEST(Ttl, ScanFiltersExpiredRows) {
  ClusterOptions o = ttl_cluster("tMT");  // ordered engine for scans
  SimEnv env(o);
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put_ttl("row1", "a", 200).ok());
  ASSERT_TRUE(kv.put("row2", "b").ok());
  ASSERT_TRUE(kv.put_ttl("row3", "c", 5'000).ok());
  env.settle(400'000);  // row1 dead, row3 still live

  auto rows = kv.scan("row", "row~", 10);
  ASSERT_TRUE(rows.ok()) << rows.status().to_string();
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0].key, "row2");
  EXPECT_EQ(rows.value()[1].key, "row3");
  EXPECT_EQ(rows.value()[1].value, "c");  // envelope stripped in scan rows
}

TEST(Ttl, SurvivesWalRecoveryWithExpiryIntact) {
  // Durable engines persist the envelope through WAL + checkpoint: after a
  // power cut and replay, a live key is still live (with its original
  // absolute expiry — not re-based at recovery) and expires on schedule.
  ClusterOptions o = ttl_cluster("tHT");
  o.datalet_cfg.env = std::make_shared<storage::MemEnv>();
  o.datalet_cfg.durable_dir = "/ttl";
  o.datalet_cfg.fsync = "always";
  SimEnv env(o);
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put_ttl("lease", "holder-a", 3'000).ok());
  ASSERT_TRUE(kv.put("config", "stable").ok());

  // Power-cut the whole shard chain, then bring every replica back: state
  // must come from checkpoint + WAL replay, not surviving peers.
  for (int r = 0; r < 3; ++r) env.cluster.kill_controlet(0, r);
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(env.cluster.restart_controlet(0, r));
  }
  env.settle(1'500'000);  // recovery + map settle (~1.5s of the 3s TTL)

  auto r = kv.get("lease");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), "holder-a");
  EXPECT_EQ(kv.get("config").value(), "stable");

  env.settle(2'000'000);  // now past the original 3s expiry instant
  EXPECT_EQ(kv.get("lease").status().code(), Code::kNotFound);
  EXPECT_EQ(kv.get("config").value(), "stable");
}

TEST(Ttl, PromotedMasterAgreesOnExpiry) {
  // The expiry instant is absolute and replicated inside the value, so a
  // slave promoted after the master dies reaches the same verdict.
  ClusterOptions o = ttl_cluster("tHT");
  o.num_standby = 1;
  o.coordinator.hb_period_us = 100'000;
  o.coordinator.hb_miss_limit = 3;
  o.controlet.hb_period_us = 50'000;
  SimEnv env(o);
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put_ttl("short", "gone-soon", 400).ok());
  ASSERT_TRUE(kv.put_ttl("long", "stays", 60'000).ok());

  env.cluster.kill_controlet(0, 0);  // kill the master/head
  env.settle(1'500'000);             // detection + promotion (past 400ms TTL)

  EXPECT_GE(env.cluster.coordinator_service()->failovers(), 1u);
  EXPECT_EQ(kv.get("short").status().code(), Code::kNotFound);
  auto r = kv.get("long");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), "stays");
}

TEST(Ttl, BackgroundSweepReclaimsColdKeys) {
  // Lazy expiry only fires on touched keys; the periodic sweep must reclaim
  // entries nobody reads. Observe reclamation through the engine itself.
  ClusterOptions o = ttl_cluster("tHT");
  o.controlet.ttl_sweep_period_us = 200'000;
  SimEnv env(o);
  SyncKv kv = env.client();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        kv.put_ttl("cold" + std::to_string(i), "v", 300).ok());
  }
  ASSERT_TRUE(kv.put("warm", "v").ok());
  env.settle(900'000);  // several sweep periods past expiry

  // Nobody ever read cold*, yet the master's engine dropped them all.
  size_t master_size = env.cluster.datalet(0, 0)->size();
  EXPECT_EQ(master_size, 1u);
  EXPECT_EQ(kv.get("warm").value(), "v");
}

TEST(Ttl, RetryDedupDoesNotResurrectExpiredKey) {
  // A duplicate of an acked PUT-with-TTL (same idempotency token) arriving
  // after the key expired must be answered from the dedup window, not
  // re-applied — replaying it would resurrect the dead key with a
  // re-based expiry.
  SimEnv env(ttl_cluster("tHT"));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put_ttl("once", "v", 300).ok());

  // Hand-craft the duplicate exactly as the client would retry it: same
  // token, same ttl_ms, sent straight to the master controlet.
  Message dup = Message::put_ttl("once", "v", 300);
  dup.token = 424242;
  Message first = dup;
  auto r1 = env.call(env.cluster.controlet_addr(0, 0), std::move(first));
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1.value().code, Code::kOk);

  env.settle(500'000);  // the key expires
  EXPECT_EQ(kv.get("once").status().code(), Code::kNotFound);

  auto r2 = env.call(env.cluster.controlet_addr(0, 0), std::move(dup));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().code, Code::kOk);  // replayed ack from the window
  // The duplicate did not bring the key back from the dead.
  EXPECT_EQ(kv.get("once").status().code(), Code::kNotFound);
}

}  // namespace
}  // namespace bespokv
