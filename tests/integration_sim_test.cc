// End-to-end tests: full bespoKV deployments (coordinator + DLM + shared log
// + controlets + datalets + client library) on the deterministic DES fabric,
// across all four topology/consistency combinations (§IV, §C).
#include <gtest/gtest.h>

#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

struct Combo {
  Topology t;
  Consistency c;
  const char* name;
};

class ComboTest : public ::testing::TestWithParam<Combo> {};

TEST_P(ComboTest, PutGetDelAcrossShards) {
  SimEnv env(small_cluster(GetParam().t, GetParam().c, /*shards=*/3));
  SyncKv kv = env.client();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(kv.put("key" + std::to_string(i), "val" + std::to_string(i)).ok())
        << i;
  }
  env.settle();  // EC propagation
  for (int i = 0; i < 60; ++i) {
    auto r = kv.get("key" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().to_string();
    EXPECT_EQ(r.value(), "val" + std::to_string(i));
  }
  ASSERT_TRUE(kv.del("key7").ok());
  env.settle();
  EXPECT_EQ(kv.get("key7").status().code(), Code::kNotFound);
}

TEST_P(ComboTest, OverwriteReturnsLatest) {
  SimEnv env(small_cluster(GetParam().t, GetParam().c));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v1").ok());
  ASSERT_TRUE(kv.put("k", "v2").ok());
  env.settle();
  // After quiescence every replica must serve the latest value, so even an
  // eventually-consistent read observes it.
  for (int i = 0; i < 6; ++i) {
    auto r = kv.get("k");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "v2");
  }
}

TEST_P(ComboTest, MissingKeyIsNotFound) {
  SimEnv env(small_cluster(GetParam().t, GetParam().c));
  SyncKv kv = env.client();
  EXPECT_EQ(kv.get("nope").status().code(), Code::kNotFound);
  EXPECT_EQ(kv.del("nope").code(), Code::kNotFound);
}

TEST_P(ComboTest, ReplicasConvergeAfterQuiescence) {
  SimEnv env(small_cluster(GetParam().t, GetParam().c, /*shards=*/2));
  SyncKv kv = env.client();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(kv.put("ck" + std::to_string(i), "cv" + std::to_string(i)).ok());
  }
  env.settle(500'000);
  // Eventual convergence property: every replica datalet of a shard holds an
  // identical key->value mapping.
  for (int s = 0; s < 2; ++s) {
    std::map<std::string, std::string> reference;
    env.cluster.datalet(s, 0)->for_each(
        [&](std::string_view k, const Entry& e) {
          reference.emplace(std::string(k), e.value);
        });
    for (int r = 1; r < 3; ++r) {
      std::map<std::string, std::string> replica;
      env.cluster.datalet(s, r)->for_each(
          [&](std::string_view k, const Entry& e) {
            replica.emplace(std::string(k), e.value);
          });
      EXPECT_EQ(replica, reference) << "shard " << s << " replica " << r;
    }
  }
}

TEST_P(ComboTest, TablesAreIsolated) {
  SimEnv env(small_cluster(GetParam().t, GetParam().c));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "tab1-val", "t1").ok());
  ASSERT_TRUE(kv.put("k", "tab2-val", "t2").ok());
  env.settle();
  EXPECT_EQ(kv.get("k", "t1").value(), "tab1-val");
  EXPECT_EQ(kv.get("k", "t2").value(), "tab2-val");
  EXPECT_EQ(kv.get("k").status().code(), Code::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ComboTest,
    ::testing::Values(
        Combo{Topology::kMasterSlave, Consistency::kStrong, "MS_SC"},
        Combo{Topology::kMasterSlave, Consistency::kEventual, "MS_EC"},
        Combo{Topology::kActiveActive, Consistency::kStrong, "AA_SC"},
        Combo{Topology::kActiveActive, Consistency::kEventual, "AA_EC"}),
    [](const auto& info) { return info.param.name; });

// ----------------------- combo-specific semantics ---------------------------

TEST(MsScSemantics, WriteIsOnAllReplicasBeforeAck) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong, 1));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  // Chain replication: the ack implies head, mid and tail all committed.
  for (int r = 0; r < 3; ++r) {
    auto e = env.cluster.datalet(0, r)->get("k");
    ASSERT_TRUE(e.ok()) << "replica " << r;
    EXPECT_EQ(e.value().value, "v");
  }
}

TEST(MsScSemantics, NonTailRejectsStrongReadsHonorsEventual) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong, 1));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  // Direct strong read at the head must be refused (clients go to the tail).
  Message strong_get = Message::get("k");
  auto rep = env.call(env.cluster.controlet_addr(0, 0), strong_get);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kNotLeader);
  // Per-request eventual read at the head is served (§IV-C).
  Message ec_get = Message::get("k");
  ec_get.consistency = ConsistencyLevel::kEventual;
  rep = env.call(env.cluster.controlet_addr(0, 0), ec_get);
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kOk);
  EXPECT_EQ(rep.value().value, "v");
}

TEST(MsEcSemantics, SlavesRejectWritesMasterAcksBeforePropagation) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SyncKv kv = env.client();
  // Writes to a slave bounce with kNotLeader.
  auto rep = env.call(env.cluster.controlet_addr(0, 1), Message::put("k", "v"));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kNotLeader);
  // A master write is ack'd possibly before slaves see it; master has it.
  ASSERT_TRUE(kv.put("k", "v").ok());
  EXPECT_TRUE(env.cluster.datalet(0, 0)->get("k").ok());
  env.settle();
  EXPECT_TRUE(env.cluster.datalet(0, 1)->get("k").ok());
  EXPECT_TRUE(env.cluster.datalet(0, 2)->get("k").ok());
}

TEST(AaEcSemantics, ConflictingWritesConvergeIdentically) {
  SimEnv env(small_cluster(Topology::kActiveActive, Consistency::kEventual, 1));
  // Two writes to the same key sent to *different* actives nearly
  // concurrently; the shared log orders them, so all replicas converge to
  // the same winner (§C.C).
  auto d1 = std::make_shared<bool>(false);
  auto d2 = std::make_shared<bool>(false);
  Runtime* rt = env.cluster.admin();
  rt->post([&, rt] {
    rt->call(env.cluster.controlet_addr(0, 0), Message::put("k", "from-a0"),
             [d1](Status, Message) { *d1 = true; });
    rt->call(env.cluster.controlet_addr(0, 1), Message::put("k", "from-a1"),
             [d2](Status, Message) { *d2 = true; });
  });
  env.settle(500'000);
  ASSERT_TRUE(*d1 && *d2);
  auto v0 = env.cluster.datalet(0, 0)->get("k");
  auto v1 = env.cluster.datalet(0, 1)->get("k");
  auto v2 = env.cluster.datalet(0, 2)->get("k");
  ASSERT_TRUE(v0.ok() && v1.ok() && v2.ok());
  EXPECT_EQ(v0.value().value, v1.value().value);
  EXPECT_EQ(v1.value().value, v2.value().value);
  EXPECT_EQ(v0.value().seq, v1.value().seq);
}

TEST(AaScSemantics, AnyReplicaTakesWritesAllCommittedOnAck) {
  SimEnv env(small_cluster(Topology::kActiveActive, Consistency::kStrong, 1));
  // Write through each active in turn; on ack, every replica must hold it.
  for (int r = 0; r < 3; ++r) {
    const std::string key = "k" + std::to_string(r);
    auto rep = env.call(env.cluster.controlet_addr(0, r),
                        Message::put(key, "v"));
    ASSERT_TRUE(rep.ok());
    ASSERT_EQ(rep.value().code, Code::kOk);
    for (int j = 0; j < 3; ++j) {
      EXPECT_TRUE(env.cluster.datalet(0, j)->get(key).ok())
          << "writer " << r << " replica " << j;
    }
  }
}

// ------------------------------ range query ---------------------------------

TEST(RangeQuery, RangePartitionedScanAcrossShards) {
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kEventual, /*shards=*/3);
  o.datalet_kind = "tMT";
  o.partitioner = "range";
  o.range_splits = {"k300", "k600"};  // shard0 [ ,k300) shard1 [k300,k600) ...
  SimEnv env(std::move(o));
  SyncKv kv = env.client();
  for (int i = 0; i < 900; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    ASSERT_TRUE(kv.put(buf, "v" + std::to_string(i)).ok());
  }
  env.settle();
  // Scan spanning all three shards' ranges.
  auto r = kv.scan("k250", "k650", 0);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_EQ(r.value().size(), 400u);
  EXPECT_EQ(r.value().front().key, "k250");
  EXPECT_EQ(r.value().back().key, "k649");
  for (size_t i = 1; i < r.value().size(); ++i) {
    EXPECT_LT(r.value()[i - 1].key, r.value()[i].key);
  }
  // Limited scan.
  auto lim = kv.scan("k000", "", 10);
  ASSERT_TRUE(lim.ok());
  EXPECT_EQ(lim.value().size(), 10u);
}

TEST(RangeQuery, HashPartitionedScanBroadcastsAndMerges) {
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kEventual, /*shards=*/2);
  o.datalet_kind = "tMT";
  SimEnv env(std::move(o));
  SyncKv kv = env.client();
  for (int i = 0; i < 100; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    ASSERT_TRUE(kv.put(buf, "v").ok());
  }
  env.settle();
  auto r = kv.scan("k010", "k020", 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 10u);
}

// --------------------------- polyglot persistence ----------------------------

TEST(Polyglot, MixedEnginesPerReplicaConverge) {
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kEventual, 1);
  o.replica_datalet_kinds = {"tLSM", "tMT", "tLog"};  // §VI-A layout
  SimEnv env(std::move(o));
  SyncKv kv = env.client();
  EXPECT_STREQ(env.cluster.datalet(0, 0)->kind(), "tLSM");
  EXPECT_STREQ(env.cluster.datalet(0, 1)->kind(), "tMT");
  EXPECT_STREQ(env.cluster.datalet(0, 2)->kind(), "tLog");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  env.settle(500'000);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(env.cluster.datalet(0, r)->size(), 50u) << "replica " << r;
  }
  // The tMT replica can serve the analytics-style range scan (§VI-A) while
  // the same data lives in LSM and log replicas.
  auto scan = env.cluster.datalet(0, 1)->scan("", "", 0);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan.value().size(), 50u);
}

// ---------------------------- per-request mix --------------------------------

TEST(PerRequestConsistency, EventualGetServedByAnyReplicaUnderMsSc) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong, 1));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  // All three replicas answer per-request-eventual reads.
  for (int r = 0; r < 3; ++r) {
    Message g = Message::get("k");
    g.consistency = ConsistencyLevel::kEventual;
    auto rep = env.call(env.cluster.controlet_addr(0, r), g);
    ASSERT_TRUE(rep.ok());
    EXPECT_EQ(rep.value().code, Code::kOk) << r;
  }
  // Through the client library: eventual reads spread across replicas but
  // always return the committed value after quiescence.
  for (int i = 0; i < 9; ++i) {
    auto r = kv.get("k", "", ConsistencyLevel::kEventual);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "v");
  }
}

}  // namespace
}  // namespace bespokv
