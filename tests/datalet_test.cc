#include <gtest/gtest.h>

#include <filesystem>
#include <map>

#include "src/common/rng.h"
#include "src/datalet/bloom.h"
#include "src/datalet/btree.h"
#include "src/datalet/datalet.h"
#include "src/datalet/ht.h"
#include "src/datalet/locked.h"
#include "src/datalet/logstore.h"
#include "src/datalet/lsm.h"

namespace bespokv {
namespace {

// ---------------- engine-contract property tests (all engines) --------------

class DataletContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<Datalet> make(DataletConfig cfg = {}) {
    // Small LSM memtable so the sweep exercises flush/compaction paths.
    cfg.memtable_limit = 64;
    cfg.max_runs_per_level = 2;
    return make_datalet(GetParam(), cfg);
  }
};

TEST_P(DataletContractTest, PutGetDel) {
  auto d = make();
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->put("k1", "v1", 1).ok());
  auto r = d->get("k1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, "v1");
  EXPECT_EQ(r.value().seq, 1u);
  EXPECT_TRUE(d->del("k1", 2).ok());
  EXPECT_EQ(d->get("k1").status().code(), Code::kNotFound);
  EXPECT_EQ(d->del("k1", 3).code(), Code::kNotFound);
}

TEST_P(DataletContractTest, OverwriteReplaces) {
  auto d = make();
  d->put("k", "old", 1);
  d->put("k", "new", 2);
  EXPECT_EQ(d->get("k").value().value, "new");
  EXPECT_EQ(d->size(), 1u);
}

TEST_P(DataletContractTest, LwwDropsStaleWrites) {
  auto d = make();
  d->put_if_newer("k", "v5", 5);
  d->put_if_newer("k", "v3", 3);  // stale: must not clobber
  EXPECT_EQ(d->get("k").value().value, "v5");
  d->put_if_newer("k", "v9", 9);
  EXPECT_EQ(d->get("k").value().value, "v9");
}

TEST_P(DataletContractTest, EmptyKeyAndValue) {
  auto d = make();
  EXPECT_TRUE(d->put("", "", 0).ok());
  auto r = d->get("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, "");
}

TEST_P(DataletContractTest, BinarySafeValues) {
  auto d = make();
  std::string val;
  for (int i = 0; i < 256; ++i) val.push_back(static_cast<char>(i));
  d->put("bin", val, 1);
  EXPECT_EQ(d->get("bin").value().value, val);
}

TEST_P(DataletContractTest, ForEachVisitsEverything) {
  auto d = make();
  for (int i = 0; i < 500; ++i) {
    d->put("key" + std::to_string(i), "val" + std::to_string(i), 1);
  }
  std::map<std::string, std::string> seen;
  d->for_each([&](std::string_view k, const Entry& e) {
    seen.emplace(std::string(k), e.value);
  });
  EXPECT_EQ(seen.size(), 500u);
  EXPECT_EQ(seen["key42"], "val42");
  EXPECT_EQ(d->size(), 500u);
}

TEST_P(DataletContractTest, ClearEmpties) {
  auto d = make();
  for (int i = 0; i < 100; ++i) d->put("k" + std::to_string(i), "v", 1);
  d->clear();
  EXPECT_EQ(d->size(), 0u);
  EXPECT_EQ(d->get("k5").status().code(), Code::kNotFound);
  EXPECT_TRUE(d->put("k5", "w", 2).ok());
  EXPECT_EQ(d->get("k5").value().value, "w");
}

TEST_P(DataletContractTest, RandomOpsMatchReferenceModel) {
  auto d = make();
  std::map<std::string, std::string> model;
  Rng rng(GetParam() == "tHT" ? 11 : 22);
  for (int iter = 0; iter < 8000; ++iter) {
    const std::string key = "k" + std::to_string(rng.next_u64(300));
    const int action = static_cast<int>(rng.next_u64(10));
    if (action < 6) {
      const std::string value = "v" + std::to_string(iter);
      d->put(key, value, static_cast<uint64_t>(iter));
      model[key] = value;
    } else if (action < 8) {
      const Status s = d->del(key, static_cast<uint64_t>(iter));
      EXPECT_EQ(s.ok(), model.erase(key) > 0) << key << " iter " << iter;
    } else {
      auto r = d->get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(r.ok()) << key;
      } else {
        ASSERT_TRUE(r.ok()) << key;
        EXPECT_EQ(r.value().value, it->second);
      }
    }
  }
  EXPECT_EQ(d->size(), model.size());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, DataletContractTest,
                         ::testing::Values("tHT", "tMT", "tLSM", "tLog",
                                           "tRedis", "tSSDB"),
                         [](const auto& info) { return info.param; });

// ------------------------- scan-capable engines -----------------------------

class ScanContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScanContractTest, RangeScanOrderedAndBounded) {
  DataletConfig cfg;
  cfg.memtable_limit = 32;
  auto d = make_datalet(GetParam(), cfg);
  for (int i = 0; i < 300; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    d->put(buf, "v" + std::to_string(i), 1);
  }
  auto r = d->scan("k0100", "k0110", 0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 10u);
  EXPECT_EQ(r.value().front().key, "k0100");
  EXPECT_EQ(r.value().back().key, "k0109");
  for (size_t i = 1; i < r.value().size(); ++i) {
    EXPECT_LT(r.value()[i - 1].key, r.value()[i].key);
  }
}

TEST_P(ScanContractTest, ScanHonorsLimitAndOpenEnd) {
  DataletConfig cfg;
  cfg.memtable_limit = 32;
  auto d = make_datalet(GetParam(), cfg);
  for (int i = 0; i < 100; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    d->put(buf, "v", 1);
  }
  auto limited = d->scan("k0000", "", 7);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited.value().size(), 7u);
  auto open = d->scan("k0095", "", 0);
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Ordered, ScanContractTest,
                         ::testing::Values("tMT", "tLSM"),
                         [](const auto& info) { return info.param; });

TEST(ScanSupport, HashEnginesRejectScan) {
  auto d = make_datalet("tHT", {});
  EXPECT_FALSE(d->supports_scan());
  EXPECT_FALSE(d->scan("a", "z", 0).ok());
}

// ------------------------------ tHT specifics -------------------------------

TEST(HashTableTest, GrowsPastInitialCapacity) {
  DataletConfig cfg;
  cfg.initial_capacity = 16;
  HashTableDatalet d(cfg);
  const size_t cap0 = d.capacity();
  for (int i = 0; i < 1000; ++i) d.put("k" + std::to_string(i), "v", 1);
  EXPECT_GT(d.capacity(), cap0);
  EXPECT_EQ(d.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(d.get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(HashTableTest, BackwardShiftDeleteKeepsChains) {
  HashTableDatalet d;
  // Insert keys, delete half, verify the rest remain reachable.
  for (int i = 0; i < 2000; ++i) d.put("key" + std::to_string(i), "v", 1);
  for (int i = 0; i < 2000; i += 2) d.del("key" + std::to_string(i), 2);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(d.get("key" + std::to_string(i)).ok(), i % 2 == 1) << i;
  }
  EXPECT_EQ(d.size(), 1000u);
}

// ------------------------------ tMT specifics -------------------------------

TEST(BTreeTest, InvariantsHoldUnderChurn) {
  BTreeDatalet d;
  Rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    d.put("k" + std::to_string(rng.next_u64(5000)), "v", 1);
    if (i % 3 == 0) d.del("k" + std::to_string(rng.next_u64(5000)), 1);
  }
  EXPECT_TRUE(d.check_invariants());
  EXPECT_GT(d.height(), 1);
}

TEST(BTreeTest, SequentialAndReverseInserts) {
  for (bool reverse : {false, true}) {
    BTreeDatalet d;
    for (int i = 0; i < 5000; ++i) {
      const int v = reverse ? 4999 - i : i;
      char buf[16];
      std::snprintf(buf, sizeof(buf), "k%06d", v);
      d.put(buf, "v", 1);
    }
    EXPECT_TRUE(d.check_invariants()) << "reverse=" << reverse;
    EXPECT_EQ(d.size(), 5000u);
    auto all = d.scan("", "", 0);
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all.value().size(), 5000u);
  }
}

// ------------------------------ tLSM specifics ------------------------------

TEST(LsmTest, FlushAndCompactionProgress) {
  DataletConfig cfg;
  cfg.memtable_limit = 100;
  cfg.max_runs_per_level = 2;
  LsmDatalet d(cfg);
  for (int i = 0; i < 2000; ++i) {
    d.put("k" + std::to_string(i % 700), "v" + std::to_string(i), 1);
  }
  EXPECT_GT(d.num_runs(), 0u);
  EXPECT_GT(d.write_amplification(), 1.0);  // compaction rewrote data
  // Every live key still readable through the leveled structure.
  for (int i = 1300; i < 2000; ++i) {
    auto r = d.get("k" + std::to_string(i % 700));
    ASSERT_TRUE(r.ok()) << i;
  }
}

TEST(LsmTest, TombstonesSuppressOlderRuns) {
  DataletConfig cfg;
  cfg.memtable_limit = 10;
  LsmDatalet d(cfg);
  d.put("doomed", "v1", 1);
  d.flush_memtable();          // value now lives in a run
  EXPECT_TRUE(d.del("doomed", 2).ok());
  d.flush_memtable();          // tombstone in a newer run
  EXPECT_EQ(d.get("doomed").status().code(), Code::kNotFound);
  auto all = d.scan("", "", 0);
  ASSERT_TRUE(all.ok());
  for (const auto& kv : all.value()) EXPECT_NE(kv.key, "doomed");
}

TEST(LsmTest, ScanMergesMemtableAndRuns) {
  DataletConfig cfg;
  cfg.memtable_limit = 50;
  LsmDatalet d(cfg);
  for (int i = 0; i < 200; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    d.put(buf, "old", 1);
  }
  d.flush_memtable();
  d.put("k0005", "new", 2);  // memtable shadows the run
  auto r = d.scan("k0004", "k0007", 0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_EQ(r.value()[1].key, "k0005");
  EXPECT_EQ(r.value()[1].value, "new");
}

// ------------------- tLSM memory vs disk mode parity ------------------------
// Same LSM logic above two run representations: in-RAM sorted vectors and
// on-disk SSTables (MemEnv-backed). The merge/shadow/tombstone semantics must
// be identical in both, across multi-level trees.

class LsmModeTest : public ::testing::TestWithParam<bool> {
 protected:
  // Tiny memtable/level budgets so a few hundred puts build a real
  // multi-level tree in both modes.
  std::unique_ptr<LsmDatalet> make(bool disable_bloom = false) {
    DataletConfig cfg;
    cfg.memtable_limit = 16;
    cfg.max_runs_per_level = 2;
    cfg.lsm_disable_bloom = disable_bloom;
    if (GetParam()) {
      env_ = std::make_shared<storage::MemEnv>();
      cfg.env = env_;
      cfg.dir = "/lsm";
    }
    return std::make_unique<LsmDatalet>(cfg);
  }
  std::shared_ptr<storage::MemEnv> env_;
};

TEST_P(LsmModeTest, GetAcrossMultiLevelRunsWithTombstones) {
  auto d = make();
  EXPECT_EQ(d->disk_mode(), GetParam());
  std::map<std::string, std::pair<std::string, uint64_t>> model;
  uint64_t seq = 0;
  for (int i = 0; i < 400; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%03d", i % 60);
    if (i % 9 == 3) {
      const Status s = d->del(key, ++seq);  // kNotFound if never written
      ASSERT_TRUE(s.ok() || s.code() == Code::kNotFound) << key;
      model.erase(key);
    } else {
      const std::string v = "v" + std::to_string(i);
      ASSERT_TRUE(d->put(key, v, ++seq).ok());
      model[key] = {v, seq};
    }
  }
  ASSERT_GT(d->num_levels(), 1u);  // the tree actually tiered
  EXPECT_EQ(d->size(), model.size());
  for (int i = 0; i < 60; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%03d", i);
    auto r = d->get(key);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_EQ(r.status().code(), Code::kNotFound) << key;
    } else {
      ASSERT_TRUE(r.ok()) << key;
      EXPECT_EQ(r.value().value, it->second.first) << key;
      EXPECT_EQ(r.value().seq, it->second.second) << key;
    }
  }
  // Definitely-absent keys: exercises the bloom prune (a false positive
  // falls through to the index probe and still returns kNotFound).
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d->get("absent" + std::to_string(i)).status().code(),
              Code::kNotFound);
  }
}

TEST_P(LsmModeTest, ScanMergesRunsShadowsAndDropsTombstones) {
  auto d = make();
  for (int i = 0; i < 120; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "s%03d", i);
    ASSERT_TRUE(d->put(key, "old", uint64_t(i + 1)).ok());
  }
  d->flush_memtable();
  ASSERT_TRUE(d->del("s010", 200).ok());       // tombstone over an old run
  ASSERT_TRUE(d->put("s011", "new", 201).ok());  // memtable shadows the run
  d->flush_memtable();

  auto r = d->scan("s005", "s015", 0);
  ASSERT_TRUE(r.ok());
  std::vector<std::string> keys;
  for (const auto& kv : r.value()) keys.push_back(kv.key);
  // 10 keys in [s005, s015) minus the deleted s010.
  ASSERT_EQ(keys.size(), 9u);
  for (size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
  for (const auto& kv : r.value()) {
    EXPECT_NE(kv.key, "s010");
    if (kv.key == "s011") EXPECT_EQ(kv.value, "new");
  }
  // Open-ended scan with a limit stops early but stays sorted.
  auto lim = d->scan("", "", 7);
  ASSERT_TRUE(lim.ok());
  EXPECT_EQ(lim.value().size(), 7u);
}

TEST_P(LsmModeTest, BloomAblationServesIdenticalResults) {
  auto with = make(/*disable_bloom=*/false);
  auto env_keep = env_;  // make() reassigns env_; keep the first alive
  auto without = make(/*disable_bloom=*/true);
  for (int i = 0; i < 150; ++i) {
    const std::string key = "b" + std::to_string(i % 40);
    ASSERT_TRUE(with->put(key, "v" + std::to_string(i), i + 1).ok());
    ASSERT_TRUE(without->put(key, "v" + std::to_string(i), i + 1).ok());
  }
  for (int i = 0; i < 80; ++i) {
    const std::string key = "b" + std::to_string(i);
    auto a = with->get(key);
    auto b = without->get(key);
    EXPECT_EQ(a.ok(), b.ok()) << key;
    if (a.ok() && b.ok()) EXPECT_EQ(a.value().value, b.value().value) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(MemoryAndDisk, LsmModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "disk" : "memory";
                         });

TEST(BloomFilterTest, NoFalseNegativesLowFalsePositives) {
  BloomFilter bf(10'000);
  for (int i = 0; i < 10'000; ++i) bf.add("member" + std::to_string(i));
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(bf.may_contain("member" + std::to_string(i)));
  }
  int fp = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (bf.may_contain("absent" + std::to_string(i))) ++fp;
  }
  EXPECT_LT(fp, 300);  // ~1% design point, generous 3% bound
}

// ------------------------------ tLog specifics ------------------------------

class LogStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/tlog_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(LogStoreTest, PersistsAcrossReopen) {
  DataletConfig cfg;
  cfg.dir = dir_;
  cfg.sync_every = 1;
  {
    LogStoreDatalet d(cfg);
    d.put("a", "1", 1);
    d.put("b", "2", 2);
    d.del("a", 3);
    d.put("c", "3", 4);
  }
  LogStoreDatalet d2(cfg);
  EXPECT_EQ(d2.size(), 2u);
  EXPECT_EQ(d2.get("b").value().value, "2");
  EXPECT_EQ(d2.get("c").value().value, "3");
  EXPECT_FALSE(d2.get("a").ok());
}

TEST_F(LogStoreTest, TruncatesTornTailOnRecovery) {
  DataletConfig cfg;
  cfg.dir = dir_;
  cfg.sync_every = 1;
  {
    LogStoreDatalet d(cfg);
    d.put("a", "1", 1);
    d.put("b", "2", 2);
  }
  // Simulate a torn write: chop bytes off the end of the log file.
  const std::string path = dir_ + "/datalet.log";
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 3);

  LogStoreDatalet d2(cfg);
  EXPECT_EQ(d2.size(), 1u);
  EXPECT_EQ(d2.get("a").value().value, "1");
  EXPECT_FALSE(d2.get("b").ok());
  // The store must keep working after truncation.
  EXPECT_TRUE(d2.put("c", "3", 3).ok());
  EXPECT_EQ(d2.get("c").value().value, "3");
}

TEST_F(LogStoreTest, CompactionReclaimsDeadRecords) {
  DataletConfig cfg;
  cfg.dir = dir_;
  LogStoreDatalet d(cfg);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      d.put("k" + std::to_string(i), "round" + std::to_string(round), 1);
    }
  }
  const uint64_t before = d.log_bytes();
  auto freed = d.compact();
  ASSERT_TRUE(freed.ok());
  EXPECT_GT(freed.value(), 0u);
  EXPECT_LT(d.log_bytes(), before);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(d.get("k" + std::to_string(i)).value().value, "round19");
  }
}

TEST(LogStoreMemoryMode, WorksWithoutDirectory) {
  LogStoreDatalet d;  // no dir: pure in-memory log
  d.put("x", "y", 1);
  EXPECT_EQ(d.get("x").value().value, "y");
  EXPECT_GT(d.log_bytes(), 0u);
}

// ---------------------------- LockedDatalet ---------------------------------

TEST(LockedDataletTest, ForwardsAndSerializes) {
  LockedDatalet d(make_datalet("tMT", {}));
  EXPECT_STREQ(d.kind(), "tMT");
  EXPECT_TRUE(d.supports_scan());
  d.put("a", "1", 1);
  d.put("b", "2", 2);
  EXPECT_EQ(d.get("a").value().value, "1");
  EXPECT_EQ(d.scan("a", "c", 0).value().size(), 2u);
  EXPECT_EQ(d.size(), 2u);
}

}  // namespace
}  // namespace bespokv
