// Standalone chaos driver for the nightly sweep (not a gtest binary):
//
//   chaos_driver --fabric=sim|thread|tcp --seed=N [--out=DIR] [--ops=K]
//                [--faultplan=FILE]
//
// Derives a FaultPlan from the seed (link drop/duplicate noise plus a
// scheduled crash+restart of shard 0's master) — or replays one dumped by a
// previous failing run / the verify harness via --faultplan — runs a
// retrying client
// workload against an MS+SC cluster on the chosen fabric, and enforces the
// repo's chaos invariant: zero failed acked operations — every op eventually
// succeeds and every acked write reads back its value.
//
// On failure the driver writes the exact FaultPlan JSON and a per-node trace
// dump into --out (uploaded as CI artifacts), so the run can be replayed:
// deterministically on the sim fabric, statistically on the real-time ones.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/net/fault.h"
#include "src/net/tcp_fabric.h"
#include "src/net/thread_fabric.h"
#include "src/obs/trace.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

struct Args {
  std::string fabric = "sim";
  uint64_t seed = 1;
  std::string out = ".";
  int ops = 120;
  int reactors = 0;  // --fabric=tcp: reactor threads per node (0 = default)
  int cores = 1;     // --fabric=sim: per-node service cores
  std::string faultplan;  // replay a dumped FaultPlan instead of deriving one
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--fabric=", 0) == 0) {
      a->fabric = arg.substr(9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      a->seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--out=", 0) == 0) {
      a->out = arg.substr(6);
    } else if (arg.rfind("--ops=", 0) == 0) {
      a->ops = std::atoi(arg.c_str() + 6);
    } else if (arg.rfind("--reactors=", 0) == 0) {
      a->reactors = std::atoi(arg.c_str() + 11);
    } else if (arg.rfind("--cores=", 0) == 0) {
      a->cores = std::atoi(arg.c_str() + 8);
      if (a->cores < 1) {
        std::fprintf(stderr, "--cores must be >= 1\n");
        return false;
      }
    } else if (arg.rfind("--faultplan=", 0) == 0) {
      a->faultplan = arg.substr(12);
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      return false;
    }
  }
  return a->fabric == "sim" || a->fabric == "thread" || a->fabric == "tcp";
}

ClusterOptions chaos_cluster() {
  ClusterOptions o;
  o.topology = Topology::kMasterSlave;
  o.consistency = Consistency::kStrong;
  o.num_shards = 2;
  o.num_replicas = 3;
  o.num_standby = 1;
  o.coordinator.hb_period_us = 100'000;
  o.controlet.hb_period_us = 50'000;
  return o;
}

FaultPlan make_plan(uint64_t seed, const Addr& master);

// The plan either replays a dumped JSON file (--faultplan, e.g. the artifact
// of a previous failing run or of verify_driver) or is derived from the seed.
Result<FaultPlan> resolve_plan(const Args& args, const Addr& master) {
  if (!args.faultplan.empty()) {
    std::ifstream f(args.faultplan);
    if (!f) return Status::NotFound("cannot open " + args.faultplan);
    std::string body((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    auto j = Json::parse(body);
    if (!j.ok()) return j.status();
    // Accept either a bare FaultPlan dump or a full verify-harness Scenario
    // (whose plan sits under "faults") so nightly artifacts replay directly.
    if (j.value().get("faults").is_object()) {
      return FaultPlan::from_json(j.value().get("faults"));
    }
    return FaultPlan::from_json(j.value());
  }
  return make_plan(args.seed, master);
}

FaultPlan make_plan(uint64_t seed, const Addr& master) {
  Rng rng(seed * 7919 + 13);
  FaultPlan p;
  p.seed = seed;
  LinkFault noise;  // everywhere: clients, chain links, heartbeats
  noise.drop = 0.005 * double(1 + rng.next_u64(4));
  noise.duplicate = 0.03;
  // Bound the noise window: faults stop before verification so the cluster
  // can converge. The invariant is "no acked op is lost once faults clear",
  // not "reads succeed while the network is actively being damaged".
  noise.until_us = 8'000'000;
  p.links.push_back(noise);
  NodeFault crash;
  crash.node = master;
  crash.crash_at_us = 200'000 + rng.next_u64(400'000);
  crash.restart_at_us = crash.crash_at_us + 3'000'000;
  p.nodes.push_back(crash);
  return p;
}

using CallFn = std::function<Result<Message>(const Addr&, Message)>;

void dump_failure(const Args& args, const FaultPlan& plan, Cluster& cluster,
                  const CallFn& call) {
  const std::string tag =
      args.fabric + "-seed" + std::to_string(args.seed);
  {
    std::ofstream f(args.out + "/faultplan-" + tag + ".json");
    f << plan.encode() << "\n";
  }
  std::ofstream t(args.out + "/traces-" + tag + ".txt");
  std::vector<Addr> nodes = {cluster.coordinator_addr()};
  for (int s = 0; s < cluster.options().num_shards; ++s) {
    for (int r = 0; r < cluster.options().num_replicas; ++r) {
      nodes.push_back(cluster.controlet_addr(s, r));
    }
  }
  for (const Addr& n : nodes) {
    Message req;
    req.op = Op::kTraceDump;
    auto rep = call(n, std::move(req));
    t << "# node " << n << "\n";
    if (!rep.ok()) {
      t << "# unreachable: " << rep.status().to_string() << "\n";
      continue;
    }
    for (const auto& s : rep.value().strs) t << s << "\n";
  }
  std::fprintf(stderr, "chaos_driver: wrote faultplan-%s.json + traces-%s.txt to %s\n",
               tag.c_str(), tag.c_str(), args.out.c_str());
}

// Returns the number of invariant violations (0 = pass).
int run_workload(const Args& args, SyncKv& kv, const std::function<void()>& settle) {
  Rng rng(args.seed * 101 + 7);
  std::map<std::string, std::string> acked;
  int failed_ops = 0;
  for (int i = 0; i < args.ops; ++i) {
    const std::string key = "c" + std::to_string(rng.next_u64(50));
    const std::string value = "v" + std::to_string(i);
    if (kv.put(key, value).ok()) {
      acked[key] = value;
    } else {
      ++failed_ops;
      std::fprintf(stderr, "chaos_driver: op %d failed outright\n", i);
    }
  }
  settle();
  int lost = 0;
  for (const auto& [key, value] : acked) {
    auto r = kv.get(key, "", ConsistencyLevel::kStrong);
    if (!r.ok() || r.value() != value) {
      ++lost;
      std::fprintf(stderr, "chaos_driver: acked write %s lost (%s)\n",
                   key.c_str(),
                   r.ok() ? "stale value" : r.status().to_string().c_str());
    }
  }
  if (acked.empty()) {
    std::fprintf(stderr, "chaos_driver: no op was ever acked\n");
    return 1;
  }
  return failed_ops + lost;
}

int run_sim(const Args& args) {
  SimFabricOpts fopts;
  fopts.seed = args.seed;
  ClusterOptions copts = chaos_cluster();
  copts.sim_node.cores = args.cores;
  testing::SimEnv env(copts, fopts);
  auto plan_r = resolve_plan(args, env.cluster.controlet_addr(0, 0));
  if (!plan_r.ok()) {
    std::fprintf(stderr, "chaos_driver: bad --faultplan: %s\n",
                 plan_r.status().to_string().c_str());
    return 2;
  }
  const FaultPlan plan = plan_r.value();
  env.sim.set_fault_injector(std::make_shared<FaultInjector>(plan));
  Runtime* admin = env.cluster.admin();
  admin->post([admin, &env, plan] {
    schedule_node_faults(*admin, env.sim, plan);
  });

  SyncKv kv = env.client();
  kv.set_attempts(12);
  const int bad = run_workload(args, kv, [&env] { env.settle(3'000'000); });
  if (bad != 0) {
    dump_failure(args, plan, env.cluster, [&env](const Addr& a, Message m) {
      return env.call(a, std::move(m));
    });
  }
  return bad == 0 ? 0 : 1;
}

// Fab is ThreadFabric or TcpFabric — call_sync is per-fabric, not on Fabric.
template <typename Fab>
int run_real(const Args& args, Fab& fab) {
  Cluster cluster(fab, chaos_cluster());
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  auto plan_r = resolve_plan(args, cluster.controlet_addr(0, 0));
  if (!plan_r.ok()) {
    std::fprintf(stderr, "chaos_driver: bad --faultplan: %s\n",
                 plan_r.status().to_string().c_str());
    return 2;
  }
  const FaultPlan plan = plan_r.value();
  fab.set_fault_injector(std::make_shared<FaultInjector>(plan));
  Runtime* admin = cluster.admin();
  admin->post([admin, &fab, plan] { schedule_node_faults(*admin, fab, plan); });

  const CallFn call = [&fab](const Addr& a, Message m) {
    return fab.call_sync(a, std::move(m), 500'000);
  };
  SyncKv kv(call, cluster.coordinator_addr());
  kv.set_attempts(12);
  kv.set_backoff_us(20'000);
  const int bad = run_workload(args, kv, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1'500));
  });
  if (bad != 0) dump_failure(args, plan, cluster, call);
  return bad == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bespokv

int main(int argc, char** argv) {
  bespokv::Args args;
  if (!bespokv::parse_args(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: chaos_driver --fabric=sim|thread|tcp --seed=N "
                 "[--out=DIR] [--ops=K] [--faultplan=FILE] "
                 "[--reactors=N] [--cores=N]\n");
    return 2;
  }
  std::fprintf(stderr, "chaos_driver: fabric=%s seed=%llu ops=%d reactors=%d "
               "cores=%d\n",
               args.fabric.c_str(),
               static_cast<unsigned long long>(args.seed), args.ops,
               args.reactors, args.cores);
  int rc = 0;
  if (args.fabric == "sim") {
    rc = bespokv::run_sim(args);
  } else if (args.fabric == "thread") {
    bespokv::ThreadFabric fab;
    rc = bespokv::run_real(args, fab);
  } else {
    bespokv::TcpFabricOpts topts;
    topts.reactors = args.reactors;
    bespokv::TcpFabric fab(topts);
    rc = bespokv::run_real(args, fab);
  }
  std::fprintf(stderr, "chaos_driver: %s\n", rc == 0 ? "PASS" : "FAIL");
  return rc;
}
