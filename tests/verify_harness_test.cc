// End-to-end tests of the verification harness: scenario JSON round-trips,
// deterministic scenario execution, randomized sweeps across all four
// topology x consistency configs, multi-key SCAN snapshot consistency, the
// deliberately injected stale-read bug being caught, and the shrinker
// minimizing a failing scenario to a tiny reproducible witness.
//
// Sweep sizes honor BKV_VERIFY_SEEDS / BKV_SCAN_SEEDS so the nightly job can
// widen them without slowing the tier-1 suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/verify/runner.h"
#include "src/verify/shrinker.h"

namespace bespokv::verify {
namespace {

int env_int(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atoi(v) : dflt;
}

struct Config {
  Topology t;
  Consistency c;
  const char* name;
};
const Config kConfigs[] = {
    {Topology::kMasterSlave, Consistency::kStrong, "ms_sc"},
    {Topology::kMasterSlave, Consistency::kEventual, "ms_ec"},
    {Topology::kActiveActive, Consistency::kStrong, "aa_sc"},
    {Topology::kActiveActive, Consistency::kEventual, "aa_ec"},
};

// ----------------------------- scenario codec -------------------------------

TEST(ScenarioCodec, RandomScenariosRoundTripThroughJson) {
  for (const Config& cfg : kConfigs) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      Scenario s = Scenario::random(seed, cfg.t, cfg.c);
      auto rt = Scenario::decode(s.encode());
      ASSERT_TRUE(rt.ok()) << cfg.name << " seed " << seed << ": "
                           << rt.status().to_string();
      EXPECT_EQ(rt.value().encode(), s.encode())
          << cfg.name << " seed " << seed;
    }
  }
}

TEST(ScenarioCodec, GenerationIsDeterministicPerSeed) {
  const Scenario a =
      Scenario::random(9, Topology::kMasterSlave, Consistency::kEventual);
  const Scenario b =
      Scenario::random(9, Topology::kMasterSlave, Consistency::kEventual);
  EXPECT_EQ(a.encode(), b.encode());
  const Scenario c =
      Scenario::random(10, Topology::kMasterSlave, Consistency::kEventual);
  EXPECT_NE(a.encode(), c.encode());
}

TEST(ScenarioCodec, EcScenariosNeverDrawDropsOrCrashes) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Scenario s =
        Scenario::random(seed, Topology::kMasterSlave, Consistency::kEventual);
    EXPECT_TRUE(s.faults.nodes.empty()) << seed;
    for (const auto& l : s.faults.links) EXPECT_EQ(l.drop, 0.0) << seed;
  }
}

TEST(ScenarioCodec, RejectsMalformedInput) {
  EXPECT_FALSE(Scenario::decode("{\"topology\": \"ring\"}").ok());
  EXPECT_FALSE(Scenario::decode("{\"bug\": \"heisenbug\"}").ok());
  EXPECT_FALSE(Scenario::decode("{\"clients\": 0}").ok());
  EXPECT_FALSE(Scenario::decode("not json").ok());
}

// --------------------------- runner determinism -----------------------------

// A small, fault-free scan-heavy scenario under MS+SC (tMT datalets).
Scenario scan_scenario(uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.topology = Topology::kMasterSlave;
  s.consistency = Consistency::kStrong;
  s.shards = 2;  // scans merge across shards
  s.replicas = 3;
  s.clients = 3;
  s.ops_per_client = 12;
  s.workload.num_keys = 12;
  s.workload.key_size = 8;
  s.workload.value_size = 8;
  s.workload.get_ratio = 0.2;
  s.workload.scan_ratio = 0.5;
  s.workload.del_ratio = 0.0;
  s.workload.scan_span = 12;
  s.workload.seed = seed;
  s.gap_us = 500;
  s.settle_us = 200'000;
  return s;
}

TEST(Runner, SameScenarioYieldsIdenticalHistoryAndVerdict) {
  const Scenario s = scan_scenario(1);
  RunResult a = run_scenario(s);
  RunResult b = run_scenario(s);
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << b.error;
  EXPECT_EQ(a.history.to_json().dump(0), b.history.to_json().dump(0));
  EXPECT_EQ(a.report.verdict, b.report.verdict);
}

// ------------------------- randomized config sweep --------------------------

TEST(VerifySweep, RandomScenariosHoldTheirGuarantees) {
  const int seeds = env_int("BKV_VERIFY_SEEDS", 2);
  for (const Config& cfg : kConfigs) {
    for (uint64_t seed = 1; seed <= uint64_t(seeds); ++seed) {
      const Scenario s = Scenario::random(seed, cfg.t, cfg.c);
      RunResult r = run_scenario(s);
      ASSERT_TRUE(r.completed) << cfg.name << " seed " << seed << ": "
                               << r.error;
      EXPECT_EQ(r.report.verdict, Verdict::kOk)
          << cfg.name << " seed " << seed << ": " << r.report.to_string()
          << "\n" << r.history.dump();
      EXPECT_GT(r.history.size(), 0u) << cfg.name << " seed " << seed;
      // Guard against a vacuous pass: most ops must have genuinely acked.
      size_t acked = 0;
      for (const Op& op : r.history.ops()) {
        if (op.outcome == Outcome::kOk) ++acked;
      }
      EXPECT_GT(acked, r.history.size() / 2) << cfg.name << " seed " << seed;
    }
  }
}

// --------------------- partitions and split-brain (ISSUE 5) ----------------

TEST(Partitions, PartitionScenariosRoundTripAndAreDeterministic) {
  Scenario a = Scenario::random(3, Topology::kMasterSlave,
                                Consistency::kStrong, /*partitions=*/true);
  ASSERT_FALSE(a.faults.partitions.empty());
  auto rt = Scenario::decode(a.encode());
  ASSERT_TRUE(rt.ok()) << rt.status().to_string();
  EXPECT_EQ(rt.value().encode(), a.encode());
  const Scenario b = Scenario::random(3, Topology::kMasterSlave,
                                      Consistency::kStrong, true);
  EXPECT_EQ(a.encode(), b.encode());

  // disable_fencing survives the codec (it is part of the repro artifact).
  a.disable_fencing = true;
  auto rt2 = Scenario::decode(a.encode());
  ASSERT_TRUE(rt2.ok());
  EXPECT_TRUE(rt2.value().disable_fencing);
}

TEST(Partitions, EcScenariosDrawOnlyClientIslands) {
  // A cluster-interior cut under EC legitimately loses unflushed acks; the
  // generator must confine EC partitions to verification-client islands.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (Topology t : {Topology::kMasterSlave, Topology::kActiveActive}) {
      Scenario s = Scenario::random(seed, t, Consistency::kEventual, true);
      ASSERT_EQ(s.faults.partitions.size(), 1u) << seed;
      ASSERT_EQ(s.faults.partitions[0].a.size(), 1u) << seed;
      EXPECT_EQ(s.faults.partitions[0].a[0].rfind("verify/", 0), 0u) << seed;
      EXPECT_NE(s.faults.partitions[0].until_us, 0u) << seed;  // always heals
    }
  }
}

TEST(Partitions, RandomPartitionScenariosHoldTheirGuarantees) {
  const int seeds = env_int("BKV_PARTITION_SEEDS", 1);
  for (const Config& cfg : kConfigs) {
    for (uint64_t seed = 1; seed <= uint64_t(seeds); ++seed) {
      const Scenario s = Scenario::random(seed, cfg.t, cfg.c, true);
      RunResult r = run_scenario(s);
      ASSERT_TRUE(r.completed) << cfg.name << " seed " << seed << ": "
                               << r.error;
      EXPECT_EQ(r.report.verdict, Verdict::kOk)
          << cfg.name << " seed " << seed << ": " << r.report.to_string()
          << "\n" << r.history.dump();
    }
  }
}

// The scripted acceptance pair: an asymmetric partition cuts the master off
// from the coordinator (heartbeats lost) while clients and chain peers still
// reach it. With fencing the master self-fences before the coordinator
// promotes, so no acked write is lost; with fencing force-disabled the
// deposed master keeps acking stale-epoch writes that the promoted head's
// writes shadow — and the checker must catch exactly that.
TEST(Partitions, SplitBrainWithFencingLosesNoAckedWrite) {
  RunResult r = run_scenario(Scenario::split_brain(7));
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.report.verdict, Verdict::kOk) << r.report.to_string();
  // Guard against a vacuous pass: the run must have real acked traffic.
  size_t acked = 0;
  for (const Op& op : r.history.ops()) {
    if (op.outcome == Outcome::kOk) ++acked;
  }
  EXPECT_GT(acked, r.history.size() / 2);
}

TEST(Partitions, SplitBrainWithoutFencingIsCaughtByTheChecker) {
  Scenario sc = Scenario::split_brain(7);
  sc.disable_fencing = true;
  RunResult r = run_scenario(sc);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_TRUE(r.violation())
      << "unfenced split-brain produced no violation — the oracle is blind";
}

// ---------------------- whole-cluster power loss ----------------------------
// The ISSUE 7 paired durability gate: with WAL-backed engines a full-cluster
// power cut (torn tails included) must lose no acked write; with the WAL
// disabled the same cut must provably lose them. BKV_CRASH_SEEDS widens the
// sweep for the nightly crash-recovery job.

TEST(CrashAll, PowerLossWithWalLosesNoAckedWrite) {
  const int seeds = env_int("BKV_CRASH_SEEDS", 2);
  const Config crash_configs[] = {
      {Topology::kMasterSlave, Consistency::kStrong, "ms_sc"},
      {Topology::kActiveActive, Consistency::kEventual, "aa_ec"},
  };
  for (const Config& cfg : crash_configs) {
    for (uint64_t seed = 1; seed <= uint64_t(seeds); ++seed) {
      Scenario sc = Scenario::crash_all(seed, cfg.t, cfg.c,
                                        /*wal_enabled=*/true);
      RunResult r = run_scenario(sc);
      ASSERT_TRUE(r.completed) << cfg.name << " seed " << seed << ": "
                               << r.error;
      EXPECT_EQ(r.report.verdict, Verdict::kOk)
          << cfg.name << " seed " << seed << ": " << r.report.to_string();
      // Guard against a vacuous pass: real acked traffic, and acked ops on
      // BOTH sides of the outage — someone must have read the recovered
      // state. (Retries can absorb the outage without any failed op, so
      // "failures exist" would be the wrong guard.)
      ASSERT_EQ(sc.faults.crash_all.size(), 1u);
      const uint64_t recovered_at =
          sc.faults.crash_all[0].at_us + sc.faults.crash_all[0].restart_after_us;
      size_t acked = 0, acked_before = 0, acked_after = 0;
      for (const Op& op : r.history.ops()) {
        if (op.outcome != Outcome::kOk) continue;
        ++acked;
        if (op.res != kNoResponse && op.res < sc.faults.crash_all[0].at_us) {
          ++acked_before;
        }
        if (op.inv > recovered_at) ++acked_after;
      }
      EXPECT_GT(acked, r.history.size() / 4) << cfg.name << " seed " << seed;
      EXPECT_GT(acked_before, 0u)
          << cfg.name << " seed " << seed
          << ": nothing was acked before the power cut";
      EXPECT_GT(acked_after, 0u)
          << cfg.name << " seed " << seed
          << ": no op ran against the recovered cluster";
    }
  }
}

TEST(CrashAll, PowerLossWithoutWalIsCaughtByTheChecker) {
  const int seeds = env_int("BKV_CRASH_SEEDS", 2);
  int caught = 0;
  for (uint64_t seed = 1; seed <= uint64_t(seeds); ++seed) {
    Scenario sc = Scenario::crash_all(seed, Topology::kMasterSlave,
                                      Consistency::kStrong,
                                      /*wal_enabled=*/false);
    RunResult r = run_scenario(sc);
    ASSERT_TRUE(r.completed) << "seed " << seed << ": " << r.error;
    if (r.violation()) ++caught;
  }
  // Every seed loses acked writes when nothing is on disk; if none is
  // flagged the checker cannot see what the WAL protects against.
  EXPECT_EQ(caught, seeds)
      << "WAL-disabled power loss went unnoticed — the durability oracle is "
         "blind";
}

TEST(CrashAll, ScenariosRoundTripAndAreDeterministic) {
  const Scenario a = Scenario::crash_all(5, Topology::kActiveActive,
                                         Consistency::kEventual, true);
  const Scenario b = Scenario::crash_all(5, Topology::kActiveActive,
                                         Consistency::kEventual, true);
  EXPECT_EQ(a.encode(), b.encode());
  ASSERT_EQ(a.faults.crash_all.size(), 1u);
  EXPECT_TRUE(a.durability.enabled);
  auto rt = Scenario::decode(a.encode());
  ASSERT_TRUE(rt.ok()) << rt.status().to_string();
  EXPECT_EQ(rt.value().encode(), a.encode());
  ASSERT_EQ(rt.value().faults.crash_all.size(), 1u);
  EXPECT_EQ(rt.value().faults.crash_all[0].at_us, a.faults.crash_all[0].at_us);
  // Re-running the same scenario is bit-identical (determinism through the
  // crash/recovery path, not just generation).
  RunResult r1 = run_scenario(a);
  RunResult r2 = run_scenario(a);
  ASSERT_TRUE(r1.completed && r2.completed);
  EXPECT_EQ(r1.history.to_json().dump(), r2.history.to_json().dump());
  EXPECT_EQ(r1.report.verdict, r2.report.verdict);
}

// ------------------------ multi-key SCAN snapshots --------------------------

TEST(ScanSnapshot, PrefixConsistentPerKeyAcrossSeeds) {
  const int seeds = env_int("BKV_SCAN_SEEDS", 32);
  size_t scans_with_data = 0;
  for (uint64_t seed = 1; seed <= uint64_t(seeds); ++seed) {
    RunResult r = run_scenario(scan_scenario(seed));
    ASSERT_TRUE(r.completed) << "seed " << seed << ": " << r.error;
    // The runner always checks scan sessions: no key a client saw may ever
    // travel backward in datalet version order across its scans.
    EXPECT_EQ(r.report.verdict, Verdict::kOk)
        << "seed " << seed << ": " << r.report.to_string() << "\n"
        << r.history.dump();
    for (const Op& op : r.history.ops()) {
      if (op.kind == OpKind::kScan && !op.scan_kvs.empty()) ++scans_with_data;
    }
  }
  // The property is vacuous unless scans actually observed keys.
  EXPECT_GT(scans_with_data, 0u);
}

// Regression: seeds where the harness originally caught a real write-retry
// resurrection bug — a retried PUT whose first attempt had applied was
// re-executed with a fresh version (after a chain-ack loss, and separately
// after a failover wiped the head's dedup state), moving the old value after
// writes that landed in between. Fixed by pinning token -> version and
// replicating the pin down the chain (ControletBase::pin_token_version).
TEST(VerifySweep, RetryResurrectionSeedsStayFixed) {
  const struct {
    Topology t;
    Consistency c;
    uint64_t seed;
  } kFixed[] = {
      {Topology::kMasterSlave, Consistency::kStrong, 5},    // chain-ack loss
      {Topology::kMasterSlave, Consistency::kStrong, 56},   // failover
      {Topology::kMasterSlave, Consistency::kEventual, 54}, // live transition
  };
  for (const auto& f : kFixed) {
    RunResult r = run_scenario(Scenario::random(f.seed, f.t, f.c));
    ASSERT_TRUE(r.completed) << "seed " << f.seed << ": " << r.error;
    EXPECT_EQ(r.report.verdict, Verdict::kOk)
        << "seed " << f.seed << ": " << r.report.to_string();
  }
}

// -------------------- injected bug & shrinker (tentpole) --------------------

// MS+SC scenario with the stale-read-cache bug armed and a little benign
// network noise for the shrinker to peel off.
Scenario bug_scenario(uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.topology = Topology::kMasterSlave;
  s.consistency = Consistency::kStrong;
  s.shards = 1;
  s.replicas = 3;
  s.clients = 3;
  s.ops_per_client = 15;
  s.workload.num_keys = 4;  // hot keys: overwrites happen fast
  s.workload.key_size = 8;
  s.workload.value_size = 8;
  s.workload.get_ratio = 0.5;
  s.workload.scan_ratio = 0.0;
  s.workload.del_ratio = 0.0;
  s.workload.seed = seed;
  s.gap_us = 800;
  RandomFaultOpts fo;
  fo.drops = false;
  fo.duplicates = true;
  fo.delays = true;
  fo.reorders = false;
  fo.window_us = 60'000;
  s.faults = FaultPlan::random(seed, fo);
  s.bug = BugKind::kStaleReadCache;
  s.bug_rate = 0.5;
  s.settle_us = 200'000;
  return s;
}

uint64_t violating_bug_seed() {
  static uint64_t cached = [] {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      if (run_scenario(bug_scenario(seed)).violation()) return seed;
    }
    return uint64_t(0);
  }();
  return cached;
}

TEST(BugInjection, StaleReadCacheIsCaught) {
  const uint64_t seed = violating_bug_seed();
  ASSERT_NE(seed, 0u) << "no seed in 1..10 tripped the injected bug";
  RunResult r = run_scenario(bug_scenario(seed));
  ASSERT_TRUE(r.violation()) << r.report.to_string();
  EXPECT_EQ(r.report.violation, "linearizability");
  EXPECT_FALSE(r.report.op_ids.empty());
}

TEST(Shrinker, MinimizesInjectedViolationToATinyWitness) {
  const uint64_t seed = violating_bug_seed();
  ASSERT_NE(seed, 0u);
  ShrinkOptions so;
  so.max_runs = 150;
  ShrinkResult sr = shrink(bug_scenario(seed), so);
  ASSERT_TRUE(sr.final_run.violation()) << sr.final_run.report.to_string();
  EXPECT_LE(sr.minimal_ops, 10u) << sr.minimal.encode();
  EXPECT_LE(sr.minimal.faults.links.size() + sr.minimal.faults.nodes.size(),
            2u)
      << sr.minimal.encode();
  EXPECT_LT(sr.minimal_ops, sr.original_ops);

  // The dumped artifact alone must reproduce the violation: decode the
  // minimal scenario's JSON and re-run it from scratch.
  auto replay = Scenario::decode(sr.minimal.encode());
  ASSERT_TRUE(replay.ok()) << replay.status().to_string();
  RunResult again = run_scenario(replay.value());
  EXPECT_TRUE(again.violation()) << again.report.to_string();
  EXPECT_EQ(again.report.violation, sr.final_run.report.violation);
}

TEST(Shrinker, ReturnsInputUnchangedWhenNothingReproduces) {
  ShrinkOptions so;
  so.max_runs = 10;
  so.run = [](const Scenario& s) {
    RunResult r;
    r.scenario = s;
    r.completed = true;  // report stays kOk
    return r;
  };
  const Scenario s = bug_scenario(1);
  ShrinkResult sr = shrink(s, so);
  EXPECT_EQ(sr.runs, 1);
  EXPECT_EQ(sr.minimal.encode(), s.encode());
}

TEST(Shrinker, GreedyPassesRespectTheRunBudget) {
  // Synthetic predicate: "violation" whenever clients > 1 — the shrinker
  // must walk clients down to 2 and stop, without exceeding its budget.
  ShrinkOptions so;
  so.max_runs = 50;
  so.run = [](const Scenario& s) {
    RunResult r;
    r.scenario = s;
    r.completed = true;
    if (s.clients > 1) {
      r.report.verdict = Verdict::kViolation;
      r.report.violation = "synthetic";
    }
    return r;
  };
  Scenario s = bug_scenario(1);
  s.clients = 16;
  ShrinkResult sr = shrink(s, so);
  EXPECT_EQ(sr.minimal.clients, 2);  // smallest count still "violating"
  EXPECT_LE(sr.runs, 50);
}

}  // namespace
}  // namespace bespokv::verify
