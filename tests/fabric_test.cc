// ThreadFabric and TcpFabric tests: the same services and full clusters run
// under real threads and real loopback sockets (framing, partial I/O,
// peer-death detection), not just the DES.
#include <gtest/gtest.h>

#include <atomic>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/datalet/locked.h"
#include "src/datalet/service.h"
#include "src/net/tcp_fabric.h"
#include "src/net/thread_fabric.h"
#include "src/obs/metrics.h"

namespace bespokv {
namespace {

class CounterService : public Service {
 public:
  void handle(const Addr&, Message req, Replier reply) override {
    ++handled;
    Message rep = Message::reply(Code::kOk, req.key);
    rep.seq = handled.load();
    reply(std::move(rep));
  }
  std::atomic<uint64_t> handled{0};
};

// ------------------------------ ThreadFabric --------------------------------

TEST(ThreadFabricTest, CallSyncRoundTrip) {
  ThreadFabric fab;
  auto svc = std::make_shared<CounterService>();
  fab.add_node("svc", svc);
  auto r = fab.call_sync("svc", Message::get("hello"));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().value, "hello");
  EXPECT_EQ(svc->handled.load(), 1u);
}

TEST(ThreadFabricTest, ManyConcurrentExternalCalls) {
  ThreadFabric fab;
  auto svc = std::make_shared<CounterService>();
  fab.add_node("svc", svc);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&fab, &failures] {
      for (int i = 0; i < 100; ++i) {
        auto r = fab.call_sync("svc", Message::get("k"));
        if (!r.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(svc->handled.load(), 400u);
}

TEST(ThreadFabricTest, DeadNodeTimesOut) {
  ThreadFabric fab;
  fab.add_node("svc", std::make_shared<CounterService>());
  fab.kill("svc");
  auto r = fab.call_sync("svc", Message::get("k"), /*timeout_us=*/100'000);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Code::kTimeout);
}

TEST(ThreadFabricTest, PartitionBlocksThenHeals) {
  ThreadFabric fab;
  auto svc = std::make_shared<CounterService>();
  fab.add_node("svc", svc);
  fab.partition("__external__", "svc", true);
  auto r = fab.call_sync("svc", Message::get("k"), 100'000);
  EXPECT_EQ(r.status().code(), Code::kTimeout);
  fab.partition("__external__", "svc", false);
  r = fab.call_sync("svc", Message::get("k"));
  EXPECT_TRUE(r.ok());
}

TEST(ThreadFabricTest, TimersFireUnderRealTime) {
  ThreadFabric fab;
  std::atomic<int> fired{0};
  Runtime* rt = fab.add_node("t", std::make_shared<LambdaService>(
      [](Runtime&, const Addr&, Message, Replier r) {
        r(Message::reply(Code::kOk));
      }));
  rt->post([rt, &fired] {
    rt->set_timer(20'000, [&fired] { ++fired; });
    rt->set_periodic(15'000, [&fired] { ++fired; });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GE(fired.load(), 3);
}

TEST(ThreadFabricTest, FullClusterPutGet) {
  ThreadFabric fab;
  ClusterOptions o;
  o.topology = Topology::kMasterSlave;
  o.consistency = Consistency::kEventual;
  o.num_shards = 2;
  Cluster cluster(fab, o);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  SyncKv kv([&fab](const Addr& a, Message m) { return fab.call_sync(a, std::move(m)); },
            cluster.coordinator_addr());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < 30; ++i) {
    auto r = kv.get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(r.value(), "v" + std::to_string(i));
  }
}

TEST(ThreadFabricTest, FullClusterStrongChain) {
  ThreadFabric fab;
  ClusterOptions o;
  o.topology = Topology::kMasterSlave;
  o.consistency = Consistency::kStrong;
  Cluster cluster(fab, o);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  SyncKv kv([&fab](const Addr& a, Message m) { return fab.call_sync(a, std::move(m)); },
            cluster.coordinator_addr());
  ASSERT_TRUE(kv.put("k", "v").ok());
  // Chain replication: the ack implies all replicas committed.
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(cluster.datalet(0, r)->get("k").ok()) << r;
  }
  EXPECT_EQ(kv.get("k").value(), "v");
}

// ------------------------------- TcpFabric ----------------------------------

TEST(TcpFabricTest, CallSyncOverRealSockets) {
  TcpFabric fab;
  auto svc = std::make_shared<CounterService>();
  const Addr addr = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  ASSERT_NE(fab.add_node(addr, svc), nullptr);
  auto r = fab.call_sync(addr, Message::get("over-tcp"));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value().value, "over-tcp");
}

TEST(TcpFabricTest, LargePayloadCrossesFraming) {
  TcpFabric fab;
  const Addr addr = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  auto engine = std::make_shared<LockedDatalet>(make_datalet("tHT", {}));
  fab.add_node(addr, std::make_shared<DataletService>(engine));
  // 4 MiB value: exercises partial reads/writes and buffer growth.
  std::string big(4 * 1024 * 1024, 'x');
  big[12345] = 'y';
  auto w = fab.call_sync(addr, Message::put("big", big), 10'000'000);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w.value().code, Code::kOk);
  auto r = fab.call_sync(addr, Message::get("big"), 10'000'000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, big);
}

TEST(TcpFabricTest, NodeToNodeRpc) {
  TcpFabric fab;
  const Addr a1 = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  const Addr a2 = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  auto backend = std::make_shared<CounterService>();
  fab.add_node(a2, backend);
  // A forwarding service: proxies every request to a2 (two TCP hops).
  fab.add_node(a1, std::make_shared<LambdaService>(
      [a2](Runtime& rt, const Addr&, Message req, Replier reply) {
        rt.call(a2, std::move(req), [reply](Status s, Message rep) {
          reply(s.ok() ? std::move(rep) : Message::reply(Code::kUnavailable));
        });
      }));
  auto r = fab.call_sync(a1, Message::get("fwd"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value, "fwd");
  EXPECT_EQ(backend->handled.load(), 1u);
}

TEST(TcpFabricTest, DeadPeerTimesOut) {
  TcpFabric fab;
  const Addr addr = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  fab.add_node(addr, std::make_shared<CounterService>());
  fab.kill(addr);
  auto r = fab.call_sync(addr, Message::get("k"), 200'000);
  EXPECT_FALSE(r.ok());
}

TEST(TcpFabricTest, StatsCountSendsFlushesAndPartitionDrops) {
  TcpFabric fab;
  const Addr a1 = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  const Addr a2 = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  fab.add_node(a2, std::make_shared<CounterService>());
  fab.add_node(a1, std::make_shared<LambdaService>(
      [a2](Runtime& rt, const Addr&, Message req, Replier reply) {
        rt.call(a2, std::move(req), [reply](Status s, Message rep) {
          reply(s.ok() ? std::move(rep) : Message::reply(Code::kUnavailable));
        });
      }));

  // Network counters live in each node's registry; scrape them over the
  // wire like any other client would.
  const auto net_stats = [&fab](const Addr& a) {
    Message req;
    req.op = Op::kStats;
    auto rep = fab.call_sync(a, std::move(req));
    EXPECT_TRUE(rep.ok()) << rep.status().to_string();
    auto snap = obs::MetricsSnapshot::from_json(rep.value().value);
    EXPECT_TRUE(snap.ok()) << snap.status().to_string();
    return snap.value_or(obs::MetricsSnapshot{});
  };

  for (int i = 0; i < 5; ++i) {
    auto r = fab.call_sync(a1, Message::get("s" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << i;
  }
  const auto sent = net_stats(a1);
  EXPECT_GE(sent.counter("net.msgs_sent"), 5u);  // five proxied requests left a1
  EXPECT_GT(sent.counter("net.bytes_sent"), 0u);
  EXPECT_GT(sent.counter("net.flushes"), 0u);
  // Coalescing never inflates flushes.
  EXPECT_LE(sent.counter("net.flushes"), sent.counter("net.msgs_sent"));
  EXPECT_EQ(sent.counter("net.msgs_dropped"), 0u);

  // Partition a1 -> a2: proxied calls are dropped on the floor and counted,
  // surfacing what used to be a silent drop in ship().
  fab.partition(a1, a2, true);
  auto r = fab.call_sync(a1, Message::get("cut"), 300'000);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(net_stats(a1).counter("net.msgs_dropped"), 1u);

  fab.partition(a1, a2, false);
  auto healed = fab.call_sync(a1, Message::get("healed"));
  EXPECT_TRUE(healed.ok());
}

TEST(TcpFabricTest, FullClusterOverLoopback) {
  TcpFabric fab;
  ClusterOptions o;
  o.topology = Topology::kMasterSlave;
  o.consistency = Consistency::kStrong;
  o.num_shards = 1;
  o.num_replicas = 3;
  Cluster cluster(fab, o);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  SyncKv kv([&fab](const Addr& a, Message m) { return fab.call_sync(a, std::move(m)); },
            cluster.coordinator_addr());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").ok()) << i;
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(kv.get("k" + std::to_string(i)).ok()) << i;
  }
  auto missing = kv.get("zzz");
  EXPECT_EQ(missing.status().code(), Code::kNotFound);
}

}  // namespace
}  // namespace bespokv
