// Client resilience tests: idempotency-token dedup (exactly-once retried
// writes), retry/backoff across failover, hedged GETs, the kMaybeApplied
// contract, and restart catch-up (a revived replica resyncs before serving).
#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

obs::MetricsSnapshot scrape(SimEnv& env, const Addr& node) {
  Message req;
  req.op = Op::kStats;
  auto rep = env.call(node, std::move(req));
  EXPECT_TRUE(rep.ok()) << rep.status().to_string();
  auto snap = obs::MetricsSnapshot::from_json(rep.value().value);
  EXPECT_TRUE(snap.ok()) << snap.status().to_string();
  return snap.value_or(obs::MetricsSnapshot{});
}

// A replayed PUT with the same idempotency token applies exactly once: the
// second send is answered from the dedup window, not re-executed, so the
// stored value stays the first attempt's.
TEST(DedupTest, ReplayedPutAppliesExactlyOnce) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong, 1));
  const Addr master = env.cluster.controlet_addr(0, 0);
  // Strong MS reads serve at the chain tail, not the master.
  const Addr tail = env.cluster.controlet_addr(0, 2);

  Message first = Message::put("dk", "v-original");
  first.token = 0xfeed;
  auto r1 = env.call(master, std::move(first));
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1.value().code, Code::kOk);

  // Same token, different payload — models a client retry whose first attempt
  // actually landed (the ack was lost). Must be served from the window.
  Message replay = Message::put("dk", "v-replayed");
  replay.token = 0xfeed;
  auto r2 = env.call(master, std::move(replay));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().code, Code::kOk);  // acked again...
  auto g = env.call(tail, Message::get("dk"));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().value, "v-original");  // ...but not re-applied

  EXPECT_GE(scrape(env, master).counter("controlet.dedup_hits"), 1u);

  // A fresh token is a distinct logical write and does apply.
  Message fresh = Message::put("dk", "v-new");
  fresh.token = 0xfeee;
  ASSERT_EQ(env.call(master, std::move(fresh)).value().code, Code::kOk);
  EXPECT_EQ(env.call(tail, Message::get("dk")).value().value, "v-new");
}

TEST(DedupTest, TokensFlowThroughTheClientLibrary) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong, 1));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("a", "1").ok());
  ASSERT_TRUE(kv.put("a", "2").ok());  // distinct tokens: both apply
  EXPECT_EQ(kv.get("a").value_or(""), "2");
  // No replay happened, so the dedup window saw only fresh tokens.
  EXPECT_EQ(scrape(env, env.cluster.controlet_addr(0, 0))
                .counter("controlet.dedup_hits"),
            0u);
}

TEST(KvClientResilienceTest, RetriesRideOutMasterFailover) {
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong, 1);
  o.num_standby = 1;
  o.coordinator.hb_period_us = 100'000;
  o.controlet.hb_period_us = 50'000;
  SimEnv env(std::move(o));

  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* rt = env.sim.add_node("res/c",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  ClientConfig ccfg{env.cluster.coordinator_addr()};
  ccfg.rpc_timeout_us = 300'000;
  ccfg.retries = 8;
  ccfg.backoff_base_us = 10'000;
  ccfg.backoff_max_us = 100'000;
  auto kv = std::make_shared<KvClient>(rt, ccfg);

  Status before = Status::Internal("pending");
  Status after = Status::Internal("pending");
  env.sim.post_to("res/c", [&, kv] {
    kv->connect([&, kv](Status) {
      kv->put("k1", "v1", [&](Status s) { before = s; });
    });
  });
  env.settle(500'000);
  ASSERT_TRUE(before.ok()) << before.to_string();

  env.cluster.kill_controlet(0, 0);  // crash the master mid-session
  env.sim.post_to("res/c", [&, kv] {
    kv->put("k2", "v2", [&](Status s) { after = s; });
  });
  env.settle(6'000'000);  // detection + failover + client retries
  ASSERT_TRUE(after.ok()) << after.to_string();
  EXPECT_GE(rt->obs().metrics().counter("client.retry").value(), 1u);

  // The write survived the failover and is visible through a fresh read.
  std::string got;
  env.sim.post_to("res/c", [&, kv] {
    kv->get("k2", [&](Result<std::string> r) { got = r.value_or("<err>"); },
            "", ConsistencyLevel::kStrong);
  });
  env.settle(1'000'000);
  EXPECT_EQ(got, "v2");
}

TEST(KvClientResilienceTest, HedgedGetsMaskSlowReplica) {
  // Eventual reads spread across replicas; with one replica dead, reads
  // routed to it would sit on the full RPC timeout. Hedging fires after
  // hedge_after_us and the alternate replica answers instead.
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* rt = env.sim.add_node("res/h",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  ClientConfig ccfg{env.cluster.coordinator_addr()};
  ccfg.rpc_timeout_us = 2'000'000;
  ccfg.hedge_after_us = 10'000;
  auto kv = std::make_shared<KvClient>(rt, ccfg);

  Status put_s = Status::Internal("pending");
  env.sim.post_to("res/h", [&, kv] {
    kv->connect([&, kv](Status) {
      kv->put("hk", "hv", [&](Status s) { put_s = s; });
    });
  });
  env.settle(500'000);  // connect + put + async propagation to the slaves
  ASSERT_TRUE(put_s.ok());

  env.cluster.kill_controlet(0, 2);  // a slave; no failover needed for reads
  int ok = 0, total = 30;
  auto next = std::make_shared<std::function<void(int)>>();
  *next = [&, kv](int i) {
    if (i == total) return;
    kv->get("hk", [&, i](Result<std::string> r) {
      if (r.ok() && r.value() == "hv") ++ok;
      (*next)(i + 1);
    });
  };
  env.sim.post_to("res/h", [&] { (*next)(0); });
  env.settle(5'000'000);
  EXPECT_EQ(ok, total);  // every read completed despite the dead replica
  // Some primaries were the dead replica, so hedges fired and won.
  EXPECT_GE(rt->obs().metrics().counter("client.hedge").value(), 1u);
  EXPECT_GE(rt->obs().metrics().counter("client.hedge_wins").value(), 1u);
}

TEST(KvClientResilienceTest, ExhaustedWriteTimeoutIsMaybeApplied) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong, 1));
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* rt = env.sim.add_node("res/m",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  ClientConfig ccfg{env.cluster.coordinator_addr()};
  ccfg.rpc_timeout_us = 200'000;
  ccfg.retries = 0;  // no second chance: the ambiguity must surface
  auto kv = std::make_shared<KvClient>(rt, ccfg);

  Status connect_s = Status::Internal("pending");
  env.sim.post_to("res/m", [&, kv] {
    kv->connect([&](Status s) { connect_s = s; });
  });
  env.settle(300'000);
  ASSERT_TRUE(connect_s.ok());

  // Cut the client->master link: the PUT is lost in flight, so the client
  // cannot know whether it was applied.
  env.sim.partition("res/m", env.cluster.controlet_addr(0, 0), true);
  Status s = Status::Internal("pending");
  env.sim.post_to("res/m", [&, kv] {
    kv->put("mk", "mv", [&](Status st) { s = st; });
  });
  env.settle(2'000'000);
  EXPECT_EQ(s.code(), Code::kMaybeApplied) << s.to_string();
  EXPECT_GE(rt->obs().metrics().counter("client.maybe_applied").value(), 1u);
}

// A replica killed and revived in place must resync (catch up) before it
// serves again: under MS+EC the chain predecessor has writes the dead node
// missed; recover.catchup records the completed resync.
TEST(RestartCatchupTest, MsEcReplicaRejoinsWithMissedWrites) {
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kEventual, 1);
  // Slow failure detection way down: this test exercises the fast-restart
  // path, where the node comes back *before* the coordinator evicts it.
  o.coordinator.hb_period_us = 10'000'000;
  SimEnv env(std::move(o));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("warm", "w").ok());
  env.settle(300'000);

  env.cluster.kill_controlet(0, 1);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("r" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  // Revive before the coordinator's eviction deadline (3 x 1s by default):
  // the node is still in the shard map and catches up from its predecessor.
  ASSERT_TRUE(env.cluster.restart_controlet(0, 1));
  env.settle(2'000'000);

  EXPECT_FALSE(env.cluster.controlet(0, 1)->is_retired());
  EXPECT_GE(scrape(env, env.cluster.controlet_addr(0, 1))
                .counter("recover.catchup"),
            1u);
  for (int i = 0; i < 20; ++i) {
    auto e = env.cluster.datalet(0, 1)->get("r" + std::to_string(i));
    EXPECT_TRUE(e.ok()) << "replica missing write r" << i << " after catch-up";
  }
}

// Under AA+EC the restarted active replays the shared log (the authoritative
// order), not a peer snapshot.
TEST(RestartCatchupTest, AaEcActiveReplaysSharedLog) {
  ClusterOptions o = small_cluster(Topology::kActiveActive,
                                   Consistency::kEventual, 1);
  o.coordinator.hb_period_us = 10'000'000;  // fast-restart path: no eviction
  SimEnv env(std::move(o));
  // Short per-attempt timeout: attempts salted onto the dead active fail
  // fast instead of burning the default 2s each.
  SyncKv kv(
      [&env](const Addr& a, Message m) {
        return env.call(a, std::move(m), 400'000);
      },
      env.cluster.coordinator_addr());
  kv.set_attempts(6);  // writes salted onto the dead active must re-route
  ASSERT_TRUE(kv.put("warm", "w").ok());
  env.settle(300'000);

  env.cluster.kill_controlet(0, 1);
  int acked = 0;
  for (int i = 0; i < 20; ++i) {
    if (kv.put("a" + std::to_string(i), "v" + std::to_string(i)).ok()) ++acked;
  }
  EXPECT_EQ(acked, 20);  // retries re-salt around the dead active
  ASSERT_TRUE(env.cluster.restart_controlet(0, 1));
  env.settle(2'000'000);

  EXPECT_GE(scrape(env, env.cluster.controlet_addr(0, 1))
                .counter("recover.catchup"),
            1u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(env.cluster.datalet(0, 1)->get("a" + std::to_string(i)).ok())
        << "active missing log entry a" << i << " after replay";
  }
}

}  // namespace
}  // namespace bespokv
