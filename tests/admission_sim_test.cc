// Admission control / load shedding tests (DESIGN.md "Admission control &
// overload"): the AdmissionController decision logic (queue bound, deadline-
// aware drop, retry-after hint sizing), and end-to-end shedding in a
// simulated cluster — overload produces kOverloaded with a backpressure
// hint, replication traffic is never shed, the client library backs off and
// recovers, and the admit.* counters are scrapable over kStats.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/controlet/admission.h"
#include "src/obs/metrics.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

TEST(AdmissionController, DisabledAdmitsEverything) {
  AdmissionController ac;  // max_inflight = 0 => off
  uint64_t hint = 0;
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_TRUE(ac.admit(1'000'000, &hint));
  }
  EXPECT_EQ(ac.inflight(), 0u);  // disabled controller tracks nothing
}

TEST(AdmissionController, QueueBoundSheds) {
  AdmissionConfig cfg;
  cfg.max_inflight = 2;
  AdmissionController ac(cfg);
  uint64_t hint = 0;
  EXPECT_TRUE(ac.admit(0, &hint));
  EXPECT_TRUE(ac.admit(0, &hint));
  EXPECT_FALSE(ac.admit(0, &hint));  // third concurrent op: queue full
  EXPECT_EQ(ac.inflight(), 2u);
  ac.complete(1'000, 0);  // one finishes...
  EXPECT_TRUE(ac.admit(0, &hint));  // ...freeing a slot
}

TEST(AdmissionController, DeadlineShedsOnBacklog) {
  AdmissionConfig cfg;
  cfg.max_inflight = 1'000;
  cfg.deadline_us = 5'000;
  AdmissionController ac(cfg);
  uint64_t hint = 0;
  EXPECT_TRUE(ac.admit(4'999, &hint));   // just under the deadline: admit
  // Ingress backlog alone blows the deadline: shed, with the hint sized to
  // the predicted wait so backed-off retries arrive after the drain.
  EXPECT_TRUE(ac.should_shed(20'000, &hint));
  EXPECT_GE(hint, 20'000u);
  EXPECT_LE(hint, 10'000'000u);  // hint is capped at 10s
}

TEST(AdmissionController, DeadlineShedsViaEmaTimesInflight) {
  AdmissionConfig cfg;
  cfg.max_inflight = 1'000;
  cfg.deadline_us = 5'000;
  cfg.ema_alpha = 1.0;  // EMA == last sample, for test determinism
  AdmissionController ac(cfg);
  uint64_t hint = 0;
  ASSERT_TRUE(ac.admit(0, &hint));
  ac.complete(2'000, 0);  // one completed op took 2ms
  // Three inflight ops at ~2ms each predict 6ms > 5ms deadline.
  ASSERT_TRUE(ac.admit(0, &hint));
  ASSERT_TRUE(ac.admit(0, &hint));
  ASSERT_TRUE(ac.admit(0, &hint));
  EXPECT_FALSE(ac.admit(0, &hint));
  EXPECT_GE(hint, 5'000u);
}

TEST(ShedSim, OverloadShedsWithRetryAfterHint) {
  // One slow shard (20ms per op => ~50 ops/s) with a tight admission bound:
  // a burst of raw concurrent PUTs must split into admitted ops and
  // kOverloaded rejections whose `seq` carries a non-zero retry-after hint.
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong, /*shards=*/1);
  o.sim_node.base_service_us = 20'000;
  o.controlet.admission.max_inflight = 4;
  o.controlet.admission.deadline_us = 100'000;
  SimEnv env(o);

  const Addr master = env.cluster.controlet_addr(0, 0);
  Runtime* rt = env.cluster.admin();
  auto oks = std::make_shared<int>(0);
  auto sheds = std::make_shared<int>(0);
  auto max_hint = std::make_shared<uint64_t>(0);
  const int kBurst = 40;
  auto remaining = std::make_shared<int>(kBurst);
  rt->post([&, rt] {
    for (int i = 0; i < kBurst; ++i) {
      rt->call(master, Message::put("burst" + std::to_string(i), "v"),
               [=](Status s, Message rep) {
                 --*remaining;
                 if (!s.ok()) return;
                 if (rep.code == Code::kOk) ++*oks;
                 if (rep.code == Code::kOverloaded) {
                   ++*sheds;
                   *max_hint = std::max(*max_hint, rep.seq);
                 }
               },
               5'000'000);
    }
  });
  while (*remaining > 0 && !env.sim.idle()) env.sim.run_for(100'000);

  EXPECT_GT(*oks, 0);    // the admitted set was served
  EXPECT_GT(*sheds, 0);  // the excess was rejected, not queued to death
  EXPECT_GT(*max_hint, 0u) << "shed replies must carry a retry-after hint";

  // The admit.* counters are visible over the kStats admin surface.
  Message stats;
  stats.op = Op::kStats;
  auto rep = env.call(master, std::move(stats));
  ASSERT_TRUE(rep.ok());
  auto snap = obs::MetricsSnapshot::from_json(rep.value().value);
  ASSERT_TRUE(snap.ok());
  EXPECT_GT(snap.value().counter("admit.shed"), 0u);
  EXPECT_GT(snap.value().counter("admit.admitted"), 0u);
}

TEST(ShedSim, ClientBackoffRidesOutOverload) {
  // The client library, pointed at an overloaded shard, must honor the
  // retry-after hint and eventually land its write instead of surfacing
  // kOverloaded to the caller.
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong, /*shards=*/1);
  o.sim_node.base_service_us = 10'000;
  o.controlet.admission.max_inflight = 2;
  o.controlet.admission.deadline_us = 100'000;
  SimEnv env(o);

  // Saturate the shard with a background burst of raw writes.
  const Addr master = env.cluster.controlet_addr(0, 0);
  Runtime* rt = env.cluster.admin();
  rt->post([&, rt] {
    for (int i = 0; i < 30; ++i) {
      rt->call(master, Message::put("bg" + std::to_string(i), "v"),
               [](Status, Message) {}, 5'000'000);
    }
  });
  env.settle(5'000);

  // The library call retries through the overload and succeeds.
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("important", "payload").ok());
  auto r = kv.get("important");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), "payload");
}

TEST(ShedSim, ReplicationTrafficIsNeverShed) {
  // With admission so tight that client bursts shed, every *admitted* write
  // must still replicate: chain forwards (internal ops) bypass admission,
  // so an admitted PUT is durable on the whole chain even under overload.
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong, /*shards=*/1);
  o.sim_node.base_service_us = 5'000;
  o.controlet.admission.max_inflight = 1;
  o.controlet.admission.deadline_us = 50'000;
  SimEnv env(o);

  const Addr master = env.cluster.controlet_addr(0, 0);
  Runtime* rt = env.cluster.admin();
  auto acked = std::make_shared<std::vector<std::string>>();
  auto remaining = std::make_shared<int>(20);
  rt->post([&, rt] {
    for (int i = 0; i < 20; ++i) {
      const std::string key = "rep" + std::to_string(i);
      rt->call(master, Message::put(key, "v"),
               [=](Status s, Message rep) {
                 --*remaining;
                 if (s.ok() && rep.code == Code::kOk) acked->push_back(key);
               },
               5'000'000);
    }
  });
  while (*remaining > 0 && !env.sim.idle()) env.sim.run_for(100'000);
  env.settle(500'000);

  ASSERT_GT(acked->size(), 0u);
  for (const std::string& key : *acked) {
    for (int replica = 0; replica < 3; ++replica) {
      auto hit = env.cluster.datalet(0, replica)->get(key);
      EXPECT_TRUE(hit.ok()) << key << " missing on replica " << replica;
    }
  }
}

}  // namespace
}  // namespace bespokv
