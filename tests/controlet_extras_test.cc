// Controlet-level tests: the P2P topology overlay (§IV-E), snapshot
// transfer, propagation batching, lock accounting, and the event-bus
// extension hook running inside a live controlet.
#include <gtest/gtest.h>

#include "src/controlet/aa_sc.h"
#include "src/controlet/ms_ec.h"
#include "src/controlet/ms_sc.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

ClusterOptions p2p_cluster(Topology t, Consistency c) {
  ClusterOptions o = small_cluster(t, c, /*shards=*/3, /*replicas=*/3);
  o.controlet.p2p_forwarding = true;
  return o;
}

TEST(P2PTopology, AnyControletAcceptsAnyWrite) {
  SimEnv env(p2p_cluster(Topology::kMasterSlave, Consistency::kEventual));
  // Every key to every controlet: each request must succeed, either served
  // locally or routed through the finger-table-like shard-map lookup.
  for (int i = 0; i < 30; ++i) {
    const int shard = i % 3;
    const int replica = (i / 3) % 3;
    auto rep = env.call(env.cluster.controlet_addr(shard, replica),
                        Message::put("p2p" + std::to_string(i), "v"));
    ASSERT_TRUE(rep.ok()) << i;
    EXPECT_EQ(rep.value().code, Code::kOk) << i;
  }
  env.settle(300'000);
  SyncKv kv = env.client();
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(kv.get("p2p" + std::to_string(i)).ok()) << i;
  }
}

TEST(P2PTopology, AnyControletServesStrongReadsUnderMsSc) {
  SimEnv env(p2p_cluster(Topology::kMasterSlave, Consistency::kStrong));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  // Without P2P, a strong read at a head bounces (kNotLeader); with the
  // overlay it is forwarded to the key's tail.
  for (int shard = 0; shard < 3; ++shard) {
    for (int replica = 0; replica < 3; ++replica) {
      auto rep = env.call(env.cluster.controlet_addr(shard, replica),
                          Message::get("k"));
      ASSERT_TRUE(rep.ok());
      EXPECT_EQ(rep.value().code, Code::kOk)
          << "shard " << shard << " replica " << replica;
      EXPECT_EQ(rep.value().value, "v");
    }
  }
}

TEST(P2PTopology, DisabledByDefaultStillBounces) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 2));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  // A write sent to a slave must bounce when forwarding is off.
  auto rep = env.call(env.cluster.controlet_addr(0, 1), Message::put("x", "y"));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kNotLeader);
}

TEST(Snapshot, TransfersFullStateWithVersions) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SyncKv kv = env.client();
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  Message req;
  req.op = Op::kSnapshotReq;
  auto rep = env.call(env.cluster.controlet_addr(0, 0), std::move(req));
  ASSERT_TRUE(rep.ok());
  ASSERT_EQ(rep.value().code, Code::kOk);
  EXPECT_EQ(rep.value().kvs.size(), 25u);
  for (const auto& kv_entry : rep.value().kvs) {
    EXPECT_GT(kv_entry.seq, 0u) << kv_entry.key;  // versions preserved
  }
  // The version high-water mark rides along for counter seeding.
  EXPECT_GT(rep.value().seq, 0u);
}

TEST(MsEcInternals, PropagationIsBatched) {
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kEventual, 1);
  o.controlet.flush_period_us = 50'000;  // slow timer: size-triggered flushes
  o.controlet.flush_batch = 16;
  SimEnv env(std::move(o));
  SyncKv kv = env.client();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").ok());
  }
  env.settle(300'000);
  auto* master = dynamic_cast<MsEcControlet*>(env.cluster.controlet(0, 0).get());
  ASSERT_NE(master, nullptr);
  // 64 writes in batches of <=16: at least 4 batches, far fewer than 64.
  EXPECT_GE(master->batches_sent(), 4u);
  EXPECT_LE(master->batches_sent(), 20u);
  EXPECT_EQ(master->pending_propagations(), 0u);  // fully drained
}

TEST(AaScInternals, LocksAreTakenPerOperation) {
  SimEnv env(small_cluster(Topology::kActiveActive, Consistency::kStrong, 1));
  SyncKv kv = env.client();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kv.get("k" + std::to_string(i)).ok());
  }
  uint64_t grants = 0;
  for (int r = 0; r < 3; ++r) {
    auto* c = dynamic_cast<AaScControlet*>(env.cluster.controlet(0, r).get());
    ASSERT_NE(c, nullptr);
    grants += c->lock_grants();
  }
  EXPECT_EQ(grants, 20u);  // one write lock per put, one read lock per get
}

TEST(MsScInternals, ChainWritesCountHopsTimesOps) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong, 1));
  SyncKv kv = env.client();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").ok());
  }
  uint64_t chain_ops = 0;
  for (int r = 0; r < 3; ++r) {
    auto* c = dynamic_cast<MsScControlet*>(env.cluster.controlet(0, r).get());
    ASSERT_NE(c, nullptr);
    chain_ops += c->chain_writes();
  }
  EXPECT_EQ(chain_ops, 30u);  // every write visits all three chain nodes
}

// A user-defined controlet extension via the event bus (Appendix B): counts
// PUTs and rejects a poisoned key, with the stock controlet handling the
// rest. Demonstrates the programmability probe end-to-end on a live node.
class AuditedMsEcControlet : public MsEcControlet {
 public:
  explicit AuditedMsEcControlet(ControletConfig cfg)
      : MsEcControlet(std::move(cfg)) {
    bus_.on("PUT", [this](EventContext& ctx) {
      ++audited_puts;
      if (ctx.req.key == "forbidden") {
        ctx.reply(Message::reply(Code::kInvalid, "audited: rejected"));
        return;
      }
      do_write(std::move(ctx));
    });
  }
  int audited_puts = 0;
};

TEST(EventExtension, CustomHandlerInterceptsWrites) {
  SimFabric sim;
  // Hand-build a single-shard cluster with the custom controlet as master.
  ShardMap map;
  map.topology = Topology::kMasterSlave;
  map.consistency = Consistency::kEventual;
  ShardInfo si;
  si.id = 0;
  si.replicas = {ReplicaInfo{"audited/m"}, ReplicaInfo{"audited/s"}};
  map.shards.push_back(si);
  CoordinatorConfig ccfg;
  auto coord = std::make_shared<CoordinatorService>(map, ccfg);
  sim.add_node("audited/coord", coord);

  ControletConfig base;
  base.coordinator = "audited/coord";
  base.shard = 0;
  base.datalet = std::shared_ptr<Datalet>(make_datalet("tHT", {}));
  auto master = std::make_shared<AuditedMsEcControlet>(base);
  sim.add_node("audited/m", master);
  ControletConfig scfg = base;
  scfg.datalet = std::shared_ptr<Datalet>(make_datalet("tHT", {}));
  sim.add_node("audited/s", std::make_shared<MsEcControlet>(scfg));
  sim.run_for(300'000);

  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* client = sim.add_node("audited/client",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  Code ok_code = Code::kInternal, bad_code = Code::kInternal;
  sim.post_to("audited/client", [&] {
    client->call("audited/m", Message::put("fine", "v"),
                 [&](Status, Message rep) { ok_code = rep.code; });
    client->call("audited/m", Message::put("forbidden", "v"),
                 [&](Status, Message rep) { bad_code = rep.code; });
  });
  sim.run_for(500'000);
  EXPECT_EQ(ok_code, Code::kOk);
  EXPECT_EQ(bad_code, Code::kInvalid);
  EXPECT_EQ(master->audited_puts, 2);
  EXPECT_TRUE(master->datalet()->get("fine").ok());
  EXPECT_FALSE(master->datalet()->get("forbidden").ok());
}

}  // namespace
}  // namespace bespokv
