// Baseline-system tests: the Twemproxy/Dynomite-like proxies and the
// Cassandra/Voldemort-like natively-distributed stores behave per their
// real-world counterparts (Table I capabilities, §VIII-E/F semantics).
#include <gtest/gtest.h>

#include "src/baselines/native.h"
#include "src/baselines/proxies.h"
#include "src/baselines/redis_like.h"
#include "src/net/sim_fabric.h"

namespace bespokv {
namespace {

using baselines::DynomiteConfig;
using baselines::DynomiteLike;
using baselines::NativeStoreConfig;
using baselines::NativeStoreNode;
using baselines::RedisLikeBackend;
using baselines::RedisLikeConfig;
using baselines::TwemproxyConfig;
using baselines::TwemproxyLike;

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture() {
    SimNodeOpts copts;
    copts.is_client = true;
    client_ = sim_.add_node("client",
                            std::make_shared<LambdaService>(
                                [](Runtime&, const Addr&, Message, Replier r) {
                                  r(Message::reply(Code::kInvalid));
                                }),
                            copts);
  }

  Result<Message> call(const Addr& dst, Message req) {
    auto done = std::make_shared<bool>(false);
    auto out = std::make_shared<Result<Message>>(Status::Internal("pending"));
    sim_.post_to("client", [&, req = std::move(req)]() mutable {
      client_->call(dst, std::move(req),
                    [done, out](Status s, Message m) {
                      *out = s.ok() ? Result<Message>(std::move(m))
                                    : Result<Message>(s);
                      *done = true;
                    });
    });
    while (!*done && !sim_.idle()) sim_.run_for(1'000);
    return *out;
  }

  SimFabric sim_;
  Runtime* client_;
};

// ---------------------------- RedisLikeBackend ------------------------------

TEST_F(BaselineFixture, RedisBackendReplicatesToSlavesAsync) {
  auto slave1 = std::make_shared<RedisLikeBackend>();
  auto slave2 = std::make_shared<RedisLikeBackend>();
  sim_.add_node("r-s1", slave1);
  sim_.add_node("r-s2", slave2);
  RedisLikeConfig mcfg;
  mcfg.slaves = {"r-s1", "r-s2"};
  auto master = std::make_shared<RedisLikeBackend>(mcfg);
  sim_.add_node("r-m", master);

  ASSERT_EQ(call("r-m", Message::put("k", "v")).value().code, Code::kOk);
  // Master has it immediately; slaves only after the replication flush.
  EXPECT_TRUE(master->engine()->get("k").ok());
  sim_.run_for(200'000);
  EXPECT_TRUE(slave1->engine()->get("k").ok());
  EXPECT_TRUE(slave2->engine()->get("k").ok());

  ASSERT_EQ(call("r-m", Message::del("k")).value().code, Code::kOk);
  sim_.run_for(200'000);
  EXPECT_FALSE(slave1->engine()->get("k").ok());
}

// ------------------------------- Twemproxy ----------------------------------

TEST_F(BaselineFixture, TwemproxyShardsAcrossPoolsAndSpreadsReads) {
  std::vector<std::shared_ptr<RedisLikeBackend>> backends;
  TwemproxyConfig cfg;
  for (int s = 0; s < 2; ++s) {
    baselines::ProxyShard shard;
    for (int r = 0; r < 2; ++r) {
      const Addr a = "be" + std::to_string(s) + "_" + std::to_string(r);
      RedisLikeConfig bcfg;
      if (r == 0) bcfg.slaves = {"be" + std::to_string(s) + "_1"};
      auto b = std::make_shared<RedisLikeBackend>(bcfg);
      sim_.add_node(a, b);
      backends.push_back(b);
      shard.backends.push_back(a);
    }
    cfg.shards.push_back(shard);
  }
  sim_.add_node("twem", std::make_shared<TwemproxyLike>(cfg));

  for (int i = 0; i < 40; ++i) {
    ASSERT_EQ(call("twem", Message::put("k" + std::to_string(i), "v")).value().code,
              Code::kOk);
  }
  sim_.run_for(300'000);
  // Sharding: both pools' masters hold some keys.
  EXPECT_GT(backends[0]->engine()->size(), 0u);
  EXPECT_GT(backends[2]->engine()->size(), 0u);
  // Reads are served (possibly by a slave replica).
  for (int i = 0; i < 40; ++i) {
    auto r = call("twem", Message::get("k" + std::to_string(i)));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().code, Code::kOk) << i;
  }
}

// -------------------------------- Dynomite ----------------------------------

TEST_F(BaselineFixture, DynomiteAaReplicationConverges) {
  // One shard, 3 replicas: proxy + local backend per replica.
  for (int r = 0; r < 3; ++r) {
    sim_.add_node("dyn-be" + std::to_string(r),
                  std::make_shared<RedisLikeBackend>());
  }
  std::vector<std::shared_ptr<DynomiteLike>> proxies;
  for (int r = 0; r < 3; ++r) {
    DynomiteConfig cfg;
    cfg.local_backend = "dyn-be" + std::to_string(r);
    for (int p = 0; p < 3; ++p) {
      if (p != r) cfg.peer_proxies.push_back("dyn-px" + std::to_string(p));
    }
    auto px = std::make_shared<DynomiteLike>(cfg);
    proxies.push_back(px);
    sim_.add_node("dyn-px" + std::to_string(r), px);
  }
  // Writes land on different proxies (AA).
  ASSERT_EQ(call("dyn-px0", Message::put("a", "1")).value().code, Code::kOk);
  ASSERT_EQ(call("dyn-px1", Message::put("b", "2")).value().code, Code::kOk);
  ASSERT_EQ(call("dyn-px2", Message::put("c", "3")).value().code, Code::kOk);
  sim_.run_for(300'000);
  // All replicas converge on the union.
  for (int r = 0; r < 3; ++r) {
    auto rep = call("dyn-px" + std::to_string(r), Message::get("a"));
    EXPECT_EQ(rep.value().code, Code::kOk) << r;
    rep = call("dyn-px" + std::to_string(r), Message::get("b"));
    EXPECT_EQ(rep.value().code, Code::kOk) << r;
  }
}

// ------------------------------ native stores -------------------------------

class NativeStoreTest : public BaselineFixture,
                        public ::testing::WithParamInterface<const char*> {};

TEST_P(NativeStoreTest, CoordinatorPathReplicatesAndReads) {
  std::vector<Addr> ring;
  for (int i = 0; i < 4; ++i) ring.push_back("native" + std::to_string(i));
  std::vector<std::shared_ptr<NativeStoreNode>> nodes;
  for (int i = 0; i < 4; ++i) {
    NativeStoreConfig cfg;
    cfg.ring = ring;
    cfg.my_index = static_cast<size_t>(i);
    cfg.engine = GetParam();
    auto n = std::make_shared<NativeStoreNode>(cfg);
    nodes.push_back(n);
    sim_.add_node(ring[static_cast<size_t>(i)], n);
  }
  // Any node accepts any key (coordinator forwarding).
  for (int i = 0; i < 40; ++i) {
    const Addr entry = ring[static_cast<size_t>(i % 4)];
    ASSERT_EQ(call(entry, Message::put("k" + std::to_string(i), "v")).value().code,
              Code::kOk)
        << i;
  }
  sim_.run_for(300'000);
  for (int i = 0; i < 40; ++i) {
    const Addr entry = ring[static_cast<size_t>((i + 1) % 4)];
    auto r = call(entry, Message::get("k" + std::to_string(i)));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().code, Code::kOk) << i;
    EXPECT_EQ(r.value().value, "v");
  }
  // Replication factor 3: each key lives on 3 of the 4 engines.
  int copies = 0;
  for (const auto& n : nodes) {
    if (n->engine()->get("k0").ok()) ++copies;
  }
  EXPECT_EQ(copies, 3);
}

INSTANTIATE_TEST_SUITE_P(Engines, NativeStoreTest,
                         ::testing::Values("tLSM", "tHT"),
                         [](const auto& info) {
                           return std::string(info.param) == "tLSM"
                                      ? "CassandraLike"
                                      : "VoldemortLike";
                         });

}  // namespace
}  // namespace bespokv
