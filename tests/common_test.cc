#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "src/common/byte_buffer.h"
#include "src/common/hash.h"
#include "src/common/hash_ring.h"
#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace bespokv {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("key missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: key missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(Code::kOutOfRange); ++i) {
    EXPECT_STRNE(code_name(static_cast<Code>(i)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> bad(Status::Timeout());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), Code::kTimeout);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(HashTest, Fnv1aMatchesKnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, Crc32cMatchesKnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
  EXPECT_EQ(crc32c("123456789"), 0xe3069283u);
}

TEST(HashTest, Mix64IsInvertibleQuality) {
  // Distinct inputs should not collide over a modest sweep.
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10'000; ++i) {
    seen.insert(mix64(i));
  }
  EXPECT_EQ(seen.size(), 10'000u);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const uint64_t v = r.next_u64(10);
    EXPECT_LT(v, 10u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfianTest, SkewsTowardFewKeys) {
  ZipfianGenerator z(100'000, 0.99, 3);
  std::map<uint64_t, uint64_t> counts;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) counts[z.next()]++;
  // The most popular key should dominate a uniform key's share massively.
  uint64_t max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, static_cast<uint64_t>(n) / 1000);  // >>2 for uniform
  // But the tail must still be broad (scrambling works).
  EXPECT_GT(counts.size(), 10'000u);
}

TEST(ZipfianTest, RanksWithinBounds) {
  ZipfianGenerator z(1000, 0.99, 9);
  for (int i = 0; i < 50'000; ++i) {
    EXPECT_LT(z.next(), 1000u);
  }
}

TEST(HashRingTest, LookupIsStable) {
  HashRing ring;
  ring.add_node("a");
  ring.add_node("b");
  ring.add_node("c");
  auto r1 = ring.lookup("key42");
  auto r2 = ring.lookup("key42");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value(), r2.value());
}

TEST(HashRingTest, BalancedDistribution) {
  HashRing ring;
  for (int i = 0; i < 8; ++i) ring.add_node("node" + std::to_string(i));
  std::map<std::string, int> counts;
  for (int i = 0; i < 80'000; ++i) {
    counts[ring.lookup("key" + std::to_string(i)).value()]++;
  }
  for (const auto& [node, c] : counts) {
    EXPECT_GT(c, 80'000 / 8 / 2) << node;   // within 2x of fair share
    EXPECT_LT(c, 80'000 / 8 * 2) << node;
  }
}

TEST(HashRingTest, MinimalDisruptionOnRemoval) {
  HashRing ring;
  for (int i = 0; i < 10; ++i) ring.add_node("node" + std::to_string(i));
  std::map<std::string, std::string> before;
  for (int i = 0; i < 10'000; ++i) {
    std::string k = "key" + std::to_string(i);
    before[k] = ring.lookup(k).value();
  }
  ring.remove_node("node3");
  int moved = 0;
  for (const auto& [k, owner] : before) {
    const std::string now = ring.lookup(k).value();
    if (owner != "node3") {
      EXPECT_EQ(now, owner);  // consistent hashing: survivors keep their keys
    } else {
      ++moved;
      EXPECT_NE(now, "node3");
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, 10'000 / 4);  // roughly 1/10 of keys lived on node3
}

TEST(HashRingTest, LookupNReturnsDistinctNodes) {
  HashRing ring;
  for (int i = 0; i < 5; ++i) ring.add_node("n" + std::to_string(i));
  auto reps = ring.lookup_n("some-key", 3);
  ASSERT_EQ(reps.size(), 3u);
  std::set<std::string> uniq(reps.begin(), reps.end());
  EXPECT_EQ(uniq.size(), 3u);
}

TEST(HashRingTest, EmptyRingFails) {
  HashRing ring;
  EXPECT_FALSE(ring.lookup("k").ok());
  EXPECT_TRUE(ring.lookup_n("k", 2).empty());
}

TEST(HistogramTest, PercentilesApproximate) {
  Histogram h;
  for (uint64_t v = 1; v <= 10'000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10'000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10'000u);
  const uint64_t p50 = h.percentile(0.5);
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.10);
  const uint64_t p99 = h.percentile(0.99);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 9900.0 * 0.10);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, MergeIntoEmptyAndFromEmpty) {
  Histogram empty, filled;
  for (uint64_t v : {3u, 70u, 9000u}) filled.record(v);

  Histogram into_empty;  // empty.merge(filled) adopts min/max/count
  into_empty.merge(filled);
  EXPECT_TRUE(into_empty == filled);
  EXPECT_EQ(into_empty.min(), 3u);
  EXPECT_EQ(into_empty.max(), 9000u);

  Histogram copy = filled;  // filled.merge(empty) is a no-op
  copy.merge(empty);
  EXPECT_TRUE(copy == filled);
  EXPECT_EQ(copy.count(), 3u);
}

TEST(HistogramTest, ResetClearsMinMax) {
  Histogram h;
  h.record(5);
  h.record(500);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  // A post-reset recording must re-establish min from scratch, not keep the
  // pre-reset floor.
  h.record(77);
  EXPECT_EQ(h.min(), 77u);
  EXPECT_EQ(h.max(), 77u);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, ValuesBeyondTopBucketStayOrdered) {
  Histogram h;
  h.record(UINT64_MAX);
  h.record(UINT64_MAX - 1);
  h.record(1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  // Percentiles saturate at the top bucket rather than overflowing or
  // wrapping: p99 must be enormous and never below a mid-range value.
  EXPECT_GE(h.percentile(0.99), h.percentile(0.50));
  EXPECT_GT(h.percentile(0.99), 1u << 30);
}

TEST(HistogramTest, EncodeDecodeRoundTripsExactly) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; v += 7) h.record(v * v);
  Histogram back;
  ASSERT_TRUE(Histogram::decode(h.encode(), &back));
  EXPECT_TRUE(back == h);
  EXPECT_EQ(back.percentile(0.5), h.percentile(0.5));

  Histogram empty, eback;  // empty round-trips the min sentinel
  ASSERT_TRUE(Histogram::decode(empty.encode(), &eback));
  EXPECT_TRUE(eback == empty);
  EXPECT_EQ(eback.min(), 0u);
}

TEST(HistogramTest, DecodeRejectsMalformedText) {
  Histogram out;
  EXPECT_FALSE(Histogram::decode("", &out));
  EXPECT_FALSE(Histogram::decode("not numbers", &out));
  EXPECT_FALSE(Histogram::decode("1 2 3", &out));              // truncated
  EXPECT_FALSE(Histogram::decode("1 10 10 10 999999:1", &out));  // bad index
  EXPECT_FALSE(Histogram::decode("2 10 5 5 0:1", &out));  // bucket sum != count
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_TRUE(Json::parse("true").value().as_bool());
  EXPECT_FALSE(Json::parse("false").value().as_bool(true));
  EXPECT_EQ(Json::parse("42").value().as_int(), 42);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").value().as_number(), -250.0);
  EXPECT_EQ(Json::parse("\"hi\\n\"").value().as_string(), "hi\n");
}

TEST(JsonTest, ParsesNested) {
  auto r = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": {"e": true}})");
  ASSERT_TRUE(r.ok());
  const Json& j = r.value();
  EXPECT_EQ(j.get("a").size(), 3u);
  EXPECT_EQ(j.get("a").at(2).get("b").as_string(), "c");
  EXPECT_TRUE(j.get("d").get("e").as_bool());
  EXPECT_TRUE(j.get("missing").is_null());
}

TEST(JsonTest, ToleratesCommentsAndTrailingCommas) {
  auto r = Json::parse("{\n // config\n \"x\": 1,\n}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().get("x").as_int(), 1);
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::parse("12 34").ok());
}

TEST(JsonTest, RoundTrips) {
  const std::string src =
      R"({"consistency_model":"strong","num_replicas":2,"topology":"ms","zk":"192.168.0.173:2181"})";
  auto j = Json::parse(src);
  ASSERT_TRUE(j.ok());
  auto again = Json::parse(j.value().dump());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get("topology").as_string(), "ms");
  EXPECT_EQ(again.value().get("num_replicas").as_int(), 2);
  EXPECT_EQ(j.value().dump(), again.value().dump());
}

TEST(JsonTest, EscapesOnDump) {
  Json j = Json::object();
  j.set("k", Json::string("a\"b\\c\nd"));
  auto back = Json::parse(j.dump());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().get("k").as_string(), "a\"b\\c\nd");
}

TEST(ByteBufferTest, AppendConsumeFifo) {
  ByteBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  b.append("hello ");
  b.append("world");
  EXPECT_EQ(b.readable(), "hello world");
  b.consume(6);
  EXPECT_EQ(b.readable(), "world");
  EXPECT_EQ(b.size(), 5u);
  b.consume(5);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.readable(), "");
}

TEST(ByteBufferTest, ViewsStableAcrossPartialConsume) {
  // The invariant flush() relies on: iovecs built from readable() stay valid
  // while the consume-walk advances the read cursor.
  ByteBuffer b;
  b.append("abcdefgh");
  std::string_view v = b.readable();
  const char* base = v.data();
  b.consume(3);
  EXPECT_EQ(b.readable().data(), base + 3);
  EXPECT_EQ(b.readable(), "defgh");
  EXPECT_EQ(std::string_view(base, 8), "abcdefgh");  // old view still intact
}

TEST(ByteBufferTest, FullDrainResetsOffset) {
  ByteBuffer b;
  b.append("xyz");
  b.consume(3);
  EXPECT_EQ(b.read_offset(), 0u);
  b.append("next");
  EXPECT_EQ(b.readable(), "next");
}

TEST(ByteBufferTest, PrepareCommitZeroCopyWrite) {
  ByteBuffer b;
  b.append("head-");
  char* dst = b.prepare(16);
  std::memcpy(dst, "tail", 4);
  b.commit(4);
  EXPECT_EQ(b.readable(), "head-tail");
  // commit(0) discards the whole prepared region.
  b.prepare(64);
  b.commit(0);
  EXPECT_EQ(b.readable(), "head-tail");
}

TEST(ByteBufferTest, ReclaimCompactsOnlyWhenPrefixDominates) {
  ByteBuffer b;
  const std::string chunk(4096, 'a');
  b.append(chunk);
  b.append(chunk);
  b.consume(4096);  // dead prefix = live data = 4096
  EXPECT_EQ(b.read_offset(), 4096u);
  b.append("x");  // prefix >= threshold and >= live: append may compact
  EXPECT_EQ(b.read_offset(), 0u);
  EXPECT_EQ(b.size(), 4097u);
  EXPECT_EQ(b.readable().substr(4090), "aaaaaax");
}

TEST(ByteBufferTest, SmallPrefixIsNotCompacted) {
  ByteBuffer b;
  b.append("0123456789");
  b.consume(4);  // tiny prefix, below the 4K threshold
  b.append("ab");
  EXPECT_EQ(b.read_offset(), 4u);  // no memmove happened
  EXPECT_EQ(b.readable(), "456789ab");
}

TEST(ByteBufferTest, BackingExtendsReadableWindow) {
  ByteBuffer b;
  b.append("pre");
  b.consume(1);
  b.backing().append("post");
  EXPECT_EQ(b.readable(), "repost");
}

}  // namespace
}  // namespace bespokv
