// Test harness around SimFabric + Cluster: a deterministic cluster-in-a-box
// with synchronous-looking client calls (each call steps virtual time until
// the reply arrives).
#pragma once

#include <memory>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/net/sim_fabric.h"

namespace bespokv::testing {

class SimEnv {
 public:
  explicit SimEnv(ClusterOptions opts, SimFabricOpts fopts = {})
      : sim(fopts), cluster(sim, std::move(opts)) {
    cluster.start();
    // Let controlets fetch their initial shard maps and settle.
    sim.run_for(200'000);
  }

  // Issues an RPC from the admin node and advances virtual time until the
  // reply (or timeout) arrives.
  Result<Message> call(const Addr& dst, Message req,
                       uint64_t timeout_us = 2'000'000) {
    auto done = std::make_shared<bool>(false);
    auto result = std::make_shared<Result<Message>>(Status::Internal("pending"));
    Runtime* rt = cluster.admin();
    rt->post([&, rt] {
      rt->call(dst, std::move(req),
               [done, result](Status s, Message rep) {
                 *result = s.ok() ? Result<Message>(std::move(rep))
                                  : Result<Message>(s);
                 *done = true;
               },
               timeout_us);
    });
    while (!*done && !sim.idle()) sim.run_for(1'000);
    return *result;
  }

  // Full client-library semantics (routing, map refresh, retries) driven
  // synchronously through the simulator.
  SyncKv client() {
    return SyncKv(
        [this](const Addr& dst, Message req) { return call(dst, std::move(req)); },
        cluster.coordinator_addr());
  }

  void settle(uint64_t us = 100'000) { sim.run_for(us); }

  SimFabric sim;
  Cluster cluster;
};

inline ClusterOptions small_cluster(Topology t, Consistency c,
                                    int shards = 2, int replicas = 3) {
  ClusterOptions o;
  o.topology = t;
  o.consistency = c;
  o.num_shards = shards;
  o.num_replicas = replicas;
  return o;
}

}  // namespace bespokv::testing
