// Elastic shard migration (ISSUE 10): live range split/rebalance driven by
// the coordinator's epoch-fenced state machine. These tests exercise the
// protocol directly on a sim cluster — boundary moves, splits into a
// brand-new shard staffed from standbys, request validation, abort on
// participant death, coordinator crash+resume from the durable record,
// dedup-pin travel, and the hot-shard auto-splitter. The chaos-grade
// zero-loss properties live in the verify harness (verify_driver
// --migration / --migration-no-fencing).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/coordinator/cluster_meta.h"
#include "src/storage/env.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

ClusterOptions range_cluster(Topology t, Consistency c) {
  ClusterOptions o = small_cluster(t, c, /*shards=*/2, /*replicas=*/3);
  o.partitioner = "range";
  o.range_splits = {"m"};  // shard 0 = [-inf, "m"), shard 1 = ["m", +inf)
  o.coordinator.hb_period_us = 200'000;
  o.controlet.hb_period_us = 100'000;
  return o;
}

// Starts a migration and blocks (in virtual time) until the coordinator has
// accepted or rejected it.
Status start_migration_sync(SimEnv& env, uint32_t from,
                            const std::string& split_at, int64_t dest) {
  Status accepted = Status::Internal("pending");
  env.cluster.start_migration(from, split_at, dest,
                              [&](Status s) { accepted = s; });
  const uint64_t deadline = env.sim.now_us() + 2'000'000;
  while (accepted.code() == Code::kInternal && env.sim.now_us() < deadline) {
    env.sim.run_for(10'000);
  }
  return accepted;
}

void wait_migration_done(SimEnv& env, uint64_t max_us = 20'000'000) {
  const uint64_t deadline = env.sim.now_us() + max_us;
  while (env.cluster.coordinator_service()->migration_active() &&
         env.sim.now_us() < deadline) {
    env.sim.run_for(50'000);
  }
  ASSERT_FALSE(env.cluster.coordinator_service()->migration_active())
      << "migration did not finish";
}

// Keys held by datalet (shard, replica) inside [lo, hi).
int keys_in_range(SimEnv& env, int shard, int replica, const std::string& lo,
                  const std::string& hi) {
  int n = 0;
  auto d = env.cluster.datalet(shard, replica);
  if (d == nullptr) return -1;
  d->for_each([&](std::string_view key, const Entry&) {
    if (key >= lo && (hi.empty() || key < hi)) ++n;
  });
  return n;
}

TEST(MigrationTest, BoundaryMoveKeepsEveryKeyServable) {
  SimEnv env(range_cluster(Topology::kMasterSlave, Consistency::kStrong));
  SyncKv kv = env.client();
  for (int i = 0; i < 10; ++i) {
    const std::string n = std::to_string(i);
    ASSERT_TRUE(kv.put("a" + n, "va" + n).ok());
    ASSERT_TRUE(kv.put("f" + n, "vf" + n).ok());
    ASSERT_TRUE(kv.put("t" + n, "vt" + n).ok());
  }
  env.settle(300'000);

  const uint64_t epoch_before =
      env.cluster.coordinator_service()->shard_map().epoch;
  ASSERT_TRUE(start_migration_sync(env, 0, "f", 1).ok());
  wait_migration_done(env);
  env.settle(500'000);

  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  ASSERT_EQ(m.shards.size(), 2u);
  EXPECT_EQ(m.shard(0)->upper, "f");
  EXPECT_EQ(m.shard(1)->lower, "f");
  // Dual-write window epoch + cutover epoch: at least two bumps.
  EXPECT_GE(m.epoch, epoch_before + 2);
  EXPECT_EQ(env.cluster.coordinator_service()->migrations(), 1u);

  // Every key readable through the client (which must chase the new map).
  for (int i = 0; i < 10; ++i) {
    const std::string n = std::to_string(i);
    auto ra = kv.get("a" + n);
    ASSERT_TRUE(ra.ok()) << ra.status().to_string();
    EXPECT_EQ(ra.value(), "va" + n);
    auto rf = kv.get("f" + n);
    ASSERT_TRUE(rf.ok()) << rf.status().to_string();
    EXPECT_EQ(rf.value(), "vf" + n);
    auto rt = kv.get("t" + n);
    ASSERT_TRUE(rt.ok()) << rt.status().to_string();
    EXPECT_EQ(rt.value(), "vt" + n);
  }
  // New writes to the moved range land on the new owner and read back.
  for (int i = 0; i < 10; ++i) {
    const std::string n = std::to_string(i);
    ASSERT_TRUE(kv.put("f" + n, "vf2" + n).ok()) << n;
  }
  env.settle(300'000);
  for (int i = 0; i < 10; ++i) {
    const std::string n = std::to_string(i);
    auto r = kv.get("f" + n);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "vf2" + n);
  }

  // Handoff is physical: the old shard GC'd the moved range, the new owner
  // holds it on every replica.
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(keys_in_range(env, 0, r, "f", "m"), 0) << "old replica " << r;
    EXPECT_EQ(keys_in_range(env, 1, r, "f", "m"), 10) << "new replica " << r;
  }
}

TEST(MigrationTest, SplitsIntoNewShardStaffedFromStandbys) {
  ClusterOptions o = range_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong);
  o.num_standby = 3;
  SimEnv env(o);
  SyncKv kv = env.client();
  for (int i = 0; i < 8; ++i) {
    const std::string n = std::to_string(i);
    ASSERT_TRUE(kv.put("a" + n, "va" + n).ok());
    ASSERT_TRUE(kv.put("f" + n, "vf" + n).ok());
  }
  env.settle(300'000);

  ASSERT_TRUE(start_migration_sync(env, 0, "f", /*dest=*/-1).ok());
  wait_migration_done(env);
  env.settle(500'000);

  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  ASSERT_EQ(m.shards.size(), 3u);
  EXPECT_TRUE(validate_range_layout(m).ok());
  EXPECT_EQ(m.shard(0)->upper, "f");
  const ShardInfo* fresh = m.shard(2);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->lower, "f");
  EXPECT_EQ(fresh->upper, "m");
  EXPECT_EQ(fresh->replicas.size(), 3u);

  for (int i = 0; i < 8; ++i) {
    const std::string n = std::to_string(i);
    auto ra = kv.get("a" + n);
    ASSERT_TRUE(ra.ok()) << ra.status().to_string();
    EXPECT_EQ(ra.value(), "va" + n);
    auto rf = kv.get("f" + n);
    ASSERT_TRUE(rf.ok()) << rf.status().to_string();
    EXPECT_EQ(rf.value(), "vf" + n);
    ASSERT_TRUE(kv.put("f" + n, "vf2" + n).ok());
  }
}

TEST(MigrationTest, RejectsInvalidRequests) {
  // Hash-partitioned cluster: no ranges to move.
  {
    SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong));
    Status s = start_migration_sync(env, 0, "f", 1);
    EXPECT_EQ(s.code(), Code::kInvalid) << s.to_string();
  }
  SimEnv env(range_cluster(Topology::kMasterSlave, Consistency::kStrong));
  env.settle(200'000);
  // Split point outside the source shard's range.
  EXPECT_EQ(start_migration_sync(env, 0, "zzz", 1).code(), Code::kInvalid);
  // Split at the lower bound would move the whole shard, not a tail.
  EXPECT_EQ(start_migration_sync(env, 1, "m", 0).code(), Code::kInvalid);
  // Dest must own the right-adjacent range (shard 0 is to the LEFT of 1).
  EXPECT_EQ(start_migration_sync(env, 1, "t", 0).code(), Code::kInvalid);
  // A new shard needs a full replica set of standbys; none are registered.
  EXPECT_EQ(start_migration_sync(env, 1, "t", -1).code(), Code::kInvalid);
  // Unknown source shard.
  EXPECT_EQ(start_migration_sync(env, 7, "f", 1).code(), Code::kInvalid);
  // Nothing half-armed: the map is untouched and a valid request still works.
  EXPECT_EQ(env.cluster.coordinator_service()->migrations(), 0u);
  ASSERT_TRUE(start_migration_sync(env, 0, "f", 1).ok());
  wait_migration_done(env);
  EXPECT_EQ(env.cluster.coordinator_service()->migrations(), 1u);
}

TEST(MigrationTest, SecondRequestDuringCopyIsRejected) {
  ClusterOptions o = range_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong);
  // Slow the copier so the first migration is still copying when the second
  // request arrives.
  o.controlet.migrate_copy_period_us = 300'000;
  o.controlet.migrate_batch = 1;
  SimEnv env(o);
  SyncKv kv = env.client();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(kv.put("f" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(start_migration_sync(env, 0, "f", 1).ok());
  ASSERT_TRUE(env.cluster.coordinator_service()->migration_active());
  EXPECT_EQ(start_migration_sync(env, 1, "t", -1).code(), Code::kConflict);
  wait_migration_done(env);
  EXPECT_EQ(env.cluster.coordinator_service()->migrations(), 1u);
}

TEST(MigrationTest, AbortsWhenParticipantDiesMidCopy) {
  ClusterOptions o = range_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong);
  o.controlet.migrate_copy_period_us = 300'000;
  o.controlet.migrate_batch = 1;
  o.num_standby = 1;  // so the post-abort failover can repair the dest shard
  SimEnv env(o);
  SyncKv kv = env.client();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv.put("f" + std::to_string(i), "v" + std::to_string(i)).ok());
    ASSERT_TRUE(kv.put("a" + std::to_string(i), "w" + std::to_string(i)).ok());
  }
  env.settle(200'000);

  ASSERT_TRUE(start_migration_sync(env, 0, "f", 1).ok());
  ASSERT_TRUE(env.cluster.coordinator_service()->migration_active());
  env.settle(300'000);  // mid-copy
  env.cluster.kill_controlet(1, 1);  // a dual-write target dies

  wait_migration_done(env, 30'000'000);
  EXPECT_EQ(env.cluster.coordinator_service()->migrations(), 0u);
  EXPECT_EQ(env.cluster.coordinator_service()->migrations_aborted(), 1u);
  // The map is untouched: shard 0 still owns the whole range and serves it.
  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  EXPECT_EQ(m.shard(0)->upper, "m");
  env.settle(2'000'000);  // let the failover repair shard 1
  for (int i = 0; i < 8; ++i) {
    auto r = kv.get("f" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r.value(), "v" + std::to_string(i));
  }
  // Aborted is not wedged: the same move succeeds when retried.
  ASSERT_TRUE(start_migration_sync(env, 0, "f", 1).ok());
  wait_migration_done(env);
  EXPECT_EQ(env.cluster.coordinator_service()->migrations(), 1u);
}

TEST(MigrationTest, CoordinatorRestartResumesFromDurableRecord) {
  auto meta = std::make_shared<storage::MemEnv>();
  ClusterOptions o = range_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong);
  o.coordinator.meta_env = meta.get();
  o.controlet.migrate_copy_period_us = 250'000;
  o.controlet.migrate_batch = 1;
  SimEnv env(o);
  SyncKv kv = env.client();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv.put("f" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  env.settle(200'000);

  ASSERT_TRUE(start_migration_sync(env, 0, "f", 1).ok());
  env.settle(400'000);  // mid-copy (8 keys x 250ms per chunk)
  ASSERT_TRUE(env.cluster.coordinator_service()->migration_active());

  // Crash the coordinator inside the dual-write window and bring it back
  // within the data plane's lease deadline. The restarted instance must
  // reload the migration record and drive the copy to completion — without
  // it the old shard would strand forwarding writes forever.
  const Addr coord = env.cluster.coordinator_addr();
  env.sim.kill(coord);
  env.sim.run_for(300'000);
  ASSERT_TRUE(env.sim.restart(coord));

  wait_migration_done(env, 30'000'000);
  env.settle(1'000'000);
  EXPECT_EQ(env.cluster.coordinator_service()->migrations(), 1u);
  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  EXPECT_EQ(m.shard(0)->upper, "f");
  EXPECT_EQ(m.shard(1)->lower, "f");
  for (int i = 0; i < 8; ++i) {
    auto r = kv.get("f" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r.value(), "v" + std::to_string(i));
  }
}

TEST(MigrationTest, DedupPinsTravelWithTheRange) {
  SimEnv env(range_cluster(Topology::kMasterSlave, Consistency::kStrong));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("f-pin", "original").ok());

  // A tokened write applied by the old owner...
  Message put;
  put.op = Op::kPut;
  put.key = "f-pin";
  put.value = "tokened";
  put.token = 424242;
  auto first = env.call(env.cluster.controlet_addr(0, 0), put);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().code, Code::kOk);
  env.settle(200'000);

  ASSERT_TRUE(start_migration_sync(env, 0, "f", 1).ok());
  wait_migration_done(env);
  env.settle(500'000);

  // ...then the key is overwritten after cutover. A late replay of the old
  // token must keep its original LWW slot (the pin shipped with the first
  // chunk) — without the pin the new owner would mint a fresh version and
  // the replay would resurrect the stale payload over "fresh".
  ASSERT_TRUE(kv.put("f-pin", "fresh").ok());
  env.settle(200'000);
  Message replay = put;
  replay.value = "stale-replay";
  auto second = env.call(env.cluster.controlet_addr(1, 0), replay);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().code, Code::kOk);
  env.settle(300'000);
  auto r = kv.get("f-pin");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "fresh");
}

TEST(MigrationTest, HotShardAutoSplitShedsTheTail) {
  ClusterOptions o = range_cluster(Topology::kMasterSlave,
                                   Consistency::kStrong);
  o.coordinator.hot_shard_factor = 1.5;
  o.coordinator.hot_shard_sweeps = 2;
  SimEnv env(o);
  SyncKv kv = env.client();
  // Seed both sides so the detector has a populated keyspace, then hammer
  // shard 0 only: its per-sweep op count must cross factor x mean for two
  // consecutive sweeps, after which the coordinator sheds the tail above the
  // reported median into the right-adjacent shard on its own.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv.put("a" + std::to_string(i), "v").ok());
    ASSERT_TRUE(kv.put("t" + std::to_string(i), "v").ok());
  }
  const uint64_t deadline = env.sim.now_us() + 60'000'000;
  int i = 0;
  while (env.cluster.coordinator_service()->migrations() == 0 &&
         env.sim.now_us() < deadline) {
    ASSERT_TRUE(kv.put("a" + std::to_string(i % 8), "hot").ok());
    ++i;
    if (i % 16 == 0) env.settle(50'000);
  }
  EXPECT_GE(env.cluster.coordinator_service()->migrations(), 1u)
      << "hot shard never auto-split";
  wait_migration_done(env);
  env.settle(500'000);
  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  EXPECT_TRUE(validate_range_layout(m).ok());
  // Shard 0 gave up its tail: its upper bound moved left of the old split.
  EXPECT_LT(m.shard(0)->upper, "m");
  EXPECT_FALSE(m.shard(0)->upper.empty());
  for (int k = 0; k < 8; ++k) {
    auto r = kv.get("a" + std::to_string(k));
    ASSERT_TRUE(r.ok()) << r.status().to_string();
  }
}

}  // namespace
}  // namespace bespokv
