// Chaos tests: randomized failure injection under load, with durability
// invariants checked afterwards.
//
//  * MS+SC (chain replication): an acknowledged Put is on *every* replica, so
//    it must survive any single-node crash, no matter when it happens.
//  * MS+EC: acknowledged Puts that had time to propagate (>> flush period)
//    must survive a single crash; writes inside the async window are the
//    documented EC loss window.
//  * AA+EC: the shared log orders everything; once applied cluster-wide, a
//    single active's crash loses nothing.
#include <gtest/gtest.h>

#include "src/net/fault.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

ClusterOptions chaos_cluster(Topology t, Consistency c) {
  ClusterOptions o = small_cluster(t, c, /*shards=*/2, /*replicas=*/3);
  o.num_standby = 1;
  o.coordinator.hb_period_us = 100'000;
  o.controlet.hb_period_us = 50'000;
  return o;
}

TEST_P(ChaosTest, MsScAckedWritesSurviveAnySingleCrash) {
  SimFabricOpts fopts;
  fopts.seed = GetParam();
  SimEnv env(chaos_cluster(Topology::kMasterSlave, Consistency::kStrong), fopts);
  SyncKv kv = env.client();
  Rng rng(GetParam() * 97 + 1);

  std::map<std::string, std::string> acked;
  const int kill_at = 20 + static_cast<int>(rng.next_u64(30));
  for (int i = 0; i < 80; ++i) {
    const std::string key = "c" + std::to_string(rng.next_u64(60));
    const std::string value = "v" + std::to_string(i);
    if (kv.put(key, value).ok()) acked[key] = value;
    if (i == kill_at) {
      env.cluster.kill_controlet(static_cast<int>(rng.next_u64(2)),
                                 static_cast<int>(rng.next_u64(3)));
    }
  }
  env.settle(2'500'000);  // detection + repair + standby recovery
  for (const auto& [key, value] : acked) {
    auto r = kv.get(key);
    ASSERT_TRUE(r.ok()) << "lost acked write " << key << " (seed "
                        << GetParam() << ")";
    EXPECT_EQ(r.value(), value) << key;
  }
}

TEST_P(ChaosTest, MsEcPropagatedWritesSurviveMasterCrash) {
  SimFabricOpts fopts;
  fopts.seed = GetParam();
  SimEnv env(chaos_cluster(Topology::kMasterSlave, Consistency::kEventual),
             fopts);
  SyncKv kv = env.client();
  Rng rng(GetParam() * 131 + 7);

  std::map<std::string, std::string> safe;  // writes given time to propagate
  for (int i = 0; i < 50; ++i) {
    const std::string key = "e" + std::to_string(rng.next_u64(40));
    const std::string value = "v" + std::to_string(i);
    if (kv.put(key, value).ok()) safe[key] = value;
  }
  env.settle(500'000);  // >> flush period: everything propagated
  env.cluster.kill_controlet(static_cast<int>(rng.next_u64(2)), 0);  // master
  env.settle(2'500'000);
  for (const auto& [key, value] : safe) {
    auto r = kv.get(key, "", ConsistencyLevel::kStrong);
    ASSERT_TRUE(r.ok()) << "lost propagated write " << key << " (seed "
                        << GetParam() << ")";
    EXPECT_EQ(r.value(), value) << key;
  }
}

TEST_P(ChaosTest, AaEcAppliedWritesSurviveActiveCrash) {
  SimFabricOpts fopts;
  fopts.seed = GetParam();
  SimEnv env(chaos_cluster(Topology::kActiveActive, Consistency::kEventual),
             fopts);
  SyncKv kv = env.client();
  Rng rng(GetParam() * 17 + 3);

  std::map<std::string, std::string> acked;
  for (int i = 0; i < 50; ++i) {
    const std::string key = "a" + std::to_string(rng.next_u64(40));
    const std::string value = "v" + std::to_string(i);
    if (kv.put(key, value).ok()) acked[key] = value;
  }
  env.settle(500'000);  // all actives caught up with the shared log
  env.cluster.kill_controlet(static_cast<int>(rng.next_u64(2)),
                             static_cast<int>(rng.next_u64(3)));
  env.settle(2'500'000);
  for (const auto& [key, value] : acked) {
    auto r = kv.get(key);
    ASSERT_TRUE(r.ok()) << "lost applied write " << key << " (seed "
                        << GetParam() << ")";
    EXPECT_EQ(r.value(), value) << key;
  }
}

TEST_P(ChaosTest, TransitionUnderContinuousLoadLosesNothing) {
  SimFabricOpts fopts;
  fopts.seed = GetParam();
  SimEnv env(chaos_cluster(Topology::kMasterSlave, Consistency::kEventual),
             fopts);
  SyncKv kv = env.client();
  Rng rng(GetParam() * 211 + 5);

  std::map<std::string, std::string> acked;
  // First half of the writes land before the transition request, the rest
  // while it is in flight.
  for (int i = 0; i < 30; ++i) {
    const std::string key = "t" + std::to_string(rng.next_u64(25));
    if (kv.put(key, "v" + std::to_string(i)).ok()) {
      acked[key] = "v" + std::to_string(i);
    }
  }
  env.cluster.start_transition(Topology::kActiveActive, Consistency::kEventual,
                               [](Status) {});
  for (int i = 30; i < 60; ++i) {
    const std::string key = "t" + std::to_string(rng.next_u64(25));
    if (kv.put(key, "v" + std::to_string(i)).ok()) {
      acked[key] = "v" + std::to_string(i);
    }
  }
  uint64_t waited = 0;
  while (env.cluster.coordinator_service()->transition_active() &&
         waited < 5'000'000) {
    env.sim.run_for(100'000);
    waited += 100'000;
  }
  env.settle(1'000'000);
  for (const auto& [key, value] : acked) {
    auto r = kv.get(key);
    ASSERT_TRUE(r.ok()) << key << " (seed " << GetParam() << ")";
    EXPECT_EQ(r.value(), value) << key;
  }
}

// The PR's acceptance scenario: a FaultPlan crashes shard 0's master mid-load
// (and restarts it later) while light link noise drops/duplicates messages
// everywhere. A looping client with retries enabled must observe zero failed
// acked operations end-to-end: no op fails outright, and every acked write
// reads back its value afterwards. Duplicated PUT frames double as a live
// exercise of the idempotency-token dedup window.
TEST_P(ChaosTest, FaultPlanMasterCrashZeroFailedAckedOps) {
  SimFabricOpts fopts;
  fopts.seed = GetParam();
  SimEnv env(chaos_cluster(Topology::kMasterSlave, Consistency::kStrong),
             fopts);
  SyncKv kv = env.client();
  kv.set_attempts(12);

  FaultPlan plan;
  plan.seed = GetParam();
  plan.links.push_back(LinkFault{"*", "*", /*drop=*/0.02, /*duplicate=*/0.05,
                                 0, 0, 0, 0, 0});
  plan.nodes.push_back(NodeFault{env.cluster.controlet_addr(0, 0),
                                 /*crash_at_us=*/300'000,
                                 /*restart_at_us=*/4'000'000});
  env.sim.set_fault_injector(std::make_shared<FaultInjector>(plan));
  Runtime* admin = env.cluster.admin();
  admin->post([admin, &env, plan] {
    schedule_node_faults(*admin, env.sim, plan);
  });

  std::map<std::string, std::string> acked;
  int failed_ops = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string key = "f" + std::to_string(i % 50);
    const std::string value = "v" + std::to_string(i);
    if (kv.put(key, value).ok()) {
      acked[key] = value;
    } else {
      ++failed_ops;
    }
  }
  EXPECT_EQ(failed_ops, 0) << "ops failed despite retries (seed " << GetParam()
                           << ")";
  env.settle(3'000'000);  // failover + standby recovery + restart-as-standby
  for (const auto& [key, value] : acked) {
    auto r = kv.get(key, "", ConsistencyLevel::kStrong);
    ASSERT_TRUE(r.ok()) << "lost acked write " << key << " (seed "
                        << GetParam() << ")";
    EXPECT_EQ(r.value(), value) << key;
  }
  EXPECT_GT(env.sim.fault_injector()->decided(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bespokv
