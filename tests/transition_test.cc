// Live topology/consistency transition tests (§V): old and new controlets
// share the datalets; writes forward through the old controlets while they
// drain; the coordinator swaps the map when every old controlet reports
// done; clients follow via map refresh. No downtime, no data migration.
#include <gtest/gtest.h>

#include "src/verify/runner.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

ClusterOptions transition_cluster(Topology t, Consistency c) {
  ClusterOptions o = small_cluster(t, c, /*shards=*/2, /*replicas=*/3);
  o.coordinator.hb_period_us = 200'000;
  o.controlet.hb_period_us = 100'000;
  return o;
}

// Starts a transition and blocks (in virtual time) until the coordinator has
// accepted it — start_transition is asynchronous, so polling
// transition_active() before acceptance would race.
void start_transition_sync(SimEnv& env, Topology t, Consistency c) {
  Status accepted = Status::Internal("pending");
  env.cluster.start_transition(t, c, [&](Status s) { accepted = s; });
  const uint64_t deadline = env.sim.now_us() + 2'000'000;
  while (accepted.code() == Code::kInternal && env.sim.now_us() < deadline) {
    env.sim.run_for(10'000);
  }
  ASSERT_TRUE(accepted.ok()) << accepted.to_string();
}

void wait_transition_done(SimEnv& env, uint64_t max_us = 5'000'000) {
  const uint64_t deadline = env.sim.now_us() + max_us;
  while (env.cluster.coordinator_service()->transition_active() &&
         env.sim.now_us() < deadline) {
    env.sim.run_for(50'000);
  }
  ASSERT_FALSE(env.cluster.coordinator_service()->transition_active())
      << "transition did not finish";
}

struct TransitionCase {
  Topology from_t;
  Consistency from_c;
  Topology to_t;
  Consistency to_c;
  const char* name;
};

class TransitionTest : public ::testing::TestWithParam<TransitionCase> {};

TEST_P(TransitionTest, DataSurvivesAndNewModeWorks) {
  const auto& p = GetParam();
  SimEnv env(transition_cluster(p.from_t, p.from_c));
  SyncKv kv = env.client();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(kv.put("pre" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  env.settle(300'000);

  Status accepted = Status::Internal("pending");
  env.cluster.start_transition(p.to_t, p.to_c,
                               [&](Status s) { accepted = s; });
  env.settle(100'000);
  ASSERT_TRUE(accepted.ok()) << accepted.to_string();

  // Writes *during* the transition forward through the old controlets (§V).
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("mid" + std::to_string(i), "m" + std::to_string(i)).ok())
        << i;
  }

  wait_transition_done(env);
  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  EXPECT_EQ(m.topology, p.to_t);
  EXPECT_EQ(m.consistency, p.to_c);

  // Post-transition: all data readable, new writes flow in the new mode.
  env.settle(500'000);
  for (int i = 0; i < 40; ++i) {
    auto r = kv.get("pre" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "pre" << i << ": " << r.status().to_string();
    EXPECT_EQ(r.value(), "v" + std::to_string(i));
  }
  for (int i = 0; i < 20; ++i) {
    auto r = kv.get("mid" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "mid" << i << ": " << r.status().to_string();
    EXPECT_EQ(r.value(), "m" + std::to_string(i));
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("post" + std::to_string(i), "p").ok()) << i;
  }
  env.settle(300'000);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(kv.get("post" + std::to_string(i)).ok()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TransitionTest,
    ::testing::Values(
        // The two transitions the paper details (§V-A, §V-B)...
        TransitionCase{Topology::kMasterSlave, Consistency::kEventual,
                       Topology::kMasterSlave, Consistency::kStrong,
                       "MsEc_to_MsSc"},
        TransitionCase{Topology::kActiveActive, Consistency::kEventual,
                       Topology::kMasterSlave, Consistency::kEventual,
                       "AaEc_to_MsEc"},
        // ...their reverses ("trivial"/"mirror" per the paper)...
        TransitionCase{Topology::kMasterSlave, Consistency::kStrong,
                       Topology::kMasterSlave, Consistency::kEventual,
                       "MsSc_to_MsEc"},
        TransitionCase{Topology::kMasterSlave, Consistency::kEventual,
                       Topology::kActiveActive, Consistency::kEventual,
                       "MsEc_to_AaEc"},
        // ...and the remaining Fig. 10 combinations.
        TransitionCase{Topology::kMasterSlave, Consistency::kEventual,
                       Topology::kActiveActive, Consistency::kStrong,
                       "MsEc_to_AaSc"},
        TransitionCase{Topology::kActiveActive, Consistency::kStrong,
                       Topology::kActiveActive, Consistency::kEventual,
                       "AaSc_to_AaEc"}),
    [](const auto& info) { return info.param.name; });

TEST(TransitionSemantics, MsEcToMsScDrainsPendingPropagation) {
  SimEnv env(transition_cluster(Topology::kMasterSlave, Consistency::kEventual));
  SyncKv kv = env.client();
  // Big burst so the master's propagation buffer is non-empty when the
  // transition starts; §V-A requires it to be flushed before handover.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(kv.put("b" + std::to_string(i), "v").ok());
  }
  start_transition_sync(env, Topology::kMasterSlave, Consistency::kStrong);
  while (env.cluster.coordinator_service()->transition_active()) {
    env.sim.run_for(50'000);
  }
  env.settle(200'000);
  // After the switch, slaves must have every pre-transition write: SC reads
  // go to the tail, which only has the data if the buffer was drained.
  for (int i = 0; i < 200; ++i) {
    auto r = kv.get("b" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
  }
}

TEST(TransitionSemantics, NewWritesAreChainReplicatedAfterMsScSwitch) {
  SimEnv env(transition_cluster(Topology::kMasterSlave, Consistency::kEventual));
  SyncKv kv = env.client();
  start_transition_sync(env, Topology::kMasterSlave, Consistency::kStrong);
  while (env.cluster.coordinator_service()->transition_active()) {
    env.sim.run_for(50'000);
  }
  ASSERT_TRUE(kv.put("k", "v").ok());
  // Under MS+SC the ack means every replica datalet committed synchronously.
  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  auto sid = m.shard_for("k");
  ASSERT_TRUE(sid.ok());
  for (int r = 0; r < 3; ++r) {
    EXPECT_TRUE(env.cluster.datalet(static_cast<int>(sid.value()), r)
                    ->get("k")
                    .ok())
        << r;
  }
}

TEST(TransitionSemantics, OldControletsRetireAfterSwap) {
  SimEnv env(transition_cluster(Topology::kMasterSlave, Consistency::kEventual));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  const Addr old_master = env.cluster.controlet_addr(0, 0);
  start_transition_sync(env, Topology::kActiveActive, Consistency::kEventual);
  while (env.cluster.coordinator_service()->transition_active()) {
    env.sim.run_for(50'000);
  }
  env.settle(200'000);
  // A stale client hitting the old controlet gets kNotLeader and re-routes.
  auto rep = env.call(old_master, Message::put("stale", "x"));
  ASSERT_TRUE(rep.ok());
  EXPECT_EQ(rep.value().code, Code::kNotLeader);
  EXPECT_TRUE(env.cluster.controlet(0, 0)->is_retired());
}

TEST(TransitionSemantics, SecondTransitionChainsCleanly) {
  // MS+EC -> MS+SC -> AA+EC: transitions can be chained; the generation
  // bookkeeping must keep datalet sharing intact.
  SimEnv env(transition_cluster(Topology::kMasterSlave, Consistency::kEventual));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k1", "v1").ok());
  env.settle(200'000);

  start_transition_sync(env, Topology::kMasterSlave, Consistency::kStrong);
  while (env.cluster.coordinator_service()->transition_active()) {
    env.sim.run_for(50'000);
  }
  ASSERT_TRUE(kv.put("k2", "v2").ok());

  start_transition_sync(env, Topology::kActiveActive, Consistency::kEventual);
  while (env.cluster.coordinator_service()->transition_active()) {
    env.sim.run_for(50'000);
  }
  ASSERT_TRUE(kv.put("k3", "v3").ok());
  env.settle(500'000);
  EXPECT_EQ(kv.get("k1").value(), "v1");
  EXPECT_EQ(kv.get("k2").value(), "v2");
  EXPECT_EQ(kv.get("k3").value(), "v3");
  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  EXPECT_EQ(m.topology, Topology::kActiveActive);
  EXPECT_EQ(m.epoch, 3u);
}

TEST(TransitionSemantics, PostTransitionOverwritesBeatPreTransitionVersions) {
  // Regression: AA+EC log sequences must be rebased into the epoch-prefixed
  // version space, or LWW application silently drops overwrites of keys
  // written before an MS -> AA transition.
  SimEnv env(transition_cluster(Topology::kMasterSlave, Consistency::kEventual));
  SyncKv kv = env.client();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("rank" + std::to_string(i), "RUNNING").ok());
  }
  env.settle(300'000);
  start_transition_sync(env, Topology::kActiveActive, Consistency::kEventual);
  while (env.cluster.coordinator_service()->transition_active()) {
    env.sim.run_for(50'000);
  }
  ASSERT_TRUE(kv.refresh().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("rank" + std::to_string(i), "DONE").ok()) << i;
  }
  env.settle(500'000);
  for (int i = 0; i < 20; ++i) {
    auto r = kv.get("rank" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(r.value(), "DONE") << i;
  }
}

TEST(TransitionVerification, MsEcToMsScHistoriesLinearizeAfterTheSwitch) {
  // Property check through the verification harness: concurrent clients run
  // across a live MS+EC -> MS+SC transition. Ops invoked after the switch
  // completes must form a linearizable history (seeded by whichever
  // pre-switch write won per key); the EC prefix only has to converge. The
  // runner picks exactly that split (CheckOptions::linearizable_after_us).
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    verify::Scenario s;
    s.seed = seed;
    s.topology = Topology::kMasterSlave;
    s.consistency = Consistency::kEventual;
    s.shards = 2;
    s.replicas = 3;
    s.clients = 4;
    s.ops_per_client = 30;
    s.workload.num_keys = 10;
    s.workload.key_size = 8;
    s.workload.value_size = 8;
    s.workload.get_ratio = 0.5;
    s.workload.scan_ratio = 0.0;
    s.workload.del_ratio = 0.0;
    s.workload.seed = seed;
    s.gap_us = 2'000;
    verify::TransitionStep step;
    step.at_us = 25'000;  // mid-workload
    step.to_t = Topology::kMasterSlave;
    step.to_c = Consistency::kStrong;
    s.transitions.push_back(step);
    s.settle_us = 300'000;

    verify::RunResult r = verify::run_scenario(s);
    ASSERT_TRUE(r.completed) << "seed " << seed << ": " << r.error;
    ASSERT_GT(r.transition_done_us, 0u) << "seed " << seed;
    EXPECT_EQ(r.report.verdict, verify::Verdict::kOk)
        << "seed " << seed << ": " << r.report.to_string() << "\n"
        << r.history.dump();
    // The split must be non-vacuous: ops on both sides of the switch point.
    size_t before = 0, after = 0;
    for (const verify::Op& op : r.history.ops()) {
      (op.inv < r.transition_done_us ? before : after)++;
    }
    EXPECT_GT(before, 0u) << "seed " << seed;
    EXPECT_GT(after, 0u) << "seed " << seed;
  }
}

TEST(TransitionSemantics, ConcurrentTransitionRequestIsRejected) {
  SimEnv env(transition_cluster(Topology::kMasterSlave, Consistency::kEventual));
  Status first = Status::Internal("pending");
  Status second = Status::Internal("pending");
  env.cluster.start_transition(Topology::kMasterSlave, Consistency::kStrong,
                               [&](Status s) { first = s; });
  env.cluster.start_transition(Topology::kActiveActive, Consistency::kEventual,
                               [&](Status s) { second = s; });
  env.settle(200'000);
  EXPECT_TRUE(first.ok()) << first.to_string();
  EXPECT_EQ(second.code(), Code::kConflict);
  while (env.cluster.coordinator_service()->transition_active()) {
    env.sim.run_for(50'000);
  }
}

}  // namespace
}  // namespace bespokv
