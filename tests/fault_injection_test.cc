// FaultInjector / FaultPlan tests: plan serialization, deterministic
// decisions, and the per-fabric wiring — drop/delay/duplicate at each
// fabric's send choke point, plus in-place node crash/restart on all three
// fabrics (the same FaultPlan drives sim, thread and TCP runs).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/net/fault.h"
#include "src/net/sim_fabric.h"
#include "src/net/tcp_fabric.h"
#include "src/net/thread_fabric.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

class CounterService : public Service {
 public:
  void handle(const Addr&, Message req, Replier reply) override {
    ++handled;
    reply(Message::reply(Code::kOk, req.key));
  }
  std::atomic<uint64_t> handled{0};
};

std::shared_ptr<LambdaService> null_service() {
  return std::make_shared<LambdaService>(
      [](Runtime&, const Addr&, Message, Replier r) {
        r(Message::reply(Code::kInvalid));
      });
}

// ------------------------------ FaultPlan -----------------------------------

TEST(FaultPlanTest, AddrMatching) {
  EXPECT_TRUE(fault_addr_match("*", "anything"));
  EXPECT_TRUE(fault_addr_match("bkv/s0r0", "bkv/s0r0"));
  EXPECT_FALSE(fault_addr_match("bkv/s0r0", "bkv/s0r1"));
  EXPECT_TRUE(fault_addr_match("bkv/s0*", "bkv/s0r2"));
  EXPECT_FALSE(fault_addr_match("bkv/s0*", "bkv/s1r0"));
  EXPECT_TRUE(fault_addr_match("127.0.0.1:*", "127.0.0.1:5501"));
}

TEST(FaultPlanTest, JsonRoundTrip) {
  FaultPlan p;
  p.seed = 42;
  p.links.push_back(LinkFault{"bkv/s0*", "*", 0.25, 0.1, 0.05, 300, 150,
                              1'000'000, 5'000'000});
  p.nodes.push_back(NodeFault{"bkv/s0r0", 2'000'000, 4'000'000});
  p.nodes.push_back(NodeFault{"bkv/s1r1", 3'000'000, 0});

  auto q = FaultPlan::decode(p.encode());
  ASSERT_TRUE(q.ok()) << q.status().to_string();
  EXPECT_EQ(q.value().seed, 42u);
  ASSERT_EQ(q.value().links.size(), 1u);
  const LinkFault& l = q.value().links[0];
  EXPECT_EQ(l.src, "bkv/s0*");
  EXPECT_EQ(l.dst, "*");
  EXPECT_DOUBLE_EQ(l.drop, 0.25);
  EXPECT_DOUBLE_EQ(l.duplicate, 0.1);
  EXPECT_DOUBLE_EQ(l.reorder, 0.05);
  EXPECT_EQ(l.delay_us, 300u);
  EXPECT_EQ(l.jitter_us, 150u);
  EXPECT_EQ(l.after_us, 1'000'000u);
  EXPECT_EQ(l.until_us, 5'000'000u);
  ASSERT_EQ(q.value().nodes.size(), 2u);
  EXPECT_EQ(q.value().nodes[0].node, "bkv/s0r0");
  EXPECT_EQ(q.value().nodes[0].crash_at_us, 2'000'000u);
  EXPECT_EQ(q.value().nodes[0].restart_at_us, 4'000'000u);
  EXPECT_EQ(q.value().nodes[1].restart_at_us, 0u);
}

TEST(FaultPlanTest, RejectsBadPlans) {
  EXPECT_FALSE(FaultPlan::decode("not json").ok());
  EXPECT_FALSE(
      FaultPlan::decode(R"({"links":[{"drop":1.5}]})").ok());
  EXPECT_FALSE(FaultPlan::decode(R"({"nodes":[{"crash_at_us":5}]})").ok());
  EXPECT_FALSE(FaultPlan::decode(
                   R"({"nodes":[{"node":"n","crash_at_us":5,"restart_at_us":3}]})")
                   .ok());
}

TEST(FaultPlanTest, PartitionJsonRoundTrip) {
  FaultPlan p;
  PartitionFault pf;
  pf.a = {"bkv/s0r0"};
  pf.b = {"bkv/coord", "bkv/s1*"};
  pf.symmetric = false;
  pf.after_us = 100'000;
  pf.until_us = 900'000;
  p.partitions.push_back(pf);

  auto q = FaultPlan::decode(p.encode());
  ASSERT_TRUE(q.ok()) << q.status().to_string();
  ASSERT_EQ(q.value().partitions.size(), 1u);
  const PartitionFault& r = q.value().partitions[0];
  ASSERT_EQ(r.a.size(), 1u);
  EXPECT_EQ(r.a[0], "bkv/s0r0");
  ASSERT_EQ(r.b.size(), 2u);
  EXPECT_EQ(r.b[1], "bkv/s1*");
  EXPECT_FALSE(r.symmetric);
  EXPECT_EQ(r.after_us, 100'000u);
  EXPECT_EQ(r.until_us, 900'000u);
}

TEST(FaultPlanTest, RejectsBadPartitions) {
  // Both node sets are required.
  EXPECT_FALSE(FaultPlan::decode(R"({"partitions":[{"a":["x"]}]})").ok());
  // The window must be ordered.
  EXPECT_FALSE(FaultPlan::decode(
                   R"({"partitions":[{"a":["x"],"b":["y"],
                       "after_us":10,"until_us":5}]})")
                   .ok());
}

TEST(FaultInjectorTest, PartitionDropsByDirectionAndWindow) {
  FaultPlan p;
  PartitionFault pf;
  pf.a = {"m"};
  pf.b = {"coord"};
  pf.symmetric = false;
  pf.after_us = 1'000;
  pf.until_us = 2'000;
  p.partitions.push_back(pf);
  FaultInjector fi(p);
  fi.arm(0);

  EXPECT_FALSE(fi.on_message("m", "coord", 500).drop);   // before the cut
  EXPECT_TRUE(fi.on_message("m", "coord", 1'500).drop);  // a→b severed
  EXPECT_FALSE(fi.on_message("coord", "m", 1'500).drop);  // one-way: b→a open
  EXPECT_FALSE(fi.on_message("m", "other", 1'500).drop);  // outside the cut
  EXPECT_FALSE(fi.on_message("m", "coord", 2'500).drop);  // healed
  EXPECT_EQ(fi.partitioned(), 1u);

  pf.symmetric = true;
  FaultPlan p2;
  p2.partitions.push_back(pf);
  FaultInjector fi2(p2);
  fi2.arm(0);
  EXPECT_TRUE(fi2.on_message("coord", "m", 1'500).drop);  // both directions
}

TEST(FaultInjectorTest, PartitionBurnsNoRngForLinkRules) {
  // Adding a partition entry must not perturb the link rules' decision
  // stream for traffic outside the cut — replay determinism depends on it.
  FaultPlan base;
  base.seed = 11;
  base.links.push_back(LinkFault{"*", "*", 0.3, 0.2, 0.1, 50, 100, 0, 0});
  FaultPlan with_part = base;
  PartitionFault pf;
  pf.a = {"island"};
  pf.b = {"*"};
  with_part.partitions.push_back(pf);

  FaultInjector a(base), b(with_part);
  a.arm(0);
  b.arm(0);
  for (int i = 0; i < 300; ++i) {
    const Addr src = "n" + std::to_string(i % 5);
    const Addr dst = "n" + std::to_string((i + 1) % 5);
    const FaultDecision da = a.on_message(src, dst, uint64_t(i) * 100);
    const FaultDecision db = b.on_message(src, dst, uint64_t(i) * 100);
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << i;
    ASSERT_EQ(da.delay_us, db.delay_us) << i;
  }
}

TEST(FaultInjectorTest, DeterministicGivenSamePlanAndSequence) {
  FaultPlan p;
  p.seed = 7;
  p.links.push_back(LinkFault{"*", "*", 0.3, 0.2, 0.1, 50, 100, 0, 0});
  FaultInjector a(p), b(p);
  a.arm(0);
  b.arm(0);
  for (int i = 0; i < 500; ++i) {
    const Addr src = "n" + std::to_string(i % 5);
    const Addr dst = "n" + std::to_string((i + 1) % 5);
    const FaultDecision da = a.on_message(src, dst, uint64_t(i) * 100);
    const FaultDecision db = b.on_message(src, dst, uint64_t(i) * 100);
    ASSERT_EQ(da.drop, db.drop) << i;
    ASSERT_EQ(da.duplicate, db.duplicate) << i;
    ASSERT_EQ(da.delay_us, db.delay_us) << i;
  }
  EXPECT_EQ(a.decided(), 500u);
  EXPECT_EQ(a.dropped(), b.dropped());
  EXPECT_GT(a.dropped(), 0u);
  EXPECT_GT(a.duplicated(), 0u);
  EXPECT_GT(a.delayed(), 0u);
}

TEST(FaultInjectorTest, ActiveWindowGatesRules) {
  FaultPlan p;
  p.links.push_back(LinkFault{"*", "*", 1.0, 0, 0, 0, 0,
                              /*after_us=*/1'000, /*until_us=*/2'000});
  FaultInjector fi(p);
  fi.arm(500);  // origin
  EXPECT_FALSE(fi.on_message("a", "b", 500).drop);     // t=0 < after
  EXPECT_TRUE(fi.on_message("a", "b", 1'600).drop);    // inside window
  EXPECT_FALSE(fi.on_message("a", "b", 2'600).drop);   // t=2100 >= until
}

// --------------------------- SimFabric wiring -------------------------------

struct SimPair {
  SimFabric sim;
  std::shared_ptr<CounterService> svc = std::make_shared<CounterService>();
  Runtime* cli = nullptr;

  SimPair() {
    sim.add_node("svc", svc);
    SimNodeOpts copts;
    copts.is_client = true;
    cli = sim.add_node("cli", null_service(), copts);
  }
};

TEST(SimFaultTest, DropsCauseTimeout) {
  SimPair f;
  FaultPlan p;
  p.links.push_back(LinkFault{"cli", "svc", 1.0, 0, 0, 0, 0, 0, 0});
  f.sim.set_fault_injector(std::make_shared<FaultInjector>(p));

  Code got = Code::kOk;
  f.sim.post_to("cli", [&] {
    f.cli->call("svc", Message::get("k"),
                [&](Status s, Message) { got = s.code(); }, 200'000);
  });
  f.sim.run_for(1'000'000);
  EXPECT_EQ(got, Code::kTimeout);
  EXPECT_EQ(f.svc->handled.load(), 0u);
  EXPECT_GE(f.sim.fault_injector()->dropped(), 1u);
}

TEST(SimFaultTest, DelayPostponesDelivery) {
  SimPair f;
  FaultPlan p;
  p.links.push_back(LinkFault{"cli", "svc", 0, 0, 0, /*delay_us=*/70'000, 0, 0, 0});
  f.sim.set_fault_injector(std::make_shared<FaultInjector>(p));

  uint64_t reply_at = 0;
  f.sim.post_to("cli", [&] {
    f.cli->call("svc", Message::get("k"),
                [&](Status s, Message) {
                  ASSERT_TRUE(s.ok());
                  reply_at = f.cli->now_us();
                });
  });
  f.sim.run_for(1'000'000);
  EXPECT_GE(reply_at, 70'000u);  // the injected one-way delay is visible
  EXPECT_EQ(f.svc->handled.load(), 1u);
}

TEST(SimFaultTest, DuplicateDeliversTwice) {
  SimPair f;
  FaultPlan p;
  p.links.push_back(LinkFault{"cli", "svc", 0, 1.0, 0, 0, 0, 0, 0});
  f.sim.set_fault_injector(std::make_shared<FaultInjector>(p));

  f.sim.post_to("cli", [&] { f.cli->send("svc", Message::get("k")); });
  f.sim.run_for(200'000);
  EXPECT_EQ(f.svc->handled.load(), 2u);
}

TEST(SimFaultTest, RestartRevivesNodeInPlace) {
  SimPair f;
  f.sim.post_to("cli", [&] { f.cli->send("svc", Message::get("a")); });
  f.sim.run_for(100'000);
  EXPECT_EQ(f.svc->handled.load(), 1u);

  f.sim.kill("svc");
  EXPECT_FALSE(f.sim.restart("cli"));  // alive nodes are not restartable
  f.sim.post_to("cli", [&] { f.cli->send("svc", Message::get("b")); });
  f.sim.run_for(100'000);
  EXPECT_EQ(f.svc->handled.load(), 1u);  // dead: message dropped

  ASSERT_TRUE(f.sim.restart("svc"));
  f.sim.post_to("cli", [&] { f.cli->send("svc", Message::get("c")); });
  f.sim.run_for(100'000);
  EXPECT_EQ(f.svc->handled.load(), 2u);
}

TEST(SimFaultTest, FaultWindowAppliesToRestartedIncarnation) {
  // Fault windows are keyed by address, not by node incarnation: a node that
  // crashes and revives inside a partition window is still partitioned until
  // the window closes. Guards against an injector rebuild on restart
  // silently forgetting open windows.
  SimPair f;
  FaultPlan p;
  PartitionFault pf;
  pf.a = {"cli"};
  pf.b = {"svc"};
  pf.after_us = 50'000;
  pf.until_us = 400'000;
  p.partitions.push_back(pf);
  f.sim.set_fault_injector(std::make_shared<FaultInjector>(p));

  f.sim.post_to("cli", [&] { f.cli->send("svc", Message::get("a")); });
  f.sim.run_for(30'000);
  EXPECT_EQ(f.svc->handled.load(), 1u);  // before the window opens

  f.sim.run_for(70'000);  // t=100ms: window open
  f.sim.kill("svc");
  ASSERT_TRUE(f.sim.restart("svc"));  // revived mid-window
  f.sim.post_to("cli", [&] { f.cli->send("svc", Message::get("b")); });
  f.sim.run_for(100'000);
  EXPECT_EQ(f.svc->handled.load(), 1u);  // still severed for the new incarnation

  f.sim.run_for(300'000);  // past until_us
  f.sim.post_to("cli", [&] { f.cli->send("svc", Message::get("c")); });
  f.sim.run_for(100'000);
  EXPECT_EQ(f.svc->handled.load(), 2u);  // healed
}

TEST(SimFaultTest, ScheduledNodeFaultsCrashAndRestart) {
  SimPair f;
  FaultPlan p;
  p.nodes.push_back(NodeFault{"svc", /*crash_at_us=*/50'000,
                              /*restart_at_us=*/150'000});
  f.sim.post_to("cli", [&] {
    schedule_node_faults(*f.cli, f.sim, p);
    // Probe while down (t=100ms) and after restart (t=200ms).
    f.cli->set_timer(100'000, [&] { f.cli->send("svc", Message::get("x")); });
    f.cli->set_timer(200'000, [&] { f.cli->send("svc", Message::get("y")); });
  });
  f.sim.run_for(400'000);
  EXPECT_EQ(f.svc->handled.load(), 1u);  // only the post-restart probe landed
}

// ----------------------- Thread / TCP fabric wiring -------------------------

TEST(ThreadFaultTest, DropsCauseTimeoutAndHealAfterClearing) {
  ThreadFabric fab;
  auto svc = std::make_shared<CounterService>();
  fab.add_node("svc", svc);
  FaultPlan p;
  p.links.push_back(LinkFault{"*", "svc", 1.0, 0, 0, 0, 0, 0, 0});
  fab.set_fault_injector(std::make_shared<FaultInjector>(p));

  auto r = fab.call_sync("svc", Message::get("k"), 150'000);
  EXPECT_EQ(r.status().code(), Code::kTimeout);
  EXPECT_EQ(svc->handled.load(), 0u);

  fab.set_fault_injector(nullptr);
  r = fab.call_sync("svc", Message::get("k"));
  EXPECT_TRUE(r.ok());
}

TEST(ThreadFaultTest, DuplicateDeliversTwice) {
  ThreadFabric fab;
  auto svc = std::make_shared<CounterService>();
  fab.add_node("svc", svc);
  auto sender = fab.add_node("sender", null_service());
  FaultPlan p;
  p.links.push_back(LinkFault{"sender", "svc", 0, 1.0, 0, 0, 0, 0, 0});
  fab.set_fault_injector(std::make_shared<FaultInjector>(p));

  sender->post([sender] { sender->send("svc", Message::get("k")); });
  for (int i = 0; i < 100 && svc->handled.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(svc->handled.load(), 2u);
}

TEST(ThreadFaultTest, RestartServesAgain) {
  ThreadFabric fab;
  auto svc = std::make_shared<CounterService>();
  fab.add_node("svc", svc);
  ASSERT_TRUE(fab.call_sync("svc", Message::get("k")).ok());
  fab.kill("svc");
  EXPECT_EQ(fab.call_sync("svc", Message::get("k"), 100'000).status().code(),
            Code::kTimeout);
  ASSERT_TRUE(fab.restart("svc"));
  auto r = fab.call_sync("svc", Message::get("k"));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(svc->handled.load(), 2u);
}

TEST(TcpFaultTest, DropsCauseTimeout) {
  TcpFabric fab;
  auto svc = std::make_shared<CounterService>();
  const Addr addr = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  fab.add_node(addr, svc);
  FaultPlan p;
  p.links.push_back(LinkFault{"*", addr, 1.0, 0, 0, 0, 0, 0, 0});
  fab.set_fault_injector(std::make_shared<FaultInjector>(p));

  auto r = fab.call_sync(addr, Message::get("k"), 200'000);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(svc->handled.load(), 0u);

  fab.set_fault_injector(nullptr);
  r = fab.call_sync(addr, Message::get("k"));
  EXPECT_TRUE(r.ok()) << r.status().to_string();
}

TEST(TcpFaultTest, RestartRebindsAndServes) {
  TcpFabric fab;
  auto svc = std::make_shared<CounterService>();
  const Addr addr = "127.0.0.1:" + std::to_string(TcpFabric::pick_port());
  fab.add_node(addr, svc);
  ASSERT_TRUE(fab.call_sync(addr, Message::get("k")).ok());
  fab.kill(addr);
  EXPECT_FALSE(fab.call_sync(addr, Message::get("k"), 200'000).ok());
  ASSERT_TRUE(fab.restart(addr));  // SO_REUSEADDR rebind on the same port
  auto r = fab.call_sync(addr, Message::get("k"));
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(svc->handled.load(), 2u);
}

}  // namespace
}  // namespace bespokv
