// Property tests for the consistency guarantees:
//  * MS+SC (chain replication) and AA+SC (DLM) histories are linearizable.
//  * MS+EC admits stale reads (and the checker detects them), but converges.
//  * AA+EC resolves conflicting writes identically everywhere (shared-log
//    order), property-checked over many seeds.
#include <gtest/gtest.h>

#include "tests/linearizability.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::HistOp;
using testing::linearizable;
using testing::SimEnv;
using testing::small_cluster;

// ------------------------ checker self-tests --------------------------------

TEST(Checker, AcceptsSequentialHistory) {
  std::vector<HistOp> h = {
      {true, "a", 0, 10},
      {false, "a", 20, 30},
      {true, "b", 40, 50},
      {false, "b", 60, 70},
  };
  EXPECT_TRUE(linearizable(h));
}

TEST(Checker, AcceptsConcurrentOverlap) {
  // Read overlaps the write; either order is legal depending on the value.
  std::vector<HistOp> h = {
      {true, "a", 0, 100},
      {false, "", 10, 20},  // may linearize before the write
  };
  EXPECT_TRUE(linearizable(h, ""));
  std::vector<HistOp> h2 = {
      {true, "a", 0, 100},
      {false, "a", 10, 20},  // or after it
  };
  EXPECT_TRUE(linearizable(h2, ""));
}

TEST(Checker, RejectsStaleReadAfterAckedWrite) {
  // Write "b" fully completes, then a later read returns the old value.
  std::vector<HistOp> h = {
      {true, "a", 0, 10},
      {true, "b", 20, 30},
      {false, "a", 40, 50},
  };
  EXPECT_FALSE(linearizable(h));
}

TEST(Checker, RejectsValueFromNowhere) {
  std::vector<HistOp> h = {
      {true, "a", 0, 10},
      {false, "z", 20, 30},
  };
  EXPECT_FALSE(linearizable(h));
}

// --------------------- history collection harness ---------------------------

// Runs `writers` + `readers` concurrent clients against one key and collects
// a timestamped history through the real client library.
std::vector<HistOp> collect_history(SimEnv& env, int writers, int readers,
                                    int ops_per_client,
                                    ConsistencyLevel read_level,
                                    uint64_t gap_us) {
  struct Shared {
    std::vector<HistOp> hist;
    int outstanding = 0;
  };
  auto shared = std::make_shared<Shared>();
  int client_id = 0;
  auto spawn = [&](bool is_writer) {
    const int id = client_id++;
    SimNodeOpts copts;
    copts.is_client = true;
    const Addr addr = "hist/client" + std::to_string(id);
    Runtime* rt = env.sim.add_node(addr,
                                   std::make_shared<LambdaService>(
                                       [](Runtime&, const Addr&, Message, Replier r) {
                                         r(Message::reply(Code::kInvalid));
                                       }),
                                   copts);
    auto kv = std::make_shared<KvClient>(
        rt, ClientConfig{env.cluster.coordinator_addr()});
    ++shared->outstanding;
    env.sim.post_to(addr, [=, &env] {
      kv->connect([=, &env](Status) {
        auto remaining = std::make_shared<int>(ops_per_client);
        auto step = std::make_shared<std::function<void()>>();
        *step = [=, &env] {
          if (--*remaining < 0) {
            --shared->outstanding;
            return;
          }
          const uint64_t inv = rt->now_us();
          if (is_writer) {
            const std::string val =
                "w" + std::to_string(id) + "." + std::to_string(*remaining);
            kv->put("the-key", val, [=, &env](Status s) {
              if (s.ok()) {
                shared->hist.push_back(HistOp{true, val, inv, rt->now_us()});
              }
              rt->set_timer(gap_us, *step);
            });
          } else {
            kv->get("the-key",
                    [=, &env](Result<std::string> r) {
                      const std::string got = r.ok() ? r.value() : "";
                      shared->hist.push_back(
                          HistOp{false, got, inv, rt->now_us()});
                      rt->set_timer(gap_us, *step);
                    },
                    "", read_level);
          }
        };
        (*step)();
      });
    });
  };
  for (int i = 0; i < writers; ++i) spawn(true);
  for (int i = 0; i < readers; ++i) spawn(false);
  while (shared->outstanding > 0) env.sim.run_for(10'000);
  return shared->hist;
}

TEST(LinearizabilityProperty, MsScChainHistoriesAreLinearizable) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SimFabricOpts fopts;
    fopts.seed = seed;
    SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kStrong, 1),
               fopts);
    auto hist = collect_history(env, /*writers=*/2, /*readers=*/2,
                                /*ops_per_client=*/4,
                                ConsistencyLevel::kDefault, 1'000);
    ASSERT_LE(hist.size(), 16u);
    EXPECT_TRUE(linearizable(hist)) << "seed " << seed;
  }
}

TEST(LinearizabilityProperty, AaScLockedHistoriesAreLinearizable) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SimFabricOpts fopts;
    fopts.seed = seed;
    SimEnv env(small_cluster(Topology::kActiveActive, Consistency::kStrong, 1),
               fopts);
    auto hist = collect_history(env, 2, 2, 4, ConsistencyLevel::kDefault,
                                1'000);
    ASSERT_LE(hist.size(), 16u);
    EXPECT_TRUE(linearizable(hist)) << "seed " << seed;
  }
}

TEST(EventualConsistencyProperty, MsEcAdmitsStaleReadsButConverges) {
  // Deterministic stale-read construction: write v1, let it propagate; write
  // v2 (acked by master only), then immediately read from a slave replica.
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("the-key", "v1").ok());
  env.settle(300'000);

  std::vector<HistOp> hist;
  const uint64_t inv1 = env.sim.now_us();
  ASSERT_TRUE(kv.put("the-key", "v2").ok());
  hist.push_back(HistOp{true, "v2", inv1, env.sim.now_us()});

  // Read straight from a slave datalet before propagation flushes. The read
  // is issued strictly after the write's response (sequential in this test),
  // so its invocation timestamp must exceed the write's response timestamp.
  const uint64_t inv2 = env.sim.now_us() + 1;
  auto stale = env.cluster.datalet(0, 2)->get("the-key");
  ASSERT_TRUE(stale.ok());
  hist.push_back(HistOp{false, stale.value().value, inv2, inv2 + 1});

  if (stale.value().value == "v1") {
    // The stale read makes this history non-linearizable — as expected of EC
    // (and the checker proves it).
    hist.insert(hist.begin(), HistOp{true, "v1", 0, 1});
    EXPECT_FALSE(linearizable(hist));
  }
  // Convergence: after quiescence everyone serves v2.
  env.settle(300'000);
  EXPECT_EQ(env.cluster.datalet(0, 2)->get("the-key").value().value, "v2");
}

TEST(AaEcProperty, ConcurrentConflictsConvergeIdenticallyAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SimFabricOpts fopts;
    fopts.seed = seed;
    SimEnv env(small_cluster(Topology::kActiveActive, Consistency::kEventual, 1),
               fopts);
    // Three actives each write the same key concurrently, several rounds.
    Runtime* rt = env.cluster.admin();
    for (int round = 0; round < 5; ++round) {
      env.sim.post_to(env.cluster.admin_addr(), [&, round, rt] {
        for (int r = 0; r < 3; ++r) {
          rt->call(env.cluster.controlet_addr(0, r),
                   Message::put("conflict",
                                "r" + std::to_string(round) + "w" +
                                    std::to_string(r)),
                   [](Status, Message) {});
        }
      });
      env.settle(50'000);
    }
    env.settle(500'000);
    auto v0 = env.cluster.datalet(0, 0)->get("conflict");
    auto v1 = env.cluster.datalet(0, 1)->get("conflict");
    auto v2 = env.cluster.datalet(0, 2)->get("conflict");
    ASSERT_TRUE(v0.ok() && v1.ok() && v2.ok()) << "seed " << seed;
    EXPECT_EQ(v0.value().value, v1.value().value) << "seed " << seed;
    EXPECT_EQ(v1.value().value, v2.value().value) << "seed " << seed;
    // The winner must be the highest shared-log sequence (global order).
    EXPECT_EQ(v0.value().seq, v1.value().seq);
    EXPECT_EQ(v1.value().seq, v2.value().seq);
  }
}

TEST(ChainPrefixProperty, SlaveStateIsPrefixOfMasterUnderLoad) {
  // Under MS+EC, a slave's applied writes must always be a subset of the
  // master's (the master is the only writer and propagates in order).
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SyncKv kv = env.client();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").ok());
    if (i % 10 == 0) {
      // Mid-stream: everything a slave has, the master has too.
      size_t masters = env.cluster.datalet(0, 0)->size();
      size_t slaves = env.cluster.datalet(0, 1)->size();
      EXPECT_LE(slaves, masters);
      env.cluster.datalet(0, 1)->for_each(
          [&](std::string_view key, const Entry&) {
            EXPECT_TRUE(env.cluster.datalet(0, 0)->get(key).ok());
          });
    }
  }
}

}  // namespace
}  // namespace bespokv
