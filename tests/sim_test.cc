#include <gtest/gtest.h>

#include "src/net/sim_fabric.h"
#include "src/sim/event_queue.h"

namespace bespokv {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now_us(), 30u);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelSuppressesEvent) {
  sim::EventQueue q;
  bool ran = false;
  const uint64_t id = q.schedule_at(10, [&] { ran = true; });
  q.cancel(id);
  q.run_all();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  sim::EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] { ++count; });
  q.schedule_at(20, [&] { ++count; });
  q.run_until(15);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.now_us(), 15u);
  q.run_all();
  EXPECT_EQ(count, 2);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  sim::EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_after(5, recurse);
  };
  q.schedule_at(0, recurse);
  q.run_all();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now_us(), 45u);
}

// ------------------------------- SimFabric ----------------------------------

class EchoService : public Service {
 public:
  void handle(const Addr&, Message req, Replier reply) override {
    ++handled;
    Message rep = Message::reply(Code::kOk, req.key);
    reply(std::move(rep));
  }
  int handled = 0;
};

TEST(SimFabricTest, RpcRoundTrip) {
  SimFabric sim;
  auto echo = std::make_shared<EchoService>();
  sim.add_node("server", echo);
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* client = sim.add_node("client",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  bool got = false;
  sim.post_to("client", [&] {
    client->call("server", Message::get("hello"), [&](Status s, Message rep) {
      EXPECT_TRUE(s.ok());
      EXPECT_EQ(rep.value, "hello");
      got = true;
    });
  });
  sim.run_for(10'000'000);
  EXPECT_TRUE(got);
  EXPECT_EQ(echo->handled, 1);
}

TEST(SimFabricTest, CallToDeadNodeTimesOut) {
  SimFabric sim;
  sim.add_node("server", std::make_shared<EchoService>());
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* client = sim.add_node("client",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  sim.kill("server");
  Status result = Status::Ok();
  bool done = false;
  sim.post_to("client", [&] {
    client->call("server", Message::get("x"),
                 [&](Status s, Message) {
                   result = s;
                   done = true;
                 },
                 200'000);
  });
  sim.run_for(1'000'000);
  EXPECT_TRUE(done);
  EXPECT_EQ(result.code(), Code::kTimeout);
}

TEST(SimFabricTest, PartitionDropsTrafficBothWaysUntilHealed) {
  SimFabric sim;
  auto echo = std::make_shared<EchoService>();
  sim.add_node("server", echo);
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* client = sim.add_node("client",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  sim.partition("client", "server", true);
  Status r1 = Status::Ok();
  sim.post_to("client", [&] {
    client->call("server", Message::get("x"),
                 [&](Status s, Message) { r1 = s; }, 100'000);
  });
  sim.run_for(500'000);
  EXPECT_EQ(r1.code(), Code::kTimeout);
  EXPECT_EQ(echo->handled, 0);

  sim.partition("client", "server", false);
  bool ok = false;
  sim.post_to("client", [&] {
    client->call("server", Message::get("x"),
                 [&](Status s, Message) { ok = s.ok(); }, 100'000);
  });
  sim.run_for(500'000);
  EXPECT_TRUE(ok);
}

TEST(SimFabricTest, TimersFireAndCancel) {
  SimFabric sim;
  int fired = 0;
  int periodic = 0;
  Runtime* rt = sim.add_node("n", std::make_shared<LambdaService>(
      [](Runtime&, const Addr&, Message, Replier r) {
        r(Message::reply(Code::kInvalid));
      }));
  uint64_t cancelled_id = 0;
  uint64_t periodic_id = 0;
  sim.post_to("n", [&] {
    rt->set_timer(1'000, [&] { ++fired; });
    cancelled_id = rt->set_timer(2'000, [&] { ++fired; });
    rt->cancel_timer(cancelled_id);
    periodic_id = rt->set_periodic(10'000, [&] {
      if (++periodic == 3) rt->cancel_timer(periodic_id);
    });
  });
  sim.run_for(200'000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(periodic, 3);
}

TEST(SimFabricTest, ServiceTimeLimitsThroughput) {
  // One server with 100us service time, hammered by 32 closed-loop clients
  // for 1 virtual second, must complete ~10k ops (capacity), not 32x more.
  SimFabricOpts fopts;
  fopts.link_latency_us = 10;
  SimFabric sim(fopts);
  SimNodeOpts sopts;
  sopts.base_service_us = 100;
  sopts.per_kb_service_us = 0;
  auto echo = std::make_shared<EchoService>();
  sim.add_node("server", echo, sopts);

  uint64_t completed = 0;
  for (int i = 0; i < 32; ++i) {
    SimNodeOpts copts;
    copts.is_client = true;
    const Addr addr = "client" + std::to_string(i);
    Runtime* rt = sim.add_node(addr, std::make_shared<LambdaService>(
        [](Runtime&, const Addr&, Message, Replier r) {
          r(Message::reply(Code::kInvalid));
        }), copts);
    sim.post_to(addr, [rt, &completed] {
      auto loop = std::make_shared<std::function<void()>>();
      *loop = [rt, &completed, loop] {
        rt->call("server", Message::get("k"), [&completed, loop](Status s, Message) {
          if (s.ok()) ++completed;
          (*loop)();
        });
      };
      (*loop)();
    });
  }
  sim.run_until(1'000'000);
  // Capacity bound: 1e6us / (100us service + 3x14us transport) ≈ 7k.
  EXPECT_GT(completed, 4'000u);
  EXPECT_LT(completed, 11'000u);
}

TEST(SimFabricTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimFabric sim;
    auto echo = std::make_shared<EchoService>();
    sim.add_node("server", echo);
    SimNodeOpts copts;
    copts.is_client = true;
    Runtime* rt = sim.add_node("client", std::make_shared<LambdaService>(
        [](Runtime&, const Addr&, Message, Replier r) {
          r(Message::reply(Code::kInvalid));
        }), copts);
    uint64_t completed = 0;
    sim.post_to("client", [rt, &completed] {
      auto loop = std::make_shared<std::function<void()>>();
      *loop = [rt, &completed, loop] {
        rt->call("server", Message::get("k"),
                 [&completed, loop](Status, Message) {
                   ++completed;
                   (*loop)();
                 });
      };
      (*loop)();
    });
    sim.run_until(300'000);
    return std::make_pair(completed, sim.messages_delivered());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TransportModelTest, FastpathIsCheaperThanSocket) {
  const auto sock = TransportModel::socket_model();
  const auto fast = TransportModel::fastpath_model();
  EXPECT_LT(fast.per_msg_us, sock.per_msg_us);
  EXPECT_LT(fast.per_kb_us, sock.per_kb_us);
  EXPECT_LT(fast.wire_latency_us, sock.wire_latency_us);
}

}  // namespace
}  // namespace bespokv
