// Standalone verification driver for the nightly sweep (not a gtest binary):
//
//   verify_driver --config=ms_sc|ms_ec|aa_sc|aa_ec --seed=N [--out=DIR]
//                 [--scenario=FILE] [--bug=stale-read-cache --bug-rate=R]
//                 [--no-shrink] [--partitions] [--split-brain] [--no-fencing]
//                 [--crash-all] [--no-wal] [--migration]
//                 [--migration-no-fencing]
//
// --partitions draws one windowed network partition into the random scenario
// (the nightly partition-enabled sweep). --split-brain runs the scripted
// acceptance scenario: an asymmetric partition cuts the master off from the
// coordinator while clients and chain peers still reach it; it must pass
// with fencing on and produce a violation with --no-fencing.
//
// --crash-all runs the ISSUE 7 durability acceptance scenario: every replica
// gets a WAL-backed engine on a shared power-loss Env, and the whole data
// plane crashes mid-workload (torn tail writes included), restarting 250ms
// later. It must show zero acked-write loss. --no-wal is the paired negative
// control (forces ms_sc): the same power loss with the WAL disabled must
// LOSE acked writes — if it passes, the checker is blind and the sweep exits 1.
//
// --migration runs the ISSUE 10 acceptance family: a range-partitioned
// cluster splits a shard live mid-workload under a seeded chaos draw (clean
// split to a new shard, coordinator crash+restart, a one-way
// coordinator→master cut across the dual-write window, or the old owner
// crashing near the cutover). Zero acked-write loss / zero linearizability
// violations required. --migration-no-fencing is the paired negative control
// (forces ms_sc): the same cut with fencing off must LOSE acked writes via
// the deposed owner's stale-epoch acks — a pass means the oracle is blind.
//
// Generates a random Scenario from the seed (workload + fault plan + live
// transitions, see src/verify/scenario.h), runs it on the deterministic sim
// fabric, and checks the consistency contract of the chosen config:
// linearizability for *_sc, session monotonic reads + replica convergence
// for *_ec, scan prefix consistency everywhere.
//
// On a violation the driver shrinks the scenario to a minimal reproducing
// witness and writes four artifacts into --out (uploaded by CI):
//   scenario-<tag>.json   the original failing scenario
//   faults-<tag>.json     its compiled fault schedule (partition windows)
//   minimal-<tag>.json    the shrunken scenario — replay with --scenario=
//   history-<tag>.json    the op history of the minimal run
//
// Exit codes: 0 = pass, 1 = violation, 2 = usage / harness error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/logging.h"
#include "src/verify/runner.h"
#include "src/verify/shrinker.h"

namespace bespokv::verify {
namespace {

struct Args {
  std::string config = "ms_sc";
  uint64_t seed = 1;
  std::string out = ".";
  std::string scenario_file;
  std::string bug = "none";
  double bug_rate = 0.5;
  int cores = 0;  // >0 overrides Scenario::cores (per-node sim service cores)
  bool shrink = true;
  bool partitions = false;   // draw a network partition into the scenario
  bool split_brain = false;  // run the scripted ISSUE 5 acceptance scenario
  bool no_fencing = false;   // negative test: disable lease/epoch fencing
  bool crash_all = false;    // run the ISSUE 7 whole-cluster power-loss preset
  bool no_wal = false;       // negative control: WAL off, loss expected
  bool migration = false;    // run the ISSUE 10 migration-under-chaos preset
  bool migration_no_fencing = false;  // negative control: loss expected
};

bool parse_args(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--config=", 0) == 0) {
      a->config = arg.substr(9);
    } else if (arg.rfind("--seed=", 0) == 0) {
      a->seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--out=", 0) == 0) {
      a->out = arg.substr(6);
    } else if (arg.rfind("--scenario=", 0) == 0) {
      a->scenario_file = arg.substr(11);
    } else if (arg.rfind("--bug=", 0) == 0) {
      a->bug = arg.substr(6);
    } else if (arg.rfind("--bug-rate=", 0) == 0) {
      a->bug_rate = std::atof(arg.c_str() + 11);
    } else if (arg.rfind("--cores=", 0) == 0) {
      a->cores = std::atoi(arg.c_str() + 8);
      if (a->cores < 1) {
        std::fprintf(stderr, "--cores must be >= 1\n");
        return false;
      }
    } else if (arg == "--no-shrink") {
      a->shrink = false;
    } else if (arg == "--partitions") {
      a->partitions = true;
    } else if (arg == "--split-brain") {
      a->split_brain = true;
    } else if (arg == "--no-fencing") {
      a->no_fencing = true;
    } else if (arg == "--crash-all") {
      a->crash_all = true;
    } else if (arg == "--no-wal") {
      a->crash_all = true;  // the negative control is a crash_all variant
      a->no_wal = true;
    } else if (arg == "--migration") {
      a->migration = true;
    } else if (arg == "--migration-no-fencing") {
      a->migration_no_fencing = true;
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", arg.c_str());
      return false;
    }
  }
  return a->config == "ms_sc" || a->config == "ms_ec" || a->config == "aa_sc" ||
         a->config == "aa_ec";
}

bool config_of(const std::string& name, Topology* t, Consistency* c) {
  *t = name.rfind("ms", 0) == 0 ? Topology::kMasterSlave
                                : Topology::kActiveActive;
  *c = name.size() >= 2 && name.substr(name.size() - 2) == "sc"
           ? Consistency::kStrong
           : Consistency::kEventual;
  return true;
}

Result<Scenario> load_scenario(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return Scenario::decode(ss.str());
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream f(path);
  f << body << "\n";
}

}  // namespace
}  // namespace bespokv::verify

int main(int argc, char** argv) {
  using namespace bespokv::verify;
  // BKV_LOG=debug|info|warn|error|off (default warn) — fault/recovery
  // timelines are logged at info, which CI triage turns on per-rerun.
  if (const char* lvl = std::getenv("BKV_LOG")) {
    using bespokv::LogLevel;
    const std::string s = lvl;
    bespokv::Logger::instance().set_level(
        s == "debug"  ? LogLevel::kDebug
        : s == "info" ? LogLevel::kInfo
        : s == "off"  ? LogLevel::kOff
        : s == "error" ? LogLevel::kError
                       : LogLevel::kWarn);
  }
  Args args;
  if (!parse_args(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: verify_driver --config=ms_sc|ms_ec|aa_sc|aa_ec "
                 "--seed=N [--out=DIR] [--scenario=FILE] "
                 "[--bug=stale-read-cache --bug-rate=R] [--no-shrink] "
                 "[--partitions] [--split-brain] [--no-fencing] "
                 "[--crash-all] [--no-wal] [--cores=N]\n");
    return 2;
  }

  Scenario sc;
  if (!args.scenario_file.empty()) {
    auto loaded = load_scenario(args.scenario_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "verify_driver: bad --scenario: %s\n",
                   loaded.status().to_string().c_str());
      return 2;
    }
    sc = loaded.value();
  } else if (args.split_brain) {
    sc = Scenario::split_brain(args.seed);
    args.config = "ms_sc";  // the preset is MS+SC by construction
  } else if (args.migration_no_fencing) {
    sc = Scenario::migration_no_fencing(args.seed);
    args.config = "ms_sc";  // loss shows as a lin violation
  } else if (args.migration) {
    bespokv::Topology t;
    bespokv::Consistency c;
    config_of(args.config, &t, &c);
    sc = Scenario::migration(args.seed, t, c);
  } else if (args.crash_all) {
    if (args.no_wal) args.config = "ms_sc";  // loss shows as a lin violation
    bespokv::Topology t;
    bespokv::Consistency c;
    config_of(args.config, &t, &c);
    sc = Scenario::crash_all(args.seed, t, c, /*wal_enabled=*/!args.no_wal);
  } else {
    bespokv::Topology t;
    bespokv::Consistency c;
    config_of(args.config, &t, &c);
    sc = Scenario::random(args.seed, t, c, args.partitions);
    auto bug = parse_bug(args.bug);
    if (!bug.ok()) {
      std::fprintf(stderr, "verify_driver: %s\n",
                   bug.status().to_string().c_str());
      return 2;
    }
    sc.bug = bug.value();
    if (sc.bug != BugKind::kNone) sc.bug_rate = args.bug_rate;
  }
  if (args.no_fencing) sc.disable_fencing = true;
  if (args.cores > 0) sc.cores = args.cores;
  std::fprintf(stderr,
               "verify_driver: config=%s seed=%llu clients=%d ops=%d "
               "cores=%d transitions=%zu migrations=%zu partitions=%zu "
               "bug=%s%s%s\n",
               args.config.c_str(),
               static_cast<unsigned long long>(sc.seed), sc.clients,
               sc.ops_per_client, sc.cores, sc.transitions.size(),
               sc.migrations.size(), sc.faults.partitions.size(),
               bug_name(sc.bug),
               sc.faults.crash_all.empty()
                   ? ""
                   : (sc.durability.wal_disable ? " CRASH-ALL WAL-DISABLED"
                                                : " CRASH-ALL"),
               sc.disable_fencing ? " FENCING-DISABLED" : "");

  RunResult r = run_scenario(sc);
  if (!r.completed) {
    std::fprintf(stderr, "verify_driver: harness error: %s\n",
                 r.error.c_str());
    return 2;
  }
  if (args.no_wal || args.migration_no_fencing) {
    // Negative control: the run must LOSE acked writes. A pass here means
    // the checker cannot see what the WAL (or the migration's epoch fencing)
    // is protecting against.
    if (r.violation()) {
      std::fprintf(stderr,
                   "verify_driver: PASS (negative control lost acked writes "
                   "as expected: %s)\n",
                   r.report.to_string().c_str());
      return 0;
    }
    std::fprintf(stderr,
                 args.no_wal
                     ? "verify_driver: FAIL — WAL disabled yet no acked-write "
                       "loss detected; the durability gate is not observing "
                       "anything\n"
                     : "verify_driver: FAIL — fencing disabled across a live "
                       "migration yet no acked-write loss detected; the "
                       "migration gate is not observing anything\n");
    return 1;
  }
  if (!r.violation()) {
    std::fprintf(stderr, "verify_driver: PASS (%zu ops, %llu states)\n",
                 r.history.size(),
                 static_cast<unsigned long long>(r.report.states_explored));
    return 0;
  }

  std::fprintf(stderr, "verify_driver: VIOLATION: %s\n",
               r.report.to_string().c_str());
  if (!r.report.key.empty()) {
    for (const ReplicaState& rs : r.replicas) {
      auto it = rs.kv.find(r.report.key);
      if (it == rs.kv.end()) {
        std::fprintf(stderr, "verify_driver:   %s: <absent>\n",
                     rs.node.c_str());
      } else {
        std::fprintf(stderr, "verify_driver:   %s: '%s' seq=%llu\n",
                     rs.node.c_str(), it->second.first.c_str(),
                     static_cast<unsigned long long>(it->second.second));
      }
    }
  }
  const std::string tag = args.config +
                          (sc.faults.partitions.empty() ? "" : "-part") +
                          (sc.faults.crash_all.empty() ? "" : "-crash") +
                          (sc.migrations.empty() ? "" : "-mig") +
                          "-seed" + std::to_string(sc.seed);
  write_file(args.out + "/scenario-" + tag + ".json", sc.encode());
  // The compiled fault schedule on its own (partition windows included), so
  // a CI triager can see the cut timeline without digging through the full
  // scenario dump.
  write_file(args.out + "/faults-" + tag + ".json",
             sc.faults.to_json().dump(2));

  RunResult final = r;
  Scenario minimal = sc;
  if (args.shrink) {
    ShrinkOptions so;
    so.max_runs = 200;
    ShrinkResult sr = shrink(sc, so);
    minimal = sr.minimal;
    final = sr.final_run;
    std::fprintf(stderr,
                 "verify_driver: shrank %zu -> %zu ops in %d runs\n",
                 sr.original_ops, sr.minimal_ops, sr.runs);
  }
  write_file(args.out + "/minimal-" + tag + ".json", minimal.encode());
  write_file(args.out + "/history-" + tag + ".json",
             final.history.to_json().dump(2));
  std::fprintf(stderr,
               "verify_driver: FAIL — wrote scenario/minimal/history-%s.json "
               "to %s (replay: verify_driver --scenario=%s/minimal-%s.json)\n",
               tag.c_str(), args.out.c_str(), args.out.c_str(), tag.c_str());
  return 1;
}
