// Client-library tests: routing correctness, queueing before connect, map
// refresh on stale routing, remote datalet handles, and determinism of a
// full cluster under the DES.
#include <gtest/gtest.h>

#include "src/datalet/ht.h"
#include "src/datalet/service.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

TEST(KvClientTest, OpsIssuedBeforeConnectAreQueued) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* rt = env.sim.add_node("kvc/c",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  auto kv = std::make_shared<KvClient>(
      rt, ClientConfig{env.cluster.coordinator_addr()});
  Status put_result = Status::Internal("pending");
  std::string got;
  env.sim.post_to("kvc/c", [&, kv] {
    // Issue before connect completes: the client must queue, then flush in
    // order. The read is strong so it routes to the master, which processes
    // the queued put first (FIFO delivery on the same link).
    kv->put("early", "bird", [&](Status s) { put_result = s; });
    kv->get("early",
            [&](Result<std::string> r) { got = r.value_or("<err>"); }, "",
            ConsistencyLevel::kStrong);
    kv->connect([](Status) {});
  });
  env.settle(500'000);
  EXPECT_TRUE(put_result.ok()) << put_result.to_string();
  EXPECT_EQ(got, "bird");
  EXPECT_TRUE(kv->ready());
}

TEST(KvClientTest, BatchPutThenBatchGetPipelines) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* rt = env.sim.add_node("kvc/b",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  auto kv = std::make_shared<KvClient>(
      rt, ClientConfig{env.cluster.coordinator_addr()});
  Status batch_status = Status::Internal("pending");
  std::vector<Result<std::string>> batch_values;
  bool gets_done = false;
  env.sim.post_to("kvc/b", [&, kv] {
    kv->connect([&, kv](Status) {
      std::vector<KV> kvs;
      for (int i = 0; i < 16; ++i) {
        kvs.push_back(KV{"bk" + std::to_string(i), "bv" + std::to_string(i), 0});
      }
      kv->batch_put(std::move(kvs), [&, kv](Status s) {
        batch_status = s;
        std::vector<std::string> keys;
        for (int i = 0; i < 16; ++i) keys.push_back("bk" + std::to_string(i));
        keys.push_back("bk-missing");
        kv->batch_get(std::move(keys),
                      [&](std::vector<Result<std::string>> rs) {
                        batch_values = std::move(rs);
                        gets_done = true;
                      },
                      "", ConsistencyLevel::kStrong);
      });
    });
  });
  env.settle(2'000'000);
  ASSERT_TRUE(gets_done);
  EXPECT_TRUE(batch_status.ok()) << batch_status.to_string();
  ASSERT_EQ(batch_values.size(), 17u);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(batch_values[static_cast<size_t>(i)].ok()) << i;
    EXPECT_EQ(batch_values[static_cast<size_t>(i)].value(),
              "bv" + std::to_string(i));
  }
  EXPECT_FALSE(batch_values[16].ok());  // missing key reports per-slot error
}

TEST(KvClientTest, EmptyBatchesCompleteImmediately) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* rt = env.sim.add_node("kvc/e",
                                 std::make_shared<LambdaService>(
                                     [](Runtime&, const Addr&, Message, Replier r) {
                                       r(Message::reply(Code::kInvalid));
                                     }),
                                 copts);
  auto kv = std::make_shared<KvClient>(
      rt, ClientConfig{env.cluster.coordinator_addr()});
  bool put_done = false;
  bool get_done = false;
  env.sim.post_to("kvc/e", [&, kv] {
    kv->connect([&, kv](Status) {
      kv->batch_put({}, [&](Status s) { put_done = s.ok(); });
      kv->batch_get({}, [&](std::vector<Result<std::string>> rs) {
        get_done = rs.empty();
      });
    });
  });
  env.settle(500'000);
  EXPECT_TRUE(put_done);
  EXPECT_TRUE(get_done);
}

TEST(KvClientTest, RefreshesMapAfterFailover) {
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kEventual, 1);
  o.coordinator.hb_period_us = 100'000;
  o.controlet.hb_period_us = 50'000;
  SimEnv env(std::move(o));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  const uint64_t epoch_before = kv.shard_map().epoch;
  env.cluster.kill_controlet(0, 0);
  env.settle(1'500'000);
  // The next write hits the dead master, fails, refreshes, retries, succeeds.
  ASSERT_TRUE(kv.put("k2", "v2").ok());
  EXPECT_GT(kv.shard_map().epoch, epoch_before);
  EXPECT_EQ(kv.get("k2").value_or(""), "v2");
}

TEST(KvClientTest, EventualReadsSpreadAcrossReplicas) {
  SimEnv env(small_cluster(Topology::kMasterSlave, Consistency::kEventual, 1));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  env.settle(300'000);
  // Issue many eventual reads; with salt-based spreading all replicas serve.
  // Verify indirectly: all reads succeed even though slaves would reject
  // writes, proving reads are not pinned to the master.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(kv.get("k").ok()) << i;
  }
}

TEST(DataletHandleTest, RemoteExecutionMirrorsLocal) {
  SimFabric sim;
  auto engine = std::make_shared<HashTableDatalet>();
  sim.add_node("dh/remote", std::make_shared<DataletService>(engine));
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* rt = sim.add_node("dh/caller",
                             std::make_shared<LambdaService>(
                                 [](Runtime&, const Addr&, Message, Replier r) {
                                   r(Message::reply(Code::kInvalid));
                                 }),
                             copts);
  DataletHandle remote(rt, "dh/remote");
  EXPECT_FALSE(remote.is_local());

  Code put_code = Code::kInternal;
  std::string got;
  Code missing = Code::kInternal;
  sim.post_to("dh/caller", [&] {
    remote.execute(Message::put("rk", "rv"), [&](Message rep) {
      put_code = rep.code;
      remote.execute(Message::get("rk"), [&](Message rep2) {
        got = rep2.value;
        remote.execute(Message::get("absent"), [&](Message rep3) {
          missing = rep3.code;
        });
      });
    });
  });
  sim.run_for(1'000'000);
  EXPECT_EQ(put_code, Code::kOk);
  EXPECT_EQ(got, "rv");
  EXPECT_EQ(missing, Code::kNotFound);
  EXPECT_TRUE(engine->get("rk").ok());  // genuinely stored remotely

  // Local handle short-circuits without the fabric.
  DataletHandle local(engine);
  EXPECT_TRUE(local.is_local());
  bool done = false;
  local.execute(Message::get("rk"), [&](Message rep) {
    EXPECT_EQ(rep.value, "rv");
    done = true;
  });
  EXPECT_TRUE(done);

  // A dead remote surfaces as unavailable/timeout, not a hang.
  sim.kill("dh/remote");
  Code dead = Code::kOk;
  sim.post_to("dh/caller", [&] {
    remote.execute(Message::get("rk"), [&](Message rep) { dead = rep.code; });
  });
  sim.run_for(3'000'000);
  EXPECT_TRUE(dead == Code::kTimeout || dead == Code::kUnavailable);
}

TEST(Determinism, FullClusterRunsAreBitIdentical) {
  auto run_once = [](uint64_t seed) {
    SimFabricOpts fopts;
    fopts.seed = seed;
    SimEnv env(small_cluster(Topology::kActiveActive, Consistency::kEventual, 2),
               fopts);
    SyncKv kv = env.client();
    for (int i = 0; i < 50; ++i) {
      kv.put("k" + std::to_string(i % 17), "v" + std::to_string(i));
    }
    env.settle(400'000);
    // Fingerprint: delivered message count + full datalet contents.
    std::string fp = std::to_string(env.sim.messages_delivered());
    for (int s = 0; s < 2; ++s) {
      for (int r = 0; r < 3; ++r) {
        env.cluster.datalet(s, r)->for_each(
            [&](std::string_view k, const Entry& e) {
              fp += "|";
              fp += k;
              fp += "=";
              fp += e.value;
              fp += "@" + std::to_string(e.seq);
            });
      }
    }
    return fp;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  // Note: a *fixed* op sequence is deterministic regardless of the fabric
  // seed (the seed only drives workload/jitter randomness), so differing
  // seeds legitimately produce the same fingerprint here.
}

TEST(SyncKvTest, TableScanThroughClientLibrary) {
  ClusterOptions o = small_cluster(Topology::kMasterSlave,
                                   Consistency::kEventual, 2);
  o.datalet_kind = "tMT";
  SimEnv env(std::move(o));
  SyncKv kv = env.client();
  for (int i = 0; i < 40; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "item%03d", i);
    ASSERT_TRUE(kv.put(buf, "x", "inventory").ok());
  }
  env.settle(200'000);
  auto r = kv.scan("item010", "item020", 0, "inventory");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  ASSERT_EQ(r.value().size(), 10u);
  EXPECT_EQ(r.value().front().key, "item010");
  // Keys come back unprefixed (table-relative).
  EXPECT_EQ(r.value().front().key.find("inventory"), std::string::npos);
}

}  // namespace
}  // namespace bespokv
