#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/net/envelope.h"
#include "src/proto/codec.h"
#include "src/proto/message.h"
#include "src/proto/text_protocol.h"

namespace bespokv {
namespace {

Message sample_message() {
  Message m = Message::put("key1", "value1", "tbl");
  m.seq = 12345;
  m.epoch = 7;
  m.shard = 3;
  m.limit = 100;
  m.flags = kFlagRecovery | kFlagDelete;
  m.consistency = ConsistencyLevel::kStrong;
  m.kvs.push_back(KV{"a", "b", 1});
  m.kvs.push_back(KV{"c", std::string(1000, 'z'), 2});
  m.strs = {"P", "D"};
  return m;
}

TEST(CodecTest, RoundTripsAllFields) {
  const Message m = sample_message();
  std::string buf;
  encode_message(m, &buf);
  auto back = decode_message(buf);
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value(), m);
}

TEST(CodecTest, RoundTripsEmptyMessage) {
  Message m;
  std::string buf;
  encode_message(m, &buf);
  auto back = decode_message(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), m);
}

TEST(CodecTest, DetectsCorruption) {
  std::string buf;
  encode_message(sample_message(), &buf);
  for (size_t pos : {size_t{0}, buf.size() / 2, buf.size() - 1}) {
    std::string bad = buf;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    auto r = decode_message(bad);
    EXPECT_FALSE(r.ok()) << "flip at " << pos;
  }
}

TEST(CodecTest, DetectsTruncation) {
  std::string buf;
  encode_message(sample_message(), &buf);
  for (size_t len = 0; len < buf.size(); len += 7) {
    auto r = decode_message(std::string_view(buf).substr(0, len));
    EXPECT_FALSE(r.ok()) << "truncated to " << len;
  }
}

TEST(CodecTest, ConsumedModeAcceptsTrailingBytesStrictModeRejects) {
  const Message m = sample_message();
  std::string buf;
  encode_message(m, &buf);
  const size_t encoded = buf.size();
  buf += "extra tail bytes after the message";

  // Self-delimiting decode: parses the message and reports its exact extent,
  // ignoring whatever follows (the envelope's optional tail fields).
  size_t consumed = 0;
  auto r = decode_message(buf, &consumed);
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(consumed, encoded);
  EXPECT_EQ(r.value(), m);

  // The historical strict contract: without a consumed out-param, trailing
  // bytes are corruption.
  EXPECT_FALSE(decode_message(buf).ok());
}

TEST(CodecTest, FuzzedInputNeverCrashes) {
  Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string junk(rng.next_u64(200), '\0');
    for (auto& c : junk) c = static_cast<char>(rng.next());
    (void)decode_message(junk);  // must not crash or UB; result irrelevant
  }
}

TEST(CodecTest, VarintBoundaries) {
  for (uint64_t v : std::initializer_list<uint64_t>{
           0, 1, 127, 128, 16383, 16384, UINT64_MAX - 1, UINT64_MAX}) {
    std::string buf;
    Encoder e(&buf);
    e.put_varint(v);
    Decoder d(buf);
    auto back = d.varint();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
    EXPECT_TRUE(d.exhausted());
  }
}

TEST(EnvelopeTest, RoundTrips) {
  Envelope env;
  env.rpc_id = 987654321;
  env.kind = EnvelopeKind::kResponse;
  env.from = "10.0.0.1:7777";
  env.msg = sample_message();
  std::string buf;
  encode_envelope(env, &buf);

  Envelope back;
  size_t consumed = 0;
  ASSERT_TRUE(decode_envelope(buf, &back, &consumed).ok());
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(back.rpc_id, env.rpc_id);
  EXPECT_EQ(back.kind, env.kind);
  EXPECT_EQ(back.from, env.from);
  EXPECT_EQ(back.msg, env.msg);
}

TEST(EnvelopeTest, PartialFrameNeedsMoreBytes) {
  Envelope env;
  env.msg = Message::get("k");
  std::string buf;
  encode_envelope(env, &buf);
  for (size_t len = 0; len < buf.size(); ++len) {
    Envelope out;
    size_t consumed = 1;
    Status s = decode_envelope(std::string_view(buf).substr(0, len), &out,
                               &consumed);
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(consumed, 0u) << "len " << len;
  }
}

TEST(EnvelopeTest, TwoFramesBackToBack) {
  Envelope a, b;
  a.rpc_id = 1;
  a.msg = Message::get("ka");
  b.rpc_id = 2;
  b.msg = Message::put("kb", "v");
  std::string buf;
  encode_envelope(a, &buf);
  encode_envelope(b, &buf);

  Envelope out;
  size_t used = 0;
  ASSERT_TRUE(decode_envelope(buf, &out, &used).ok());
  EXPECT_EQ(out.rpc_id, 1u);
  std::string rest = buf.substr(used);
  ASSERT_TRUE(decode_envelope(rest, &out, &used).ok());
  EXPECT_EQ(out.rpc_id, 2u);
  EXPECT_EQ(used, rest.size());
}

TEST(EnvelopeTest, RejectsOversizedFrame) {
  std::string buf = std::string("\xff\xff\xff\x7f", 4) + "xxxx";
  Envelope out;
  size_t used;
  EXPECT_FALSE(decode_envelope(buf, &out, &used).ok());
}

// --------------------------- text protocols ---------------------------------

TEST(RespTest, ParsesSetGetDel) {
  RespParser p;
  auto r = p.parse_request("*3\r\n$3\r\nSET\r\n$2\r\nk1\r\n$2\r\nv1\r\n");
  ASSERT_TRUE(r.status.ok());
  ASSERT_TRUE(r.has_message);
  EXPECT_EQ(r.message.op, Op::kPut);
  EXPECT_EQ(r.message.key, "k1");
  EXPECT_EQ(r.message.value, "v1");

  r = p.parse_request("*2\r\n$3\r\nGET\r\n$2\r\nk1\r\n");
  ASSERT_TRUE(r.has_message);
  EXPECT_EQ(r.message.op, Op::kGet);

  r = p.parse_request("*2\r\n$3\r\nDEL\r\n$2\r\nk1\r\n");
  ASSERT_TRUE(r.has_message);
  EXPECT_EQ(r.message.op, Op::kDel);
}

TEST(RespTest, IncompleteRequestWaits) {
  RespParser p;
  auto r = p.parse_request("*3\r\n$3\r\nSET\r\n$2\r\nk1");
  EXPECT_TRUE(r.status.ok());
  EXPECT_FALSE(r.has_message);
  EXPECT_EQ(r.consumed, 0u);
}

TEST(RespTest, MalformedRequestErrors) {
  RespParser p;
  EXPECT_FALSE(p.parse_request("GARBAGE\r\n").status.ok());
  EXPECT_FALSE(p.parse_request("*1\r\n$3\r\nWAT\r\n").status.ok());
}

TEST(RespTest, RequestReplyRoundTrip) {
  RespParser p;
  const std::string wire = p.format_request(Message::put("key", "val"));
  auto req = p.parse_request(wire);
  ASSERT_TRUE(req.has_message);
  EXPECT_EQ(req.message.op, Op::kPut);
  EXPECT_EQ(req.message.key, "key");
  EXPECT_EQ(req.consumed, wire.size());

  Message rep = Message::reply(Code::kOk, "val");
  const std::string rep_wire = p.format_reply(rep);
  auto back = p.parse_reply(rep_wire);
  ASSERT_TRUE(back.has_message);
  EXPECT_EQ(back.message.value, "val");
}

TEST(RespTest, NotFoundMapsToNullBulk) {
  RespParser p;
  const std::string wire = p.format_reply(Message::reply(Code::kNotFound));
  EXPECT_EQ(wire, "$-1\r\n");
  auto back = p.parse_reply(wire);
  ASSERT_TRUE(back.has_message);
  EXPECT_EQ(back.message.code, Code::kNotFound);
}

TEST(RespTest, ScanReplyIsFlatArray) {
  RespParser p;
  Message rep = Message::reply(Code::kOk);
  rep.kvs = {KV{"a", "1", 0}, KV{"b", "2", 0}};
  auto back = p.parse_reply(p.format_reply(rep));
  ASSERT_TRUE(back.has_message);
  ASSERT_EQ(back.message.kvs.size(), 2u);
  EXPECT_EQ(back.message.kvs[1].key, "b");
  EXPECT_EQ(back.message.kvs[1].value, "2");
}

TEST(SsdbTest, RequestRoundTrip) {
  SsdbParser p;
  const std::string wire = p.format_request(Message::put("key", "value"));
  auto req = p.parse_request(wire);
  ASSERT_TRUE(req.status.ok()) << req.status.to_string();
  ASSERT_TRUE(req.has_message);
  EXPECT_EQ(req.message.op, Op::kPut);
  EXPECT_EQ(req.message.key, "key");
  EXPECT_EQ(req.message.value, "value");
  EXPECT_EQ(req.consumed, wire.size());
}

TEST(SsdbTest, ReplyRoundTrip) {
  SsdbParser p;
  Message rep = Message::reply(Code::kOk, "hello");
  auto back = p.parse_reply(p.format_reply(rep));
  ASSERT_TRUE(back.has_message);
  EXPECT_EQ(back.message.value, "hello");

  auto nf = p.parse_reply(p.format_reply(Message::reply(Code::kNotFound)));
  ASSERT_TRUE(nf.has_message);
  EXPECT_EQ(nf.message.code, Code::kNotFound);
}

TEST(SsdbTest, ScanRoundTrip) {
  SsdbParser p;
  const std::string wire = p.format_request(Message::scan("a", "z", 10));
  auto req = p.parse_request(wire);
  ASSERT_TRUE(req.has_message);
  EXPECT_EQ(req.message.op, Op::kScan);
  EXPECT_EQ(req.message.limit, 10u);

  Message rep = Message::reply(Code::kOk);
  rep.kvs = {KV{"a", "1", 0}, KV{"b", "2", 0}};
  auto back = p.parse_reply(p.format_reply(rep));
  ASSERT_TRUE(back.has_message);
  ASSERT_EQ(back.message.kvs.size(), 2u);
}

TEST(SsdbTest, IncompleteBlockWaits) {
  SsdbParser p;
  auto r = p.parse_request("3\nset\n3\nkey\n");  // missing value + terminator
  EXPECT_TRUE(r.status.ok());
  EXPECT_FALSE(r.has_message);
}

TEST(ParserFactoryTest, KnownNames) {
  EXPECT_NE(make_parser("resp"), nullptr);
  EXPECT_NE(make_parser("redis"), nullptr);
  EXPECT_NE(make_parser("ssdb"), nullptr);
  EXPECT_EQ(make_parser("nope"), nullptr);
}

TEST(TextProtocolFuzz, NeverCrashes) {
  Rng rng(1234);
  RespParser resp;
  SsdbParser ssdb;
  for (int i = 0; i < 2000; ++i) {
    std::string junk(rng.next_u64(64), '\0');
    for (auto& c : junk) c = static_cast<char>(rng.next() % 128);
    (void)resp.parse_request(junk);
    (void)resp.parse_reply(junk);
    (void)ssdb.parse_request(junk);
    (void)ssdb.parse_reply(junk);
  }
}

}  // namespace
}  // namespace bespokv
