#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/coordinator/cluster_meta.h"
#include "src/controlet/events.h"
#include "src/workload/workload.h"

namespace bespokv {
namespace {

ShardMap demo_map(Topology t, Consistency c, int shards = 4, int reps = 3) {
  ShardMap m;
  m.topology = t;
  m.consistency = c;
  for (int s = 0; s < shards; ++s) {
    ShardInfo si;
    si.id = static_cast<uint32_t>(s);
    for (int r = 0; r < reps; ++r) {
      si.replicas.push_back(
          ReplicaInfo{"s" + std::to_string(s) + "r" + std::to_string(r)});
    }
    m.shards.push_back(si);
  }
  return m;
}

TEST(ShardMapTest, EncodeDecodeRoundTrip) {
  ShardMap m = demo_map(Topology::kActiveActive, Consistency::kStrong);
  m.epoch = 42;
  m.partitioner = "range";
  m.shards[1].lower = "g";
  m.shards[1].upper = "p";
  auto back = ShardMap::decode(m.encode());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value().epoch, 42u);
  EXPECT_EQ(back.value().topology, Topology::kActiveActive);
  EXPECT_EQ(back.value().consistency, Consistency::kStrong);
  EXPECT_EQ(back.value().partitioner, "range");
  ASSERT_EQ(back.value().shards.size(), 4u);
  EXPECT_EQ(back.value().shards[1].lower, "g");
  EXPECT_EQ(back.value().shards[1].replicas[2].controlet, "s1r2");
}

TEST(ShardMapTest, HashPartitionIsBalancedAndStable) {
  ShardMap m = demo_map(Topology::kMasterSlave, Consistency::kEventual, 8);
  std::map<uint32_t, int> counts;
  for (int i = 0; i < 80'000; ++i) {
    auto s = m.shard_for("key" + std::to_string(i));
    ASSERT_TRUE(s.ok());
    counts[s.value()]++;
    EXPECT_EQ(s.value(), m.shard_for("key" + std::to_string(i)).value());
  }
  for (const auto& [sid, c] : counts) {
    EXPECT_GT(c, 80'000 / 8 / 2) << sid;
    EXPECT_LT(c, 80'000 / 8 * 2) << sid;
  }
}

TEST(ShardMapTest, JumpHashMovesFewKeysWhenGrowing) {
  ShardMap m8 = demo_map(Topology::kMasterSlave, Consistency::kEventual, 8);
  ShardMap m9 = demo_map(Topology::kMasterSlave, Consistency::kEventual, 9);
  int moved = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const std::string k = "key" + std::to_string(i);
    if (m8.shard_for(k).value() != m9.shard_for(k).value()) ++moved;
  }
  // Consistent hashing: ~1/9 of keys move, far from the ~8/9 of mod-hashing.
  EXPECT_LT(moved, n / 4);
  EXPECT_GT(moved, n / 50);
}

TEST(ShardMapTest, RangePartitionRoutesByBounds) {
  ShardMap m = demo_map(Topology::kMasterSlave, Consistency::kEventual, 3);
  m.partitioner = "range";
  m.shards[0].upper = "h";
  m.shards[1].lower = "h";
  m.shards[1].upper = "q";
  m.shards[2].lower = "q";
  EXPECT_EQ(m.shard_for("apple").value(), 0u);
  EXPECT_EQ(m.shard_for("hat").value(), 1u);
  EXPECT_EQ(m.shard_for("pig").value(), 1u);
  EXPECT_EQ(m.shard_for("zebra").value(), 2u);
  EXPECT_EQ(m.shard_for("h").value(), 1u);  // boundary: lower inclusive
}

TEST(ShardMapTest, WriteTargetsByTopology) {
  ShardMap ms = demo_map(Topology::kMasterSlave, Consistency::kEventual, 1);
  // MS: every write goes to the master regardless of salt.
  for (uint64_t salt = 0; salt < 5; ++salt) {
    EXPECT_EQ(ms.write_target("k", salt).value(), "s0r0");
  }
  ShardMap aa = demo_map(Topology::kActiveActive, Consistency::kEventual, 1);
  std::set<Addr> targets;
  for (uint64_t salt = 0; salt < 9; ++salt) {
    targets.insert(aa.write_target("k", salt).value());
  }
  EXPECT_EQ(targets.size(), 3u);  // AA spreads writes over all actives
}

TEST(ShardMapTest, ReadTargetsByConsistency) {
  ShardMap mssc = demo_map(Topology::kMasterSlave, Consistency::kStrong, 1);
  EXPECT_EQ(mssc.read_target("k", 0, true).value(), "s0r2");  // tail
  ShardMap msec = demo_map(Topology::kMasterSlave, Consistency::kEventual, 1);
  EXPECT_EQ(msec.read_target("k", 0, true).value(), "s0r0");  // master
  std::set<Addr> spread;
  for (uint64_t salt = 0; salt < 9; ++salt) {
    spread.insert(msec.read_target("k", salt, false).value());
  }
  EXPECT_EQ(spread.size(), 3u);  // EC reads hit every replica
}

TEST(ShardMapTest, ScanTargets) {
  ShardMap mssc = demo_map(Topology::kMasterSlave, Consistency::kStrong, 1);
  EXPECT_EQ(mssc.scan_target(mssc.shards[0], 0), "s0r2");
  ShardMap msec = demo_map(Topology::kMasterSlave, Consistency::kEventual, 1);
  EXPECT_EQ(msec.scan_target(msec.shards[0], 0), "s0r0");
}

TEST(ShardMapTest, EmptyMapErrors) {
  ShardMap m;
  EXPECT_FALSE(m.shard_for("k").ok());
  EXPECT_FALSE(m.write_target("k", 0).ok());
}

TEST(ParseTest, TopologyConsistencyNames) {
  EXPECT_EQ(parse_topology("ms").value(), Topology::kMasterSlave);
  EXPECT_EQ(parse_topology("active-active").value(), Topology::kActiveActive);
  EXPECT_FALSE(parse_topology("ring").ok());
  EXPECT_EQ(parse_consistency("sc").value(), Consistency::kStrong);
  EXPECT_EQ(parse_consistency("eventual").value(), Consistency::kEventual);
  EXPECT_FALSE(parse_consistency("causal").ok());
}

TEST(ClusterOptionsTest, FromJsonMatchesPaperConfig) {
  // The artifact's config shape (§A): num_replicas excludes the master.
  auto j = Json::parse(R"({
    "zk": "192.168.0.173:2181",
    "consistency_model": "strong",
    "consistency_tech": "cr",
    "topology": "ms",
    "num_replicas": "2"
  })");
  ASSERT_TRUE(j.ok());
  // String-typed numbers in the paper's config: accept via as_int fallback 2.
  auto o = ClusterOptions::from_json(j.value());
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o.value().topology, Topology::kMasterSlave);
  EXPECT_EQ(o.value().consistency, Consistency::kStrong);
}

TEST(ClusterOptionsTest, RejectsUnsortedOrDuplicateRangeSplits) {
  auto mk = [](const std::string& splits) {
    return Json::parse(R"({"topology":"ms","consistency_model":"strong",
                           "partitioner":"range","num_shards":3,
                           "range_splits":)" + splits + "}");
  };
  auto bad_order = ClusterOptions::from_json(mk(R"(["m","f"])").value());
  EXPECT_FALSE(bad_order.ok());
  auto dup = ClusterOptions::from_json(mk(R"(["m","m"])").value());
  EXPECT_FALSE(dup.ok());
  auto empty_point = ClusterOptions::from_json(mk(R"(["","m"])").value());
  EXPECT_FALSE(empty_point.ok());
  auto wrong_count = ClusterOptions::from_json(mk(R"(["m"])").value());
  EXPECT_FALSE(wrong_count.ok());
  auto good = ClusterOptions::from_json(mk(R"(["f","m"])").value());
  ASSERT_TRUE(good.ok()) << good.status().to_string();
  EXPECT_EQ(good.value().range_splits.size(), 2u);
}

TEST(ValidateRangeTest, SplitsAndLayout) {
  EXPECT_TRUE(validate_range_splits({}).ok());
  EXPECT_TRUE(validate_range_splits({"f", "m", "t"}).ok());
  EXPECT_FALSE(validate_range_splits({"m", "f"}).ok());
  EXPECT_FALSE(validate_range_splits({"f", "f"}).ok());
  EXPECT_FALSE(validate_range_splits({""}).ok());

  ShardMap m = demo_map(Topology::kMasterSlave, Consistency::kStrong, 3);
  m.partitioner = "range";
  m.shards[0].upper = "h";
  m.shards[1].lower = "h";
  m.shards[1].upper = "q";
  m.shards[2].lower = "q";
  EXPECT_TRUE(validate_range_layout(m).ok());
  m.shards[1].lower = "j";  // hole between "h" and "j"
  EXPECT_FALSE(validate_range_layout(m).ok());
}

// --------------------------- shard-map deltas -------------------------------

bool maps_equal(const ShardMap& a, const ShardMap& b) {
  if (a.epoch != b.epoch || a.topology != b.topology ||
      a.consistency != b.consistency || a.partitioner != b.partitioner ||
      a.shards.size() != b.shards.size()) {
    return false;
  }
  for (size_t i = 0; i < a.shards.size(); ++i) {
    if (!(a.shards[i] == b.shards[i])) return false;
  }
  return true;
}

TEST(ShardMapDeltaTest, DiffApplyRoundTrip) {
  ShardMap before = demo_map(Topology::kMasterSlave, Consistency::kStrong, 3);
  before.partitioner = "range";
  before.epoch = 7;
  before.shards[0].upper = "h";
  before.shards[1].lower = "h";
  before.shards[1].upper = "q";
  before.shards[2].lower = "q";

  // A cutover-shaped mutation: shard 0 sheds ["f","h") into shard 1, whose
  // replica set also changes.
  ShardMap after = before;
  after.epoch = 8;
  after.shards[0].upper = "f";
  after.shards[1].lower = "f";
  after.shards[1].replicas[2].controlet = "standby0";

  ShardMapDelta d = diff_maps(before, after);
  EXPECT_EQ(d.from_epoch, 7u);
  EXPECT_EQ(d.to_epoch, 8u);
  EXPECT_EQ(d.changed.size(), 2u);  // only the re-shaped shards ride along
  EXPECT_TRUE(d.removed.empty());

  // JSON round trip preserves the delta exactly.
  auto back = ShardMapDelta::decode(d.encode());
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  EXPECT_EQ(back.value().from_epoch, 7u);
  EXPECT_EQ(back.value().changed.size(), 2u);

  // Applying the decoded delta reproduces the target map.
  auto patched = apply_delta(before, back.value());
  ASSERT_TRUE(patched.ok()) << patched.status().to_string();
  EXPECT_TRUE(maps_equal(patched.value(), after));
}

TEST(ShardMapDeltaTest, AddAndRemoveShards) {
  ShardMap before = demo_map(Topology::kMasterSlave, Consistency::kStrong, 2);
  before.partitioner = "range";
  before.epoch = 3;
  before.shards[0].upper = "m";
  before.shards[1].lower = "m";

  // A split into a brand-new shard...
  ShardMap grown = before;
  grown.epoch = 4;
  grown.shards[0].upper = "f";
  ShardInfo fresh;
  fresh.id = 2;
  fresh.lower = "f";
  fresh.upper = "m";
  fresh.replicas.push_back(ReplicaInfo{"sb0"});
  grown.shards.push_back(fresh);
  auto g = apply_delta(before, diff_maps(before, grown));
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(maps_equal(g.value(), grown));

  // ...and the reverse records the dropped shard id.
  ShardMapDelta shrink = diff_maps(grown, before);
  EXPECT_EQ(shrink.removed, std::vector<uint32_t>{2});
  auto s = apply_delta(grown, shrink);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(maps_equal(s.value(), before));
}

TEST(ShardMapDeltaTest, ApplyRejectsEpochMismatch) {
  ShardMap before = demo_map(Topology::kMasterSlave, Consistency::kStrong, 2);
  before.epoch = 5;
  ShardMap after = before;
  after.epoch = 6;
  after.shards[0].replicas[0].controlet = "promoted";
  ShardMapDelta d = diff_maps(before, after);
  ShardMap stale = before;
  stale.epoch = 4;  // delta chains must be contiguous
  EXPECT_FALSE(apply_delta(stale, d).ok());
}

TEST(ShardMapDeltaTest, EmptyDeltaIsAnEpochBump) {
  ShardMap before = demo_map(Topology::kMasterSlave, Consistency::kStrong, 2);
  before.epoch = 9;
  ShardMap after = before;
  after.epoch = 10;
  ShardMapDelta d = diff_maps(before, after);
  EXPECT_TRUE(d.empty());
  auto r = apply_delta(before, d);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().epoch, 10u);
}

// ------------------------------ EventBus ------------------------------------

TEST(EventBusTest, OnEmitDispatchesInOrder) {
  EventBus bus;
  std::vector<int> calls;
  bus.on("PUT", [&](EventContext&) { calls.push_back(1); });
  bus.on("PUT", [&](EventContext&) { calls.push_back(2); });
  EventContext ctx;
  EXPECT_TRUE(bus.emit("PUT", ctx));
  EXPECT_EQ(calls, (std::vector<int>{1, 2}));
}

TEST(EventBusTest, EmitWithoutHandlerReturnsFalse) {
  EventBus bus;
  EventContext ctx;
  EXPECT_FALSE(bus.emit("NOPE", ctx));
  EXPECT_FALSE(bus.has("NOPE"));
}

TEST(EventBusTest, HandlersCanEmitExtendedEvents) {
  // The paper's Fig. 14 pattern: ON_REQ_IN parses and Emits PUT -> ENQ -> ...
  EventBus bus;
  std::vector<std::string> trace;
  bus.on(kEvReqIn, [&](EventContext& c) {
    trace.push_back("req_in");
    bus.emit("PUT", c);
  });
  bus.on("PUT", [&](EventContext& c) {
    trace.push_back("put");
    bus.emit("ENQ", c);
  });
  bus.on("ENQ", [&](EventContext&) { trace.push_back("enq"); });
  EventContext ctx;
  bus.emit(kEvReqIn, ctx);
  EXPECT_EQ(trace, (std::vector<std::string>{"req_in", "put", "enq"}));
}

// ------------------------------ workloads -----------------------------------

TEST(WorkloadTest, RatiosRoughlyHold) {
  WorkloadSpec s = WorkloadSpec::ycsb_read_mostly(false);
  WorkloadGenerator gen(s);
  int gets = 0, puts = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    auto op = gen.next();
    if (op.type == OpType::kGet) ++gets;
    if (op.type == OpType::kPut) ++puts;
  }
  EXPECT_NEAR(static_cast<double>(gets) / n, 0.95, 0.02);
  EXPECT_NEAR(static_cast<double>(puts) / n, 0.05, 0.02);
}

TEST(WorkloadTest, ScanHeavyEmitsScans) {
  WorkloadGenerator gen(WorkloadSpec::ycsb_scan_heavy(true));
  int scans = 0;
  for (int i = 0; i < 1000; ++i) {
    auto op = gen.next();
    if (op.type == OpType::kScan) {
      ++scans;
      EXPECT_FALSE(op.scan_end.empty());
      EXPECT_GT(op.scan_limit, 0u);
    }
  }
  EXPECT_GT(scans, 900);
}

TEST(WorkloadTest, KeysRespectSizeAndSpace) {
  WorkloadSpec s;
  s.num_keys = 1000;
  s.key_size = 16;
  WorkloadGenerator gen(s);
  for (int i = 0; i < 1000; ++i) {
    auto op = gen.next();
    EXPECT_EQ(op.key.size(), 16u);
  }
  EXPECT_EQ(gen.key_at(7).size(), 16u);
}

TEST(WorkloadTest, StreamsAreDecorrelatedButDeterministic) {
  WorkloadSpec s;
  WorkloadGenerator a1(s, 0), a2(s, 0), b(s, 1);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    auto o1 = a1.next(), o2 = a2.next(), o3 = b.next();
    EXPECT_EQ(o1.key, o2.key);  // same stream id => identical
    if (o1.key != o3.key) any_diff = true;
  }
  EXPECT_TRUE(any_diff);  // different stream ids diverge
}

TEST(WorkloadTest, HpcPresetsMatchPaperMixes) {
  EXPECT_DOUBLE_EQ(WorkloadSpec::hpc_io_forwarding().get_ratio, 0.62);
  EXPECT_DOUBLE_EQ(WorkloadSpec::hpc_job_launch().get_ratio, 0.50);
  EXPECT_LT(WorkloadSpec::hpc_monitoring().get_ratio, 0.10);
  EXPECT_DOUBLE_EQ(WorkloadSpec::hpc_analytics().get_ratio, 1.0);
}

}  // namespace
}  // namespace bespokv
