// Unit tests for the optional control-plane components: the distributed lock
// manager (Redlock substitute) and the shared log (ZLog/CORFU substitute).
#include <gtest/gtest.h>

#include "src/dlm/dlm.h"
#include "src/net/sim_fabric.h"
#include "src/sharedlog/sharedlog.h"

namespace bespokv {
namespace {

class ServiceFixture : public ::testing::Test {
 protected:
  ServiceFixture() {
    SimNodeOpts copts;
    copts.is_client = true;
    client_ = sim_.add_node("client",
                            std::make_shared<LambdaService>(
                                [](Runtime&, const Addr&, Message, Replier r) {
                                  r(Message::reply(Code::kInvalid));
                                }),
                            copts);
  }

  Result<Message> call(const Addr& dst, Message req, uint64_t timeout = 5'000'000) {
    auto done = std::make_shared<bool>(false);
    auto out = std::make_shared<Result<Message>>(Status::Internal("pending"));
    sim_.post_to("client", [&, req = std::move(req)]() mutable {
      client_->call(dst, std::move(req),
                    [done, out](Status s, Message m) {
                      *out = s.ok() ? Result<Message>(std::move(m))
                                    : Result<Message>(s);
                      *done = true;
                    },
                    timeout);
    });
    while (!*done && !sim_.idle()) sim_.run_for(1'000);
    return *out;
  }

  SimFabric sim_;
  Runtime* client_;
};

// --------------------------------- DLM --------------------------------------

class DlmTest : public ServiceFixture {
 protected:
  DlmTest() {
    DlmConfig cfg;
    cfg.lease_us = 300'000;
    cfg.wait_cap_us = 2'000'000;  // > lease so expiry tests see the handoff
    svc_ = std::make_shared<DlmService>(cfg);
    sim_.add_node("dlm", svc_);
  }

  Message lock_msg(const std::string& key, bool write) {
    Message m;
    m.op = Op::kLock;
    m.key = key;
    if (write) m.flags |= kFlagWriteLock;
    return m;
  }
  Message unlock_msg(const std::string& key) {
    Message m;
    m.op = Op::kUnlock;
    m.key = key;
    return m;
  }

  std::shared_ptr<DlmService> svc_;
};

TEST_F(DlmTest, GrantAndRelease) {
  auto r = call("dlm", lock_msg("k", true));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().code, Code::kOk);
  EXPECT_EQ(svc_->held_locks(), 1u);
  r = call("dlm", unlock_msg("k"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().code, Code::kOk);
  EXPECT_EQ(svc_->held_locks(), 0u);
}

TEST_F(DlmTest, UnlockWithoutLockIsNotFound) {
  auto r = call("dlm", unlock_msg("never"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().code, Code::kNotFound);
}

TEST_F(DlmTest, WriterBlocksSecondWriterUntilUnlock) {
  // Two requester nodes so the DLM sees distinct owners.
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* c2 = sim_.add_node("client2",
                              std::make_shared<LambdaService>(
                                  [](Runtime&, const Addr&, Message, Replier r) {
                                    r(Message::reply(Code::kInvalid));
                                  }),
                              copts);
  ASSERT_EQ(call("dlm", lock_msg("k", true)).value().code, Code::kOk);

  bool granted = false;
  sim_.post_to("client2", [&] {
    c2->call("dlm", lock_msg("k", true),
             [&](Status s, Message rep) {
               granted = s.ok() && rep.code == Code::kOk;
             },
             5'000'000);
  });
  sim_.run_for(50'000);
  EXPECT_FALSE(granted);  // still queued behind the first writer

  ASSERT_EQ(call("dlm", unlock_msg("k")).value().code, Code::kOk);
  sim_.run_for(50'000);
  EXPECT_TRUE(granted);  // FIFO handoff after release
}

TEST_F(DlmTest, ReadersShareWritersExclude) {
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* c2 = sim_.add_node("client2",
                              std::make_shared<LambdaService>(
                                  [](Runtime&, const Addr&, Message, Replier r) {
                                    r(Message::reply(Code::kInvalid));
                                  }),
                              copts);
  ASSERT_EQ(call("dlm", lock_msg("k", false)).value().code, Code::kOk);
  bool reader2 = false;
  sim_.post_to("client2", [&] {
    c2->call("dlm", lock_msg("k", false),
             [&](Status s, Message rep) {
               reader2 = s.ok() && rep.code == Code::kOk;
             });
  });
  sim_.run_for(50'000);
  EXPECT_TRUE(reader2);  // shared read grant
}

TEST_F(DlmTest, LeaseExpiresAndUnblocksWaiters) {
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* c2 = sim_.add_node("client2",
                              std::make_shared<LambdaService>(
                                  [](Runtime&, const Addr&, Message, Replier r) {
                                    r(Message::reply(Code::kInvalid));
                                  }),
                              copts);
  ASSERT_EQ(call("dlm", lock_msg("k", true)).value().code, Code::kOk);
  // The holder "crashes" (never unlocks). A second writer queues; once the
  // 300ms lease expires, the sweep hands the lock over (§C.B liveness).
  bool granted = false;
  sim_.post_to("client2", [&] {
    c2->call("dlm", lock_msg("k", true),
             [&](Status s, Message rep) {
               granted = s.ok() && rep.code == Code::kOk;
             },
             5'000'000);
  });
  sim_.run_for(150'000);
  EXPECT_FALSE(granted);
  sim_.run_for(400'000);
  EXPECT_TRUE(granted);
  EXPECT_GE(svc_->expirations(), 1u);
}

TEST_F(DlmTest, WaiterTimesOutAtCap) {
  SimNodeOpts copts;
  copts.is_client = true;
  DlmConfig cfg;
  cfg.lease_us = 10'000'000;  // effectively no expiry
  cfg.wait_cap_us = 100'000;
  auto svc = std::make_shared<DlmService>(cfg);
  sim_.add_node("dlm2", svc);
  Runtime* c2 = sim_.add_node("client2",
                              std::make_shared<LambdaService>(
                                  [](Runtime&, const Addr&, Message, Replier r) {
                                    r(Message::reply(Code::kInvalid));
                                  }),
                              copts);
  ASSERT_EQ(call("dlm2", lock_msg("k", true)).value().code, Code::kOk);
  Code second = Code::kOk;
  bool done = false;
  sim_.post_to("client2", [&] {
    c2->call("dlm2", lock_msg("k", true),
             [&](Status s, Message rep) {
               second = s.ok() ? rep.code : s.code();
               done = true;
             },
             5'000'000);
  });
  sim_.run_for(1'000'000);
  EXPECT_TRUE(done);
  EXPECT_EQ(second, Code::kTimeout);
}

// ------------------------------- Shared log ---------------------------------

class SharedLogTest : public ServiceFixture {
 protected:
  SharedLogTest() {
    svc_ = std::make_shared<SharedLogService>();
    sim_.add_node("log", svc_);
  }

  uint64_t append(const std::string& key, const std::string& value,
                  uint32_t shard = 0, bool del = false) {
    Message m;
    m.op = Op::kLogAppend;
    m.shard = shard;
    m.key = key;
    m.value = value;
    if (del) m.flags |= kFlagDelete;
    auto r = call("log", std::move(m));
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.value().code, Code::kOk);
    return r.value().seq;
  }

  Message read(uint64_t from, uint32_t shard = 0, uint32_t limit = 100) {
    Message m;
    m.op = Op::kLogRead;
    m.seq = from;
    m.shard = shard;
    m.limit = limit;
    auto r = call("log", std::move(m));
    EXPECT_TRUE(r.ok());
    return r.value();
  }

  std::shared_ptr<SharedLogService> svc_;
};

TEST_F(SharedLogTest, AppendsAssignMonotonicSequences) {
  EXPECT_EQ(append("a", "1"), 1u);
  EXPECT_EQ(append("b", "2"), 2u);
  EXPECT_EQ(append("c", "3"), 3u);
  EXPECT_EQ(svc_->tail(), 4u);
}

TEST_F(SharedLogTest, ReadReturnsOrderWithOpsAndSeqs) {
  append("a", "1");
  append("a", "", 0, /*del=*/true);
  append("b", "2");
  Message rep = read(1);
  ASSERT_EQ(rep.kvs.size(), 3u);
  EXPECT_EQ(rep.kvs[0].seq, 1u);
  EXPECT_EQ(rep.strs[1], "D");
  EXPECT_EQ(rep.kvs[2].key, "b");
  EXPECT_EQ(rep.seq, 4u);   // tail
  EXPECT_EQ(rep.epoch, 4u); // resume position
}

TEST_F(SharedLogTest, ShardsAreFiltered) {
  append("a", "1", /*shard=*/0);
  append("x", "9", /*shard=*/1);
  append("b", "2", /*shard=*/0);
  Message rep0 = read(1, 0);
  ASSERT_EQ(rep0.kvs.size(), 2u);
  EXPECT_EQ(rep0.kvs[0].key, "a");
  EXPECT_EQ(rep0.kvs[1].key, "b");
  Message rep1 = read(1, 1);
  ASSERT_EQ(rep1.kvs.size(), 1u);
  EXPECT_EQ(rep1.kvs[0].key, "x");
}

TEST_F(SharedLogTest, TableNamesArePrefixedIntoKeys) {
  Message m;
  m.op = Op::kLogAppend;
  m.table = "tbl";
  m.key = "k";
  m.value = "v";
  ASSERT_EQ(call("log", std::move(m)).value().code, Code::kOk);
  Message rep = read(1);
  ASSERT_EQ(rep.kvs.size(), 1u);
  EXPECT_EQ(rep.kvs[0].key, "tbl\x1fk");
}

TEST_F(SharedLogTest, TrimDropsPrefixAndFlagsStaleReaders) {
  for (int i = 0; i < 10; ++i) append("k" + std::to_string(i), "v");
  Message trim;
  trim.op = Op::kLogTrim;
  trim.seq = 6;
  ASSERT_EQ(call("log", std::move(trim)).value().code, Code::kOk);
  EXPECT_EQ(svc_->trimmed_to(), 6u);
  EXPECT_EQ(svc_->entries_held(), 5u);

  Message stale = read(1);
  EXPECT_EQ(stale.code, Code::kOutOfRange);
  EXPECT_EQ(stale.seq, 6u);  // where to resume

  Message fresh = read(6);
  EXPECT_EQ(fresh.code, Code::kOk);
  ASSERT_EQ(fresh.kvs.size(), 5u);
  EXPECT_EQ(fresh.kvs[0].seq, 6u);
}

TEST_F(SharedLogTest, LimitPaginates) {
  for (int i = 0; i < 25; ++i) append("k" + std::to_string(i), "v");
  uint64_t pos = 1;
  size_t total = 0;
  for (int page = 0; page < 10 && pos < svc_->tail(); ++page) {
    Message rep = read(pos, 0, 10);
    total += rep.kvs.size();
    EXPECT_LE(rep.kvs.size(), 10u);
    pos = rep.epoch;
  }
  EXPECT_EQ(total, 25u);
}

TEST_F(SharedLogTest, ClientWrapperRoundTrip) {
  // Exercise SharedLogClient end to end from a fabric node.
  uint64_t got_seq = 0;
  uint64_t got_tail = 0;
  size_t fetched = 0;
  SimNodeOpts copts;
  copts.is_client = true;
  Runtime* rt = sim_.add_node("lc",
                              std::make_shared<LambdaService>(
                                  [](Runtime&, const Addr&, Message, Replier r) {
                                    r(Message::reply(Code::kInvalid));
                                  }),
                              copts);
  sim_.post_to("lc", [&] {
    auto logc = std::make_shared<SharedLogClient>(rt, "log");
    logc->append(Message::put("k", "v"), 0, [&, logc](Status s, uint64_t seq) {
      ASSERT_TRUE(s.ok());
      got_seq = seq;
      logc->fetch(1, 0, 10, [&, logc](Status fs, Message rep) {
        ASSERT_TRUE(fs.ok());
        fetched = rep.kvs.size();
        logc->tail([&, logc](Status ts, uint64_t tail) {
          ASSERT_TRUE(ts.ok());
          got_tail = tail;
        });
      });
    });
  });
  sim_.run_for(1'000'000);
  EXPECT_EQ(got_seq, 1u);
  EXPECT_EQ(fetched, 1u);
  EXPECT_EQ(got_tail, 2u);
}

}  // namespace
}  // namespace bespokv
