// TCP-fabric chaos: the sim chaos suite's core invariant — a master crash
// under load loses no acked operation when the client retries — re-run over
// real loopback sockets, where failure detection, reconnects and failover
// ride on actual epoll machinery instead of the DES.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/net/fault.h"
#include "src/net/tcp_fabric.h"

namespace bespokv {
namespace {

ClusterOptions tcp_chaos_cluster() {
  ClusterOptions o;
  o.topology = Topology::kMasterSlave;
  o.consistency = Consistency::kStrong;
  o.num_shards = 1;
  o.num_replicas = 3;
  o.num_standby = 1;
  o.coordinator.hb_period_us = 100'000;
  o.controlet.hb_period_us = 50'000;
  return o;
}

TEST(TcpChaosTest, MasterCrashUnderLoadZeroFailedAckedOps) {
  TcpFabric fab;
  Cluster cluster(fab, tcp_chaos_cluster());
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  SyncKv kv(
      [&fab](const Addr& a, Message m) {
        return fab.call_sync(a, std::move(m), 500'000);
      },
      cluster.coordinator_addr());
  kv.set_attempts(12);
  kv.set_backoff_us(20'000);  // real time: spread retries across detection

  std::map<std::string, std::string> acked;
  int failed_ops = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string key = "t" + std::to_string(i % 40);
    const std::string value = "v" + std::to_string(i);
    if (kv.put(key, value).ok()) {
      acked[key] = value;
    } else {
      ++failed_ops;
    }
    if (i == 40) cluster.kill_controlet(0, 0);  // crash the master mid-load
  }
  EXPECT_EQ(failed_ops, 0) << "ops failed outright despite retries";
  std::this_thread::sleep_for(std::chrono::milliseconds(1'000));

  ASSERT_FALSE(acked.empty());
  for (const auto& [key, value] : acked) {
    auto r = kv.get(key, "", ConsistencyLevel::kStrong);
    ASSERT_TRUE(r.ok()) << "lost acked write " << key << ": "
                        << r.status().to_string();
    EXPECT_EQ(r.value(), value) << key;
  }
}

// FaultPlan-driven variant: link noise plus a scheduled crash/restart of the
// master, the same plan shape the nightly chaos driver replays. The restarted
// node was evicted by the failover, so it rejoins the standby pool.
TEST(TcpChaosTest, FaultPlanNoiseAndScheduledCrashLoseNothing) {
  TcpFabric fab;
  Cluster cluster(fab, tcp_chaos_cluster());
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  FaultPlan plan;
  plan.seed = 11;
  plan.links.push_back(LinkFault{"*", "*", /*drop=*/0.01, /*duplicate=*/0.03,
                                 0, 0, 0, 0, 0});
  plan.nodes.push_back(NodeFault{cluster.controlet_addr(0, 0),
                                 /*crash_at_us=*/400'000,
                                 /*restart_at_us=*/2'500'000});
  fab.set_fault_injector(std::make_shared<FaultInjector>(plan));
  Runtime* admin = cluster.admin();
  admin->post(
      [admin, &fab, plan] { schedule_node_faults(*admin, fab, plan); });

  SyncKv kv(
      [&fab](const Addr& a, Message m) {
        return fab.call_sync(a, std::move(m), 500'000);
      },
      cluster.coordinator_addr());
  kv.set_attempts(12);
  kv.set_backoff_us(20'000);

  std::map<std::string, std::string> acked;
  int failed_ops = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "p" + std::to_string(i % 30);
    const std::string value = "v" + std::to_string(i);
    if (kv.put(key, value).ok()) {
      acked[key] = value;
    } else {
      ++failed_ops;
    }
  }
  EXPECT_EQ(failed_ops, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(1'500));

  for (const auto& [key, value] : acked) {
    auto r = kv.get(key, "", ConsistencyLevel::kStrong);
    ASSERT_TRUE(r.ok()) << "lost acked write " << key << ": "
                        << r.status().to_string();
    EXPECT_EQ(r.value(), value) << key;
  }
}

}  // namespace
}  // namespace bespokv
