// Tests for the scalable verification checker (src/verify):
//  * golden good/bad histories per property — stale reads, lost updates,
//    non-monotonic session reads, kMaybeApplied writes both ways;
//  * a fuzz self-test cross-checking the iterative WGL core against the
//    original recursive DFS on small single-key histories;
//  * scalability: a 1000-op / 50-key mixed SC history verifies in seconds,
//    and a deliberately injected stale read in the same history is flagged.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/verify/checker.h"
#include "src/verify/history.h"
#include "tests/linearizability.h"

namespace bespokv::verify {
namespace {

using bespokv::testing::HistOp;

Op put(uint32_t client, const std::string& key, const std::string& value,
       uint64_t inv, uint64_t res, Outcome outcome = Outcome::kOk) {
  Op op;
  op.client = client;
  op.kind = OpKind::kPut;
  op.key = key;
  op.value = value;
  op.outcome = outcome;
  op.inv = inv;
  op.res = outcome == Outcome::kMaybe ? kNoResponse : res;
  return op;
}

Op get(uint32_t client, const std::string& key, const std::string& value,
       uint64_t inv, uint64_t res) {
  Op op;
  op.client = client;
  op.kind = OpKind::kGet;
  op.key = key;
  op.value = value;
  op.inv = inv;
  op.res = res;
  return op;
}

Op get_absent(uint32_t client, const std::string& key, uint64_t inv,
              uint64_t res) {
  Op op = get(client, key, "", inv, res);
  op.found = false;
  return op;
}

Op del(uint32_t client, const std::string& key, uint64_t inv, uint64_t res) {
  Op op;
  op.client = client;
  op.kind = OpKind::kDel;
  op.key = key;
  op.inv = inv;
  op.res = res;
  return op;
}

History make_history(std::vector<Op> ops) {
  History h;
  for (Op& op : ops) h.record(std::move(op));
  return h;
}

// ------------------------- golden linearizability ---------------------------

TEST(GoldenLin, SequentialMultiKeyHistoryIsOk) {
  History h = make_history({
      put(0, "a", "v1", 0, 10),
      get(1, "a", "v1", 20, 30),
      put(0, "b", "w1", 40, 50),
      get(1, "b", "w1", 60, 70),
      del(0, "a", 80, 90),
      get_absent(1, "a", 100, 110),
  });
  CheckReport r = check_history(h);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.keys_checked, 2u);
}

TEST(GoldenLin, StaleReadIsFlagged) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(0, "k", "v2", 20, 30),
      get(1, "k", "v1", 40, 50),  // v2 fully preceded this read
  });
  CheckReport r = check_history(h);
  ASSERT_EQ(r.verdict, Verdict::kViolation);
  EXPECT_EQ(r.violation, "linearizability");
  EXPECT_EQ(r.key, "k");
}

TEST(GoldenLin, LostUpdateIsFlagged) {
  // The acked overwrite "v2" vanishes: every later read still sees "v1".
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(1, "k", "v2", 20, 30),
      get(2, "k", "v1", 40, 50),
      get(2, "k", "v1", 60, 70),
  });
  CheckReport r = check_history(h);
  ASSERT_EQ(r.verdict, Verdict::kViolation);
  EXPECT_EQ(r.violation, "linearizability");
}

TEST(GoldenLin, ConcurrentOverlapAdmitsEitherOrder) {
  for (const char* observed : {"old", "new"}) {
    History h = make_history({
        put(0, "k", "old", 0, 10),
        put(0, "k", "new", 20, 100),
        get(1, "k", observed, 30, 40),  // overlaps the second write
    });
    EXPECT_TRUE(check_history(h).ok()) << observed;
  }
}

TEST(GoldenLin, ValueFromNowhereIsFlagged) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      get(1, "k", "zzz", 20, 30),
  });
  EXPECT_EQ(check_history(h).verdict, Verdict::kViolation);
}

TEST(GoldenLin, ReadAbsentAfterAckedWriteIsFlagged) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      get_absent(1, "k", 20, 30),
  });
  EXPECT_EQ(check_history(h).verdict, Verdict::kViolation);
}

TEST(GoldenLin, DeleteMakesAbsentReadLegal) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      del(0, "k", 20, 30),
      get_absent(1, "k", 40, 50),
  });
  EXPECT_TRUE(check_history(h).ok());
}

// --------------------------- kMaybeApplied ----------------------------------

TEST(GoldenMaybe, MaybeWriteObservedLaterCountsAsApplied) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(1, "k", "v2", 20, 0, Outcome::kMaybe),  // timed out: possibly applied
      get(2, "k", "v2", 100, 110),                // ...and it was
  });
  CheckReport r = check_history(h);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(GoldenMaybe, MaybeWriteNeverObservedCountsAsDropped) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(1, "k", "v2", 20, 0, Outcome::kMaybe),
      get(2, "k", "v1", 100, 110),  // v2 never took effect — fine
      get(2, "k", "v1", 120, 130),
  });
  EXPECT_TRUE(check_history(h).ok());
}

TEST(GoldenMaybe, MaybeWriteCannotTakeEffectBeforeItsInvocation) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      get(2, "k", "v2", 50, 60),                   // observed before...
      put(1, "k", "v2", 200, 0, Outcome::kMaybe),  // ...the write even began
  });
  EXPECT_EQ(check_history(h).verdict, Verdict::kViolation);
}

TEST(GoldenMaybe, FailedWriteIsExcludedEntirely) {
  Op failed = put(1, "k", "v2", 20, 30);
  failed.outcome = Outcome::kFailed;
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      failed,
      get(2, "k", "v1", 40, 50),
  });
  EXPECT_TRUE(check_history(h).ok());
}

// ---------------------- session monotonic reads (EC) ------------------------

CheckOptions ec_options() {
  CheckOptions o;
  o.linearizability = false;  // EC: stale reads are legal...
  o.monotonic_sessions = true;  // ...but going *backward* in a session is not
  return o;
}

TEST(GoldenSessions, StaleButForwardReadsAreLegalUnderEc) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(0, "k", "v2", 20, 30),
      get(1, "k", "v1", 40, 50),  // stale — fine under EC
      get(1, "k", "v2", 60, 70),  // catches up
  });
  EXPECT_TRUE(check_history(h, ec_options()).ok());
}

TEST(GoldenSessions, NonMonotonicReadsAreFlagged) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(0, "k", "v2", 20, 30),
      get(1, "k", "v2", 40, 50),
      get(1, "k", "v1", 60, 70),  // session traveled backward
  });
  CheckReport r = check_history(h, ec_options());
  ASSERT_EQ(r.verdict, Verdict::kViolation);
  EXPECT_EQ(r.violation, "monotonic-reads");
}

TEST(GoldenSessions, DifferentSessionsMayDisagree) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(0, "k", "v2", 20, 30),
      get(1, "k", "v2", 40, 50),
      get(2, "k", "v1", 60, 70),  // a *different* client may still lag
  });
  EXPECT_TRUE(check_history(h, ec_options()).ok());
}

TEST(GoldenSessions, AbsentAfterObservationWithoutDeleteIsFlagged) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      get(1, "k", "v1", 20, 30),
      get_absent(1, "k", 40, 50),
  });
  EXPECT_EQ(check_history(h, ec_options()).verdict, Verdict::kViolation);
}

// --------------------------- convergence ------------------------------------

TEST(GoldenConvergence, AgreementOnWrittenValueIsOk) {
  History h = make_history({put(0, "k", "v1", 0, 10)});
  std::vector<ReplicaState> reps(3);
  for (int i = 0; i < 3; ++i) {
    reps[i].node = "r" + std::to_string(i);
    reps[i].kv["k"] = {"v1", 7};
  }
  EXPECT_TRUE(check_convergence(reps, h).ok());
}

TEST(GoldenConvergence, DivergedReplicasAreFlagged) {
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(1, "k", "v2", 0, 10),
  });
  std::vector<ReplicaState> reps(2);
  reps[0].node = "r0";
  reps[0].kv["k"] = {"v1", 1};
  reps[1].node = "r1";
  reps[1].kv["k"] = {"v2", 2};
  CheckReport r = check_convergence(reps, h);
  ASSERT_EQ(r.verdict, Verdict::kViolation);
  EXPECT_EQ(r.violation, "convergence");
}

TEST(GoldenConvergence, ValueFromNowhereIsFlagged) {
  History h = make_history({put(0, "k", "v1", 0, 10)});
  std::vector<ReplicaState> reps(2);
  reps[0].node = "r0";
  reps[0].kv["k"] = {"zzz", 1};
  reps[1].node = "r1";
  reps[1].kv["k"] = {"zzz", 1};
  EXPECT_EQ(check_convergence(reps, h).verdict, Verdict::kViolation);
}

TEST(GoldenConvergence, MaybeWriteMayBeTheConvergedValue) {
  History h = make_history({put(0, "k", "v1", 0, 0, Outcome::kMaybe)});
  std::vector<ReplicaState> reps(2);
  reps[0].node = "r0";
  reps[0].kv["k"] = {"v1", 1};
  reps[1].node = "r1";
  reps[1].kv["k"] = {"v1", 1};
  EXPECT_TRUE(check_convergence(reps, h).ok());
}

// ----------------------------- scan sessions --------------------------------

Op scan(uint32_t client, uint64_t inv, uint64_t res, std::vector<KV> kvs,
        uint32_t limit = 0) {
  Op op;
  op.client = client;
  op.kind = OpKind::kScan;
  op.scan_start = "a";
  op.scan_end = "z";
  op.scan_limit = limit;
  op.scan_kvs = std::move(kvs);
  op.inv = inv;
  op.res = res;
  return op;
}

TEST(GoldenScans, VersionRegressionIsFlagged) {
  History h = make_history({
      put(0, "b", "v1", 0, 10),
      scan(1, 20, 30, {{"b", "v2", 5}}),
      scan(1, 40, 50, {{"b", "v1", 3}}),  // key traveled backward
  });
  CheckOptions o;
  o.linearizability = false;
  CheckReport r = check_history(h, o);
  ASSERT_EQ(r.verdict, Verdict::kViolation);
  EXPECT_EQ(r.violation, "scan-regression");
}

TEST(GoldenScans, MonotoneVersionsAreOk) {
  History h = make_history({
      put(0, "b", "v1", 0, 10),
      put(0, "b", "v2", 15, 18),
      scan(1, 20, 30, {{"b", "v1", 3}}),
      scan(1, 40, 50, {{"b", "v2", 5}}),
  });
  CheckOptions o;
  o.linearizability = false;
  EXPECT_TRUE(check_history(h, o).ok());
}

TEST(GoldenScans, KeyVanishingWithoutDeleteIsFlagged) {
  History h = make_history({
      put(0, "b", "v1", 0, 10),
      scan(1, 20, 30, {{"b", "v1", 3}}),
      scan(1, 40, 50, {}),  // un-truncated, delete-free: b must still show
  });
  CheckOptions o;
  o.linearizability = false;
  EXPECT_EQ(check_history(h, o).verdict, Verdict::kViolation);
}

TEST(GoldenScans, TruncatedScanMayOmitKeys) {
  History h = make_history({
      put(0, "b", "v1", 0, 10),
      put(0, "c", "w1", 0, 10),
      scan(1, 20, 30, {{"b", "v1", 3}}),
      scan(1, 40, 50, {{"c", "w1", 4}}, /*limit=*/1),  // hit its limit
  });
  CheckOptions o;
  o.linearizability = false;
  EXPECT_TRUE(check_history(h, o).ok());
}

// -------------------- transition-split linearizability ----------------------

TEST(TransitionSplit, PreSwitchWritesSeedTheInitialState) {
  // EC prefix: two racing writes, no telling which won. Post-switch reads of
  // either are fine — but once a post-switch overwrite lands, stale reads
  // are violations again.
  CheckOptions o;
  o.linearizable_after_us = 100;
  History ok_h = make_history({
      put(0, "k", "e1", 0, 10),
      put(1, "k", "e2", 0, 10),
      get(2, "k", "e1", 120, 130),  // pre-switch winner happened to be e1
  });
  EXPECT_TRUE(check_history(ok_h, o).ok());

  History bad_h = make_history({
      put(0, "k", "e1", 0, 10),
      put(1, "k", "s1", 120, 130),  // post-switch overwrite, fully acked
      get(2, "k", "e1", 140, 150),  // stale read after the switch
  });
  EXPECT_EQ(check_history(bad_h, o).verdict, Verdict::kViolation);
}

// ------------------------- budget exhaustion --------------------------------

TEST(Budget, ExhaustionYieldsUnknownNotViolation) {
  // Everything mutually concurrent: factorially many interleavings.
  std::vector<KeyEvent> evs;
  for (int i = 0; i < 20; ++i) {
    KeyEvent e;
    e.is_write = true;
    e.value = "v" + std::to_string(i);
    e.inv = 0;
    e.res = 1'000;
    evs.push_back(e);
  }
  KeyEvent r;
  r.is_write = false;
  r.found = true;
  r.value = "zzz";  // matches nothing: forces a full search
  r.inv = 0;
  r.res = 1'000;
  evs.push_back(r);
  CheckReport rep = check_key_linearizable("k", evs, {}, /*max_states=*/200);
  EXPECT_EQ(rep.verdict, Verdict::kUnknown);
}

// --------------------- legacy adapter (old 24-op cap) -----------------------

TEST(LegacyAdapter, LargeSequentialHistoriesNowPass) {
  // The old inline DFS returned false for any history over 24 ops. The
  // delegating adapter has no cap.
  std::vector<HistOp> h;
  uint64_t t = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string v = "v" + std::to_string(i);
    h.push_back(HistOp{true, v, t, t + 5});
    h.push_back(HistOp{false, v, t + 10, t + 15});
    t += 20;
  }
  EXPECT_TRUE(bespokv::testing::linearizable(h));
  // ...and it still rejects an actual violation at that size.
  h.push_back(HistOp{false, "v0", t, t + 5});
  EXPECT_FALSE(bespokv::testing::linearizable(h));
}

// ------------------------ fuzz: WGL vs legacy DFS ---------------------------

// The original recursive single-register DFS (pre-delegation), kept verbatim
// as a reference implementation for differential testing.
bool reference_linearizable(const std::vector<HistOp>& ops,
                            const std::string& initial = "") {
  const size_t n = ops.size();
  if (n == 0) return true;
  std::set<std::pair<uint32_t, int>> visited;
  std::function<bool(uint32_t, int)> dfs = [&](uint32_t taken,
                                               int last_write) -> bool {
    if (taken == (1u << n) - 1) return true;
    if (!visited.insert({taken, last_write}).second) return false;
    uint64_t min_res = UINT64_MAX;
    for (size_t i = 0; i < n; ++i) {
      if (!(taken & (1u << i))) min_res = std::min(min_res, ops[i].res);
    }
    const std::string& state =
        last_write < 0 ? initial : ops[static_cast<size_t>(last_write)].value;
    for (size_t i = 0; i < n; ++i) {
      if (taken & (1u << i)) continue;
      if (ops[i].inv > min_res) continue;
      if (ops[i].is_write) {
        if (dfs(taken | (1u << i), static_cast<int>(i))) return true;
      } else {
        if (ops[i].value != state) continue;
        if (dfs(taken | (1u << i), last_write)) return true;
      }
    }
    return false;
  };
  return dfs(0, -1);
}

TEST(Fuzz, IterativeCheckerMatchesReferenceDfs) {
  int agree_ok = 0, agree_bad = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed * 2654435761ULL + 17);
    const size_t n = 4 + rng.next_u64(15);  // 4..18 ops
    // Plausible histories: simulate an atomic register with linearization
    // points, then corrupt some reads so both verdicts occur.
    struct Gen {
      HistOp op;
      uint64_t point;
    };
    std::vector<Gen> gens;
    uint64_t t = 0;
    for (size_t i = 0; i < n; ++i) {
      Gen g;
      g.op.inv = t;
      g.point = t + 1 + rng.next_u64(20);
      g.op.res = g.point + 1 + rng.next_u64(20);
      g.op.is_write = rng.next_bool(0.5);
      if (g.op.is_write) {
        g.op.value = "w" + std::to_string(rng.next_u64(4));  // dups allowed
      }
      t += rng.next_u64(25);  // sometimes 0: windows overlap
      gens.push_back(g);
    }
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return gens[a].point < gens[b].point;
    });
    std::string reg;  // initial value ""
    for (size_t i : order) {
      if (gens[i].op.is_write) {
        reg = gens[i].op.value;
      } else {
        gens[i].op.value = reg;
      }
    }
    std::vector<HistOp> ops;
    for (const Gen& g : gens) ops.push_back(g.op);
    if (rng.next_bool(0.5)) {
      // Corrupt one read (or write value) to make violations common.
      const size_t victim = rng.next_u64(n);
      ops[victim].value = "x" + std::to_string(rng.next_u64(3));
    }
    const bool expected = reference_linearizable(ops);
    const bool actual = bespokv::testing::linearizable(ops);
    ASSERT_EQ(actual, expected) << "seed " << seed;
    (expected ? agree_ok : agree_bad)++;
  }
  // The generator must actually exercise both verdicts to mean anything.
  EXPECT_GT(agree_ok, 20);
  EXPECT_GT(agree_bad, 20);
}

// ------------------------- scalability (tentpole) ---------------------------

// Builds a linearizable-by-construction mixed history: `ops` operations over
// `keys` keys from `clients` concurrent sessions, with overlapping windows,
// read values assigned by an atomic register simulated at each op's
// linearization point.
History big_history(size_t ops, size_t keys, uint32_t clients, uint64_t seed) {
  struct Gen {
    Op op;
    uint64_t point;
  };
  Rng rng(seed);
  std::vector<Gen> gens;
  uint64_t t = 0;
  for (size_t i = 0; i < ops; ++i) {
    Gen g;
    g.op.client = uint32_t(rng.next_u64(clients));
    g.op.key = "k" + std::to_string(rng.next_u64(keys));
    g.op.inv = t + rng.next_u64(5);
    g.point = g.op.inv + 1 + rng.next_u64(10);
    g.op.res = g.point + 1 + rng.next_u64(10);
    if (rng.next_bool(0.45)) {
      g.op.kind = OpKind::kPut;
      g.op.value = "v" + std::to_string(i);
    } else {
      g.op.kind = OpKind::kGet;
    }
    t = g.op.inv + rng.next_u64(15);  // keep windows overlapping
    gens.push_back(std::move(g));
  }
  std::vector<size_t> order(gens.size());
  for (size_t i = 0; i < gens.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return gens[a].point < gens[b].point;
  });
  std::map<std::string, std::string> reg;
  for (size_t i : order) {
    Op& op = gens[i].op;
    if (op.kind == OpKind::kPut) {
      reg[op.key] = op.value;
    } else {
      auto it = reg.find(op.key);
      if (it == reg.end()) {
        op.found = false;
      } else {
        op.value = it->second;
      }
    }
  }
  History h;
  for (Gen& g : gens) h.record(std::move(g.op));
  return h;
}

TEST(Scalability, ThousandOpFiftyKeyHistoryChecksFast) {
  History h = big_history(1'000, 50, 8, 42);
  const auto t0 = std::chrono::steady_clock::now();
  CheckReport r = check_history(h);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.keys_checked, 50u);
  EXPECT_GE(r.max_key_ops, 15u);
  EXPECT_LT(secs, 5.0) << "checker too slow: " << secs << "s, "
                       << r.states_explored << " states";
}

TEST(Scalability, InjectedStaleReadInBigHistoryIsFlagged) {
  History h = big_history(1'000, 50, 8, 42);
  // Append a deliberate stale read: two sequential overwrites of one key,
  // then a read of the older value strictly after both.
  uint64_t t = 0;
  for (const Op& op : h.ops()) {
    if (op.res != kNoResponse) t = std::max(t, op.res);
  }
  h.record(put(0, "k7", "fresh-1", t + 10, t + 20));
  h.record(put(1, "k7", "fresh-2", t + 30, t + 40));
  h.record(get(2, "k7", "fresh-1", t + 50, t + 60));
  const auto t0 = std::chrono::steady_clock::now();
  CheckReport r = check_history(h);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(r.verdict, Verdict::kViolation) << r.to_string();
  EXPECT_EQ(r.violation, "linearizability");
  EXPECT_EQ(r.key, "k7");
  EXPECT_LT(secs, 5.0);
}

TEST(Scalability, TwoHundredOpsOnOneKeyStayTractable) {
  // >= 200 ops against a single key (the ISSUE's per-key floor).
  History h = big_history(220, 1, 6, 7);
  const auto t0 = std::chrono::steady_clock::now();
  CheckReport r = check_history(h);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_GE(r.max_key_ops, 200u);
  EXPECT_LT(secs, 5.0);
}

// --------------------------- history plumbing -------------------------------

TEST(HistoryModel, JsonRoundTripIsLossless) {
  Op sc = scan(3, 100, 120, {{"a", "v", 9}, {"b", "w", 11}}, 5);
  History h = make_history({
      put(0, "k", "v1", 0, 10),
      put(1, "k", "v2", 5, 0, Outcome::kMaybe),
      get_absent(2, "q", 7, 9),
      del(0, "k", 30, 40),
      sc,
  });
  auto rt = History::from_json(h.to_json());
  ASSERT_TRUE(rt.ok()) << rt.status().to_string();
  EXPECT_EQ(rt.value().to_json().dump(0), h.to_json().dump(0));
  EXPECT_EQ(rt.value().size(), h.size());
  EXPECT_FALSE(h.dump().empty());
}

TEST(HistoryModel, PartitionProjectsScansAndDropsFailures) {
  Op failed = put(0, "k", "nope", 0, 5);
  failed.outcome = Outcome::kFailed;
  History h = make_history({
      failed,
      put(0, "k", "v1", 10, 20),
      scan(1, 30, 40, {{"k", "v1", 2}, {"j", "u1", 1}}),
  });
  auto parts = h.partition_by_key();
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts["k"].size(), 2u);  // the failed put is gone
  ASSERT_EQ(parts["j"].size(), 1u);  // scan projected a read of j
  EXPECT_EQ(parts["j"][0].value, "u1");
  EXPECT_FALSE(parts["j"][0].is_write);
}

}  // namespace
}  // namespace bespokv::verify
