// TCP soak (labeled "slow"): thousands of concurrent raw-socket clients held
// open against one multi-reactor node while the fault injector drops, delays
// and duplicates replies. Every client issues tokened PUTs and retries on
// timeout; the invariant is the chaos suite's — zero lost acked ops: every
// op is eventually acked exactly once (the per-shard dedup window absorbs
// retransmits) and every acked value reads back.
//
// The connection count targets 10k+ but is clamped to what RLIMIT_NOFILE
// allows (client fd + accepted fd both live in this process).
#include <gtest/gtest.h>

#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/datalet/sharded_service.h"
#include "src/net/envelope.h"
#include "src/net/fault.h"
#include "src/net/tcp_fabric.h"

namespace bespokv {
namespace {

uint64_t now_ms() {
  return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now().time_since_epoch()).count());
}

// One raw framed-TCP client connection driving a single tokened PUT at a
// time, with its own reassembly buffer and retransmit state.
struct SoakConn {
  int fd = -1;
  int id = 0;
  std::string rbuf;
  bool acked = false;
  uint64_t last_send_ms = 0;
  int sends = 0;
};

int dial(const sockaddr_in& sa) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    close(fd);
    return -1;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += size_t(n);
  }
  return true;
}

std::string frame_put(const SoakConn& c) {
  Envelope env;
  env.rpc_id = uint64_t(c.id) + 1;
  env.kind = EnvelopeKind::kRequest;
  env.from = "soak/c" + std::to_string(c.id);
  env.msg = Message::put("soak-k" + std::to_string(c.id),
                         "soak-v" + std::to_string(c.id));
  env.msg.token = uint64_t(c.id) + 1;  // retries reuse the token
  std::string out;
  encode_envelope(env, &out);
  return out;
}

// How many connections the fd budget allows: each costs two fds in this
// process (client end + accepted end), plus slack for reactors, gtest, etc.
size_t clamp_conns(size_t want) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return 1024;
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    setrlimit(RLIMIT_NOFILE, &rl);
    getrlimit(RLIMIT_NOFILE, &rl);
  }
  const size_t budget = rl.rlim_cur > 2048 ? (size_t(rl.rlim_cur) - 2048) / 2
                                           : 256;
  return std::min(want, budget);
}

TEST(TcpSoakTest, TenThousandConnectionsSurviveFaults) {
  const size_t kWantConns = 10'000;
  const size_t n_conns = clamp_conns(kWantConns);
  std::fprintf(stderr, "soak: driving %zu concurrent connections\n", n_conns);

  TcpFabricOpts opts;
  opts.reactors = 4;
  TcpFabric fab(opts);
  const int port = TcpFabric::pick_port();
  const Addr addr = "127.0.0.1:" + std::to_string(port);
  fab.add_node(addr, std::make_shared<ShardedDataletService>("tHT", 4));

  // Reply-path chaos: drops force client retries (absorbed by the dedup
  // window), duplicates exercise rpc-id matching, delays pile up queues.
  FaultPlan plan;
  plan.seed = 42;
  LinkFault noise;
  noise.drop = 0.01;
  noise.duplicate = 0.03;
  noise.delay_us = 200;
  noise.jitter_us = 2'000;
  noise.until_us = 30'000'000;
  plan.links.push_back(noise);
  fab.set_fault_injector(std::make_shared<FaultInjector>(plan));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(uint16_t(port));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr), 1);

  // Phase 1: hold n_conns concurrent connections. Connect failures under fd
  // or backlog pressure shrink the fleet rather than failing the test — the
  // invariant below is about the connections we did open.
  std::vector<std::unique_ptr<SoakConn>> conns;
  conns.reserve(n_conns);
  for (size_t i = 0; i < n_conns; ++i) {
    int fd = dial(sa);
    if (fd < 0) {
      std::fprintf(stderr, "soak: connect #%zu failed (%s); capping fleet\n",
                   i, std::strerror(errno));
      break;
    }
    auto c = std::make_unique<SoakConn>();
    c->fd = fd;
    c->id = int(i);
    conns.push_back(std::move(c));
  }
  ASSERT_GE(conns.size(), 512u) << "could not hold a meaningful fleet";

  // Phase 2: every connection sends one tokened PUT, then a poll loop
  // collects acks and retransmits anything unacked for 3s (lost replies).
  for (auto& c : conns) {
    ASSERT_TRUE(send_all(c->fd, frame_put(*c))) << "conn " << c->id;
    c->last_send_ms = now_ms();
    c->sends = 1;
  }

  std::vector<pollfd> pfds(conns.size());
  size_t acked = 0;
  uint64_t total_retries = 0;
  const uint64_t deadline_ms = now_ms() + 120'000;
  while (acked < conns.size() && now_ms() < deadline_ms) {
    for (size_t i = 0; i < conns.size(); ++i) {
      pfds[i].fd = conns[i]->acked ? -1 : conns[i]->fd;  // -1: ignored
      pfds[i].events = POLLIN;
      pfds[i].revents = 0;
    }
    int nready = poll(pfds.data(), nfds_t(pfds.size()), 250);
    if (nready < 0 && errno != EINTR) FAIL() << std::strerror(errno);

    const uint64_t t = now_ms();
    for (size_t i = 0; i < conns.size(); ++i) {
      SoakConn& c = *conns[i];
      if (c.acked) continue;
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        char buf[4096];
        ssize_t n;
        while ((n = recv(c.fd, buf, sizeof(buf), MSG_DONTWAIT)) > 0) {
          c.rbuf.append(buf, size_t(n));
        }
        ASSERT_FALSE(n == 0) << "server closed conn " << c.id;
        Envelope env;
        size_t consumed = 0;
        while (decode_envelope(c.rbuf, &env, &consumed).ok() && consumed > 0) {
          c.rbuf.erase(0, consumed);
          consumed = 0;
          // Duplicated replies re-carry the same rpc_id; count the ack once.
          if (env.rpc_id == uint64_t(c.id) + 1 && !c.acked) {
            ASSERT_EQ(env.msg.code, Code::kOk) << "conn " << c.id;
            c.acked = true;
            ++acked;
          }
        }
      }
      // Retransmit: the reply (or the request's ack processing) was dropped.
      if (!c.acked && t - c.last_send_ms > 3'000) {
        ASSERT_TRUE(send_all(c.fd, frame_put(c))) << "conn " << c.id;
        c.last_send_ms = t;
        ++c.sends;
        ++total_retries;
      }
    }
  }
  std::fprintf(stderr, "soak: %zu/%zu acked, %llu retransmits\n", acked,
               conns.size(), static_cast<unsigned long long>(total_retries));
  EXPECT_EQ(acked, conns.size()) << "lost acked ops";

  // Phase 3: every acked write reads back its value — retransmits must have
  // applied exactly once and nothing was lost in the fault window.
  fab.set_fault_injector(nullptr);
  const size_t stride = std::max<size_t>(1, conns.size() / 1'000);
  for (size_t i = 0; i < conns.size(); i += stride) {
    auto r = fab.call_sync(addr, Message::get("soak-k" + std::to_string(i)),
                           5'000'000);
    ASSERT_TRUE(r.ok()) << i << ": " << r.status().to_string();
    EXPECT_EQ(r.value().value, "soak-v" + std::to_string(i)) << i;
  }

  for (auto& c : conns) close(c->fd);
}

}  // namespace
}  // namespace bespokv
