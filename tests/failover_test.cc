// Failover tests (§IV-A "Failover", §C, Appendix D): heartbeat-driven
// failure detection, chain repair / leader election, standby recovery.
#include <gtest/gtest.h>

#include "src/net/fault.h"
#include "tests/sim_test_util.h"

namespace bespokv {
namespace {

using testing::SimEnv;
using testing::small_cluster;

ClusterOptions failover_cluster(Topology t, Consistency c) {
  ClusterOptions o = small_cluster(t, c, /*shards=*/1, /*replicas=*/3);
  o.num_standby = 1;
  // Faster failure detection so tests stay snappy (paper uses 5s heartbeats).
  o.coordinator.hb_period_us = 100'000;
  o.coordinator.hb_miss_limit = 3;
  o.controlet.hb_period_us = 50'000;
  return o;
}

TEST(Failover, MsScHeadDeathPromotesAndServes) {
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kStrong));
  SyncKv kv = env.client();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  env.cluster.kill_controlet(0, 0);  // kill the head
  env.settle(1'500'000);             // detection + repair + recovery

  EXPECT_GE(env.cluster.coordinator_service()->failovers(), 1u);
  // Data survives and new writes flow through the repaired chain.
  for (int i = 0; i < 20; ++i) {
    auto r = kv.get("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i << " " << r.status().to_string();
    EXPECT_EQ(r.value(), "v" + std::to_string(i));
  }
  ASSERT_TRUE(kv.put("after", "failover").ok());
  EXPECT_EQ(kv.get("after").value(), "failover");
}

TEST(Failover, MsScTailDeathRedirectsReads) {
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kStrong));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  env.cluster.kill_controlet(0, 2);  // kill the tail
  env.settle(1'500'000);
  // The 2nd-from-last node became the tail; reads route there after refresh.
  auto r = kv.get("k");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), "v");
  ASSERT_TRUE(kv.put("k2", "v2").ok());
  EXPECT_EQ(kv.get("k2").value(), "v2");
}

TEST(Failover, MsScMidDeathChainSkipsIt) {
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kStrong));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  env.cluster.kill_controlet(0, 1);  // kill the middle node
  env.settle(1'500'000);
  ASSERT_TRUE(kv.put("k2", "v2").ok());
  EXPECT_EQ(kv.get("k2").value(), "v2");
  EXPECT_EQ(kv.get("k").value(), "v");
}

TEST(Failover, StandbyJoinsAsNewTailWithFullData) {
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kStrong));
  SyncKv kv = env.client();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").ok());
  }
  env.cluster.kill_controlet(0, 1);
  env.settle(2'500'000);  // detection + snapshot recovery + join

  // The shard is back to 3 replicas (standby joined as the new tail) and the
  // recovered replica holds the full dataset.
  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  ASSERT_EQ(m.shards.size(), 1u);
  EXPECT_EQ(m.shards[0].replicas.size(), 3u);
  const Addr new_tail = m.shards[0].replicas.back().controlet;
  EXPECT_NE(new_tail.find("standby"), std::string::npos);
  // Chain writes flow through the recovered tail; strong reads come from it.
  ASSERT_TRUE(kv.put("post-join", "yes").ok());
  EXPECT_EQ(kv.get("post-join").value(), "yes");
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(kv.get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(Failover, MsEcMasterDeathElectsSlave) {
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kEventual));
  SyncKv kv = env.client();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").ok());
  }
  env.settle(300'000);  // let propagation reach the slaves
  env.cluster.kill_controlet(0, 0);
  env.settle(1'500'000);
  // First slave was promoted (deterministic leader election).
  const ShardMap& m = env.cluster.coordinator_service()->shard_map();
  EXPECT_EQ(m.shards[0].replicas.front().controlet.find(".v"),
            std::string::npos);
  ASSERT_TRUE(kv.put("after", "v").ok());
  env.settle(200'000);  // EC: let the new master's propagation reach slaves
  EXPECT_EQ(kv.get("after").value(), "v");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(kv.get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(Failover, MsEcSlaveDeathBarelyDisturbsReads) {
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kEventual));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  env.settle(300'000);
  env.cluster.kill_controlet(0, 2);
  env.settle(1'500'000);
  for (int i = 0; i < 10; ++i) {
    auto r = kv.get("k");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), "v");
  }
}

TEST(Failover, AaEcNodeDeathKeepsServingBothPaths) {
  SimEnv env(failover_cluster(Topology::kActiveActive, Consistency::kEventual));
  SyncKv kv = env.client();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").ok());
  }
  env.settle(300'000);
  env.cluster.kill_controlet(0, 1);
  env.settle(1'500'000);
  ASSERT_TRUE(kv.put("after", "v").ok());
  EXPECT_EQ(kv.get("after").value(), "v");
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(kv.get("k" + std::to_string(i)).ok()) << i;
  }
}

TEST(Failover, AaScSurvivesNodeDeathViaLeaseExpiry) {
  SimEnv env(failover_cluster(Topology::kActiveActive, Consistency::kStrong));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("k", "v").ok());
  env.cluster.kill_controlet(0, 2);
  env.settle(2'000'000);
  ASSERT_TRUE(kv.put("k2", "v2").ok());
  EXPECT_EQ(kv.get("k2").value(), "v2");
  EXPECT_EQ(kv.get("k").value(), "v");
}

TEST(Failover, CoordinatorCountsOnlyRealFailures) {
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kEventual));
  env.settle(2'000'000);  // plenty of heartbeat rounds, nobody dies
  EXPECT_EQ(env.cluster.coordinator_service()->failovers(), 0u);
}

TEST(Failover, DelayOnlyFaultsDoNotEvictHealthyMaster) {
  // ISSUE 5 satellite: heavy but pure-delay network noise stretches heartbeat
  // inter-arrival without losing a single beat. The coordinator must keep
  // every lease alive — suspicion is lease expiry, not slowness.
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kStrong));
  SyncKv kv = env.client();
  ASSERT_TRUE(kv.put("pre", "v").ok());

  FaultPlan p;
  p.links.push_back(
      LinkFault{"*", "*", 0, 0, 0, /*delay_us=*/120'000, /*jitter_us=*/60'000,
                0, 0});
  env.sim.set_fault_injector(std::make_shared<FaultInjector>(p));
  env.settle(3'000'000);  // many delayed heartbeat rounds

  EXPECT_EQ(env.cluster.coordinator_service()->failovers(), 0u);
  EXPECT_EQ(env.cluster.coordinator_service()->shard_map().epoch, 1u);
  // Clear the noise and let one clean heartbeat round renew the master's
  // lease (under 180ms delays the grant can lapse without being revoked —
  // self-fencing is unavailability, never a wrong eviction).
  env.sim.set_fault_injector(nullptr);
  env.settle(300'000);
  ASSERT_TRUE(kv.put("post", "v").ok());
  EXPECT_EQ(kv.get("post").value(), "v");
}

TEST(Failover, FreshlySeenSuspectIsAFalseSuspectNotAFailover) {
  // A peer's failure report against a node whose lease is still valid is
  // recorded as a false suspicion and changes nothing.
  SimEnv env(failover_cluster(Topology::kMasterSlave, Consistency::kStrong));
  Message report;
  report.op = Op::kReportFailure;
  report.key = env.cluster.controlet_addr(0, 0);
  auto rep = env.call(env.cluster.coordinator_addr(), std::move(report));
  ASSERT_TRUE(rep.ok()) << rep.status().to_string();

  EXPECT_EQ(env.cluster.coordinator_service()->false_suspects(), 1u);
  EXPECT_EQ(env.cluster.coordinator_service()->failovers(), 0u);
  EXPECT_EQ(env.cluster.coordinator_service()->shard_map().epoch, 1u);
}

}  // namespace
}  // namespace bespokv
