#include "src/coordinator/cluster_meta.h"

#include <algorithm>

#include "src/common/hash.h"

namespace bespokv {

bool ShardInfo::operator==(const ShardInfo& o) const {
  if (id != o.id || lower != o.lower || upper != o.upper ||
      replicas.size() != o.replicas.size()) {
    return false;
  }
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (replicas[i].controlet != o.replicas[i].controlet) return false;
  }
  return true;
}

const char* topology_name(Topology t) {
  return t == Topology::kMasterSlave ? "ms" : "aa";
}

const char* consistency_name(Consistency c) {
  return c == Consistency::kStrong ? "strong" : "eventual";
}

Result<Topology> parse_topology(const std::string& s) {
  if (s == "ms" || s == "master-slave" || s == "master_slave") {
    return Topology::kMasterSlave;
  }
  if (s == "aa" || s == "active-active" || s == "active_active") {
    return Topology::kActiveActive;
  }
  return Status::Invalid("unknown topology: " + s);
}

Result<Consistency> parse_consistency(const std::string& s) {
  if (s == "strong" || s == "sc") return Consistency::kStrong;
  if (s == "eventual" || s == "ec") return Consistency::kEventual;
  return Status::Invalid("unknown consistency: " + s);
}

Json ShardMap::to_json() const {
  Json j = Json::object();
  j.set("epoch", Json::number(static_cast<double>(epoch)));
  j.set("topology", Json::string(topology_name(topology)));
  j.set("consistency", Json::string(consistency_name(consistency)));
  j.set("partitioner", Json::string(partitioner));
  Json arr = Json::array();
  for (const auto& s : shards) {
    Json js = Json::object();
    js.set("id", Json::number(s.id));
    js.set("lower", Json::string(s.lower));
    js.set("upper", Json::string(s.upper));
    Json reps = Json::array();
    for (const auto& r : s.replicas) reps.push(Json::string(r.controlet));
    js.set("replicas", std::move(reps));
    arr.push(std::move(js));
  }
  j.set("shards", std::move(arr));
  return j;
}

Result<ShardMap> ShardMap::from_json(const Json& j) {
  ShardMap m;
  m.epoch = static_cast<uint64_t>(j.get("epoch").as_int(1));
  auto topo = parse_topology(j.get("topology").as_string("ms"));
  if (!topo.ok()) return topo.status();
  m.topology = topo.value();
  auto cons = parse_consistency(j.get("consistency").as_string("eventual"));
  if (!cons.ok()) return cons.status();
  m.consistency = cons.value();
  m.partitioner = j.get("partitioner").as_string("hash");
  for (const auto& js : j.get("shards").elements()) {
    ShardInfo s;
    s.id = static_cast<uint32_t>(js.get("id").as_int());
    s.lower = js.get("lower").as_string("");
    s.upper = js.get("upper").as_string("");
    for (const auto& r : js.get("replicas").elements()) {
      s.replicas.push_back(ReplicaInfo{r.as_string()});
    }
    m.shards.push_back(std::move(s));
  }
  return m;
}

Result<ShardMap> ShardMap::decode(const std::string& text) {
  auto j = Json::parse(text);
  if (!j.ok()) return j.status();
  return from_json(j.value());
}

namespace {

Json shard_to_json(const ShardInfo& s) {
  Json js = Json::object();
  js.set("id", Json::number(s.id));
  js.set("lower", Json::string(s.lower));
  js.set("upper", Json::string(s.upper));
  Json reps = Json::array();
  for (const auto& r : s.replicas) reps.push(Json::string(r.controlet));
  js.set("replicas", std::move(reps));
  return js;
}

ShardInfo shard_from_json(const Json& js) {
  ShardInfo s;
  s.id = static_cast<uint32_t>(js.get("id").as_int());
  s.lower = js.get("lower").as_string("");
  s.upper = js.get("upper").as_string("");
  for (const auto& r : js.get("replicas").elements()) {
    s.replicas.push_back(ReplicaInfo{r.as_string()});
  }
  return s;
}

}  // namespace

Json ShardMapDelta::to_json() const {
  Json j = Json::object();
  j.set("from_epoch", Json::number(static_cast<double>(from_epoch)));
  j.set("to_epoch", Json::number(static_cast<double>(to_epoch)));
  j.set("topology", Json::string(topology));
  j.set("consistency", Json::string(consistency));
  j.set("partitioner", Json::string(partitioner));
  Json ch = Json::array();
  for (const auto& s : changed) ch.push(shard_to_json(s));
  j.set("changed", std::move(ch));
  Json rm = Json::array();
  for (uint32_t id : removed) rm.push(Json::number(id));
  j.set("removed", std::move(rm));
  return j;
}

Result<ShardMapDelta> ShardMapDelta::from_json(const Json& j) {
  if (!j.is_object()) return Status::Invalid("delta is not an object");
  ShardMapDelta d;
  d.from_epoch = static_cast<uint64_t>(j.get("from_epoch").as_int(0));
  d.to_epoch = static_cast<uint64_t>(j.get("to_epoch").as_int(0));
  d.topology = j.get("topology").as_string("");
  d.consistency = j.get("consistency").as_string("");
  d.partitioner = j.get("partitioner").as_string("");
  for (const auto& js : j.get("changed").elements()) {
    d.changed.push_back(shard_from_json(js));
  }
  for (const auto& je : j.get("removed").elements()) {
    d.removed.push_back(static_cast<uint32_t>(je.as_int()));
  }
  return d;
}

Result<ShardMapDelta> ShardMapDelta::decode(const std::string& text) {
  auto j = Json::parse(text);
  if (!j.ok()) return j.status();
  return from_json(j.value());
}

ShardMapDelta diff_maps(const ShardMap& from, const ShardMap& to) {
  ShardMapDelta d;
  d.from_epoch = from.epoch;
  d.to_epoch = to.epoch;
  d.topology = topology_name(to.topology);
  d.consistency = consistency_name(to.consistency);
  d.partitioner = to.partitioner;
  for (const auto& s : to.shards) {
    const ShardInfo* old = from.shard(s.id);
    if (old == nullptr || !(*old == s)) d.changed.push_back(s);
  }
  for (const auto& s : from.shards) {
    if (to.shard(s.id) == nullptr) d.removed.push_back(s.id);
  }
  return d;
}

Result<ShardMap> apply_delta(const ShardMap& base, const ShardMapDelta& d) {
  if (d.from_epoch != base.epoch) {
    return Status::Invalid("delta cut against epoch " +
                           std::to_string(d.from_epoch) + ", map at " +
                           std::to_string(base.epoch));
  }
  ShardMap m = base;
  m.epoch = d.to_epoch;
  if (!d.topology.empty()) {
    auto topo = parse_topology(d.topology);
    if (!topo.ok()) return topo.status();
    m.topology = topo.value();
  }
  if (!d.consistency.empty()) {
    auto cons = parse_consistency(d.consistency);
    if (!cons.ok()) return cons.status();
    m.consistency = cons.value();
  }
  if (!d.partitioner.empty()) m.partitioner = d.partitioner;
  for (uint32_t id : d.removed) {
    m.shards.erase(std::remove_if(m.shards.begin(), m.shards.end(),
                                  [&](const ShardInfo& s) { return s.id == id; }),
                   m.shards.end());
  }
  for (const auto& s : d.changed) {
    bool found = false;
    for (auto& existing : m.shards) {
      if (existing.id == s.id) {
        existing = s;
        found = true;
        break;
      }
    }
    if (!found) m.shards.push_back(s);
  }
  std::sort(m.shards.begin(), m.shards.end(),
            [](const ShardInfo& a, const ShardInfo& b) { return a.id < b.id; });
  return m;
}

Status validate_range_splits(const std::vector<std::string>& splits) {
  for (size_t i = 0; i < splits.size(); ++i) {
    if (splits[i].empty()) {
      return Status::Invalid("range_splits[" + std::to_string(i) +
                             "] is empty: \"\" is the wildcard bound, not a "
                             "split point");
    }
    if (i > 0 && splits[i] <= splits[i - 1]) {
      return Status::Invalid(
          "range_splits must be strictly increasing: \"" + splits[i] +
          "\" at index " + std::to_string(i) + " does not sort after \"" +
          splits[i - 1] + "\"");
    }
  }
  return Status::Ok();
}

Status validate_range_layout(const ShardMap& m) {
  if (m.partitioner != "range") return Status::Ok();
  if (m.shards.empty()) return Status::Invalid("range map has no shards");
  std::vector<const ShardInfo*> sorted;
  sorted.reserve(m.shards.size());
  for (const auto& s : m.shards) sorted.push_back(&s);
  std::sort(sorted.begin(), sorted.end(),
            [](const ShardInfo* a, const ShardInfo* b) {
              if (a->lower.empty() != b->lower.empty()) return a->lower.empty();
              return a->lower < b->lower;
            });
  if (!sorted.front()->lower.empty()) {
    return Status::Invalid("first range shard must start at the wildcard "
                           "lower bound");
  }
  if (!sorted.back()->upper.empty()) {
    return Status::Invalid("last range shard must end at the wildcard "
                           "upper bound");
  }
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i]->upper.empty()) {
      return Status::Invalid("shard " + std::to_string(sorted[i]->id) +
                             " has a wildcard upper bound but is not last");
    }
    if (sorted[i]->upper != sorted[i + 1]->lower) {
      return Status::Invalid(
          "range gap/overlap between shard " + std::to_string(sorted[i]->id) +
          " (upper \"" + sorted[i]->upper + "\") and shard " +
          std::to_string(sorted[i + 1]->id) + " (lower \"" +
          sorted[i + 1]->lower + "\")");
    }
    if (!sorted[i]->lower.empty() && sorted[i]->upper <= sorted[i]->lower) {
      return Status::Invalid("shard " + std::to_string(sorted[i]->id) +
                             " has an empty or inverted range");
    }
  }
  return Status::Ok();
}

namespace {

// Jump consistent hash (Lamping & Veach): stateless consistent mapping of a
// key hash onto n numbered buckets with minimal reshuffling when n changes.
uint32_t jump_hash(uint64_t key, uint32_t buckets) {
  int64_t b = -1;
  int64_t j = 0;
  while (j < static_cast<int64_t>(buckets)) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<uint32_t>(b);
}

}  // namespace

Result<uint32_t> ShardMap::shard_for(std::string_view key) const {
  if (shards.empty()) return Status::Unavailable("no shards configured");
  if (partitioner == "range") {
    for (const auto& s : shards) {
      const bool lo_ok = s.lower.empty() || key >= s.lower;
      const bool hi_ok = s.upper.empty() || key < s.upper;
      if (lo_ok && hi_ok) return s.id;
    }
    return Status::Invalid("key outside all shard ranges");
  }
  const uint32_t idx = jump_hash(mix64(fnv1a64(key)),
                                 static_cast<uint32_t>(shards.size()));
  return shards[idx].id;
}

const ShardInfo* ShardMap::shard(uint32_t id) const {
  for (const auto& s : shards) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Result<Addr> ShardMap::write_target(std::string_view key, uint64_t salt) const {
  auto sid = shard_for(key);
  if (!sid.ok()) return sid.status();
  const ShardInfo* s = shard(sid.value());
  if (s == nullptr || s->replicas.empty()) {
    return Status::Unavailable("shard has no replicas");
  }
  if (topology == Topology::kActiveActive) {
    return s->replicas[salt % s->replicas.size()].controlet;
  }
  return s->replicas.front().controlet;  // MS: head / master takes writes
}

Result<Addr> ShardMap::read_target(std::string_view key, uint64_t salt,
                                   bool strong) const {
  auto sid = shard_for(key);
  if (!sid.ok()) return sid.status();
  const ShardInfo* s = shard(sid.value());
  if (s == nullptr || s->replicas.empty()) {
    return Status::Unavailable("shard has no replicas");
  }
  if (topology == Topology::kActiveActive) {
    // AA+SC reads take a DLM read lock at any replica; AA+EC reads anywhere.
    return s->replicas[salt % s->replicas.size()].controlet;
  }
  if (strong) {
    // MS+SC (chain replication): strong reads at the tail. MS+EC with a
    // per-request strong level: read at the master, which has every write.
    return consistency == Consistency::kStrong ? s->replicas.back().controlet
                                               : s->replicas.front().controlet;
  }
  return s->replicas[salt % s->replicas.size()].controlet;  // EC: any replica
}

Addr ShardMap::scan_target(const ShardInfo& s, uint64_t salt) const {
  if (s.replicas.empty()) return "";
  if (topology == Topology::kActiveActive) {
    return s.replicas[salt % s.replicas.size()].controlet;
  }
  return consistency == Consistency::kStrong ? s.replicas.back().controlet
                                             : s.replicas.front().controlet;
}

}  // namespace bespokv
