#include "src/coordinator/cluster_meta.h"

#include "src/common/hash.h"

namespace bespokv {

const char* topology_name(Topology t) {
  return t == Topology::kMasterSlave ? "ms" : "aa";
}

const char* consistency_name(Consistency c) {
  return c == Consistency::kStrong ? "strong" : "eventual";
}

Result<Topology> parse_topology(const std::string& s) {
  if (s == "ms" || s == "master-slave" || s == "master_slave") {
    return Topology::kMasterSlave;
  }
  if (s == "aa" || s == "active-active" || s == "active_active") {
    return Topology::kActiveActive;
  }
  return Status::Invalid("unknown topology: " + s);
}

Result<Consistency> parse_consistency(const std::string& s) {
  if (s == "strong" || s == "sc") return Consistency::kStrong;
  if (s == "eventual" || s == "ec") return Consistency::kEventual;
  return Status::Invalid("unknown consistency: " + s);
}

Json ShardMap::to_json() const {
  Json j = Json::object();
  j.set("epoch", Json::number(static_cast<double>(epoch)));
  j.set("topology", Json::string(topology_name(topology)));
  j.set("consistency", Json::string(consistency_name(consistency)));
  j.set("partitioner", Json::string(partitioner));
  Json arr = Json::array();
  for (const auto& s : shards) {
    Json js = Json::object();
    js.set("id", Json::number(s.id));
    js.set("lower", Json::string(s.lower));
    js.set("upper", Json::string(s.upper));
    Json reps = Json::array();
    for (const auto& r : s.replicas) reps.push(Json::string(r.controlet));
    js.set("replicas", std::move(reps));
    arr.push(std::move(js));
  }
  j.set("shards", std::move(arr));
  return j;
}

Result<ShardMap> ShardMap::from_json(const Json& j) {
  ShardMap m;
  m.epoch = static_cast<uint64_t>(j.get("epoch").as_int(1));
  auto topo = parse_topology(j.get("topology").as_string("ms"));
  if (!topo.ok()) return topo.status();
  m.topology = topo.value();
  auto cons = parse_consistency(j.get("consistency").as_string("eventual"));
  if (!cons.ok()) return cons.status();
  m.consistency = cons.value();
  m.partitioner = j.get("partitioner").as_string("hash");
  for (const auto& js : j.get("shards").elements()) {
    ShardInfo s;
    s.id = static_cast<uint32_t>(js.get("id").as_int());
    s.lower = js.get("lower").as_string("");
    s.upper = js.get("upper").as_string("");
    for (const auto& r : js.get("replicas").elements()) {
      s.replicas.push_back(ReplicaInfo{r.as_string()});
    }
    m.shards.push_back(std::move(s));
  }
  return m;
}

Result<ShardMap> ShardMap::decode(const std::string& text) {
  auto j = Json::parse(text);
  if (!j.ok()) return j.status();
  return from_json(j.value());
}

namespace {

// Jump consistent hash (Lamping & Veach): stateless consistent mapping of a
// key hash onto n numbered buckets with minimal reshuffling when n changes.
uint32_t jump_hash(uint64_t key, uint32_t buckets) {
  int64_t b = -1;
  int64_t j = 0;
  while (j < static_cast<int64_t>(buckets)) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = static_cast<int64_t>(
        static_cast<double>(b + 1) *
        (static_cast<double>(1LL << 31) /
         static_cast<double>((key >> 33) + 1)));
  }
  return static_cast<uint32_t>(b);
}

}  // namespace

Result<uint32_t> ShardMap::shard_for(std::string_view key) const {
  if (shards.empty()) return Status::Unavailable("no shards configured");
  if (partitioner == "range") {
    for (const auto& s : shards) {
      const bool lo_ok = s.lower.empty() || key >= s.lower;
      const bool hi_ok = s.upper.empty() || key < s.upper;
      if (lo_ok && hi_ok) return s.id;
    }
    return Status::Invalid("key outside all shard ranges");
  }
  const uint32_t idx = jump_hash(mix64(fnv1a64(key)),
                                 static_cast<uint32_t>(shards.size()));
  return shards[idx].id;
}

const ShardInfo* ShardMap::shard(uint32_t id) const {
  for (const auto& s : shards) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

Result<Addr> ShardMap::write_target(std::string_view key, uint64_t salt) const {
  auto sid = shard_for(key);
  if (!sid.ok()) return sid.status();
  const ShardInfo* s = shard(sid.value());
  if (s == nullptr || s->replicas.empty()) {
    return Status::Unavailable("shard has no replicas");
  }
  if (topology == Topology::kActiveActive) {
    return s->replicas[salt % s->replicas.size()].controlet;
  }
  return s->replicas.front().controlet;  // MS: head / master takes writes
}

Result<Addr> ShardMap::read_target(std::string_view key, uint64_t salt,
                                   bool strong) const {
  auto sid = shard_for(key);
  if (!sid.ok()) return sid.status();
  const ShardInfo* s = shard(sid.value());
  if (s == nullptr || s->replicas.empty()) {
    return Status::Unavailable("shard has no replicas");
  }
  if (topology == Topology::kActiveActive) {
    // AA+SC reads take a DLM read lock at any replica; AA+EC reads anywhere.
    return s->replicas[salt % s->replicas.size()].controlet;
  }
  if (strong) {
    // MS+SC (chain replication): strong reads at the tail. MS+EC with a
    // per-request strong level: read at the master, which has every write.
    return consistency == Consistency::kStrong ? s->replicas.back().controlet
                                               : s->replicas.front().controlet;
  }
  return s->replicas[salt % s->replicas.size()].controlet;  // EC: any replica
}

Addr ShardMap::scan_target(const ShardInfo& s, uint64_t salt) const {
  if (s.replicas.empty()) return "";
  if (topology == Topology::kActiveActive) {
    return s.replicas[salt % s.replicas.size()].controlet;
  }
  return consistency == Consistency::kStrong ? s.replicas.back().controlet
                                             : s.replicas.front().controlet;
}

}  // namespace bespokv
