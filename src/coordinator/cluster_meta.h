// Cluster metadata shared by the coordinator, controlets and client library:
// topology & consistency enums, shard layout, and the versioned shard map
// (serialized as JSON inside kGetShardMap/kReconfigure messages).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/net/runtime.h"

namespace bespokv {

enum class Topology : uint8_t {
  kMasterSlave = 0,   // MS: chain (SC) or master + slaves (EC)
  kActiveActive = 1,  // AA: every replica accepts writes
};

enum class Consistency : uint8_t {
  kStrong = 0,    // SC
  kEventual = 1,  // EC
};

const char* topology_name(Topology t);
const char* consistency_name(Consistency c);
Result<Topology> parse_topology(const std::string& s);
Result<Consistency> parse_consistency(const std::string& s);

struct ReplicaInfo {
  Addr controlet;   // fabric address of the controlet
  // MS chain order: index 0 = head/master, last = tail. AA: all active.
};

struct ShardInfo {
  uint32_t id = 0;
  std::vector<ReplicaInfo> replicas;
  // Range partitioning: keys in [lower, upper) map to this shard ("" lower on
  // shard 0, "" upper on the last shard). Unused for hash partitioning.
  std::string lower;
  std::string upper;

  bool operator==(const ShardInfo& o) const;
};

struct ShardMap {
  uint64_t epoch = 1;
  Topology topology = Topology::kMasterSlave;
  Consistency consistency = Consistency::kEventual;
  std::string partitioner = "hash";  // "hash" | "range"
  std::vector<ShardInfo> shards;

  Json to_json() const;
  static Result<ShardMap> from_json(const Json& j);
  std::string encode() const { return to_json().dump(); }
  static Result<ShardMap> decode(const std::string& text);

  // Key -> shard routing (consistent hashing or range lookup).
  Result<uint32_t> shard_for(std::string_view key) const;
  const ShardInfo* shard(uint32_t id) const;

  // Where a client sends writes / strong reads / eventual reads. `salt`
  // spreads load across eligible replicas.
  Result<Addr> write_target(std::string_view key, uint64_t salt) const;
  Result<Addr> read_target(std::string_view key, uint64_t salt,
                           bool strong) const;
  // Per-shard target for range queries: the replica guaranteed to hold every
  // committed write (tail under MS+SC, master under MS+EC, any under AA).
  Addr scan_target(const ShardInfo& s, uint64_t salt) const;
};

// Delta between two shard-map versions (TurboKV-style versioned routing):
// a client at `from_epoch` applies `changed`/`removed` to reach `to_epoch`
// without re-fetching the full map. Piggybacked on kWrongShard replies and
// on kGetShardMap when the requester reports its current epoch in `seq`.
struct ShardMapDelta {
  uint64_t from_epoch = 0;
  uint64_t to_epoch = 0;
  // The `to` map's global knobs ride along so a delta is self-contained even
  // across a §V transition (topology/consistency changes).
  std::string topology;
  std::string consistency;
  std::string partitioner;
  std::vector<ShardInfo> changed;  // added or re-shaped shards, full records
  std::vector<uint32_t> removed;   // shard ids the new map dropped

  bool empty() const { return changed.empty() && removed.empty(); }
  Json to_json() const;
  static Result<ShardMapDelta> from_json(const Json& j);
  std::string encode() const { return to_json().dump(); }
  static Result<ShardMapDelta> decode(const std::string& text);
};

// Delta turning `from` into `to` (from.epoch/to.epoch stamp the versions).
ShardMapDelta diff_maps(const ShardMap& from, const ShardMap& to);

// Applies `d` to `base`. Fails with kInvalid when d.from_epoch != base.epoch:
// deltas only compose on the exact version they were cut against.
Result<ShardMap> apply_delta(const ShardMap& base, const ShardMapDelta& d);

// Interior split points for carving the keyspace into ranges must be strictly
// increasing and non-empty ("" is the wildcard bound, never a split). Guards
// ClusterOptions::range_splits before a misordered list silently misroutes.
Status validate_range_splits(const std::vector<std::string>& splits);

// Full-layout check for a range-partitioned map: shards must tile the
// keyspace contiguously — first lower and last upper are wildcards, every
// other boundary shared by exactly two neighbours, no overlap or gap.
Status validate_range_layout(const ShardMap& m);

}  // namespace bespokv
