// Coordinator: the cluster's metadata and liveness service (the paper builds
// it on ZooKeeper; here it is a first-class service with the same three
// roles — §III: (1) topology metadata + query service, (2) liveness via
// heartbeats, (3) failover orchestration — plus the §V transition driver).
//
// Failover (§IV-A, §C): when a controlet misses heartbeats, the coordinator
// removes it from the shard (chain repair / leader election), bumps the map
// epoch, reconfigures the survivors, and — if a standby pair is registered —
// directs the standby to recover from a surviving replica and join as the
// new tail/slave/active.
//
// Transitions (§V): given a target topology/consistency and an old→new
// controlet mapping (new controlets share the old ones' datalets), the
// coordinator starts both sides, waits for the old ones to drain, then
// atomically swaps the shard map to the new controlets.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "src/coordinator/cluster_meta.h"
#include "src/net/runtime.h"

namespace bespokv {

namespace storage {
class Env;
}

struct CoordinatorConfig {
  uint64_t hb_period_us = 1'000'000;  // expected controlet heartbeat period
  uint32_t hb_miss_limit = 3;         // misses before a node is declared dead
  // Mastership lease (depose-then-promote). Every heartbeat reply carries a
  // lease grant measured from the heartbeat's *send* instant on the holder's
  // clock; the coordinator pre-shrinks the grant by clock_skew_us and itself
  // waits lease_us + clock_skew_us after the last beat before promoting, so
  // the old master has provably self-fenced before a successor can serve.
  // 0 = derive from the heartbeat settings (lease = miss_limit * period,
  // skew = period / 2), keeping detection latency at the miss-counter's.
  uint64_t lease_us = 0;
  uint64_t clock_skew_us = 0;
  Addr dlm;                            // advertised to controlets/clients
  Addr sharedlog;

  // Migration durability: when set, the in-flight migration record is
  // persisted under meta_dir so a restarted coordinator resumes (copy phase)
  // or idempotently re-drives (cutover phase) instead of stranding the old
  // shard in its dual-write window. The shard map itself is modeled as
  // ZooKeeper-durable (the paper's coordinator is built on ZK).
  storage::Env* meta_env = nullptr;
  std::string meta_dir = "coord";
  // A migration whose copy phase exceeds this budget is aborted (the map is
  // untouched until cutover, so abort is always safe).
  uint64_t migration_timeout_us = 60'000'000;
  // Hot-shard auto-split: when factor > 0 and a shard's per-sweep op count
  // exceeds factor * cluster mean for `sweeps` consecutive sweeps, the
  // coordinator migrates the hot tail of its range automatically. 0 = off
  // (migrations happen only via the kMigrateShard admin op).
  double hot_shard_factor = 0.0;
  uint32_t hot_shard_sweeps = 3;
};

class CoordinatorService : public Service {
 public:
  CoordinatorService(ShardMap initial_map, CoordinatorConfig cfg);

  void start(Runtime& rt) override;
  void stop() override;
  void handle(const Addr& from, Message req, Replier reply) override;

  const ShardMap& shard_map() const { return map_; }
  uint64_t failovers() const { return failovers_; }
  bool transition_active() const { return transition_ != nullptr; }
  bool migration_active() const { return migration_ != nullptr; }
  uint64_t migrations() const { return migrations_; }
  uint64_t migrations_aborted() const { return migrations_aborted_; }
  // Peer failure reports discarded because our own lease evidence said the
  // suspect was still alive (satellite: delay-only faults must not evict).
  uint64_t false_suspects() const { return false_suspects_; }
  // Shared-log truncations issued and the durable floor they reached.
  uint64_t log_trims() const { return log_trims_; }
  uint64_t log_trimmed_to() const { return trimmed_to_; }

  // Effective lease parameters (config override or heartbeat-derived).
  uint64_t lease_us() const;
  uint64_t skew_us() const;

 private:
  struct Transition {
    ShardMap target;                     // map after the swap (new controlets)
    std::map<Addr, Addr> successor_of;   // old controlet -> new controlet
    std::set<Addr> waiting_on;           // old controlets yet to drain
  };

  // In-flight range migration (elastic split/rebalance). The moved range is
  // always the tail [lo, hi) of `from`'s range; `dest` either already owns
  // the right-adjacent range (boundary move) or is a brand-new shard built
  // from registered standbys (`new_dest`). Two phases:
  //   kCopy    — old replicas dual-write [lo, hi) to dest while the old
  //              master's copier streams a snapshot; map bounds unchanged,
  //              so abort is always safe.
  //   kCutover — map bounds moved under a fresh epoch; the phase is pure
  //              idempotent metadata push, re-driven verbatim on restart.
  struct Migration {
    enum class Phase : uint8_t { kCopy = 0, kCutover = 1 };
    Phase phase = Phase::kCopy;
    uint32_t from = 0;                  // shard losing the range
    uint32_t dest = 0;                  // shard gaining it
    bool new_dest = false;              // dest did not exist before cutover
    std::string lo;                     // moved range [lo, hi)
    std::string hi;
    std::vector<Addr> dest_replicas;    // dest controlets (standbys if new)
    uint64_t start_epoch = 0;           // epoch of the dual-write window
    uint64_t deadline_us = 0;           // copy-phase abort deadline

    Json to_json() const;
    static Result<Migration> from_json(const Json& j);
  };

  void sweep();
  void maybe_trim_log();
  void on_node_failure(const Addr& dead);
  void push_reconfigure(const ShardInfo& shard);
  void push_fence(uint32_t shard_id);
  void begin_recovery(uint32_t shard_id);
  void finish_transition();
  Message map_reply() const;

  Status start_migration(uint32_t from_id, const std::string& split_at,
                         int64_t dest_id,
                         const std::vector<Addr>& new_replicas);
  void send_migrate_start();
  void do_cutover();
  // Second half of the cutover: activates the dest and GCs the old replicas.
  // Runs only after every old-shard replica acked the cutover map (or its
  // close call aged past the self-fence deadline).
  void finalize_cutover();
  void abort_migration(const std::string& why);
  void persist_migration();
  void clear_migration();
  void resume_migration();
  // Records the map change `before` -> `map_` in the delta log (bounded ring;
  // clients catch up via kGetShardMap's delta chain or kWrongShard replies).
  void note_map_changed(const ShardMap& before);
  void check_hot_shards();
  std::string migration_path() const;

  CoordinatorConfig cfg_;
  ShardMap map_;
  std::map<Addr, uint64_t> last_seen_;   // controlet -> last heartbeat (us)
  // controlet -> durable watermark reported on its heartbeats. The sweep
  // min-aggregates it across every current replica to truncate the shared
  // log: an entry every replica has durably applied can never be re-fetched.
  std::map<Addr, uint64_t> durable_floor_;
  uint64_t trimmed_to_ = 0;
  uint64_t log_trims_ = 0;
  std::set<Addr> known_dead_;
  std::deque<Addr> standbys_;            // registered standby controlets
  std::map<Addr, uint32_t> recovering_;  // standby -> shard being rebuilt
  std::unique_ptr<Transition> transition_;
  std::unique_ptr<Migration> migration_;
  // Recent map deltas, oldest first; each entry turns epoch N into N+1 for
  // consecutive bumps. Bounded: clients further behind than the ring re-fetch
  // the full map.
  std::deque<ShardMapDelta> delta_log_;
  // Hot-shard detection state: per-shard ops accumulated from heartbeat
  // piggybacks since the last sweep, plus each shard's reported median key
  // and a consecutive-hot-sweep counter.
  std::map<uint32_t, uint64_t> shard_ops_;
  std::map<uint32_t, std::string> shard_median_;
  std::map<uint32_t, uint32_t> hot_streak_;
  uint64_t sweep_timer_ = 0;
  uint64_t failovers_ = 0;
  uint64_t false_suspects_ = 0;
  uint64_t migrations_ = 0;
  uint64_t migrations_aborted_ = 0;
};

}  // namespace bespokv
