// Coordinator: the cluster's metadata and liveness service (the paper builds
// it on ZooKeeper; here it is a first-class service with the same three
// roles — §III: (1) topology metadata + query service, (2) liveness via
// heartbeats, (3) failover orchestration — plus the §V transition driver).
//
// Failover (§IV-A, §C): when a controlet misses heartbeats, the coordinator
// removes it from the shard (chain repair / leader election), bumps the map
// epoch, reconfigures the survivors, and — if a standby pair is registered —
// directs the standby to recover from a surviving replica and join as the
// new tail/slave/active.
//
// Transitions (§V): given a target topology/consistency and an old→new
// controlet mapping (new controlets share the old ones' datalets), the
// coordinator starts both sides, waits for the old ones to drain, then
// atomically swaps the shard map to the new controlets.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "src/coordinator/cluster_meta.h"
#include "src/net/runtime.h"

namespace bespokv {

struct CoordinatorConfig {
  uint64_t hb_period_us = 1'000'000;  // expected controlet heartbeat period
  uint32_t hb_miss_limit = 3;         // misses before a node is declared dead
  // Mastership lease (depose-then-promote). Every heartbeat reply carries a
  // lease grant measured from the heartbeat's *send* instant on the holder's
  // clock; the coordinator pre-shrinks the grant by clock_skew_us and itself
  // waits lease_us + clock_skew_us after the last beat before promoting, so
  // the old master has provably self-fenced before a successor can serve.
  // 0 = derive from the heartbeat settings (lease = miss_limit * period,
  // skew = period / 2), keeping detection latency at the miss-counter's.
  uint64_t lease_us = 0;
  uint64_t clock_skew_us = 0;
  Addr dlm;                            // advertised to controlets/clients
  Addr sharedlog;
};

class CoordinatorService : public Service {
 public:
  CoordinatorService(ShardMap initial_map, CoordinatorConfig cfg);

  void start(Runtime& rt) override;
  void stop() override;
  void handle(const Addr& from, Message req, Replier reply) override;

  const ShardMap& shard_map() const { return map_; }
  uint64_t failovers() const { return failovers_; }
  bool transition_active() const { return transition_ != nullptr; }
  // Peer failure reports discarded because our own lease evidence said the
  // suspect was still alive (satellite: delay-only faults must not evict).
  uint64_t false_suspects() const { return false_suspects_; }
  // Shared-log truncations issued and the durable floor they reached.
  uint64_t log_trims() const { return log_trims_; }
  uint64_t log_trimmed_to() const { return trimmed_to_; }

  // Effective lease parameters (config override or heartbeat-derived).
  uint64_t lease_us() const;
  uint64_t skew_us() const;

 private:
  struct Transition {
    ShardMap target;                     // map after the swap (new controlets)
    std::map<Addr, Addr> successor_of;   // old controlet -> new controlet
    std::set<Addr> waiting_on;           // old controlets yet to drain
  };

  void sweep();
  void maybe_trim_log();
  void on_node_failure(const Addr& dead);
  void push_reconfigure(const ShardInfo& shard);
  void push_fence(uint32_t shard_id);
  void begin_recovery(uint32_t shard_id);
  void finish_transition();
  Message map_reply() const;

  CoordinatorConfig cfg_;
  ShardMap map_;
  std::map<Addr, uint64_t> last_seen_;   // controlet -> last heartbeat (us)
  // controlet -> durable watermark reported on its heartbeats. The sweep
  // min-aggregates it across every current replica to truncate the shared
  // log: an entry every replica has durably applied can never be re-fetched.
  std::map<Addr, uint64_t> durable_floor_;
  uint64_t trimmed_to_ = 0;
  uint64_t log_trims_ = 0;
  std::set<Addr> known_dead_;
  std::deque<Addr> standbys_;            // registered standby controlets
  std::map<Addr, uint32_t> recovering_;  // standby -> shard being rebuilt
  std::unique_ptr<Transition> transition_;
  uint64_t sweep_timer_ = 0;
  uint64_t failovers_ = 0;
  uint64_t false_suspects_ = 0;
};

}  // namespace bespokv
