#include "src/coordinator/coordinator.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/storage/env.h"

namespace bespokv {

CoordinatorService::CoordinatorService(ShardMap initial_map,
                                       CoordinatorConfig cfg)
    : cfg_(cfg), map_(std::move(initial_map)) {}

uint64_t CoordinatorService::lease_us() const {
  if (cfg_.lease_us != 0) return cfg_.lease_us;
  return static_cast<uint64_t>(cfg_.hb_miss_limit) * cfg_.hb_period_us;
}

uint64_t CoordinatorService::skew_us() const {
  if (cfg_.clock_skew_us != 0) return cfg_.clock_skew_us;
  return cfg_.hb_period_us / 2;
}

void CoordinatorService::start(Runtime& rt) {
  Service::start(rt);
  sweep_timer_ = rt_->set_periodic(cfg_.hb_period_us, [this] { sweep(); });
  // The shard map is modeled as ZooKeeper-durable (it survives in `map_`
  // across restarts); the in-flight migration record is our own durable
  // state. Drop any in-memory copy and reload from disk so the persisted
  // record — not a lucky in-memory survivor — is what drives resumption.
  if (cfg_.meta_env != nullptr) {
    migration_.reset();
    resume_migration();
  }
}

void CoordinatorService::stop() {
  if (rt_ != nullptr && sweep_timer_ != 0) rt_->cancel_timer(sweep_timer_);
  sweep_timer_ = 0;
}

Message CoordinatorService::map_reply() const {
  Message rep = Message::reply(Code::kOk);
  rep.value = map_.encode();
  rep.seq = map_.epoch;
  rep.strs.push_back(cfg_.dlm);
  rep.strs.push_back(cfg_.sharedlog);
  return rep;
}

void CoordinatorService::handle(const Addr& from, Message req, Replier reply) {
  switch (req.op) {
    case Op::kGetShardMap: {
      Message rep = map_reply();
      // Versioned-map catch-up: a requester that reports its current epoch in
      // `seq` gets the contiguous delta chain appended in strs[2..] so it can
      // patch forward instead of re-parsing the full map. A gap in the ring
      // (requester too far behind) leaves strs at [dlm, sharedlog] and the
      // full map in `value` remains the fallback.
      if (req.seq > 0 && req.seq < map_.epoch) {
        uint64_t want = req.seq;
        std::vector<std::string> chain;
        for (const auto& d : delta_log_) {
          if (d.to_epoch <= want) continue;
          if (d.from_epoch != want) {
            chain.clear();
            break;
          }
          chain.push_back(d.encode());
          want = d.to_epoch;
        }
        if (want == map_.epoch) {
          for (auto& c : chain) rep.strs.push_back(std::move(c));
        }
      }
      reply(std::move(rep));
      return;
    }

    case Op::kHeartbeat: {
      const Addr& node = req.key.empty() ? from : req.key;
      if (known_dead_.count(node) != 0) {
        // A deposed node's beats do not revive it: it must self-fence, drop
        // any shard state and re-register as a standby. The current epoch
        // rides along so it can tell how far behind its map is.
        Message rep = Message::reply(Code::kConflict, "deposed");
        rep.epoch = map_.epoch;
        reply(std::move(rep));
        return;
      }
      const uint64_t now = rt_->now_us();
      auto it = last_seen_.find(node);
      if (it != last_seen_.end()) {
        rt_->obs().metrics().timer("coord.hb_gap_us").record(now - it->second);
      }
      last_seen_[node] = now;
      // Durable floor piggybacked on the beat (see maybe_trim_log).
      if (req.seq > 0) {
        uint64_t& floor = durable_floor_[node];
        floor = std::max(floor, req.seq);
      }
      // Load report piggybacked on the beat (see check_hot_shards): `limit`
      // carries ops served since the last beat, `value` the replica's median
      // routed key (range maps only). Standbys report zero and are skipped.
      if (req.limit > 0) {
        shard_ops_[req.shard] += req.limit;
        if (!req.value.empty()) shard_median_[req.shard] = req.value;
      }
      // Lease grant, measured by the holder from the heartbeat's *send*
      // instant. Pre-shrunk by the skew margin so the holder's deadline is
      // strictly earlier than ours (send time <= our receive time).
      Message rep = Message::reply(Code::kOk);
      const uint64_t lease = lease_us();
      const uint64_t skew = skew_us();
      rep.seq = skew < lease ? lease - skew : lease / 2;
      rep.epoch = map_.epoch;
      reply(std::move(rep));
      return;
    }

    case Op::kRegisterNode: {
      const Addr& node = req.key.empty() ? from : req.key;
      // A node that was declared dead and came back re-registers here: clear
      // the verdict so its heartbeats count again.
      known_dead_.erase(node);
      bool is_replica = false;
      for (const auto& s : map_.shards) {
        for (const auto& r : s.replicas) is_replica |= r.controlet == node;
      }
      if (!is_replica && recovering_.count(node) == 0 &&
          std::find(standbys_.begin(), standbys_.end(), node) ==
              standbys_.end()) {
        standbys_.push_back(node);
      }
      last_seen_[node] = rt_->now_us();
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kReportFailure: {
      // Peer reports are hints, not verdicts: a node that is merely slow
      // under load (delay-only faults stretch heartbeat inter-arrival
      // without losing beats) must not be evicted. Act only when the
      // suspect's lease has fully expired by our own clock — the same
      // deadline the sweep uses, so a report can at most bring the verdict
      // forward to the next message instead of the next sweep tick.
      auto seen = last_seen_.find(req.key);
      if (known_dead_.count(req.key) == 0 && seen != last_seen_.end()) {
        if (rt_->now_us() - seen->second > lease_us() + skew_us()) {
          on_node_failure(req.key);
        } else {
          ++false_suspects_;
          rt_->obs().metrics().counter("coord.false_suspect").inc();
        }
      }
      reply(map_reply());
      return;
    }

    case Op::kRecoveryDone: {
      const Addr& standby = req.key.empty() ? from : req.key;
      auto it = recovering_.find(standby);
      if (it == recovering_.end()) {
        reply(Message::reply(Code::kInvalid));
        return;
      }
      const uint32_t shard_id = it->second;
      recovering_.erase(it);
      for (auto& s : map_.shards) {
        if (s.id == shard_id) {
          // Paper §IV-A: the recovered pair joins as the new tail (MS) /
          // as another active (AA).
          const ShardMap before = map_;
          s.replicas.push_back(ReplicaInfo{standby});
          ++map_.epoch;
          note_map_changed(before);
          push_reconfigure(s);
          LOG_INFO << "coordinator: " << standby << " joined shard "
                   << shard_id << " after recovery (epoch " << map_.epoch << ")";
          break;
        }
      }
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kStartTransition: {
      // Admin request: value = {"topology": "...", "consistency": "..."},
      // strs = ["old1=new1", "old2=new2", ...].
      if (transition_ != nullptr || migration_ != nullptr) {
        reply(Message::reply(Code::kConflict));
        return;
      }
      auto j = Json::parse(req.value);
      if (!j.ok()) {
        reply(Message::reply(Code::kInvalid));
        return;
      }
      auto topo = parse_topology(j.value().get("topology").as_string("ms"));
      auto cons =
          parse_consistency(j.value().get("consistency").as_string("eventual"));
      if (!topo.ok() || !cons.ok()) {
        reply(Message::reply(Code::kInvalid));
        return;
      }
      auto tr = std::make_unique<Transition>();
      for (const auto& pair : req.strs) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          reply(Message::reply(Code::kInvalid));
          return;
        }
        tr->successor_of[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
      // Build the target map: same shards/datalets, successor controlets,
      // new topology & consistency.
      tr->target = map_;
      tr->target.topology = topo.value();
      tr->target.consistency = cons.value();
      tr->target.epoch = map_.epoch + 1;
      for (auto& s : tr->target.shards) {
        for (auto& r : s.replicas) {
          auto it = tr->successor_of.find(r.controlet);
          if (it == tr->successor_of.end()) {
            reply(Message::reply(Code::kInvalid,
                                 "no successor for " + r.controlet));
            return;
          }
          r.controlet = it->second;
        }
      }
      // Start the new controlets first so forwarded requests find them live.
      const std::string target_enc = tr->target.encode();
      for (const auto& s : tr->target.shards) {
        for (const auto& r : s.replicas) {
          Message m;
          m.op = Op::kStartTransition;
          m.shard = s.id;
          m.value = target_enc;
          m.strs.push_back(cfg_.dlm);
          m.strs.push_back(cfg_.sharedlog);
          rt_->send(r.controlet, std::move(m));
        }
      }
      // Then flip the old controlets into forwarding/drain mode.
      for (const auto& s : map_.shards) {
        for (const auto& r : s.replicas) {
          Message m;
          m.op = Op::kStartTransition;
          m.flags = kFlagTransition;
          m.shard = s.id;
          m.strs.push_back(tr->successor_of.at(r.controlet));
          tr->waiting_on.insert(r.controlet);
          rt_->send(r.controlet, std::move(m));
        }
      }
      transition_ = std::move(tr);
      LOG_INFO << "coordinator: transition to "
               << topology_name(topo.value()) << "+"
               << consistency_name(cons.value()) << " started";
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kTransitionDone: {
      const Addr& node = req.key.empty() ? from : req.key;
      if (transition_ != nullptr) {
        transition_->waiting_on.erase(node);
        if (transition_->waiting_on.empty()) finish_transition();
      }
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kMigrateShard: {
      // Admin request: value = {"from": id, "split_at": key} plus either
      // {"dest": id} (boundary move into the right-adjacent shard) or
      // {"new_replicas": [addr, ...]} (split into a brand-new shard built
      // from registered standbys).
      auto j = Json::parse(req.value);
      if (!j.ok()) {
        reply(Message::reply(Code::kInvalid, "bad migration request JSON"));
        return;
      }
      const Json& v = j.value();
      const uint32_t from_id =
          static_cast<uint32_t>(v.get("from").as_int(0));
      const std::string split = v.get("split_at").as_string("");
      const int64_t dest_id = v.has("dest") ? v.get("dest").as_int(0) : -1;
      std::vector<Addr> new_reps;
      if (v.has("new_replicas")) {
        for (const auto& e : v.get("new_replicas").elements()) {
          new_reps.push_back(e.as_string(""));
        }
      }
      Status s = start_migration(from_id, split, dest_id, new_reps);
      reply(Message::reply(s.code(), s.message()));
      return;
    }

    case Op::kMigrateReady: {
      // Old master's copier reports the background copy drained. Epoch and
      // shard must match the live migration — a stale retry from an already
      // finished (or aborted and restarted) migration must not cut over the
      // wrong range. Duplicate readies after the phase flip are no-ops.
      if (migration_ != nullptr &&
          migration_->phase == Migration::Phase::kCopy &&
          req.shard == migration_->from &&
          req.epoch == migration_->start_epoch) {
        do_cutover();
      }
      reply(Message::reply(Code::kOk));
      return;
    }

    default:
      reply(Message::reply(Code::kInvalid));
  }
}

void CoordinatorService::finish_transition() {
  const ShardMap before = map_;
  map_ = transition_->target;
  note_map_changed(before);
  // Heartbeats: adopt the new controlets, retire tracking of old ones.
  for (const auto& [old_c, new_c] : transition_->successor_of) {
    last_seen_.erase(old_c);
    last_seen_[new_c] = rt_->now_us();
    // Tell the old controlet it has been fully replaced.
    Message m;
    m.op = Op::kReconfigure;
    m.flags = kFlagTransition;
    rt_->send(old_c, std::move(m));
  }
  for (const auto& s : map_.shards) {
    push_reconfigure(s);
    // The swap retires every old controlet at once: ratchet the sinks so a
    // retired controlet's in-flight acquires/appends are fenced.
    push_fence(s.id);
  }
  transition_.reset();
  LOG_INFO << "coordinator: transition complete (epoch " << map_.epoch << ")";
}

void CoordinatorService::sweep() {
  const uint64_t now = rt_->now_us();
  // A migration stuck in its copy phase (partitioned copier, dest replicas
  // unreachable) is aborted: the map is untouched until cutover, so the old
  // shard simply keeps ownership and closes its dual-write window.
  if (migration_ != nullptr && migration_->phase == Migration::Phase::kCopy &&
      now > migration_->deadline_us) {
    abort_migration("copy-phase timeout");
  }
  check_hot_shards();
  // Depose-then-promote: the holder's grant expires lease - skew after the
  // beat's send instant, so by lease + skew after our receive instant it has
  // provably stopped serving regardless of clock skew within the margin.
  const uint64_t deadline = lease_us() + skew_us();
  std::vector<Addr> dead;
  for (const auto& [node, seen] : last_seen_) {
    if (now - seen > deadline && known_dead_.count(node) == 0) {
      dead.push_back(node);
    }
  }
  for (const auto& node : dead) on_node_failure(node);
  maybe_trim_log();
}

void CoordinatorService::maybe_trim_log() {
  // Truncate the shared log up to the minimum durable watermark across every
  // current replica — only when all of them report one (a silent replica may
  // still need the history) and no transition is rewiring the membership.
  if (cfg_.sharedlog.empty() || transition_ != nullptr) return;
  uint64_t floor = UINT64_MAX;
  bool any = false;
  for (const auto& s : map_.shards) {
    for (const auto& r : s.replicas) {
      auto it = durable_floor_.find(r.controlet);
      if (it == durable_floor_.end() || it->second == 0) return;
      floor = std::min(floor, it->second);
      any = true;
    }
  }
  if (!any || floor <= trimmed_to_) return;
  trimmed_to_ = floor;
  ++log_trims_;
  rt_->obs().metrics().counter("coord.log_trims").inc();
  Message t;
  t.op = Op::kLogTrim;
  t.seq = floor + 1;  // entries <= floor are durable everywhere
  rt_->send(cfg_.sharedlog, std::move(t));
}

void CoordinatorService::on_node_failure(const Addr& dead) {
  known_dead_.insert(dead);
  last_seen_.erase(dead);
  durable_floor_.erase(dead);
  standbys_.erase(std::remove(standbys_.begin(), standbys_.end(), dead),
                  standbys_.end());
  // A copy-phase migration cannot survive losing a participant: the copier
  // or a dual-write target is gone, so the snapshot stream can no longer be
  // proven complete. Abort (always safe pre-cutover) before repairing the
  // shard; the migration can be retried once the failover settles. During
  // cutover nothing is aborted — that phase is idempotent metadata push and
  // the failover below re-pushes the repaired map anyway.
  if (migration_ != nullptr && migration_->phase == Migration::Phase::kCopy) {
    bool participant =
        std::find(migration_->dest_replicas.begin(),
                  migration_->dest_replicas.end(),
                  dead) != migration_->dest_replicas.end();
    if (const ShardInfo* fs = map_.shard(migration_->from)) {
      for (const auto& r : fs->replicas) participant |= r.controlet == dead;
    }
    if (participant) abort_migration("participant " + dead + " failed");
  }
  for (auto& s : map_.shards) {
    auto it = std::find_if(s.replicas.begin(), s.replicas.end(),
                           [&](const ReplicaInfo& r) { return r.controlet == dead; });
    if (it == s.replicas.end()) continue;

    const bool was_head = it == s.replicas.begin();
    const ShardMap before = map_;
    s.replicas.erase(it);
    ++map_.epoch;
    ++failovers_;
    note_map_changed(before);
    LOG_INFO << "coordinator: " << dead << " failed; shard " << s.id
             << (was_head ? " head/master re-elected" : " chain repaired")
             << " (epoch " << map_.epoch << ")";
    // Leader election is deterministic: the next replica in chain order is
    // promoted (MS); AA needs no leader. Survivors learn the new layout, and
    // the shared sinks (DLM, shared log) ratchet their per-shard fence so the
    // deposed node's in-flight acquires/appends die there too.
    push_reconfigure(s);
    push_fence(s.id);
    begin_recovery(s.id);
    return;
  }
}

void CoordinatorService::push_fence(uint32_t shard_id) {
  // Fence pushes go out ONLY on depose and transition completion — never on
  // joins or from traffic — so a healthy writer is never transiently fenced
  // by a membership change it has not been told about yet.
  for (const Addr& sink : {cfg_.dlm, cfg_.sharedlog}) {
    if (sink.empty()) continue;
    Message m;
    m.op = Op::kReconfigure;
    m.shard = shard_id;
    m.epoch = map_.epoch;
    rt_->send(sink, std::move(m));
  }
}

void CoordinatorService::push_reconfigure(const ShardInfo& shard) {
  const std::string enc = map_.encode();
  for (const auto& r : shard.replicas) {
    Message m;
    m.op = Op::kReconfigure;
    m.shard = shard.id;
    m.value = enc;
    m.strs.push_back(cfg_.dlm);
    m.strs.push_back(cfg_.sharedlog);
    rt_->send(r.controlet, std::move(m));
  }
}

void CoordinatorService::begin_recovery(uint32_t shard_id) {
  if (standbys_.empty()) {
    LOG_WARN << "coordinator: no standby available for shard " << shard_id;
    return;
  }
  const ShardInfo* s = map_.shard(shard_id);
  if (s == nullptr || s->replicas.empty()) return;
  const Addr standby = standbys_.front();
  standbys_.pop_front();
  recovering_[standby] = shard_id;
  // The standby recovers from a surviving replica's datalet (§IV-A: "the new
  // controlet then recovers the data from one of the datalets").
  Message m;
  m.op = Op::kReconfigure;
  m.flags = kFlagRecovery;
  m.shard = shard_id;
  m.value = map_.encode();
  // strs layout matches apply_map's aux: [dlm, sharedlog, source].
  m.strs.push_back(cfg_.dlm);
  m.strs.push_back(cfg_.sharedlog);
  m.strs.push_back(s->replicas.front().controlet);  // recovery source
  rt_->send(standby, std::move(m));
}

// ---------------------------------------------------------------------------
// Elastic shard migration: epoch-fenced live range split/rebalance.

Json CoordinatorService::Migration::to_json() const {
  Json j = Json::object();
  j.set("phase", Json::number(phase == Phase::kCopy ? 0 : 1));
  j.set("from", Json::number(from));
  j.set("dest", Json::number(dest));
  j.set("new_dest", Json::number(new_dest ? 1 : 0));
  j.set("lo", Json::string(lo));
  j.set("hi", Json::string(hi));
  Json reps = Json::array();
  for (const auto& r : dest_replicas) reps.push(Json::string(r));
  j.set("dest_replicas", std::move(reps));
  j.set("start_epoch", Json::number(static_cast<double>(start_epoch)));
  j.set("deadline_us", Json::number(static_cast<double>(deadline_us)));
  return j;
}

Result<CoordinatorService::Migration> CoordinatorService::Migration::from_json(
    const Json& j) {
  Migration m;
  m.phase = j.get("phase").as_int(0) == 0 ? Phase::kCopy : Phase::kCutover;
  m.from = static_cast<uint32_t>(j.get("from").as_int(0));
  m.dest = static_cast<uint32_t>(j.get("dest").as_int(0));
  m.new_dest = j.get("new_dest").as_int(0) != 0;
  m.lo = j.get("lo").as_string("");
  m.hi = j.get("hi").as_string("");
  for (const auto& e : j.get("dest_replicas").elements()) {
    m.dest_replicas.push_back(e.as_string(""));
  }
  m.start_epoch = static_cast<uint64_t>(j.get("start_epoch").as_int(0));
  m.deadline_us = static_cast<uint64_t>(j.get("deadline_us").as_int(0));
  if (m.lo.empty() || m.dest_replicas.empty()) {
    return Status::Invalid("corrupt migration record");
  }
  return m;
}

std::string CoordinatorService::migration_path() const {
  return cfg_.meta_dir + "/migration.json";
}

void CoordinatorService::persist_migration() {
  if (cfg_.meta_env == nullptr || migration_ == nullptr) return;
  cfg_.meta_env->mkdirs(cfg_.meta_dir);
  Status s = cfg_.meta_env->write_file_durable(migration_path(),
                                               migration_->to_json().dump());
  if (!s.ok()) {
    LOG_WARN << "coordinator: failed to persist migration record: "
             << s.to_string();
  }
}

void CoordinatorService::clear_migration() {
  if (cfg_.meta_env != nullptr && cfg_.meta_env->exists(migration_path())) {
    cfg_.meta_env->remove_file(migration_path());
  }
  migration_.reset();
}

void CoordinatorService::resume_migration() {
  if (cfg_.meta_env == nullptr || !cfg_.meta_env->exists(migration_path())) {
    return;
  }
  auto text = cfg_.meta_env->read_file(migration_path());
  if (!text.ok()) return;
  auto j = Json::parse(text.value());
  if (!j.ok()) {
    LOG_WARN << "coordinator: dropping corrupt migration record";
    cfg_.meta_env->remove_file(migration_path());
    return;
  }
  auto m = Migration::from_json(j.value());
  if (!m.ok()) {
    LOG_WARN << "coordinator: dropping corrupt migration record";
    cfg_.meta_env->remove_file(migration_path());
    return;
  }
  migration_ = std::make_unique<Migration>(std::move(m).value());
  if (migration_->phase == Migration::Phase::kCopy) {
    // Mid-copy restart: re-open the dual-write window with a fresh deadline.
    // Re-sending kMigrateStart resets the copier's cursor — re-copying keys
    // is harmless (dest applies by version, LWW) and re-proves completeness.
    migration_->deadline_us = rt_->now_us() + cfg_.migration_timeout_us;
    persist_migration();
    send_migrate_start();
    LOG_INFO << "coordinator: resumed copy-phase migration of shard "
             << migration_->from << " after restart";
  } else {
    // Mid-cutover restart: the phase is pure metadata push, so re-drive it
    // verbatim. do_cutover() detects whether the map mutation already
    // happened (from-shard upper equals the split) and skips the re-bump.
    LOG_INFO << "coordinator: re-driving cutover for shard "
             << migration_->from << " after restart";
    do_cutover();
  }
}

Status CoordinatorService::start_migration(
    uint32_t from_id, const std::string& split_at, int64_t dest_id,
    const std::vector<Addr>& new_replicas) {
  if (transition_ != nullptr || migration_ != nullptr) {
    return Status::Conflict("transition or migration already active");
  }
  if (map_.partitioner != "range") {
    return Status::Invalid("migration requires range partitioning");
  }
  const ShardInfo* from_s = map_.shard(from_id);
  if (from_s == nullptr || from_s->replicas.empty()) {
    return Status::Invalid("unknown source shard");
  }
  // The moved range is the tail [split_at, from.upper): the split must fall
  // strictly inside the source's range or the migration is a no-op / wraps.
  if (split_at.empty() || split_at <= from_s->lower ||
      (!from_s->upper.empty() && split_at >= from_s->upper)) {
    return Status::Invalid("split_at outside source range");
  }

  Migration m;
  m.from = from_id;
  m.lo = split_at;
  m.hi = from_s->upper;
  if (dest_id >= 0) {
    // Boundary move: dest must own the right-adjacent range so the post-
    // cutover layout stays contiguous.
    const ShardInfo* dest_s = map_.shard(static_cast<uint32_t>(dest_id));
    if (dest_s == nullptr || dest_s->replicas.empty()) {
      return Status::Invalid("unknown dest shard");
    }
    if (from_s->upper.empty() || dest_s->lower != from_s->upper) {
      return Status::Invalid("dest is not the right-adjacent shard");
    }
    m.dest = dest_s->id;
    for (const auto& r : dest_s->replicas) {
      m.dest_replicas.push_back(r.controlet);
    }
  } else {
    // Split into a new shard staffed from registered standbys.
    if (new_replicas.empty()) {
      return Status::Invalid("need dest or new_replicas");
    }
    for (const auto& a : new_replicas) {
      if (std::find(standbys_.begin(), standbys_.end(), a) ==
          standbys_.end()) {
        return Status::Invalid("replica " + a + " is not a registered standby");
      }
    }
    uint32_t max_id = 0;
    for (const auto& s : map_.shards) max_id = std::max(max_id, s.id);
    m.dest = max_id + 1;
    m.new_dest = true;
    m.dest_replicas = new_replicas;
    for (const auto& a : new_replicas) {
      standbys_.erase(std::remove(standbys_.begin(), standbys_.end(), a),
                      standbys_.end());
    }
  }

  // Bump the epoch for the dual-write window: every forwarded kMigratePut and
  // every kMigrateChunk is stamped with it, so a replica still serving the
  // pre-migration epoch can never poison the dest, and the cutover's second
  // bump strictly dominates anything written during the window.
  const ShardMap before = map_;
  ++map_.epoch;
  note_map_changed(before);  // same shape, new epoch: an empty delta
  m.start_epoch = map_.epoch;
  m.deadline_us = rt_->now_us() + cfg_.migration_timeout_us;
  migration_ = std::make_unique<Migration>(std::move(m));
  persist_migration();
  send_migrate_start();
  rt_->obs().metrics().counter("coord.migrations_started").inc();
  LOG_INFO << "coordinator: migrating [" << migration_->lo << ", "
           << (migration_->hi.empty() ? "+inf" : migration_->hi)
           << ") from shard " << migration_->from << " to "
           << (migration_->new_dest ? "new " : "") << "shard "
           << migration_->dest << " (epoch " << map_.epoch << ")";
  return Status::Ok();
}

void CoordinatorService::send_migrate_start() {
  const ShardInfo* from_s = map_.shard(migration_->from);
  if (from_s == nullptr) return;
  // The fresh map rides inside the message (strs[0]) instead of a separate
  // push so a replica cannot observe the dual-write order before the epoch
  // that fences it. strs[1..] lists the dest replicas; the head/master runs
  // the background copier.
  const std::string enc = map_.encode();
  for (size_t i = 0; i < from_s->replicas.size(); ++i) {
    Message m;
    m.op = Op::kMigrateStart;
    m.shard = migration_->dest;
    m.key = migration_->lo;
    m.value = migration_->hi;
    m.epoch = migration_->start_epoch;
    if (i == 0) m.flags |= kFlagCopier;
    m.strs.push_back(enc);
    for (const auto& d : migration_->dest_replicas) m.strs.push_back(d);
    rt_->send(from_s->replicas[i].controlet, std::move(m));
  }
}

void CoordinatorService::do_cutover() {
  Migration& mig = *migration_;
  if (mig.phase != Migration::Phase::kCutover) {
    mig.phase = Migration::Phase::kCutover;
    persist_migration();
  }
  ShardInfo* from_s = nullptr;
  for (auto& s : map_.shards) {
    if (s.id == mig.from) from_s = &s;
  }
  if (from_s == nullptr) {
    // The source shard vanished (failover erased its last replica). The
    // range it owned is gone with it; nothing to cut over.
    ++migrations_aborted_;
    clear_migration();
    return;
  }
  // Idempotence on re-drive: the map mutation happens exactly once (detected
  // by the from-shard's upper bound already sitting at the split point).
  if (from_s->upper != mig.lo) {
    const ShardMap before = map_;
    ++map_.epoch;
    from_s->upper = mig.lo;
    if (mig.new_dest) {
      ShardInfo ns;
      ns.id = mig.dest;
      ns.lower = mig.lo;
      ns.upper = mig.hi;
      for (const auto& a : mig.dest_replicas) {
        ns.replicas.push_back(ReplicaInfo{a});
      }
      map_.shards.push_back(std::move(ns));
      std::sort(map_.shards.begin(), map_.shards.end(),
                [](const ShardInfo& a, const ShardInfo& b) {
                  return a.id < b.id;
                });
    } else {
      for (auto& s : map_.shards) {
        if (s.id == mig.dest) s.lower = mig.lo;
      }
    }
    note_map_changed(before);
    Status layout = validate_range_layout(map_);
    if (!layout.ok()) {
      LOG_ERROR << "coordinator: post-cutover layout invalid: "
                << layout.to_string();
    }
  }

  // Close before activate: the dest must not serve the moved range until
  // every old-shard replica has adopted the cutover map (and so rejects the
  // range with kWrongShard) — otherwise a strong read at a replica whose
  // reconfigure push is still in flight could miss a write the dest already
  // accepted. Fan the reconfigure as *calls* and activate the dest only once
  // every old replica acked or its call timed out; the timeout equals the
  // self-fence deadline (lease + skew), so a replica that never answered has
  // provably stopped serving strong ops by the time the dest goes live.
  const std::string close_enc = map_.encode();
  auto pending = std::make_shared<size_t>(from_s->replicas.size());
  const uint64_t cut_epoch = map_.epoch;
  auto activate = [this, cut_epoch] {
    // Re-check: a coordinator restart or a source-shard collapse may have
    // cleared the record while the close fan-out was in flight.
    if (migration_ != nullptr &&
        migration_->phase == Migration::Phase::kCutover &&
        migration_->start_epoch < cut_epoch) {
      finalize_cutover();
    }
  };
  if (*pending == 0) {
    activate();
    return;
  }
  for (const auto& r : from_s->replicas) {
    Message m;
    m.op = Op::kReconfigure;
    m.shard = mig.from;
    m.value = close_enc;
    m.strs.push_back(cfg_.dlm);
    m.strs.push_back(cfg_.sharedlog);
    rt_->call(r.controlet, std::move(m),
              [pending, activate](Status, Message) {
                if (--*pending == 0) activate();
              },
              lease_us() + skew_us());
  }
}

void CoordinatorService::finalize_cutover() {
  Migration& mig = *migration_;
  const ShardInfo* from_s = map_.shard(mig.from);
  const std::string enc = map_.encode();
  // New-dest replicas were standbys: adopt the shard via the recovery path
  // with no snapshot source (their data arrived through the migration
  // stream), then learn the layout like everyone else.
  if (mig.new_dest) {
    for (const auto& a : mig.dest_replicas) {
      Message m;
      m.op = Op::kReconfigure;
      m.flags = kFlagRecovery;
      m.shard = mig.dest;
      m.value = enc;
      m.strs.push_back(cfg_.dlm);
      m.strs.push_back(cfg_.sharedlog);
      rt_->send(a, std::move(m));
    }
  }
  for (auto& s : map_.shards) {
    if (s.id == mig.from || (s.id == mig.dest && !mig.new_dest)) {
      push_reconfigure(s);
    }
  }
  // Ratchet the shared sinks for both shards: a deposed or partitioned old
  // owner still serving start_epoch dies at the DLM / shared log too.
  push_fence(mig.from);
  push_fence(mig.dest);
  // Tell the old replicas to drop the moved range (closes the dual-write
  // window and GCs the keys). The new map rides along so even a replica that
  // missed the reconfigure learns the cutover atomically with the drop.
  if (from_s != nullptr) {
    for (const auto& r : from_s->replicas) {
      Message m;
      m.op = Op::kMigrateFinish;
      m.shard = mig.from;
      m.key = mig.lo;
      m.value = mig.hi;
      m.epoch = map_.epoch;
      m.strs.push_back(enc);
      rt_->send(r.controlet, std::move(m));
    }
  }
  ++migrations_;
  rt_->obs().metrics().counter("coord.migrations_done").inc();
  LOG_INFO << "coordinator: cutover complete, shard " << mig.from
           << " -> " << mig.dest << " at [" << mig.lo << ", "
           << (mig.hi.empty() ? "+inf" : mig.hi) << ") (epoch "
           << map_.epoch << ")";
  clear_migration();
}

void CoordinatorService::abort_migration(const std::string& why) {
  Migration& mig = *migration_;
  LOG_WARN << "coordinator: aborting migration of shard " << mig.from << ": "
           << why;
  if (const ShardInfo* from_s = map_.shard(mig.from)) {
    for (const auto& r : from_s->replicas) {
      Message m;
      m.op = Op::kMigrateAbort;
      m.shard = mig.from;
      m.epoch = mig.start_epoch;
      rt_->send(r.controlet, std::move(m));
    }
  }
  // Standbys drafted for a new dest go back into the pool (their datalets
  // may hold stray copied keys; harmless — they re-snapshot on real use).
  if (mig.new_dest) {
    for (const auto& a : mig.dest_replicas) {
      if (known_dead_.count(a) == 0 &&
          std::find(standbys_.begin(), standbys_.end(), a) ==
              standbys_.end()) {
        standbys_.push_back(a);
      }
    }
  }
  ++migrations_aborted_;
  rt_->obs().metrics().counter("coord.migrations_aborted").inc();
  clear_migration();
}

void CoordinatorService::note_map_changed(const ShardMap& before) {
  delta_log_.push_back(diff_maps(before, map_));
  while (delta_log_.size() > 32) delta_log_.pop_front();
}

void CoordinatorService::check_hot_shards() {
  // Per-sweep load accumulated from heartbeat piggybacks; always reset so a
  // disabled detector doesn't grow the maps unboundedly.
  std::map<uint32_t, uint64_t> ops;
  ops.swap(shard_ops_);
  if (cfg_.hot_shard_factor <= 0.0 || map_.partitioner != "range" ||
      map_.shards.size() < 2 || transition_ != nullptr ||
      migration_ != nullptr) {
    return;
  }
  uint64_t total = 0;
  for (const auto& [id, n] : ops) total += n;
  if (total == 0) return;
  const double mean = static_cast<double>(total) /
                      static_cast<double>(map_.shards.size());
  for (const auto& s : map_.shards) {
    auto it = ops.find(s.id);
    const uint64_t n = it == ops.end() ? 0 : it->second;
    if (static_cast<double>(n) > cfg_.hot_shard_factor * mean) {
      if (++hot_streak_[s.id] < cfg_.hot_shard_sweeps) continue;
      hot_streak_.clear();
      const auto med = shard_median_.find(s.id);
      if (med == shard_median_.end()) return;
      const std::string& split = med->second;
      if (split.empty() || split <= s.lower ||
          (!s.upper.empty() && split >= s.upper)) {
        return;  // degenerate median (all load on one key); nothing to split
      }
      // Prefer shedding the hot tail into the right-adjacent neighbour; a
      // last shard (wildcard upper) splits into a new shard when enough
      // standbys are registered to staff it.
      int64_t dest_id = -1;
      std::vector<Addr> new_reps;
      if (!s.upper.empty()) {
        for (const auto& d : map_.shards) {
          if (d.lower == s.upper && d.id != s.id) dest_id = d.id;
        }
      }
      if (dest_id < 0) {
        if (standbys_.size() < s.replicas.size()) {
          LOG_WARN << "coordinator: shard " << s.id
                   << " is hot but no dest and too few standbys";
          return;
        }
        for (size_t i = 0; i < s.replicas.size(); ++i) {
          new_reps.push_back(standbys_[i]);
        }
      }
      LOG_INFO << "coordinator: shard " << s.id << " hot (" << n << " ops vs "
               << mean << " mean); auto-migrating tail";
      Status st = start_migration(s.id, split, dest_id, new_reps);
      if (!st.ok()) {
        LOG_WARN << "coordinator: auto-migration failed: " << st.to_string();
      }
      return;  // at most one migration per sweep
    }
    hot_streak_[s.id] = 0;
  }
}

}  // namespace bespokv
