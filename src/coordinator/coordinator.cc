#include "src/coordinator/coordinator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace bespokv {

CoordinatorService::CoordinatorService(ShardMap initial_map,
                                       CoordinatorConfig cfg)
    : cfg_(cfg), map_(std::move(initial_map)) {}

uint64_t CoordinatorService::lease_us() const {
  if (cfg_.lease_us != 0) return cfg_.lease_us;
  return static_cast<uint64_t>(cfg_.hb_miss_limit) * cfg_.hb_period_us;
}

uint64_t CoordinatorService::skew_us() const {
  if (cfg_.clock_skew_us != 0) return cfg_.clock_skew_us;
  return cfg_.hb_period_us / 2;
}

void CoordinatorService::start(Runtime& rt) {
  Service::start(rt);
  sweep_timer_ = rt_->set_periodic(cfg_.hb_period_us, [this] { sweep(); });
}

void CoordinatorService::stop() {
  if (rt_ != nullptr && sweep_timer_ != 0) rt_->cancel_timer(sweep_timer_);
  sweep_timer_ = 0;
}

Message CoordinatorService::map_reply() const {
  Message rep = Message::reply(Code::kOk);
  rep.value = map_.encode();
  rep.seq = map_.epoch;
  rep.strs.push_back(cfg_.dlm);
  rep.strs.push_back(cfg_.sharedlog);
  return rep;
}

void CoordinatorService::handle(const Addr& from, Message req, Replier reply) {
  switch (req.op) {
    case Op::kGetShardMap:
      reply(map_reply());
      return;

    case Op::kHeartbeat: {
      const Addr& node = req.key.empty() ? from : req.key;
      if (known_dead_.count(node) != 0) {
        // A deposed node's beats do not revive it: it must self-fence, drop
        // any shard state and re-register as a standby. The current epoch
        // rides along so it can tell how far behind its map is.
        Message rep = Message::reply(Code::kConflict, "deposed");
        rep.epoch = map_.epoch;
        reply(std::move(rep));
        return;
      }
      const uint64_t now = rt_->now_us();
      auto it = last_seen_.find(node);
      if (it != last_seen_.end()) {
        rt_->obs().metrics().timer("coord.hb_gap_us").record(now - it->second);
      }
      last_seen_[node] = now;
      // Durable floor piggybacked on the beat (see maybe_trim_log).
      if (req.seq > 0) {
        uint64_t& floor = durable_floor_[node];
        floor = std::max(floor, req.seq);
      }
      // Lease grant, measured by the holder from the heartbeat's *send*
      // instant. Pre-shrunk by the skew margin so the holder's deadline is
      // strictly earlier than ours (send time <= our receive time).
      Message rep = Message::reply(Code::kOk);
      const uint64_t lease = lease_us();
      const uint64_t skew = skew_us();
      rep.seq = skew < lease ? lease - skew : lease / 2;
      rep.epoch = map_.epoch;
      reply(std::move(rep));
      return;
    }

    case Op::kRegisterNode: {
      const Addr& node = req.key.empty() ? from : req.key;
      // A node that was declared dead and came back re-registers here: clear
      // the verdict so its heartbeats count again.
      known_dead_.erase(node);
      bool is_replica = false;
      for (const auto& s : map_.shards) {
        for (const auto& r : s.replicas) is_replica |= r.controlet == node;
      }
      if (!is_replica && recovering_.count(node) == 0 &&
          std::find(standbys_.begin(), standbys_.end(), node) ==
              standbys_.end()) {
        standbys_.push_back(node);
      }
      last_seen_[node] = rt_->now_us();
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kReportFailure: {
      // Peer reports are hints, not verdicts: a node that is merely slow
      // under load (delay-only faults stretch heartbeat inter-arrival
      // without losing beats) must not be evicted. Act only when the
      // suspect's lease has fully expired by our own clock — the same
      // deadline the sweep uses, so a report can at most bring the verdict
      // forward to the next message instead of the next sweep tick.
      auto seen = last_seen_.find(req.key);
      if (known_dead_.count(req.key) == 0 && seen != last_seen_.end()) {
        if (rt_->now_us() - seen->second > lease_us() + skew_us()) {
          on_node_failure(req.key);
        } else {
          ++false_suspects_;
          rt_->obs().metrics().counter("coord.false_suspect").inc();
        }
      }
      reply(map_reply());
      return;
    }

    case Op::kRecoveryDone: {
      const Addr& standby = req.key.empty() ? from : req.key;
      auto it = recovering_.find(standby);
      if (it == recovering_.end()) {
        reply(Message::reply(Code::kInvalid));
        return;
      }
      const uint32_t shard_id = it->second;
      recovering_.erase(it);
      for (auto& s : map_.shards) {
        if (s.id == shard_id) {
          // Paper §IV-A: the recovered pair joins as the new tail (MS) /
          // as another active (AA).
          s.replicas.push_back(ReplicaInfo{standby});
          ++map_.epoch;
          push_reconfigure(s);
          LOG_INFO << "coordinator: " << standby << " joined shard "
                   << shard_id << " after recovery (epoch " << map_.epoch << ")";
          break;
        }
      }
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kStartTransition: {
      // Admin request: value = {"topology": "...", "consistency": "..."},
      // strs = ["old1=new1", "old2=new2", ...].
      if (transition_ != nullptr) {
        reply(Message::reply(Code::kConflict));
        return;
      }
      auto j = Json::parse(req.value);
      if (!j.ok()) {
        reply(Message::reply(Code::kInvalid));
        return;
      }
      auto topo = parse_topology(j.value().get("topology").as_string("ms"));
      auto cons =
          parse_consistency(j.value().get("consistency").as_string("eventual"));
      if (!topo.ok() || !cons.ok()) {
        reply(Message::reply(Code::kInvalid));
        return;
      }
      auto tr = std::make_unique<Transition>();
      for (const auto& pair : req.strs) {
        const size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          reply(Message::reply(Code::kInvalid));
          return;
        }
        tr->successor_of[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
      // Build the target map: same shards/datalets, successor controlets,
      // new topology & consistency.
      tr->target = map_;
      tr->target.topology = topo.value();
      tr->target.consistency = cons.value();
      tr->target.epoch = map_.epoch + 1;
      for (auto& s : tr->target.shards) {
        for (auto& r : s.replicas) {
          auto it = tr->successor_of.find(r.controlet);
          if (it == tr->successor_of.end()) {
            reply(Message::reply(Code::kInvalid,
                                 "no successor for " + r.controlet));
            return;
          }
          r.controlet = it->second;
        }
      }
      // Start the new controlets first so forwarded requests find them live.
      const std::string target_enc = tr->target.encode();
      for (const auto& s : tr->target.shards) {
        for (const auto& r : s.replicas) {
          Message m;
          m.op = Op::kStartTransition;
          m.shard = s.id;
          m.value = target_enc;
          m.strs.push_back(cfg_.dlm);
          m.strs.push_back(cfg_.sharedlog);
          rt_->send(r.controlet, std::move(m));
        }
      }
      // Then flip the old controlets into forwarding/drain mode.
      for (const auto& s : map_.shards) {
        for (const auto& r : s.replicas) {
          Message m;
          m.op = Op::kStartTransition;
          m.flags = kFlagTransition;
          m.shard = s.id;
          m.strs.push_back(tr->successor_of.at(r.controlet));
          tr->waiting_on.insert(r.controlet);
          rt_->send(r.controlet, std::move(m));
        }
      }
      transition_ = std::move(tr);
      LOG_INFO << "coordinator: transition to "
               << topology_name(topo.value()) << "+"
               << consistency_name(cons.value()) << " started";
      reply(Message::reply(Code::kOk));
      return;
    }

    case Op::kTransitionDone: {
      const Addr& node = req.key.empty() ? from : req.key;
      if (transition_ != nullptr) {
        transition_->waiting_on.erase(node);
        if (transition_->waiting_on.empty()) finish_transition();
      }
      reply(Message::reply(Code::kOk));
      return;
    }

    default:
      reply(Message::reply(Code::kInvalid));
  }
}

void CoordinatorService::finish_transition() {
  map_ = transition_->target;
  // Heartbeats: adopt the new controlets, retire tracking of old ones.
  for (const auto& [old_c, new_c] : transition_->successor_of) {
    last_seen_.erase(old_c);
    last_seen_[new_c] = rt_->now_us();
    // Tell the old controlet it has been fully replaced.
    Message m;
    m.op = Op::kReconfigure;
    m.flags = kFlagTransition;
    rt_->send(old_c, std::move(m));
  }
  for (const auto& s : map_.shards) {
    push_reconfigure(s);
    // The swap retires every old controlet at once: ratchet the sinks so a
    // retired controlet's in-flight acquires/appends are fenced.
    push_fence(s.id);
  }
  transition_.reset();
  LOG_INFO << "coordinator: transition complete (epoch " << map_.epoch << ")";
}

void CoordinatorService::sweep() {
  const uint64_t now = rt_->now_us();
  // Depose-then-promote: the holder's grant expires lease - skew after the
  // beat's send instant, so by lease + skew after our receive instant it has
  // provably stopped serving regardless of clock skew within the margin.
  const uint64_t deadline = lease_us() + skew_us();
  std::vector<Addr> dead;
  for (const auto& [node, seen] : last_seen_) {
    if (now - seen > deadline && known_dead_.count(node) == 0) {
      dead.push_back(node);
    }
  }
  for (const auto& node : dead) on_node_failure(node);
  maybe_trim_log();
}

void CoordinatorService::maybe_trim_log() {
  // Truncate the shared log up to the minimum durable watermark across every
  // current replica — only when all of them report one (a silent replica may
  // still need the history) and no transition is rewiring the membership.
  if (cfg_.sharedlog.empty() || transition_ != nullptr) return;
  uint64_t floor = UINT64_MAX;
  bool any = false;
  for (const auto& s : map_.shards) {
    for (const auto& r : s.replicas) {
      auto it = durable_floor_.find(r.controlet);
      if (it == durable_floor_.end() || it->second == 0) return;
      floor = std::min(floor, it->second);
      any = true;
    }
  }
  if (!any || floor <= trimmed_to_) return;
  trimmed_to_ = floor;
  ++log_trims_;
  rt_->obs().metrics().counter("coord.log_trims").inc();
  Message t;
  t.op = Op::kLogTrim;
  t.seq = floor + 1;  // entries <= floor are durable everywhere
  rt_->send(cfg_.sharedlog, std::move(t));
}

void CoordinatorService::on_node_failure(const Addr& dead) {
  known_dead_.insert(dead);
  last_seen_.erase(dead);
  durable_floor_.erase(dead);
  standbys_.erase(std::remove(standbys_.begin(), standbys_.end(), dead),
                  standbys_.end());
  for (auto& s : map_.shards) {
    auto it = std::find_if(s.replicas.begin(), s.replicas.end(),
                           [&](const ReplicaInfo& r) { return r.controlet == dead; });
    if (it == s.replicas.end()) continue;

    const bool was_head = it == s.replicas.begin();
    s.replicas.erase(it);
    ++map_.epoch;
    ++failovers_;
    LOG_INFO << "coordinator: " << dead << " failed; shard " << s.id
             << (was_head ? " head/master re-elected" : " chain repaired")
             << " (epoch " << map_.epoch << ")";
    // Leader election is deterministic: the next replica in chain order is
    // promoted (MS); AA needs no leader. Survivors learn the new layout, and
    // the shared sinks (DLM, shared log) ratchet their per-shard fence so the
    // deposed node's in-flight acquires/appends die there too.
    push_reconfigure(s);
    push_fence(s.id);
    begin_recovery(s.id);
    return;
  }
}

void CoordinatorService::push_fence(uint32_t shard_id) {
  // Fence pushes go out ONLY on depose and transition completion — never on
  // joins or from traffic — so a healthy writer is never transiently fenced
  // by a membership change it has not been told about yet.
  for (const Addr& sink : {cfg_.dlm, cfg_.sharedlog}) {
    if (sink.empty()) continue;
    Message m;
    m.op = Op::kReconfigure;
    m.shard = shard_id;
    m.epoch = map_.epoch;
    rt_->send(sink, std::move(m));
  }
}

void CoordinatorService::push_reconfigure(const ShardInfo& shard) {
  const std::string enc = map_.encode();
  for (const auto& r : shard.replicas) {
    Message m;
    m.op = Op::kReconfigure;
    m.shard = shard.id;
    m.value = enc;
    m.strs.push_back(cfg_.dlm);
    m.strs.push_back(cfg_.sharedlog);
    rt_->send(r.controlet, std::move(m));
  }
}

void CoordinatorService::begin_recovery(uint32_t shard_id) {
  if (standbys_.empty()) {
    LOG_WARN << "coordinator: no standby available for shard " << shard_id;
    return;
  }
  const ShardInfo* s = map_.shard(shard_id);
  if (s == nullptr || s->replicas.empty()) return;
  const Addr standby = standbys_.front();
  standbys_.pop_front();
  recovering_[standby] = shard_id;
  // The standby recovers from a surviving replica's datalet (§IV-A: "the new
  // controlet then recovers the data from one of the datalets").
  Message m;
  m.op = Op::kReconfigure;
  m.flags = kFlagRecovery;
  m.shard = shard_id;
  m.value = map_.encode();
  // strs layout matches apply_map's aux: [dlm, sharedlog, source].
  m.strs.push_back(cfg_.dlm);
  m.strs.push_back(cfg_.sharedlog);
  m.strs.push_back(s->replicas.front().controlet);  // recovery source
  rt_->send(standby, std::move(m));
}

}  // namespace bespokv
