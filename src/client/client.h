// bespoKV client library (§III "Client library", Table II client API).
//
// KvClient is the asynchronous, Runtime-hosted client used by workload
// drivers and services running inside a fabric. It caches the coordinator's
// shard map, routes requests with consistent hashing or range partitioning,
// supports per-request consistency levels (§IV-C), and refreshes its map when
// a reply indicates stale routing (kNotLeader / kUnavailable / epoch bump —
// e.g. after failover or a topology/consistency transition).
//
// Resilience (see DESIGN.md "Fault model & recovery"):
//   * Retries with exponential backoff + jitter on routing failures and
//     timeouts, refreshing the shard map before each retry.
//   * Every PUT/DEL carries an idempotency token; controlets dedup on it, so
//     a retried write is applied exactly once per controlet even when the
//     original attempt did land (safe PUT retry across failover).
//   * Optional hedged GETs: if the primary replica has not answered within
//     `hedge_after_us`, the read races a second replica; first reply wins.
//   * kMaybeApplied contract: a write that exhausts its retries with a
//     timeout completes with Status::MaybeApplied, NOT a plain error. The
//     write may or may not have taken effect (the ack was lost, or the
//     server crashed mid-apply). Callers must not assume the old value is
//     still current; read-back (or retrying with the same client, which
//     reuses the dedup window) resolves the ambiguity. Every non-timeout
//     exhaustion still reports the underlying error.
//
// SyncKv wraps the same routing logic over a fabric's call_sync for tests
// and example programs driving the cluster from an external thread.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "src/coordinator/cluster_meta.h"
#include "src/net/runtime.h"
#include "src/proto/message.h"

namespace bespokv {

struct ClientConfig {
  Addr coordinator;
  uint64_t map_refresh_period_us = 2'000'000;  // background map polling
  uint64_t rpc_timeout_us = 1'000'000;
  int retries = 2;  // retries after a routing-induced failure (map refresh)
  // Backoff before retry attempt N: min(backoff_max_us, base << N), with
  // uniform jitter over the top half so synchronized clients fan out.
  uint64_t backoff_base_us = 5'000;
  uint64_t backoff_max_us = 200'000;
  // Cluster-map acquisition deadline. When the coordinator is unreachable
  // (e.g. this client sits on the wrong side of a partition), connect()
  // retries with the standard backoff+jitter — never a hot loop — until this
  // much time has passed, then completes with kUnavailable and fails queued
  // ops the same way. A background retry at backoff_max cadence keeps
  // running, so a healed partition restores service without a new connect().
  uint64_t connect_deadline_us = 10'000'000;
  // >0 enables hedged GETs: if the primary replica hasn't replied within
  // this threshold, the read is raced against another replica and the first
  // reply wins. Only reads that may legally hit several replicas hedge
  // (eventual-consistency reads; strong MS reads are tail-only).
  uint64_t hedge_after_us = 0;
  // Pins this client's eventual-consistency reads to one replica choice
  // instead of spreading them per request, turning the client into a
  // *session*: as long as the replica set is stable, MS+EC reads are
  // monotonic (a slave applies the master's propagation stream in order and
  // never regresses). Failover or a transition reshuffles the replica list
  // and legitimately breaks the pin. Used by the verification harness; off
  // by default because spreading reads is the better load-balancing policy.
  bool sticky_reads = false;
};

class KvClient {
 public:
  using DoneCb = std::function<void(Status, Message)>;
  // Simplified completions.
  using StatusCb = std::function<void(Status)>;
  using ValueCb = std::function<void(Result<std::string>)>;
  using ScanCb = std::function<void(Result<std::vector<KV>>)>;
  // Per-key results of a batch_get, aligned with the request keys.
  using BatchGetCb = std::function<void(std::vector<Result<std::string>>)>;

  KvClient(Runtime* rt, ClientConfig cfg);
  ~KvClient();

  // Fetches the initial shard map; ops issued before completion are queued.
  void connect(StatusCb ready);

  void create_table(const std::string& table, StatusCb done);
  void delete_table(const std::string& table, StatusCb done);

  void put(const std::string& key, const std::string& value, StatusCb done,
           const std::string& table = "",
           ConsistencyLevel level = ConsistencyLevel::kDefault);
  // PUT with a relative time-to-live (cache-tier mode, DESIGN.md). The
  // master controlet stamps an absolute expiry at admission; 0 = no TTL.
  void put_ttl(const std::string& key, const std::string& value,
               uint32_t ttl_ms, StatusCb done, const std::string& table = "",
               ConsistencyLevel level = ConsistencyLevel::kDefault);
  void get(const std::string& key, ValueCb done, const std::string& table = "",
           ConsistencyLevel level = ConsistencyLevel::kDefault);
  void del(const std::string& key, StatusCb done,
           const std::string& table = "",
           ConsistencyLevel level = ConsistencyLevel::kDefault);
  // Range query (§IV-B): requires a scan-capable datalet; under range
  // partitioning the request is split across the shards covering the range.
  void scan(const std::string& start, const std::string& end, uint32_t limit,
            ScanCb done, const std::string& table = "");

  // Pipelined batches: every request is issued back-to-back before any reply
  // is awaited, so all K RPCs are outstanding at once and a coalescing fabric
  // (TcpFabric's deferred writev flush) ships those sharing a connection in
  // one syscall. The callback fires once, after every reply (or timeout)
  // landed. batch_put reports the first failure; batch_get yields per-key
  // results in request order.
  void batch_put(std::vector<KV> kvs, StatusCb done,
                 const std::string& table = "",
                 ConsistencyLevel level = ConsistencyLevel::kDefault);
  void batch_get(std::vector<std::string> keys, BatchGetCb done,
                 const std::string& table = "",
                 ConsistencyLevel level = ConsistencyLevel::kDefault);

  const ShardMap& shard_map() const { return map_; }
  bool ready() const { return ready_; }
  uint64_t map_refreshes() const { return refreshes_; }
  // Refreshes satisfied by patching deltas (kWrongShard piggyback or the
  // coordinator's delta chain) instead of re-parsing the full map.
  uint64_t delta_refreshes() const { return delta_refreshes_; }

 private:
  void refresh_map(StatusCb done);
  // Adopts the map delta piggybacked on a kWrongShard reply; true on success.
  bool try_apply_delta(const Message& rep);
  void connect_attempt(uint64_t started_us, int attempt, StatusCb ready);
  void on_connected();
  void issue(Message req, bool is_read, int attempts_left, DoneCb done);
  Result<Addr> route(const Message& req, bool is_read) const;
  // Alternate replica for a hedged read; fails if no distinct target exists.
  Result<Addr> hedge_target(const Message& req, const Addr& primary) const;
  uint64_t backoff_us(int attempt);
  uint64_t next_token() { return token_base_ + ++token_seq_; }
  // Records a "client.retry" span parented under the request's root span, so
  // every retry of one logical op stays inside the original trace.
  void record_retry_span(const Message& req, uint64_t start_us);

  Runtime* rt_;
  ClientConfig cfg_;
  ShardMap map_;
  bool ready_ = false;
  bool refreshing_ = false;
  // connect() gave up (deadline passed with the coordinator unreachable):
  // ops now fail fast with kUnavailable instead of queueing forever, while a
  // slow background retry waits for the partition to heal.
  bool connect_failed_ = false;
  uint64_t connect_timer_ = 0;
  uint64_t salt_ = 0;  // spreads eventual reads / AA writes across replicas
  uint64_t session_salt_ = 0;  // fixed per-client salt for sticky reads
  uint64_t refresh_timer_ = 0;
  uint64_t refreshes_ = 0;
  uint64_t delta_refreshes_ = 0;
  uint64_t token_base_ = 0;  // random per-client prefix for idempotency tokens
  uint64_t token_seq_ = 0;
  obs::Counter* c_retry_ = nullptr;
  obs::Counter* c_hedge_ = nullptr;
  obs::Counter* c_hedge_wins_ = nullptr;
  obs::Counter* c_maybe_applied_ = nullptr;
  std::vector<std::function<void()>> waiters_;
};

// Synchronous facade used from outside the fabric (tests, examples).
class SyncKv {
 public:
  using CallFn = std::function<Result<Message>(const Addr&, Message)>;

  // `call` is typically ThreadFabric/TcpFabric::call_sync bound to the fabric.
  SyncKv(CallFn call, Addr coordinator);

  Status refresh();
  Status put(const std::string& key, const std::string& value,
             const std::string& table = "",
             ConsistencyLevel level = ConsistencyLevel::kDefault);
  Status put_ttl(const std::string& key, const std::string& value,
                 uint32_t ttl_ms, const std::string& table = "",
                 ConsistencyLevel level = ConsistencyLevel::kDefault);
  Result<std::string> get(const std::string& key,
                          const std::string& table = "",
                          ConsistencyLevel level = ConsistencyLevel::kDefault);
  Status del(const std::string& key, const std::string& table = "");
  Result<std::vector<KV>> scan(const std::string& start, const std::string& end,
                               uint32_t limit, const std::string& table = "");

  const ShardMap& shard_map() const { return map_; }

  // Attempts per op (a map refresh runs between attempts). Raise this for
  // chaos runs that must ride out a full failover detection window.
  void set_attempts(int n) { attempts_ = n; }
  // Real-time sleep between attempts, doubled per retry (0 = none; sim
  // harnesses keep 0 — virtual time advances inside call_ itself).
  void set_backoff_us(uint64_t us) { backoff_us_ = us; }

 private:
  Result<Message> issue(Message req, bool is_read);
  uint64_t next_token() { return token_base_ + ++token_seq_; }

  CallFn call_;
  Addr coordinator_;
  ShardMap map_;
  uint64_t salt_ = 0;
  int attempts_ = 4;
  uint64_t backoff_us_ = 0;
  uint64_t token_base_ = 0;
  uint64_t token_seq_ = 0;
};

}  // namespace bespokv
