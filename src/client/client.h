// bespoKV client library (§III "Client library", Table II client API).
//
// KvClient is the asynchronous, Runtime-hosted client used by workload
// drivers and services running inside a fabric. It caches the coordinator's
// shard map, routes requests with consistent hashing or range partitioning,
// supports per-request consistency levels (§IV-C), and refreshes its map when
// a reply indicates stale routing (kNotLeader / kUnavailable / epoch bump —
// e.g. after failover or a topology/consistency transition).
//
// SyncKv wraps the same routing logic over a fabric's call_sync for tests
// and example programs driving the cluster from an external thread.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "src/coordinator/cluster_meta.h"
#include "src/net/runtime.h"
#include "src/proto/message.h"

namespace bespokv {

struct ClientConfig {
  Addr coordinator;
  uint64_t map_refresh_period_us = 2'000'000;  // background map polling
  uint64_t rpc_timeout_us = 1'000'000;
  int retries = 2;  // retries after a routing-induced failure (map refresh)
};

class KvClient {
 public:
  using DoneCb = std::function<void(Status, Message)>;
  // Simplified completions.
  using StatusCb = std::function<void(Status)>;
  using ValueCb = std::function<void(Result<std::string>)>;
  using ScanCb = std::function<void(Result<std::vector<KV>>)>;
  // Per-key results of a batch_get, aligned with the request keys.
  using BatchGetCb = std::function<void(std::vector<Result<std::string>>)>;

  KvClient(Runtime* rt, ClientConfig cfg);
  ~KvClient();

  // Fetches the initial shard map; ops issued before completion are queued.
  void connect(StatusCb ready);

  void create_table(const std::string& table, StatusCb done);
  void delete_table(const std::string& table, StatusCb done);

  void put(const std::string& key, const std::string& value, StatusCb done,
           const std::string& table = "",
           ConsistencyLevel level = ConsistencyLevel::kDefault);
  void get(const std::string& key, ValueCb done, const std::string& table = "",
           ConsistencyLevel level = ConsistencyLevel::kDefault);
  void del(const std::string& key, StatusCb done,
           const std::string& table = "",
           ConsistencyLevel level = ConsistencyLevel::kDefault);
  // Range query (§IV-B): requires a scan-capable datalet; under range
  // partitioning the request is split across the shards covering the range.
  void scan(const std::string& start, const std::string& end, uint32_t limit,
            ScanCb done, const std::string& table = "");

  // Pipelined batches: every request is issued back-to-back before any reply
  // is awaited, so all K RPCs are outstanding at once and a coalescing fabric
  // (TcpFabric's deferred writev flush) ships those sharing a connection in
  // one syscall. The callback fires once, after every reply (or timeout)
  // landed. batch_put reports the first failure; batch_get yields per-key
  // results in request order.
  void batch_put(std::vector<KV> kvs, StatusCb done,
                 const std::string& table = "",
                 ConsistencyLevel level = ConsistencyLevel::kDefault);
  void batch_get(std::vector<std::string> keys, BatchGetCb done,
                 const std::string& table = "",
                 ConsistencyLevel level = ConsistencyLevel::kDefault);

  const ShardMap& shard_map() const { return map_; }
  bool ready() const { return ready_; }
  uint64_t map_refreshes() const { return refreshes_; }

 private:
  void refresh_map(StatusCb done);
  void issue(Message req, bool is_read, int attempts_left, DoneCb done);
  Result<Addr> route(const Message& req, bool is_read) const;

  Runtime* rt_;
  ClientConfig cfg_;
  ShardMap map_;
  bool ready_ = false;
  bool refreshing_ = false;
  uint64_t salt_ = 0;  // spreads eventual reads / AA writes across replicas
  uint64_t refresh_timer_ = 0;
  uint64_t refreshes_ = 0;
  std::vector<std::function<void()>> waiters_;
};

// Synchronous facade used from outside the fabric (tests, examples).
class SyncKv {
 public:
  using CallFn = std::function<Result<Message>(const Addr&, Message)>;

  // `call` is typically ThreadFabric/TcpFabric::call_sync bound to the fabric.
  SyncKv(CallFn call, Addr coordinator);

  Status refresh();
  Status put(const std::string& key, const std::string& value,
             const std::string& table = "",
             ConsistencyLevel level = ConsistencyLevel::kDefault);
  Result<std::string> get(const std::string& key,
                          const std::string& table = "",
                          ConsistencyLevel level = ConsistencyLevel::kDefault);
  Status del(const std::string& key, const std::string& table = "");
  Result<std::vector<KV>> scan(const std::string& start, const std::string& end,
                               uint32_t limit, const std::string& table = "");

  const ShardMap& shard_map() const { return map_; }

 private:
  Result<Message> issue(Message req, bool is_read);

  CallFn call_;
  Addr coordinator_;
  ShardMap map_;
  uint64_t salt_ = 0;
};

}  // namespace bespokv
