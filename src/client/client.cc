#include "src/client/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace bespokv {

KvClient::KvClient(Runtime* rt, ClientConfig cfg) : rt_(rt), cfg_(cfg) {
  // Random prefix keeps tokens from different clients (and different
  // incarnations of the same client) disjoint; the low bits count requests.
  token_base_ = rt_->rng().next() << 20;
  session_salt_ = rt_->rng().next();
  obs::MetricsRegistry& m = rt_->obs().metrics();
  c_retry_ = &m.counter("client.retry");
  c_hedge_ = &m.counter("client.hedge");
  c_hedge_wins_ = &m.counter("client.hedge_wins");
  c_maybe_applied_ = &m.counter("client.maybe_applied");
}

KvClient::~KvClient() {
  if (refresh_timer_ != 0) rt_->cancel_timer(refresh_timer_);
  if (connect_timer_ != 0) rt_->cancel_timer(connect_timer_);
}

void KvClient::connect(StatusCb ready) {
  connect_attempt(rt_->now_us(), 0, std::move(ready));
}

void KvClient::on_connected() {
  connect_failed_ = false;
  ready_ = true;
  if (refresh_timer_ == 0) {
    refresh_timer_ = rt_->set_periodic(cfg_.map_refresh_period_us, [this] {
      refresh_map([](Status) {});
    });
  }
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& w : waiters) w();
}

void KvClient::connect_attempt(uint64_t started_us, int attempt,
                               StatusCb ready) {
  refresh_map([this, started_us, attempt,
               ready = std::move(ready)](Status s) mutable {
    connect_timer_ = 0;
    if (s.ok()) {
      on_connected();
      if (ready) ready(Status::Ok());
      return;
    }
    if (rt_->now_us() - started_us < cfg_.connect_deadline_us) {
      // Coordinator unreachable (down, or we are partitioned from it): back
      // off with jitter instead of hot-spinning the refresh loop.
      connect_timer_ = rt_->set_timer(
          backoff_us(attempt),
          [this, started_us, attempt, ready = std::move(ready)]() mutable {
            connect_attempt(started_us, attempt + 1, std::move(ready));
          });
      return;
    }
    // Deadline passed: surface kUnavailable to the caller and to every op
    // queued behind connect() (issue() fails fast from here on), but keep a
    // slow background probe so a healed partition restores service.
    connect_failed_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& w : waiters) w();
    if (ready) ready(Status::Unavailable("connect deadline exceeded"));
    connect_timer_ = rt_->set_timer(cfg_.backoff_max_us, [this] {
      connect_attempt(rt_->now_us(), 0, nullptr);
    });
  });
}

void KvClient::refresh_map(StatusCb done) {
  if (refreshing_) {
    if (done) done(Status::Ok());
    return;
  }
  refreshing_ = true;
  Message req;
  req.op = Op::kGetShardMap;
  // Report our epoch: a coordinator that can bridge the gap appends the
  // delta chain in strs[2..] (TurboKV-style versioned routing) and we patch
  // forward instead of re-parsing the full map.
  req.seq = map_.epoch;
  rt_->call(cfg_.coordinator, std::move(req),
            [this, done = std::move(done)](Status s, Message rep) {
              refreshing_ = false;
              if (!s.ok() || rep.code != Code::kOk) {
                if (done) done(s.ok() ? Status(rep.code) : s);
                return;
              }
              bool patched = false;
              if (rep.strs.size() > 2 && !map_.shards.empty()) {
                ShardMap cur = map_;
                patched = true;
                for (size_t i = 2; i < rep.strs.size(); ++i) {
                  auto d = ShardMapDelta::decode(rep.strs[i]);
                  if (!d.ok()) {
                    patched = false;
                    break;
                  }
                  auto next = apply_delta(cur, d.value());
                  if (!next.ok()) {
                    patched = false;
                    break;
                  }
                  cur = std::move(next).value();
                }
                if (patched && cur.epoch >= map_.epoch) {
                  map_ = std::move(cur);
                  ++refreshes_;
                  ++delta_refreshes_;
                }
              }
              if (!patched) {
                auto m = ShardMap::decode(rep.value);
                if (!m.ok()) {
                  if (done) done(m.status());
                  return;
                }
                if (m.value().epoch >= map_.epoch) {
                  map_ = std::move(m).value();
                  ++refreshes_;
                }
              }
              if (done) done(Status::Ok());
            },
            cfg_.rpc_timeout_us);
}

bool KvClient::try_apply_delta(const Message& rep) {
  // kWrongShard piggybacks the server's latest map delta in `value`. If it
  // composes onto our exact epoch, adopt it locally and skip the coordinator
  // round trip entirely.
  if (rep.value.empty() || map_.shards.empty()) return false;
  auto d = ShardMapDelta::decode(rep.value);
  if (!d.ok()) return false;
  auto next = apply_delta(map_, d.value());
  if (!next.ok() || next.value().epoch < map_.epoch) return false;
  map_ = std::move(next).value();
  ++refreshes_;
  ++delta_refreshes_;
  return true;
}

Result<Addr> KvClient::route(const Message& req, bool is_read) const {
  std::string routing_key = req.table;
  if (!routing_key.empty()) routing_key.push_back('\x1f');
  routing_key += req.key;
  const bool strong =
      req.consistency == ConsistencyLevel::kStrong ||
      (req.consistency == ConsistencyLevel::kDefault &&
       map_.consistency == Consistency::kStrong);
  if (is_read) {
    return map_.read_target(routing_key,
                            cfg_.sticky_reads ? session_salt_ : salt_, strong);
  }
  return map_.write_target(routing_key, salt_);
}

void KvClient::issue(Message req, bool is_read, int attempts_left, DoneCb done) {
  if (!ready_) {
    if (connect_failed_) {
      // Fully partitioned from the cluster and past the connect deadline:
      // fail fast instead of queueing unboundedly behind a dead map fetch.
      done(Status::Unavailable("not connected"), Message{});
      return;
    }
    waiters_.push_back([this, req = std::move(req), is_read, attempts_left,
                        done = std::move(done)]() mutable {
      issue(std::move(req), is_read, attempts_left, std::move(done));
    });
    return;
  }
  ++salt_;
  auto target = route(req, is_read);
  if (!target.ok()) {
    done(target.status(), Message{});
    return;
  }
  if (obs::tracing_enabled() && !req.trace.valid()) {
    // Sampling decision: open a root span for this request. Retries re-enter
    // issue() with the context already stamped, so the whole retry sequence
    // stays one trace and the root closes when the final reply surfaces.
    obs::Tracer& tracer = rt_->obs().tracer();
    req.trace.trace_id = tracer.new_trace_id();
    req.trace.span_id = tracer.new_span_id();
    req.trace.hop = 1;  // the server dispatch is one network hop from us
    obs::Span root;
    root.trace_id = req.trace.trace_id;
    root.span_id = req.trace.span_id;
    root.name = std::string("client.") + op_name(req.op);
    root.node = rt_->self();
    root.start_us = rt_->now_us();
    done = [rt = rt_, root = std::move(root),
            done = std::move(done)](Status s, Message rep) mutable {
      root.end_us = rt->now_us();
      rt->obs().tracer().record(std::move(root));
      done(s, std::move(rep));
    };
  }
  const uint64_t attempt_start = rt_->now_us();
  const bool is_write =
      !is_read && (req.op == Op::kPut || req.op == Op::kDel);

  // Shared state for this attempt: the primary dispatch and (for reads) an
  // optional hedged dispatch race; the first conclusive reply wins, and the
  // retry path only runs after every outstanding copy has failed.
  struct Attempt {
    bool completed = false;
    int outstanding = 0;
    uint64_t hedge_timer = 0;
  };
  auto st = std::make_shared<Attempt>();

  auto settle = std::make_shared<std::function<void(Status, Message, bool)>>();
  *settle = [this, req, is_read, is_write, attempts_left, attempt_start, st,
             attempt_target = target.value(),
             done = std::move(done)](Status s, Message rep,
                                     bool hedged) mutable {
    if (st->completed) return;
    st->completed = true;
    if (st->hedge_timer != 0) {
      rt_->cancel_timer(st->hedge_timer);
      st->hedge_timer = 0;
    }
    const bool transport_failed = !s.ok();
    const bool overloaded = !transport_failed && rep.code == Code::kOverloaded;
    const bool wrong_shard =
        !transport_failed && rep.code == Code::kWrongShard;
    const bool retryable = transport_failed || overloaded || wrong_shard ||
                           rep.code == Code::kNotLeader ||
                           rep.code == Code::kUnavailable ||
                           rep.code == Code::kTimeout;
    if (!retryable) {
      if (hedged) c_hedge_wins_->inc();
      done(s, std::move(rep));
      return;
    }
    const bool attempt_timed_out =
        (transport_failed && s.code() == Code::kTimeout) ||
        (!transport_failed && rep.code == Code::kTimeout);
    if (attempts_left > 0) {
      // Stale map (failover / transition took place) or a lost message:
      // refresh the map, back off, and retry against the new layout. The
      // request keeps its idempotency token, so a write whose first attempt
      // did land is not applied twice.
      if (is_write && attempt_timed_out) {
        // Ambiguity is sticky: this attempt may have been applied server-side
        // (lost ack). If no later attempt settles the question with a
        // definite success, the final answer must be kMaybeApplied — a
        // definite failure here would let the checker assume the write never
        // happened while its effect sits durably in the store.
        done = [this, done = std::move(done)](Status fs, Message frep) mutable {
          // Only a definite server verdict (applied, or del-of-absent) can
          // settle the ambiguity; any other final outcome — transport
          // failure OR an error reply like kUnavailable from a later
          // attempt — leaves the earlier timed-out attempt unaccounted for.
          const bool conclusive =
              fs.ok() &&
              (frep.code == Code::kOk || frep.code == Code::kNotFound);
          if (!conclusive && fs.code() != Code::kMaybeApplied) {
            c_maybe_applied_->inc();
            fs = Status::MaybeApplied(
                "an earlier attempt timed out; may have been applied");
          }
          done(std::move(fs), std::move(frep));
        };
      }
      c_retry_->inc();
      record_retry_span(req, attempt_start);
      const int attempt_no = std::max(0, cfg_.retries - attempts_left);
      uint64_t delay = backoff_us(attempt_no);
      if (overloaded) {
        // Admission control shed the request: routing is fine, the shard is
        // just saturated. Honor the server's retry-after hint (reply `seq`,
        // microseconds), keep the jittered backoff as a floor, and skip the
        // map refresh — hammering the coordinator during overload would turn
        // shedding into a retry storm of its own.
        //
        // Exception: the shed reply carries the shard's epoch, and a newer
        // epoch than ours means the map changed under us — a migration may
        // have moved this very key off the saturated shard. Refresh first,
        // and only honor the stale shard's retry-after hint if the key still
        // routes to the same server; a moved key retries on plain backoff.
        if (rep.epoch > map_.epoch) {
          const uint64_t hint = rep.seq;
          refresh_map([this, req = std::move(req), is_read, attempts_left,
                       delay, hint, attempt_target,
                       done = std::move(done)](Status) mutable {
            uint64_t d = delay;
            auto nt = route(req, is_read);
            if (!nt.ok() || nt.value() == attempt_target) {
              d = std::max(d, hint);
            }
            rt_->set_timer(d, [this, req = std::move(req), is_read,
                               attempts_left,
                               done = std::move(done)]() mutable {
              issue(std::move(req), is_read, attempts_left - 1,
                    std::move(done));
            });
          });
          return;
        }
        delay = std::max(delay, rep.seq);
        rt_->set_timer(delay, [this, req = std::move(req), is_read,
                               attempts_left, done = std::move(done)]() mutable {
          issue(std::move(req), is_read, attempts_left - 1, std::move(done));
        });
        return;
      }
      if (wrong_shard && try_apply_delta(rep)) {
        // The rejection carried the map delta that moved this key; patched
        // locally, so skip the coordinator round trip and re-route at once.
        rt_->set_timer(delay, [this, req = std::move(req), is_read,
                               attempts_left, done = std::move(done)]() mutable {
          issue(std::move(req), is_read, attempts_left - 1, std::move(done));
        });
        return;
      }
      refresh_map([this, req = std::move(req), is_read, attempts_left, delay,
                   done = std::move(done)](Status) mutable {
        rt_->set_timer(delay, [this, req = std::move(req), is_read,
                               attempts_left, done = std::move(done)]() mutable {
          issue(std::move(req), is_read, attempts_left - 1, std::move(done));
        });
      });
      return;
    }
    // Out of retries. A write that died to a timeout may have been applied
    // server-side (lost ack): surface the distinct kMaybeApplied status so
    // callers can tell "definitely failed" from "verify before acting" —
    // see the contract in client.h.
    if (is_write && attempt_timed_out) {
      c_maybe_applied_->inc();
      done(Status::MaybeApplied("write timed out; may have been applied"),
           std::move(rep));
      return;
    }
    done(s, std::move(rep));
  };

  auto dispatch = [this, st, settle](const Addr& tgt, const Message& r,
                                     bool hedged) {
    ++st->outstanding;
    rt_->call(tgt, r,
              [st, settle, hedged](Status s, Message rep) {
                --st->outstanding;
                if (st->completed) return;
                const bool conclusive =
                    s.ok() && rep.code != Code::kNotLeader &&
                    rep.code != Code::kUnavailable &&
                    rep.code != Code::kTimeout &&
                    rep.code != Code::kOverloaded &&
                    rep.code != Code::kWrongShard;
                // A failed copy defers to the other in-flight copy (if any);
                // the last one standing settles the attempt either way.
                if (conclusive || st->outstanding == 0) {
                  (*settle)(std::move(s), std::move(rep), hedged);
                }
              },
              cfg_.rpc_timeout_us);
  };

  if (is_read && cfg_.hedge_after_us > 0) {
    auto alt = hedge_target(req, target.value());
    if (alt.ok()) {
      st->hedge_timer = rt_->set_timer(
          cfg_.hedge_after_us,
          [this, st, dispatch, alt = alt.value(), req] {
            st->hedge_timer = 0;
            if (st->completed) return;
            c_hedge_->inc();
            dispatch(alt, req, /*hedged=*/true);
          });
    }
  }
  dispatch(target.value(), req, /*hedged=*/false);
}

Result<Addr> KvClient::hedge_target(const Message& req,
                                    const Addr& primary) const {
  std::string routing_key = req.table;
  if (!routing_key.empty()) routing_key.push_back('\x1f');
  routing_key += req.key;
  const bool strong =
      req.consistency == ConsistencyLevel::kStrong ||
      (req.consistency == ConsistencyLevel::kDefault &&
       map_.consistency == Consistency::kStrong);
  // Probe a few salts for a replica distinct from the primary. Strong MS
  // reads always resolve to the tail, so they never find one — hedging
  // silently stays off for them.
  for (uint64_t probe = 1; probe <= 4; ++probe) {
    auto t = map_.read_target(routing_key, salt_ + probe * 7919, strong);
    if (t.ok() && t.value() != primary) return t;
  }
  return Status::Unavailable("no alternate replica to hedge against");
}

uint64_t KvClient::backoff_us(int attempt) {
  uint64_t d = cfg_.backoff_base_us;
  for (int i = 0; i < attempt && d < cfg_.backoff_max_us; ++i) d *= 2;
  d = std::min(d, cfg_.backoff_max_us);
  if (d < 2) return d;
  // Jitter over the top half: retries spread out instead of stampeding the
  // freshly elected master in lockstep.
  return d / 2 + rt_->rng().next_u64(d / 2 + 1);
}

void KvClient::record_retry_span(const Message& req, uint64_t start_us) {
  if (!req.trace.valid()) return;
  obs::Tracer& tracer = rt_->obs().tracer();
  obs::Span sp;
  sp.trace_id = req.trace.trace_id;
  sp.span_id = tracer.new_span_id();
  // Parent the retry under the request's root span: all attempts of one
  // logical op share a trace, with each failed attempt visible as its own
  // "client.retry" child covering that attempt's wall time.
  sp.parent_span_id = req.trace.span_id;
  sp.name = "client.retry";
  sp.node = rt_->self();
  sp.start_us = start_us;
  sp.end_us = rt_->now_us();
  sp.hop = req.trace.hop;
  tracer.record(std::move(sp));
}

void KvClient::create_table(const std::string& table, StatusCb done) {
  // Tables are prefix-virtualized in every datalet; creation only needs to
  // be visible in routing, which it implicitly is. Report success.
  (void)table;
  rt_->post([done = std::move(done)] { done(Status::Ok()); });
}

void KvClient::delete_table(const std::string& table, StatusCb done) {
  // Broadcast the deletion to every shard master.
  auto remaining = std::make_shared<size_t>(map_.shards.size());
  auto failed = std::make_shared<bool>(false);
  if (map_.shards.empty()) {
    done(Status::Unavailable("no shards"));
    return;
  }
  for (const auto& s : map_.shards) {
    if (s.replicas.empty()) continue;
    Message req;
    req.op = Op::kDeleteTable;
    req.table = table;
    rt_->call(s.replicas.front().controlet, std::move(req),
              [remaining, failed, done](Status st, Message rep) {
                if (!st.ok() || rep.code != Code::kOk) *failed = true;
                if (--*remaining == 0) {
                  done(*failed ? Status::Unavailable("partial table delete")
                               : Status::Ok());
                }
              },
              cfg_.rpc_timeout_us);
  }
}

void KvClient::put(const std::string& key, const std::string& value,
                   StatusCb done, const std::string& table,
                   ConsistencyLevel level) {
  put_ttl(key, value, /*ttl_ms=*/0, std::move(done), table, level);
}

void KvClient::put_ttl(const std::string& key, const std::string& value,
                       uint32_t ttl_ms, StatusCb done,
                       const std::string& table, ConsistencyLevel level) {
  Message req = Message::put_ttl(key, value, ttl_ms, table);
  req.consistency = level;
  req.token = next_token();
  issue(std::move(req), /*is_read=*/false, cfg_.retries,
        [done = std::move(done)](Status s, Message rep) {
          done(s.ok() ? Status(rep.code) : s);
        });
}

void KvClient::get(const std::string& key, ValueCb done,
                   const std::string& table, ConsistencyLevel level) {
  Message req = Message::get(key, table);
  req.consistency = level;
  issue(std::move(req), /*is_read=*/true, cfg_.retries,
        [done = std::move(done)](Status s, Message rep) {
          if (!s.ok()) {
            done(s);
          } else if (rep.code != Code::kOk) {
            done(Status(rep.code));
          } else {
            done(std::move(rep.value));
          }
        });
}

void KvClient::del(const std::string& key, StatusCb done,
                   const std::string& table, ConsistencyLevel level) {
  Message req = Message::del(key, table);
  req.consistency = level;
  req.token = next_token();
  issue(std::move(req), /*is_read=*/false, cfg_.retries,
        [done = std::move(done)](Status s, Message rep) {
          done(s.ok() ? Status(rep.code) : s);
        });
}

void KvClient::batch_put(std::vector<KV> kvs, StatusCb done,
                         const std::string& table, ConsistencyLevel level) {
  if (kvs.empty()) {
    rt_->post([done = std::move(done)] { done(Status::Ok()); });
    return;
  }
  auto remaining = std::make_shared<size_t>(kvs.size());
  auto first_err = std::make_shared<Status>(Status::Ok());
  auto shared_done = std::make_shared<StatusCb>(std::move(done));
  for (auto& kv : kvs) {
    Message req = Message::put(kv.key, kv.value, table);
    req.consistency = level;
    req.token = next_token();
    issue(std::move(req), /*is_read=*/false, cfg_.retries,
          [remaining, first_err, shared_done](Status s, Message rep) {
            const Status eff = s.ok() ? Status(rep.code) : s;
            if (!eff.ok() && first_err->ok()) *first_err = eff;
            if (--*remaining == 0) (*shared_done)(*first_err);
          });
  }
}

void KvClient::batch_get(std::vector<std::string> keys, BatchGetCb done,
                         const std::string& table, ConsistencyLevel level) {
  if (keys.empty()) {
    rt_->post([done = std::move(done)] { done({}); });
    return;
  }
  auto remaining = std::make_shared<size_t>(keys.size());
  auto results = std::make_shared<std::vector<Result<std::string>>>(
      keys.size(), Status::Internal("pending"));
  auto shared_done = std::make_shared<BatchGetCb>(std::move(done));
  for (size_t i = 0; i < keys.size(); ++i) {
    Message req = Message::get(keys[i], table);
    req.consistency = level;
    issue(std::move(req), /*is_read=*/true, cfg_.retries,
          [i, remaining, results, shared_done](Status s, Message rep) {
            if (!s.ok()) {
              (*results)[i] = s;
            } else if (rep.code != Code::kOk) {
              (*results)[i] = Status(rep.code);
            } else {
              (*results)[i] = std::move(rep.value);
            }
            if (--*remaining == 0) (*shared_done)(std::move(*results));
          });
  }
}

void KvClient::scan(const std::string& start, const std::string& end,
                    uint32_t limit, ScanCb done, const std::string& table) {
  // Determine the shards covering [start, end): under range partitioning
  // only the overlapping shards; under hashing, every shard. Shard bounds
  // live in the table-prefixed key space, so compare prefixed bounds.
  std::string pstart = start;
  std::string pend = end;
  if (!table.empty()) {
    const std::string prefix = table + "\x1f";
    pstart = prefix + start;
    pend = end.empty() ? prefix + "\x7f" : prefix + end;
  }
  std::vector<Addr> targets;
  for (const auto& s : map_.shards) {
    if (s.replicas.empty()) continue;
    if (map_.partitioner == "range") {
      const bool before = !s.upper.empty() && s.upper <= pstart;
      const bool after = !pend.empty() && !s.lower.empty() && s.lower >= pend;
      if (before || after) continue;
    }
    targets.push_back(
        map_.scan_target(s, cfg_.sticky_reads ? session_salt_ : salt_));
  }
  if (targets.empty()) {
    done(Status::Unavailable("no shards"));
    return;
  }
  auto remaining = std::make_shared<size_t>(targets.size());
  auto acc = std::make_shared<std::vector<KV>>();
  auto err = std::make_shared<Status>(Status::Ok());
  for (const auto& t : targets) {
    Message req = Message::scan(start, end, limit, table);
    rt_->call(t, std::move(req),
              [remaining, acc, err, limit, done](Status s, Message rep) {
                if (!s.ok()) {
                  *err = s;
                } else if (rep.code != Code::kOk) {
                  *err = Status(rep.code);
                } else {
                  acc->insert(acc->end(), rep.kvs.begin(), rep.kvs.end());
                }
                if (--*remaining == 0) {
                  if (!err->ok()) {
                    done(*err);
                    return;
                  }
                  std::sort(acc->begin(), acc->end(),
                            [](const KV& a, const KV& b) { return a.key < b.key; });
                  if (limit != 0 && acc->size() > limit) acc->resize(limit);
                  done(std::move(*acc));
                }
              },
              cfg_.rpc_timeout_us);
  }
}

// ------------------------------- SyncKv -------------------------------------

namespace {
// Process-wide SyncKv instance counter: gives each instance a disjoint
// idempotency-token space without a per-instance RNG.
std::atomic<uint64_t> g_synckv_instance{1};
}  // namespace

SyncKv::SyncKv(CallFn call, Addr coordinator)
    : call_(std::move(call)),
      coordinator_(std::move(coordinator)),
      token_base_(g_synckv_instance.fetch_add(1) << 32) {}

Status SyncKv::refresh() {
  Message req;
  req.op = Op::kGetShardMap;
  auto rep = call_(coordinator_, std::move(req));
  if (!rep.ok()) return rep.status();
  if (rep.value().code != Code::kOk) return Status(rep.value().code);
  auto m = ShardMap::decode(rep.value().value);
  if (!m.ok()) return m.status();
  map_ = std::move(m).value();
  return Status::Ok();
}

Result<Message> SyncKv::issue(Message req, bool is_read) {
  if (map_.shards.empty()) BKV_RETURN_IF_ERROR(refresh());
  Result<Message> last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < attempts_; ++attempt) {
    if (attempt > 0 && backoff_us_ > 0) {
      const uint64_t exp = backoff_us_ << std::min(attempt - 1, 5);
      std::this_thread::sleep_for(std::chrono::microseconds(exp));
    }
    ++salt_;
    std::string routing_key = req.table;
    if (!routing_key.empty()) routing_key.push_back('\x1f');
    routing_key += req.key;
    const bool strong =
        req.consistency == ConsistencyLevel::kStrong ||
        (req.consistency == ConsistencyLevel::kDefault &&
         map_.consistency == Consistency::kStrong);
    auto target = is_read ? map_.read_target(routing_key, salt_, strong)
                          : map_.write_target(routing_key, salt_);
    if (!target.ok()) return target.status();
    auto rep = call_(target.value(), req);
    if (rep.ok() && rep.value().code == Code::kOverloaded) {
      // Shed by admission control: back off per the server's retry-after
      // hint (reply `seq`, µs) without a map refresh — routing is fine.
      // Unless the shed reply's epoch outruns our map: a migration may have
      // moved this key off the saturated shard, so refresh first and drop
      // the stale shard's hint whenever the key routes somewhere new.
      last = std::move(rep);
      uint64_t hint = last.value().seq;
      if (last.value().epoch > map_.epoch && refresh().ok()) {
        auto nt = is_read ? map_.read_target(routing_key, salt_, strong)
                          : map_.write_target(routing_key, salt_);
        if (nt.ok() && nt.value() != target.value()) hint = 0;
      }
      if (backoff_us_ > 0 || hint > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(std::max(backoff_us_, hint)));
      }
      continue;
    }
    const bool routing_problem =
        !rep.ok() || rep.value().code == Code::kNotLeader ||
        rep.value().code == Code::kUnavailable ||
        rep.value().code == Code::kTimeout ||
        rep.value().code == Code::kWrongShard;
    // The request keeps its idempotency token across attempts: a write
    // whose ack was lost is deduplicated server-side, not applied twice.
    if (!routing_problem) return rep;
    last = std::move(rep);
    // kWrongShard piggybacks the map delta that moved the key; patching it
    // locally saves the coordinator round trip under retry storms.
    bool patched = false;
    if (last.ok() && last.value().code == Code::kWrongShard &&
        !last.value().value.empty() && !map_.shards.empty()) {
      auto d = ShardMapDelta::decode(last.value().value);
      if (d.ok()) {
        auto next = apply_delta(map_, d.value());
        if (next.ok() && next.value().epoch >= map_.epoch) {
          map_ = std::move(next).value();
          patched = true;
        }
      }
    }
    if (!patched) (void)refresh();
  }
  return last;
}

Status SyncKv::put(const std::string& key, const std::string& value,
                   const std::string& table, ConsistencyLevel level) {
  return put_ttl(key, value, /*ttl_ms=*/0, table, level);
}

Status SyncKv::put_ttl(const std::string& key, const std::string& value,
                       uint32_t ttl_ms, const std::string& table,
                       ConsistencyLevel level) {
  Message req = Message::put_ttl(key, value, ttl_ms, table);
  req.consistency = level;
  req.token = next_token();
  auto rep = issue(std::move(req), false);
  // Same contract as KvClient (client.h): a write that exhausted its
  // attempts on timeouts may still have been applied.
  if (!rep.ok()) {
    return rep.status().code() == Code::kTimeout
               ? Status::MaybeApplied(rep.status().message())
               : rep.status();
  }
  if (rep.value().code == Code::kTimeout) {
    return Status::MaybeApplied("write timed out; may have been applied");
  }
  return Status(rep.value().code);
}

Result<std::string> SyncKv::get(const std::string& key,
                                const std::string& table,
                                ConsistencyLevel level) {
  Message req = Message::get(key, table);
  req.consistency = level;
  auto rep = issue(std::move(req), true);
  if (!rep.ok()) return rep.status();
  if (rep.value().code != Code::kOk) return Status(rep.value().code);
  return std::move(rep.value()).value;
}

Status SyncKv::del(const std::string& key, const std::string& table) {
  Message req = Message::del(key, table);
  req.token = next_token();
  auto rep = issue(std::move(req), false);
  if (!rep.ok()) {
    return rep.status().code() == Code::kTimeout
               ? Status::MaybeApplied(rep.status().message())
               : rep.status();
  }
  if (rep.value().code == Code::kTimeout) {
    return Status::MaybeApplied("delete timed out; may have been applied");
  }
  return Status(rep.value().code);
}

Result<std::vector<KV>> SyncKv::scan(const std::string& start,
                                     const std::string& end, uint32_t limit,
                                     const std::string& table) {
  if (map_.shards.empty()) BKV_RETURN_IF_ERROR(refresh());
  std::string pstart = start;
  std::string pend = end;
  if (!table.empty()) {
    const std::string prefix = table + "\x1f";
    pstart = prefix + start;
    pend = end.empty() ? prefix + "\x7f" : prefix + end;
  }
  std::vector<KV> acc;
  for (const auto& s : map_.shards) {
    if (s.replicas.empty()) continue;
    if (map_.partitioner == "range") {
      const bool before = !s.upper.empty() && s.upper <= pstart;
      const bool after = !pend.empty() && !s.lower.empty() && s.lower >= pend;
      if (before || after) continue;
    }
    auto rep = call_(map_.scan_target(s, ++salt_),
                     Message::scan(start, end, limit, table));
    if (!rep.ok()) return rep.status();
    if (rep.value().code != Code::kOk) return Status(rep.value().code);
    acc.insert(acc.end(), rep.value().kvs.begin(), rep.value().kvs.end());
  }
  std::sort(acc.begin(), acc.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; });
  if (limit != 0 && acc.size() > limit) acc.resize(limit);
  return acc;
}

}  // namespace bespokv
