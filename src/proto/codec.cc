#include "src/proto/codec.h"

#include "src/common/hash.h"

namespace bespokv {

void Encoder::put_varint(uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out_->push_back(static_cast<char>(v));
}

void Encoder::put_bytes(std::string_view s) {
  put_varint(s.size());
  out_->append(s.data(), s.size());
}

void Encoder::put_u32_le(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out_->append(b, 4);
}

void Encoder::patch_u32_le(size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out_)[pos + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

Result<uint64_t> Decoder::varint() {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < in_.size() && shift <= 63) {
    uint8_t b = static_cast<uint8_t>(in_[pos_++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
  return Status::Corruption("truncated varint");
}

Result<uint8_t> Decoder::u8() {
  if (pos_ >= in_.size()) return Status::Corruption("truncated u8");
  return static_cast<uint8_t>(in_[pos_++]);
}

Result<std::string> Decoder::bytes() {
  auto len = varint();
  if (!len.ok()) return len.status();
  if (len.value() > remaining()) return Status::Corruption("truncated bytes");
  std::string s(in_.substr(pos_, len.value()));
  pos_ += len.value();
  return s;
}

Result<uint32_t> Decoder::u32_le() {
  if (remaining() < 4) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in_[pos_ + static_cast<size_t>(i)])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

size_t encoded_message_size_hint(const Message& m) {
  size_t n = 64;  // fixed fields, varints, counts, CRC
  n += m.table.size() + m.key.size() + m.value.size();
  for (const auto& kv : m.kvs) n += kv.key.size() + kv.value.size() + 20;
  for (const auto& s : m.strs) n += s.size() + 10;
  return n;
}

void encode_message(const Message& m, std::string* out) {
  const size_t start = out->size();
  out->reserve(start + encoded_message_size_hint(m));
  Encoder e(out);
  e.put_varint(static_cast<uint64_t>(m.op));
  e.put_u8(static_cast<uint8_t>(m.code));
  e.put_varint(m.flags);
  e.put_u8(static_cast<uint8_t>(m.consistency));
  e.put_bytes(m.table);
  e.put_bytes(m.key);
  e.put_bytes(m.value);
  e.put_varint(m.seq);
  e.put_varint(m.epoch);
  e.put_varint(m.shard);
  e.put_varint(m.limit);
  e.put_varint(m.ttl_ms);
  e.put_varint(m.kvs.size());
  for (const auto& kv : m.kvs) {
    e.put_bytes(kv.key);
    e.put_bytes(kv.value);
    e.put_varint(kv.seq);
  }
  e.put_varint(m.strs.size());
  for (const auto& s : m.strs) e.put_bytes(s);

  const uint32_t crc =
      crc32c(std::string_view(out->data() + start, out->size() - start));
  e.put_u32_le(crc);
}

Result<Message> decode_message(std::string_view buf, size_t* consumed) {
  if (buf.size() < 4) return Status::Corruption("message too short");

  // The fields are parsed first to discover the message's extent, then the
  // CRC32C trailer immediately after them is verified over exactly that
  // prefix — so a message no longer has to span the whole buffer and the
  // envelope may append tail fields after it.
  Decoder d(buf);
  Message m;
  auto op = d.varint();
  if (!op.ok()) return op.status();
  m.op = static_cast<Op>(op.value());
  auto code = d.u8();
  if (!code.ok()) return code.status();
  m.code = static_cast<Code>(code.value());
  auto flags = d.varint();
  if (!flags.ok()) return flags.status();
  m.flags = static_cast<uint32_t>(flags.value());
  auto cons = d.u8();
  if (!cons.ok()) return cons.status();
  m.consistency = static_cast<ConsistencyLevel>(cons.value());

  auto table = d.bytes();
  if (!table.ok()) return table.status();
  m.table = std::move(table).value();
  auto key = d.bytes();
  if (!key.ok()) return key.status();
  m.key = std::move(key).value();
  auto value = d.bytes();
  if (!value.ok()) return value.status();
  m.value = std::move(value).value();

  auto seq = d.varint();
  if (!seq.ok()) return seq.status();
  m.seq = seq.value();
  auto epoch = d.varint();
  if (!epoch.ok()) return epoch.status();
  m.epoch = epoch.value();
  auto shard = d.varint();
  if (!shard.ok()) return shard.status();
  m.shard = static_cast<uint32_t>(shard.value());
  auto limit = d.varint();
  if (!limit.ok()) return limit.status();
  m.limit = static_cast<uint32_t>(limit.value());
  auto ttl = d.varint();
  if (!ttl.ok()) return ttl.status();
  m.ttl_ms = static_cast<uint32_t>(ttl.value());

  auto nkvs = d.varint();
  if (!nkvs.ok()) return nkvs.status();
  if (nkvs.value() > buf.size()) return Status::Corruption("kv count too large");
  m.kvs.reserve(nkvs.value());
  for (uint64_t i = 0; i < nkvs.value(); ++i) {
    KV kv;
    auto k = d.bytes();
    if (!k.ok()) return k.status();
    kv.key = std::move(k).value();
    auto v = d.bytes();
    if (!v.ok()) return v.status();
    kv.value = std::move(v).value();
    auto s = d.varint();
    if (!s.ok()) return s.status();
    kv.seq = s.value();
    m.kvs.push_back(std::move(kv));
  }

  auto nstrs = d.varint();
  if (!nstrs.ok()) return nstrs.status();
  if (nstrs.value() > buf.size()) return Status::Corruption("str count too large");
  m.strs.reserve(nstrs.value());
  for (uint64_t i = 0; i < nstrs.value(); ++i) {
    auto s = d.bytes();
    if (!s.ok()) return s.status();
    m.strs.push_back(std::move(s).value());
  }

  const size_t body_len = d.consumed();
  auto want = d.u32_le();
  if (!want.ok()) return Status::Corruption("message CRC missing");
  if (crc32c(buf.substr(0, body_len)) != want.value()) {
    return Status::Corruption("message CRC mismatch");
  }
  if (consumed != nullptr) {
    *consumed = body_len + 4;
  } else if (!d.exhausted()) {
    return Status::Corruption("trailing bytes in message");
  }
  return m;
}

}  // namespace bespokv
