#include "src/proto/text_protocol.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <vector>

namespace bespokv {

namespace {

// Parses "<digits>\r\n" starting at pos. Returns false if incomplete.
bool read_crlf_int(std::string_view buf, size_t& pos, int64_t& out) {
  size_t nl = buf.find("\r\n", pos);
  if (nl == std::string_view::npos) return false;
  int64_t v = 0;
  auto [p, ec] = std::from_chars(buf.data() + pos, buf.data() + nl, v);
  if (ec != std::errc() || p != buf.data() + nl) {
    out = INT64_MIN;  // marks a syntax error
    pos = nl + 2;
    return true;
  }
  out = v;
  pos = nl + 2;
  return true;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

// Parses one RESP array of bulk strings. Returns: 0 = need more bytes,
// 1 = parsed (args filled, consumed set), -1 = protocol error.
int parse_resp_array(std::string_view buf, std::vector<std::string>& args,
                     size_t& consumed) {
  size_t pos = 0;
  if (buf.empty()) return 0;
  if (buf[0] != '*') return -1;
  ++pos;
  int64_t n = 0;
  if (!read_crlf_int(buf, pos, n)) return 0;
  if (n < 0 || n > 1024 * 1024) return -1;
  args.clear();
  for (int64_t i = 0; i < n; ++i) {
    if (pos >= buf.size()) return 0;
    if (buf[pos] != '$') return -1;
    ++pos;
    int64_t len = 0;
    if (!read_crlf_int(buf, pos, len)) return 0;
    if (len < 0 || len > 512 * 1024 * 1024) return -1;
    if (pos + static_cast<size_t>(len) + 2 > buf.size()) return 0;
    args.emplace_back(buf.substr(pos, static_cast<size_t>(len)));
    pos += static_cast<size_t>(len);
    if (buf.substr(pos, 2) != "\r\n") return -1;
    pos += 2;
  }
  consumed = pos;
  return 1;
}

std::string bulk(std::string_view s) {
  std::string out = "$" + std::to_string(s.size()) + "\r\n";
  out.append(s.data(), s.size());
  out += "\r\n";
  return out;
}

}  // namespace

ParseResult RespParser::parse_request(std::string_view buf) {
  ParseResult r;
  std::vector<std::string> args;
  size_t consumed = 0;
  int rc = parse_resp_array(buf, args, consumed);
  if (rc == 0) return r;  // need more data
  if (rc < 0) {
    r.status = Status::Invalid("malformed RESP request");
    return r;
  }
  r.consumed = consumed;
  if (args.empty()) {
    r.status = Status::Invalid("empty RESP command");
    return r;
  }
  const std::string cmd = upper(args[0]);
  Message m;
  if (cmd == "SET" && args.size() >= 3) {
    m = Message::put(std::move(args[1]), std::move(args[2]));
  } else if (cmd == "GET" && args.size() >= 2) {
    m = Message::get(std::move(args[1]));
  } else if (cmd == "DEL" && args.size() >= 2) {
    m = Message::del(std::move(args[1]));
  } else if (cmd == "SCAN" && args.size() >= 3) {
    uint32_t limit = 0;
    if (args.size() >= 4) limit = static_cast<uint32_t>(std::atoi(args[3].c_str()));
    m = Message::scan(std::move(args[1]), std::move(args[2]), limit);
  } else if (cmd == "PING") {
    m.op = Op::kNop;
  } else if (cmd == "STATS") {
    m.op = Op::kStats;
  } else {
    r.status = Status::Invalid("unsupported RESP command: " + cmd);
    return r;
  }
  r.has_message = true;
  r.message = std::move(m);
  return r;
}

std::string RespParser::format_reply(const Message& reply) {
  if (reply.code == Code::kOk) {
    if (reply.op == Op::kReply && !reply.kvs.empty()) {
      // Scan result: flat array of key, value, key, value, ...
      std::string out = "*" + std::to_string(reply.kvs.size() * 2) + "\r\n";
      for (const auto& kv : reply.kvs) {
        out += bulk(kv.key);
        out += bulk(kv.value);
      }
      return out;
    }
    if (!reply.value.empty() || reply.flags != 0) return bulk(reply.value);
    return "+OK\r\n";
  }
  if (reply.code == Code::kNotFound) return "$-1\r\n";
  return "-ERR " + std::string(code_name(reply.code)) + "\r\n";
}

std::string RespParser::format_request(const Message& request) {
  auto cmd = [](std::initializer_list<std::string_view> parts) {
    std::string out = "*" + std::to_string(parts.size()) + "\r\n";
    for (auto p : parts) out += bulk(p);
    return out;
  };
  switch (request.op) {
    case Op::kPut: return cmd({"SET", request.key, request.value});
    case Op::kGet: return cmd({"GET", request.key});
    case Op::kDel: return cmd({"DEL", request.key});
    case Op::kScan:
      return cmd({"SCAN", request.key, request.value, std::to_string(request.limit)});
    case Op::kStats: return cmd({"STATS"});
    default: return cmd({"PING"});
  }
}

ParseResult RespParser::parse_reply(std::string_view buf) {
  ParseResult r;
  if (buf.empty()) return r;
  size_t pos = 0;
  Message m = Message::reply(Code::kOk);
  switch (buf[0]) {
    case '+': {
      size_t nl = buf.find("\r\n");
      if (nl == std::string_view::npos) return r;
      r.consumed = nl + 2;
      break;
    }
    case '-': {
      size_t nl = buf.find("\r\n");
      if (nl == std::string_view::npos) return r;
      m.code = Code::kInternal;
      std::string_view err = buf.substr(1, nl - 1);
      if (err.find("NOT_FOUND") != std::string_view::npos) m.code = Code::kNotFound;
      r.consumed = nl + 2;
      break;
    }
    case ':': {
      size_t nl = buf.find("\r\n");
      if (nl == std::string_view::npos) return r;
      m.value = std::string(buf.substr(1, nl - 1));
      r.consumed = nl + 2;
      break;
    }
    case '$': {
      pos = 1;
      int64_t len = 0;
      if (!read_crlf_int(buf, pos, len)) return r;
      if (len == INT64_MIN) {
        r.status = Status::Invalid("bad RESP bulk length");
        return r;
      }
      if (len < 0) {
        m.code = Code::kNotFound;
        r.consumed = pos;
        break;
      }
      if (pos + static_cast<size_t>(len) + 2 > buf.size()) return r;
      m.value = std::string(buf.substr(pos, static_cast<size_t>(len)));
      r.consumed = pos + static_cast<size_t>(len) + 2;
      break;
    }
    case '*': {
      std::vector<std::string> parts;
      size_t consumed = 0;
      int rc = parse_resp_array(buf, parts, consumed);
      if (rc == 0) return r;
      if (rc < 0) {
        r.status = Status::Invalid("malformed RESP array reply");
        return r;
      }
      for (size_t i = 0; i + 1 < parts.size(); i += 2) {
        m.kvs.push_back(KV{std::move(parts[i]), std::move(parts[i + 1]), 0});
      }
      r.consumed = consumed;
      break;
    }
    default:
      r.status = Status::Invalid("bad RESP reply type byte");
      return r;
  }
  r.has_message = true;
  r.message = std::move(m);
  return r;
}

// ------------------------- SSDB block protocol ------------------------------

namespace {

// Reads one ssdb token "<len>\n<data>\n" at pos. Returns 0 = incomplete,
// 1 = token, 2 = end-of-request (empty line), -1 = error.
int ssdb_token(std::string_view buf, size_t& pos, std::string& out) {
  if (pos >= buf.size()) return 0;
  size_t nl = buf.find('\n', pos);
  if (nl == std::string_view::npos) return 0;
  if (nl == pos || (nl == pos + 1 && buf[pos] == '\r')) {
    pos = nl + 1;
    return 2;  // blank line terminates the request
  }
  int64_t len = 0;
  auto end = buf[nl - 1] == '\r' ? nl - 1 : nl;
  auto [p, ec] = std::from_chars(buf.data() + pos, buf.data() + end, len);
  if (ec != std::errc() || p != buf.data() + end || len < 0) return -1;
  size_t data_start = nl + 1;
  if (data_start + static_cast<size_t>(len) + 1 > buf.size()) return 0;
  out.assign(buf.substr(data_start, static_cast<size_t>(len)));
  if (buf[data_start + static_cast<size_t>(len)] != '\n') return -1;
  pos = data_start + static_cast<size_t>(len) + 1;
  return 1;
}

// 0 = incomplete, 1 = ok, -1 = error.
int ssdb_block(std::string_view buf, std::vector<std::string>& parts, size_t& consumed) {
  size_t pos = 0;
  parts.clear();
  while (true) {
    std::string tok;
    int rc = ssdb_token(buf, pos, tok);
    if (rc == 0) return 0;
    if (rc < 0) return -1;
    if (rc == 2) {
      consumed = pos;
      return 1;
    }
    parts.push_back(std::move(tok));
  }
}

std::string ssdb_tok(std::string_view s) {
  std::string out = std::to_string(s.size());
  out += '\n';
  out.append(s.data(), s.size());
  out += '\n';
  return out;
}

}  // namespace

ParseResult SsdbParser::parse_request(std::string_view buf) {
  ParseResult r;
  std::vector<std::string> parts;
  size_t consumed = 0;
  int rc = ssdb_block(buf, parts, consumed);
  if (rc == 0) return r;
  if (rc < 0) {
    r.status = Status::Invalid("malformed ssdb request");
    return r;
  }
  r.consumed = consumed;
  if (parts.empty()) {
    r.status = Status::Invalid("empty ssdb request");
    return r;
  }
  const std::string cmd = parts[0];
  Message m;
  if (cmd == "set" && parts.size() >= 3) {
    m = Message::put(std::move(parts[1]), std::move(parts[2]));
  } else if (cmd == "get" && parts.size() >= 2) {
    m = Message::get(std::move(parts[1]));
  } else if (cmd == "del" && parts.size() >= 2) {
    m = Message::del(std::move(parts[1]));
  } else if (cmd == "scan" && parts.size() >= 4) {
    m = Message::scan(std::move(parts[1]), std::move(parts[2]),
                      static_cast<uint32_t>(std::atoi(parts[3].c_str())));
  } else if (cmd == "ping") {
    m.op = Op::kNop;
  } else if (cmd == "stats") {
    m.op = Op::kStats;
  } else {
    r.status = Status::Invalid("unsupported ssdb command: " + cmd);
    return r;
  }
  r.has_message = true;
  r.message = std::move(m);
  return r;
}

std::string SsdbParser::format_reply(const Message& reply) {
  std::string out;
  if (reply.code == Code::kOk) {
    out += ssdb_tok("ok");
    if (!reply.kvs.empty()) {
      for (const auto& kv : reply.kvs) {
        out += ssdb_tok(kv.key);
        out += ssdb_tok(kv.value);
      }
    } else if (!reply.value.empty()) {
      out += ssdb_tok(reply.value);
    }
  } else if (reply.code == Code::kNotFound) {
    out += ssdb_tok("not_found");
  } else {
    out += ssdb_tok("error");
    out += ssdb_tok(code_name(reply.code));
  }
  out += '\n';
  return out;
}

std::string SsdbParser::format_request(const Message& request) {
  std::string out;
  switch (request.op) {
    case Op::kPut:
      out += ssdb_tok("set");
      out += ssdb_tok(request.key);
      out += ssdb_tok(request.value);
      break;
    case Op::kGet:
      out += ssdb_tok("get");
      out += ssdb_tok(request.key);
      break;
    case Op::kDel:
      out += ssdb_tok("del");
      out += ssdb_tok(request.key);
      break;
    case Op::kScan:
      out += ssdb_tok("scan");
      out += ssdb_tok(request.key);
      out += ssdb_tok(request.value);
      out += ssdb_tok(std::to_string(request.limit));
      break;
    case Op::kStats:
      out += ssdb_tok("stats");
      break;
    default:
      out += ssdb_tok("ping");
  }
  out += '\n';
  return out;
}

ParseResult SsdbParser::parse_reply(std::string_view buf) {
  ParseResult r;
  std::vector<std::string> parts;
  size_t consumed = 0;
  int rc = ssdb_block(buf, parts, consumed);
  if (rc == 0) return r;
  if (rc < 0) {
    r.status = Status::Invalid("malformed ssdb reply");
    return r;
  }
  r.consumed = consumed;
  if (parts.empty()) {
    r.status = Status::Invalid("empty ssdb reply");
    return r;
  }
  Message m = Message::reply(Code::kOk);
  if (parts[0] == "ok") {
    if (parts.size() == 2) {
      m.value = std::move(parts[1]);
    } else if (parts.size() > 2) {
      for (size_t i = 1; i + 1 < parts.size(); i += 2) {
        m.kvs.push_back(KV{std::move(parts[i]), std::move(parts[i + 1]), 0});
      }
    }
  } else if (parts[0] == "not_found") {
    m.code = Code::kNotFound;
  } else {
    m.code = Code::kInternal;
  }
  r.has_message = true;
  r.message = std::move(m);
  return r;
}

std::unique_ptr<ProtocolParser> make_parser(const std::string& name) {
  if (name == "resp" || name == "redis") return std::make_unique<RespParser>();
  if (name == "ssdb") return std::make_unique<SsdbParser>();
  return nullptr;
}

}  // namespace bespokv
