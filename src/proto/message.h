// The bespoKV wire message. One struct covers client requests, datalet I/O,
// chain-replication internals, shared-log / DLM / coordinator traffic, and
// recovery. The binary codec (codec.h) is the "Google Protocol Buffers"
// substitute for new datalets; text_protocol.h carries the Redis/SSDB-style
// parsers used to port existing single-server stores.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace_context.h"

namespace bespokv {

enum class Op : uint16_t {
  kNop = 0,

  // Client / datalet data path (Table II).
  kPut,
  kGet,
  kDel,
  kScan,          // range query: key=start, value=end, limit=max results
  kCreateTable,
  kDeleteTable,

  // Generic RPC response.
  kReply,

  // Chain replication (MS+SC, Fig. 3).
  kChainPut,      // head->mid->tail forwarding; seq = chain sequence number
  kChainAck,      // tail->...->head acknowledgment

  // Asynchronous propagation (MS+EC, Fig. 15a). kvs carries a batch.
  kPropagate,

  // Shared log (AA+EC, Fig. 15c; Table III Shared Log API).
  kLogCreate,
  kLogAppend,     // returns assigned sequence number in `seq`
  kLogRead,       // seq = from; limit = max entries; returns kvs + seqs
  kLogTail,       // returns current tail sequence in `seq`
  kLogTrim,

  // Distributed lock manager (AA+SC; Table III DLM API).
  kLock,          // key = lock name; flags bit0: 1=write lock, 0=read lock
  kUnlock,

  // Coordinator (Table III Coordinator API).
  kHeartbeat,     // controlet -> coordinator liveness; key = node name
  kGetShardMap,   // client/controlet fetches topology; returns encoded map
  kRegisterNode,
  kLeaderElect,
  kReportFailure,

  // Failover & recovery (§IV-A failover; §C).
  kSnapshotReq,   // new controlet asks a surviving datalet for its contents
  kSnapshotChunk,
  kRecoveryDone,
  kReconfigure,   // coordinator -> controlet: new chain/replica layout

  // Live transitions (§V).
  kStartTransition,
  kTransitionPull,   // new controlet pulls pending state from old one
  kTransitionDone,
  kHandoff,          // old controlet forwards a request to the new one

  // Cross-app lazy synchronization for polyglot persistence (§IV-D).
  kSyncApply,

  // Observability admin surface (src/obs). Answered at the fabric layer, so
  // any node can be scraped. Appended last: Op values are wire-stable.
  kStats,         // returns metrics-registry snapshot JSON in `value`
  kTraceDump,     // seq = trace-id filter (0 = all); returns spans in `strs`

  // Elastic shard migration (live range split/rebalance). Appended last:
  // Op values are wire-stable.
  kMigrateShard,  // admin -> coordinator: value = JSON migration request
  kMigrateStart,  // coordinator -> old-shard replicas: open dual-write window
  kMigrateChunk,  // old master -> dest replicas: background snapshot batch
  kMigratePut,    // old owner -> dest replicas: dual-write forward of one op
  kMigrateReady,  // old master -> coordinator: copy done, safe to cut over
  kMigrateFinish, // coordinator -> old-shard replicas: drop the moved range
  kMigrateAbort,  // coordinator -> old-shard replicas: cancel, keep ownership
};

const char* op_name(Op op);

struct KV {
  std::string key;
  std::string value;
  uint64_t seq = 0;  // version / log sequence attached to this pair

  bool operator==(const KV& o) const {
    return key == o.key && value == o.value && seq == o.seq;
  }
};

// Per-request consistency levels (§IV-C). kDefault follows the deployment's
// configured model; kEventual lets a GET hit any replica under MS+SC.
enum class ConsistencyLevel : uint8_t { kDefault = 0, kStrong = 1, kEventual = 2 };

struct Message {
  Op op = Op::kNop;
  Code code = Code::kOk;          // meaningful on kReply
  uint32_t flags = 0;             // op-specific bits (lock mode, recovery, ...)
  ConsistencyLevel consistency = ConsistencyLevel::kDefault;

  std::string table;              // Table II table name ("" = default table)
  std::string key;
  std::string value;

  uint64_t seq = 0;               // version / chain seq / log seq
  uint64_t epoch = 0;             // shard-map epoch for fencing stale traffic
  uint32_t shard = 0;             // shard id
  uint32_t limit = 0;             // scan / log-read batch bound
  uint32_t ttl_ms = 0;            // kPut: relative time-to-live (0 = no TTL)

  std::vector<KV> kvs;            // scan results, propagation batches, chunks
  std::vector<std::string> strs;  // membership lists, chain orders, etc.

  // Trace context riding alongside the payload. Not encoded by the message
  // codec (the envelope carries it as an optional tail field for TCP; the
  // in-process fabrics pass the struct through) and excluded from
  // operator== — it is delivery metadata, not payload.
  TraceContext trace;

  // Idempotency token for writes (0 = none). Like `trace`, delivery
  // metadata: carried as an envelope tail field on TCP, passed through by
  // the in-process fabrics, excluded from the codec and operator==.
  // Controlets keep a dedup window keyed on it so a retried PUT/DEL with
  // the same token is applied exactly once per controlet (client.h).
  uint64_t token = 0;

  bool operator==(const Message& o) const;

  // Convenience constructors for the hot paths.
  static Message put(std::string key, std::string value, std::string table = "");
  static Message put_ttl(std::string key, std::string value, uint32_t ttl_ms,
                         std::string table = "");
  static Message get(std::string key, std::string table = "");
  static Message del(std::string key, std::string table = "");
  static Message scan(std::string start, std::string end, uint32_t limit,
                      std::string table = "");
  static Message reply(Code code, std::string value = "");

  std::string debug_string() const;
};

// Flag bits.
inline constexpr uint32_t kFlagWriteLock = 1u << 0;   // kLock: write vs read
inline constexpr uint32_t kFlagRecovery = 1u << 1;    // replay during recovery
inline constexpr uint32_t kFlagTransition = 1u << 2;  // forwarded by old controlet
inline constexpr uint32_t kFlagNoPropagate = 1u << 3; // apply locally only
inline constexpr uint32_t kFlagDelete = 1u << 4;      // replicated op is a Del
inline constexpr uint32_t kFlagCopier = 1u << 5;      // kMigrateStart: this
                                                      // replica runs the
                                                      // background copier

}  // namespace bespokv
