// Binary wire codec — the framework's Protocol-Buffers substitute.
//
// Layout: tag-free positional encoding with varints for integers and
// length-prefixed bytes for strings, framed by the transport with a 4-byte
// little-endian length. A CRC32C trailer guards every encoded message.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/byte_buffer.h"
#include "src/common/status.h"
#include "src/proto/message.h"

namespace bespokv {

// Appends to an existing buffer — callers serialize straight into a
// connection's write buffer (pass &ByteBuffer::backing() or a ByteBuffer)
// instead of building intermediate strings.
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}
  explicit Encoder(ByteBuffer* out) : out_(&out->backing()) {}

  void put_varint(uint64_t v);
  void put_u8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void put_bytes(std::string_view s);
  void put_u32_le(uint32_t v);

  // Length-prefix backpatching: mark() the write position, reserve a fixed
  // slot with put_u32_le(0), encode the body, then patch the slot once the
  // body size is known — single-pass framing with no temporary payload.
  size_t mark() const { return out_->size(); }
  void patch_u32_le(size_t pos, uint32_t v);

  std::string* out() { return out_; }

 private:
  std::string* out_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  Result<uint64_t> varint();
  Result<uint8_t> u8();
  Result<std::string> bytes();
  Result<uint32_t> u32_le();

  bool exhausted() const { return pos_ == in_.size(); }
  size_t remaining() const { return in_.size() - pos_; }
  size_t consumed() const { return pos_; }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

// Serializes `m` (with CRC trailer) and appends to `out`.
void encode_message(const Message& m, std::string* out);

// Rough serialized size of `m` (within a few varint bytes) — lets callers
// reserve() once before encoding instead of growing incrementally.
size_t encoded_message_size_hint(const Message& m);

// Parses one encoded message (as produced by encode_message) from the head
// of `buf`. The encoding is self-delimiting — positional fields followed by
// a 4-byte CRC32C over them — so `consumed` (when non-null) reports how many
// bytes the message occupied, letting callers append optional tail fields
// (e.g. the envelope's trace context) after it. With consumed == nullptr the
// message must span the whole buffer; trailing bytes are a corruption error,
// preserving the strict historical contract.
Result<Message> decode_message(std::string_view buf, size_t* consumed = nullptr);

}  // namespace bespokv
