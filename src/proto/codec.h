// Binary wire codec — the framework's Protocol-Buffers substitute.
//
// Layout: tag-free positional encoding with varints for integers and
// length-prefixed bytes for strings, framed by the transport with a 4-byte
// little-endian length. A CRC32C trailer guards every encoded message.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/proto/message.h"

namespace bespokv {

class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void put_varint(uint64_t v);
  void put_u8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void put_bytes(std::string_view s);

  std::string* out() { return out_; }

 private:
  std::string* out_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  Result<uint64_t> varint();
  Result<uint8_t> u8();
  Result<std::string> bytes();

  bool exhausted() const { return pos_ == in_.size(); }
  size_t remaining() const { return in_.size() - pos_; }

 private:
  std::string_view in_;
  size_t pos_ = 0;
};

// Serializes `m` (with CRC trailer) and appends to `out`.
void encode_message(const Message& m, std::string* out);

// Parses one full encoded message (as produced by encode_message).
Result<Message> decode_message(std::string_view buf);

}  // namespace bespokv
