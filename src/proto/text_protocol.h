// Text protocol parsers for ported single-server stores (§III-A option 2).
//
// bespoKV can host existing datalets that speak their own wire protocols.
// RespParser implements the Redis RESP subset used by tRedis; SsdbParser
// implements the SSDB block protocol used by tSSDB. Both translate between
// raw bytes and the internal Message, so controlets stay protocol-agnostic.
#pragma once

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/proto/message.h"

namespace bespokv {

// Incremental parser: feed bytes, pull complete messages. `consumed` reports
// how many input bytes were used; a kInvalid/kCorruption status poisons the
// connection. Returns kOk with has_message=false when more bytes are needed.
struct ParseResult {
  Status status;
  bool has_message = false;
  Message message;
  size_t consumed = 0;
};

class ProtocolParser {
 public:
  virtual ~ProtocolParser() = default;

  virtual const char* name() const = 0;

  // Server side: bytes -> request, reply -> bytes.
  virtual ParseResult parse_request(std::string_view buf) = 0;
  virtual std::string format_reply(const Message& reply) = 0;

  // Client side: request -> bytes, bytes -> reply.
  virtual std::string format_request(const Message& request) = 0;
  virtual ParseResult parse_reply(std::string_view buf) = 0;
};

// Redis RESP: "*<n>\r\n$<len>\r\n<arg>\r\n..." requests; "+OK", "$<n>", "-ERR",
// ":<int>" and "*<n>" replies. Commands understood: SET/GET/DEL/SCAN/PING.
class RespParser : public ProtocolParser {
 public:
  const char* name() const override { return "resp"; }
  ParseResult parse_request(std::string_view buf) override;
  std::string format_reply(const Message& reply) override;
  std::string format_request(const Message& request) override;
  ParseResult parse_reply(std::string_view buf) override;
};

// SSDB block protocol: each token is "<len>\n<data>\n"; a request/response
// ends with an empty line. Responses lead with a status token ("ok",
// "not_found", "error").
class SsdbParser : public ProtocolParser {
 public:
  const char* name() const override { return "ssdb"; }
  ParseResult parse_request(std::string_view buf) override;
  std::string format_reply(const Message& reply) override;
  std::string format_request(const Message& request) override;
  ParseResult parse_reply(std::string_view buf) override;
};

std::unique_ptr<ProtocolParser> make_parser(const std::string& name);

}  // namespace bespokv
