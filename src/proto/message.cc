#include "src/proto/message.h"

#include <sstream>

namespace bespokv {

const char* op_name(Op op) {
  switch (op) {
    case Op::kNop: return "NOP";
    case Op::kPut: return "PUT";
    case Op::kGet: return "GET";
    case Op::kDel: return "DEL";
    case Op::kScan: return "SCAN";
    case Op::kCreateTable: return "CREATE_TABLE";
    case Op::kDeleteTable: return "DELETE_TABLE";
    case Op::kReply: return "REPLY";
    case Op::kChainPut: return "CHAIN_PUT";
    case Op::kChainAck: return "CHAIN_ACK";
    case Op::kPropagate: return "PROPAGATE";
    case Op::kLogCreate: return "LOG_CREATE";
    case Op::kLogAppend: return "LOG_APPEND";
    case Op::kLogRead: return "LOG_READ";
    case Op::kLogTail: return "LOG_TAIL";
    case Op::kLogTrim: return "LOG_TRIM";
    case Op::kLock: return "LOCK";
    case Op::kUnlock: return "UNLOCK";
    case Op::kHeartbeat: return "HEARTBEAT";
    case Op::kGetShardMap: return "GET_SHARD_MAP";
    case Op::kRegisterNode: return "REGISTER_NODE";
    case Op::kLeaderElect: return "LEADER_ELECT";
    case Op::kReportFailure: return "REPORT_FAILURE";
    case Op::kSnapshotReq: return "SNAPSHOT_REQ";
    case Op::kSnapshotChunk: return "SNAPSHOT_CHUNK";
    case Op::kRecoveryDone: return "RECOVERY_DONE";
    case Op::kReconfigure: return "RECONFIGURE";
    case Op::kStartTransition: return "START_TRANSITION";
    case Op::kTransitionPull: return "TRANSITION_PULL";
    case Op::kTransitionDone: return "TRANSITION_DONE";
    case Op::kHandoff: return "HANDOFF";
    case Op::kSyncApply: return "SYNC_APPLY";
    case Op::kStats: return "STATS";
    case Op::kTraceDump: return "TRACE_DUMP";
    case Op::kMigrateShard: return "MIGRATE_SHARD";
    case Op::kMigrateStart: return "MIGRATE_START";
    case Op::kMigrateChunk: return "MIGRATE_CHUNK";
    case Op::kMigratePut: return "MIGRATE_PUT";
    case Op::kMigrateReady: return "MIGRATE_READY";
    case Op::kMigrateFinish: return "MIGRATE_FINISH";
    case Op::kMigrateAbort: return "MIGRATE_ABORT";
  }
  return "UNKNOWN";
}

bool Message::operator==(const Message& o) const {
  return op == o.op && code == o.code && flags == o.flags &&
         consistency == o.consistency && table == o.table && key == o.key &&
         value == o.value && seq == o.seq && epoch == o.epoch &&
         shard == o.shard && limit == o.limit && ttl_ms == o.ttl_ms &&
         kvs == o.kvs && strs == o.strs;
}

Message Message::put(std::string key, std::string value, std::string table) {
  Message m;
  m.op = Op::kPut;
  m.key = std::move(key);
  m.value = std::move(value);
  m.table = std::move(table);
  return m;
}

Message Message::put_ttl(std::string key, std::string value, uint32_t ttl_ms,
                         std::string table) {
  Message m = put(std::move(key), std::move(value), std::move(table));
  m.ttl_ms = ttl_ms;
  return m;
}

Message Message::get(std::string key, std::string table) {
  Message m;
  m.op = Op::kGet;
  m.key = std::move(key);
  m.table = std::move(table);
  return m;
}

Message Message::del(std::string key, std::string table) {
  Message m;
  m.op = Op::kDel;
  m.key = std::move(key);
  m.table = std::move(table);
  return m;
}

Message Message::scan(std::string start, std::string end, uint32_t limit,
                      std::string table) {
  Message m;
  m.op = Op::kScan;
  m.key = std::move(start);
  m.value = std::move(end);
  m.limit = limit;
  m.table = std::move(table);
  return m;
}

Message Message::reply(Code code, std::string value) {
  Message m;
  m.op = Op::kReply;
  m.code = code;
  m.value = std::move(value);
  return m;
}

std::string Message::debug_string() const {
  std::ostringstream ss;
  ss << op_name(op) << "{code=" << code_name(code) << " key=" << key
     << " val.len=" << value.size() << " seq=" << seq << " epoch=" << epoch
     << " shard=" << shard << " kvs=" << kvs.size() << "}";
  return ss.str();
}

}  // namespace bespokv
