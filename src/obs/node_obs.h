// Per-node observability bundle, owned by the node's Runtime (runtime.h
// exposes `Runtime::obs()`): one metrics registry + one tracer per fabric
// node, so every component on a node shares the same stats namespace and
// span buffer regardless of fabric.
#pragma once

#include <string>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace bespokv::obs {

class NodeObs {
 public:
  explicit NodeObs(std::string node) : node_(std::move(node)), tracer_(node_) {}

  const std::string& node() const { return node_; }
  MetricsRegistry& metrics() { return metrics_; }
  Tracer& tracer() { return tracer_; }

 private:
  std::string node_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

}  // namespace bespokv::obs
