#include "src/obs/trace.h"

#include <atomic>
#include <charconv>
#include <cinttypes>
#include <cstdio>

#include "src/common/hash.h"

namespace bespokv::obs {

namespace {
std::atomic<bool> g_tracing{false};
thread_local TraceContext t_current{};
thread_local uint32_t t_reactor = 0;

bool parse_u64_tok(std::string_view text, size_t* pos, uint64_t* out) {
  while (*pos < text.size() && text[*pos] == ' ') ++*pos;
  const char* begin = text.data() + *pos;
  const char* end = text.data() + text.size();
  auto [p, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || p == begin) return false;
  *pos += static_cast<size_t>(p - begin);
  return true;
}

bool parse_word(std::string_view text, size_t* pos, std::string* out) {
  while (*pos < text.size() && text[*pos] == ' ') ++*pos;
  const size_t start = *pos;
  while (*pos < text.size() && text[*pos] != ' ') ++*pos;
  if (*pos == start) return false;
  out->assign(text.substr(start, *pos - start));
  return true;
}
}  // namespace

void set_tracing(bool on) { g_tracing.store(on, std::memory_order_relaxed); }
bool tracing_enabled() { return g_tracing.load(std::memory_order_relaxed); }

void set_reactor_tag(uint32_t idx) { t_reactor = idx; }
uint32_t reactor_tag() { return t_reactor; }

const TraceContext& Tracer::current() const { return t_current; }
void Tracer::set_current(const TraceContext& ctx) { t_current = ctx; }

std::string Span::encode() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %u ",
                trace_id, span_id, parent_span_id, start_us, end_us,
                static_cast<unsigned>(hop));
  std::string out = buf;
  out += name;
  out += ' ';
  out += node;
  out += ' ';
  out += std::to_string(reactor);
  return out;
}

bool Span::decode(std::string_view text, Span* out) {
  Span s;
  size_t pos = 0;
  uint64_t hop = 0;
  if (!parse_u64_tok(text, &pos, &s.trace_id) ||
      !parse_u64_tok(text, &pos, &s.span_id) ||
      !parse_u64_tok(text, &pos, &s.parent_span_id) ||
      !parse_u64_tok(text, &pos, &s.start_us) ||
      !parse_u64_tok(text, &pos, &s.end_us) ||
      !parse_u64_tok(text, &pos, &hop) || hop > 255 ||
      !parse_word(text, &pos, &s.name) || !parse_word(text, &pos, &s.node)) {
    return false;
  }
  s.hop = static_cast<uint8_t>(hop);
  // Trailing reactor tag: absent in pre-reactor dumps, defaults to 0.
  uint64_t reactor = 0;
  if (parse_u64_tok(text, &pos, &reactor)) {
    s.reactor = static_cast<uint32_t>(reactor);
  }
  *out = s;
  return true;
}

Tracer::Tracer(std::string node)
    : node_(std::move(node)), salt_(mix64(fnv1a64(node_) | 1)) {}

uint64_t Tracer::new_span_id() {
  // splitmix-style stream over a node-unique salt: unique per node, cheap,
  // and deterministic under the sim (no wall-clock or global RNG involved).
  uint64_t id = mix64(salt_ + (seq_.fetch_add(1, std::memory_order_relaxed) + 1) *
                                  0x9e3779b97f4a7c15ULL);
  return id ? id : 1;
}

uint64_t Tracer::new_trace_id() { return new_span_id(); }

void Tracer::record(Span s) {
  std::lock_guard<std::mutex> lk(mu_);
  if (ring_.size() >= cap_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(s));
  ++recorded_;
}

std::vector<Span> Tracer::spans(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  for (const auto& s : ring_) {
    if (trace_id == 0 || s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  ring_.clear();
}

uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return recorded_;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  return dropped_;
}

void Tracer::set_capacity(size_t cap) {
  std::lock_guard<std::mutex> lk(mu_);
  cap_ = cap == 0 ? 1 : cap;
  while (ring_.size() > cap_) {
    ring_.pop_front();
    ++dropped_;
  }
}

}  // namespace bespokv::obs
