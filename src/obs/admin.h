// Fabric-level observability plumbing: the kStats/kTraceDump admin surface,
// the per-dispatch server-span guard, outgoing context stamping, and the
// periodic snapshot exporter. All three fabrics call these at their single
// choke points (deliver + call/send), so every node — controlet, datalet,
// coordinator, DLM, shared log — is scrapable and traceable with no
// per-service code.
#pragma once

#include <functional>
#include <memory>

#include "src/net/runtime.h"
#include "src/obs/node_obs.h"

namespace bespokv::obs {

// Answers observability admin ops addressed to any node:
//   kStats     → reply.value = metrics snapshot JSON
//   kTraceDump → reply.strs = encoded spans (req.seq = trace-id filter, 0 =
//                all); reply.seq = spans dropped from the ring so far;
//                req.flags bit0 clears the buffer after dumping.
// Returns true iff `req` was an admin op (and `reply` was invoked).
bool handle_admin(Runtime& rt, const Message& req, const Replier& reply);

// Stamps an outgoing message with a child context of the node's current one
// (same trace, parent = current span, hop+1). No-op if the message is
// already traced or nothing is being traced — the common untraced case costs
// two branches.
void stamp_outgoing(Runtime& rt, Message& msg);

// Scopes the server-side span of one incoming request. If the request
// carries a trace context this opens a span named after the op, installs the
// child context as the node's current context for the synchronous part of
// the handler, and closes the span when the wrapped replier fires (i.e. at
// ack time, so chain spans nest: tail closes before mid closes before head).
// If the handler never replies (one-way messages that drop the no-op
// replier), the destructor closes the span at handler exit instead.
class DispatchSpan {
 public:
  DispatchSpan(Runtime& rt, const Message& req);
  ~DispatchSpan();

  DispatchSpan(const DispatchSpan&) = delete;
  DispatchSpan& operator=(const DispatchSpan&) = delete;

  // Wraps the replier so the span ends when the reply is sent. Pass-through
  // when the request is untraced.
  Replier wrap(Replier reply);

  bool active() const { return st_ != nullptr; }

 private:
  struct State {
    Runtime* rt;
    Tracer* tracer;
    Span span;
    bool done = false;
  };
  std::shared_ptr<State> st_;
  Tracer* tracer_ = nullptr;
  TraceContext prev_{};
};

// Emits a child span of the node's current context covering [start_us, now].
// Used by controlets for replication-stage spans (chain.forward,
// sharedlog.append, dlm.lock). `ctx` is captured before the async hop since
// the current context is gone by callback time.
void record_stage(Runtime& rt, const TraceContext& ctx, const char* name,
                  uint64_t start_us);

// Periodically snapshots the node's registry on its own thread and hands the
// snapshot to `sink` — the bench-facing exporter.
class StatsExporter {
 public:
  using Sink = std::function<void(const MetricsSnapshot&)>;

  // Must be called from (or posted to) contexts where `rt` outlives the
  // exporter. Restartable after stop().
  void start(Runtime& rt, uint64_t period_us, Sink sink);
  void stop();

 private:
  Runtime* rt_ = nullptr;
  uint64_t timer_ = 0;
};

}  // namespace bespokv::obs
