// Compact per-request trace context, carried across nodes as an optional
// backward-compatible tail field of the RPC envelope (see net/envelope.cc).
// trace_id groups every span of one logical request; span_id names the
// sender's span so the receiver can parent its own spans under it; hop counts
// fabric crossings (client=0) and bounds runaway forwarding loops in traces.
//
// Deliberately dependency-free: proto/message.h embeds one of these in every
// Message so in-process fabrics (Sim/Thread) propagate it for free, while the
// TCP fabric serializes it into the envelope tail.
#pragma once

#include <cstdint>

namespace bespokv {

struct TraceContext {
  uint64_t trace_id = 0;  // 0 = request is not traced
  uint64_t span_id = 0;   // sender's span; parent for spans on the receiver
  uint8_t hop = 0;        // fabric crossings since the root (client = 0)

  bool valid() const { return trace_id != 0; }

  bool operator==(const TraceContext& o) const {
    return trace_id == o.trace_id && span_id == o.span_id && hop == o.hop;
  }
};

}  // namespace bespokv
