// Per-node tracer: span ring buffer + id generation + the node's "current"
// trace context.
//
// Span model (Dapper-style, flattened): every span belongs to one trace_id
// and names its parent span, so a driver holding the spans from all involved
// nodes can rebuild the causal tree of a request — client root → head
// controlet dispatch → chain.forward hop → mid dispatch → ... Timestamps come
// from the owning node's Runtime clock, so trees are coherent under SimFabric
// virtual time and wall-clock TCP alike.
//
// Tracing is sampled at the root: a client only opens a root span when
// set_tracing(true) (tests/benches flip it); untraced requests carry an
// invalid context and cost one branch per hop.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace_context.h"

namespace bespokv::obs {

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  std::string name;             // stage: op name, "chain.forward", ...
  std::string node;             // fabric address that emitted the span
  uint64_t start_us = 0;        // fabric-clock timestamps
  uint64_t end_us = 0;
  uint8_t hop = 0;

  // Space-separated wire form for kTraceDump (addresses and stage names
  // never contain spaces).
  std::string encode() const;
  static bool decode(std::string_view text, Span* out);
};

// Process-wide tracing switch, read by clients when deciding whether to open
// a root span. Off by default so the data path pays only dead branches.
void set_tracing(bool on);
bool tracing_enabled();

class Tracer {
 public:
  explicit Tracer(std::string node);

  // Ids are salted with the node name so concurrently-rooted traces on
  // different clients never collide. trace ids are never 0.
  uint64_t new_trace_id();
  uint64_t new_span_id();

  // The context of the request currently being handled on this node's
  // thread. Installed by the fabric around Service::handle; outgoing
  // call/send stamp child contexts from it. Thread-compatible by the
  // runtime's single-threaded-node contract.
  const TraceContext& current() const { return current_; }
  void set_current(const TraceContext& ctx) { current_ = ctx; }

  void record(Span s);

  // Snapshot of buffered spans, optionally filtered by trace id.
  std::vector<Span> spans(uint64_t trace_id = 0) const;
  void clear();
  uint64_t recorded() const;
  uint64_t dropped() const;
  void set_capacity(size_t cap);

 private:
  std::string node_;
  uint64_t salt_;
  uint64_t seq_ = 0;
  TraceContext current_{};

  // The ring is written on the node thread but dumped/cleared from tests and
  // admin paths; a plain mutex keeps that safe and is uncontended in steady
  // state.
  mutable std::mutex mu_;
  std::deque<Span> ring_;
  size_t cap_ = 4096;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace bespokv::obs
