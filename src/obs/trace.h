// Per-node tracer: span ring buffer + id generation + the node's "current"
// trace context.
//
// Span model (Dapper-style, flattened): every span belongs to one trace_id
// and names its parent span, so a driver holding the spans from all involved
// nodes can rebuild the causal tree of a request — client root → head
// controlet dispatch → chain.forward hop → mid dispatch → ... Timestamps come
// from the owning node's Runtime clock, so trees are coherent under SimFabric
// virtual time and wall-clock TCP alike.
//
// Tracing is sampled at the root: a client only opens a root span when
// set_tracing(true) (tests/benches flip it); untraced requests carry an
// invalid context and cost one branch per hop.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/trace_context.h"

namespace bespokv::obs {

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root
  std::string name;             // stage: op name, "chain.forward", ...
  std::string node;             // fabric address that emitted the span
  uint64_t start_us = 0;        // fabric-clock timestamps
  uint64_t end_us = 0;
  uint8_t hop = 0;
  // Which reactor (TCP) / service core (sim) of the node handled the work.
  // 0 on single-threaded fabrics and for externally-emitted spans.
  uint32_t reactor = 0;

  // Space-separated wire form for kTraceDump (addresses and stage names
  // never contain spaces). The reactor tag is a trailing token; decode
  // accepts its absence, so pre-reactor span dumps still parse.
  std::string encode() const;
  static bool decode(std::string_view text, Span* out);
};

// The reactor/core index the calling thread is currently executing for.
// Set by the sharded fabrics around delivery; 0 everywhere else. Spans
// emitted during a dispatch pick this up as their `reactor` tag.
void set_reactor_tag(uint32_t idx);
uint32_t reactor_tag();

// Process-wide tracing switch, read by clients when deciding whether to open
// a root span. Off by default so the data path pays only dead branches.
void set_tracing(bool on);
bool tracing_enabled();

class Tracer {
 public:
  explicit Tracer(std::string node);

  // Ids are salted with the node name so concurrently-rooted traces on
  // different clients never collide. trace ids are never 0.
  uint64_t new_trace_id();
  uint64_t new_span_id();

  // The context of the request currently being handled on the *calling
  // thread*. Installed by the fabric around Service::handle; outgoing
  // call/send stamp child contexts from it. Storage is thread-local (not a
  // member): install/restore scopes are synchronous within one dispatch, so
  // one slot per thread is equivalent on the single-threaded fabrics, and on
  // the multi-reactor TCP fabric it keeps concurrent dispatches on different
  // reactors of the same node from racing on a shared member.
  const TraceContext& current() const;
  void set_current(const TraceContext& ctx);

  void record(Span s);

  // Snapshot of buffered spans, optionally filtered by trace id.
  std::vector<Span> spans(uint64_t trace_id = 0) const;
  void clear();
  uint64_t recorded() const;
  uint64_t dropped() const;
  void set_capacity(size_t cap);

 private:
  std::string node_;
  uint64_t salt_;
  // Atomic: span ids are minted from every reactor thread of a node.
  std::atomic<uint64_t> seq_{0};

  // The ring is written on the node thread but dumped/cleared from tests and
  // admin paths; a plain mutex keeps that safe and is uncontended in steady
  // state.
  mutable std::mutex mu_;
  std::deque<Span> ring_;
  size_t cap_ = 4096;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace bespokv::obs
