#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/json.h"

namespace bespokv::obs {

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] += v;
  for (const auto& [name, h] : other.timers) timers[name].merge(h);
}

uint64_t MetricsSnapshot::counter(const std::string& name, uint64_t dflt) const {
  auto it = counters.find(name);
  return it == counters.end() ? dflt : it->second;
}

int64_t MetricsSnapshot::gauge(const std::string& name, int64_t dflt) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? dflt : it->second;
}

std::string MetricsSnapshot::to_json() const {
  Json root = Json::object();
  Json jc = Json::object();
  for (const auto& [name, v] : counters) {
    jc.set(name, Json::number(static_cast<double>(v)));
  }
  root.set("counters", std::move(jc));
  Json jg = Json::object();
  for (const auto& [name, v] : gauges) {
    jg.set(name, Json::number(static_cast<double>(v)));
  }
  root.set("gauges", std::move(jg));
  Json jt = Json::object();
  for (const auto& [name, h] : timers) {
    Json t = Json::object();
    t.set("count", Json::number(static_cast<double>(h.count())));
    t.set("mean", Json::number(h.mean()));
    t.set("min", Json::number(static_cast<double>(h.min())));
    t.set("max", Json::number(static_cast<double>(h.max())));
    t.set("p50", Json::number(static_cast<double>(h.percentile(0.50))));
    t.set("p99", Json::number(static_cast<double>(h.percentile(0.99))));
    // Exact bucket-level payload; the summary numbers above are for humans.
    t.set("buckets", Json::string(h.encode()));
    jt.set(name, std::move(t));
  }
  root.set("timers", std::move(jt));
  return root.dump();
}

Result<MetricsSnapshot> MetricsSnapshot::from_json(std::string_view text) {
  auto parsed = Json::parse(text);
  if (!parsed.ok()) return parsed.status();
  const Json& root = parsed.value();
  if (!root.is_object()) return Status::Corruption("stats: not an object");
  MetricsSnapshot snap;
  for (const auto& [name, v] : root.get("counters").items()) {
    snap.counters[name] = static_cast<uint64_t>(v.as_number());
  }
  for (const auto& [name, v] : root.get("gauges").items()) {
    snap.gauges[name] = v.as_int();
  }
  for (const auto& [name, t] : root.get("timers").items()) {
    Histogram h;
    if (!Histogram::decode(t.get("buckets").as_string(), &h)) {
      return Status::Corruption("stats: bad timer buckets for " + name);
    }
    snap.timers[name] = h;
  }
  return snap;
}

std::string MetricsSnapshot::to_csv() const {
  std::string out = "kind,name,value\n";
  char buf[160];
  for (const auto& [name, v] : counters) {
    std::snprintf(buf, sizeof(buf), "counter,%s,%" PRIu64 "\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, v] : gauges) {
    std::snprintf(buf, sizeof(buf), "gauge,%s,%" PRId64 "\n", name.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : timers) {
    std::snprintf(buf, sizeof(buf), "timer,%s.count,%" PRIu64 "\n", name.c_str(), h.count());
    out += buf;
    std::snprintf(buf, sizeof(buf), "timer,%s.mean,%.2f\n", name.c_str(), h.mean());
    out += buf;
    std::snprintf(buf, sizeof(buf), "timer,%s.p50,%" PRIu64 "\n", name.c_str(), h.percentile(0.50));
    out += buf;
    std::snprintf(buf, sizeof(buf), "timer,%s.p95,%" PRIu64 "\n", name.c_str(), h.percentile(0.95));
    out += buf;
    std::snprintf(buf, sizeof(buf), "timer,%s.p99,%" PRIu64 "\n", name.c_str(), h.percentile(0.99));
    out += buf;
    std::snprintf(buf, sizeof(buf), "timer,%s.max,%" PRIu64 "\n", name.c_str(), h.max());
    out += buf;
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : timers_) snap.timers[name] = *h;
  return snap;
}

}  // namespace bespokv::obs
