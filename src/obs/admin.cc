#include "src/obs/admin.h"

namespace bespokv::obs {

bool handle_admin(Runtime& rt, const Message& req, const Replier& reply) {
  switch (req.op) {
    case Op::kStats: {
      reply(Message::reply(Code::kOk, rt.obs().metrics().snapshot().to_json()));
      return true;
    }
    case Op::kTraceDump: {
      Tracer& tracer = rt.obs().tracer();
      Message rep = Message::reply(Code::kOk);
      for (const auto& s : tracer.spans(req.seq)) rep.strs.push_back(s.encode());
      rep.seq = tracer.dropped();
      if (req.flags & 1) tracer.clear();
      reply(std::move(rep));
      return true;
    }
    default:
      return false;
  }
}

void stamp_outgoing(Runtime& rt, Message& msg) {
  if (msg.trace.valid()) return;
  const TraceContext& cur = rt.obs().tracer().current();
  if (!cur.valid()) return;
  msg.trace.trace_id = cur.trace_id;
  msg.trace.span_id = cur.span_id;
  msg.trace.hop = static_cast<uint8_t>(cur.hop + 1);
}

DispatchSpan::DispatchSpan(Runtime& rt, const Message& req) {
  if (!req.trace.valid()) return;
  Tracer& tracer = rt.obs().tracer();
  tracer_ = &tracer;
  prev_ = tracer.current();
  st_ = std::make_shared<State>();
  st_->rt = &rt;
  st_->tracer = &tracer;
  st_->span.trace_id = req.trace.trace_id;
  st_->span.span_id = tracer.new_span_id();
  st_->span.parent_span_id = req.trace.span_id;
  st_->span.name = op_name(req.op);
  st_->span.node = rt.self();
  st_->span.start_us = rt.now_us();
  st_->span.hop = req.trace.hop;
  st_->span.reactor = reactor_tag();
  tracer.set_current(TraceContext{req.trace.trace_id, st_->span.span_id,
                                  req.trace.hop});
}

Replier DispatchSpan::wrap(Replier reply) {
  if (!st_) return reply;
  return [st = st_, reply = std::move(reply)](Message rep) {
    if (!st->done) {
      st->done = true;
      st->span.end_us = st->rt->now_us();
      st->tracer->record(st->span);
    }
    reply(std::move(rep));
  };
}

DispatchSpan::~DispatchSpan() {
  if (!tracer_) return;
  tracer_->set_current(prev_);
  // One-way handlers may drop the no-op replier without invoking it; close
  // the span over the synchronous part so the dispatch is still visible.
  if (st_ && !st_->done && st_.use_count() == 1) {
    st_->done = true;
    st_->span.end_us = st_->rt->now_us();
    st_->tracer->record(st_->span);
  }
}

void record_stage(Runtime& rt, const TraceContext& ctx, const char* name,
                  uint64_t start_us) {
  if (!ctx.valid()) return;
  Tracer& tracer = rt.obs().tracer();
  Span s;
  s.trace_id = ctx.trace_id;
  s.span_id = tracer.new_span_id();
  s.parent_span_id = ctx.span_id;
  s.name = name;
  s.node = rt.self();
  s.start_us = start_us;
  s.end_us = rt.now_us();
  s.hop = ctx.hop;
  s.reactor = reactor_tag();
  tracer.record(std::move(s));
}

void StatsExporter::start(Runtime& rt, uint64_t period_us, Sink sink) {
  stop();
  rt_ = &rt;
  timer_ = rt.set_periodic(period_us, [&rt, sink = std::move(sink)] {
    sink(rt.obs().metrics().snapshot());
  });
}

void StatsExporter::stop() {
  if (rt_ && timer_) rt_->cancel_timer(timer_);
  rt_ = nullptr;
  timer_ = 0;
}

}  // namespace bespokv::obs
