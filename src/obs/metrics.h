// Metrics registry: named counters, gauges and Histogram-backed timers with
// cheap handles, per-node ownership and mergeable snapshots.
//
// Concurrency model mirrors the runtime's: every fabric node is
// single-threaded, so Histogram timers are thread-compatible (recorded only
// on the owning node's thread), while counters and gauges are relaxed atomics
// so fabric I/O threads (TcpFabric's event loop) can bump them too. Snapshots
// are taken on the owning node's thread — the kStats op dispatches there —
// and may then be merged/serialized anywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/histogram.h"
#include "src/common/status.h"

namespace bespokv::obs {

class Counter {
 public:
  void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Point-in-time copy of a registry: plain data, mergeable across nodes and
// runs (bucket-level histogram merge), serializable to JSON/CSV.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Histogram> timers;

  void merge(const MetricsSnapshot& other);

  uint64_t counter(const std::string& name, uint64_t dflt = 0) const;
  int64_t gauge(const std::string& name, int64_t dflt = 0) const;

  // {"counters":{...},"gauges":{...},"timers":{name:{count,sum,min,max,
  //  p50,p99,buckets:"b:c b:c ..."}}}. Timers round-trip bucket-exact.
  std::string to_json() const;
  static Result<MetricsSnapshot> from_json(std::string_view text);

  // One "kind,name,value" line per scalar; timers expand to count/mean/p50/
  // p95/p99/max rows. Header included.
  std::string to_csv() const;
};

class MetricsRegistry {
 public:
  // Handles are valid for the registry's lifetime; lookup takes a lock, so
  // hot paths should cache the returned reference.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& timer(const std::string& name);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> timers_;
};

}  // namespace bespokv::obs
