// Minimal JSON parser/serializer. bespoKV configures controlets with JSON
// files (topology, consistency model, replica counts — see the paper's
// artifact description), so the framework ships its own dependency-free
// reader. Supports objects, arrays, strings, numbers, booleans, null and
// //-style line comments in config files.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace bespokv {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json boolean(bool b);
  static Json number(double d);
  static Json string(std::string s);
  static Json array();
  static Json object();

  static Result<Json> parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool(bool dflt = false) const { return is_bool() ? bool_ : dflt; }
  double as_number(double dflt = 0) const { return is_number() ? num_ : dflt; }
  int64_t as_int(int64_t dflt = 0) const {
    return is_number() ? static_cast<int64_t>(num_) : dflt;
  }
  const std::string& as_string() const { return str_; }
  std::string as_string(const std::string& dflt) const { return is_string() ? str_ : dflt; }

  // Object access. `get` returns a null Json for missing keys.
  const Json& get(const std::string& key) const;
  bool has(const std::string& key) const;
  void set(const std::string& key, Json v);
  const std::map<std::string, Json>& items() const { return obj_; }

  // Array access.
  size_t size() const { return arr_.size(); }
  const Json& at(size_t i) const { return arr_[i]; }
  void push(Json v) { arr_.push_back(std::move(v)); }
  const std::vector<Json>& elements() const { return arr_; }

  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace bespokv
