#include "src/common/status.h"

namespace bespokv {

const char* code_name(Code c) {
  switch (c) {
    case Code::kOk: return "OK";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kExists: return "EXISTS";
    case Code::kInvalid: return "INVALID";
    case Code::kTimeout: return "TIMEOUT";
    case Code::kUnavailable: return "UNAVAILABLE";
    case Code::kConflict: return "CONFLICT";
    case Code::kCorruption: return "CORRUPTION";
    case Code::kInternal: return "INTERNAL";
    case Code::kNotLeader: return "NOT_LEADER";
    case Code::kOutOfRange: return "OUT_OF_RANGE";
    case Code::kMaybeApplied: return "MAYBE_APPLIED";
    case Code::kOverloaded: return "OVERLOADED";
    case Code::kWrongShard: return "WRONG_SHARD";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string s = code_name(code_);
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace bespokv
