// Status and Result<T>: lightweight error propagation used across all bespoKV
// modules. Mirrors the "everything returns a status" convention of the
// original codebase; no exceptions cross module boundaries.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace bespokv {

enum class Code : uint8_t {
  kOk = 0,
  kNotFound,      // key or table does not exist
  kExists,        // table already exists
  kInvalid,       // malformed request / argument
  kTimeout,       // RPC or lock wait exceeded its deadline
  kUnavailable,   // node down, shard in failover, transition in progress
  kConflict,      // write-write conflict (AA), lock held, epoch mismatch
  kCorruption,    // failed checksum / decode
  kInternal,      // bug or unexpected state
  kNotLeader,     // request routed to a non-master replica
  kOutOfRange,    // shared-log trim horizon or scan bound violation
  kMaybeApplied,  // write timed out after exhausting retries: it may or may
                  // not have taken effect (see client.h for the contract)
  kOverloaded,    // admission control shed the request before execution; the
                  // reply's `seq` carries a retry-after hint in microseconds
  kWrongShard,    // key no longer routed to this shard (range moved by a
                  // migration); reply `epoch` hints the map version and
                  // `value` may piggyback an encoded ShardMapDelta
};

const char* code_name(Code c);

class Status {
 public:
  Status() : code_(Code::kOk) {}
  explicit Status(Code c, std::string msg = "")
      : code_(c), msg_(std::move(msg)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") { return Status(Code::kNotFound, std::move(m)); }
  static Status Exists(std::string m = "") { return Status(Code::kExists, std::move(m)); }
  static Status Invalid(std::string m = "") { return Status(Code::kInvalid, std::move(m)); }
  static Status Timeout(std::string m = "") { return Status(Code::kTimeout, std::move(m)); }
  static Status Unavailable(std::string m = "") { return Status(Code::kUnavailable, std::move(m)); }
  static Status Conflict(std::string m = "") { return Status(Code::kConflict, std::move(m)); }
  static Status Corruption(std::string m = "") { return Status(Code::kCorruption, std::move(m)); }
  static Status Internal(std::string m = "") { return Status(Code::kInternal, std::move(m)); }
  static Status NotLeader(std::string m = "") { return Status(Code::kNotLeader, std::move(m)); }
  static Status OutOfRange(std::string m = "") { return Status(Code::kOutOfRange, std::move(m)); }
  static Status MaybeApplied(std::string m = "") { return Status(Code::kMaybeApplied, std::move(m)); }
  static Status Overloaded(std::string m = "") { return Status(Code::kOverloaded, std::move(m)); }
  static Status WrongShard(std::string m = "") { return Status(Code::kWrongShard, std::move(m)); }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return msg_; }
  std::string to_string() const;

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  Code code_;
  std::string msg_;
};

// Result<T>: either a value or an error status. `value()` must only be
// called when `ok()`.
template <typename T>
class Result {
 public:
  Result(T v) : v_(std::move(v)) {}                 // NOLINT(google-explicit-constructor)
  Result(Status s) : v_(std::move(s)) {}            // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(v_);
  }
  T value_or(T dflt) const {
    return ok() ? std::get<T>(v_) : std::move(dflt);
  }

 private:
  std::variant<T, Status> v_;
};

#define BKV_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::bespokv::Status _s = (expr);           \
    if (!_s.ok()) return _s;                 \
  } while (0)

}  // namespace bespokv
