// Consistent-hash ring with virtual nodes — the client library's default
// partitioner (§III, "consistent hashing"). Also used by the baseline
// Twemproxy/Dynomite proxies.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace bespokv {

class HashRing {
 public:
  explicit HashRing(int vnodes_per_node = 160) : vnodes_(vnodes_per_node) {}

  // Adds a node (identified by an opaque name, e.g. "shard3" or an address).
  // Idempotent: re-adding an existing node is a no-op.
  void add_node(const std::string& node);

  // Removes a node and all of its virtual points. No-op if absent.
  void remove_node(const std::string& node);

  // Maps a key to the owning node. Returns kUnavailable if the ring is empty.
  Result<std::string> lookup(std::string_view key) const;

  // The n distinct nodes following the key's point clockwise (replica set
  // selection, Dynamo-style preference list).
  std::vector<std::string> lookup_n(std::string_view key, size_t n) const;

  size_t num_nodes() const { return nodes_.size(); }
  std::vector<std::string> nodes() const;

 private:
  uint64_t point_for(const std::string& node, int replica) const;

  int vnodes_;
  std::map<uint64_t, std::string> ring_;       // point -> node
  std::map<std::string, int> nodes_;           // node -> vnode count
};

}  // namespace bespokv
