// Deterministic PRNG and workload distributions.
//
// SplitMix64 seeds Xoshiro256**; ZipfianGenerator implements the YCSB
// rejection-free zipfian sampler (Gray et al.) with the standard
// scrambled variant so that popular items are spread over the key space.
#pragma once

#include <cstdint>
#include <cmath>

namespace bespokv {

inline uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5DEECE66DULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t next_u64(uint64_t n) { return next() % n; }

  // Uniform double in [0, 1).
  double next_double() { return (next() >> 11) * 0x1.0p-53; }

  // Uniform in [lo, hi].
  uint64_t next_in(uint64_t lo, uint64_t hi) { return lo + next_u64(hi - lo + 1); }

  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

// YCSB-style zipfian over [0, n). theta defaults to 0.99 as in the paper.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 7)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Raw zipfian rank: 0 is the hottest item.
  uint64_t next_rank() {
    const double u = rng_.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  // Scrambled: spreads hot ranks across the key space (YCSB behaviour).
  uint64_t next() {
    uint64_t state = next_rank() ^ 0x9a3ec9a4d7ULL;
    return splitmix64(state) % n_;
  }

  uint64_t n() const { return n_; }

 private:
  static double zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace bespokv
