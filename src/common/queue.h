// Blocking MPSC/MPMC queue used by the thread-backed runtime mailboxes.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <chrono>

namespace bespokv {

template <typename T>
class BlockingQueue {
 public:
  void push(T item) {
    {
      std::lock_guard<std::mutex> g(mu_);
      q_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Blocks until an item is available or the queue is closed.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  // Blocks up to `timeout`; returns nullopt on timeout or close.
  std::optional<T> pop_for(std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait_for(lk, timeout, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return std::nullopt;
    T item = std::move(q_.front());
    q_.pop_front();
    return item;
  }

  void close() {
    {
      std::lock_guard<std::mutex> g(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> g(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace bespokv
