// Global epoch-fencing switch.
//
// Fencing is the safety net that makes failover correct under partitions: a
// master that lost its lease stops serving, and every state-mutating sink
// (chain-forward apply, propagation apply, shared-log append, DLM acquire,
// remote datalet apply) rejects requests minted under an older shard-map
// epoch with kConflict. See DESIGN.md "Partitions, leases, and fencing".
//
// The switch exists for exactly one reason: the verification harness proves
// the oracle can see the split-brain bug the fences prevent by re-running a
// partition scenario with fencing force-disabled and observing the
// linearizability violation. It must never be off in production paths.
#pragma once

#include <atomic>

namespace bespokv {

inline std::atomic<bool>& epoch_fencing_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

inline bool fencing_enabled() {
  return epoch_fencing_flag().load(std::memory_order_relaxed);
}

// RAII scope for tests and the verify runner: disables lease self-fencing
// and every stale-epoch sink check, restoring the previous state on exit.
class ScopedFencingDisable {
 public:
  ScopedFencingDisable()
      : prev_(epoch_fencing_flag().exchange(false, std::memory_order_relaxed)) {}
  ~ScopedFencingDisable() {
    epoch_fencing_flag().store(prev_, std::memory_order_relaxed);
  }
  ScopedFencingDisable(const ScopedFencingDisable&) = delete;
  ScopedFencingDisable& operator=(const ScopedFencingDisable&) = delete;

 private:
  bool prev_;
};

}  // namespace bespokv
