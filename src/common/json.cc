#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bespokv {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}
Json Json::number(double d) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = d;
  return j;
}
Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}
Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}
Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json& Json::get(const std::string& key) const {
  static const Json kNullJson;
  auto it = obj_.find(key);
  return it == obj_.end() ? kNullJson : it->second;
}

bool Json::has(const std::string& key) const { return obj_.count(key) > 0; }

void Json::set(const std::string& key, Json v) {
  type_ = Type::kObject;
  obj_[key] = std::move(v);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : t_(text) {}

  Result<Json> parse() {
    skip_ws();
    auto r = parse_value();
    if (!r.ok()) return r;
    skip_ws();
    if (pos_ != t_.size()) return Status::Invalid("trailing characters in JSON");
    return r;
  }

 private:
  void skip_ws() {
    while (pos_ < t_.size()) {
      char c = t_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < t_.size() && t_[pos_ + 1] == '/') {
        while (pos_ < t_.size() && t_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool eat(char c) {
    if (pos_ < t_.size() && t_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    if (pos_ >= t_.size()) return Status::Invalid("unexpected end of JSON");
    char c = t_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.status();
        return Json::string(std::move(s).value());
      }
      case 't':
        if (t_.substr(pos_, 4) == "true") { pos_ += 4; return Json::boolean(true); }
        return Status::Invalid("bad literal");
      case 'f':
        if (t_.substr(pos_, 5) == "false") { pos_ += 5; return Json::boolean(false); }
        return Status::Invalid("bad literal");
      case 'n':
        if (t_.substr(pos_, 4) == "null") { pos_ += 4; return Json(); }
        return Status::Invalid("bad literal");
      default: return parse_number();
    }
  }

  Result<Json> parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (eat('}')) return obj;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.status();
      skip_ws();
      if (!eat(':')) return Status::Invalid("expected ':' in object");
      skip_ws();
      auto val = parse_value();
      if (!val.ok()) return val;
      obj.set(key.value(), std::move(val).value());
      skip_ws();
      if (eat(',')) {
        skip_ws();
        // Tolerate a trailing comma before '}' (common in hand-written configs).
        if (eat('}')) return obj;
        continue;
      }
      if (eat('}')) return obj;
      return Status::Invalid("expected ',' or '}' in object");
    }
  }

  Result<Json> parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (eat(']')) return arr;
    while (true) {
      skip_ws();
      auto val = parse_value();
      if (!val.ok()) return val;
      arr.push(std::move(val).value());
      skip_ws();
      if (eat(',')) {
        skip_ws();
        if (eat(']')) return arr;
        continue;
      }
      if (eat(']')) return arr;
      return Status::Invalid("expected ',' or ']' in array");
    }
  }

  Result<std::string> parse_string() {
    if (!eat('"')) return Status::Invalid("expected string");
    std::string out;
    while (pos_ < t_.size()) {
      char c = t_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= t_.size()) break;
        char e = t_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > t_.size()) return Status::Invalid("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              char h = t_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return Status::Invalid("bad \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported in configs).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return Status::Invalid("bad escape");
        }
      } else {
        out += c;
      }
    }
    return Status::Invalid("unterminated string");
  }

  Result<Json> parse_number() {
    size_t start = pos_;
    if (pos_ < t_.size() && (t_[pos_] == '-' || t_[pos_] == '+')) ++pos_;
    bool any = false;
    while (pos_ < t_.size() &&
           (std::isdigit(static_cast<unsigned char>(t_[pos_])) || t_[pos_] == '.' ||
            t_[pos_] == 'e' || t_[pos_] == 'E' || t_[pos_] == '-' || t_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    if (!any) return Status::Invalid("expected number");
    std::string num(t_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Status::Invalid("bad number: " + num);
    return Json::number(d);
  }

  std::string_view t_;
  size_t pos_ = 0;
};

void escape_to(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Result<Json> Json::parse(std::string_view text) { return Parser(text).parse(); }

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto pad = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: {
      char buf[32];
      if (num_ == std::floor(num_) && std::abs(num_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(num_));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
      }
      out += buf;
      break;
    }
    case Type::kString: escape_to(str_, out); break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& e : arr_) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        e.dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        escape_to(k, out);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace bespokv
