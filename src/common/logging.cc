#include "src/common/logging.h"

namespace bespokv {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel lvl, const char* file, int line, const std::string& msg) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  // Trim the path down to the basename for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> g(mu_);
  std::fprintf(stderr, "[%s %s:%d] %s\n", names[static_cast<int>(lvl)], base, line, msg.c_str());
}

}  // namespace bespokv
