// Log-bucketed latency histogram + simple counters. Thread-compatible (one
// writer); benchmark drivers merge per-client histograms after a run.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bespokv {

// Records values (typically microseconds) into log2-spaced buckets with 16
// linear sub-buckets each, giving <=6.25% relative error on percentiles.
class Histogram {
 public:
  Histogram() { reset(); }

  void record(uint64_t value);
  void merge(const Histogram& other);
  void reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  // q in [0,1]; returns an approximate value at that quantile.
  uint64_t percentile(double q) const;

  std::string summary() const;  // "n=... mean=... p50=... p99=..."

  // Bucket-level access, so snapshots merged across nodes keep full
  // percentile resolution instead of collapsing to min/mean/max.
  static constexpr int num_buckets() { return kBuckets; }
  uint64_t bucket_count(int b) const { return buckets_[static_cast<size_t>(b)]; }

  // Sparse text export: "count sum rawmin max b:c b:c ...". Round-trips
  // exactly (including the empty-histogram min sentinel), so a decoded
  // histogram merges identically to the original.
  std::string encode() const;
  static bool decode(std::string_view text, Histogram* out);

  bool operator==(const Histogram& o) const {
    return count_ == o.count_ && sum_ == o.sum_ && min_ == o.min_ &&
           max_ == o.max_ && buckets_ == o.buckets_;
  }

 private:
  static constexpr int kSub = 16;        // linear sub-buckets per power of two
  static constexpr int kBuckets = 64 * kSub;

  static int bucket_for(uint64_t v);
  static uint64_t bucket_mid(int b);

  std::array<uint64_t, kBuckets> buckets_;
  uint64_t count_, sum_, min_, max_;
};

}  // namespace bespokv
