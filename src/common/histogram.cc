#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>

namespace bespokv {

void Histogram::reset() {
  buckets_.fill(0);
  count_ = sum_ = max_ = 0;
  min_ = UINT64_MAX;
}

int Histogram::bucket_for(uint64_t v) {
  if (v < kSub) return static_cast<int>(v);  // exact for tiny values
  const int msb = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (msb - 4)) & (kSub - 1));
  const int b = msb * kSub + sub;
  return std::min(b, kBuckets - 1);
}

uint64_t Histogram::bucket_mid(int b) {
  if (b < kSub) return static_cast<uint64_t>(b);
  const int msb = b / kSub;
  const int sub = b % kSub;
  const uint64_t base = 1ULL << msb;
  const uint64_t step = base / kSub;
  return base + static_cast<uint64_t>(sub) * step + step / 2;
}

void Histogram::record(uint64_t value) {
  buckets_[static_cast<size_t>(bucket_for(value))]++;
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (int i = 0; i < kBuckets; ++i) buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) return bucket_mid(i);
  }
  return max_;
}

std::string Histogram::encode() const {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%llu %llu %llu %llu",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(sum_),
                static_cast<unsigned long long>(min_),
                static_cast<unsigned long long>(max_));
  out += buf;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[static_cast<size_t>(i)] == 0) continue;
    std::snprintf(buf, sizeof(buf), " %d:%llu", i,
                  static_cast<unsigned long long>(buckets_[static_cast<size_t>(i)]));
    out += buf;
  }
  return out;
}

namespace {
bool parse_u64(std::string_view text, size_t* pos, uint64_t* out) {
  while (*pos < text.size() && text[*pos] == ' ') ++*pos;
  const char* begin = text.data() + *pos;
  const char* end = text.data() + text.size();
  auto [p, ec] = std::from_chars(begin, end, *out);
  if (ec != std::errc() || p == begin) return false;
  *pos += static_cast<size_t>(p - begin);
  return true;
}
}  // namespace

bool Histogram::decode(std::string_view text, Histogram* out) {
  Histogram h;
  size_t pos = 0;
  uint64_t count, sum, min, max;
  if (!parse_u64(text, &pos, &count) || !parse_u64(text, &pos, &sum) ||
      !parse_u64(text, &pos, &min) || !parse_u64(text, &pos, &max)) {
    return false;
  }
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = min;
  h.max_ = max;
  uint64_t in_buckets = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    if (pos == text.size()) break;
    uint64_t b;
    if (!parse_u64(text, &pos, &b)) return false;
    if (pos >= text.size() || text[pos] != ':') return false;
    ++pos;
    uint64_t c;
    if (!parse_u64(text, &pos, &c)) return false;
    if (b >= static_cast<uint64_t>(kBuckets)) return false;
    h.buckets_[static_cast<size_t>(b)] += c;
    in_buckets += c;
  }
  if (in_buckets != count) return false;
  *out = h;
  return true;
}

std::string Histogram::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f min=%llu p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.95)),
                static_cast<unsigned long long>(percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace bespokv
