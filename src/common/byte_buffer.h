// ByteBuffer: a growable FIFO byte queue for network I/O hot paths.
//
// The seed fabric used plain std::string for connection buffers and paid an
// erase(0, n) memmove on every read batch and every partial write. ByteBuffer
// replaces that with a consume offset: consume() just advances the read
// cursor, and the dead prefix is reclaimed lazily — either for free when the
// buffer fully drains, or with a single memmove folded into a later append
// once the prefix dominates the live data.
//
// Invalidation rules (asserted by tests/common_test.cc):
//   * consume() never moves or frees memory — readable() views taken before a
//     partial consume stay valid afterwards.
//   * append()/prepare() may compact or reallocate — views must be considered
//     dead across any write-side call.
//
// The write side has two shapes:
//   * append(bytes) — copy in.
//   * prepare(n)/commit(m) — expose n writable tail bytes for a zero-copy
//     producer (e.g. read(2) straight into the buffer), then commit what was
//     actually produced.
//   * backing() — the underlying string, for encoders that serialize in
//     place (codec.h Encoder appends to it; the readable window is
//     [read_offset(), backing().size())).
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <string_view>

namespace bespokv {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(size_t initial_capacity) { buf_.reserve(initial_capacity); }

  // ---- read side ----
  std::string_view readable() const {
    return std::string_view(buf_.data() + roff_, buf_.size() - roff_);
  }
  size_t size() const { return buf_.size() - roff_; }
  bool empty() const { return roff_ == buf_.size(); }

  // Advances the read cursor past `n` consumed bytes. Never memmoves; when the
  // buffer fully drains the offsets reset so the next append starts at 0.
  void consume(size_t n) {
    assert(n <= size());
    roff_ += n;
    if (roff_ == buf_.size()) {
      buf_.clear();
      roff_ = 0;
    }
  }

  // ---- write side ----
  void append(std::string_view s) {
    reclaim(s.size());
    buf_.append(s.data(), s.size());
  }
  void append(const char* p, size_t n) { append(std::string_view(p, n)); }

  // Exposes `n` writable bytes at the tail; commit(m <= n) the bytes actually
  // produced. Only one prepare may be outstanding at a time.
  char* prepare(size_t n) {
    reclaim(n);
    wmark_ = buf_.size();
    buf_.resize(wmark_ + n);
    return &buf_[wmark_];
  }
  void commit(size_t n) {
    assert(wmark_ + n <= buf_.size());
    buf_.resize(wmark_ + n);
  }

  // Underlying storage for in-place encoders. Appending to it extends the
  // readable window; callers must not disturb bytes before backing().size().
  std::string& backing() { return buf_; }
  size_t read_offset() const { return roff_; }

  void reserve(size_t n) { buf_.reserve(n); }
  size_t capacity() const { return buf_.capacity(); }
  void clear() {
    buf_.clear();
    roff_ = 0;
  }

 private:
  // Folds the consumed prefix away before growing, but only once it is both
  // sizeable and at least as large as the live data — so steady-state streams
  // pay one memmove per ~buffer-full instead of one per read batch.
  void reclaim(size_t incoming) {
    (void)incoming;
    if (roff_ >= kReclaimThreshold && roff_ >= buf_.size() - roff_) {
      buf_.erase(0, roff_);
      roff_ = 0;
    }
  }

  static constexpr size_t kReclaimThreshold = 4096;

  std::string buf_;
  size_t roff_ = 0;   // start of unconsumed data
  size_t wmark_ = 0;  // prepare() watermark
};

}  // namespace bespokv
