// Hash functions used for partitioning and integrity checks.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace bespokv {

// FNV-1a 64-bit: the default key-partitioning hash.
inline uint64_t fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// CRC32C (software, slice-by-1): used to checksum tLog / tLSM records.
uint32_t crc32c(std::string_view data, uint32_t seed = 0);

// 64-bit finalizer (MurmurHash3 fmix64): used for consistent-hash points.
inline uint64_t mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace bespokv
