// Minimal intrusive doubly-linked list: O(1) unlink given only the element,
// no per-node allocation, stable iteration under concurrent erasure of the
// *current* element (advance before unlinking). Used by the TCP reactors to
// own their connections — close paths unlink in O(1) and teardown walks the
// list without consulting an fd map.
#pragma once

#include <cstddef>

namespace bespokv {

template <typename T>
struct ListHook {
  T* prev = nullptr;
  T* next = nullptr;
  bool linked = false;
};

template <typename T, ListHook<T> T::*Hook>
class IntrusiveList {
 public:
  void push_back(T* e) {
    ListHook<T>& h = e->*Hook;
    h.prev = tail_;
    h.next = nullptr;
    h.linked = true;
    if (tail_ != nullptr) {
      (tail_->*Hook).next = e;
    } else {
      head_ = e;
    }
    tail_ = e;
    ++size_;
  }

  void erase(T* e) {
    ListHook<T>& h = e->*Hook;
    if (!h.linked) return;
    if (h.prev != nullptr) {
      (h.prev->*Hook).next = h.next;
    } else {
      head_ = h.next;
    }
    if (h.next != nullptr) {
      (h.next->*Hook).prev = h.prev;
    } else {
      tail_ = h.prev;
    }
    h.prev = h.next = nullptr;
    h.linked = false;
    --size_;
  }

  T* front() const { return head_; }
  static T* next(T* e) { return (e->*Hook).next; }

  bool empty() const { return head_ == nullptr; }
  size_t size() const { return size_; }

  // Safe against fn unlinking (even deleting) the visited element.
  template <typename Fn>
  void for_each(Fn fn) {
    T* e = head_;
    while (e != nullptr) {
      T* nxt = (e->*Hook).next;
      fn(e);
      e = nxt;
    }
  }

 private:
  T* head_ = nullptr;
  T* tail_ = nullptr;
  size_t size_ = 0;
};

}  // namespace bespokv
