// Minimal leveled logging. Controlets and services log through these macros;
// benchmarks set the level to kWarn to keep the measured path quiet.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace bespokv {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) { level_.store(static_cast<int>(lvl), std::memory_order_relaxed); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load(std::memory_order_relaxed)); }
  bool enabled(LogLevel lvl) const { return static_cast<int>(lvl) >= level_.load(std::memory_order_relaxed); }

  void write(LogLevel lvl, const char* file, int line, const std::string& msg);

 private:
  Logger() : level_(static_cast<int>(LogLevel::kWarn)) {}
  std::atomic<int> level_;
  std::mutex mu_;
};

struct LogMessage {
  LogMessage(LogLevel lvl, const char* file, int line) : lvl_(lvl), file_(file), line_(line) {}
  ~LogMessage() { Logger::instance().write(lvl_, file_, line_, ss_.str()); }
  std::ostringstream& stream() { return ss_; }

 private:
  LogLevel lvl_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

#define BKV_LOG(lvl)                                                     \
  if (!::bespokv::Logger::instance().enabled(::bespokv::LogLevel::lvl)) \
    ;                                                                    \
  else                                                                   \
    ::bespokv::LogMessage(::bespokv::LogLevel::lvl, __FILE__, __LINE__).stream()

#define LOG_DEBUG BKV_LOG(kDebug)
#define LOG_INFO BKV_LOG(kInfo)
#define LOG_WARN BKV_LOG(kWarn)
#define LOG_ERROR BKV_LOG(kError)

}  // namespace bespokv
