#include "src/common/hash.h"

namespace bespokv {

namespace {

// CRC32C (Castagnoli) lookup table, generated at first use.
struct Crc32cTable {
  uint32_t table[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
      }
      table[i] = crc;
    }
  }
};

}  // namespace

uint32_t crc32c(std::string_view data, uint32_t seed) {
  static const Crc32cTable t;
  uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = t.table[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace bespokv
