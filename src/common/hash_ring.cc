#include "src/common/hash_ring.h"

#include <algorithm>

#include "src/common/hash.h"

namespace bespokv {

uint64_t HashRing::point_for(const std::string& node, int replica) const {
  return mix64(fnv1a64(node) ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(replica + 1)));
}

void HashRing::add_node(const std::string& node) {
  if (nodes_.count(node)) return;
  nodes_[node] = vnodes_;
  for (int i = 0; i < vnodes_; ++i) {
    ring_.emplace(point_for(node, i), node);
  }
}

void HashRing::remove_node(const std::string& node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  for (int i = 0; i < it->second; ++i) {
    auto rit = ring_.find(point_for(node, i));
    // Multiple points may theoretically collide; only erase ours.
    while (rit != ring_.end() && rit->first == point_for(node, i)) {
      if (rit->second == node) {
        ring_.erase(rit);
        break;
      }
      ++rit;
    }
  }
  nodes_.erase(it);
}

Result<std::string> HashRing::lookup(std::string_view key) const {
  if (ring_.empty()) return Status::Unavailable("empty hash ring");
  const uint64_t h = mix64(fnv1a64(key));
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::string> HashRing::lookup_n(std::string_view key, size_t n) const {
  std::vector<std::string> out;
  if (ring_.empty() || n == 0) return out;
  n = std::min(n, nodes_.size());
  const uint64_t h = mix64(fnv1a64(key));
  auto it = ring_.lower_bound(h);
  while (out.size() < n) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end()) {
      out.push_back(it->second);
    }
    ++it;
  }
  return out;
}

std::vector<std::string> HashRing::nodes() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [name, _] : nodes_) out.push_back(name);
  return out;
}

}  // namespace bespokv
