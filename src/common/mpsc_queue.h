// Lock-free unbounded multi-producer single-consumer queue (Vyukov-style
// exchange-linked nodes). The cross-reactor funnel of the thread-per-core
// TCP runtime: any reactor (or external thread) may push, only the owning
// reactor pops. push() is wait-free for producers (one atomic exchange);
// pop() is lock-free for the single consumer.
//
// The classic Vyukov caveat applies: between a producer's exchange and its
// next-pointer store, the consumer can observe an "empty" queue whose tail
// has unlinked items in flight. pop() returns nullopt in that window, which
// is fine for an event loop that re-polls after the producer's eventfd wake
// lands — the wake is written after the push completes.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>

namespace bespokv {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_ = stub;
  }

  ~MpscQueue() {
    Node* n = tail_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Any thread.
  void push(T value) {
    Node* n = new Node(std::move(value));
    Node* prev = head_.exchange(n, std::memory_order_acq_rel);
    prev->next.store(n, std::memory_order_release);
    depth_.fetch_add(1, std::memory_order_relaxed);
  }

  // Consumer thread only. Returns nullopt when empty (or momentarily
  // mid-push; see header comment).
  std::optional<T> pop() {
    Node* tail = tail_;
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    T value = std::move(next->value);
    tail_ = next;
    delete tail;
    depth_.fetch_sub(1, std::memory_order_relaxed);
    return value;
  }

  // Approximate (racy) — metrics only.
  size_t approx_depth() const { return depth_.load(std::memory_order_relaxed); }

  bool empty() const {
    return tail_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  alignas(64) std::atomic<Node*> head_;  // producer side
  alignas(64) Node* tail_;               // consumer side (stub-led)
  std::atomic<size_t> depth_{0};
};

}  // namespace bespokv
