#include "src/dlm/dlm.h"

#include "src/common/fencing.h"

namespace bespokv {

void DlmService::start(Runtime& rt) {
  Service::start(rt);
  sweep_timer_ = rt_->set_periodic(cfg_.sweep_period_us, [this] { sweep(); });
}

void DlmService::stop() {
  if (rt_ != nullptr && sweep_timer_ != 0) rt_->cancel_timer(sweep_timer_);
  sweep_timer_ = 0;
}

void DlmService::handle(const Addr& from, Message req, Replier reply) {
  if (req.op == Op::kReconfigure) {
    // Coordinator fence push (sent on depose / transition completion only):
    // ratchet the shard's epoch floor. Never lowered.
    uint64_t& floor = fence_[req.shard];
    floor = std::max(floor, req.epoch);
    reply(Message::reply(Code::kOk));
    return;
  }
  if (req.op == Op::kLock) {
    if (fencing_enabled() && req.epoch != 0) {
      auto fit = fence_.find(req.shard);
      if (fit != fence_.end() && req.epoch < fit->second) {
        // Acquire minted under a pre-failover epoch: the requester has been
        // deposed and must not serialize writes through us.
        ++fence_rejects_;
        reply(Message::reply(Code::kConflict, "stale epoch"));
        return;
      }
    }
    const bool write = (req.flags & kFlagWriteLock) != 0;
    LockState& st = locks_[req.key];
    const uint64_t now = rt_->now_us();
    const bool compatible =
        st.holders.empty() || (!write && !st.write && st.waiters.empty());
    if (compatible) {
      st.write = write;
      st.holders[from] = now + cfg_.lease_us;
      reply(Message::reply(Code::kOk));
      return;
    }
    if (st.holders.count(from) > 0 && st.write == write) {
      // Re-entrant grant refreshes the lease.
      st.holders[from] = now + cfg_.lease_us;
      reply(Message::reply(Code::kOk));
      return;
    }
    st.waiters.push_back(Waiter{from, write, std::move(reply),
                                now + cfg_.wait_cap_us});
    return;
  }
  if (req.op == Op::kUnlock) {
    auto it = locks_.find(req.key);
    if (it == locks_.end() || it->second.holders.erase(from) == 0) {
      reply(Message::reply(Code::kNotFound));
      return;
    }
    grant(req.key, it->second);
    if (it->second.holders.empty() && it->second.waiters.empty()) {
      locks_.erase(it);
    }
    reply(Message::reply(Code::kOk));
    return;
  }
  reply(Message::reply(Code::kInvalid));
}

void DlmService::grant(const std::string& /*key*/, LockState& st) {
  if (!st.holders.empty() || st.waiters.empty()) return;
  const uint64_t now = rt_->now_us();
  Waiter w = std::move(st.waiters.front());
  st.waiters.pop_front();
  st.write = w.write;
  st.holders[w.owner] = now + cfg_.lease_us;
  w.reply(Message::reply(Code::kOk));
  // Batch compatible readers behind a granted read lock.
  if (!w.write) {
    while (!st.waiters.empty() && !st.waiters.front().write) {
      Waiter r = std::move(st.waiters.front());
      st.waiters.pop_front();
      st.holders[r.owner] = now + cfg_.lease_us;
      r.reply(Message::reply(Code::kOk));
    }
  }
}

void DlmService::sweep() {
  const uint64_t now = rt_->now_us();
  for (auto it = locks_.begin(); it != locks_.end();) {
    LockState& st = it->second;
    // Expire leases (crashed or wedged holders — §C.B deadlock freedom).
    for (auto h = st.holders.begin(); h != st.holders.end();) {
      if (h->second <= now) {
        h = st.holders.erase(h);
        ++expirations_;
      } else {
        ++h;
      }
    }
    // Time out queued waiters.
    std::deque<Waiter> keep;
    for (auto& w : st.waiters) {
      if (w.deadline_us <= now) {
        w.reply(Message::reply(Code::kTimeout));
      } else {
        keep.push_back(std::move(w));
      }
    }
    st.waiters.swap(keep);
    grant(it->first, st);
    if (st.holders.empty() && st.waiters.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

void DlmClient::lock(const std::string& key, bool write,
                     std::function<void(Status)> done, uint64_t epoch,
                     uint32_t shard) {
  Message req;
  req.op = Op::kLock;
  req.key = key;
  req.epoch = epoch;
  req.shard = shard;
  if (write) req.flags |= kFlagWriteLock;
  rt_->call(addr_, std::move(req),
            [done = std::move(done)](Status s, Message rep) {
              if (!s.ok()) {
                done(s);
              } else if (rep.code != Code::kOk) {
                done(Status(rep.code));
              } else {
                done(Status::Ok());
              }
            },
            /*timeout_us=*/3'000'000);
}

void DlmClient::unlock(const std::string& key) {
  Message req;
  req.op = Op::kUnlock;
  req.key = key;
  rt_->send(addr_, std::move(req));
}

}  // namespace bespokv
