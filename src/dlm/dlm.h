// Distributed lock manager (Redlock substitute; Table III DLM API).
//
// Per-key reader/writer locks with leases. AA+SC controlets take a write
// lock around replica updates and a read lock around Gets (Fig. 15b).
// Leases auto-expire after `lease_us` to guarantee liveness when a lock
// holder crashes (§C.B: "locks are released after a configurable period of
// time"). Waiters are granted FIFO, readers batched.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>

#include "src/net/runtime.h"
#include "src/proto/message.h"

namespace bespokv {

struct DlmConfig {
  uint64_t lease_us = 2'000'000;      // holder lease before auto-release
  uint64_t wait_cap_us = 1'000'000;   // max queueing time before kTimeout
  uint64_t sweep_period_us = 10'000;  // expiry scan period
};

class DlmService : public Service {
 public:
  explicit DlmService(DlmConfig cfg = {}) : cfg_(cfg) {}

  void start(Runtime& rt) override;
  void stop() override;
  void handle(const Addr& from, Message req, Replier reply) override;

  size_t held_locks() const { return locks_.size(); }
  uint64_t expirations() const { return expirations_; }
  // Acquires rejected because the requester's epoch was behind the shard's
  // fence (ratcheted by coordinator kReconfigure pushes on failover).
  uint64_t fence_rejects() const { return fence_rejects_; }

 private:
  struct Waiter {
    Addr owner;
    bool write;
    Replier reply;
    uint64_t deadline_us;
  };
  struct LockState {
    bool write = false;                  // current grant mode
    std::map<Addr, uint64_t> holders;    // owner -> lease expiry
    std::deque<Waiter> waiters;
  };

  void grant(const std::string& key, LockState& st);
  void sweep();

  DlmConfig cfg_;
  std::map<std::string, LockState> locks_;
  // Per-shard epoch fence: a deposed active's acquires die here even though
  // it can still reach us (split-brain via the DLM is otherwise possible).
  std::map<uint32_t, uint64_t> fence_;
  uint64_t sweep_timer_ = 0;
  uint64_t expirations_ = 0;
  uint64_t fence_rejects_ = 0;
};

// Client wrapper: Lock(key) / Unlock(key).
class DlmClient {
 public:
  DlmClient(Runtime* rt, Addr dlm_addr) : rt_(rt), addr_(std::move(dlm_addr)) {}

  // `epoch`/`shard` stamp the acquire for the DLM's per-shard fence: a
  // request minted under an epoch older than the shard's fence is refused
  // with kConflict (0 = unfenced legacy caller).
  void lock(const std::string& key, bool write,
            std::function<void(Status)> done, uint64_t epoch = 0,
            uint32_t shard = 0);
  void unlock(const std::string& key);

 private:
  Runtime* rt_;
  Addr addr_;
};

}  // namespace bespokv
