// On-disk SSTable: one immutable sorted run of a tLSM level.
//
// File layout (little-endian):
//   entries:  (u32 klen | u32 vlen | u64 seq | u8 flags | key | value)*
//   bloom:    u64 bits | u32 nwords | u64 words[nwords]
//   index:    u64 offsets[count]            (entry byte offsets, key-sorted)
//   footer:   u64 bloom_off | u64 index_off | u64 count | u32 crc | u32 magic
//
// The footer CRC32C covers the bloom and index blocks plus the footer's own
// offset/count words, so a truncated or corrupted table fails open() instead
// of serving wrong data. Key bounds come for free from the sorted index
// (first/last entry). Readers hold an mmap'd FileView; keys and values are
// served as views into the mapping — the only copies happen when a lookup
// materializes an Entry.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/datalet/bloom.h"
#include "src/storage/env.h"

namespace bespokv::storage {

struct SSTableEntry {
  std::string_view key;
  std::string_view value;
  uint64_t seq = 0;
  bool tombstone = false;
};

// Streams one sorted run to disk. add() must be called in strictly ascending
// key order; finish() writes bloom/index/footer and issues the durability
// barrier. The file only becomes part of the tree when the manifest that
// names it is durably published, so a crash mid-write just leaves an orphan.
class SSTableWriter {
 public:
  SSTableWriter(std::shared_ptr<Env> env, std::string path);

  Status add(std::string_view key, std::string_view value, uint64_t seq,
             bool tombstone);
  Status finish();

  uint64_t count() const { return offsets_.size(); }
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  std::shared_ptr<Env> env_;
  std::string path_;
  std::unique_ptr<AppendFile> file_;
  Status open_status_;
  std::vector<uint64_t> offsets_;
  std::vector<std::string> keys_;  // for the bloom block at finish()
  uint64_t file_bytes_ = 0;
  bool finished_ = false;
};

class SSTableReader {
 public:
  static Result<std::shared_ptr<SSTableReader>> open(std::shared_ptr<Env> env,
                                                     const std::string& path);

  size_t count() const { return offsets_.size(); }
  SSTableEntry entry(size_t i) const;
  std::string_view key(size_t i) const;

  std::string_view min_key() const { return min_key_; }
  std::string_view max_key() const { return max_key_; }

  // Bounds + bloom pruning; false means "definitely absent".
  bool may_contain(std::string_view key) const;
  // Index of the first entry with key >= `key` (count() if none).
  size_t lower_bound(std::string_view key) const;
  // Exact lookup (already pruned by may_contain or not — both fine).
  std::optional<SSTableEntry> find(std::string_view key) const;

  uint64_t file_bytes() const { return view_->data().size(); }

 private:
  SSTableReader(std::shared_ptr<FileView> view, std::vector<uint64_t> offsets,
                BloomFilter bloom);

  std::shared_ptr<FileView> view_;
  std::vector<uint64_t> offsets_;
  BloomFilter bloom_;
  std::string_view min_key_;
  std::string_view max_key_;
};

}  // namespace bespokv::storage
