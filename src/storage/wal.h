// Write-ahead log with CRC32C-framed records, configurable fsync policy and
// group commit.
//
// Frame layout (little-endian):
//   u32 crc | u32 len | body
//   body = u8 type | u64 seq | payload          (len = body length)
// The CRC covers the whole body, so a torn or garbage tail — a partial final
// append, or random bytes a power cut left behind — fails the check and
// replay truncates the log back to the last whole record. Everything before
// the first bad frame is kept; nothing after it is trusted (a hole would
// otherwise let a later, possibly-unacked record resurface).
//
// Fsync policies (the Redis appendfsync trichotomy):
//   kAlways      — fdatasync inline on every append; an Ok append is durable.
//   kGroupCommit — appenders batch behind one fdatasync. In blocking mode the
//                  first wait_durable() caller becomes the commit leader: it
//                  naps group_interval_us so more appenders pile in, issues
//                  one sync for the whole batch and wakes everyone. In
//                  non-blocking mode (single-threaded sim event loops can't
//                  block) the log syncs every group_batch appends instead,
//                  which leaves a bounded ack-loss window the verify harness
//                  never relies on.
//   kOs          — never sync; the OS flushes when it pleases (cache mode).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/storage/env.h"

namespace bespokv::storage {

// -- shared little-endian frame helpers (the tLog store reuses these) --

inline void put_u32(std::string& out, uint32_t v) {
  out.push_back(char(v)), out.push_back(char(v >> 8));
  out.push_back(char(v >> 16)), out.push_back(char(v >> 24));
}
inline void put_u64(std::string& out, uint64_t v) {
  put_u32(out, uint32_t(v));
  put_u32(out, uint32_t(v >> 32));
}
inline uint32_t get_u32(const char* p) {
  return uint32_t(uint8_t(p[0])) | uint32_t(uint8_t(p[1])) << 8 |
         uint32_t(uint8_t(p[2])) << 16 | uint32_t(uint8_t(p[3])) << 24;
}
inline uint64_t get_u64(const char* p) {
  return uint64_t(get_u32(p)) | uint64_t(get_u32(p + 4)) << 32;
}

constexpr size_t kFrameHeaderBytes = 8;  // crc + len
constexpr size_t kFrameMetaBytes = 9;    // type + seq
constexpr size_t kFrameOverhead = kFrameHeaderBytes + kFrameMetaBytes;
constexpr size_t kMaxFrameBody = 1u << 28;  // sanity cap on parsed lengths

void append_frame(std::string& out, uint8_t type, uint64_t seq,
                  std::string_view payload);

struct FrameView {
  uint64_t offset = 0;  // byte offset of the frame (crc word) in the log
  uint8_t type = 0;
  uint64_t seq = 0;
  std::string_view payload;
};

// Walks whole, CRC-valid frames and returns the byte length of that valid
// prefix. A return < image.size() means the tail is torn or corrupt.
size_t scan_frames(std::string_view image,
                   const std::function<void(const FrameView&)>& fn);

enum class FsyncPolicy : uint8_t { kAlways, kGroupCommit, kOs };

Result<FsyncPolicy> parse_fsync_policy(const std::string& s);
const char* fsync_policy_name(FsyncPolicy p);

struct WalOpts {
  FsyncPolicy policy = FsyncPolicy::kAlways;
  uint64_t group_interval_us = 100;  // blocking leader's gather window
  uint32_t group_batch = 8;          // non-blocking: sync every N appends
  bool blocking = false;             // appenders may block in wait_durable()
};

struct WalStats {
  uint64_t appends = 0;
  uint64_t syncs = 0;
  uint64_t appended_bytes = 0;
  uint64_t replayed_records = 0;
  uint64_t torn_bytes = 0;  // truncated from the tail across all replays
};

class Wal {
 public:
  Wal(std::shared_ptr<Env> env, std::string path, WalOpts opts);

  // Replays any existing log through `fn` (frames in append order), truncates
  // a torn tail in place, and opens the append handle at the end. Must be
  // called (possibly with a null fn) before append().
  Status replay_and_open(const std::function<void(const FrameView&)>& fn);

  // Appends one record and applies the fsync policy. Returns the record's
  // LSN — the log offset one past it; wait_durable(lsn) blocks until a sync
  // covers it. Under kAlways the record is durable on return.
  Result<uint64_t> append(uint8_t type, uint64_t seq, std::string_view payload);

  // Blocking-mode group commit: returns once a sync covers `lsn` (or the log
  // was reset underneath, which means a checkpoint made the record durable
  // by other means).
  Status wait_durable(uint64_t lsn);

  Status sync();   // force a barrier regardless of policy
  Status reset();  // truncate to empty (after a checkpoint supersedes it)

  uint64_t size_bytes() const;
  WalStats stats() const;
  const std::string& path() const { return path_; }
  const WalOpts& opts() const { return opts_; }

 private:
  Status sync_locked(std::unique_lock<std::mutex>& lk);

  std::shared_ptr<Env> env_;
  std::string path_;
  WalOpts opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unique_ptr<AppendFile> file_;
  uint64_t appended_ = 0;  // bytes appended this incarnation's log
  uint64_t synced_ = 0;    // bytes covered by a durability barrier
  uint32_t unsynced_appends_ = 0;
  bool leader_active_ = false;
  WalStats stats_;
};

}  // namespace bespokv::storage
