// DurableDatalet: the durability decorator every volatile engine gets when a
// durable_dir is configured. Mutations are written ahead to a CRC-framed WAL
// (fsync policy per WalOpts), then applied to the wrapped engine; periodic
// checkpoints snapshot the engine + idempotency pins atomically and truncate
// the WAL. crash_restart() models a power cut: the Env drops unsynced bytes
// (torn tails included), the engine is wiped, and the RecoveryManager
// rebuilds it from checkpoint + WAL — with the WAL disabled (the negative
// acceptance gate) the wipe is permanent, which is exactly the provable
// acked-write loss the verify harness must catch.
//
// Threading: non-blocking mode (the deterministic sim) is single-threaded
// per node. Blocking mode (thread/TCP fabrics, bench) serializes
// append+apply under an internal mutex but waits for group commit *outside*
// it, so concurrent writers batch behind one fdatasync.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/datalet/datalet.h"
#include "src/storage/checkpoint.h"
#include "src/storage/env.h"
#include "src/storage/wal.h"

namespace bespokv::obs {
class Counter;
}  // namespace bespokv::obs

namespace bespokv::storage {

// WAL record types + payload codec for KV mutations, shared between
// DurableDatalet and tLSM's native disk mode.
//   payload = u64 token | u32 klen | key | value
enum class WalRecord : uint8_t { kPut = 1, kDel = 2, kPutIfNewer = 3 };

void encode_kv_record(std::string& payload, uint64_t token,
                      std::string_view key, std::string_view value);

struct KvRecord {
  uint64_t token = 0;
  std::string_view key;
  std::string_view value;
};
Result<KvRecord> decode_kv_record(std::string_view payload);

struct DurabilityOpts {
  std::shared_ptr<Env> env;  // null = posix_env()
  std::string dir;
  FsyncPolicy policy = FsyncPolicy::kAlways;
  uint64_t group_interval_us = 100;
  uint32_t group_batch = 8;
  bool blocking = false;
  bool wal_enabled = true;
  uint64_t checkpoint_bytes = 4 << 20;  // 0 = manual checkpoints only
  CrashOpts crash;
  uint64_t crash_seed = 1;

  static DurabilityOpts from_config(const DataletConfig& cfg);
};

struct RecoveryStats {
  bool had_checkpoint = false;
  uint64_t checkpoint_entries = 0;
  uint64_t wal_records = 0;
  uint64_t torn_bytes = 0;
  uint64_t durable_seq = 0;
};

// Replays local durable state — checkpoint first, then the WAL suffix in log
// order (blind application reproduces the exact pre-crash durable state) —
// into any engine, and surfaces the recovered idempotency pins.
class RecoveryManager {
 public:
  static constexpr const char* kCheckpointFile = "CHECKPOINT";
  static constexpr const char* kWalFile = "wal.log";

  RecoveryManager(std::shared_ptr<Env> env, std::string dir);

  // `wal` is left open at the (truncated-if-torn) log tail for new appends.
  Result<RecoveryStats> recover(Datalet& engine, Wal* wal,
                                std::vector<TokenPin>* pins);

  std::string checkpoint_path() const { return dir_ + "/" + kCheckpointFile; }
  std::string wal_path() const { return dir_ + "/" + kWalFile; }

 private:
  std::shared_ptr<Env> env_;
  std::string dir_;
};

class DurableDatalet : public Datalet {
 public:
  // Recovers from `opts.dir` immediately (a fresh dir recovers to empty).
  DurableDatalet(std::unique_ptr<Datalet> inner, DurabilityOpts opts);

  const char* kind() const override { return inner_->kind(); }
  Status put(std::string_view key, std::string_view value, uint64_t seq) override;
  Result<Entry> get(std::string_view key) const override;
  Status del(std::string_view key, uint64_t seq) override;
  Status put_if_newer(std::string_view key, std::string_view value,
                      uint64_t seq) override;
  Result<std::vector<KV>> scan(std::string_view start, std::string_view end,
                               uint32_t limit) const override;
  bool supports_scan() const override { return inner_->supports_scan(); }
  size_t size() const override;
  void for_each(const std::function<void(std::string_view, const Entry&)>& fn)
      const override;
  void clear() override;

  Status crash_restart() override;
  void set_op_token(uint64_t token) override { op_token_ = token; }
  uint64_t durable_seq() const override;
  bool durable() const override {
    return opts_.wal_enabled && opts_.policy == FsyncPolicy::kAlways;
  }
  std::vector<TokenPin> token_pins() const override;
  void attach_metrics(obs::MetricsRegistry& m) override;

  Status checkpoint();

  Datalet* inner() { return inner_.get(); }
  Wal* wal() { return wal_.get(); }
  const RecoveryStats& last_recovery() const { return last_recovery_; }
  uint64_t wal_bytes() const { return wal_ ? wal_->size_bytes() : 0; }
  static constexpr size_t kMaxPins = 4096;

 private:
  Status log_and_apply(WalRecord type, std::string_view key,
                       std::string_view value, uint64_t seq);
  Status recover_locked();
  Status checkpoint_locked();
  void pin_locked(uint64_t token, uint64_t seq);
  void publish_metrics_locked();

  std::unique_ptr<Datalet> inner_;
  DurabilityOpts opts_;
  std::unique_ptr<Wal> wal_;
  RecoveryManager rm_;

  // Guards inner_ + pins in blocking mode; uncontended on the sim.
  mutable std::mutex mu_;
  uint64_t op_token_ = 0;
  uint64_t durable_seq_ = 0;
  uint64_t incarnation_ = 0;
  RecoveryStats last_recovery_;
  std::unordered_map<uint64_t, TokenPin> pins_;
  std::deque<uint64_t> pin_order_;

  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_syncs_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  obs::Counter* m_torn_bytes_ = nullptr;
  uint64_t seen_syncs_ = 0;
  uint64_t seen_torn_ = 0;
};

}  // namespace bespokv::storage
