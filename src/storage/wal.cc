#include "src/storage/wal.h"

#include <algorithm>
#include <chrono>

#include "src/common/hash.h"

namespace bespokv::storage {

void append_frame(std::string& out, uint8_t type, uint64_t seq,
                  std::string_view payload) {
  std::string body;
  body.reserve(kFrameMetaBytes + payload.size());
  body.push_back(char(type));
  put_u64(body, seq);
  body.append(payload);
  put_u32(out, crc32c(body));
  put_u32(out, uint32_t(body.size()));
  out.append(body);
}

size_t scan_frames(std::string_view image,
                   const std::function<void(const FrameView&)>& fn) {
  size_t off = 0;
  while (image.size() - off >= kFrameHeaderBytes) {
    const uint32_t crc = get_u32(image.data() + off);
    const uint32_t len = get_u32(image.data() + off + 4);
    if (len < kFrameMetaBytes || len > kMaxFrameBody) break;
    if (image.size() - off - kFrameHeaderBytes < len) break;  // torn tail
    const std::string_view body = image.substr(off + kFrameHeaderBytes, len);
    if (crc32c(body) != crc) break;  // corrupt: distrust everything after
    if (fn) {
      FrameView f;
      f.offset = off;
      f.type = uint8_t(body[0]);
      f.seq = get_u64(body.data() + 1);
      f.payload = body.substr(kFrameMetaBytes);
      fn(f);
    }
    off += kFrameHeaderBytes + len;
  }
  return off;
}

Result<FsyncPolicy> parse_fsync_policy(const std::string& s) {
  if (s == "always" || s.empty()) return FsyncPolicy::kAlways;
  if (s == "groupcommit") return FsyncPolicy::kGroupCommit;
  if (s == "os") return FsyncPolicy::kOs;
  return Status::Invalid("unknown fsync policy: " + s);
}

const char* fsync_policy_name(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kGroupCommit:
      return "groupcommit";
    case FsyncPolicy::kOs:
      return "os";
  }
  return "always";
}

Wal::Wal(std::shared_ptr<Env> env, std::string path, WalOpts opts)
    : env_(std::move(env)), path_(std::move(path)), opts_(opts) {}

Status Wal::replay_and_open(const std::function<void(const FrameView&)>& fn) {
  std::unique_lock<std::mutex> lk(mu_);
  file_.reset();
  uint64_t valid = 0;
  if (env_->exists(path_)) {
    auto image = env_->read_file(path_);
    if (!image.ok()) return image.status();
    uint64_t records = 0;
    valid = scan_frames(image.value(), [&](const FrameView& f) {
      ++records;
      if (fn) fn(f);
    });
    stats_.replayed_records += records;
    if (valid < image.value().size()) {
      stats_.torn_bytes += image.value().size() - valid;
      BKV_RETURN_IF_ERROR(env_->truncate_file(path_, valid));
    }
  }
  auto f = env_->open_append(path_);
  if (!f.ok()) return f.status();
  file_ = std::move(f.value());
  appended_ = synced_ = valid;
  unsynced_appends_ = 0;
  return Status::Ok();
}

Result<uint64_t> Wal::append(uint8_t type, uint64_t seq,
                             std::string_view payload) {
  std::string rec;
  rec.reserve(kFrameOverhead + payload.size());
  append_frame(rec, type, seq, payload);

  std::unique_lock<std::mutex> lk(mu_);
  if (file_ == nullptr) return Status::Internal("wal not opened");
  BKV_RETURN_IF_ERROR(file_->append(rec));
  appended_ += rec.size();
  ++stats_.appends;
  stats_.appended_bytes += rec.size();
  const uint64_t lsn = appended_;

  switch (opts_.policy) {
    case FsyncPolicy::kAlways:
      BKV_RETURN_IF_ERROR(sync_locked(lk));
      break;
    case FsyncPolicy::kGroupCommit:
      if (!opts_.blocking && ++unsynced_appends_ >= opts_.group_batch) {
        BKV_RETURN_IF_ERROR(sync_locked(lk));
      }
      break;
    case FsyncPolicy::kOs:
      break;
  }
  return lsn;
}

Status Wal::wait_durable(uint64_t lsn) {
  if (opts_.policy == FsyncPolicy::kOs) return Status::Ok();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // lsn > appended_ means a reset (checkpoint) swallowed the record — its
    // effects are durable in the checkpoint, which is strictly better.
    if (synced_ >= lsn || lsn > appended_) return Status::Ok();
    if (!leader_active_) {
      leader_active_ = true;
      if (opts_.policy == FsyncPolicy::kGroupCommit &&
          opts_.group_interval_us > 0) {
        // Gather window: let concurrent appenders join this commit group.
        // Spurious wakeups only shorten the nap — harmless.
        cv_.wait_for(lk, std::chrono::microseconds(opts_.group_interval_us));
      }
      const Status s = sync_locked(lk);
      leader_active_ = false;
      cv_.notify_all();
      if (!s.ok()) return s;
    } else {
      cv_.wait(lk, [&] {
        return synced_ >= lsn || lsn > appended_ || !leader_active_;
      });
    }
  }
}

Status Wal::sync_locked(std::unique_lock<std::mutex>& lk) {
  const uint64_t target = appended_;
  if (synced_ >= target) return Status::Ok();
  AppendFile* f = file_.get();
  // Sync outside the log lock so appenders keep batching behind it. Writes
  // racing the fdatasync are fine: they either make this barrier (bonus
  // durability) or the next one.
  lk.unlock();
  const Status s = f->sync();
  lk.lock();
  if (s.ok()) {
    synced_ = std::max(synced_, target);
    ++stats_.syncs;
    unsynced_appends_ = 0;
  }
  return s;
}

Status Wal::sync() {
  std::unique_lock<std::mutex> lk(mu_);
  return sync_locked(lk);
}

Status Wal::reset() {
  std::unique_lock<std::mutex> lk(mu_);
  file_.reset();
  BKV_RETURN_IF_ERROR(env_->truncate_file(path_, 0));
  auto f = env_->open_append(path_);
  if (!f.ok()) return f.status();
  file_ = std::move(f.value());
  appended_ = synced_ = 0;
  unsynced_appends_ = 0;
  cv_.notify_all();  // release waiters whose records a checkpoint absorbed
  return Status::Ok();
}

uint64_t Wal::size_bytes() const {
  std::lock_guard<std::mutex> g(mu_);
  return appended_;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

}  // namespace bespokv::storage
