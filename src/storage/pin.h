// A durable idempotency-token pin: token -> (applied version, reply code).
// Engines persist these alongside the data (WAL records and checkpoints) so
// a node restarted from disk still refuses to re-execute a retried mutation
// it already applied — the in-memory dedup windows (controlet and sharded
// service) are reseeded from them on startup.
#pragma once

#include <cstdint>

namespace bespokv::storage {

struct TokenPin {
  uint64_t token = 0;
  uint64_t seq = 0;   // version the mutation was applied at
  uint8_t code = 0;   // Code of the original reply (kOk unless recorded)
};

}  // namespace bespokv::storage
