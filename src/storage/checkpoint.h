// Checkpoint files: a point-in-time snapshot of an engine's entries plus its
// idempotency-token pins and the durable seq floor, published atomically
// (tmp-write + sync + rename) so a crash never leaves a half checkpoint.
// Once a checkpoint lands, the WAL it supersedes is truncated; recovery is
// "load checkpoint, replay WAL suffix in log order".
//
// Layout (little-endian):
//   u32 magic | u64 durable_seq | u64 nentries | u64 npins
//   entries:  (u32 klen | u32 vlen | u64 seq | key | value)*
//   pins:     (u64 token | u64 seq | u8 code)*
//   u32 crc          (CRC32C over everything before it)
// Trailing bytes past the CRC are ignored: a power cut may append garbage to
// files, and a checkpoint must not be poisoned by it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/env.h"
#include "src/storage/pin.h"

namespace bespokv::storage {

struct CheckpointEntry {
  std::string key;
  std::string value;
  uint64_t seq = 0;
};

struct CheckpointData {
  uint64_t durable_seq = 0;
  std::vector<CheckpointEntry> entries;
  std::vector<TokenPin> pins;  // oldest first
};

Status write_checkpoint(Env& env, const std::string& path,
                        const CheckpointData& data);
Result<CheckpointData> read_checkpoint(Env& env, const std::string& path);

}  // namespace bespokv::storage
