#include "src/storage/sstable.h"

#include <algorithm>

#include "src/common/hash.h"
#include "src/storage/wal.h"  // little-endian put/get helpers

namespace bespokv::storage {

namespace {

constexpr uint32_t kMagic = 0x7462564bu;    // "KVbt"
constexpr size_t kEntryHeader = 17;         // klen + vlen + seq + flags
constexpr size_t kFooterBytes = 32;
constexpr uint8_t kFlagTombstone = 0x1;

}  // namespace

SSTableWriter::SSTableWriter(std::shared_ptr<Env> env, std::string path)
    : env_(std::move(env)), path_(std::move(path)) {
  auto f = env_->open_append(path_);
  if (!f.ok()) {
    open_status_ = f.status();
    return;
  }
  file_ = std::move(f.value());
  open_status_ = Status::Ok();
}

Status SSTableWriter::add(std::string_view key, std::string_view value,
                          uint64_t seq, bool tombstone) {
  BKV_RETURN_IF_ERROR(open_status_);
  if (finished_) return Status::Internal("sstable already finished");
  if (!keys_.empty() && key <= keys_.back()) {
    return Status::Invalid("sstable keys must be strictly ascending");
  }
  std::string rec;
  rec.reserve(kEntryHeader + key.size() + value.size());
  put_u32(rec, uint32_t(key.size()));
  put_u32(rec, uint32_t(value.size()));
  put_u64(rec, seq);
  rec.push_back(char(tombstone ? kFlagTombstone : 0));
  rec.append(key);
  rec.append(value);
  BKV_RETURN_IF_ERROR(file_->append(rec));
  offsets_.push_back(file_bytes_);
  keys_.emplace_back(key);
  file_bytes_ += rec.size();
  return Status::Ok();
}

Status SSTableWriter::finish() {
  BKV_RETURN_IF_ERROR(open_status_);
  if (finished_) return Status::Internal("sstable already finished");
  finished_ = true;

  BloomFilter bloom(keys_.size());
  for (const std::string& k : keys_) bloom.add(k);

  std::string tail;
  const uint64_t bloom_off = file_bytes_;
  put_u64(tail, uint64_t(bloom.bit_count()));
  put_u32(tail, uint32_t(bloom.words().size()));
  for (const uint64_t w : bloom.words()) put_u64(tail, w);
  const uint64_t index_off = file_bytes_ + tail.size();
  for (const uint64_t off : offsets_) put_u64(tail, off);

  std::string footer;
  put_u64(footer, bloom_off);
  put_u64(footer, index_off);
  put_u64(footer, uint64_t(offsets_.size()));
  std::string crc_input = tail;
  crc_input.append(footer);
  put_u32(footer, crc32c(crc_input));
  put_u32(footer, kMagic);
  tail.append(footer);

  BKV_RETURN_IF_ERROR(file_->append(tail));
  file_bytes_ += tail.size();
  return file_->sync();
}

SSTableReader::SSTableReader(std::shared_ptr<FileView> view,
                             std::vector<uint64_t> offsets, BloomFilter bloom)
    : view_(std::move(view)),
      offsets_(std::move(offsets)),
      bloom_(std::move(bloom)) {
  if (!offsets_.empty()) {
    min_key_ = key(0);
    max_key_ = key(offsets_.size() - 1);
  }
}

Result<std::shared_ptr<SSTableReader>> SSTableReader::open(
    std::shared_ptr<Env> env, const std::string& path) {
  auto v = env->map_file(path);
  if (!v.ok()) return v.status();
  std::shared_ptr<FileView> view = v.value();
  const std::string_view data = view->data();
  if (data.size() < kFooterBytes) {
    return Status::Corruption("sstable too short: " + path);
  }
  const char* foot = data.data() + data.size() - kFooterBytes;
  if (get_u32(foot + 28) != kMagic) {
    return Status::Corruption("sstable bad magic: " + path);
  }
  const uint64_t bloom_off = get_u64(foot);
  const uint64_t index_off = get_u64(foot + 8);
  const uint64_t count = get_u64(foot + 16);
  const uint32_t crc = get_u32(foot + 24);
  if (bloom_off > index_off || index_off > data.size() - kFooterBytes ||
      (data.size() - kFooterBytes - index_off) / 8 < count) {
    return Status::Corruption("sstable bad footer: " + path);
  }
  std::string crc_input(data.substr(bloom_off, data.size() - kFooterBytes - bloom_off));
  crc_input.append(foot, 24);
  if (crc32c(crc_input) != crc) {
    return Status::Corruption("sstable crc mismatch: " + path);
  }

  if (index_off - bloom_off < 12) {
    return Status::Corruption("sstable bad bloom block: " + path);
  }
  const uint64_t bits = get_u64(data.data() + bloom_off);
  const uint32_t nwords = get_u32(data.data() + bloom_off + 8);
  if (index_off - bloom_off - 12 < uint64_t(nwords) * 8) {
    return Status::Corruption("sstable bad bloom block: " + path);
  }
  std::vector<uint64_t> words(nwords);
  for (uint32_t i = 0; i < nwords; ++i) {
    words[i] = get_u64(data.data() + bloom_off + 12 + uint64_t(i) * 8);
  }

  std::vector<uint64_t> offsets(count);
  for (uint64_t i = 0; i < count; ++i) {
    offsets[i] = get_u64(data.data() + index_off + i * 8);
    if (offsets[i] + kEntryHeader > bloom_off) {
      return Status::Corruption("sstable bad entry offset: " + path);
    }
    const uint32_t klen = get_u32(data.data() + offsets[i]);
    const uint32_t vlen = get_u32(data.data() + offsets[i] + 4);
    if (offsets[i] + kEntryHeader + uint64_t(klen) + vlen > bloom_off) {
      return Status::Corruption("sstable entry overruns data block: " + path);
    }
  }

  return std::shared_ptr<SSTableReader>(new SSTableReader(
      std::move(view), std::move(offsets),
      BloomFilter(size_t(bits), std::move(words))));
}

SSTableEntry SSTableReader::entry(size_t i) const {
  const std::string_view data = view_->data();
  const char* p = data.data() + offsets_[i];
  const uint32_t klen = get_u32(p);
  const uint32_t vlen = get_u32(p + 4);
  SSTableEntry e;
  e.seq = get_u64(p + 8);
  e.tombstone = (uint8_t(p[16]) & kFlagTombstone) != 0;
  e.key = data.substr(offsets_[i] + kEntryHeader, klen);
  e.value = data.substr(offsets_[i] + kEntryHeader + klen, vlen);
  return e;
}

std::string_view SSTableReader::key(size_t i) const {
  const std::string_view data = view_->data();
  const uint32_t klen = get_u32(data.data() + offsets_[i]);
  return data.substr(offsets_[i] + kEntryHeader, klen);
}

bool SSTableReader::may_contain(std::string_view k) const {
  if (offsets_.empty() || k < min_key_ || k > max_key_) return false;
  return bloom_.may_contain(k);
}

size_t SSTableReader::lower_bound(std::string_view k) const {
  size_t lo = 0, hi = offsets_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (key(mid) < k) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::optional<SSTableEntry> SSTableReader::find(std::string_view k) const {
  const size_t i = lower_bound(k);
  if (i >= offsets_.size() || key(i) != k) return std::nullopt;
  return entry(i);
}

}  // namespace bespokv::storage
