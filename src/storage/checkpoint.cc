#include "src/storage/checkpoint.h"

#include "src/common/hash.h"
#include "src/storage/wal.h"  // little-endian put/get helpers

namespace bespokv::storage {

namespace {
constexpr uint32_t kMagic = 0x6b63564bu;  // "KVck"
}  // namespace

Status write_checkpoint(Env& env, const std::string& path,
                        const CheckpointData& data) {
  std::string out;
  put_u32(out, kMagic);
  put_u64(out, data.durable_seq);
  put_u64(out, uint64_t(data.entries.size()));
  put_u64(out, uint64_t(data.pins.size()));
  for (const CheckpointEntry& e : data.entries) {
    put_u32(out, uint32_t(e.key.size()));
    put_u32(out, uint32_t(e.value.size()));
    put_u64(out, e.seq);
    out.append(e.key);
    out.append(e.value);
  }
  for (const TokenPin& p : data.pins) {
    put_u64(out, p.token);
    put_u64(out, p.seq);
    out.push_back(char(p.code));
  }
  put_u32(out, crc32c(std::string_view(out)));
  return env.write_file_durable(path, out);
}

Result<CheckpointData> read_checkpoint(Env& env, const std::string& path) {
  auto image = env.read_file(path);
  if (!image.ok()) return image.status();
  const std::string& in = image.value();
  size_t off = 0;
  auto need = [&](size_t n) { return in.size() - off >= n; };
  if (!need(28) || get_u32(in.data()) != kMagic) {
    return Status::Corruption("checkpoint bad header: " + path);
  }
  CheckpointData data;
  data.durable_seq = get_u64(in.data() + 4);
  const uint64_t nentries = get_u64(in.data() + 12);
  const uint64_t npins = get_u64(in.data() + 20);
  off = 28;
  data.entries.reserve(size_t(nentries));
  for (uint64_t i = 0; i < nentries; ++i) {
    if (!need(16)) return Status::Corruption("checkpoint truncated: " + path);
    const uint32_t klen = get_u32(in.data() + off);
    const uint32_t vlen = get_u32(in.data() + off + 4);
    const uint64_t seq = get_u64(in.data() + off + 8);
    off += 16;
    if (!need(uint64_t(klen) + vlen)) {
      return Status::Corruption("checkpoint truncated: " + path);
    }
    CheckpointEntry e;
    e.key = in.substr(off, klen);
    e.value = in.substr(off + klen, vlen);
    e.seq = seq;
    off += uint64_t(klen) + vlen;
    data.entries.push_back(std::move(e));
  }
  data.pins.reserve(size_t(npins));
  for (uint64_t i = 0; i < npins; ++i) {
    if (!need(17)) return Status::Corruption("checkpoint truncated: " + path);
    TokenPin p;
    p.token = get_u64(in.data() + off);
    p.seq = get_u64(in.data() + off + 8);
    p.code = uint8_t(in[off + 16]);
    off += 17;
    data.pins.push_back(p);
  }
  if (!need(4)) return Status::Corruption("checkpoint truncated: " + path);
  if (crc32c(std::string_view(in.data(), off)) != get_u32(in.data() + off)) {
    return Status::Corruption("checkpoint crc mismatch: " + path);
  }
  return data;
}

}  // namespace bespokv::storage
