// Storage environment: the narrow filesystem surface the durability layer
// (WAL, SSTables, checkpoints) is written against.
//
// Two backends:
//  - PosixEnv (posix_env()): real files; fdatasync for durability barriers,
//    rename+parent-fsync for atomic replacement, mmap for read-only views.
//  - MemEnv: an in-memory filesystem with an explicit power-loss model. Every
//    file tracks its synced prefix separately from its written size;
//    MemEnv::crash() discards the unsynced tail the way a power cut would —
//    keeping a seeded-random prefix of it (a torn write) and optionally
//    appending garbage to WAL files (a torn in-flight append caught by the
//    outage). The deterministic sim runs whole clusters against one MemEnv,
//    so the verify harness can crash every node and prove recovery correct.
//
// Durability contract: bytes are guaranteed to survive crash() only after
// AppendFile::sync() (or write_file_durable / rename_file, which imply a
// barrier). This mirrors POSIX fdatasync semantics exactly, so code proven
// correct against MemEnv carries over to real disks.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace bespokv::storage {

// Power-loss knobs for MemEnv::crash().
struct CrashOpts {
  // Keep a random prefix of each file's unsynced tail instead of dropping it
  // whole, and append random garbage to WAL files (suffix match below): both
  // produce the torn/corrupt tails that CRC framing must truncate on replay.
  bool torn_writes = true;
  uint32_t max_garbage = 24;          // torn-append garbage cap, bytes
  std::string wal_suffix = ".log";    // files eligible for garbage appends
};

// An append-only write handle. Not thread-safe by itself; callers serialize
// (the Wal does, under its own mutex).
class AppendFile {
 public:
  virtual ~AppendFile() = default;
  virtual Status append(std::string_view data) = 0;
  virtual Status sync() = 0;  // durability barrier (fdatasync)
  virtual uint64_t size() const = 0;
};

// A read-only view of a whole file (mmap on PosixEnv). Keeps the underlying
// bytes alive for the view's lifetime; concurrent appends to the same path
// are not reflected (SSTables are immutable once written, so this never
// matters in practice).
class FileView {
 public:
  virtual ~FileView() = default;
  virtual std::string_view data() const = 0;
};

class Env {
 public:
  virtual ~Env() = default;

  virtual Status mkdirs(const std::string& dir) = 0;
  virtual bool exists(const std::string& path) const = 0;
  // Names (not paths) of regular files directly under `dir`; missing dir is
  // an empty list, not an error.
  virtual Result<std::vector<std::string>> list_dir(const std::string& dir) const = 0;
  virtual Status remove_file(const std::string& path) = 0;
  // Atomic durable replace: `to` either keeps its old content or has all of
  // `from`'s — never a mix, even across a crash.
  virtual Status rename_file(const std::string& from, const std::string& to) = 0;
  virtual Status truncate_file(const std::string& path, uint64_t len) = 0;
  virtual Result<std::string> read_file(const std::string& path) const = 0;
  virtual Result<std::shared_ptr<FileView>> map_file(const std::string& path) const = 0;
  virtual Result<std::unique_ptr<AppendFile>> open_append(const std::string& path) = 0;

  // tmp-write + sync + atomic rename; the standard checkpoint/manifest
  // publication step. Default implementation composes the primitives above.
  virtual Status write_file_durable(const std::string& path, std::string_view data);

  // Power-loss hook: drop unsynced bytes of every file under `dir` per
  // `opts`. A no-op on real filesystems (a crashed process loses nothing it
  // already wrote; modeling machine-level power loss there is the fault
  // injector's job, not the Env's).
  virtual void crash(const std::string& dir, uint64_t seed, const CrashOpts& opts) {
    (void)dir, (void)seed, (void)opts;
  }
};

// Process-wide PosixEnv singleton.
std::shared_ptr<Env> posix_env();

class MemEnv : public Env {
 public:
  Status mkdirs(const std::string& dir) override;
  bool exists(const std::string& path) const override;
  Result<std::vector<std::string>> list_dir(const std::string& dir) const override;
  Status remove_file(const std::string& path) override;
  Status rename_file(const std::string& from, const std::string& to) override;
  Status truncate_file(const std::string& path, uint64_t len) override;
  Result<std::string> read_file(const std::string& path) const override;
  Result<std::shared_ptr<FileView>> map_file(const std::string& path) const override;
  Result<std::unique_ptr<AppendFile>> open_append(const std::string& path) override;
  void crash(const std::string& dir, uint64_t seed, const CrashOpts& opts) override;

  // Test introspection.
  uint64_t synced_bytes(const std::string& path) const;
  uint64_t written_bytes(const std::string& path) const;

 private:
  friend class MemAppendFile;
  struct MemFile {
    std::string data;
    uint64_t synced = 0;  // crash() keeps only [0, synced) for sure
  };
  // Guards files_; MemEnv is shared across every node of a simulated cluster
  // and across appender threads in storage tests.
  mutable std::mutex mu_;
  std::map<std::string, MemFile> files_;
};

}  // namespace bespokv::storage
