#include "src/storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/rng.h"

namespace bespokv::storage {

namespace {

Status errno_status(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

std::string parent_dir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status Env::write_file_durable(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  if (exists(tmp)) BKV_RETURN_IF_ERROR(remove_file(tmp));
  auto f = open_append(tmp);
  if (!f.ok()) return f.status();
  BKV_RETURN_IF_ERROR(f.value()->append(data));
  BKV_RETURN_IF_ERROR(f.value()->sync());
  return rename_file(tmp, path);
}

// ---------------------------------------------------------------- PosixEnv

namespace {

class PosixAppendFile : public AppendFile {
 public:
  PosixAppendFile(int fd, uint64_t size) : fd_(fd), size_(size) {}
  ~PosixAppendFile() override {
    if (fd_ >= 0) ::close(fd_);
  }
  Status append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_status("write");
      }
      p += n;
      left -= size_t(n);
    }
    size_ += data.size();
    return Status::Ok();
  }
  Status sync() override {
    if (::fdatasync(fd_) != 0) return errno_status("fdatasync");
    return Status::Ok();
  }
  uint64_t size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
};

class PosixFileView : public FileView {
 public:
  PosixFileView(void* base, size_t len) : base_(base), len_(len) {}
  ~PosixFileView() override {
    if (base_ != nullptr && len_ > 0) ::munmap(base_, len_);
  }
  std::string_view data() const override {
    return {static_cast<const char*>(base_), len_};
  }

 private:
  void* base_;
  size_t len_;
};

class PosixEnv : public Env {
 public:
  Status mkdirs(const std::string& dir) override {
    std::string cur;
    size_t i = 0;
    while (i <= dir.size()) {
      if (i == dir.size() || dir[i] == '/') {
        cur = dir.substr(0, i == dir.size() ? i : i + 1);
        if (!cur.empty() && cur != "/" &&
            ::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) {
          return errno_status("mkdir " + cur);
        }
      }
      ++i;
    }
    return Status::Ok();
  }

  bool exists(const std::string& path) const override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<std::vector<std::string>> list_dir(const std::string& dir) const override {
    std::vector<std::string> out;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
      if (errno == ENOENT) return out;
      return errno_status("opendir " + dir);
    }
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") out.push_back(name);
    }
    ::closedir(d);
    return out;
  }

  Status remove_file(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return errno_status("unlink " + path);
    }
    return Status::Ok();
  }

  Status rename_file(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return errno_status("rename " + from);
    }
    // The rename itself must survive a crash: fsync the parent directory.
    const int dfd = ::open(parent_dir(to).c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
    return Status::Ok();
  }

  Status truncate_file(const std::string& path, uint64_t len) override {
    if (::truncate(path.c_str(), off_t(len)) != 0) {
      return errno_status("truncate " + path);
    }
    return Status::Ok();
  }

  Result<std::string> read_file(const std::string& path) const override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return errno_status("open " + path);
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return errno_status("read " + path);
      }
      if (n == 0) break;
      out.append(buf, size_t(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::shared_ptr<FileView>> map_file(const std::string& path) const override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return errno_status("open " + path);
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return errno_status("fstat " + path);
    }
    if (st.st_size == 0) {
      ::close(fd);
      return std::shared_ptr<FileView>(new PosixFileView(nullptr, 0));
    }
    void* base = ::mmap(nullptr, size_t(st.st_size), PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) return errno_status("mmap " + path);
    return std::shared_ptr<FileView>(new PosixFileView(base, size_t(st.st_size)));
  }

  Result<std::unique_ptr<AppendFile>> open_append(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd < 0) return errno_status("open " + path);
    struct stat st {};
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return errno_status("fstat " + path);
    }
    return std::unique_ptr<AppendFile>(
        new PosixAppendFile(fd, uint64_t(st.st_size)));
  }
};

}  // namespace

std::shared_ptr<Env> posix_env() {
  static std::shared_ptr<Env> env = std::make_shared<PosixEnv>();
  return env;
}

// ------------------------------------------------------------------ MemEnv

namespace {

class MemFileView : public FileView {
 public:
  explicit MemFileView(std::string snapshot) : snapshot_(std::move(snapshot)) {}
  std::string_view data() const override { return snapshot_; }

 private:
  std::string snapshot_;
};

}  // namespace

class MemAppendFile : public AppendFile {
 public:
  MemAppendFile(MemEnv* env, std::string path) : env_(env), path_(std::move(path)) {}
  Status append(std::string_view data) override {
    std::lock_guard<std::mutex> g(env_->mu_);
    env_->files_[path_].data.append(data);
    return Status::Ok();
  }
  Status sync() override {
    std::lock_guard<std::mutex> g(env_->mu_);
    auto& f = env_->files_[path_];
    f.synced = f.data.size();
    return Status::Ok();
  }
  uint64_t size() const override {
    std::lock_guard<std::mutex> g(env_->mu_);
    return env_->files_[path_].data.size();
  }

 private:
  MemEnv* env_;
  std::string path_;
};

Status MemEnv::mkdirs(const std::string&) { return Status::Ok(); }

bool MemEnv::exists(const std::string& path) const {
  std::lock_guard<std::mutex> g(mu_);
  return files_.count(path) > 0;
}

Result<std::vector<std::string>> MemEnv::list_dir(const std::string& dir) const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<std::string> out;
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const std::string rest = it->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) out.push_back(rest);
  }
  return out;
}

Status MemEnv::remove_file(const std::string& path) {
  std::lock_guard<std::mutex> g(mu_);
  files_.erase(path);
  return Status::Ok();
}

Status MemEnv::rename_file(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound(from);
  MemFile f = std::move(it->second);
  // The rename is a durability barrier, like rename+dirsync on POSIX.
  f.synced = f.data.size();
  files_.erase(it);
  files_[to] = std::move(f);
  return Status::Ok();
}

Status MemEnv::truncate_file(const std::string& path, uint64_t len) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  if (len < it->second.data.size()) it->second.data.resize(len);
  it->second.synced = std::min<uint64_t>(it->second.synced, len);
  return Status::Ok();
}

Result<std::string> MemEnv::read_file(const std::string& path) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return it->second.data;
}

Result<std::shared_ptr<FileView>> MemEnv::map_file(const std::string& path) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  return std::shared_ptr<FileView>(new MemFileView(it->second.data));
}

Result<std::unique_ptr<AppendFile>> MemEnv::open_append(const std::string& path) {
  {
    std::lock_guard<std::mutex> g(mu_);
    files_.try_emplace(path);  // creation is durable once something syncs
  }
  return std::unique_ptr<AppendFile>(new MemAppendFile(this, path));
}

void MemEnv::crash(const std::string& dir, uint64_t seed, const CrashOpts& opts) {
  std::lock_guard<std::mutex> g(mu_);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  for (auto& [path, f] : files_) {
    if (path.compare(0, prefix.size(), prefix) != 0) continue;
    const uint64_t tail = f.data.size() - f.synced;
    if (tail > 0) {
      // Power cut mid-write: the synced prefix survives; of the unsynced
      // tail, a random prefix may have reached the platter (a torn write).
      const uint64_t keep = opts.torn_writes ? rng.next_u64(tail + 1) : 0;
      f.data.resize(f.synced + keep);
    }
    const bool is_wal =
        !opts.wal_suffix.empty() && path.size() >= opts.wal_suffix.size() &&
        path.compare(path.size() - opts.wal_suffix.size(),
                     opts.wal_suffix.size(), opts.wal_suffix) == 0;
    if (opts.torn_writes && is_wal && opts.max_garbage > 0 &&
        rng.next_bool(0.5)) {
      // Torn in-flight append: the outage caught a WAL write half-issued, so
      // the tail holds garbage that replay must CRC-reject and truncate.
      const uint64_t n = rng.next_in(1, opts.max_garbage);
      for (uint64_t i = 0; i < n; ++i) {
        f.data.push_back(char(rng.next_u64(256)));
      }
    }
    // Whatever survived the cut *is* the on-disk state now.
    f.synced = f.data.size();
  }
}

uint64_t MemEnv::synced_bytes(const std::string& path) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.synced;
}

uint64_t MemEnv::written_bytes(const std::string& path) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second.data.size();
}

}  // namespace bespokv::storage
