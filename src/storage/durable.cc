#include "src/storage/durable.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace bespokv::storage {

void encode_kv_record(std::string& payload, uint64_t token,
                      std::string_view key, std::string_view value) {
  payload.reserve(payload.size() + 12 + key.size() + value.size());
  put_u64(payload, token);
  put_u32(payload, uint32_t(key.size()));
  payload.append(key);
  payload.append(value);
}

Result<KvRecord> decode_kv_record(std::string_view payload) {
  if (payload.size() < 12) return Status::Corruption("kv record too short");
  KvRecord r;
  r.token = get_u64(payload.data());
  const uint32_t klen = get_u32(payload.data() + 8);
  if (payload.size() - 12 < klen) {
    return Status::Corruption("kv record key overruns payload");
  }
  r.key = payload.substr(12, klen);
  r.value = payload.substr(12 + klen);
  return r;
}

DurabilityOpts DurabilityOpts::from_config(const DataletConfig& cfg) {
  DurabilityOpts o;
  o.env = cfg.env ? cfg.env : posix_env();
  o.dir = cfg.durable_dir;
  auto p = parse_fsync_policy(cfg.fsync);
  o.policy = p.ok() ? p.value() : FsyncPolicy::kAlways;
  o.group_interval_us = cfg.group_interval_us;
  o.group_batch = cfg.group_batch;
  o.blocking = cfg.durable_blocking;
  o.wal_enabled = !cfg.wal_disable;
  o.checkpoint_bytes = cfg.checkpoint_bytes;
  o.crash.torn_writes = cfg.torn_writes;
  o.crash_seed = cfg.crash_seed;
  return o;
}

// ---------------------------------------------------------- RecoveryManager

RecoveryManager::RecoveryManager(std::shared_ptr<Env> env, std::string dir)
    : env_(std::move(env)), dir_(std::move(dir)) {}

Result<RecoveryStats> RecoveryManager::recover(Datalet& engine, Wal* wal,
                                               std::vector<TokenPin>* pins) {
  RecoveryStats st;
  if (pins) pins->clear();

  if (env_->exists(checkpoint_path())) {
    auto cp = read_checkpoint(*env_, checkpoint_path());
    if (!cp.ok()) return cp.status();
    st.had_checkpoint = true;
    st.checkpoint_entries = cp.value().entries.size();
    st.durable_seq = cp.value().durable_seq;
    for (const CheckpointEntry& e : cp.value().entries) {
      BKV_RETURN_IF_ERROR(engine.put(e.key, e.value, e.seq));
    }
    if (pins) *pins = cp.value().pins;
  }

  // Blind replay in log order: the checkpoint is consistent with some log
  // prefix, and per key the *last* record wins, so replaying the whole
  // surviving log over it lands on exactly the pre-crash durable state —
  // even when a crash raced the post-checkpoint WAL truncation.
  if (wal != nullptr) {
    const uint64_t torn_before = wal->stats().torn_bytes;
    Status apply_status = Status::Ok();
    const Status s = wal->replay_and_open([&](const FrameView& f) {
      if (!apply_status.ok()) return;
      auto rec = decode_kv_record(f.payload);
      if (!rec.ok()) {
        apply_status = rec.status();
        return;
      }
      ++st.wal_records;
      st.durable_seq = std::max(st.durable_seq, f.seq);
      switch (WalRecord(f.type)) {
        case WalRecord::kPut:
          apply_status = engine.put(rec.value().key, rec.value().value, f.seq);
          break;
        case WalRecord::kPutIfNewer:
          apply_status =
              engine.put_if_newer(rec.value().key, rec.value().value, f.seq);
          break;
        case WalRecord::kDel: {
          const Status d = engine.del(rec.value().key, f.seq);
          if (!d.ok() && d.code() != Code::kNotFound) apply_status = d;
          break;
        }
      }
      if (apply_status.ok() && rec.value().token != 0 && pins != nullptr) {
        pins->push_back(TokenPin{rec.value().token, f.seq, uint8_t(Code::kOk)});
      }
    });
    BKV_RETURN_IF_ERROR(s);
    BKV_RETURN_IF_ERROR(apply_status);
    st.torn_bytes = wal->stats().torn_bytes - torn_before;
  }
  return st;
}

// ----------------------------------------------------------- DurableDatalet

DurableDatalet::DurableDatalet(std::unique_ptr<Datalet> inner,
                               DurabilityOpts opts)
    : inner_(std::move(inner)),
      opts_(std::move(opts)),
      rm_(opts_.env ? opts_.env : posix_env(), opts_.dir) {
  if (opts_.env == nullptr) opts_.env = posix_env();
  opts_.env->mkdirs(opts_.dir);
  if (opts_.wal_enabled) {
    WalOpts w;
    w.policy = opts_.policy;
    w.group_interval_us = opts_.group_interval_us;
    w.group_batch = opts_.group_batch;
    w.blocking = opts_.blocking;
    wal_ = std::make_unique<Wal>(opts_.env, rm_.wal_path(), w);
  }
  std::lock_guard<std::mutex> g(mu_);
  recover_locked();
}

Status DurableDatalet::recover_locked() {
  std::vector<TokenPin> pins;
  auto st = rm_.recover(*inner_, wal_.get(), &pins);
  if (!st.ok()) return st.status();
  last_recovery_ = st.value();
  durable_seq_ = last_recovery_.durable_seq;
  pins_.clear();
  pin_order_.clear();
  for (const TokenPin& p : pins) pin_locked(p.token, p.seq);
  if (m_recoveries_ != nullptr) m_recoveries_->inc();
  return Status::Ok();
}

void DurableDatalet::pin_locked(uint64_t token, uint64_t seq) {
  auto [it, fresh] = pins_.try_emplace(token);
  it->second = TokenPin{token, seq, uint8_t(Code::kOk)};
  if (fresh) {
    pin_order_.push_back(token);
    while (pin_order_.size() > kMaxPins) {
      pins_.erase(pin_order_.front());
      pin_order_.pop_front();
    }
  }
}

Status DurableDatalet::log_and_apply(WalRecord type, std::string_view key,
                                     std::string_view value, uint64_t seq) {
  const uint64_t token = op_token_;
  op_token_ = 0;
  uint64_t lsn = 0;
  Status applied = Status::Ok();
  bool need_checkpoint = false;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (wal_ != nullptr) {
      std::string payload;
      encode_kv_record(payload, token, key, value);
      auto a = wal_->append(uint8_t(type), seq, payload);
      if (!a.ok()) return a.status();
      lsn = a.value();
      publish_metrics_locked();
    }
    switch (type) {
      case WalRecord::kPut:
        applied = inner_->put(key, value, seq);
        break;
      case WalRecord::kPutIfNewer:
        applied = inner_->put_if_newer(key, value, seq);
        break;
      case WalRecord::kDel:
        applied = inner_->del(key, seq);
        break;
    }
    if (applied.ok() || applied.code() == Code::kNotFound) {
      durable_seq_ = std::max(durable_seq_, seq);
      if (token != 0) pin_locked(token, seq);
    }
    need_checkpoint = wal_ != nullptr && opts_.checkpoint_bytes > 0 &&
                      wal_->size_bytes() >= opts_.checkpoint_bytes;
    if (need_checkpoint) {
      const Status cp = checkpoint_locked();
      if (cp.ok()) lsn = 0;  // the checkpoint already covers this record
    }
  }
  // Group commit happens outside the engine lock so writers batch.
  if (opts_.blocking && wal_ != nullptr && lsn != 0) {
    BKV_RETURN_IF_ERROR(wal_->wait_durable(lsn));
  }
  return applied;
}

Status DurableDatalet::put(std::string_view key, std::string_view value,
                           uint64_t seq) {
  return log_and_apply(WalRecord::kPut, key, value, seq);
}

Status DurableDatalet::put_if_newer(std::string_view key,
                                    std::string_view value, uint64_t seq) {
  return log_and_apply(WalRecord::kPutIfNewer, key, value, seq);
}

Status DurableDatalet::del(std::string_view key, uint64_t seq) {
  // A NotFound del mutates nothing, but it is still logged: replay order
  // must preserve it in case a later checkpoint raced the crash.
  return log_and_apply(WalRecord::kDel, key, {}, seq);
}

Result<Entry> DurableDatalet::get(std::string_view key) const {
  std::lock_guard<std::mutex> g(mu_);
  return inner_->get(key);
}

Result<std::vector<KV>> DurableDatalet::scan(std::string_view start,
                                             std::string_view end,
                                             uint32_t limit) const {
  std::lock_guard<std::mutex> g(mu_);
  return inner_->scan(start, end, limit);
}

size_t DurableDatalet::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return inner_->size();
}

void DurableDatalet::for_each(
    const std::function<void(std::string_view, const Entry&)>& fn) const {
  std::lock_guard<std::mutex> g(mu_);
  inner_->for_each(fn);
}

void DurableDatalet::clear() {
  std::lock_guard<std::mutex> g(mu_);
  inner_->clear();
  pins_.clear();
  pin_order_.clear();
  durable_seq_ = 0;
  if (wal_ != nullptr) wal_->reset();
  opts_.env->remove_file(rm_.checkpoint_path());
}

uint64_t DurableDatalet::durable_seq() const {
  std::lock_guard<std::mutex> g(mu_);
  return durable_seq_;
}

std::vector<TokenPin> DurableDatalet::token_pins() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<TokenPin> out;
  out.reserve(pin_order_.size());
  for (const uint64_t t : pin_order_) {
    auto it = pins_.find(t);
    if (it != pins_.end()) out.push_back(it->second);
  }
  return out;
}

Status DurableDatalet::checkpoint() {
  std::lock_guard<std::mutex> g(mu_);
  return checkpoint_locked();
}

Status DurableDatalet::checkpoint_locked() {
  CheckpointData data;
  data.durable_seq = durable_seq_;
  inner_->for_each([&](std::string_view key, const Entry& e) {
    data.entries.push_back(CheckpointEntry{std::string(key), e.value, e.seq});
  });
  for (const uint64_t t : pin_order_) {
    auto it = pins_.find(t);
    if (it != pins_.end()) data.pins.push_back(it->second);
  }
  BKV_RETURN_IF_ERROR(
      write_checkpoint(*opts_.env, rm_.checkpoint_path(), data));
  if (m_checkpoints_ != nullptr) m_checkpoints_->inc();
  // Only truncate once the snapshot is durably published; a crash in between
  // replays snapshot + full WAL, which lands on the same state.
  if (wal_ != nullptr) return wal_->reset();
  return Status::Ok();
}

Status DurableDatalet::crash_restart() {
  std::lock_guard<std::mutex> g(mu_);
  // Power loss: unsynced bytes disappear (torn tails per CrashOpts)...
  opts_.env->crash(opts_.dir, opts_.crash_seed ^ (++incarnation_ * 0x9e3779b9ULL),
                   opts_.crash);
  // ...and so does everything in RAM.
  inner_->clear();
  pins_.clear();
  pin_order_.clear();
  durable_seq_ = 0;
  op_token_ = 0;
  if (!opts_.wal_enabled) {
    // No WAL, no checkpoint: the volatile state is simply gone. This is the
    // provable-loss configuration the negative acceptance gate runs.
    return Status::Ok();
  }
  return recover_locked();
}

void DurableDatalet::attach_metrics(obs::MetricsRegistry& m) {
  std::lock_guard<std::mutex> g(mu_);
  m_appends_ = &m.counter("storage.wal_appends");
  m_syncs_ = &m.counter("storage.wal_syncs");
  m_checkpoints_ = &m.counter("storage.checkpoints");
  m_recoveries_ = &m.counter("storage.recoveries");
  m_torn_bytes_ = &m.counter("storage.torn_bytes");
  inner_->attach_metrics(m);
}

void DurableDatalet::publish_metrics_locked() {
  if (m_appends_ == nullptr || wal_ == nullptr) return;
  const WalStats st = wal_->stats();
  m_appends_->inc();
  if (st.syncs > seen_syncs_) {
    m_syncs_->inc(st.syncs - seen_syncs_);
    seen_syncs_ = st.syncs;
  }
  if (st.torn_bytes > seen_torn_) {
    m_torn_bytes_->inc(st.torn_bytes - seen_torn_);
    seen_torn_ = st.torn_bytes;
  }
}

}  // namespace bespokv::storage
