#include "src/datalet/logstore.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace bespokv {

namespace {

constexpr uint8_t kPut = 1;
constexpr uint8_t kDel = 2;
constexpr size_t kHeaderSize = 4 + 1 + 8 + 4 + 4;  // crc,type,seq,klen,vlen

void put_u32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_u64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
uint32_t get_u32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}
uint64_t get_u64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  return v;
}

std::string build_record(uint8_t type, std::string_view key,
                         std::string_view value, uint64_t seq) {
  std::string rec;
  rec.reserve(kHeaderSize + key.size() + value.size());
  put_u32(rec, 0);  // crc placeholder
  rec.push_back(static_cast<char>(type));
  put_u64(rec, seq);
  put_u32(rec, static_cast<uint32_t>(key.size()));
  put_u32(rec, static_cast<uint32_t>(value.size()));
  rec.append(key);
  rec.append(value);
  const uint32_t crc = crc32c(std::string_view(rec).substr(4));
  for (int i = 0; i < 4; ++i) {
    rec[static_cast<size_t>(i)] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  return rec;
}

int open_append(const std::string& path) {
  return ::open(path.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
}

}  // namespace

LogStoreDatalet::LogStoreDatalet(const DataletConfig& cfg) : cfg_(cfg) {
  if (!cfg_.dir.empty()) {
    ::mkdir(cfg_.dir.c_str(), 0755);
    path_ = cfg_.dir + "/datalet.log";
    Status s = recover();
    if (!s.ok()) {
      LOG_WARN << "tLog recovery at " << path_ << ": " << s.to_string();
    }
    fd_ = open_append(path_);
  }
}

LogStoreDatalet::~LogStoreDatalet() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogStoreDatalet::recover() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return Status::Ok();  // nothing to recover
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed");
  }
  std::string image(static_cast<size_t>(st.st_size), '\0');
  ssize_t got = ::pread(fd, image.data(), image.size(), 0);
  ::close(fd);
  if (got < 0 || static_cast<size_t>(got) != image.size()) {
    return Status::Corruption("short read of log file");
  }

  // Replay; stop at the first corrupt/partial record (torn tail write).
  size_t off = 0;
  while (off + kHeaderSize <= image.size()) {
    const char* p = image.data() + off;
    const uint32_t crc = get_u32(p);
    const uint8_t type = static_cast<uint8_t>(p[4]);
    const uint64_t seq = get_u64(p + 5);
    const uint32_t klen = get_u32(p + 13);
    const uint32_t vlen = get_u32(p + 17);
    const size_t total = kHeaderSize + klen + vlen;
    if (off + total > image.size()) break;
    const std::string_view body(p + 4, total - 4);
    if (crc32c(body) != crc) break;
    const std::string key(p + kHeaderSize, klen);
    if (type == kPut) {
      index_.insert_or_assign(key, Pointer{off, vlen, seq});
    } else if (type == kDel) {
      index_.erase(key);
    } else {
      break;
    }
    off += total;
  }
  if (off < image.size()) {
    LOG_WARN << "tLog: truncating " << (image.size() - off)
             << " torn bytes at offset " << off;
    if (::truncate(path_.c_str(), static_cast<off_t>(off)) != 0) {
      return Status::Internal("truncate failed");
    }
  }
  file_bytes_ = off;
  live_bytes_ = 0;
  for (const auto& [k, ptr] : index_) {
    live_bytes_ += kHeaderSize + k.size() + ptr.vlen;
  }
  return Status::Ok();
}

Status LogStoreDatalet::append_record(uint8_t type, std::string_view key,
                                      std::string_view value, uint64_t seq) {
  const std::string rec = build_record(type, key, value, seq);
  if (fd_ >= 0) {
    if (::write(fd_, rec.data(), rec.size()) !=
        static_cast<ssize_t>(rec.size())) {
      return Status::Internal("log append failed");
    }
    file_bytes_ += rec.size();
    maybe_sync();
  } else {
    log_.append(rec);
  }
  return Status::Ok();
}

void LogStoreDatalet::maybe_sync() {
  if (cfg_.sync_every == 0 || fd_ < 0) return;
  if (++unsynced_ >= cfg_.sync_every) {
    ::fdatasync(fd_);
    unsynced_ = 0;
  }
}

Status LogStoreDatalet::put(std::string_view key, std::string_view value,
                            uint64_t seq) {
  const uint64_t offset = current_size();
  BKV_RETURN_IF_ERROR(append_record(kPut, key, value, seq));
  auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    live_bytes_ -= kHeaderSize + key.size() + it->second.vlen;
    it->second = Pointer{offset, static_cast<uint32_t>(value.size()), seq};
  } else {
    index_.emplace(std::string(key),
                   Pointer{offset, static_cast<uint32_t>(value.size()), seq});
  }
  live_bytes_ += kHeaderSize + key.size() + value.size();
  return Status::Ok();
}

Status LogStoreDatalet::put_if_newer(std::string_view key,
                                     std::string_view value, uint64_t seq) {
  auto it = index_.find(std::string(key));
  if (it != index_.end() && it->second.seq > seq) return Status::Ok();
  return put(key, value, seq);
}

std::string LogStoreDatalet::read_value(const Pointer& p,
                                        std::string_view key) const {
  const size_t voff = static_cast<size_t>(p.offset) + kHeaderSize + key.size();
  if (fd_ >= 0) {
    std::string out(p.vlen, '\0');
    const ssize_t got =
        ::pread(fd_, out.data(), out.size(), static_cast<off_t>(voff));
    if (got != static_cast<ssize_t>(out.size())) out.clear();
    return out;
  }
  return log_.substr(voff, p.vlen);
}

Result<Entry> LogStoreDatalet::get(std::string_view key) const {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::NotFound();
  return Entry{read_value(it->second, key), it->second.seq};
}

Status LogStoreDatalet::del(std::string_view key, uint64_t seq) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::NotFound();
  BKV_RETURN_IF_ERROR(append_record(kDel, key, "", seq));
  live_bytes_ -= kHeaderSize + key.size() + it->second.vlen;
  index_.erase(it);
  return Status::Ok();
}

void LogStoreDatalet::for_each(
    const std::function<void(std::string_view, const Entry&)>& fn) const {
  for (const auto& [key, ptr] : index_) {
    fn(key, Entry{read_value(ptr, key), ptr.seq});
  }
}

void LogStoreDatalet::clear() {
  index_.clear();
  log_.clear();
  live_bytes_ = 0;
  file_bytes_ = 0;
  if (fd_ >= 0) {
    if (::ftruncate(fd_, 0) != 0) {
      LOG_WARN << "tLog: ftruncate failed during clear";
    }
  }
}

Result<uint64_t> LogStoreDatalet::compact() {
  const uint64_t before = current_size();
  std::string fresh;
  fresh.reserve(live_bytes_);
  std::unordered_map<std::string, Pointer> new_index;
  new_index.reserve(index_.size());
  for (const auto& [key, ptr] : index_) {
    const std::string value = read_value(ptr, key);
    const uint64_t off = fresh.size();
    fresh.append(build_record(kPut, key, value, ptr.seq));
    new_index.emplace(key, Pointer{off, ptr.vlen, ptr.seq});
  }
  if (fd_ >= 0) {
    // Rewrite through a temp file, then swap — a crash mid-compaction must
    // not lose the old generation.
    const std::string tmp = path_ + ".compact";
    const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return Status::Internal("compaction temp open failed");
    if (::write(fd, fresh.data(), fresh.size()) !=
        static_cast<ssize_t>(fresh.size())) {
      ::close(fd);
      return Status::Internal("compaction rewrite failed");
    }
    ::fdatasync(fd);
    ::close(fd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      return Status::Internal("compaction rename failed");
    }
    ::close(fd_);
    fd_ = open_append(path_);
    file_bytes_ = fresh.size();
  } else {
    log_.swap(fresh);
  }
  index_.swap(new_index);
  return before - current_size();
}

}  // namespace bespokv
