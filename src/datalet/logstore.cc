#include "src/datalet/logstore.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "src/common/logging.h"
#include "src/storage/durable.h"  // WalRecord types
#include "src/storage/wal.h"

namespace bespokv {

namespace {

constexpr uint8_t kPut = uint8_t(storage::WalRecord::kPut);
constexpr uint8_t kDel = uint8_t(storage::WalRecord::kDel);
// Per-record overhead: the shared WAL frame (crc,len,type,seq) plus the
// tLog payload's klen prefix. Payload layout: u32 klen | key | value.
constexpr size_t kRecordOverhead = storage::kFrameOverhead + 4;

std::string build_record(uint8_t type, std::string_view key,
                         std::string_view value, uint64_t seq) {
  std::string payload;
  payload.reserve(4 + key.size() + value.size());
  storage::put_u32(payload, static_cast<uint32_t>(key.size()));
  payload.append(key);
  payload.append(value);
  std::string rec;
  storage::append_frame(rec, type, seq, payload);
  return rec;
}

int open_append(const std::string& path) {
  return ::open(path.c_str(), O_CREAT | O_RDWR | O_APPEND, 0644);
}

}  // namespace

LogStoreDatalet::LogStoreDatalet(const DataletConfig& cfg) : cfg_(cfg) {
  if (!cfg_.dir.empty()) {
    ::mkdir(cfg_.dir.c_str(), 0755);
    path_ = cfg_.dir + "/datalet.log";
    Status s = recover();
    if (!s.ok()) {
      LOG_WARN << "tLog recovery at " << path_ << ": " << s.to_string();
    }
    fd_ = open_append(path_);
  }
}

LogStoreDatalet::~LogStoreDatalet() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogStoreDatalet::recover() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return Status::Ok();  // nothing to recover
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat failed");
  }
  std::string image(static_cast<size_t>(st.st_size), '\0');
  ssize_t got = ::pread(fd, image.data(), image.size(), 0);
  ::close(fd);
  if (got < 0 || static_cast<size_t>(got) != image.size()) {
    return Status::Corruption("short read of log file");
  }

  // Replay the shared-WAL-framed records; scan_frames stops at the first
  // corrupt/partial frame (torn tail write) and returns the valid prefix.
  const size_t valid =
      storage::scan_frames(image, [&](const storage::FrameView& f) {
        if (f.payload.size() < 4) return;
        const uint32_t klen = storage::get_u32(f.payload.data());
        if (4 + size_t(klen) > f.payload.size()) return;
        const std::string key(f.payload.substr(4, klen));
        const uint32_t vlen =
            static_cast<uint32_t>(f.payload.size() - 4 - klen);
        if (f.type == kPut) {
          index_.insert_or_assign(key, Pointer{f.offset, vlen, f.seq});
        } else if (f.type == kDel) {
          index_.erase(key);
        }
      });
  if (valid < image.size()) {
    LOG_WARN << "tLog: truncating " << (image.size() - valid)
             << " torn bytes at offset " << valid;
    if (::truncate(path_.c_str(), static_cast<off_t>(valid)) != 0) {
      return Status::Internal("truncate failed");
    }
  }
  file_bytes_ = valid;
  live_bytes_ = 0;
  for (const auto& [k, ptr] : index_) {
    live_bytes_ += kRecordOverhead + k.size() + ptr.vlen;
  }
  return Status::Ok();
}

Status LogStoreDatalet::append_record(uint8_t type, std::string_view key,
                                      std::string_view value, uint64_t seq) {
  const std::string rec = build_record(type, key, value, seq);
  if (fd_ >= 0) {
    if (::write(fd_, rec.data(), rec.size()) !=
        static_cast<ssize_t>(rec.size())) {
      return Status::Internal("log append failed");
    }
    file_bytes_ += rec.size();
    maybe_sync();
  } else {
    log_.append(rec);
  }
  return Status::Ok();
}

void LogStoreDatalet::maybe_sync() {
  if (cfg_.sync_every == 0 || fd_ < 0) return;
  if (++unsynced_ >= cfg_.sync_every) {
    ::fdatasync(fd_);
    unsynced_ = 0;
  }
}

Status LogStoreDatalet::put(std::string_view key, std::string_view value,
                            uint64_t seq) {
  const uint64_t offset = current_size();
  BKV_RETURN_IF_ERROR(append_record(kPut, key, value, seq));
  auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    live_bytes_ -= kRecordOverhead + key.size() + it->second.vlen;
    it->second = Pointer{offset, static_cast<uint32_t>(value.size()), seq};
  } else {
    index_.emplace(std::string(key),
                   Pointer{offset, static_cast<uint32_t>(value.size()), seq});
  }
  live_bytes_ += kRecordOverhead + key.size() + value.size();
  return Status::Ok();
}

Status LogStoreDatalet::put_if_newer(std::string_view key,
                                     std::string_view value, uint64_t seq) {
  auto it = index_.find(std::string(key));
  if (it != index_.end() && it->second.seq > seq) return Status::Ok();
  return put(key, value, seq);
}

std::string LogStoreDatalet::read_value(const Pointer& p,
                                        std::string_view key) const {
  // Value begins after the frame header+meta and the payload's klen + key.
  const size_t voff = static_cast<size_t>(p.offset) + storage::kFrameOverhead +
                      4 + key.size();
  if (fd_ >= 0) {
    std::string out(p.vlen, '\0');
    const ssize_t got =
        ::pread(fd_, out.data(), out.size(), static_cast<off_t>(voff));
    if (got != static_cast<ssize_t>(out.size())) out.clear();
    return out;
  }
  return log_.substr(voff, p.vlen);
}

Result<Entry> LogStoreDatalet::get(std::string_view key) const {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::NotFound();
  return Entry{read_value(it->second, key), it->second.seq};
}

Status LogStoreDatalet::del(std::string_view key, uint64_t seq) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return Status::NotFound();
  BKV_RETURN_IF_ERROR(append_record(kDel, key, "", seq));
  live_bytes_ -= kRecordOverhead + key.size() + it->second.vlen;
  index_.erase(it);
  return Status::Ok();
}

void LogStoreDatalet::for_each(
    const std::function<void(std::string_view, const Entry&)>& fn) const {
  for (const auto& [key, ptr] : index_) {
    fn(key, Entry{read_value(ptr, key), ptr.seq});
  }
}

void LogStoreDatalet::clear() {
  index_.clear();
  log_.clear();
  live_bytes_ = 0;
  file_bytes_ = 0;
  if (fd_ >= 0) {
    if (::ftruncate(fd_, 0) != 0) {
      LOG_WARN << "tLog: ftruncate failed during clear";
    }
  }
}

Result<uint64_t> LogStoreDatalet::compact() {
  const uint64_t before = current_size();
  std::string fresh;
  fresh.reserve(live_bytes_);
  std::unordered_map<std::string, Pointer> new_index;
  new_index.reserve(index_.size());
  for (const auto& [key, ptr] : index_) {
    const std::string value = read_value(ptr, key);
    const uint64_t off = fresh.size();
    fresh.append(build_record(kPut, key, value, ptr.seq));
    new_index.emplace(key, Pointer{off, ptr.vlen, ptr.seq});
  }
  if (fd_ >= 0) {
    // Rewrite through a temp file, then swap — a crash mid-compaction must
    // not lose the old generation.
    const std::string tmp = path_ + ".compact";
    const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return Status::Internal("compaction temp open failed");
    if (::write(fd, fresh.data(), fresh.size()) !=
        static_cast<ssize_t>(fresh.size())) {
      ::close(fd);
      return Status::Internal("compaction rewrite failed");
    }
    ::fdatasync(fd);
    ::close(fd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0) {
      return Status::Internal("compaction rename failed");
    }
    ::close(fd_);
    fd_ = open_append(path_);
    file_bytes_ = fresh.size();
  } else {
    log_.swap(fresh);
  }
  index_.swap(new_index);
  return before - current_size();
}

}  // namespace bespokv
