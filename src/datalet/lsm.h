// tLSM: log-structured merge-tree datalet.
//
// Writes land in an O(1) hash memtable (the LSM design point: writes never
// pay ordering costs up front); full memtables are sorted once and flushed
// to immutable runs at level 0. When a level accumulates cfg.max_runs_per_level runs they
// are merged into a single run at the next level (tiering compaction). Each
// run carries a bloom filter and key bounds for read pruning. Deletes are
// tombstones, dropped at the bottom level during merges.
//
// This engine realizes the paper's Fig. 6 trade-off: high write throughput
// (amortized sequential flushes) against read amplification (multi-run
// lookups), versus tMT's B+-tree profile.
#pragma once

#include <map>
#include <memory>
#include <unordered_map>
#include <string>
#include <vector>

#include "src/datalet/bloom.h"
#include "src/datalet/datalet.h"

namespace bespokv {

class LsmDatalet : public Datalet {
 public:
  explicit LsmDatalet(const DataletConfig& cfg = {});

  const char* kind() const override { return "tLSM"; }

  Status put(std::string_view key, std::string_view value, uint64_t seq) override;
  Result<Entry> get(std::string_view key) const override;
  Status del(std::string_view key, uint64_t seq) override;
  Status put_if_newer(std::string_view key, std::string_view value,
                      uint64_t seq) override;

  Result<std::vector<KV>> scan(std::string_view start, std::string_view end,
                               uint32_t limit) const override;
  bool supports_scan() const override { return true; }

  size_t size() const override;
  void for_each(const std::function<void(std::string_view, const Entry&)>& fn)
      const override;
  void clear() override;

  // Introspection for tests and the ablation bench.
  size_t num_runs() const;
  size_t num_levels() const { return levels_.size(); }
  uint64_t bytes_written() const { return bytes_written_; }    // incl. compaction
  uint64_t bytes_ingested() const { return bytes_ingested_; }  // user puts only
  double write_amplification() const {
    return bytes_ingested_ == 0
               ? 1.0
               : static_cast<double>(bytes_written_) / static_cast<double>(bytes_ingested_);
  }
  void flush_memtable();  // public so tests can force run creation

 private:
  struct Item {
    std::string key;
    std::string value;
    uint64_t seq;
    bool tombstone;
  };
  struct Run {
    std::vector<Item> items;  // sorted, unique keys
    BloomFilter bloom;
    uint64_t generation;      // newer runs shadow older ones
    explicit Run(size_t expected) : bloom(expected), generation(0) {}
  };
  struct MemEntry {
    std::string value;
    uint64_t seq;
    bool tombstone;
  };

  void maybe_compact(size_t level);
  std::shared_ptr<Run> merge_runs(const std::vector<std::shared_ptr<Run>>& runs,
                                  bool drop_tombstones);
  const Item* find_in_run(const Run& run, std::string_view key) const;

  DataletConfig cfg_;
  std::unordered_map<std::string, MemEntry> memtable_;
  // levels_[0] is the newest level; runs within a level ordered oldest-first.
  std::vector<std::vector<std::shared_ptr<Run>>> levels_;
  uint64_t next_generation_ = 1;
  uint64_t bytes_written_ = 0;
  uint64_t bytes_ingested_ = 0;
};

}  // namespace bespokv
