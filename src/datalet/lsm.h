// tLSM: log-structured merge-tree datalet.
//
// Writes land in an O(1) hash memtable (the LSM design point: writes never
// pay ordering costs up front); full memtables are sorted once and flushed
// to immutable runs at level 0. When a level accumulates
// cfg.max_runs_per_level runs they are merged into a single run at the next
// level (tiering compaction). Each run carries a bloom filter and key bounds
// for read pruning. Deletes are tombstones, dropped at the bottom level
// during merges.
//
// Two storage modes:
//  - memory (cfg.dir empty): runs are sorted in-RAM vectors, exactly the
//    paper's Fig. 6 engine-tradeoff model. Volatile.
//  - disk (cfg.dir set): runs are on-disk SSTables (src/storage/sstable.h)
//    read through mmap'd views; the memtable is guarded by a CRC-framed WAL
//    (fsync policy per cfg), and a durably-published MANIFEST names the live
//    runs — orphans from crashed flushes/compactions are swept on recovery.
//    crash_restart() models power loss and rebuilds from MANIFEST + SSTables
//    + WAL replay. With cfg.lsm_background_compaction, merges move to a
//    dedicated compaction thread (real-thread fabrics only; the
//    deterministic sim keeps them inline).
//
// This engine realizes the paper's Fig. 6 trade-off: high write throughput
// (amortized sequential flushes) against read amplification (multi-run
// lookups), versus tMT's B+-tree profile.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/datalet/bloom.h"
#include "src/datalet/datalet.h"
#include "src/storage/sstable.h"
#include "src/storage/wal.h"

namespace bespokv {

namespace obs {
class Counter;
}  // namespace obs

class LsmDatalet : public Datalet {
 public:
  explicit LsmDatalet(const DataletConfig& cfg = {});
  ~LsmDatalet() override;

  const char* kind() const override { return "tLSM"; }

  Status put(std::string_view key, std::string_view value, uint64_t seq) override;
  Result<Entry> get(std::string_view key) const override;
  Status del(std::string_view key, uint64_t seq) override;
  Status put_if_newer(std::string_view key, std::string_view value,
                      uint64_t seq) override;

  Result<std::vector<KV>> scan(std::string_view start, std::string_view end,
                               uint32_t limit) const override;
  bool supports_scan() const override { return true; }

  size_t size() const override;
  void for_each(const std::function<void(std::string_view, const Entry&)>& fn)
      const override;
  void clear() override;

  // Durability hooks (disk mode; no-ops in memory mode).
  Status crash_restart() override;
  void set_op_token(uint64_t token) override;
  uint64_t durable_seq() const override;
  bool durable() const override;
  std::vector<storage::TokenPin> token_pins() const override;
  void attach_metrics(obs::MetricsRegistry& m) override;

  // Introspection for tests and the ablation bench.
  bool disk_mode() const { return env_ != nullptr; }
  size_t num_runs() const;
  size_t num_levels() const;
  uint64_t bytes_written() const { return bytes_written_.load(); }    // incl. compaction
  uint64_t bytes_ingested() const { return bytes_ingested_.load(); }  // user puts only
  double write_amplification() const {
    const uint64_t in = bytes_ingested_.load(), out = bytes_written_.load();
    return in == 0 ? 1.0 : double(out) / double(in);
  }
  uint64_t flushes() const { return flushes_.load(); }
  uint64_t compactions() const { return compactions_.load(); }
  void flush_memtable();  // public so tests can force run creation
  // Blocks until no level is over its run budget (background mode; an inline
  // engine returns immediately — compaction already ran).
  void wait_for_compaction();

  static constexpr size_t kMaxPins = 4096;

 private:
  struct Item {
    std::string key;
    std::string value;
    uint64_t seq;
    bool tombstone;
  };
  // One immutable sorted run: in-RAM items (memory mode) or an SSTable
  // (disk mode). Immutable after construction, so readers and the compaction
  // thread share runs by shared_ptr without locks.
  struct Run {
    std::vector<Item> items;  // memory mode: sorted, unique keys
    BloomFilter bloom;        // memory mode (disk runs use the table's)
    std::shared_ptr<storage::SSTableReader> table;  // disk mode
    std::string file;                               // disk mode: file name
    uint64_t generation;      // newer runs shadow older ones
    uint64_t max_seq = 0;
    explicit Run(size_t expected) : bloom(expected), generation(0) {}

    size_t count() const { return table ? table->count() : items.size(); }
    std::string_view key_at(size_t i) const {
      return table ? table->key(i) : std::string_view(items[i].key);
    }
    Item item_at(size_t i) const;
  };
  struct MemEntry {
    std::string value;
    uint64_t seq;
    bool tombstone;
  };
  using Lock = std::unique_lock<std::mutex>;

  void apply_to_memtable(std::string_view key, std::string_view value,
                         uint64_t seq, bool tombstone);
  Status log_op(uint8_t type, std::string_view key, std::string_view value,
                uint64_t seq, uint64_t* lsn);
  void flush_memtable_locked();
  void maybe_compact_locked(size_t level);
  bool compact_one_level_locked(Lock& lk);  // true if it merged something
  size_t overfull_level_locked() const;     // SIZE_MAX if none
  std::shared_ptr<Run> merge_runs(const std::vector<std::shared_ptr<Run>>& runs,
                                  bool drop_tombstones);
  std::shared_ptr<Run> build_run_from_items(std::vector<Item> items,
                                            bool count_bytes);
  bool find_in_run(const Run& run, std::string_view key, Item* out) const;
  Result<std::vector<KV>> scan_locked(std::string_view start,
                                      std::string_view end,
                                      uint32_t limit) const;
  Status publish_manifest_locked();
  Status recover_locked();
  void reset_state_locked();
  void pin_locked(uint64_t token, uint64_t seq);
  void compaction_thread();
  std::string sst_path(const std::string& file) const;

  DataletConfig cfg_;
  std::shared_ptr<storage::Env> env_;  // null = memory mode
  std::unique_ptr<storage::Wal> wal_;

  // Guards memtable_, levels_, pins_, manifest state. Runs themselves are
  // immutable; the compaction thread merges outside the lock on shared_ptr
  // snapshots and re-locks only to splice results in.
  mutable std::mutex mu_;
  std::condition_variable compact_cv_;
  std::thread compactor_;
  bool stop_compactor_ = false;
  bool compactor_busy_ = false;

  std::unordered_map<std::string, MemEntry> memtable_;
  // levels_[0] is the newest level; runs within a level ordered oldest-first.
  std::vector<std::vector<std::shared_ptr<Run>>> levels_;
  uint64_t next_generation_ = 1;
  uint64_t durable_seq_ = 0;
  uint64_t op_token_ = 0;
  uint64_t incarnation_ = 0;
  std::unordered_map<uint64_t, storage::TokenPin> pins_;
  std::deque<uint64_t> pin_order_;

  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> bytes_ingested_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> compactions_{0};
  obs::Counter* m_flushes_ = nullptr;
  obs::Counter* m_compactions_ = nullptr;
  obs::Counter* m_compaction_bytes_ = nullptr;
};

}  // namespace bespokv
