// ShardedDataletService: a key-hash-partitioned datalet service for the
// thread-per-core fabrics. Each shard owns an independent engine instance,
// its own epoch-fence floor and its own idempotency-token dedup window, so a
// sharded fabric (TcpFabric with reactors > 1, the sim's per-core service
// model) can execute different shards concurrently while every piece of
// datalet state stays single-writer — the shard is the unit of ownership,
// and shard k is pinned to reactor (k % reactors).
//
// Cross-shard operations (kScan, kSnapshotReq, kDeleteTable) are rejected
// with kInvalid: they would have to read other shards' engines from the
// wrong reactor. Deployments that need them keep the single-shard
// DataletService; this service is the cache-tier/bench-facing hot path.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/datalet/datalet.h"
#include "src/net/runtime.h"

namespace bespokv {

class ShardedDataletService : public Service {
 public:
  // `engines` become the shards, in order; one per desired shard.
  explicit ShardedDataletService(std::vector<std::shared_ptr<Datalet>> engines);
  // Convenience: n independent engines of `kind` (datalet factory).
  ShardedDataletService(const std::string& kind, int n);

  void start(Runtime& rt) override;

  int shards() const override { return static_cast<int>(shards_.size()); }
  int shard_of(const Message& req) const override;
  void handle_shard(int shard, const Addr& from, Message req,
                    Replier reply) override;
  // Single-threaded fallback (ThreadFabric, direct use): routes by key hash
  // so keyspace placement matches the sharded fabrics.
  void handle(const Addr& from, Message req, Replier reply) override;

  Datalet* shard_engine(int shard) { return shards_[size_t(shard)].engine.get(); }
  uint64_t fence_rejects() const;
  uint64_t dedup_hits() const;

 private:
  static constexpr size_t kDedupWindow = 4096;  // per shard, FIFO-evicted

  struct Shard {
    std::shared_ptr<Datalet> engine;
    uint64_t epoch_floor = 0;
    // token -> cached reply: a retried write whose ack was lost on the wire
    // re-applies exactly once and re-serves the original reply. Applies are
    // synchronous, so no in-flight parking is needed (unlike the controlet
    // window, which also handles concurrent replays).
    std::unordered_map<uint64_t, Message> dedup;
    std::deque<uint64_t> dedup_order;
    // Per-shard instrumentation; written only by the owning reactor.
    obs::Counter* ops = nullptr;
    obs::Counter* fence_rejects = nullptr;
    obs::Counter* dedup_hits = nullptr;
  };

  std::vector<Shard> shards_;
  bool started_ = false;
};

}  // namespace bespokv
