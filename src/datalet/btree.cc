#include "src/datalet/btree.h"

#include <algorithm>
#include <cassert>

namespace bespokv {

struct BTreeDatalet::Node {
  bool is_leaf;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BTreeDatalet::Internal : BTreeDatalet::Node {
  Internal() : Node(false) {}
  // children.size() == keys.size() + 1; subtree i holds keys < keys[i],
  // subtree i+1 holds keys >= keys[i].
  std::vector<std::string> keys;
  std::vector<Node*> children;
};

struct BTreeDatalet::Leaf : BTreeDatalet::Node {
  Leaf() : Node(true) {}
  struct Item {
    std::string key;
    std::string value;
    uint64_t seq;
  };
  std::vector<Item> items;  // sorted by key
  Leaf* next = nullptr;
};

BTreeDatalet::BTreeDatalet() {
  auto* leaf = new Leaf();
  root_ = leaf;
  first_leaf_ = leaf;
}

BTreeDatalet::~BTreeDatalet() { destroy(root_); }

void BTreeDatalet::destroy(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    auto* in = static_cast<Internal*>(node);
    for (Node* c : in->children) destroy(c);
  }
  if (node->is_leaf) {
    delete static_cast<Leaf*>(node);
  } else {
    delete static_cast<Internal*>(node);
  }
}

void BTreeDatalet::clear() {
  destroy(root_);
  auto* leaf = new Leaf();
  root_ = leaf;
  first_leaf_ = leaf;
  count_ = 0;
}

BTreeDatalet::Leaf* BTreeDatalet::find_leaf(std::string_view key) const {
  Node* node = root_;
  while (!node->is_leaf) {
    auto* in = static_cast<Internal*>(node);
    const size_t idx = static_cast<size_t>(
        std::upper_bound(in->keys.begin(), in->keys.end(), key) -
        in->keys.begin());
    node = in->children[idx];
  }
  return static_cast<Leaf*>(node);
}

BTreeDatalet::SplitResult BTreeDatalet::insert_into(Node* node,
                                                    std::string_view key,
                                                    std::string_view value,
                                                    uint64_t seq, bool lww,
                                                    bool* inserted) {
  if (node->is_leaf) {
    auto* leaf = static_cast<Leaf*>(node);
    auto it = std::lower_bound(
        leaf->items.begin(), leaf->items.end(), key,
        [](const Leaf::Item& a, std::string_view k) { return a.key < k; });
    if (it != leaf->items.end() && it->key == key) {
      if (!lww || it->seq <= seq) {
        it->value.assign(value);
        it->seq = seq;
      }
      *inserted = false;
      return {};
    }
    Leaf::Item item;
    item.key.assign(key);
    item.value.assign(value);
    item.seq = seq;
    leaf->items.insert(it, std::move(item));
    *inserted = true;
    if (leaf->items.size() <= kLeafCap) return {};

    // Split the leaf in half; the separator is the right half's first key.
    auto* right = new Leaf();
    const size_t mid = leaf->items.size() / 2;
    right->items.assign(std::make_move_iterator(leaf->items.begin() + static_cast<long>(mid)),
                        std::make_move_iterator(leaf->items.end()));
    leaf->items.resize(mid);
    right->next = leaf->next;
    leaf->next = right;
    SplitResult r;
    r.split = true;
    r.sep = right->items.front().key;
    r.right = right;
    return r;
  }

  auto* in = static_cast<Internal*>(node);
  const size_t idx = static_cast<size_t>(
      std::upper_bound(in->keys.begin(), in->keys.end(), key) -
      in->keys.begin());
  SplitResult child = insert_into(in->children[idx], key, value, seq, lww, inserted);
  if (!child.split) return {};

  in->keys.insert(in->keys.begin() + static_cast<long>(idx), std::move(child.sep));
  in->children.insert(in->children.begin() + static_cast<long>(idx) + 1, child.right);
  if (in->children.size() <= kFanout) return {};

  // Split the internal node; the middle key moves up.
  auto* right = new Internal();
  const size_t midk = in->keys.size() / 2;
  SplitResult r;
  r.split = true;
  r.sep = std::move(in->keys[midk]);
  right->keys.assign(std::make_move_iterator(in->keys.begin() + static_cast<long>(midk) + 1),
                     std::make_move_iterator(in->keys.end()));
  right->children.assign(in->children.begin() + static_cast<long>(midk) + 1,
                         in->children.end());
  in->keys.resize(midk);
  in->children.resize(midk + 1);
  r.right = right;
  return r;
}

Status BTreeDatalet::put(std::string_view key, std::string_view value,
                         uint64_t seq) {
  bool inserted = false;
  SplitResult r = insert_into(root_, key, value, seq, /*lww=*/false, &inserted);
  if (r.split) {
    auto* new_root = new Internal();
    new_root->keys.push_back(std::move(r.sep));
    new_root->children.push_back(root_);
    new_root->children.push_back(r.right);
    root_ = new_root;
  }
  if (inserted) ++count_;
  return Status::Ok();
}

Status BTreeDatalet::put_if_newer(std::string_view key, std::string_view value,
                                  uint64_t seq) {
  bool inserted = false;
  SplitResult r = insert_into(root_, key, value, seq, /*lww=*/true, &inserted);
  if (r.split) {
    auto* new_root = new Internal();
    new_root->keys.push_back(std::move(r.sep));
    new_root->children.push_back(root_);
    new_root->children.push_back(r.right);
    root_ = new_root;
  }
  if (inserted) ++count_;
  return Status::Ok();
}

Result<Entry> BTreeDatalet::get(std::string_view key) const {
  const Leaf* leaf = find_leaf(key);
  auto it = std::lower_bound(
      leaf->items.begin(), leaf->items.end(), key,
      [](const Leaf::Item& a, std::string_view k) { return a.key < k; });
  if (it == leaf->items.end() || it->key != key) return Status::NotFound();
  return Entry{it->value, it->seq};
}

Status BTreeDatalet::del(std::string_view key, uint64_t /*seq*/) {
  Leaf* leaf = find_leaf(key);
  auto it = std::lower_bound(
      leaf->items.begin(), leaf->items.end(), key,
      [](const Leaf::Item& a, std::string_view k) { return a.key < k; });
  if (it == leaf->items.end() || it->key != key) return Status::NotFound();
  leaf->items.erase(it);
  --count_;
  return Status::Ok();
}

Result<std::vector<KV>> BTreeDatalet::scan(std::string_view start,
                                           std::string_view end,
                                           uint32_t limit) const {
  std::vector<KV> out;
  const uint32_t cap = limit == 0 ? UINT32_MAX : limit;
  const Leaf* leaf = find_leaf(start);
  while (leaf != nullptr && out.size() < cap) {
    for (const auto& item : leaf->items) {
      if (item.key < start) continue;
      if (!end.empty() && item.key >= end) return out;
      out.push_back(KV{item.key, item.value, item.seq});
      if (out.size() >= cap) return out;
    }
    leaf = leaf->next;
  }
  return out;
}

void BTreeDatalet::for_each(
    const std::function<void(std::string_view, const Entry&)>& fn) const {
  for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
    for (const auto& item : leaf->items) {
      fn(item.key, Entry{item.value, item.seq});
    }
  }
}

int BTreeDatalet::height() const {
  int h = 1;
  const Node* node = root_;
  while (!node->is_leaf) {
    node = static_cast<const Internal*>(node)->children[0];
    ++h;
  }
  return h;
}

bool BTreeDatalet::check_node(const Node* node, const std::string* lo,
                              const std::string* hi, int depth,
                              int leaf_depth) const {
  if (node->is_leaf) {
    if (depth != leaf_depth) return false;  // all leaves at the same depth
    const auto* leaf = static_cast<const Leaf*>(node);
    for (size_t i = 0; i < leaf->items.size(); ++i) {
      const std::string& k = leaf->items[i].key;
      if (i > 0 && !(leaf->items[i - 1].key < k)) return false;
      if (lo != nullptr && k < *lo) return false;
      if (hi != nullptr && k >= *hi) return false;
    }
    return true;
  }
  const auto* in = static_cast<const Internal*>(node);
  if (in->children.size() != in->keys.size() + 1) return false;
  for (size_t i = 1; i < in->keys.size(); ++i) {
    if (!(in->keys[i - 1] < in->keys[i])) return false;
  }
  for (size_t i = 0; i < in->children.size(); ++i) {
    const std::string* clo = i == 0 ? lo : &in->keys[i - 1];
    const std::string* chi = i == in->keys.size() ? hi : &in->keys[i];
    if (!check_node(in->children[i], clo, chi, depth + 1, leaf_depth)) {
      return false;
    }
  }
  return true;
}

bool BTreeDatalet::check_invariants() const {
  // Leaf chain must visit exactly count_ items in sorted order.
  size_t n = 0;
  const std::string* prev = nullptr;
  for (const Leaf* leaf = first_leaf_; leaf != nullptr; leaf = leaf->next) {
    for (const auto& item : leaf->items) {
      if (prev != nullptr && !(*prev < item.key)) return false;
      prev = &item.key;
      ++n;
    }
  }
  if (n != count_) return false;
  return check_node(root_, nullptr, nullptr, 1, height());
}

}  // namespace bespokv
