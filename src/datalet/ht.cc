#include "src/datalet/ht.h"

#include <bit>

#include "src/common/hash.h"

namespace bespokv {

namespace {
size_t round_pow2(size_t n) {
  size_t c = 16;
  while (c < n) c <<= 1;
  return c;
}
}  // namespace

HashTableDatalet::HashTableDatalet(const DataletConfig& cfg) {
  const size_t cap = round_pow2(cfg.initial_capacity);
  slots_.resize(cap);
  mask_ = cap - 1;
}

uint64_t HashTableDatalet::hash_key(std::string_view key) {
  uint64_t h = mix64(fnv1a64(key));
  return h == 0 ? 1 : h;  // reserve 0 for "empty"
}

size_t HashTableDatalet::probe_distance(uint64_t hash, size_t idx) const {
  const size_t home = hash & mask_;
  return (idx + slots_.size() - home) & mask_;
}

size_t HashTableDatalet::find_slot(std::string_view key, uint64_t hash) const {
  size_t idx = hash & mask_;
  size_t dist = 0;
  while (true) {
    const Slot& s = slots_[idx];
    if (s.hash == 0) return SIZE_MAX;
    // Robin-hood invariant: once our probe distance exceeds the resident
    // entry's, the key cannot be further along.
    if (dist > probe_distance(s.hash, idx)) return SIZE_MAX;
    if (s.hash == hash && s.key == key) return idx;
    idx = (idx + 1) & mask_;
    ++dist;
  }
}

void HashTableDatalet::insert_internal(Slot&& s) {
  size_t idx = s.hash & mask_;
  size_t dist = 0;
  while (true) {
    Slot& cur = slots_[idx];
    if (cur.hash == 0) {
      cur = std::move(s);
      return;
    }
    const size_t cur_dist = probe_distance(cur.hash, idx);
    if (cur_dist < dist) {
      std::swap(cur, s);
      dist = cur_dist;
    }
    idx = (idx + 1) & mask_;
    ++dist;
  }
}

void HashTableDatalet::grow() {
  std::vector<Slot> old;
  old.swap(slots_);
  slots_.resize(old.size() * 2);
  mask_ = slots_.size() - 1;
  for (auto& s : old) {
    if (s.hash != 0) insert_internal(std::move(s));
  }
}

Status HashTableDatalet::put(std::string_view key, std::string_view value,
                             uint64_t seq) {
  const uint64_t h = hash_key(key);
  const size_t idx = find_slot(key, h);
  if (idx != SIZE_MAX) {
    slots_[idx].value.assign(value);
    slots_[idx].seq = seq;
    return Status::Ok();
  }
  if ((count_ + 1) * 8 > slots_.size() * 7) grow();  // load factor 7/8
  Slot s;
  s.hash = h;
  s.key.assign(key);
  s.value.assign(value);
  s.seq = seq;
  insert_internal(std::move(s));
  ++count_;
  return Status::Ok();
}

Status HashTableDatalet::put_if_newer(std::string_view key,
                                      std::string_view value, uint64_t seq) {
  const uint64_t h = hash_key(key);
  const size_t idx = find_slot(key, h);
  if (idx != SIZE_MAX) {
    if (slots_[idx].seq > seq) return Status::Ok();  // stale write, drop
    slots_[idx].value.assign(value);
    slots_[idx].seq = seq;
    return Status::Ok();
  }
  return put(key, value, seq);
}

Result<Entry> HashTableDatalet::get(std::string_view key) const {
  const size_t idx = find_slot(key, hash_key(key));
  if (idx == SIZE_MAX) return Status::NotFound();
  return Entry{slots_[idx].value, slots_[idx].seq};
}

Status HashTableDatalet::del(std::string_view key, uint64_t /*seq*/) {
  size_t idx = find_slot(key, hash_key(key));
  if (idx == SIZE_MAX) return Status::NotFound();
  // Backward-shift deletion: pull successors with nonzero probe distance back.
  while (true) {
    const size_t next = (idx + 1) & mask_;
    Slot& nxt = slots_[next];
    if (nxt.hash == 0 || probe_distance(nxt.hash, next) == 0) {
      slots_[idx] = Slot{};
      break;
    }
    slots_[idx] = std::move(nxt);
    idx = next;
  }
  --count_;
  return Status::Ok();
}

void HashTableDatalet::for_each(
    const std::function<void(std::string_view, const Entry&)>& fn) const {
  for (const auto& s : slots_) {
    if (s.hash != 0) fn(s.key, Entry{s.value, s.seq});
  }
}

void HashTableDatalet::clear() {
  for (auto& s : slots_) s = Slot{};
  count_ = 0;
}

}  // namespace bespokv
