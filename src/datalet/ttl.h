// TTL value envelope (cache-tier mode, DESIGN.md "Cache-tier mode").
//
// A PUT carrying `ttl_ms` is rewritten by the admitting master controlet into
// an *enveloped* value: a 4-byte magic, the absolute expiry instant
// (microseconds on the fabric clock, 8 bytes LE), then the original payload.
// Everything downstream — chain replication, async propagation, the shared
// log, WAL records, checkpoints, SSTables, recovery snapshots, LWW
// application — carries the envelope as opaque bytes, so expiry metadata
// persists through every replication and durability path for free, and all
// replicas agree on the exact expiry instant (the fabric clock is shared in
// the DES, NTP-synced in real deployments).
//
// Expiry is *lazy*: read paths that own a clock (controlet reads, the remote
// DataletService, the cache-tier wrapper) filter expired envelopes and strip
// live ones; a background sweep timer reclaims cold expired entries. The
// magic prefix is chosen from bytes that never begin the repo's text
// payloads; a raw client value starting with these 4 bytes would be
// misread as an envelope — cache-tier deployments own their value format.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace bespokv {
namespace ttl {

inline constexpr char kMagic[4] = {'\x1b', '\xf7', 'T', 'L'};
inline constexpr size_t kHeaderBytes = 12;  // magic + u64 expiry

inline bool is_enveloped(std::string_view v) {
  return v.size() >= kHeaderBytes && v[0] == kMagic[0] && v[1] == kMagic[1] &&
         v[2] == kMagic[2] && v[3] == kMagic[3];
}

// Wraps `payload` with an absolute expiry stamp (µs on the fabric clock).
inline std::string encode(std::string_view payload, uint64_t expire_at_us) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, 4);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((expire_at_us >> (8 * i)) & 0xff));
  }
  out.append(payload.data(), payload.size());
  return out;
}

// Expiry instant, or 0 when the value is not enveloped (never expires).
inline uint64_t expire_at(std::string_view v) {
  if (!is_enveloped(v)) return 0;
  uint64_t e = 0;
  for (int i = 0; i < 8; ++i) {
    e |= static_cast<uint64_t>(static_cast<uint8_t>(v[4 + i])) << (8 * i);
  }
  return e;
}

inline bool expired(std::string_view v, uint64_t now_us) {
  const uint64_t e = expire_at(v);
  return e != 0 && now_us >= e;
}

// The client-visible payload: strips the envelope when present.
inline std::string_view payload(std::string_view v) {
  return is_enveloped(v) ? v.substr(kHeaderBytes) : v;
}

}  // namespace ttl
}  // namespace bespokv
