// TextProtocolServer: serves a datalet over its *native* text wire protocol
// (RESP for tRedis, the SSDB block protocol for tSSDB) on a real TCP socket.
//
// This is the §III-A "option 2" path made concrete: an existing single-server
// store keeps its own protocol, and bespoKV interoperates through the
// pluggable parser — the paper's redis-benchmark workflow (§A "Redis
// benchmark") talks to exactly this kind of endpoint. One thread per server,
// blocking accept, per-connection incremental parsing.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/datalet/datalet.h"
#include "src/obs/metrics.h"
#include "src/proto/text_protocol.h"

namespace bespokv {

class TextProtocolServer {
 public:
  // `parser_name`: "resp" or "ssdb". Binds 127.0.0.1:port (0 = pick free).
  TextProtocolServer(std::shared_ptr<Datalet> engine, std::string parser_name);
  ~TextProtocolServer();

  // Starts accepting. Returns the bound port, or an error.
  Result<int> start(int port = 0);
  void stop();

  int port() const { return port_; }
  uint64_t requests_served() const { return served_.load(); }

  // Per-server registry ("server.*" counters). A STATS request on the text
  // protocol replies with this registry's snapshot as JSON, so bespoKV-side
  // monitoring works even against a store speaking its native protocol.
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  void accept_loop();
  void serve_conn(int fd);

  std::shared_ptr<Datalet> engine_;
  std::string parser_name_;
  obs::MetricsRegistry metrics_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> served_{0};
  std::thread acceptor_;
  std::vector<std::thread> conns_;
  std::mutex conns_mu_;
};

}  // namespace bespokv
