// LockedDatalet: mutex-guarded decorator. Nodes are single-threaded, so an
// engine owned by one node needs no locking; during §V transitions, however,
// the old and the new controlet — two nodes — share one datalet. On the
// thread/TCP fabrics that is a genuine cross-thread share, so the harness
// wraps engines with this decorator. (The DES fabric is single-threaded and
// skips it.)
#pragma once

#include <mutex>

#include "src/datalet/datalet.h"

namespace bespokv {

class LockedDatalet : public Datalet {
 public:
  explicit LockedDatalet(std::unique_ptr<Datalet> inner)
      : inner_(std::move(inner)) {}

  const char* kind() const override { return inner_->kind(); }

  Status put(std::string_view key, std::string_view value, uint64_t seq) override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->put(key, value, seq);
  }
  Result<Entry> get(std::string_view key) const override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->get(key);
  }
  Status del(std::string_view key, uint64_t seq) override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->del(key, seq);
  }
  Status put_if_newer(std::string_view key, std::string_view value,
                      uint64_t seq) override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->put_if_newer(key, value, seq);
  }
  Result<std::vector<KV>> scan(std::string_view start, std::string_view end,
                               uint32_t limit) const override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->scan(start, end, limit);
  }
  bool supports_scan() const override { return inner_->supports_scan(); }
  size_t size() const override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->size();
  }
  void for_each(const std::function<void(std::string_view, const Entry&)>& fn)
      const override {
    std::lock_guard<std::mutex> g(mu_);
    inner_->for_each(fn);
  }
  void clear() override {
    std::lock_guard<std::mutex> g(mu_);
    inner_->clear();
  }

  Status crash_restart() override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->crash_restart();
  }
  void set_op_token(uint64_t token) override {
    std::lock_guard<std::mutex> g(mu_);
    inner_->set_op_token(token);
  }
  uint64_t durable_seq() const override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->durable_seq();
  }
  bool durable() const override { return inner_->durable(); }
  std::vector<storage::TokenPin> token_pins() const override {
    std::lock_guard<std::mutex> g(mu_);
    return inner_->token_pins();
  }
  void attach_metrics(obs::MetricsRegistry& m) override {
    std::lock_guard<std::mutex> g(mu_);
    inner_->attach_metrics(m);
  }

 private:
  mutable std::mutex mu_;
  std::unique_ptr<Datalet> inner_;
};

}  // namespace bespokv
