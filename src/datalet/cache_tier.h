// CacheTierDatalet: memory-budgeted eviction wrapper for cache-tier
// deployments (DESIGN.md "Cache-tier mode"). Wraps any engine — including a
// DurableDatalet-wrapped one — and keeps an exact recency/frequency index
// over the resident keys:
//
//   * LRU: one recency list; a touched key moves to the back, the victim is
//     the front (least recently used).
//   * LFU: O(1)-style frequency buckets (freq -> FIFO list); a touched key
//     moves up one bucket, the victim is the oldest key in the lowest
//     occupied bucket (LRU tie-break within a frequency class).
//
// Writes that push resident bytes past `cache_memory_bytes` evict victims
// through the inner engine's del(), so eviction is indistinguishable from
// deletion to replication, durability, and recovery. When a clock is
// injected (set_clock — the hosting controlet/service does this at start),
// get()/scan() also expire TTL envelopes (ttl.h) lazily at the engine level.
//
// Metrics: evict.evicted / evict.expired / evict.bytes counters and the
// evict.resident_bytes gauge.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/datalet/datalet.h"
#include "src/obs/metrics.h"

namespace bespokv {

class CacheTierDatalet : public Datalet {
 public:
  enum class Policy : uint8_t { kLru, kLfu };

  CacheTierDatalet(std::unique_ptr<Datalet> inner, uint64_t memory_bytes,
                   Policy policy);

  const char* kind() const override { return inner_->kind(); }

  Status put(std::string_view key, std::string_view value,
             uint64_t seq = 0) override;
  Result<Entry> get(std::string_view key) const override;
  Status del(std::string_view key, uint64_t seq = 0) override;
  Status put_if_newer(std::string_view key, std::string_view value,
                      uint64_t seq) override;
  Result<std::vector<KV>> scan(std::string_view start, std::string_view end,
                               uint32_t limit) const override;
  bool supports_scan() const override { return inner_->supports_scan(); }
  size_t size() const override { return inner_->size(); }
  void for_each(const std::function<void(std::string_view, const Entry&)>& fn)
      const override {
    inner_->for_each(fn);  // snapshots keep envelopes; no filtering here
  }
  void clear() override;

  Status crash_restart() override;
  void set_op_token(uint64_t token) override { inner_->set_op_token(token); }
  uint64_t durable_seq() const override { return inner_->durable_seq(); }
  bool durable() const override { return inner_->durable(); }
  std::vector<storage::TokenPin> token_pins() const override {
    return inner_->token_pins();
  }
  void attach_metrics(obs::MetricsRegistry& m) override;
  void set_clock(std::function<uint64_t()> now_us) override {
    now_us_ = std::move(now_us);
  }

  // Introspection for tests.
  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t evictions() const { return evictions_; }
  Datalet* inner() { return inner_.get(); }

 private:
  struct Meta {
    uint64_t bytes = 0;
    uint64_t freq = 0;  // LFU bucket (LRU keeps everything in bucket 0)
    std::list<std::string>::iterator pos;
  };

  static uint64_t entry_bytes(std::string_view key, std::string_view value) {
    return key.size() + value.size();
  }
  // Inserts/updates the index entry and moves it to the back of its bucket.
  void touch(std::string_view key, uint64_t new_bytes, bool bump_freq);
  void forget(std::string_view key);
  void evict_until_within_budget();
  // Lazy TTL expiry for the read paths (needs the injected clock).
  bool expire_if_dead(std::string_view key, const Entry& e) const;
  void rebuild_index();

  std::unique_ptr<Datalet> inner_;
  uint64_t budget_bytes_;
  Policy policy_;
  std::function<uint64_t()> now_us_;

  // freq -> FIFO of keys in that frequency class (front = oldest). Ordered
  // map: victims come from begin(); the class count stays tiny in practice.
  std::map<uint64_t, std::list<std::string>> buckets_;
  std::unordered_map<std::string, Meta> index_;
  uint64_t resident_bytes_ = 0;
  uint64_t evictions_ = 0;

  obs::Counter* c_evicted_ = nullptr;
  obs::Counter* c_expired_ = nullptr;
  obs::Counter* c_evicted_bytes_ = nullptr;
  obs::Gauge* g_resident_ = nullptr;
};

}  // namespace bespokv
