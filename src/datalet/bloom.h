// Blocked bloom filter for tLSM run pruning: double-hashing scheme
// (Kirsch–Mitzenmacher) over a single bit array.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/hash.h"

namespace bespokv {

class BloomFilter {
 public:
  // `expected` items at ~1% false positives (10 bits/key, 7 probes).
  explicit BloomFilter(size_t expected)
      : bits_(std::max<size_t>(64, expected * 10)), words_((bits_ + 63) / 64, 0) {}

  // Deserialization (SSTable bloom blocks): adopt a previously built bit
  // array. `bits` must match the word count it was built with.
  BloomFilter(size_t bits, std::vector<uint64_t> words)
      : bits_(std::max<size_t>(1, bits)), words_(std::move(words)) {
    words_.resize((bits_ + 63) / 64, 0);
  }

  void add(std::string_view key) {
    const uint64_t h1 = fnv1a64(key);
    const uint64_t h2 = mix64(h1);
    for (int i = 0; i < kProbes; ++i) {
      const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits_;
      words_[bit >> 6] |= 1ULL << (bit & 63);
    }
  }

  bool may_contain(std::string_view key) const {
    const uint64_t h1 = fnv1a64(key);
    const uint64_t h2 = mix64(h1);
    for (int i = 0; i < kProbes; ++i) {
      const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits_;
      if ((words_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
    }
    return true;
  }

  size_t bit_count() const { return bits_; }
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  static constexpr int kProbes = 7;
  size_t bits_;
  std::vector<uint64_t> words_;
};

}  // namespace bespokv
