#include "src/datalet/sharded_service.h"

#include "src/common/fencing.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/datalet/service.h"

namespace bespokv {

ShardedDataletService::ShardedDataletService(
    std::vector<std::shared_ptr<Datalet>> engines) {
  shards_.resize(engines.size());
  for (size_t i = 0; i < engines.size(); ++i) {
    shards_[i].engine = std::move(engines[i]);
  }
  if (shards_.empty()) shards_.resize(1);  // degenerate: never valid to use
}

ShardedDataletService::ShardedDataletService(const std::string& kind, int n) {
  shards_.resize(size_t(n < 1 ? 1 : n));
  for (auto& s : shards_) s.engine = make_datalet(kind, {});
}

void ShardedDataletService::start(Runtime& rt) {
  Service::start(rt);
  // All metric handles are resolved here, before any reactor thread exists,
  // so the per-shard hot paths never touch the registry lock (and never race
  // on lazily-cached pointers).
  obs::MetricsRegistry& m = rt.obs().metrics();
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string p = "datalet.s" + std::to_string(i) + ".";
    shards_[i].ops = &m.counter(p + "ops");
    shards_[i].fence_rejects = &m.counter(p + "fence_rejects");
    shards_[i].dedup_hits = &m.counter(p + "dedup_hits");
    shards_[i].engine->attach_metrics(m);
  }
  if (started_) {
    // Fabric restart after a node fault = the machine rebooted: every shard
    // engine crosses a power cut and recovers its durable state.
    for (auto& s : shards_) {
      Status st = s.engine->crash_restart();
      if (!st.ok()) LOG_WARN << "shard crash-recovery: " << st.to_string();
    }
  }
  started_ = true;
  // Re-seed the idempotency windows from the engines' persisted token pins:
  // a retried PUT whose original ack predates the crash must be served the
  // recorded outcome, not re-executed.
  for (auto& s : shards_) {
    s.dedup.clear();
    s.dedup_order.clear();
    for (const storage::TokenPin& pin : s.engine->token_pins()) {
      if (s.dedup_order.size() >= kDedupWindow) break;
      Message rep = Message::reply(Code(pin.code));
      rep.seq = pin.seq;
      if (s.dedup.emplace(pin.token, std::move(rep)).second) {
        s.dedup_order.push_back(pin.token);
      }
    }
  }
}

int ShardedDataletService::shard_of(const Message& req) const {
  if (req.key.empty() || shards_.size() == 1) return 0;
  return static_cast<int>(fnv1a64(req.key) % shards_.size());
}

void ShardedDataletService::handle(const Addr& from, Message req,
                                   Replier reply) {
  const int shard = shard_of(req);
  handle_shard(shard, from, std::move(req), std::move(reply));
}

void ShardedDataletService::handle_shard(int shard, const Addr& from,
                                         Message req, Replier reply) {
  (void)from;
  Shard& s = shards_[size_t(shard)];
  switch (req.op) {
    case Op::kScan:
    case Op::kSnapshotReq:
    case Op::kDeleteTable:
      // Cross-shard: would read engines owned by other reactors.
      reply(Message::reply(Code::kInvalid, "cross-shard op on sharded datalet"));
      return;
    default:
      break;
  }
  const bool mutating = req.op == Op::kPut || req.op == Op::kDel;
  if (req.epoch != 0) {
    if (mutating && fencing_enabled() && req.epoch < s.epoch_floor) {
      if (s.fence_rejects != nullptr) s.fence_rejects->inc();
      reply(Message::reply(Code::kConflict, "stale epoch"));
      return;
    }
    if (req.epoch > s.epoch_floor) s.epoch_floor = req.epoch;
  }
  if (mutating && req.token != 0) {
    auto it = s.dedup.find(req.token);
    if (it != s.dedup.end()) {
      if (s.dedup_hits != nullptr) s.dedup_hits->inc();
      reply(it->second);  // replay: serve the original outcome, apply nothing
      return;
    }
  }
  Message rep = DataletHandle::apply(*s.engine, req);
  if (s.ops != nullptr) s.ops->inc();
  if (mutating && req.token != 0) {
    if (s.dedup_order.size() >= kDedupWindow) {
      s.dedup.erase(s.dedup_order.front());
      s.dedup_order.pop_front();
    }
    s.dedup_order.push_back(req.token);
    s.dedup.emplace(req.token, rep);
  }
  reply(std::move(rep));
}

uint64_t ShardedDataletService::fence_rejects() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    if (s.fence_rejects != nullptr) n += s.fence_rejects->value();
  }
  return n;
}

uint64_t ShardedDataletService::dedup_hits() const {
  uint64_t n = 0;
  for (const auto& s : shards_) {
    if (s.dedup_hits != nullptr) n += s.dedup_hits->value();
  }
  return n;
}

}  // namespace bespokv
