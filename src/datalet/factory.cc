#include <memory>

#include "src/datalet/btree.h"
#include "src/datalet/ht.h"
#include "src/datalet/logstore.h"
#include "src/datalet/lsm.h"

namespace bespokv {

namespace {

// tRedis / tSSDB: ported single-server stores. Functionally they are
// hash-backed engines; what distinguishes a port is its wire protocol
// (proto/text_protocol.h), which the datalet server attaches by kind.
class PortedHashDatalet : public HashTableDatalet {
 public:
  PortedHashDatalet(const DataletConfig& cfg, const char* kind)
      : HashTableDatalet(cfg), kind_(kind) {}
  const char* kind() const override { return kind_; }

 private:
  const char* kind_;
};

}  // namespace

std::unique_ptr<Datalet> make_datalet(const std::string& kind,
                                      const DataletConfig& config) {
  if (kind == "tHT") return std::make_unique<HashTableDatalet>(config);
  if (kind == "tLog") return std::make_unique<LogStoreDatalet>(config);
  if (kind == "tMT") return std::make_unique<BTreeDatalet>();
  if (kind == "tLSM") return std::make_unique<LsmDatalet>(config);
  if (kind == "tRedis") return std::make_unique<PortedHashDatalet>(config, "tRedis");
  if (kind == "tSSDB") return std::make_unique<PortedHashDatalet>(config, "tSSDB");
  return nullptr;
}

Status Datalet::put_if_newer(std::string_view key, std::string_view value,
                             uint64_t seq) {
  return put(key, value, seq);
}

Result<std::vector<KV>> Datalet::scan(std::string_view, std::string_view,
                                      uint32_t) const {
  return Status::Invalid(std::string(kind()) + " does not support range queries");
}

}  // namespace bespokv
