#include <memory>

#include "src/datalet/btree.h"
#include "src/datalet/cache_tier.h"
#include "src/datalet/ht.h"
#include "src/datalet/logstore.h"
#include "src/datalet/lsm.h"
#include "src/storage/durable.h"

namespace bespokv {

namespace {

// tRedis / tSSDB: ported single-server stores. Functionally they are
// hash-backed engines; what distinguishes a port is its wire protocol
// (proto/text_protocol.h), which the datalet server attaches by kind.
class PortedHashDatalet : public HashTableDatalet {
 public:
  PortedHashDatalet(const DataletConfig& cfg, const char* kind)
      : HashTableDatalet(cfg), kind_(kind) {}
  const char* kind() const override { return kind_; }

 private:
  const char* kind_;
};

}  // namespace

std::unique_ptr<Datalet> make_datalet(const std::string& kind,
                                      const DataletConfig& config) {
  DataletConfig cfg = config;
  const bool durable = !cfg.durable_dir.empty();
  // tLSM persists natively (WAL + SSTables under dir); everything else gets
  // the DurableDatalet wrapper (WAL + checkpoints around the volatile
  // engine). tLog keeps its own record log when dir is set; under a
  // durable_dir it runs in memory inside the wrapper like the hash engines.
  if (durable && kind == "tLSM" && cfg.dir.empty()) cfg.dir = cfg.durable_dir;

  std::unique_ptr<Datalet> d;
  if (kind == "tHT") {
    d = std::make_unique<HashTableDatalet>(cfg);
  } else if (kind == "tLog") {
    d = std::make_unique<LogStoreDatalet>(cfg);
  } else if (kind == "tMT") {
    d = std::make_unique<BTreeDatalet>();
  } else if (kind == "tLSM") {
    d = std::make_unique<LsmDatalet>(cfg);
  } else if (kind == "tRedis") {
    d = std::make_unique<PortedHashDatalet>(cfg, "tRedis");
  } else if (kind == "tSSDB") {
    d = std::make_unique<PortedHashDatalet>(cfg, "tSSDB");
  } else {
    return nullptr;
  }
  if (durable && kind != "tLSM") {
    d = std::make_unique<storage::DurableDatalet>(
        std::move(d), storage::DurabilityOpts::from_config(cfg));
  }
  // Cache-tier mode wraps outermost: eviction flows through the durable
  // wrapper as ordinary deletes, so the WAL/checkpoint state matches the
  // budgeted resident set.
  if (cfg.cache_memory_bytes > 0) {
    d = std::make_unique<CacheTierDatalet>(
        std::move(d), cfg.cache_memory_bytes,
        cfg.cache_policy == "lfu" ? CacheTierDatalet::Policy::kLfu
                                  : CacheTierDatalet::Policy::kLru);
  }
  return d;
}

}  // namespace bespokv
