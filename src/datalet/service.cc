#include "src/datalet/service.h"

#include "src/common/fencing.h"
#include "src/common/logging.h"
#include "src/datalet/ttl.h"
#include "src/obs/admin.h"

namespace bespokv {

namespace {

// Tables are implemented by key prefixing: "<table>\x1f<key>". The default
// table is the empty prefix.
std::string table_key(const Message& req) {
  if (req.table.empty()) return req.key;
  std::string k = req.table;
  k.push_back('\x1f');
  k += req.key;
  return k;
}

}  // namespace

Message DataletHandle::apply(Datalet& d, const Message& req) {
  Message reply = Message::reply(Code::kOk);
  // Hand the client's retry token to the engine before a mutation: durable
  // engines log it with the record so a restarted node can refuse to
  // re-execute an already-acked retry (the pin survives in WAL/checkpoint).
  if (req.op == Op::kPut || req.op == Op::kDel) d.set_op_token(req.token);
  switch (req.op) {
    case Op::kPut: {
      Status s = (req.flags & kFlagNoPropagate) != 0
                     ? d.put_if_newer(table_key(req), req.value, req.seq)
                     : d.put(table_key(req), req.value, req.seq);
      reply.code = s.code();
      break;
    }
    case Op::kGet: {
      auto r = d.get(table_key(req));
      if (r.ok()) {
        Entry e = std::move(r).value();
        reply.value = std::move(e.value);
        reply.seq = e.seq;
      } else {
        reply.code = r.status().code();
      }
      break;
    }
    case Op::kDel: {
      reply.code = d.del(table_key(req), req.seq).code();
      break;
    }
    case Op::kScan: {
      std::string start = req.key;
      std::string end = req.value;
      if (!req.table.empty()) {
        std::string prefix = req.table;
        prefix.push_back('\x1f');
        start = prefix + start;
        end = end.empty() ? prefix + "\x7f" : prefix + end;
      }
      auto r = d.scan(start, end, req.limit);
      if (r.ok()) {
        reply.kvs = std::move(r).value();
        if (!req.table.empty()) {
          // Strip the table prefix from result keys.
          const size_t plen = req.table.size() + 1;
          for (auto& kv : reply.kvs) kv.key.erase(0, plen);
        }
      } else {
        reply.code = r.status().code();
      }
      break;
    }
    case Op::kSnapshotReq: {
      // State transfer for recovery; seq carries per-entry versions. The
      // requester's req.seq is its durable floor: a durably-recovered node
      // only needs the suffix written after its last fsynced record (0 asks
      // for the full snapshot).
      const uint64_t floor = req.seq;
      d.for_each([&reply, floor](std::string_view key, const Entry& e) {
        if (floor != 0 && e.seq <= floor) return;
        reply.kvs.push_back(KV{std::string(key), e.value, e.seq});
      });
      break;
    }
    case Op::kCreateTable:
    case Op::kDeleteTable:
      // Tables are prefix-virtualized; creation is implicit. Deletion of a
      // table requires ordered iteration, available on scan-capable engines.
      if (req.op == Op::kDeleteTable) {
        std::string prefix = req.table.empty() ? req.key : req.table;
        prefix.push_back('\x1f');
        auto r = d.scan(prefix, prefix + "\x7f", 0);
        if (r.ok()) {
          for (const auto& kv : r.value()) d.del(kv.key, 0);
        } else {
          std::vector<std::string> doomed;
          d.for_each([&](std::string_view key, const Entry&) {
            if (key.substr(0, prefix.size()) == prefix) {
              doomed.emplace_back(key);
            }
          });
          for (const auto& k : doomed) d.del(k, 0);
        }
      }
      break;
    case Op::kNop:
      break;
    default:
      reply.code = Code::kInvalid;
      break;
  }
  return reply;
}

void DataletService::start(Runtime& rt) {
  Service::start(rt);
  if (datalet_ == nullptr) return;
  datalet_->attach_metrics(rt.obs().metrics());
  datalet_->set_clock([this] { return rt_->now_us(); });
  if (started_) {
    // Fabric restart after a node fault = the machine rebooted. The engine
    // loses everything its durability mode did not fsync.
    Status s = datalet_->crash_restart();
    if (!s.ok()) {
      LOG_WARN << "datalet crash-recovery: " << s.to_string();
    }
  }
  started_ = true;
}

void DataletService::handle(const Addr& from, Message req, Replier reply) {
  (void)from;
  if (req.epoch != 0) {
    const bool mutating =
        req.op == Op::kPut || req.op == Op::kDel || req.op == Op::kDeleteTable;
    if (mutating && fencing_enabled() && req.epoch < epoch_floor_) {
      // A controlet from a pre-failover epoch is still pushing writes at us
      // after its successor (higher epoch) already has: fence it.
      ++fence_rejects_;
      reply(Message::reply(Code::kConflict, "stale epoch"));
      return;
    }
    if (req.epoch > epoch_floor_) epoch_floor_ = req.epoch;
  }
  if (rt_ == nullptr) {  // standalone use without a fabric node
    reply(DataletHandle::apply(*datalet_, req));
    return;
  }
  if (ops_ == nullptr) {
    obs::MetricsRegistry& m = rt_->obs().metrics();
    ops_ = &m.counter("datalet.ops");
    apply_us_ = &m.timer("datalet.apply_us");
  }
  const TraceContext tctx = rt_->obs().tracer().current();
  const uint64_t t0 = rt_->now_us();
  Message rep = DataletHandle::apply(*datalet_, req);
  // Cache-tier TTL: this service owns a clock, so remote reads get the same
  // lazy-expiry semantics as controlet-local ones (ttl.h). Snapshot pulls
  // (kSnapshotReq) intentionally keep envelopes — replicas need the stamps.
  if (req.op == Op::kGet && rep.code == Code::kOk) {
    if (ttl::expired(rep.value, t0)) {
      datalet_->del(req.table.empty() ? req.key
                                      : req.table + '\x1f' + req.key,
                    rep.seq);
      rep = Message::reply(Code::kNotFound, "expired");
    } else if (ttl::is_enveloped(rep.value)) {
      rep.value = std::string(ttl::payload(rep.value));
    }
  } else if (req.op == Op::kScan && rep.code == Code::kOk) {
    size_t out = 0;
    for (size_t i = 0; i < rep.kvs.size(); ++i) {
      KV& kv = rep.kvs[i];
      if (ttl::expired(kv.value, t0)) continue;
      if (ttl::is_enveloped(kv.value)) {
        kv.value = std::string(ttl::payload(kv.value));
      }
      if (out != i) rep.kvs[out] = std::move(kv);
      ++out;
    }
    rep.kvs.resize(out);
  }
  ops_->inc();
  apply_us_->record(rt_->now_us() - t0);
  obs::record_stage(*rt_, tctx, "datalet.apply", t0);
  reply(std::move(rep));
}

void DataletHandle::execute(Message req, std::function<void(Message)> done) {
  if (local_ != nullptr) {
    done(apply(*local_, req));
    return;
  }
  rt_->call(remote_, std::move(req), [done = std::move(done)](Status s, Message m) {
    if (!s.ok()) {
      Message err = Message::reply(s.code() == Code::kTimeout ? Code::kTimeout
                                                              : Code::kUnavailable);
      done(std::move(err));
      return;
    }
    done(std::move(m));
  });
}

}  // namespace bespokv
