// tHT: in-memory hash-table datalet (the paper's default template).
//
// Open-addressing table with robin-hood displacement and power-of-two
// capacity. Tombstone-free: deletions use backward-shift deletion, so probe
// sequences stay short under churny workloads (HPC monitoring streams).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/datalet/datalet.h"

namespace bespokv {

class HashTableDatalet : public Datalet {
 public:
  explicit HashTableDatalet(const DataletConfig& cfg = {});

  const char* kind() const override { return "tHT"; }

  Status put(std::string_view key, std::string_view value, uint64_t seq) override;
  Result<Entry> get(std::string_view key) const override;
  Status del(std::string_view key, uint64_t seq) override;
  Status put_if_newer(std::string_view key, std::string_view value,
                      uint64_t seq) override;

  size_t size() const override { return count_; }
  void for_each(const std::function<void(std::string_view, const Entry&)>& fn)
      const override;
  void clear() override;

  // Exposed for tests: current probe-distance bound and capacity.
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    uint64_t hash = 0;  // 0 marks an empty slot (hashes are forced non-zero)
    std::string key;
    std::string value;
    uint64_t seq = 0;
  };

  static uint64_t hash_key(std::string_view key);
  size_t probe_distance(uint64_t hash, size_t idx) const;
  void grow();
  // Returns slot index or SIZE_MAX.
  size_t find_slot(std::string_view key, uint64_t hash) const;
  void insert_internal(Slot&& s);

  std::vector<Slot> slots_;
  size_t count_ = 0;
  size_t mask_ = 0;
};

}  // namespace bespokv
