#include "src/datalet/cache_tier.h"

#include "src/datalet/ttl.h"

namespace bespokv {

CacheTierDatalet::CacheTierDatalet(std::unique_ptr<Datalet> inner,
                                   uint64_t memory_bytes, Policy policy)
    : inner_(std::move(inner)), budget_bytes_(memory_bytes), policy_(policy) {
  rebuild_index();
}

void CacheTierDatalet::attach_metrics(obs::MetricsRegistry& m) {
  inner_->attach_metrics(m);
  c_evicted_ = &m.counter("evict.evicted");
  c_expired_ = &m.counter("evict.expired");
  c_evicted_bytes_ = &m.counter("evict.bytes");
  g_resident_ = &m.gauge("evict.resident_bytes");
  g_resident_->set(static_cast<int64_t>(resident_bytes_));
}

void CacheTierDatalet::touch(std::string_view key, uint64_t new_bytes,
                             bool bump_freq) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    auto [nit, _] = index_.emplace(std::string(key), Meta{});
    it = nit;
    it->second.freq = 0;
    auto& lst = buckets_[0];
    lst.push_back(nit->first);
    it->second.pos = std::prev(lst.end());
  } else {
    // Unlink from the current bucket; relink at the back of the target one.
    auto& cur = buckets_[it->second.freq];
    std::string k = std::move(*it->second.pos);
    cur.erase(it->second.pos);
    if (cur.empty()) buckets_.erase(it->second.freq);
    resident_bytes_ -= it->second.bytes;
    if (bump_freq && policy_ == Policy::kLfu) ++it->second.freq;
    auto& lst = buckets_[it->second.freq];
    lst.push_back(std::move(k));
    it->second.pos = std::prev(lst.end());
  }
  it->second.bytes = new_bytes;
  resident_bytes_ += new_bytes;
  if (g_resident_ != nullptr) {
    g_resident_->set(static_cast<int64_t>(resident_bytes_));
  }
}

void CacheTierDatalet::forget(std::string_view key) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) return;
  auto& lst = buckets_[it->second.freq];
  lst.erase(it->second.pos);
  if (lst.empty()) buckets_.erase(it->second.freq);
  resident_bytes_ -= it->second.bytes;
  index_.erase(it);
  if (g_resident_ != nullptr) {
    g_resident_->set(static_cast<int64_t>(resident_bytes_));
  }
}

void CacheTierDatalet::evict_until_within_budget() {
  while (resident_bytes_ > budget_bytes_ && !buckets_.empty()) {
    const std::string victim = buckets_.begin()->second.front();
    const auto it = index_.find(victim);
    const uint64_t freed = it != index_.end() ? it->second.bytes : 0;
    forget(victim);
    // Eviction is a plain deletion to the inner engine (seq 0: unconditional
    // local reclaim; replication never carries evictions — each replica
    // evicts under its own budget).
    inner_->del(victim, 0);
    ++evictions_;
    if (c_evicted_ != nullptr) {
      c_evicted_->inc();
      c_evicted_bytes_->inc(freed);
    }
  }
}

bool CacheTierDatalet::expire_if_dead(std::string_view key,
                                      const Entry& e) const {
  if (!now_us_ || !ttl::expired(e.value, now_us_())) return false;
  auto* self = const_cast<CacheTierDatalet*>(this);
  self->forget(key);
  self->inner_->del(key, e.seq);
  if (c_expired_ != nullptr) c_expired_->inc();
  return true;
}

Status CacheTierDatalet::put(std::string_view key, std::string_view value,
                             uint64_t seq) {
  Status s = inner_->put(key, value, seq);
  if (!s.ok()) return s;
  touch(key, entry_bytes(key, value), /*bump_freq=*/true);
  evict_until_within_budget();
  return s;
}

Status CacheTierDatalet::put_if_newer(std::string_view key,
                                      std::string_view value, uint64_t seq) {
  Status s = inner_->put_if_newer(key, value, seq);
  if (!s.ok()) return s;
  // LWW may have kept the stored value; index whatever actually resides.
  auto cur = inner_->get(key);
  if (cur.ok()) {
    touch(key, entry_bytes(key, cur.value().value), /*bump_freq=*/false);
    evict_until_within_budget();
  }
  return s;
}

Result<Entry> CacheTierDatalet::get(std::string_view key) const {
  auto r = inner_->get(key);
  if (!r.ok()) return r;
  if (expire_if_dead(key, r.value())) return Status::NotFound("expired");
  // A hit refreshes recency/frequency (the point of the policy index).
  const_cast<CacheTierDatalet*>(this)->touch(
      key, entry_bytes(key, r.value().value), /*bump_freq=*/true);
  return r;
}

Status CacheTierDatalet::del(std::string_view key, uint64_t seq) {
  forget(key);
  return inner_->del(key, seq);
}

Result<std::vector<KV>> CacheTierDatalet::scan(std::string_view start,
                                               std::string_view end,
                                               uint32_t limit) const {
  auto r = inner_->scan(start, end, limit);
  if (!r.ok() || !now_us_) return r;
  // Drop entries that are past their expiry; envelopes themselves stay
  // intact (the serving layer strips them for clients).
  const uint64_t now = now_us_();
  std::vector<KV> alive;
  alive.reserve(r.value().size());
  for (auto& kv : r.value()) {
    if (ttl::expired(kv.value, now)) {
      auto* self = const_cast<CacheTierDatalet*>(this);
      self->forget(kv.key);
      self->inner_->del(kv.key, kv.seq);
      if (c_expired_ != nullptr) c_expired_->inc();
      continue;
    }
    alive.push_back(std::move(kv));
  }
  return alive;
}

void CacheTierDatalet::clear() {
  inner_->clear();
  buckets_.clear();
  index_.clear();
  resident_bytes_ = 0;
  if (g_resident_ != nullptr) g_resident_->set(0);
}

Status CacheTierDatalet::crash_restart() {
  Status s = inner_->crash_restart();
  rebuild_index();
  return s;
}

void CacheTierDatalet::rebuild_index() {
  buckets_.clear();
  index_.clear();
  resident_bytes_ = 0;
  inner_->for_each([this](std::string_view key, const Entry& e) {
    touch(key, entry_bytes(key, e.value), /*bump_freq=*/false);
  });
  if (g_resident_ != nullptr) {
    g_resident_->set(static_cast<int64_t>(resident_bytes_));
  }
  // A freshly rebuilt index may already exceed the budget (e.g. recovery
  // replayed more than fits): trim immediately.
  evict_until_within_budget();
}

}  // namespace bespokv
