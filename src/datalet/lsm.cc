#include "src/datalet/lsm.h"

#include <algorithm>

namespace bespokv {

LsmDatalet::LsmDatalet(const DataletConfig& cfg) : cfg_(cfg) {
  if (cfg_.memtable_limit == 0) cfg_.memtable_limit = 16 * 1024;
  if (cfg_.max_runs_per_level == 0) cfg_.max_runs_per_level = 4;
}

Status LsmDatalet::put(std::string_view key, std::string_view value,
                       uint64_t seq) {
  bytes_ingested_ += key.size() + value.size();
  memtable_.insert_or_assign(std::string(key),
                             MemEntry{std::string(value), seq, false});
  if (memtable_.size() >= cfg_.memtable_limit) flush_memtable();
  return Status::Ok();
}

Status LsmDatalet::put_if_newer(std::string_view key, std::string_view value,
                                uint64_t seq) {
  auto cur = get(key);
  if (cur.ok() && cur.value().seq > seq) return Status::Ok();
  return put(key, value, seq);
}

Status LsmDatalet::del(std::string_view key, uint64_t seq) {
  // LSM deletes are blind writes; NotFound is only reported if the key is
  // verifiably absent (cheap check through the read path).
  auto cur = get(key);
  if (!cur.ok()) return Status::NotFound();
  memtable_.insert_or_assign(std::string(key), MemEntry{"", seq, true});
  if (memtable_.size() >= cfg_.memtable_limit) flush_memtable();
  return Status::Ok();
}

void LsmDatalet::flush_memtable() {
  if (memtable_.empty()) return;
  auto run = std::make_shared<Run>(memtable_.size());
  run->generation = next_generation_++;
  run->items.reserve(memtable_.size());
  for (auto& [k, e] : memtable_) {
    bytes_written_ += k.size() + e.value.size();
    run->bloom.add(k);
    run->items.push_back(Item{k, std::move(e.value), e.seq, e.tombstone});
  }
  // The one-time sort at flush is where the LSM pays for its O(1) writes.
  std::sort(run->items.begin(), run->items.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  memtable_.clear();
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(std::move(run));
  maybe_compact(0);
}

void LsmDatalet::maybe_compact(size_t level) {
  while (level < levels_.size() &&
         levels_[level].size() > cfg_.max_runs_per_level) {
    // Tombstones may only be dropped when no older data exists beneath the
    // destination level (otherwise a shadowed value would resurface).
    bool nothing_below = true;
    for (size_t l = level + 1; l < levels_.size(); ++l) {
      if (!levels_[l].empty()) nothing_below = false;
    }
    auto merged = merge_runs(levels_[level], /*drop_tombstones=*/nothing_below);
    levels_[level].clear();
    if (level + 1 >= levels_.size()) levels_.emplace_back();
    levels_[level + 1].push_back(std::move(merged));
    ++level;
  }
}

std::shared_ptr<LsmDatalet::Run> LsmDatalet::merge_runs(
    const std::vector<std::shared_ptr<Run>>& runs, bool drop_tombstones) {
  size_t total = 0;
  for (const auto& r : runs) total += r->items.size();
  auto out = std::make_shared<Run>(total);
  out->generation = next_generation_++;

  // K-way merge by (key asc, generation desc) — newest version wins.
  struct Cursor {
    const Run* run;
    size_t idx;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  for (const auto& r : runs) {
    if (!r->items.empty()) cursors.push_back(Cursor{r.get(), 0});
  }
  while (!cursors.empty()) {
    // Find the smallest key; among equal keys, the highest generation.
    size_t best = 0;
    for (size_t i = 1; i < cursors.size(); ++i) {
      const Item& a = cursors[i].run->items[cursors[i].idx];
      const Item& b = cursors[best].run->items[cursors[best].idx];
      if (a.key < b.key ||
          (a.key == b.key &&
           cursors[i].run->generation > cursors[best].run->generation)) {
        best = i;
      }
    }
    const Item& winner = cursors[best].run->items[cursors[best].idx];
    if (!(winner.tombstone && drop_tombstones)) {
      bytes_written_ += winner.key.size() + winner.value.size();
      out->bloom.add(winner.key);
      out->items.push_back(winner);
    }
    // Advance every cursor past this key (shadowed versions are dropped).
    const std::string key = winner.key;
    for (size_t i = 0; i < cursors.size();) {
      auto& c = cursors[i];
      while (c.idx < c.run->items.size() && c.run->items[c.idx].key == key) {
        ++c.idx;
      }
      if (c.idx >= c.run->items.size()) {
        cursors.erase(cursors.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }
  return out;
}

const LsmDatalet::Item* LsmDatalet::find_in_run(const Run& run,
                                                std::string_view key) const {
  if (run.items.empty()) return nullptr;
  if (key < run.items.front().key || key > run.items.back().key) return nullptr;
  if (!cfg_.lsm_disable_bloom && !run.bloom.may_contain(key)) return nullptr;
  auto it = std::lower_bound(
      run.items.begin(), run.items.end(), key,
      [](const Item& a, std::string_view k) { return a.key < k; });
  if (it == run.items.end() || it->key != key) return nullptr;
  return &*it;
}

Result<Entry> LsmDatalet::get(std::string_view key) const {
  auto mit = memtable_.find(std::string(key));
  if (mit != memtable_.end()) {
    if (mit->second.tombstone) return Status::NotFound();
    return Entry{mit->second.value, mit->second.seq};
  }
  // Newest runs first: level 0 back-to-front, then deeper levels.
  for (const auto& level : levels_) {
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      const Item* item = find_in_run(**it, key);
      if (item != nullptr) {
        if (item->tombstone) return Status::NotFound();
        return Entry{item->value, item->seq};
      }
    }
  }
  return Status::NotFound();
}

Result<std::vector<KV>> LsmDatalet::scan(std::string_view start,
                                         std::string_view end,
                                         uint32_t limit) const {
  // Merge-view scan: collect candidate versions, newest source wins.
  // Sources ordered newest-first: memtable, then runs by generation.
  std::map<std::string, const Item*> view;   // key -> winning run item
  std::map<std::string, const MemEntry*> mem_view;

  auto in_range = [&](const std::string& k) {
    return k >= start && (end.empty() || k < end);
  };

  for (auto it = memtable_.begin(); it != memtable_.end(); ++it) {
    if (it->first < start) continue;
    if (!end.empty() && it->first >= end) continue;
    mem_view.emplace(it->first, &it->second);
  }

  std::vector<const Run*> runs_newest_first;
  for (const auto& level : levels_) {
    for (const auto& r : level) runs_newest_first.push_back(r.get());
  }
  std::sort(runs_newest_first.begin(), runs_newest_first.end(),
            [](const Run* a, const Run* b) { return a->generation > b->generation; });
  for (const Run* run : runs_newest_first) {
    auto it = std::lower_bound(
        run->items.begin(), run->items.end(), start,
        [](const Item& a, std::string_view k) { return a.key < k; });
    for (; it != run->items.end(); ++it) {
      if (!in_range(it->key)) break;
      if (mem_view.count(it->key) > 0) continue;  // memtable shadows runs
      view.emplace(it->key, &*it);                // first (newest) wins
    }
  }

  // Interleave the two sorted views.
  std::vector<KV> out;
  const uint32_t cap = limit == 0 ? UINT32_MAX : limit;
  auto mi = mem_view.begin();
  auto ri = view.begin();
  while (out.size() < cap && (mi != mem_view.end() || ri != view.end())) {
    const bool take_mem =
        ri == view.end() || (mi != mem_view.end() && mi->first <= ri->first);
    if (take_mem) {
      if (!mi->second->tombstone) {
        out.push_back(KV{mi->first, mi->second->value, mi->second->seq});
      }
      ++mi;
    } else {
      if (!ri->second->tombstone) {
        out.push_back(KV{ri->first, ri->second->value, ri->second->seq});
      }
      ++ri;
    }
  }
  return out;
}

size_t LsmDatalet::size() const {
  size_t n = 0;
  auto all = scan("", "", 0);
  if (all.ok()) n = all.value().size();
  return n;
}

void LsmDatalet::for_each(
    const std::function<void(std::string_view, const Entry&)>& fn) const {
  auto all = scan("", "", 0);
  if (!all.ok()) return;
  for (const auto& kv : all.value()) {
    fn(kv.key, Entry{kv.value, kv.seq});
  }
}

void LsmDatalet::clear() {
  memtable_.clear();
  levels_.clear();
  bytes_written_ = 0;
  bytes_ingested_ = 0;
}

size_t LsmDatalet::num_runs() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

}  // namespace bespokv
