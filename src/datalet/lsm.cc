#include "src/datalet/lsm.h"

#include <algorithm>

#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/storage/durable.h"

namespace bespokv {

namespace {
constexpr const char* kManifestFile = "MANIFEST";
constexpr const char* kWalFile = "wal.log";
}  // namespace

LsmDatalet::Item LsmDatalet::Run::item_at(size_t i) const {
  if (table == nullptr) return items[i];
  const storage::SSTableEntry e = table->entry(i);
  return Item{std::string(e.key), std::string(e.value), e.seq, e.tombstone};
}

LsmDatalet::LsmDatalet(const DataletConfig& cfg) : cfg_(cfg) {
  if (cfg_.memtable_limit == 0) cfg_.memtable_limit = 16 * 1024;
  if (cfg_.max_runs_per_level == 0) cfg_.max_runs_per_level = 4;
  if (!cfg_.dir.empty()) {
    env_ = cfg_.env ? cfg_.env : storage::posix_env();
    env_->mkdirs(cfg_.dir);
    if (!cfg_.wal_disable) {
      storage::WalOpts w;
      auto p = storage::parse_fsync_policy(cfg_.fsync);
      w.policy = p.ok() ? p.value() : storage::FsyncPolicy::kAlways;
      w.group_interval_us = cfg_.group_interval_us;
      w.group_batch = cfg_.group_batch;
      w.blocking = cfg_.durable_blocking;
      wal_ = std::make_unique<storage::Wal>(env_, cfg_.dir + "/" + kWalFile, w);
    }
    Lock lk(mu_);
    recover_locked();
  }
  if (cfg_.lsm_background_compaction) {
    compactor_ = std::thread([this] { compaction_thread(); });
  }
}

LsmDatalet::~LsmDatalet() {
  if (compactor_.joinable()) {
    {
      Lock lk(mu_);
      stop_compactor_ = true;
    }
    compact_cv_.notify_all();
    compactor_.join();
  }
}

std::string LsmDatalet::sst_path(const std::string& file) const {
  return cfg_.dir + "/" + file;
}

void LsmDatalet::reset_state_locked() {
  memtable_.clear();
  levels_.clear();
  pins_.clear();
  pin_order_.clear();
  next_generation_ = 1;
  durable_seq_ = 0;
  op_token_ = 0;
}

void LsmDatalet::pin_locked(uint64_t token, uint64_t seq) {
  if (token == 0) return;
  auto [it, fresh] = pins_.try_emplace(token);
  it->second = storage::TokenPin{token, seq, uint8_t(Code::kOk)};
  if (fresh) {
    pin_order_.push_back(token);
    while (pin_order_.size() > kMaxPins) {
      pins_.erase(pin_order_.front());
      pin_order_.pop_front();
    }
  }
}

Status LsmDatalet::publish_manifest_locked() {
  Json j = Json::object();
  j.set("next_generation", Json::number(double(next_generation_)));
  j.set("durable_seq", Json::number(double(durable_seq_)));
  Json pins = Json::array();
  for (const uint64_t t : pin_order_) {
    auto it = pins_.find(t);
    if (it == pins_.end()) continue;
    Json p = Json::object();
    p.set("token", Json::number(double(it->second.token)));
    p.set("seq", Json::number(double(it->second.seq)));
    pins.push(std::move(p));
  }
  j.set("pins", std::move(pins));
  Json lvls = Json::array();
  for (const auto& level : levels_) {
    Json lj = Json::array();
    for (const auto& r : level) {
      Json rj = Json::object();
      rj.set("file", Json::string(r->file));
      rj.set("gen", Json::number(double(r->generation)));
      rj.set("max_seq", Json::number(double(r->max_seq)));
      lj.push(std::move(rj));
    }
    lvls.push(std::move(lj));
  }
  j.set("levels", std::move(lvls));
  return env_->write_file_durable(cfg_.dir + "/" + kManifestFile, j.dump(0));
}

Status LsmDatalet::recover_locked() {
  reset_state_locked();

  std::vector<std::string> live;  // files the manifest names
  const std::string manifest_path = cfg_.dir + "/" + kManifestFile;
  if (env_->exists(manifest_path)) {
    auto image = env_->read_file(manifest_path);
    if (!image.ok()) return image.status();
    auto parsed = Json::parse(image.value());
    if (!parsed.ok()) return Status::Corruption("bad LSM manifest");
    const Json& j = parsed.value();
    next_generation_ = uint64_t(j.get("next_generation").as_number(1));
    durable_seq_ = uint64_t(j.get("durable_seq").as_number(0));
    for (const Json& p : j.get("pins").elements()) {
      pin_locked(uint64_t(p.get("token").as_number(0)),
                 uint64_t(p.get("seq").as_number(0)));
    }
    for (const Json& lj : j.get("levels").elements()) {
      levels_.emplace_back();
      for (const Json& rj : lj.elements()) {
        const std::string file = rj.get("file").as_string("");
        auto table = storage::SSTableReader::open(env_, sst_path(file));
        if (!table.ok()) return table.status();
        auto run = std::make_shared<Run>(size_t(0));
        run->table = table.value();
        run->file = file;
        run->generation = uint64_t(rj.get("gen").as_number(0));
        run->max_seq = uint64_t(rj.get("max_seq").as_number(0));
        next_generation_ = std::max(next_generation_, run->generation + 1);
        live.push_back(file);
        levels_.back().push_back(std::move(run));
      }
    }
  }

  // Orphan sweep: SSTables a crashed flush/compaction wrote but never
  // published, and stale tmp files. Only the manifest confers liveness.
  auto names = env_->list_dir(cfg_.dir);
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      const bool is_sst = name.rfind("sst-", 0) == 0;
      const bool is_tmp = name.size() > 4 &&
                          name.compare(name.size() - 4, 4, ".tmp") == 0;
      if ((is_sst && std::find(live.begin(), live.end(), name) == live.end()) ||
          is_tmp) {
        env_->remove_file(sst_path(name));
      }
    }
  }

  // Replay the WAL into the memtable: blind application in log order
  // reproduces the exact pre-crash memtable (last record per key wins).
  if (wal_ != nullptr) {
    Status apply_status = Status::Ok();
    const Status s = wal_->replay_and_open([&](const storage::FrameView& f) {
      if (!apply_status.ok()) return;
      auto rec = storage::decode_kv_record(f.payload);
      if (!rec.ok()) {
        apply_status = rec.status();
        return;
      }
      const bool tomb = storage::WalRecord(f.type) == storage::WalRecord::kDel;
      apply_to_memtable(rec.value().key, rec.value().value, f.seq, tomb);
      durable_seq_ = std::max(durable_seq_, f.seq);
      pin_locked(rec.value().token, f.seq);
    });
    BKV_RETURN_IF_ERROR(s);
    BKV_RETURN_IF_ERROR(apply_status);
  }
  return Status::Ok();
}

void LsmDatalet::apply_to_memtable(std::string_view key, std::string_view value,
                                   uint64_t seq, bool tombstone) {
  memtable_.insert_or_assign(std::string(key),
                             MemEntry{std::string(value), seq, tombstone});
}

Status LsmDatalet::log_op(uint8_t type, std::string_view key,
                          std::string_view value, uint64_t seq,
                          uint64_t* lsn) {
  if (wal_ == nullptr) return Status::Ok();
  std::string payload;
  storage::encode_kv_record(payload, op_token_, key, value);
  auto a = wal_->append(type, seq, payload);
  if (!a.ok()) return a.status();
  if (lsn != nullptr) *lsn = a.value();
  return Status::Ok();
}

Status LsmDatalet::put(std::string_view key, std::string_view value,
                       uint64_t seq) {
  uint64_t lsn = 0;
  {
    Lock lk(mu_);
    BKV_RETURN_IF_ERROR(
        log_op(uint8_t(storage::WalRecord::kPut), key, value, seq, &lsn));
    bytes_ingested_ += key.size() + value.size();
    apply_to_memtable(key, value, seq, false);
    durable_seq_ = std::max(durable_seq_, seq);
    pin_locked(op_token_, seq);
    op_token_ = 0;
    if (memtable_.size() >= cfg_.memtable_limit) flush_memtable_locked();
  }
  if (wal_ != nullptr && wal_->opts().blocking && lsn != 0) {
    return wal_->wait_durable(lsn);
  }
  return Status::Ok();
}

Status LsmDatalet::put_if_newer(std::string_view key, std::string_view value,
                                uint64_t seq) {
  auto cur = get(key);
  if (cur.ok() && cur.value().seq > seq) return Status::Ok();
  return put(key, value, seq);
}

Status LsmDatalet::del(std::string_view key, uint64_t seq) {
  uint64_t lsn = 0;
  {
    Lock lk(mu_);
    // LSM deletes are blind writes; NotFound is only reported if the key is
    // verifiably absent (cheap check through the read path). Absent-key dels
    // are not logged — they mutate nothing.
    Item found;
    bool present = false;
    auto mit = memtable_.find(std::string(key));
    if (mit != memtable_.end()) {
      present = !mit->second.tombstone;
    } else {
      for (const auto& level : levels_) {
        for (auto it = level.rbegin(); it != level.rend(); ++it) {
          if (find_in_run(**it, key, &found)) {
            present = !found.tombstone;
            goto resolved;
          }
        }
      }
    resolved:;
    }
    if (!present) return Status::NotFound();
    BKV_RETURN_IF_ERROR(
        log_op(uint8_t(storage::WalRecord::kDel), key, {}, seq, &lsn));
    apply_to_memtable(key, {}, seq, true);
    durable_seq_ = std::max(durable_seq_, seq);
    pin_locked(op_token_, seq);
    op_token_ = 0;
    if (memtable_.size() >= cfg_.memtable_limit) flush_memtable_locked();
  }
  if (wal_ != nullptr && wal_->opts().blocking && lsn != 0) {
    return wal_->wait_durable(lsn);
  }
  return Status::Ok();
}

// Memory-mode runs only; disk runs are streamed into SSTables by the callers.
std::shared_ptr<LsmDatalet::Run> LsmDatalet::build_run_from_items(
    std::vector<Item> items, bool count_bytes) {
  auto run = std::make_shared<Run>(items.size());
  for (Item& it : items) {
    if (count_bytes) bytes_written_ += it.key.size() + it.value.size();
    run->bloom.add(it.key);
    run->max_seq = std::max(run->max_seq, it.seq);
  }
  run->items = std::move(items);
  return run;
}

std::shared_ptr<LsmDatalet::Run> LsmDatalet::merge_runs(
    const std::vector<std::shared_ptr<Run>>& runs, bool drop_tombstones) {
  // K-way merge by (key asc, generation desc) — newest version wins.
  struct Cursor {
    const Run* run;
    size_t idx;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(runs.size());
  size_t total = 0;
  for (const auto& r : runs) {
    total += r->count();
    if (r->count() > 0) cursors.push_back(Cursor{r.get(), 0});
  }
  std::vector<Item> out;
  out.reserve(total);
  while (!cursors.empty()) {
    // Find the smallest key; among equal keys, the highest generation.
    size_t best = 0;
    for (size_t i = 1; i < cursors.size(); ++i) {
      const std::string_view a = cursors[i].run->key_at(cursors[i].idx);
      const std::string_view b = cursors[best].run->key_at(cursors[best].idx);
      if (a < b || (a == b && cursors[i].run->generation >
                                  cursors[best].run->generation)) {
        best = i;
      }
    }
    const std::string key(cursors[best].run->key_at(cursors[best].idx));
    Item winner = cursors[best].run->item_at(cursors[best].idx);
    if (!(winner.tombstone && drop_tombstones)) {
      out.push_back(std::move(winner));
    }
    // Advance every cursor past this key (shadowed versions are dropped).
    for (size_t i = 0; i < cursors.size();) {
      auto& c = cursors[i];
      while (c.idx < c.run->count() && c.run->key_at(c.idx) == key) {
        ++c.idx;
      }
      if (c.idx >= c.run->count()) {
        cursors.erase(cursors.begin() + long(i));
      } else {
        ++i;
      }
    }
  }

  const uint64_t gen = next_generation_++;
  std::shared_ptr<Run> merged;
  if (env_ == nullptr) {
    merged = build_run_from_items(std::move(out), /*count_bytes=*/true);
  } else {
    auto run = std::make_shared<Run>(size_t(0));
    run->file = "sst-" + std::to_string(gen) + ".tbl";
    storage::SSTableWriter w(env_, sst_path(run->file));
    for (const Item& it : out) {
      bytes_written_ += it.key.size() + it.value.size();
      run->max_seq = std::max(run->max_seq, it.seq);
      if (!w.add(it.key, it.value, it.seq, it.tombstone).ok()) return nullptr;
    }
    if (!w.finish().ok()) return nullptr;
    auto table = storage::SSTableReader::open(env_, sst_path(run->file));
    if (!table.ok()) return nullptr;
    run->table = table.value();
    merged = std::move(run);
  }
  merged->generation = gen;
  ++compactions_;
  if (m_compactions_ != nullptr) m_compactions_->inc();
  if (m_compaction_bytes_ != nullptr) {
    uint64_t bytes = 0;
    for (const Item& it : merged->items) bytes += it.key.size() + it.value.size();
    if (merged->table) bytes = merged->table->file_bytes();
    m_compaction_bytes_->inc(bytes);
  }
  return merged;
}

void LsmDatalet::flush_memtable() {
  Lock lk(mu_);
  flush_memtable_locked();
}

void LsmDatalet::flush_memtable_locked() {
  if (memtable_.empty()) return;
  std::vector<Item> items;
  items.reserve(memtable_.size());
  uint64_t max_seq = 0;
  for (auto& [k, e] : memtable_) {
    max_seq = std::max(max_seq, e.seq);
    items.push_back(Item{k, std::move(e.value), e.seq, e.tombstone});
  }
  // The one-time sort at flush is where the LSM pays for its O(1) writes.
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });

  std::shared_ptr<Run> run;
  if (env_ == nullptr) {
    run = build_run_from_items(std::move(items), /*count_bytes=*/true);
    run->generation = next_generation_++;
  } else {
    run = std::make_shared<Run>(size_t(0));
    run->generation = next_generation_++;
    run->file = "sst-" + std::to_string(run->generation) + ".tbl";
    storage::SSTableWriter w(env_, sst_path(run->file));
    bool ok = true;
    for (const Item& it : items) {
      bytes_written_ += it.key.size() + it.value.size();
      run->max_seq = std::max(run->max_seq, it.seq);
      if (!w.add(it.key, it.value, it.seq, it.tombstone).ok()) {
        ok = false;
        break;
      }
    }
    if (!ok || !w.finish().ok()) {
      // Leave the memtable (and its WAL) in place; the orphan file gets
      // swept on the next recovery.
      env_->remove_file(sst_path(run->file));
      return;
    }
    auto table = storage::SSTableReader::open(env_, sst_path(run->file));
    if (!table.ok()) {
      env_->remove_file(sst_path(run->file));
      return;
    }
    run->table = table.value();
  }
  run->max_seq = std::max(run->max_seq, max_seq);

  memtable_.clear();
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(std::move(run));
  ++flushes_;
  if (m_flushes_ != nullptr) m_flushes_->inc();
  if (env_ != nullptr) {
    // Publish first, then truncate: a crash in between replays WAL records
    // whose effects the new SSTable already holds — blind replay converges.
    publish_manifest_locked();
    if (wal_ != nullptr) wal_->reset();
  }
  if (cfg_.lsm_background_compaction) {
    compact_cv_.notify_all();
  } else {
    maybe_compact_locked(0);
  }
}

size_t LsmDatalet::overfull_level_locked() const {
  for (size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() > cfg_.max_runs_per_level) return l;
  }
  return SIZE_MAX;
}

void LsmDatalet::maybe_compact_locked(size_t level) {
  while (level < levels_.size() &&
         levels_[level].size() > cfg_.max_runs_per_level) {
    // Tombstones may only be dropped when no older data exists beneath the
    // destination level (otherwise a shadowed value would resurface).
    bool nothing_below = true;
    for (size_t l = level + 1; l < levels_.size(); ++l) {
      if (!levels_[l].empty()) nothing_below = false;
    }
    auto merged = merge_runs(levels_[level], /*drop_tombstones=*/nothing_below);
    if (merged == nullptr) return;  // disk error: retry after the next flush
    std::vector<std::shared_ptr<Run>> old = std::move(levels_[level]);
    levels_[level].clear();
    if (level + 1 >= levels_.size()) levels_.emplace_back();
    levels_[level + 1].push_back(std::move(merged));
    if (env_ != nullptr) {
      publish_manifest_locked();
      for (const auto& r : old) {
        if (!r->file.empty()) env_->remove_file(sst_path(r->file));
      }
    }
    ++level;
  }
}

bool LsmDatalet::compact_one_level_locked(Lock& lk) {
  const size_t level = overfull_level_locked();
  if (level == SIZE_MAX) return false;
  bool nothing_below = true;
  for (size_t l = level + 1; l < levels_.size(); ++l) {
    if (!levels_[l].empty()) nothing_below = false;
  }
  // Snapshot the level's runs (immutable; flushes only append to level 0
  // behind them) and merge outside the lock.
  const std::vector<std::shared_ptr<Run>> snapshot = levels_[level];
  compactor_busy_ = true;
  lk.unlock();
  auto merged = merge_runs(snapshot, nothing_below);
  lk.lock();
  compactor_busy_ = false;
  if (merged == nullptr) return false;
  // Splice: drop exactly the merged runs (they are still the level's prefix;
  // only this thread removes runs) and land the result one level down.
  auto& lvl = levels_[level];
  lvl.erase(lvl.begin(), lvl.begin() + long(snapshot.size()));
  if (level + 1 >= levels_.size()) levels_.emplace_back();
  levels_[level + 1].push_back(merged);
  if (env_ != nullptr) {
    publish_manifest_locked();
    for (const auto& r : snapshot) {
      if (!r->file.empty()) env_->remove_file(sst_path(r->file));
    }
  }
  return true;
}

void LsmDatalet::compaction_thread() {
  Lock lk(mu_);
  while (!stop_compactor_) {
    if (overfull_level_locked() == SIZE_MAX) {
      compact_cv_.notify_all();  // wake wait_for_compaction
      compact_cv_.wait(lk, [&] {
        return stop_compactor_ || overfull_level_locked() != SIZE_MAX;
      });
      continue;
    }
    compact_one_level_locked(lk);
  }
}

void LsmDatalet::wait_for_compaction() {
  if (!compactor_.joinable()) return;
  Lock lk(mu_);
  compact_cv_.wait(lk, [&] {
    return stop_compactor_ ||
           (!compactor_busy_ && overfull_level_locked() == SIZE_MAX);
  });
}

bool LsmDatalet::find_in_run(const Run& run, std::string_view key,
                             Item* out) const {
  if (run.table != nullptr) {
    if (run.count() == 0) return false;
    if (!cfg_.lsm_disable_bloom) {
      if (!run.table->may_contain(key)) return false;
    } else if (key < run.table->min_key() || key > run.table->max_key()) {
      return false;
    }
    auto e = run.table->find(key);
    if (!e.has_value()) return false;
    *out = Item{std::string(e->key), std::string(e->value), e->seq, e->tombstone};
    return true;
  }
  if (run.items.empty()) return false;
  if (key < run.items.front().key || key > run.items.back().key) return false;
  if (!cfg_.lsm_disable_bloom && !run.bloom.may_contain(key)) return false;
  auto it = std::lower_bound(
      run.items.begin(), run.items.end(), key,
      [](const Item& a, std::string_view k) { return a.key < k; });
  if (it == run.items.end() || it->key != key) return false;
  *out = *it;
  return true;
}

Result<Entry> LsmDatalet::get(std::string_view key) const {
  Lock lk(mu_);
  auto mit = memtable_.find(std::string(key));
  if (mit != memtable_.end()) {
    if (mit->second.tombstone) return Status::NotFound();
    return Entry{mit->second.value, mit->second.seq};
  }
  // Newest runs first: level 0 back-to-front, then deeper levels.
  Item item;
  for (const auto& level : levels_) {
    for (auto it = level.rbegin(); it != level.rend(); ++it) {
      if (find_in_run(**it, key, &item)) {
        if (item.tombstone) return Status::NotFound();
        return Entry{std::move(item.value), item.seq};
      }
    }
  }
  return Status::NotFound();
}

Result<std::vector<KV>> LsmDatalet::scan(std::string_view start,
                                         std::string_view end,
                                         uint32_t limit) const {
  Lock lk(mu_);
  return scan_locked(start, end, limit);
}

Result<std::vector<KV>> LsmDatalet::scan_locked(std::string_view start,
                                                std::string_view end,
                                                uint32_t limit) const {
  // Merge-view scan: newest source wins. The memtable is inserted first,
  // then runs newest-generation-first; emplace keeps the first (newest)
  // version of each key.
  std::map<std::string, Item> view;
  auto in_range = [&](std::string_view k) {
    return k >= start && (end.empty() || k < end);
  };

  for (const auto& [k, e] : memtable_) {
    if (!in_range(k)) continue;
    view.emplace(k, Item{k, e.value, e.seq, e.tombstone});
  }

  std::vector<const Run*> runs_newest_first;
  for (const auto& level : levels_) {
    for (const auto& r : level) runs_newest_first.push_back(r.get());
  }
  std::sort(runs_newest_first.begin(), runs_newest_first.end(),
            [](const Run* a, const Run* b) { return a->generation > b->generation; });
  for (const Run* run : runs_newest_first) {
    size_t i;
    if (run->table != nullptr) {
      i = run->table->lower_bound(start);
    } else {
      i = size_t(std::lower_bound(
                     run->items.begin(), run->items.end(), start,
                     [](const Item& a, std::string_view k) { return a.key < k; }) -
                 run->items.begin());
    }
    for (; i < run->count(); ++i) {
      const std::string_view k = run->key_at(i);
      if (!in_range(k)) break;
      if (view.count(std::string(k)) > 0) continue;  // newer source shadows
      view.emplace(std::string(k), run->item_at(i));
    }
  }

  std::vector<KV> out;
  const uint32_t cap = limit == 0 ? UINT32_MAX : limit;
  for (const auto& [k, item] : view) {
    if (out.size() >= cap) break;
    if (item.tombstone) continue;
    out.push_back(KV{k, item.value, item.seq});
  }
  return out;
}

size_t LsmDatalet::size() const {
  Lock lk(mu_);
  auto all = scan_locked("", "", 0);
  return all.ok() ? all.value().size() : 0;
}

void LsmDatalet::for_each(
    const std::function<void(std::string_view, const Entry&)>& fn) const {
  Lock lk(mu_);
  auto all = scan_locked("", "", 0);
  if (!all.ok()) return;
  for (const auto& kv : all.value()) {
    fn(kv.key, Entry{kv.value, kv.seq});
  }
}

void LsmDatalet::clear() {
  Lock lk(mu_);
  reset_state_locked();
  bytes_written_ = 0;
  bytes_ingested_ = 0;
  if (env_ != nullptr) {
    auto names = env_->list_dir(cfg_.dir);
    if (names.ok()) {
      for (const std::string& name : names.value()) {
        if (name != kWalFile) env_->remove_file(sst_path(name));
      }
    }
    if (wal_ != nullptr) wal_->reset();
  }
}

Status LsmDatalet::crash_restart() {
  if (env_ == nullptr) return Status::Ok();  // volatile: a process restart
  Lock lk(mu_);
  // Let an in-flight background merge land (or orphan) before the reboot.
  compact_cv_.wait(lk, [&] { return !compactor_busy_; });
  storage::CrashOpts copts;
  copts.torn_writes = cfg_.torn_writes;
  env_->crash(cfg_.dir, cfg_.crash_seed ^ (++incarnation_ * 0x9e3779b9ULL),
              copts);
  return recover_locked();
}

void LsmDatalet::set_op_token(uint64_t token) {
  Lock lk(mu_);
  op_token_ = token;
}

uint64_t LsmDatalet::durable_seq() const {
  Lock lk(mu_);
  return env_ == nullptr ? 0 : durable_seq_;
}

bool LsmDatalet::durable() const {
  return env_ != nullptr && wal_ != nullptr &&
         wal_->opts().policy == storage::FsyncPolicy::kAlways;
}

std::vector<storage::TokenPin> LsmDatalet::token_pins() const {
  Lock lk(mu_);
  std::vector<storage::TokenPin> out;
  out.reserve(pin_order_.size());
  for (const uint64_t t : pin_order_) {
    auto it = pins_.find(t);
    if (it != pins_.end()) out.push_back(it->second);
  }
  return out;
}

void LsmDatalet::attach_metrics(obs::MetricsRegistry& m) {
  Lock lk(mu_);
  m_flushes_ = &m.counter("lsm.flushes");
  m_compactions_ = &m.counter("lsm.compactions");
  m_compaction_bytes_ = &m.counter("lsm.compaction_bytes");
}

size_t LsmDatalet::num_runs() const {
  Lock lk(mu_);
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

size_t LsmDatalet::num_levels() const {
  Lock lk(mu_);
  return levels_.size();
}

}  // namespace bespokv
