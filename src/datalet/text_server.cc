#include "src/datalet/text_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/common/logging.h"
#include "src/datalet/service.h"

namespace bespokv {

TextProtocolServer::TextProtocolServer(std::shared_ptr<Datalet> engine,
                                       std::string parser_name)
    : engine_(std::move(engine)), parser_name_(std::move(parser_name)) {}

TextProtocolServer::~TextProtocolServer() { stop(); }

Result<int> TextProtocolServer::start(int port) {
  if (make_parser(parser_name_) == nullptr) {
    return Status::Invalid("unknown protocol: " + parser_name_);
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind failed");
  }
  socklen_t len = sizeof(sa);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sa), &len);
  port_ = ntohs(sa.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen failed");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  return port_;
}

void TextProtocolServer::stop() {
  if (stopping_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> g(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& t : conns) {
    if (t.joinable()) t.join();
  }
}

void TextProtocolServer::accept_loop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> g(conns_mu_);
    conns_.emplace_back([this, fd] { serve_conn(fd); });
  }
}

void TextProtocolServer::serve_conn(int fd) {
  auto parser = make_parser(parser_name_);
  std::string buf;
  char chunk[16 * 1024];
  while (!stopping_.load()) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
    size_t off = 0;
    bool poisoned = false;
    while (true) {
      ParseResult r = parser->parse_request(std::string_view(buf).substr(off));
      if (!r.status.ok()) {
        LOG_WARN << "text server: protocol error: " << r.status.to_string();
        poisoned = true;
        break;
      }
      if (!r.has_message) break;
      off += r.consumed;
      ++served_;
      // Counter lookups here are mutex-guarded map walks, which is fine: a
      // blocking text-protocol connection pays syscalls per request anyway.
      metrics_.counter("server.requests").inc();
      metrics_.counter(std::string("server.op.") + op_name(r.message.op)).inc();
      Message reply =
          r.message.op == Op::kStats
              ? Message::reply(Code::kOk, metrics_.snapshot().to_json())
              : DataletHandle::apply(*engine_, r.message);
      // GET replies must distinguish "present but empty" from bulk protocol
      // framing; the RESP formatter keys off flags for that corner.
      if (r.message.op == Op::kGet && reply.code == Code::kOk) {
        reply.flags = 1;
      }
      const std::string wire = parser->format_reply(reply);
      size_t sent = 0;
      while (sent < wire.size()) {
        const ssize_t w = ::write(fd, wire.data() + sent, wire.size() - sent);
        if (w <= 0) {
          poisoned = true;
          break;
        }
        sent += static_cast<size_t>(w);
      }
      if (poisoned) break;
    }
    if (poisoned) break;
    buf.erase(0, off);
  }
  ::close(fd);
}

}  // namespace bespokv
