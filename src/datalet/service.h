// DataletService: exposes a datalet over the fabric. Controlets normally
// co-locate with their datalet and call the engine directly (the paper's
// one-to-one controlet–datalet mapping); this service enables the N-to-1 /
// remote mappings and standalone datalet processes.
//
// DataletHandle abstracts over the two cases so controlet code is identical
// for local and remote datalets.
#pragma once

#include <memory>

#include "src/datalet/datalet.h"
#include "src/net/runtime.h"

namespace bespokv {

class DataletService : public Service {
 public:
  explicit DataletService(std::shared_ptr<Datalet> datalet)
      : datalet_(std::move(datalet)) {}

  // First start attaches engine metrics; a re-start (Fabric::restart after a
  // node fault) models a power cut — the engine crash_restarts and recovers
  // whatever its durability mode preserved.
  void start(Runtime& rt) override;
  void handle(const Addr& from, Message req, Replier reply) override;

  Datalet* datalet() { return datalet_.get(); }
  // Mutations rejected by the epoch fence (see handle()).
  uint64_t fence_rejects() const { return fence_rejects_; }

 private:
  std::shared_ptr<Datalet> datalet_;
  bool started_ = false;
  // Epoch fence for the remote-mapping apply path: ratcheted from the
  // highest epoch stamped on any request we have served, so once a
  // post-failover controlet has written here, a deposed controlet's
  // stale-epoch mutations are rejected with kConflict. (Co-located
  // controlets call the engine directly and are fenced upstream.)
  uint64_t epoch_floor_ = 0;
  uint64_t fence_rejects_ = 0;
  // "datalet.*" instrumentation, cached from the node registry on first use
  // (the service may also be constructed without ever joining a fabric).
  obs::Counter* ops_ = nullptr;
  Histogram* apply_us_ = nullptr;
};

// Uniform async datalet access for controlets: local engine call or RPC.
class DataletHandle {
 public:
  // Local: direct engine access (controlet and datalet share a node).
  explicit DataletHandle(std::shared_ptr<Datalet> local)
      : local_(std::move(local)) {}
  // Remote: RPC to a DataletService at `addr`.
  DataletHandle(Runtime* rt, Addr addr) : rt_(rt), remote_(std::move(addr)) {}

  bool is_local() const { return local_ != nullptr; }
  Datalet* local() { return local_.get(); }
  const Addr& remote() const { return remote_; }

  // Issues the datalet op and completes `done` with the reply message
  // (local calls complete inline).
  void execute(Message req, std::function<void(Message)> done);

  // Builds the reply for `req` against a raw engine (shared with the service).
  static Message apply(Datalet& d, const Message& req);

 private:
  std::shared_ptr<Datalet> local_;
  Runtime* rt_ = nullptr;
  Addr remote_;
};

}  // namespace bespokv
