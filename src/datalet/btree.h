// tMT: ordered in-memory datalet (the paper's Masstree-based template).
//
// A B+-tree: values live only in leaves, leaves are chained for range scans
// (§IV-B range query support). Deletions remove entries from leaves without
// rebalancing — the standard trade-off for in-memory trees where leaf
// occupancy recovers under continued inserts.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/datalet/datalet.h"

namespace bespokv {

class BTreeDatalet : public Datalet {
 public:
  BTreeDatalet();
  ~BTreeDatalet() override;

  const char* kind() const override { return "tMT"; }

  Status put(std::string_view key, std::string_view value, uint64_t seq) override;
  Result<Entry> get(std::string_view key) const override;
  Status del(std::string_view key, uint64_t seq) override;
  Status put_if_newer(std::string_view key, std::string_view value,
                      uint64_t seq) override;

  Result<std::vector<KV>> scan(std::string_view start, std::string_view end,
                               uint32_t limit) const override;
  bool supports_scan() const override { return true; }

  size_t size() const override { return count_; }
  void for_each(const std::function<void(std::string_view, const Entry&)>& fn)
      const override;
  void clear() override;

  // Test hooks: structural invariants.
  int height() const;
  bool check_invariants() const;

 private:
  static constexpr int kFanout = 64;       // max children per internal node
  static constexpr int kLeafCap = 64;      // max entries per leaf

  struct Node;
  struct Internal;
  struct Leaf;

  Leaf* find_leaf(std::string_view key) const;
  // Inserts into the subtree; if the child split, returns the separator key
  // and the new right sibling to be inserted into the parent.
  struct SplitResult {
    bool split = false;
    std::string sep;
    Node* right = nullptr;
  };
  SplitResult insert_into(Node* node, std::string_view key,
                          std::string_view value, uint64_t seq, bool lww,
                          bool* inserted);
  void destroy(Node* node);
  bool check_node(const Node* node, const std::string* lo,
                  const std::string* hi, int depth, int leaf_depth) const;

  Node* root_ = nullptr;
  Leaf* first_leaf_ = nullptr;
  size_t count_ = 0;
};

}  // namespace bespokv
