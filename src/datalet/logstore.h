// tLog: persistent log-structured datalet — an append-only record log with an
// in-memory hash index (the paper: "tLog, a persistent log-structured store
// that uses tHT as the in-memory index", kept on HDD in the Fig. 6 use case).
//
// Records use the shared WAL framing (src/storage/wal.h, CRC32C over the
// body): u32 crc | u32 len | u8 type (1=put, 2=del) | u64 seq | payload,
// where the tLog payload is u32 klen | key | value.
// On open, the log is replayed to rebuild the index (scan_frames truncates a
// torn tail). compact() rewrites only live records into a fresh generation.
//
// In file mode only the index lives in memory: every Get goes through
// pread(2) on the log file (the paper's Fig. 6 "Log" datalet is the one that
// persists to HDD — reads pay the storage path). Memory mode (dir == "")
// keeps the byte-identical log image in RAM for simulations.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "src/datalet/datalet.h"

namespace bespokv {

class LogStoreDatalet : public Datalet {
 public:
  // dir == "" keeps the log in memory (byte-faithful, no file I/O): used by
  // simulations. Otherwise records are appended to <dir>/datalet.log.
  explicit LogStoreDatalet(const DataletConfig& cfg = {});
  ~LogStoreDatalet() override;

  const char* kind() const override { return "tLog"; }

  Status put(std::string_view key, std::string_view value, uint64_t seq) override;
  Result<Entry> get(std::string_view key) const override;
  Status del(std::string_view key, uint64_t seq) override;
  Status put_if_newer(std::string_view key, std::string_view value,
                      uint64_t seq) override;

  size_t size() const override { return index_.size(); }
  void for_each(const std::function<void(std::string_view, const Entry&)>& fn)
      const override;
  void clear() override;

  // Garbage-collects dead records. Returns bytes reclaimed.
  Result<uint64_t> compact();

  uint64_t log_bytes() const { return current_size(); }
  // Replays an existing on-disk log into the index (called by the ctor).
  Status recover();

 private:
  struct Pointer {
    uint64_t offset;   // record start within log_
    uint32_t vlen;
    uint64_t seq;
  };

  Status append_record(uint8_t type, std::string_view key,
                       std::string_view value, uint64_t seq);
  void maybe_sync();
  std::string read_value(const Pointer& p, std::string_view key) const;
  uint64_t current_size() const { return fd_ >= 0 ? file_bytes_ : log_.size(); }

  DataletConfig cfg_;
  std::string path_;
  int fd_ = -1;                   // <0 in memory mode
  uint64_t file_bytes_ = 0;       // append offset in file mode
  std::string log_;               // memory-mode log image (empty in file mode)
  std::unordered_map<std::string, Pointer> index_;
  uint32_t unsynced_ = 0;
  uint64_t live_bytes_ = 0;
};

}  // namespace bespokv
