// The datalet API (paper Table II): the only interface a single-server store
// must implement to be dropped into bespoKV. Datalets are completely unaware
// of distribution; controlets provide replication/topology/consistency.
//
// Entries carry a sequence number so controlets can do last-writer-wins
// application of asynchronously propagated or log-replayed writes, and so
// recovery snapshots preserve versions. Engines that do not care simply store
// and return it.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/proto/message.h"

namespace bespokv {

struct Entry {
  std::string value;
  uint64_t seq = 0;
};

class Datalet {
 public:
  virtual ~Datalet() = default;

  virtual const char* kind() const = 0;

  // Core KV interface (Table II).
  virtual Status put(std::string_view key, std::string_view value,
                     uint64_t seq = 0) = 0;
  virtual Result<Entry> get(std::string_view key) const = 0;
  virtual Status del(std::string_view key, uint64_t seq = 0) = 0;

  // LWW apply: writes only if `seq` is >= the stored sequence (used by EC
  // propagation and shared-log replay). Default forwards to put().
  virtual Status put_if_newer(std::string_view key, std::string_view value,
                              uint64_t seq);

  // Range query support (§IV-B). Engines without ordered storage return
  // kInvalid. `end` is exclusive; empty `end` means "to the last key".
  virtual Result<std::vector<KV>> scan(std::string_view start,
                                       std::string_view end,
                                       uint32_t limit) const;
  virtual bool supports_scan() const { return false; }

  virtual size_t size() const = 0;

  // Full iteration for recovery snapshots and cross-datalet sync. The
  // callback must not mutate the datalet.
  virtual void for_each(
      const std::function<void(std::string_view key, const Entry&)>& fn) const = 0;

  // Drops all data (transition tooling and tests).
  virtual void clear() = 0;
};

struct DataletConfig {
  // tLog / tLSM persistence root; empty = keep data purely in memory.
  std::string dir;
  // tLog: fdatasync after this many appends (0 = never sync).
  uint32_t sync_every = 64;
  // tLSM: flush the memtable after this many entries.
  uint32_t memtable_limit = 16 * 1024;
  // tLSM: merge runs when a level holds more than this many.
  uint32_t max_runs_per_level = 4;
  // tHT: initial bucket-array capacity (rounded up to a power of two).
  uint32_t initial_capacity = 1024;
  // tLSM: disable per-run bloom filters (ablation knob; see bench_ablation).
  bool lsm_disable_bloom = false;
};

// Factory for the built-in engines: "tHT", "tLog", "tMT", "tLSM", and the
// ported text-protocol stores "tRedis" / "tSSDB" (hash-backed, RESP/SSDB
// wire protocols — see proto/text_protocol.h).
std::unique_ptr<Datalet> make_datalet(const std::string& kind,
                                      const DataletConfig& config = {});

}  // namespace bespokv
