// The datalet API (paper Table II): the only interface a single-server store
// must implement to be dropped into bespoKV. Datalets are completely unaware
// of distribution; controlets provide replication/topology/consistency.
//
// Entries carry a sequence number so controlets can do last-writer-wins
// application of asynchronously propagated or log-replayed writes, and so
// recovery snapshots preserve versions. Engines that do not care simply store
// and return it.
//
// Durability hooks: engines backed by src/storage (a DurableDatalet wrapper,
// or tLSM/tLog in disk mode) override crash_restart()/durable_seq()/
// token_pins() so controlets and services can model power loss, recover from
// local state, and reseed idempotency dedup. The defaults describe a
// volatile engine: crash_restart() keeps in-memory state (a process restart,
// not a power cut) and nothing is ever durable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/proto/message.h"
#include "src/storage/env.h"
#include "src/storage/pin.h"

namespace bespokv {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct Entry {
  std::string value;
  uint64_t seq = 0;
};

class Datalet {
 public:
  virtual ~Datalet() = default;

  virtual const char* kind() const = 0;

  // Core KV interface (Table II).
  virtual Status put(std::string_view key, std::string_view value,
                     uint64_t seq = 0) = 0;
  virtual Result<Entry> get(std::string_view key) const = 0;
  virtual Status del(std::string_view key, uint64_t seq = 0) = 0;

  // LWW apply: writes only if `seq` is >= the stored sequence (used by EC
  // propagation and shared-log replay). Default forwards to put().
  // (Defaults are inline so the interface is header-complete: the storage
  // layer subclasses Datalet without linking against the engine library.)
  virtual Status put_if_newer(std::string_view key, std::string_view value,
                              uint64_t seq) {
    return put(key, value, seq);
  }

  // Range query support (§IV-B). Engines without ordered storage return
  // kInvalid. `end` is exclusive; empty `end` means "to the last key".
  virtual Result<std::vector<KV>> scan(std::string_view start,
                                       std::string_view end,
                                       uint32_t limit) const {
    (void)start, (void)end, (void)limit;
    return Status::Invalid(std::string(kind()) + " does not support range queries");
  }
  virtual bool supports_scan() const { return false; }

  virtual size_t size() const = 0;

  // Full iteration for recovery snapshots and cross-datalet sync. The
  // callback must not mutate the datalet.
  virtual void for_each(
      const std::function<void(std::string_view key, const Entry&)>& fn) const = 0;

  // Drops all data (transition tooling and tests).
  virtual void clear() = 0;

  // --- durability hooks (src/storage) ---

  // Models a machine power cut + reboot: lose everything not durably on
  // disk, then recover from checkpoint + WAL. Volatile engines keep their
  // in-memory state (a plain process restart).
  virtual Status crash_restart() { return Status::Ok(); }
  // Idempotency token of the *next* mutating op, persisted with its WAL
  // record (0 = none). Set by the apply layer just before put/del.
  virtual void set_op_token(uint64_t token) { (void)token; }
  // Highest seq recovered from (or known to be in) durable local state; the
  // peer catch-up floor — only the suffix past it must come off the wire.
  virtual uint64_t durable_seq() const { return 0; }
  // True when an Ok mutation implies the write is on disk (WAL enabled and
  // fsync=always); gates the shared-log durable-watermark reporting.
  virtual bool durable() const { return false; }
  // Recovered idempotency pins, oldest first (reseeds dedup windows).
  virtual std::vector<storage::TokenPin> token_pins() const { return {}; }
  // Register engine counters (flushes, compactions, WAL syncs, ...).
  virtual void attach_metrics(obs::MetricsRegistry& m) { (void)m; }

  // --- cache-tier hook ---

  // Absolute-time source (µs on the fabric clock) for TTL-aware wrappers:
  // the hosting controlet/service injects its Runtime clock at start so the
  // CacheTierDatalet can expire envelopes lazily. Default: no clock, no
  // engine-level expiry (controlet read paths still filter).
  virtual void set_clock(std::function<uint64_t()> now_us) { (void)now_us; }
};

struct DataletConfig {
  // tLog / tLSM persistence root; empty = keep data purely in memory.
  std::string dir;
  // tLog: fdatasync after this many appends (0 = never sync).
  uint32_t sync_every = 64;
  // tLSM: flush the memtable after this many entries.
  uint32_t memtable_limit = 16 * 1024;
  // tLSM: merge runs when a level holds more than this many.
  uint32_t max_runs_per_level = 4;
  // tHT: initial bucket-array capacity (rounded up to a power of two).
  uint32_t initial_capacity = 1024;
  // tLSM: disable per-run bloom filters (ablation knob; see bench_ablation).
  bool lsm_disable_bloom = false;

  // --- durability (src/storage) ---
  // Non-empty: make the engine durable under this directory. tLSM goes into
  // native disk mode (WAL + SSTables); every other kind is wrapped in a
  // DurableDatalet (WAL + checkpoints around the volatile engine).
  std::string durable_dir;
  // Storage backend; null = posix_env(). The verify harness shares one
  // MemEnv across a simulated cluster so it can model power loss.
  std::shared_ptr<storage::Env> env;
  std::string fsync = "always";  // always | groupcommit | os
  uint64_t group_interval_us = 100;
  uint32_t group_batch = 8;
  // True on thread/TCP fabrics: mutations block in group commit. Sim event
  // loops must stay non-blocking (policy approximated by batch counting).
  bool durable_blocking = false;
  // Negative-gate knob: drop all WAL writes, making crash_restart provably
  // lossy (the verify harness's paired acceptance test).
  bool wal_disable = false;
  uint64_t checkpoint_bytes = 4 << 20;  // auto-checkpoint threshold, 0 = manual
  bool torn_writes = true;  // MemEnv power loss tears/garbages unsynced tails
  uint64_t crash_seed = 1;
  // tLSM: merge on a background thread (real-thread fabrics only; the
  // deterministic sim keeps compaction inline).
  bool lsm_background_compaction = false;

  // --- cache tier (TTL / eviction; src/datalet/cache_tier.h) ---
  // >0 wraps the engine in a CacheTierDatalet: once resident key+value bytes
  // exceed this budget, entries are evicted under cache_policy. 0 = off.
  uint64_t cache_memory_bytes = 0;
  std::string cache_policy = "lru";  // lru | lfu
};

// Factory for the built-in engines: "tHT", "tLog", "tMT", "tLSM", and the
// ported text-protocol stores "tRedis" / "tSSDB" (hash-backed, RESP/SSDB
// wire protocols — see proto/text_protocol.h).
std::unique_ptr<Datalet> make_datalet(const std::string& kind,
                                      const DataletConfig& config = {});

}  // namespace bespokv
