// RedisLikeBackend: a single-server store with Redis-style *built-in*
// master-slave asynchronous replication. The proxy baselines are layered on
// top of it exactly like Twemproxy/Dynomite are layered on Redis: Twemproxy
// only routes (replication happens here, in the backend); Dynomite adds its
// own cross-replica traffic and leans on this backend's streaming
// recovery for failover (§IX, §D).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "src/datalet/datalet.h"
#include "src/net/runtime.h"

namespace bespokv::baselines {

struct RedisLikeConfig {
  std::vector<Addr> slaves;           // async replication targets
  uint64_t repl_flush_us = 2'000;     // replication batch cadence
  uint32_t repl_batch = 128;
};

class RedisLikeBackend : public Service {
 public:
  explicit RedisLikeBackend(RedisLikeConfig cfg = {});

  void start(Runtime& rt) override;
  void stop() override;
  void handle(const Addr& from, Message req, Replier reply) override;

  Datalet* engine() { return engine_.get(); }

 private:
  void flush();

  RedisLikeConfig cfg_;
  std::unique_ptr<Datalet> engine_;
  std::deque<KV> backlog_;
  std::deque<std::string> backlog_ops_;
  uint64_t seq_ = 0;
  uint64_t flush_timer_ = 0;
};

}  // namespace bespokv::baselines
