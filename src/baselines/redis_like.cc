#include "src/baselines/redis_like.h"

#include "src/datalet/service.h"

namespace bespokv::baselines {

RedisLikeBackend::RedisLikeBackend(RedisLikeConfig cfg)
    : cfg_(std::move(cfg)), engine_(make_datalet("tRedis", {})) {}

void RedisLikeBackend::start(Runtime& rt) {
  Service::start(rt);
  if (!cfg_.slaves.empty()) {
    flush_timer_ = rt_->set_periodic(cfg_.repl_flush_us, [this] { flush(); });
  }
}

void RedisLikeBackend::stop() {
  if (rt_ != nullptr && flush_timer_ != 0) rt_->cancel_timer(flush_timer_);
  flush_timer_ = 0;
}

void RedisLikeBackend::handle(const Addr&, Message req, Replier reply) {
  switch (req.op) {
    case Op::kPut:
    case Op::kDel: {
      req.seq = ++seq_;
      Message rep = DataletHandle::apply(*engine_, req);
      backlog_.push_back(KV{req.key, req.value, req.seq});
      backlog_ops_.push_back(req.op == Op::kDel ? "D" : "P");
      if (backlog_.size() >= cfg_.repl_batch) flush();
      reply(std::move(rep));
      return;
    }
    case Op::kGet:
    case Op::kScan:
    case Op::kSnapshotReq:
      reply(DataletHandle::apply(*engine_, req));
      return;
    case Op::kPropagate: {
      for (size_t i = 0; i < req.kvs.size(); ++i) {
        const bool is_del = i < req.strs.size() && req.strs[i] == "D";
        if (is_del) {
          engine_->del(req.kvs[i].key, req.kvs[i].seq);
        } else {
          engine_->put_if_newer(req.kvs[i].key, req.kvs[i].value, req.kvs[i].seq);
        }
      }
      reply(Message::reply(Code::kOk));
      return;
    }
    default:
      reply(Message::reply(Code::kInvalid));
  }
}

void RedisLikeBackend::flush() {
  if (backlog_.empty()) return;
  Message m;
  m.op = Op::kPropagate;
  while (!backlog_.empty() && m.kvs.size() < cfg_.repl_batch) {
    m.kvs.push_back(std::move(backlog_.front()));
    m.strs.push_back(std::move(backlog_ops_.front()));
    backlog_.pop_front();
    backlog_ops_.pop_front();
  }
  for (const auto& slave : cfg_.slaves) {
    rt_->send(slave, m);
  }
}

}  // namespace bespokv::baselines
