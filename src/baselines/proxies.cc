#include "src/baselines/proxies.h"

#include "src/common/hash.h"
#include "src/proto/message.h"

namespace bespokv::baselines {

void TwemproxyLike::handle(const Addr&, Message req, Replier reply) {
  if (cfg_.shards.empty()) {
    reply(Message::reply(Code::kUnavailable));
    return;
  }
  const size_t shard =
      mix64(fnv1a64(req.key)) % cfg_.shards.size();
  const auto& pool = cfg_.shards[shard].backends;
  if (pool.empty()) {
    reply(Message::reply(Code::kUnavailable));
    return;
  }
  Addr target;
  if (req.op == Op::kGet || req.op == Op::kScan) {
    target = pool[++salt_ % pool.size()];  // reads off any replica (EC)
  } else {
    target = pool.front();  // writes to the pool master
  }
  rt_->call(target, std::move(req),
            [reply](Status s, Message rep) {
              reply(s.ok() ? std::move(rep) : Message::reply(Code::kUnavailable));
            });
}

void DynomiteLike::start(Runtime& rt) {
  Service::start(rt);
  flush_timer_ = rt_->set_periodic(cfg_.repl_flush_us, [this] { flush(); });
}

void DynomiteLike::stop() {
  if (rt_ != nullptr && flush_timer_ != 0) rt_->cancel_timer(flush_timer_);
  flush_timer_ = 0;
}

void DynomiteLike::handle(const Addr&, Message req, Replier reply) {
  switch (req.op) {
    case Op::kPut:
    case Op::kDel: {
      // Timestamp for LWW conflict resolution; concurrent writes within the
      // replication window may still conflict (Dynomite's documented gap).
      req.seq = (rt_->now_us() << 8) | (++lamport_ & 0xff);
      backlog_.push_back(KV{req.key, req.value, req.seq});
      backlog_ops_.push_back(req.op == Op::kDel ? "D" : "P");
      const bool full = backlog_.size() >= cfg_.repl_batch;
      rt_->call(cfg_.local_backend, std::move(req),
                [reply](Status s, Message rep) {
                  reply(s.ok() ? std::move(rep)
                               : Message::reply(Code::kUnavailable));
                });
      if (full) flush();
      return;
    }
    case Op::kGet:
    case Op::kScan:
      rt_->call(cfg_.local_backend, std::move(req),
                [reply](Status s, Message rep) {
                  reply(s.ok() ? std::move(rep)
                               : Message::reply(Code::kUnavailable));
                });
      return;
    case Op::kPropagate: {
      // Peer replica traffic: apply onto the local backend.
      rt_->call(cfg_.local_backend, std::move(req),
                [reply](Status s, Message rep) {
                  reply(s.ok() ? std::move(rep)
                               : Message::reply(Code::kUnavailable));
                });
      return;
    }
    default:
      reply(Message::reply(Code::kInvalid));
  }
}

void DynomiteLike::flush() {
  if (backlog_.empty()) return;
  Message m;
  m.op = Op::kPropagate;
  m.kvs = std::move(backlog_);
  m.strs = std::move(backlog_ops_);
  backlog_.clear();
  backlog_ops_.clear();
  for (const auto& peer : cfg_.peer_proxies) {
    rt_->send(peer, m);
  }
}

}  // namespace bespokv::baselines
