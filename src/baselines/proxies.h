// Proxy-based baselines (Table I, Fig. 11):
//
//  * TwemproxyLike — Twitter's twemproxy: a stateless sharding proxy.
//    Consistent-hash routing to backend pools, no replication of its own
//    (the Redis backends replicate master->slave themselves), writes to the
//    pool master, reads spread over the pool. Supports MS+EC only.
//
//  * DynomiteLike — Netflix's Dynomite: a co-located proxy per backend node
//    turning single-server stores into an AA+EC ring. A write lands on any
//    proxy, is applied to the local backend and asynchronously forwarded to
//    the peer replicas; reads are local. No global ordering (the conflict
//    window the paper calls out in §C.C).
#pragma once

#include <vector>

#include "src/net/runtime.h"

namespace bespokv::baselines {

struct ProxyShard {
  std::vector<Addr> backends;  // [0] = master (Twemproxy), all active (Dynomite)
};

struct TwemproxyConfig {
  std::vector<ProxyShard> shards;
};

class TwemproxyLike : public Service {
 public:
  explicit TwemproxyLike(TwemproxyConfig cfg) : cfg_(std::move(cfg)) {}
  void handle(const Addr& from, Message req, Replier reply) override;

 private:
  TwemproxyConfig cfg_;
  uint64_t salt_ = 0;
};

struct DynomiteConfig {
  Addr local_backend;
  std::vector<Addr> peer_proxies;  // other replicas' proxies in this shard
  uint64_t repl_flush_us = 2'000;
  uint32_t repl_batch = 128;
};

class DynomiteLike : public Service {
 public:
  explicit DynomiteLike(DynomiteConfig cfg) : cfg_(std::move(cfg)) {}

  void start(Runtime& rt) override;
  void stop() override;
  void handle(const Addr& from, Message req, Replier reply) override;

 private:
  void flush();

  DynomiteConfig cfg_;
  std::vector<KV> backlog_;
  std::vector<std::string> backlog_ops_;
  uint64_t lamport_ = 0;  // timestamp versions for LWW without global order
  uint64_t flush_timer_ = 0;
};

}  // namespace bespokv::baselines
