// Natively-distributed baselines (Fig. 12): simplified Cassandra-like and
// Voldemort-like stores, both Dynamo descendants (AA topology, EC with a
// consistency level of ONE, as configured in §VIII-F).
//
// Request path (the structural difference from bespoKV): the node a client
// contacts acts as a *request coordinator* — it hashes the key onto the
// ring, forwards to the replica set, waits for ONE ack and replies. Reads
// pay the same extra hop. Storage: Cassandra-like nodes run the tLSM engine
// (compaction and read amplification included — the overhead §VIII-F blames
// for Cassandra's gap); Voldemort-like nodes run in-memory tHT.
#pragma once

#include <memory>
#include <vector>

#include "src/datalet/datalet.h"
#include "src/net/runtime.h"

namespace bespokv::baselines {

struct NativeStoreConfig {
  std::vector<Addr> ring;      // all nodes, position = ring order
  size_t my_index = 0;
  int replication_factor = 3;
  std::string engine = "tLSM"; // "tLSM" = cassandra-like, "tHT" = voldemort
  uint64_t hint_flush_us = 2'000;  // async replica write-behind cadence
};

class NativeStoreNode : public Service {
 public:
  explicit NativeStoreNode(NativeStoreConfig cfg);

  void start(Runtime& rt) override;
  void stop() override;
  void handle(const Addr& from, Message req, Replier reply) override;

  Datalet* engine() { return engine_.get(); }

 private:
  // First `replication_factor` nodes clockwise from the key's position.
  std::vector<size_t> replica_set(std::string_view key) const;
  void coordinate_write(Message req, Replier reply);
  void coordinate_read(Message req, Replier reply);

  NativeStoreConfig cfg_;
  std::unique_ptr<Datalet> engine_;
  uint64_t lamport_ = 0;
};

}  // namespace bespokv::baselines
