#include "src/baselines/native.h"

#include <memory>

#include "src/common/hash.h"
#include "src/datalet/service.h"

namespace bespokv::baselines {

NativeStoreNode::NativeStoreNode(NativeStoreConfig cfg)
    : cfg_(std::move(cfg)), engine_(make_datalet(cfg_.engine, {})) {
  if (engine_ == nullptr) engine_ = make_datalet("tHT", {});
}

void NativeStoreNode::start(Runtime& rt) { Service::start(rt); }

void NativeStoreNode::stop() {}

std::vector<size_t> NativeStoreNode::replica_set(std::string_view key) const {
  std::vector<size_t> out;
  if (cfg_.ring.empty()) return out;
  const size_t start = mix64(fnv1a64(key)) % cfg_.ring.size();
  const size_t rf = std::min<size_t>(static_cast<size_t>(cfg_.replication_factor),
                                     cfg_.ring.size());
  for (size_t i = 0; i < rf; ++i) {
    out.push_back((start + i) % cfg_.ring.size());
  }
  return out;
}

void NativeStoreNode::handle(const Addr&, Message req, Replier reply) {
  switch (req.op) {
    case Op::kPut:
    case Op::kDel:
      coordinate_write(std::move(req), std::move(reply));
      return;
    case Op::kGet:
    case Op::kScan:
      coordinate_read(std::move(req), std::move(reply));
      return;
    case Op::kPropagate: {  // internal replica write
      for (size_t i = 0; i < req.kvs.size(); ++i) {
        const bool is_del = i < req.strs.size() && req.strs[i] == "D";
        if (is_del) {
          engine_->del(req.kvs[i].key, req.kvs[i].seq);
        } else {
          engine_->put_if_newer(req.kvs[i].key, req.kvs[i].value,
                                req.kvs[i].seq);
        }
      }
      reply(Message::reply(Code::kOk));
      return;
    }
    case Op::kSnapshotReq:
      reply(DataletHandle::apply(*engine_, req));
      return;
    default:
      reply(Message::reply(Code::kInvalid));
  }
}

void NativeStoreNode::coordinate_write(Message req, Replier reply) {
  const auto replicas = replica_set(req.key);
  if (replicas.empty()) {
    reply(Message::reply(Code::kUnavailable));
    return;
  }
  const uint64_t version = (rt_->now_us() << 8) | (++lamport_ & 0xff);
  Message w;
  w.op = Op::kPropagate;
  w.kvs.push_back(KV{req.key, req.value, version});
  w.strs.push_back(req.op == Op::kDel ? "D" : "P");

  // Consistency level ONE: ack the client after the first replica commits;
  // the rest complete in the background (write-behind / hinted handoff).
  auto acked = std::make_shared<bool>(false);
  for (size_t idx : replicas) {
    const Addr& target = cfg_.ring[idx];
    if (target == rt_->self()) {
      engine_->put_if_newer(w.kvs[0].key, w.kvs[0].value, version);
      if (!*acked) {
        *acked = true;
        reply(Message::reply(Code::kOk));
      }
      continue;
    }
    rt_->call(target, w, [acked, reply](Status s, Message rep) {
      if (!*acked) {
        *acked = true;
        if (s.ok() && rep.code == Code::kOk) {
          reply(Message::reply(Code::kOk));
        } else {
          reply(Message::reply(Code::kUnavailable));
        }
      }
    });
  }
}

void NativeStoreNode::coordinate_read(Message req, Replier reply) {
  const auto replicas = replica_set(req.key);
  if (replicas.empty()) {
    reply(Message::reply(Code::kUnavailable));
    return;
  }
  // Read at ONE: prefer the local replica, otherwise one forwarding hop.
  for (size_t idx : replicas) {
    if (cfg_.ring[idx] == rt_->self()) {
      reply(DataletHandle::apply(*engine_, req));
      return;
    }
  }
  const size_t pick = replicas[(lamport_++) % replicas.size()];
  rt_->call(cfg_.ring[pick], std::move(req),
            [reply](Status s, Message rep) {
              reply(s.ok() ? std::move(rep) : Message::reply(Code::kUnavailable));
            });
}

}  // namespace bespokv::baselines
