// OpenLoopDriver: open-loop load generation for the DES fabric. Unlike the
// closed-loop SimWorkloadDriver (one outstanding request per client), the
// open-loop driver schedules request *arrivals* from an ArrivalProcess
// (Poisson or bursty MMPP) independently of completions — the way a
// population of millions of independent clients behaves in aggregate. When
// the service point saturates, arrivals keep coming, the backlog grows, and
// latency diverges: exactly the queue-collapse regime a closed loop can
// never show (its clients self-throttle by waiting).
//
// Latency is measured from the *scheduled* arrival time, so there is no
// coordinated omission to correct: a request delayed behind a backlog is
// charged for the wait by construction.
//
// Shed requests (Code::kOverloaded after the client's retry budget) are
// counted separately from other errors so capacity benchmarks can report
// goodput vs shed rate per offered load.
#pragma once

#include <memory>
#include <vector>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/common/histogram.h"
#include "src/net/sim_fabric.h"
#include "src/workload/workload.h"

namespace bespokv {

struct OpenLoopOptions {
  // Fabric client nodes arrivals are spread across (round-robin). Each node
  // may carry many requests in flight; this is about traffic locality, not
  // concurrency limits.
  int num_client_nodes = 8;
  WorkloadSpec workload;
  ArrivalSpec arrival;
  std::string table;
  double strong_get_fraction = -1.0;
  uint64_t rpc_timeout_us = 1'000'000;
  // Safety valve for the generator itself: with shedding off and the system
  // past saturation, outstanding requests grow without bound. Arrivals past
  // this cap are counted as client_dropped instead of issued (0 = unbounded).
  uint64_t max_outstanding = 200'000;
  // Timeline bucketing for QPS-vs-time plots; 0 disables.
  uint64_t timeline_bucket_us = 0;
};

struct OpenLoopResult {
  uint64_t offered = 0;        // arrivals scheduled in the window
  uint64_t completed = 0;      // ok (+ kNotFound) completions
  uint64_t errors = 0;         // non-shed failures
  uint64_t shed = 0;           // kOverloaded after client retries
  uint64_t client_dropped = 0; // arrivals over max_outstanding, never issued
  uint64_t outstanding = 0;    // still in flight at collect() time
  uint64_t window_us = 0;
  double offered_qps = 0;
  double goodput_qps = 0;
  // Scheduled-arrival -> completion; open-loop, so CO-correct as recorded.
  Histogram latency_us;
  Histogram get_latency_us;
  Histogram put_latency_us;
  std::vector<uint64_t> timeline;  // completions per bucket since reset
};

class OpenLoopDriver {
 public:
  OpenLoopDriver(SimFabric& sim, Cluster& cluster, OpenLoopOptions opts);
  ~OpenLoopDriver();

  // Bulk-loads the working set into every replica (same as the closed loop).
  void preload();

  // Connects the client pool and begins the arrival process. Drive time with
  // sim.run_for(...) afterwards.
  void start();
  // Stops scheduling new arrivals (in-flight requests complete).
  void stop();

  void reset_window();
  OpenLoopResult collect() const;

 private:
  struct ClientState;
  void schedule_next();
  void issue(ClientState& c, uint64_t scheduled_at);
  void on_done(ClientState& c, OpType type, uint64_t scheduled_at, Status s);

  SimFabric& sim_;
  Cluster& cluster_;
  OpenLoopOptions opts_;
  std::vector<std::unique_ptr<ClientState>> clients_;
  std::unique_ptr<WorkloadGenerator> gen_;
  std::unique_ptr<ArrivalProcess> arrivals_;
  Rng rng_{0xA1157ULL};

  bool running_ = false;
  int pending_connects_ = 0;
  uint64_t next_client_ = 0;
  uint64_t outstanding_ = 0;
  uint64_t window_start_us_ = 0;

  uint64_t offered_ = 0;
  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
  uint64_t shed_ = 0;
  uint64_t client_dropped_ = 0;
  Histogram lat_, get_lat_, put_lat_;
  std::vector<uint64_t> timeline_;
};

}  // namespace bespokv
