#include "src/workload/open_loop.h"

#include "src/common/logging.h"

namespace bespokv {

struct OpenLoopDriver::ClientState {
  Addr addr;
  Runtime* rt = nullptr;
  std::unique_ptr<KvClient> kv;
  bool connected = false;
};

OpenLoopDriver::OpenLoopDriver(SimFabric& sim, Cluster& cluster,
                               OpenLoopOptions opts)
    : sim_(sim), cluster_(cluster), opts_(opts) {
  gen_ = std::make_unique<WorkloadGenerator>(opts_.workload, /*stream_id=*/1);
  arrivals_ = std::make_unique<ArrivalProcess>(opts_.arrival);
  for (int i = 0; i < opts_.num_client_nodes; ++i) {
    auto c = std::make_unique<ClientState>();
    c->addr = cluster_.options().name + "/olclient" + std::to_string(i);
    SimNodeOpts copts;
    copts.is_client = true;
    c->rt = sim_.add_node(c->addr,
                          std::make_shared<LambdaService>(
                              [](Runtime&, const Addr&, Message, Replier reply) {
                                reply(Message::reply(Code::kInvalid));
                              }),
                          copts);
    ClientConfig ccfg;
    ccfg.coordinator = cluster_.coordinator_addr();
    ccfg.rpc_timeout_us = opts_.rpc_timeout_us;
    c->kv = std::make_unique<KvClient>(c->rt, ccfg);
    clients_.push_back(std::move(c));
  }
}

OpenLoopDriver::~OpenLoopDriver() { running_ = false; }

void OpenLoopDriver::preload() {
  const ShardMap& map = cluster_.coordinator_service()->shard_map();
  WorkloadGenerator gen(opts_.workload);
  const std::string prefix = opts_.table.empty() ? "" : opts_.table + "\x1f";
  for (uint64_t i = 0; i < opts_.workload.num_keys; ++i) {
    const std::string key = prefix + gen.key_at(i);
    const std::string value = gen.value_for(i);
    auto sid = map.shard_for(key);
    if (!sid.ok()) continue;
    const int shard = static_cast<int>(sid.value());
    for (int r = 0; r < cluster_.options().num_replicas; ++r) {
      cluster_.datalet(shard, r)->put(key, value, /*seq=*/1);
    }
  }
}

void OpenLoopDriver::start() {
  running_ = true;
  window_start_us_ = sim_.now_us();
  pending_connects_ = static_cast<int>(clients_.size());
  for (auto& c : clients_) {
    ClientState* cs = c.get();
    cs->rt->post([this, cs] {
      cs->kv->connect([this, cs](Status s) {
        if (s.ok()) {
          cs->connected = true;
        } else {
          LOG_WARN << cs->addr << ": connect failed: " << s.to_string();
        }
        // The arrival clock starts once the whole pool is ready — connection
        // setup must not eat into the measured window.
        if (--pending_connects_ == 0 && running_) schedule_next();
      });
    });
  }
}

void OpenLoopDriver::stop() { running_ = false; }

void OpenLoopDriver::reset_window() {
  offered_ = completed_ = errors_ = shed_ = client_dropped_ = 0;
  lat_.reset();
  get_lat_.reset();
  put_lat_.reset();
  timeline_.clear();
  window_start_us_ = sim_.now_us();
}

void OpenLoopDriver::schedule_next() {
  if (!running_) return;
  // One global arrival stream, dealt round-robin over the client pool. The
  // timer lives on node 0's runtime; the DES is single-threaded, so issuing
  // on a sibling node from here is safe.
  const uint64_t gap = arrivals_->next_gap_us();
  Runtime* rt = clients_.front()->rt;
  rt->set_timer(gap, [this] {
    if (!running_) return;
    ++offered_;
    ClientState& c = *clients_[next_client_++ % clients_.size()];
    const uint64_t scheduled_at = c.rt->now_us();
    if (!c.connected) {
      ++errors_;
    } else if (opts_.max_outstanding > 0 &&
               outstanding_ >= opts_.max_outstanding) {
      ++client_dropped_;
    } else {
      ++outstanding_;
      issue(c, scheduled_at);
    }
    schedule_next();
  });
}

void OpenLoopDriver::on_done(ClientState& c, OpType type, uint64_t scheduled_at,
                             Status s) {
  --outstanding_;
  const uint64_t now = c.rt->now_us();
  const uint64_t lat = now - scheduled_at;
  if (s.ok() || s.code() == Code::kNotFound) {
    ++completed_;
    lat_.record(lat);
    (type == OpType::kPut || type == OpType::kDel || type == OpType::kRmw
         ? put_lat_
         : get_lat_)
        .record(lat);
    if (opts_.timeline_bucket_us > 0 && now >= window_start_us_) {
      const size_t bucket = static_cast<size_t>((now - window_start_us_) /
                                                opts_.timeline_bucket_us);
      if (timeline_.size() <= bucket) timeline_.resize(bucket + 1, 0);
      ++timeline_[bucket];
    }
  } else if (s.code() == Code::kOverloaded) {
    ++shed_;
  } else {
    ++errors_;
  }
}

void OpenLoopDriver::issue(ClientState& c, uint64_t scheduled_at) {
  WorkloadOp op = gen_->next();
  ClientState* cs = &c;
  switch (op.type) {
    case OpType::kPut:
      cs->kv->put_ttl(op.key, op.value, op.ttl_ms,
                      [this, cs, scheduled_at](Status s) {
                        on_done(*cs, OpType::kPut, scheduled_at, s);
                      },
                      opts_.table);
      break;
    case OpType::kRmw: {
      std::string key = op.key, value = op.value;
      const uint32_t ttl = op.ttl_ms;
      cs->kv->get(key,
                  [this, cs, scheduled_at, key, value,
                   ttl](Result<std::string> r) {
                    if (!r.ok() && r.status().code() == Code::kOverloaded) {
                      // Shed on the read half: the whole RMW counts as shed.
                      on_done(*cs, OpType::kRmw, scheduled_at, r.status());
                      return;
                    }
                    cs->kv->put_ttl(key, value, ttl,
                                    [this, cs, scheduled_at](Status s) {
                                      on_done(*cs, OpType::kRmw, scheduled_at,
                                              s);
                                    },
                                    opts_.table);
                  },
                  opts_.table);
      break;
    }
    case OpType::kDel:
      cs->kv->del(op.key,
                  [this, cs, scheduled_at](Status s) {
                    on_done(*cs, OpType::kDel, scheduled_at, s);
                  },
                  opts_.table);
      break;
    case OpType::kScan:
      cs->kv->scan(op.key, op.scan_end, op.scan_limit,
                   [this, cs, scheduled_at](Result<std::vector<KV>> r) {
                     on_done(*cs, OpType::kScan, scheduled_at, r.status());
                   },
                   opts_.table);
      break;
    case OpType::kGet: {
      ConsistencyLevel level = ConsistencyLevel::kDefault;
      if (opts_.strong_get_fraction >= 0.0) {
        level = rng_.next_bool(opts_.strong_get_fraction)
                    ? ConsistencyLevel::kStrong
                    : ConsistencyLevel::kEventual;
      }
      cs->kv->get(op.key,
                  [this, cs, scheduled_at](Result<std::string> r) {
                    on_done(*cs, OpType::kGet, scheduled_at, r.status());
                  },
                  opts_.table, level);
      break;
    }
  }
}

OpenLoopResult OpenLoopDriver::collect() const {
  OpenLoopResult r;
  r.offered = offered_;
  r.completed = completed_;
  r.errors = errors_;
  r.shed = shed_;
  r.client_dropped = client_dropped_;
  r.outstanding = outstanding_;
  r.window_us = sim_.now_us() - window_start_us_;
  const double w = static_cast<double>(r.window_us);
  r.offered_qps = r.window_us == 0 ? 0 : static_cast<double>(offered_) * 1e6 / w;
  r.goodput_qps =
      r.window_us == 0 ? 0 : static_cast<double>(completed_) * 1e6 / w;
  r.latency_us = lat_;
  r.get_latency_us = get_lat_;
  r.put_latency_us = put_lat_;
  r.timeline = timeline_;
  return r;
}

}  // namespace bespokv
