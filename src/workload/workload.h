// Workload generators (§VIII-A):
//  * YCSB-style: 10M-tuple keyspace, 16B keys / 32B values, uniform or
//    Zipf(0.99) popularity, GET ratios 95%/50%, and the 95%-SCAN variant.
//  * HPC traces: job-launch and I/O-forwarding mixes (§VIII-A: I/O forwarding
//    is Get:Put 62:38, job launch has 12% fewer reads => 50:50), Lustre
//    monitoring (put-dominated time series, §VI-A), analytics (read-heavy
//    uniform), and DL training ingest (large-value read-mostly, §VI-B).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/json.h"
#include "src/common/rng.h"

namespace bespokv {

enum class OpType : uint8_t { kPut, kGet, kDel, kScan };

struct WorkloadOp {
  OpType type;
  std::string key;
  std::string value;      // puts only
  std::string scan_end;   // scans only
  uint32_t scan_limit = 0;
};

struct WorkloadSpec {
  uint64_t num_keys = 1'000'000;
  size_t key_size = 16;
  size_t value_size = 32;
  double get_ratio = 0.95;   // remainder split between put and scan
  double scan_ratio = 0.0;
  double del_ratio = 0.0;
  bool zipfian = false;      // false = uniform
  double zipf_theta = 0.99;
  uint32_t scan_span = 100;  // keys per scan
  uint64_t seed = 1;

  // JSON round-trip, used by the verification harness to make a scenario's
  // workload reproducible from its dumped artifact.
  Json to_json() const;
  static Result<WorkloadSpec> from_json(const Json& j);

  // Named presets.
  static WorkloadSpec ycsb_read_mostly(bool zipf);     // 95% GET
  static WorkloadSpec ycsb_update_heavy(bool zipf);    // 50% GET
  static WorkloadSpec ycsb_scan_heavy(bool zipf);      // 95% SCAN, 5% PUT
  static WorkloadSpec hpc_job_launch();                // 50:50, bursty keys
  static WorkloadSpec hpc_io_forwarding();             // 62:38 R:W
  static WorkloadSpec hpc_monitoring();                // 95% PUT time series
  static WorkloadSpec hpc_analytics();                 // 100% GET uniform
  static WorkloadSpec dl_ingest(size_t image_bytes);   // large-value reads
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadSpec spec, uint64_t stream_id = 0);

  WorkloadOp next();

  // Key for loading the store before measurement (dense enumeration).
  std::string key_at(uint64_t index) const;
  std::string value_for(uint64_t index);
  const WorkloadSpec& spec() const { return spec_; }

 private:
  uint64_t next_index();

  WorkloadSpec spec_;
  Rng rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

}  // namespace bespokv
