// Workload generators (§VIII-A):
//  * YCSB-style: 10M-tuple keyspace, 16B keys / 32B values, uniform or
//    Zipf(0.99) popularity, GET ratios 95%/50%, and the 95%-SCAN variant.
//    The full YCSB core suite A–F is available as presets: update-heavy (A),
//    read-mostly (B), read-only (C), read-latest (D), scan-heavy (E), and
//    read-modify-write (F), including the latest/hot-set key distributions.
//  * HPC traces: job-launch and I/O-forwarding mixes (§VIII-A: I/O forwarding
//    is Get:Put 62:38, job launch has 12% fewer reads => 50:50), Lustre
//    monitoring (put-dominated time series, §VI-A), analytics (read-heavy
//    uniform), and DL training ingest (large-value read-mostly, §VI-B).
//  * Open-loop arrival processes: Poisson and bursty two-state MMPP
//    inter-arrival samplers that decouple offered load from completions, so
//    overload pathologies are not hidden by closed-loop self-throttling.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/json.h"
#include "src/common/rng.h"

namespace bespokv {

enum class OpType : uint8_t { kPut, kGet, kDel, kScan, kRmw };

// Key popularity model. kZipfian scrambles ranks across the key space
// (standard YCSB behaviour); kLatest skews toward recently inserted keys
// (YCSB D); kHotset sends `hot_op_fraction` of ops to the first
// `hot_key_fraction` of the key space (YCSB hotspot distribution).
enum class KeyDist : uint8_t { kUniform, kZipfian, kLatest, kHotset };

const char* key_dist_name(KeyDist d);

struct WorkloadOp {
  OpType type;
  std::string key;
  std::string value;      // puts / rmw only
  std::string scan_end;   // scans only
  uint32_t scan_limit = 0;
  uint32_t ttl_ms = 0;    // puts: relative expiry carried on the PUT (0 = none)
};

struct WorkloadSpec {
  uint64_t num_keys = 1'000'000;
  size_t key_size = 16;
  size_t value_size = 32;
  // >= value_size: payload sizes drawn uniformly from
  // [value_size, value_size_max] per PUT (0 = fixed value_size).
  size_t value_size_max = 0;
  double get_ratio = 0.95;    // remainder after all ratios is PUT (update)
  double scan_ratio = 0.0;
  double del_ratio = 0.0;
  double rmw_ratio = 0.0;     // read-modify-write, measured as one op (YCSB F)
  double insert_ratio = 0.0;  // PUT of a brand-new key, growing the keyspace
  bool zipfian = false;       // legacy alias for key_dist == kZipfian
  KeyDist key_dist = KeyDist::kUniform;
  double zipf_theta = 0.99;
  double hot_op_fraction = 0.9;    // kHotset: fraction of ops on the hot set
  double hot_key_fraction = 0.1;   // kHotset: fraction of keys that are hot
  uint32_t scan_span = 100;  // keys per scan
  uint32_t ttl_ms = 0;       // stamp every PUT with this TTL (cache-tier mode)
  uint64_t seed = 1;

  // JSON round-trip, used by the verification harness to make a scenario's
  // workload reproducible from its dumped artifact.
  Json to_json() const;
  static Result<WorkloadSpec> from_json(const Json& j);

  // Named presets.
  static WorkloadSpec ycsb_a();                        // 50R/50U zipf
  static WorkloadSpec ycsb_b();                        // 95R/5U zipf
  static WorkloadSpec ycsb_c();                        // 100R zipf
  static WorkloadSpec ycsb_d();                        // 95R latest / 5 insert
  static WorkloadSpec ycsb_e();                        // 95 scan / 5 insert
  static WorkloadSpec ycsb_f();                        // 50R/50RMW zipf
  static Result<WorkloadSpec> ycsb(char mix);          // 'A'..'F'
  static WorkloadSpec ycsb_read_mostly(bool zipf);     // 95% GET
  static WorkloadSpec ycsb_update_heavy(bool zipf);    // 50% GET
  static WorkloadSpec ycsb_scan_heavy(bool zipf);      // 95% SCAN, 5% PUT
  static WorkloadSpec hpc_job_launch();                // 50:50, bursty keys
  static WorkloadSpec hpc_io_forwarding();             // 62:38 R:W
  static WorkloadSpec hpc_monitoring();                // 95% PUT time series
  static WorkloadSpec hpc_analytics();                 // 100% GET uniform
  static WorkloadSpec dl_ingest(size_t image_bytes);   // large-value reads
  static WorkloadSpec cache_tier(uint32_t ttl_ms);     // TTL'd 50/50 hotset
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadSpec spec, uint64_t stream_id = 0);

  WorkloadOp next();

  // Key for loading the store before measurement (dense enumeration).
  std::string key_at(uint64_t index) const;
  std::string value_for(uint64_t index);
  const WorkloadSpec& spec() const { return spec_; }
  // Current keyspace size (num_keys plus inserts made by this generator).
  uint64_t population() const { return population_; }

 private:
  uint64_t next_index();
  size_t next_value_size();

  WorkloadSpec spec_;
  Rng rng_;
  std::unique_ptr<ZipfianGenerator> zipf_;
  uint64_t population_;
};

// Open-loop arrival process: request *start* times come from the process, not
// from completions, so queueing delay shows up as latency instead of reduced
// offered load (the closed-loop coordinated-omission blind spot).
struct ArrivalSpec {
  enum class Kind : uint8_t { kPoisson, kMmpp };
  Kind kind = Kind::kPoisson;
  double rate_per_sec = 1000.0;   // Poisson rate; MMPP calm-state rate
  // Two-state MMPP: exponential sojourns alternate between a calm state at
  // rate_per_sec and a burst state at rate_per_sec * burst_multiplier.
  double burst_multiplier = 8.0;
  double calm_dwell_ms = 500.0;   // mean sojourn in the calm state
  double burst_dwell_ms = 50.0;   // mean sojourn in the burst state
  uint64_t seed = 1;

  // Long-run mean arrival rate (Poisson: rate_per_sec; MMPP: dwell-weighted).
  double mean_rate_per_sec() const;

  Json to_json() const;
  static Result<ArrivalSpec> from_json(const Json& j);
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalSpec spec);

  // Microseconds from the previous arrival to the next one.
  uint64_t next_gap_us();
  const ArrivalSpec& spec() const { return spec_; }
  bool in_burst() const { return in_burst_; }

 private:
  double exp_us(double rate_per_sec);

  ArrivalSpec spec_;
  Rng rng_;
  bool in_burst_ = false;
  double state_left_us_ = 0;  // time remaining in the current MMPP state
};

}  // namespace bespokv
