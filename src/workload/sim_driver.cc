#include "src/workload/sim_driver.h"

#include "src/common/logging.h"

namespace bespokv {

struct SimWorkloadDriver::ClientState {
  Addr addr;
  Runtime* rt = nullptr;
  std::unique_ptr<KvClient> kv;
  std::unique_ptr<WorkloadGenerator> gen;
  Rng rng{0};
  bool connected = false;
};

SimWorkloadDriver::SimWorkloadDriver(SimFabric& sim, Cluster& cluster,
                                     DriverOptions opts)
    : sim_(sim), cluster_(cluster), opts_(opts) {
  for (int i = 0; i < opts_.num_clients; ++i) {
    auto c = std::make_unique<ClientState>();
    c->addr = cluster_.options().name + "/client" + std::to_string(i);
    SimNodeOpts copts;
    copts.is_client = true;
    c->rt = sim_.add_node(c->addr,
                          std::make_shared<LambdaService>(
                              [](Runtime&, const Addr&, Message, Replier reply) {
                                reply(Message::reply(Code::kInvalid));
                              }),
                          copts);
    ClientConfig ccfg;
    ccfg.coordinator = cluster_.coordinator_addr();
    ccfg.rpc_timeout_us = opts_.rpc_timeout_us;
    c->kv = std::make_unique<KvClient>(c->rt, ccfg);
    c->gen = std::make_unique<WorkloadGenerator>(opts_.workload,
                                                 static_cast<uint64_t>(i));
    c->rng.reseed(0xC11E47ULL + static_cast<uint64_t>(i));
    clients_.push_back(std::move(c));
  }
}

SimWorkloadDriver::~SimWorkloadDriver() { running_ = false; }

void SimWorkloadDriver::preload() {
  const ShardMap& map = cluster_.coordinator_service()->shard_map();
  WorkloadGenerator gen(opts_.workload);
  const std::string prefix =
      opts_.table.empty() ? "" : opts_.table + "\x1f";
  for (uint64_t i = 0; i < opts_.workload.num_keys; ++i) {
    const std::string key = prefix + gen.key_at(i);
    const std::string value = gen.value_for(i);
    auto sid = map.shard_for(key);
    if (!sid.ok()) continue;
    const int shard = static_cast<int>(sid.value());
    for (int r = 0; r < cluster_.options().num_replicas; ++r) {
      cluster_.datalet(shard, r)->put(key, value, /*seq=*/1);
    }
  }
}

void SimWorkloadDriver::start() {
  running_ = true;
  window_start_us_ = sim_.now_us();
  for (auto& c : clients_) {
    ClientState* cs = c.get();
    cs->rt->post([this, cs] {
      cs->kv->connect([this, cs](Status s) {
        if (!s.ok()) {
          LOG_WARN << cs->addr << ": connect failed: " << s.to_string();
          return;
        }
        cs->connected = true;
        issue_next(*cs);
      });
    });
  }
}

void SimWorkloadDriver::stop() { running_ = false; }

void SimWorkloadDriver::reset_window() {
  ops_ = errors_ = 0;
  lat_.reset();
  get_lat_.reset();
  put_lat_.reset();
  co_lat_.reset();
  timeline_.clear();
  window_start_us_ = sim_.now_us();
}

void SimWorkloadDriver::on_done(ClientState& c, OpType type,
                                uint64_t issued_at, Status s) {
  const uint64_t now = c.rt->now_us();
  const uint64_t lat = now - issued_at;
  if (s.ok() || s.code() == Code::kNotFound) {
    ++ops_;
    lat_.record(lat);
    (type == OpType::kPut || type == OpType::kDel || type == OpType::kRmw
         ? put_lat_
         : get_lat_)
        .record(lat);
    co_lat_.record(lat);
    if (opts_.co_interval_us > 0) {
      // Back-fill the samples this client *would* have issued while stalled.
      for (uint64_t l = lat; l > opts_.co_interval_us;) {
        l -= opts_.co_interval_us;
        co_lat_.record(l);
      }
    }
  } else {
    ++errors_;
  }
  if (opts_.timeline_bucket_us > 0 && now >= window_start_us_) {
    const size_t bucket =
        static_cast<size_t>((now - window_start_us_) / opts_.timeline_bucket_us);
    if (timeline_.size() <= bucket) timeline_.resize(bucket + 1, 0);
    if (s.ok() || s.code() == Code::kNotFound) ++timeline_[bucket];
  }
  if (running_) issue_next(c);
}

void SimWorkloadDriver::issue_next(ClientState& c) {
  WorkloadOp op = c.gen->next();
  const uint64_t issued_at = c.rt->now_us();
  ClientState* cs = &c;
  switch (op.type) {
    case OpType::kPut:
      cs->kv->put_ttl(op.key, op.value, op.ttl_ms,
                      [this, cs, issued_at](Status s) {
                        on_done(*cs, OpType::kPut, issued_at, s);
                      },
                      opts_.table);
      break;
    case OpType::kRmw: {
      // YCSB F: read-modify-write measured as a single operation.
      std::string key = op.key, value = op.value;
      const uint32_t ttl = op.ttl_ms;
      cs->kv->get(key,
                  [this, cs, issued_at, key, value, ttl](Result<std::string>) {
                    cs->kv->put_ttl(key, value, ttl,
                                    [this, cs, issued_at](Status s) {
                                      on_done(*cs, OpType::kRmw, issued_at, s);
                                    },
                                    opts_.table);
                  },
                  opts_.table);
      break;
    }
    case OpType::kDel:
      cs->kv->del(op.key,
                  [this, cs, issued_at](Status s) {
                    on_done(*cs, OpType::kDel, issued_at, s);
                  },
                  opts_.table);
      break;
    case OpType::kScan:
      cs->kv->scan(op.key, op.scan_end, op.scan_limit,
                   [this, cs, issued_at](Result<std::vector<KV>> r) {
                     on_done(*cs, OpType::kScan, issued_at, r.status());
                   },
                   opts_.table);
      break;
    case OpType::kGet: {
      ConsistencyLevel level = ConsistencyLevel::kDefault;
      if (opts_.strong_get_fraction >= 0.0) {
        level = cs->rng.next_bool(opts_.strong_get_fraction)
                    ? ConsistencyLevel::kStrong
                    : ConsistencyLevel::kEventual;
      }
      cs->kv->get(op.key,
                  [this, cs, issued_at](Result<std::string> r) {
                    on_done(*cs, OpType::kGet, issued_at, r.status());
                  },
                  opts_.table, level);
      break;
    }
  }
}

DriverResult SimWorkloadDriver::collect() const {
  DriverResult r;
  r.ops = ops_;
  r.errors = errors_;
  r.window_us = sim_.now_us() - window_start_us_;
  r.qps = r.window_us == 0
              ? 0
              : static_cast<double>(ops_) * 1e6 / static_cast<double>(r.window_us);
  r.latency_us = lat_;
  r.get_latency_us = get_lat_;
  r.put_latency_us = put_lat_;
  r.corrected_latency_us = co_lat_;
  r.timeline = timeline_;
  return r;
}

}  // namespace bespokv
