// SimWorkloadDriver: closed-loop clients for the DES fabric — the YCSB-bench
// equivalent for simulated deployments. Creates N client nodes (unbounded
// capacity, like the paper's separate load-generation cluster), each running
// one outstanding request at a time through the real client library, and
// measures completed ops, errors, latency and an optional QPS timeline.
//
// Time control stays with the caller (sim.run_for/run_until), so benchmarks
// can inject failures or transitions mid-run and watch the timeline respond
// (Figs. 10 and 16).
#pragma once

#include <memory>
#include <vector>

#include "src/client/client.h"
#include "src/cluster/cluster.h"
#include "src/common/histogram.h"
#include "src/net/sim_fabric.h"
#include "src/workload/workload.h"

namespace bespokv {

struct DriverOptions {
  int num_clients = 32;
  WorkloadSpec workload;
  std::string table;
  // Per-request consistency mix (§IV-C / §VIII-D): fraction of GETs issued
  // with an explicit Strong level; < 0 issues everything at kDefault.
  double strong_get_fraction = -1.0;
  // Timeline bucketing for QPS-vs-time plots; 0 disables.
  uint64_t timeline_bucket_us = 0;
  uint64_t rpc_timeout_us = 1'000'000;
  // Coordinated-omission correction (satellite of the open-loop suite): the
  // intended per-client issue interval. A closed loop that stalls for S >> I
  // µs should have issued S/I more requests, each of which would have seen
  // the stall; corrected_latency_us back-fills those synthetic samples
  // (lat - I, lat - 2I, ...) the way HdrHistogram's recordValueWithExpected-
  // Interval does. 0 disables correction (corrected == raw).
  uint64_t co_interval_us = 0;
};

struct DriverResult {
  uint64_t ops = 0;
  uint64_t errors = 0;
  uint64_t window_us = 0;
  double qps = 0;
  Histogram latency_us;
  Histogram get_latency_us;
  Histogram put_latency_us;
  // latency_us plus synthetic catch-up samples (see co_interval_us); equals
  // latency_us when correction is disabled.
  Histogram corrected_latency_us;
  std::vector<uint64_t> timeline;  // completed ops per bucket since reset
};

class SimWorkloadDriver {
 public:
  SimWorkloadDriver(SimFabric& sim, Cluster& cluster, DriverOptions opts);
  ~SimWorkloadDriver();

  // Installs the working set directly into every replica's datalet (bulk
  // load; bypasses the network on purpose so benchmarks measure steady
  // state, not loading).
  void preload();

  // Begins issuing requests from every client. Call sim.run_for(...) after.
  void start();
  // Clients stop issuing new requests (in-flight ones complete).
  void stop();

  // Zeroes counters and marks the measurement-window origin (end of warmup).
  void reset_window();
  DriverResult collect() const;

 private:
  struct ClientState;
  void issue_next(ClientState& c);
  void on_done(ClientState& c, OpType type, uint64_t issued_at, Status s);

  SimFabric& sim_;
  Cluster& cluster_;
  DriverOptions opts_;
  std::vector<std::unique_ptr<ClientState>> clients_;
  bool running_ = false;
  uint64_t window_start_us_ = 0;
  // Shared counters (the DES is single-threaded; plain fields suffice).
  uint64_t ops_ = 0;
  uint64_t errors_ = 0;
  Histogram lat_, get_lat_, put_lat_, co_lat_;
  std::vector<uint64_t> timeline_;
};

}  // namespace bespokv
