#include "src/workload/workload.h"

#include <cstdio>

namespace bespokv {

Json WorkloadSpec::to_json() const {
  Json j = Json::object();
  j.set("num_keys", Json::number(double(num_keys)));
  j.set("key_size", Json::number(double(key_size)));
  j.set("value_size", Json::number(double(value_size)));
  j.set("get_ratio", Json::number(get_ratio));
  j.set("scan_ratio", Json::number(scan_ratio));
  j.set("del_ratio", Json::number(del_ratio));
  j.set("zipfian", Json::boolean(zipfian));
  j.set("zipf_theta", Json::number(zipf_theta));
  j.set("scan_span", Json::number(scan_span));
  j.set("seed", Json::number(double(seed)));
  return j;
}

Result<WorkloadSpec> WorkloadSpec::from_json(const Json& j) {
  WorkloadSpec s;
  s.num_keys = uint64_t(j.get("num_keys").as_number(double(s.num_keys)));
  s.key_size = size_t(j.get("key_size").as_number(double(s.key_size)));
  s.value_size = size_t(j.get("value_size").as_number(double(s.value_size)));
  s.get_ratio = j.get("get_ratio").as_number(s.get_ratio);
  s.scan_ratio = j.get("scan_ratio").as_number(s.scan_ratio);
  s.del_ratio = j.get("del_ratio").as_number(s.del_ratio);
  s.zipfian = j.get("zipfian").as_bool(s.zipfian);
  s.zipf_theta = j.get("zipf_theta").as_number(s.zipf_theta);
  s.scan_span = uint32_t(j.get("scan_span").as_number(s.scan_span));
  s.seed = uint64_t(j.get("seed").as_number(double(s.seed)));
  if (s.num_keys == 0) return Status::Invalid("workload: num_keys must be > 0");
  if (s.get_ratio < 0 || s.scan_ratio < 0 || s.del_ratio < 0 ||
      s.get_ratio + s.scan_ratio + s.del_ratio > 1.0 + 1e-9) {
    return Status::Invalid("workload: op ratios must be >= 0 and sum <= 1");
  }
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_read_mostly(bool zipf) {
  WorkloadSpec s;
  s.get_ratio = 0.95;
  s.zipfian = zipf;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_update_heavy(bool zipf) {
  WorkloadSpec s;
  s.get_ratio = 0.50;
  s.zipfian = zipf;
  return s;
}

WorkloadSpec WorkloadSpec::ycsb_scan_heavy(bool zipf) {
  WorkloadSpec s;
  s.get_ratio = 0.0;
  s.scan_ratio = 0.95;
  s.zipfian = zipf;
  return s;
}

WorkloadSpec WorkloadSpec::hpc_job_launch() {
  // Control messages from servers = Get, compute-node results = Put (§VIII-A).
  WorkloadSpec s;
  s.num_keys = 100'000;
  s.get_ratio = 0.50;
  s.zipfian = true;  // rank/step keys are heavily reused
  return s;
}

WorkloadSpec WorkloadSpec::hpc_io_forwarding() {
  // SeaweedFS metadata trace: 62:38 Get:Put over file-metadata keys.
  WorkloadSpec s;
  s.num_keys = 10'000;
  s.get_ratio = 0.62;
  s.zipfian = false;
  return s;
}

WorkloadSpec WorkloadSpec::hpc_monitoring() {
  // Lustre MDS/OSS/OST/MDT stats streams: put-dominated time series (§VI-A).
  WorkloadSpec s;
  s.num_keys = 2'000'000;
  s.get_ratio = 0.05;
  s.value_size = 64;
  s.zipfian = false;
  return s;
}

WorkloadSpec WorkloadSpec::hpc_analytics() {
  // "completely read-intensive with uniform distribution" (§VI-A).
  WorkloadSpec s;
  s.num_keys = 2'000'000;
  s.get_ratio = 1.0;
  s.value_size = 64;
  s.zipfian = false;
  return s;
}

WorkloadSpec WorkloadSpec::dl_ingest(size_t image_bytes) {
  // Training ingest: whole dataset streamed repeatedly, read-mostly (§VI-B).
  WorkloadSpec s;
  s.num_keys = 50'000;
  s.value_size = image_bytes;
  s.get_ratio = 1.0;
  s.zipfian = false;
  return s;
}

WorkloadGenerator::WorkloadGenerator(WorkloadSpec spec, uint64_t stream_id)
    : spec_(spec), rng_(spec.seed * 0x9e3779b9ULL + stream_id + 1) {
  if (spec_.zipfian) {
    zipf_ = std::make_unique<ZipfianGenerator>(spec_.num_keys, spec_.zipf_theta,
                                               spec_.seed + stream_id * 131);
  }
}

std::string WorkloadGenerator::key_at(uint64_t index) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%0*llu",
                static_cast<int>(spec_.key_size > 1 ? spec_.key_size - 1 : 1),
                static_cast<unsigned long long>(index));
  return std::string(buf).substr(0, spec_.key_size);
}

std::string WorkloadGenerator::value_for(uint64_t index) {
  std::string v(spec_.value_size, 'x');
  // Stamp a recognizable header so correctness checks can verify values.
  const int n = std::snprintf(v.data(), v.size(), "v%llu|",
                              static_cast<unsigned long long>(index));
  if (n > 0 && static_cast<size_t>(n) < v.size()) v[v.size() - 1] = '.';
  return v;
}

uint64_t WorkloadGenerator::next_index() {
  return zipf_ != nullptr ? zipf_->next() : rng_.next_u64(spec_.num_keys);
}

WorkloadOp WorkloadGenerator::next() {
  WorkloadOp op;
  const double p = rng_.next_double();
  const uint64_t idx = next_index();
  op.key = key_at(idx);
  if (p < spec_.get_ratio) {
    op.type = OpType::kGet;
  } else if (p < spec_.get_ratio + spec_.scan_ratio) {
    op.type = OpType::kScan;
    op.scan_end = key_at(std::min(idx + spec_.scan_span, spec_.num_keys));
    op.scan_limit = spec_.scan_span;
  } else if (p < spec_.get_ratio + spec_.scan_ratio + spec_.del_ratio) {
    op.type = OpType::kDel;
  } else {
    op.type = OpType::kPut;
    op.value = value_for(idx);
  }
  return op;
}

}  // namespace bespokv
